# Empty dependencies file for gfsl_cli.
# This may be replaced when dependencies are built.
