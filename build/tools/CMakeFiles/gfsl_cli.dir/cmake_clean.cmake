file(REMOVE_RECURSE
  "CMakeFiles/gfsl_cli.dir/gfsl_cli.cpp.o"
  "CMakeFiles/gfsl_cli.dir/gfsl_cli.cpp.o.d"
  "gfsl_cli"
  "gfsl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfsl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
