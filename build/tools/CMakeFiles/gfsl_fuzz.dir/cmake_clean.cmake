file(REMOVE_RECURSE
  "CMakeFiles/gfsl_fuzz.dir/gfsl_fuzz.cpp.o"
  "CMakeFiles/gfsl_fuzz.dir/gfsl_fuzz.cpp.o.d"
  "gfsl_fuzz"
  "gfsl_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfsl_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
