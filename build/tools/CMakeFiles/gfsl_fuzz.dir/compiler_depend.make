# Empty compiler generated dependencies file for gfsl_fuzz.
# This may be replaced when dependencies are built.
