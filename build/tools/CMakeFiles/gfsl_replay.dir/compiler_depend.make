# Empty compiler generated dependencies file for gfsl_replay.
# This may be replaced when dependencies are built.
