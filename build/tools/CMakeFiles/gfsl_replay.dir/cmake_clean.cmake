file(REMOVE_RECURSE
  "CMakeFiles/gfsl_replay.dir/gfsl_replay.cpp.o"
  "CMakeFiles/gfsl_replay.dir/gfsl_replay.cpp.o.d"
  "gfsl_replay"
  "gfsl_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfsl_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
