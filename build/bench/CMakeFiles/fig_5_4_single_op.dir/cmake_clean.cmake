file(REMOVE_RECURSE
  "CMakeFiles/fig_5_4_single_op.dir/fig_5_4_single_op.cpp.o"
  "CMakeFiles/fig_5_4_single_op.dir/fig_5_4_single_op.cpp.o.d"
  "fig_5_4_single_op"
  "fig_5_4_single_op.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_5_4_single_op.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
