# Empty compiler generated dependencies file for fig_5_4_single_op.
# This may be replaced when dependencies are built.
