file(REMOVE_RECURSE
  "CMakeFiles/fig_5_1_chunk_size.dir/fig_5_1_chunk_size.cpp.o"
  "CMakeFiles/fig_5_1_chunk_size.dir/fig_5_1_chunk_size.cpp.o.d"
  "fig_5_1_chunk_size"
  "fig_5_1_chunk_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_5_1_chunk_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
