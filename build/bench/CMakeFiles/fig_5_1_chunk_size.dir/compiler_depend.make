# Empty compiler generated dependencies file for fig_5_1_chunk_size.
# This may be replaced when dependencies are built.
