file(REMOVE_RECURSE
  "CMakeFiles/ext_dual_team_warp.dir/ext_dual_team_warp.cpp.o"
  "CMakeFiles/ext_dual_team_warp.dir/ext_dual_team_warp.cpp.o.d"
  "ext_dual_team_warp"
  "ext_dual_team_warp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dual_team_warp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
