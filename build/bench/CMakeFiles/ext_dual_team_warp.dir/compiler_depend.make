# Empty compiler generated dependencies file for ext_dual_team_warp.
# This may be replaced when dependencies are built.
