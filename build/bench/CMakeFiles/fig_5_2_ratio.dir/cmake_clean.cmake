file(REMOVE_RECURSE
  "CMakeFiles/fig_5_2_ratio.dir/fig_5_2_ratio.cpp.o"
  "CMakeFiles/fig_5_2_ratio.dir/fig_5_2_ratio.cpp.o.d"
  "fig_5_2_ratio"
  "fig_5_2_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_5_2_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
