# Empty dependencies file for fig_5_2_ratio.
# This may be replaced when dependencies are built.
