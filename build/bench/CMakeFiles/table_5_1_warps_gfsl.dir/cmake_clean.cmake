file(REMOVE_RECURSE
  "CMakeFiles/table_5_1_warps_gfsl.dir/table_5_1_warps_gfsl.cpp.o"
  "CMakeFiles/table_5_1_warps_gfsl.dir/table_5_1_warps_gfsl.cpp.o.d"
  "table_5_1_warps_gfsl"
  "table_5_1_warps_gfsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_5_1_warps_gfsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
