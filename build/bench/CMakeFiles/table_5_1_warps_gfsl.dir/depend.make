# Empty dependencies file for table_5_1_warps_gfsl.
# This may be replaced when dependencies are built.
