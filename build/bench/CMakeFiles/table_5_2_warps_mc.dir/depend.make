# Empty dependencies file for table_5_2_warps_mc.
# This may be replaced when dependencies are built.
