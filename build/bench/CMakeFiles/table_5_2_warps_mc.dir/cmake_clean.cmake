file(REMOVE_RECURSE
  "CMakeFiles/table_5_2_warps_mc.dir/table_5_2_warps_mc.cpp.o"
  "CMakeFiles/table_5_2_warps_mc.dir/table_5_2_warps_mc.cpp.o.d"
  "table_5_2_warps_mc"
  "table_5_2_warps_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_5_2_warps_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
