file(REMOVE_RECURSE
  "CMakeFiles/fig_5_3_mixed_ops.dir/fig_5_3_mixed_ops.cpp.o"
  "CMakeFiles/fig_5_3_mixed_ops.dir/fig_5_3_mixed_ops.cpp.o.d"
  "fig_5_3_mixed_ops"
  "fig_5_3_mixed_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_5_3_mixed_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
