# Empty compiler generated dependencies file for fig_5_3_mixed_ops.
# This may be replaced when dependencies are built.
