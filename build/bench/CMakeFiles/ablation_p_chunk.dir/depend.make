# Empty dependencies file for ablation_p_chunk.
# This may be replaced when dependencies are built.
