file(REMOVE_RECURSE
  "CMakeFiles/ablation_p_chunk.dir/ablation_p_chunk.cpp.o"
  "CMakeFiles/ablation_p_chunk.dir/ablation_p_chunk.cpp.o.d"
  "ablation_p_chunk"
  "ablation_p_chunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_p_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
