# Empty compiler generated dependencies file for test_gfsl_sequential.
# This may be replaced when dependencies are built.
