file(REMOVE_RECURSE
  "CMakeFiles/test_gfsl_sequential.dir/test_gfsl_sequential.cpp.o"
  "CMakeFiles/test_gfsl_sequential.dir/test_gfsl_sequential.cpp.o.d"
  "test_gfsl_sequential"
  "test_gfsl_sequential.pdb"
  "test_gfsl_sequential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gfsl_sequential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
