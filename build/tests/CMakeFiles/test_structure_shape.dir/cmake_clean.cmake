file(REMOVE_RECURSE
  "CMakeFiles/test_structure_shape.dir/test_structure_shape.cpp.o"
  "CMakeFiles/test_structure_shape.dir/test_structure_shape.cpp.o.d"
  "test_structure_shape"
  "test_structure_shape.pdb"
  "test_structure_shape[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_structure_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
