# Empty compiler generated dependencies file for test_dual_team.
# This may be replaced when dependencies are built.
