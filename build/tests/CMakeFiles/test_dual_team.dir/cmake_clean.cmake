file(REMOVE_RECURSE
  "CMakeFiles/test_dual_team.dir/test_dual_team.cpp.o"
  "CMakeFiles/test_dual_team.dir/test_dual_team.cpp.o.d"
  "test_dual_team"
  "test_dual_team.pdb"
  "test_dual_team[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dual_team.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
