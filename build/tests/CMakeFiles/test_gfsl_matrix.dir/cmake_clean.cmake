file(REMOVE_RECURSE
  "CMakeFiles/test_gfsl_matrix.dir/test_gfsl_matrix.cpp.o"
  "CMakeFiles/test_gfsl_matrix.dir/test_gfsl_matrix.cpp.o.d"
  "test_gfsl_matrix"
  "test_gfsl_matrix.pdb"
  "test_gfsl_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gfsl_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
