# Empty dependencies file for test_gfsl_matrix.
# This may be replaced when dependencies are built.
