file(REMOVE_RECURSE
  "CMakeFiles/test_oplog.dir/test_oplog.cpp.o"
  "CMakeFiles/test_oplog.dir/test_oplog.cpp.o.d"
  "test_oplog"
  "test_oplog.pdb"
  "test_oplog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oplog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
