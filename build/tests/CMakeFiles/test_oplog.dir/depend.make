# Empty dependencies file for test_oplog.
# This may be replaced when dependencies are built.
