file(REMOVE_RECURSE
  "CMakeFiles/test_gfsl_edge.dir/test_gfsl_edge.cpp.o"
  "CMakeFiles/test_gfsl_edge.dir/test_gfsl_edge.cpp.o.d"
  "test_gfsl_edge"
  "test_gfsl_edge.pdb"
  "test_gfsl_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gfsl_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
