# Empty dependencies file for test_gfsl_edge.
# This may be replaced when dependencies are built.
