file(REMOVE_RECURSE
  "CMakeFiles/test_cache_sensitivity.dir/test_cache_sensitivity.cpp.o"
  "CMakeFiles/test_cache_sensitivity.dir/test_cache_sensitivity.cpp.o.d"
  "test_cache_sensitivity"
  "test_cache_sensitivity.pdb"
  "test_cache_sensitivity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
