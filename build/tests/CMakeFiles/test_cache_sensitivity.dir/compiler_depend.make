# Empty compiler generated dependencies file for test_cache_sensitivity.
# This may be replaced when dependencies are built.
