file(REMOVE_RECURSE
  "CMakeFiles/test_contention_model.dir/test_contention_model.cpp.o"
  "CMakeFiles/test_contention_model.dir/test_contention_model.cpp.o.d"
  "test_contention_model"
  "test_contention_model.pdb"
  "test_contention_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contention_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
