file(REMOVE_RECURSE
  "CMakeFiles/test_gfsl_deterministic.dir/test_gfsl_deterministic.cpp.o"
  "CMakeFiles/test_gfsl_deterministic.dir/test_gfsl_deterministic.cpp.o.d"
  "test_gfsl_deterministic"
  "test_gfsl_deterministic.pdb"
  "test_gfsl_deterministic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gfsl_deterministic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
