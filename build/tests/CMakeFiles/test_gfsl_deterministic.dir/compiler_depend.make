# Empty compiler generated dependencies file for test_gfsl_deterministic.
# This may be replaced when dependencies are built.
