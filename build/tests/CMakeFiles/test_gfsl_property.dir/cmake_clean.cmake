file(REMOVE_RECURSE
  "CMakeFiles/test_gfsl_property.dir/test_gfsl_property.cpp.o"
  "CMakeFiles/test_gfsl_property.dir/test_gfsl_property.cpp.o.d"
  "test_gfsl_property"
  "test_gfsl_property.pdb"
  "test_gfsl_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gfsl_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
