# Empty dependencies file for test_gfsl_property.
# This may be replaced when dependencies are built.
