file(REMOVE_RECURSE
  "CMakeFiles/test_dump.dir/test_dump.cpp.o"
  "CMakeFiles/test_dump.dir/test_dump.cpp.o.d"
  "test_dump"
  "test_dump.pdb"
  "test_dump[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
