file(REMOVE_RECURSE
  "CMakeFiles/test_gfsl_concurrent.dir/test_gfsl_concurrent.cpp.o"
  "CMakeFiles/test_gfsl_concurrent.dir/test_gfsl_concurrent.cpp.o.d"
  "test_gfsl_concurrent"
  "test_gfsl_concurrent.pdb"
  "test_gfsl_concurrent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gfsl_concurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
