file(REMOVE_RECURSE
  "CMakeFiles/priority_queue.dir/priority_queue.cpp.o"
  "CMakeFiles/priority_queue.dir/priority_queue.cpp.o.d"
  "priority_queue"
  "priority_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
