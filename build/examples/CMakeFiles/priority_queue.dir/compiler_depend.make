# Empty compiler generated dependencies file for priority_queue.
# This may be replaced when dependencies are built.
