# Empty dependencies file for kv_memtable.
# This may be replaced when dependencies are built.
