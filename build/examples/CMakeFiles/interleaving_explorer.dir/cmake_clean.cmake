file(REMOVE_RECURSE
  "CMakeFiles/interleaving_explorer.dir/interleaving_explorer.cpp.o"
  "CMakeFiles/interleaving_explorer.dir/interleaving_explorer.cpp.o.d"
  "interleaving_explorer"
  "interleaving_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interleaving_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
