# Empty compiler generated dependencies file for interleaving_explorer.
# This may be replaced when dependencies are built.
