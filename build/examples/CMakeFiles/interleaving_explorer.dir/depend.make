# Empty dependencies file for interleaving_explorer.
# This may be replaced when dependencies are built.
