file(REMOVE_RECURSE
  "CMakeFiles/gfsl_device.dir/device/cache_sim.cpp.o"
  "CMakeFiles/gfsl_device.dir/device/cache_sim.cpp.o.d"
  "CMakeFiles/gfsl_device.dir/device/device_memory.cpp.o"
  "CMakeFiles/gfsl_device.dir/device/device_memory.cpp.o.d"
  "libgfsl_device.a"
  "libgfsl_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfsl_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
