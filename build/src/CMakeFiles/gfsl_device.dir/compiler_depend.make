# Empty compiler generated dependencies file for gfsl_device.
# This may be replaced when dependencies are built.
