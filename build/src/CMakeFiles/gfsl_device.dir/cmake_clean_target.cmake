file(REMOVE_RECURSE
  "libgfsl_device.a"
)
