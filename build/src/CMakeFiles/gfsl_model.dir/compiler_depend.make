# Empty compiler generated dependencies file for gfsl_model.
# This may be replaced when dependencies are built.
