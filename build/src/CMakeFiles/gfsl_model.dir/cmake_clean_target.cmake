file(REMOVE_RECURSE
  "libgfsl_model.a"
)
