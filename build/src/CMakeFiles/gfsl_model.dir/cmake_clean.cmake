file(REMOVE_RECURSE
  "CMakeFiles/gfsl_model.dir/model/cost_model.cpp.o"
  "CMakeFiles/gfsl_model.dir/model/cost_model.cpp.o.d"
  "CMakeFiles/gfsl_model.dir/model/occupancy.cpp.o"
  "CMakeFiles/gfsl_model.dir/model/occupancy.cpp.o.d"
  "libgfsl_model.a"
  "libgfsl_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfsl_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
