# Empty compiler generated dependencies file for gfsl_simt.
# This may be replaced when dependencies are built.
