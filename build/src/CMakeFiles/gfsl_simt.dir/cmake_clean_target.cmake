file(REMOVE_RECURSE
  "libgfsl_simt.a"
)
