file(REMOVE_RECURSE
  "CMakeFiles/gfsl_simt.dir/simt/team.cpp.o"
  "CMakeFiles/gfsl_simt.dir/simt/team.cpp.o.d"
  "CMakeFiles/gfsl_simt.dir/simt/trace.cpp.o"
  "CMakeFiles/gfsl_simt.dir/simt/trace.cpp.o.d"
  "libgfsl_simt.a"
  "libgfsl_simt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfsl_simt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
