# Empty compiler generated dependencies file for gfsl_common.
# This may be replaced when dependencies are built.
