file(REMOVE_RECURSE
  "CMakeFiles/gfsl_common.dir/common/env.cpp.o"
  "CMakeFiles/gfsl_common.dir/common/env.cpp.o.d"
  "CMakeFiles/gfsl_common.dir/common/stats.cpp.o"
  "CMakeFiles/gfsl_common.dir/common/stats.cpp.o.d"
  "libgfsl_common.a"
  "libgfsl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfsl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
