file(REMOVE_RECURSE
  "libgfsl_common.a"
)
