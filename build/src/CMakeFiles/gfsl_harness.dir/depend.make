# Empty dependencies file for gfsl_harness.
# This may be replaced when dependencies are built.
