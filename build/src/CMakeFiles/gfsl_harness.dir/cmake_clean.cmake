file(REMOVE_RECURSE
  "CMakeFiles/gfsl_harness.dir/harness/experiment.cpp.o"
  "CMakeFiles/gfsl_harness.dir/harness/experiment.cpp.o.d"
  "CMakeFiles/gfsl_harness.dir/harness/history.cpp.o"
  "CMakeFiles/gfsl_harness.dir/harness/history.cpp.o.d"
  "CMakeFiles/gfsl_harness.dir/harness/oplog.cpp.o"
  "CMakeFiles/gfsl_harness.dir/harness/oplog.cpp.o.d"
  "CMakeFiles/gfsl_harness.dir/harness/options.cpp.o"
  "CMakeFiles/gfsl_harness.dir/harness/options.cpp.o.d"
  "CMakeFiles/gfsl_harness.dir/harness/report.cpp.o"
  "CMakeFiles/gfsl_harness.dir/harness/report.cpp.o.d"
  "CMakeFiles/gfsl_harness.dir/harness/runner.cpp.o"
  "CMakeFiles/gfsl_harness.dir/harness/runner.cpp.o.d"
  "CMakeFiles/gfsl_harness.dir/harness/session.cpp.o"
  "CMakeFiles/gfsl_harness.dir/harness/session.cpp.o.d"
  "CMakeFiles/gfsl_harness.dir/harness/workload.cpp.o"
  "CMakeFiles/gfsl_harness.dir/harness/workload.cpp.o.d"
  "libgfsl_harness.a"
  "libgfsl_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfsl_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
