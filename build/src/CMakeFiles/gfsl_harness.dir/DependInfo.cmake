
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/gfsl_harness.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/gfsl_harness.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/harness/history.cpp" "src/CMakeFiles/gfsl_harness.dir/harness/history.cpp.o" "gcc" "src/CMakeFiles/gfsl_harness.dir/harness/history.cpp.o.d"
  "/root/repo/src/harness/oplog.cpp" "src/CMakeFiles/gfsl_harness.dir/harness/oplog.cpp.o" "gcc" "src/CMakeFiles/gfsl_harness.dir/harness/oplog.cpp.o.d"
  "/root/repo/src/harness/options.cpp" "src/CMakeFiles/gfsl_harness.dir/harness/options.cpp.o" "gcc" "src/CMakeFiles/gfsl_harness.dir/harness/options.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/CMakeFiles/gfsl_harness.dir/harness/report.cpp.o" "gcc" "src/CMakeFiles/gfsl_harness.dir/harness/report.cpp.o.d"
  "/root/repo/src/harness/runner.cpp" "src/CMakeFiles/gfsl_harness.dir/harness/runner.cpp.o" "gcc" "src/CMakeFiles/gfsl_harness.dir/harness/runner.cpp.o.d"
  "/root/repo/src/harness/session.cpp" "src/CMakeFiles/gfsl_harness.dir/harness/session.cpp.o" "gcc" "src/CMakeFiles/gfsl_harness.dir/harness/session.cpp.o.d"
  "/root/repo/src/harness/workload.cpp" "src/CMakeFiles/gfsl_harness.dir/harness/workload.cpp.o" "gcc" "src/CMakeFiles/gfsl_harness.dir/harness/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gfsl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfsl_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfsl_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfsl_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfsl_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfsl_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfsl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
