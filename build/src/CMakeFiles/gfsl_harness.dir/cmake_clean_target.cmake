file(REMOVE_RECURSE
  "libgfsl_harness.a"
)
