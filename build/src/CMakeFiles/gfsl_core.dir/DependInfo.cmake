
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chunk.cpp" "src/CMakeFiles/gfsl_core.dir/core/chunk.cpp.o" "gcc" "src/CMakeFiles/gfsl_core.dir/core/chunk.cpp.o.d"
  "/root/repo/src/core/compact.cpp" "src/CMakeFiles/gfsl_core.dir/core/compact.cpp.o" "gcc" "src/CMakeFiles/gfsl_core.dir/core/compact.cpp.o.d"
  "/root/repo/src/core/erase.cpp" "src/CMakeFiles/gfsl_core.dir/core/erase.cpp.o" "gcc" "src/CMakeFiles/gfsl_core.dir/core/erase.cpp.o.d"
  "/root/repo/src/core/gfsl.cpp" "src/CMakeFiles/gfsl_core.dir/core/gfsl.cpp.o" "gcc" "src/CMakeFiles/gfsl_core.dir/core/gfsl.cpp.o.d"
  "/root/repo/src/core/insert.cpp" "src/CMakeFiles/gfsl_core.dir/core/insert.cpp.o" "gcc" "src/CMakeFiles/gfsl_core.dir/core/insert.cpp.o.d"
  "/root/repo/src/core/search.cpp" "src/CMakeFiles/gfsl_core.dir/core/search.cpp.o" "gcc" "src/CMakeFiles/gfsl_core.dir/core/search.cpp.o.d"
  "/root/repo/src/core/shape.cpp" "src/CMakeFiles/gfsl_core.dir/core/shape.cpp.o" "gcc" "src/CMakeFiles/gfsl_core.dir/core/shape.cpp.o.d"
  "/root/repo/src/core/split_merge.cpp" "src/CMakeFiles/gfsl_core.dir/core/split_merge.cpp.o" "gcc" "src/CMakeFiles/gfsl_core.dir/core/split_merge.cpp.o.d"
  "/root/repo/src/core/update_down.cpp" "src/CMakeFiles/gfsl_core.dir/core/update_down.cpp.o" "gcc" "src/CMakeFiles/gfsl_core.dir/core/update_down.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/CMakeFiles/gfsl_core.dir/core/validate.cpp.o" "gcc" "src/CMakeFiles/gfsl_core.dir/core/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gfsl_simt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfsl_device.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfsl_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gfsl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
