file(REMOVE_RECURSE
  "CMakeFiles/gfsl_core.dir/core/chunk.cpp.o"
  "CMakeFiles/gfsl_core.dir/core/chunk.cpp.o.d"
  "CMakeFiles/gfsl_core.dir/core/compact.cpp.o"
  "CMakeFiles/gfsl_core.dir/core/compact.cpp.o.d"
  "CMakeFiles/gfsl_core.dir/core/erase.cpp.o"
  "CMakeFiles/gfsl_core.dir/core/erase.cpp.o.d"
  "CMakeFiles/gfsl_core.dir/core/gfsl.cpp.o"
  "CMakeFiles/gfsl_core.dir/core/gfsl.cpp.o.d"
  "CMakeFiles/gfsl_core.dir/core/insert.cpp.o"
  "CMakeFiles/gfsl_core.dir/core/insert.cpp.o.d"
  "CMakeFiles/gfsl_core.dir/core/search.cpp.o"
  "CMakeFiles/gfsl_core.dir/core/search.cpp.o.d"
  "CMakeFiles/gfsl_core.dir/core/shape.cpp.o"
  "CMakeFiles/gfsl_core.dir/core/shape.cpp.o.d"
  "CMakeFiles/gfsl_core.dir/core/split_merge.cpp.o"
  "CMakeFiles/gfsl_core.dir/core/split_merge.cpp.o.d"
  "CMakeFiles/gfsl_core.dir/core/update_down.cpp.o"
  "CMakeFiles/gfsl_core.dir/core/update_down.cpp.o.d"
  "CMakeFiles/gfsl_core.dir/core/validate.cpp.o"
  "CMakeFiles/gfsl_core.dir/core/validate.cpp.o.d"
  "libgfsl_core.a"
  "libgfsl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfsl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
