# Empty dependencies file for gfsl_core.
# This may be replaced when dependencies are built.
