file(REMOVE_RECURSE
  "libgfsl_core.a"
)
