file(REMOVE_RECURSE
  "libgfsl_baseline.a"
)
