# Empty compiler generated dependencies file for gfsl_baseline.
# This may be replaced when dependencies are built.
