file(REMOVE_RECURSE
  "CMakeFiles/gfsl_baseline.dir/baseline/mc_skiplist.cpp.o"
  "CMakeFiles/gfsl_baseline.dir/baseline/mc_skiplist.cpp.o.d"
  "libgfsl_baseline.a"
  "libgfsl_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfsl_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
