# Empty compiler generated dependencies file for gfsl_sched.
# This may be replaced when dependencies are built.
