file(REMOVE_RECURSE
  "libgfsl_sched.a"
)
