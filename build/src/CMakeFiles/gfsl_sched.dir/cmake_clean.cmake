file(REMOVE_RECURSE
  "CMakeFiles/gfsl_sched.dir/sched/step_scheduler.cpp.o"
  "CMakeFiles/gfsl_sched.dir/sched/step_scheduler.cpp.o.d"
  "libgfsl_sched.a"
  "libgfsl_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfsl_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
