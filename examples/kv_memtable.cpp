// Example: a key-value store memtable on GFSL.
//
// The thesis motivates skiplists as the basis for key-value stores (RocksDB,
// Redis — Chapter 1).  This example runs a LSM-style memtable lifecycle on
// the GPU simulator: concurrent writers insert versioned entries, readers do
// point lookups, and when the memtable fills it is "flushed" — drained in
// sorted order (the skiplist's ordered bottom level is exactly an SSTable
// run) — then compacted for the next generation.
//
//   $ ./examples/kv_memtable
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/gfsl.h"
#include "device/device_memory.h"
#include "simt/team.h"

using namespace gfsl;

namespace {

struct Memtable {
  explicit Memtable(device::DeviceMemory* mem) {
    core::GfslConfig cfg;
    cfg.team_size = 32;
    cfg.pool_chunks = 1u << 16;
    list = std::make_unique<core::Gfsl>(cfg, mem);
  }

  // `value` encodes a version stamp; a real store would keep a pointer to a
  // heap blob here (§4.1 suggests exactly that for larger objects).
  bool put(simt::Team& team, Key key, Value version) {
    if (list->insert(team, key, version)) return true;
    // Upsert: GFSL keeps first-writer-wins per key, so model overwrite as
    // delete + insert under the same team (single-writer per key here).
    list->erase(team, key);
    return list->insert(team, key, version);
  }

  std::optional<Value> get(simt::Team& team, Key key) {
    return list->find(team, key);
  }

  /// Drain to a sorted run (the SSTable flush), then reset.
  std::vector<std::pair<Key, Value>> flush() {
    auto run = list->collect();
    list->bulk_load({});
    return run;
  }

  std::unique_ptr<core::Gfsl> list;
};

}  // namespace

int main() {
  device::DeviceMemory mem;
  Memtable table(&mem);

  constexpr int kWriters = 3;
  constexpr int kKeysPerWriter = 3'000;

  std::printf("phase 1: %d concurrent writers, %d keys each (with updates)\n",
              kWriters, kKeysPerWriter);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      simt::Team team(32, w, 7);
      // Writer w owns keys congruent to w (mod kWriters).
      for (int i = 0; i < kKeysPerWriter; ++i) {
        const Key k = static_cast<Key>(1 + i * kWriters + w);
        table.put(team, k, /*version=*/1);
        if (i % 3 == 0) table.put(team, k, /*version=*/2);  // update
      }
    });
  }

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0}, hits{0};
  std::thread reader([&] {
    simt::Team team(32, kWriters, 8);
    Key k = 1;
    while (!done.load(std::memory_order_acquire)) {
      if (table.get(team, k).has_value()) ++hits;
      ++reads;
      k = (k % (kWriters * kKeysPerWriter)) + 1;
    }
  });
  for (auto& t : writers) t.join();
  done = true;
  reader.join();

  std::printf("  size = %llu, reader did %llu gets (%llu hits)\n",
              static_cast<unsigned long long>(table.list->size()),
              static_cast<unsigned long long>(reads.load()),
              static_cast<unsigned long long>(hits.load()));

  std::printf("phase 2: flush to a sorted run\n");
  const auto run = table.flush();
  bool sorted = true;
  std::uint64_t updated = 0;
  for (std::size_t i = 0; i < run.size(); ++i) {
    if (i > 0 && run[i - 1].first >= run[i].first) sorted = false;
    if (run[i].second == 2) ++updated;
  }
  std::printf("  run: %zu entries, sorted=%s, %llu carry version 2\n",
              run.size(), sorted ? "yes" : "NO",
              static_cast<unsigned long long>(updated));
  std::printf("  memtable after flush: size = %llu\n",
              static_cast<unsigned long long>(table.list->size()));

  std::printf("phase 3: warm restart — bulk load the run back and serve\n");
  table.list->bulk_load(run);
  simt::Team team(32, 0, 9);
  std::printf("  get(4) -> %u, get(%d) -> %s\n",
              table.get(team, 4).value_or(0), kWriters * kKeysPerWriter + 5,
              table.get(team, static_cast<Key>(kWriters * kKeysPerWriter + 5))
                      .has_value()
                  ? "hit"
                  : "miss");
  const auto rep = table.list->validate();
  std::printf("  structure valid: %s\n", rep.ok ? "yes" : rep.error.c_str());
  return rep.ok ? 0 : 1;
}
