// Example: exploring concurrency interleavings with the deterministic
// scheduler.
//
// GFSL's split/merge/traversal races are hard to hit on demand with free-
// running threads.  The StepScheduler turns every simulated memory access
// into a scheduling decision driven by a seed, so each seed is a distinct,
// perfectly reproducible interleaving.  This example sweeps seeds over a
// two-team split-heavy history, verifies invariants after each, and then
// replays one seed twice to demonstrate reproducibility — the workflow a
// developer would use to corner a concurrency bug.
//
//   $ ./examples/interleaving_explorer [num_seeds]
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/gfsl.h"
#include "device/device_memory.h"
#include "sched/step_scheduler.h"
#include "simt/team.h"

using namespace gfsl;

namespace {

struct Outcome {
  std::vector<Key> contents;
  std::uint64_t steps = 0;
  bool valid = false;
  std::string error;
};

Outcome explore(std::uint64_t seed) {
  device::DeviceMemory mem;
  sched::StepScheduler sched(sched::StepScheduler::Mode::Deterministic, seed,
                             2);
  core::GfslConfig cfg;
  cfg.team_size = 8;  // tiny chunks: splits and merges every few ops
  cfg.pool_chunks = 1u << 12;
  core::Gfsl list(cfg, &mem, &sched);

  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      simt::Team team(8, t, 3);
      Xoshiro256ss rng(derive_seed(13, static_cast<std::uint64_t>(t)));
      sched.enter(t);
      for (int i = 0; i < 120; ++i) {
        // Both teams work the same hot range: constant chunk contention.
        const Key k = static_cast<Key>(1 + rng.below(60));
        if (rng.below(3) == 0) {
          list.erase(team, k);
        } else {
          list.insert(team, k, static_cast<Value>(t));
        }
      }
      sched.leave(t);
    });
  }
  for (auto& th : threads) th.join();

  Outcome out;
  out.steps = sched.global_steps();
  const auto rep = list.validate(/*strict=*/false);
  out.valid = rep.ok;
  out.error = rep.error;
  for (const auto& [k, v] : list.collect()) out.contents.push_back(k);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int seeds = argc > 1 ? std::atoi(argv[1]) : 16;
  std::printf("sweeping %d interleavings of a 2-team split/merge-heavy history\n\n",
              seeds);

  std::set<std::vector<Key>> distinct_outcomes;
  int invalid = 0;
  for (int s = 1; s <= seeds; ++s) {
    const Outcome o = explore(static_cast<std::uint64_t>(s));
    distinct_outcomes.insert(o.contents);
    if (!o.valid) {
      ++invalid;
      std::printf("seed %3d: INVALID STRUCTURE: %s\n", s, o.error.c_str());
    } else {
      std::printf("seed %3d: %5llu scheduler steps, %3zu keys, valid\n", s,
                  static_cast<unsigned long long>(o.steps),
                  o.contents.size());
    }
  }
  std::printf("\n%zu distinct final states across %d interleavings"
              " (timing-dependent races resolve differently), %d invalid\n",
              distinct_outcomes.size(), seeds, invalid);

  std::printf("\nreplaying seed 1 twice to demonstrate exact reproducibility:\n");
  const Outcome a = explore(1);
  const Outcome b = explore(1);
  std::printf("  run 1: %llu steps, %zu keys\n",
              static_cast<unsigned long long>(a.steps), a.contents.size());
  std::printf("  run 2: %llu steps, %zu keys\n",
              static_cast<unsigned long long>(b.steps), b.contents.size());
  std::printf("  identical: %s\n",
              (a.contents == b.contents && a.steps == b.steps) ? "yes" : "NO");
  return invalid == 0 ? 0 : 1;
}
