// Quickstart: build a GFSL skiplist, run cooperative operations with one
// team, then hammer it from several concurrent teams, and inspect the
// GPU-model statistics the simulator gathered along the way.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <thread>
#include <vector>

#include "core/gfsl.h"
#include "device/device_memory.h"
#include "simt/team.h"

using namespace gfsl;

int main() {
  // The device: global memory with a simulated GTX-970 L2, counting every
  // coalesced transaction the structure issues.
  device::DeviceMemory mem;

  // A GFSL with 32-entry chunks (256 B, two transactions per team read) and
  // the paper's best raise probability p_chunk = 1.
  core::GfslConfig cfg;
  cfg.team_size = 32;
  cfg.pool_chunks = 1u << 16;
  cfg.p_chunk = 1.0;
  core::Gfsl list(cfg, &mem);

  // A team is 32 cooperating lanes; one team executes one operation.
  simt::Team team(cfg.team_size, /*team_id=*/0, /*seed=*/42);

  std::printf("== single team ==\n");
  for (Key k = 1; k <= 1000; ++k) list.insert(team, k * 2, /*value=*/k);
  std::printf("inserted 1000 even keys; size = %llu, height = %d\n",
              static_cast<unsigned long long>(list.size()),
              list.current_height());
  std::printf("contains(500)  = %d (even, present)\n",
              list.contains(team, 500));
  std::printf("contains(501)  = %d (odd, absent)\n", list.contains(team, 501));
  const auto v = list.find(team, 500);
  std::printf("find(500)      = %u\n", v.value_or(0));
  list.erase(team, 500);
  std::printf("after erase(500): contains = %d\n", list.contains(team, 500));

  std::printf("\n== four concurrent teams ==\n");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&list, t] {
      simt::Team mine(32, t + 1, 7);
      // Each team owns keys == t (mod 4) in a fresh range.
      for (Key i = 0; i < 2000; ++i) {
        list.insert(mine, 100'000 + i * 4 + static_cast<Key>(t), i);
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto rep = list.validate(/*strict=*/false);
  std::printf("after concurrent inserts: size = %llu, valid = %s\n",
              static_cast<unsigned long long>(list.size()),
              rep.ok ? "yes" : rep.error.c_str());

  std::printf("\n== device-model statistics ==\n");
  const auto s = mem.snapshot();
  std::printf("coalesced team reads : %llu (%llu transactions, %.1f%% L2 hits)\n",
              static_cast<unsigned long long>(s.warp_reads),
              static_cast<unsigned long long>(s.transactions),
              100.0 * static_cast<double>(s.l2_hits) /
                  static_cast<double>(s.transactions ? s.transactions : 1));
  std::printf("atomics              : %llu\n",
              static_cast<unsigned long long>(s.atomics));
  std::printf("avg chunks/traversal : %.2f (thesis: height+1 .. height+2)\n",
              list.avg_chunks_per_traversal());

  // Between-kernel compaction (the thesis's future-work reclamation).
  const auto before = list.chunks_allocated();
  list.compact();
  std::printf("\ncompact(): %u -> %u chunks\n", before,
              list.chunks_allocated());
  return 0;
}
