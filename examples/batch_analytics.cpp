// Example: streaming analytics over a live ordered index.
//
// The thesis motivates GFSL as a building block for database operations on
// the GPU (Chapter 1).  This example keeps an ordered index of events
// (key = timestamp, value = measurement) under continuous concurrent
// ingestion, while analyst teams run windowed range scans against it — the
// classic HTAP pattern.  Scans use the cooperative range-scan extension,
// which turns the chunked bottom level into a sequence of coalesced reads.
//
//   $ ./examples/batch_analytics
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/gfsl.h"
#include "device/device_memory.h"
#include "simt/team.h"

using namespace gfsl;

namespace {

struct WindowStats {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  Value min = 0xFFFFFFFFu;
  Value max = 0;
};

WindowStats analyze(core::Gfsl& index, simt::Team& team, Key lo, Key hi) {
  std::vector<std::pair<Key, Value>> window;
  index.scan(team, lo, hi, window);
  WindowStats s;
  for (const auto& [ts, v] : window) {
    ++s.count;
    s.sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  return s;
}

}  // namespace

int main() {
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = 32;
  cfg.pool_chunks = 1u << 16;
  core::Gfsl index(cfg, &mem);

  constexpr Key kTimestamps = 30'000;
  constexpr int kIngesters = 2;

  std::printf("phase 1: %d ingest teams stream %u timestamped events\n",
              kIngesters, kTimestamps);
  std::atomic<Key> ingested{0};
  std::vector<std::thread> ingesters;
  for (int t = 0; t < kIngesters; ++t) {
    ingesters.emplace_back([&, t] {
      simt::Team team(32, t, 5);
      // Interleaved timestamps: both ingesters append into the same chunks.
      for (Key ts = 1 + static_cast<Key>(t); ts <= kTimestamps;
           ts += kIngesters) {
        index.insert(team, ts, /*measurement=*/ts % 997);
        ingested.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Analysts run sliding-window queries concurrently with ingestion.
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> windows{0};
  std::atomic<std::uint64_t> anomalies{0};
  std::vector<std::thread> analysts;
  for (int a = 0; a < 2; ++a) {
    analysts.emplace_back([&, a] {
      simt::Team team(32, 10 + a, 6);
      Key lo = 1;
      while (!done.load(std::memory_order_acquire)) {
        const WindowStats s = analyze(index, team, lo, lo + 999);
        ++windows;
        // Monotonic-ingest invariant: a fully ingested window has exactly
        // 1000 events; a partial one can only be a suffix cut.
        if (s.count > 1000) ++anomalies;
        lo = (lo + 1000) % kTimestamps;
        if (lo == 0) lo = 1;
      }
    });
  }
  for (auto& t : ingesters) t.join();
  done = true;
  for (auto& t : analysts) t.join();

  std::printf("  ingested %u events; analysts ran %llu windows (%llu anomalies)\n",
              ingested.load(),
              static_cast<unsigned long long>(windows.load()),
              static_cast<unsigned long long>(anomalies.load()));

  std::printf("phase 2: quiescent full-table aggregation\n");
  simt::Team team(32, 0, 7);
  const WindowStats all = analyze(index, team, 1, kTimestamps);
  std::printf("  count=%llu sum=%llu min=%u max=%u (expect count=%u)\n",
              static_cast<unsigned long long>(all.count),
              static_cast<unsigned long long>(all.sum), all.min, all.max,
              kTimestamps);

  std::printf("phase 3: retention — drop the oldest third, then re-aggregate\n");
  for (Key ts = 1; ts <= kTimestamps / 3; ++ts) index.erase(team, ts);
  index.compact();  // between-kernel reclamation of the merged-away chunks
  const WindowStats rest = analyze(index, team, 1, kTimestamps);
  const auto rep = index.validate();
  std::printf("  count=%llu after retention; structure valid: %s\n",
              static_cast<unsigned long long>(rest.count),
              rep.ok ? "yes" : rep.error.c_str());

  const bool ok = all.count == kTimestamps && anomalies.load() == 0 &&
                  rest.count == kTimestamps - kTimestamps / 3 && rep.ok;
  std::printf("%s\n", ok ? "OK" : "FAILED");
  return ok ? 0 : 1;
}
