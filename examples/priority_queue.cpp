// Example: a concurrent priority queue on GFSL, Shavit-Lotan style.
//
// The thesis cites skiplist-based priority queues [SL00] as a core use case
// (Chapter 1).  A skiplist is already priority-ordered: extract-min is
// "find the smallest key and delete it".  Here multiple worker teams drain a
// task queue concurrently — each claims the minimum by erase(), whose
// bottom-level lock makes the claim exclusive, so every task is executed
// exactly once in (per-worker) priority order.
//
//   $ ./examples/priority_queue
#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "core/gfsl.h"
#include "device/device_memory.h"
#include "simt/team.h"

using namespace gfsl;

namespace {

class PriorityQueue {
 public:
  explicit PriorityQueue(device::DeviceMemory* mem) {
    core::GfslConfig cfg;
    cfg.team_size = 16;
    cfg.pool_chunks = 1u << 15;
    list_ = std::make_unique<core::Gfsl>(cfg, mem);
  }

  bool push(simt::Team& team, Key priority, Value payload) {
    return list_->insert(team, priority, payload);
  }

  /// Claim and remove the smallest priority <= bound.  Lock-free scan +
  /// exclusive claim via erase; retries when another worker wins the race.
  std::optional<std::pair<Key, Value>> try_pop_min(simt::Team& team,
                                                   Key bound) {
    for (Key probe = 1; probe <= bound;) {
      // Scan forward for the next present key (contains is lock-free).
      if (!list_->contains(team, probe)) {
        ++probe;
        continue;
      }
      const auto payload = list_->find(team, probe);
      if (payload.has_value() && list_->erase(team, probe)) {
        return std::make_pair(probe, *payload);
      }
      // Lost the claim race; rescan from the same spot.
    }
    return std::nullopt;
  }

  core::Gfsl& list() { return *list_; }

 private:
  std::unique_ptr<core::Gfsl> list_;
};

}  // namespace

int main() {
  device::DeviceMemory mem;
  PriorityQueue pq(&mem);

  constexpr Key kTasks = 4'000;
  {
    simt::Team boot(16, 0, 1);
    std::printf("enqueue %u tasks with distinct priorities\n", kTasks);
    for (Key p = 1; p <= kTasks; ++p) {
      pq.push(boot, p, /*payload=*/p * 10);
    }
  }

  constexpr int kWorkers = 4;
  std::vector<std::vector<Key>> claimed(kWorkers);
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      simt::Team team(16, w + 1, 2);
      for (;;) {
        const auto task = pq.try_pop_min(team, kTasks);
        if (!task.has_value()) break;  // drained
        claimed[static_cast<std::size_t>(w)].push_back(task->first);
      }
    });
  }
  for (auto& t : workers) t.join();

  // Exactly-once check: the union of claims must be precisely 1..kTasks.
  std::vector<bool> seen(kTasks + 1, false);
  std::uint64_t dups = 0, total = 0;
  bool per_worker_ordered = true;
  for (const auto& mine : claimed) {
    for (std::size_t i = 0; i < mine.size(); ++i) {
      ++total;
      if (seen[mine[i]]) ++dups;
      seen[mine[i]] = true;
      if (i > 0 && mine[i - 1] >= mine[i]) per_worker_ordered = false;
    }
  }
  std::uint64_t missing = 0;
  for (Key p = 1; p <= kTasks; ++p) {
    if (!seen[p]) ++missing;
  }

  std::printf("drained: %llu claims, %llu duplicates, %llu missing\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(dups),
              static_cast<unsigned long long>(missing));
  for (int w = 0; w < kWorkers; ++w) {
    std::printf("  worker %d claimed %zu tasks\n", w, claimed[w].size());
  }
  std::printf("per-worker claims in ascending priority order: %s\n",
              per_worker_ordered ? "yes" : "NO");
  std::printf("queue empty: %s, structure valid: %s\n",
              pq.list().size() == 0 ? "yes" : "NO",
              pq.list().validate(false).ok ? "yes" : "NO");
  return (dups == 0 && missing == 0) ? 0 : 1;
}
