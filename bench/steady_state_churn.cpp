// Steady-state churn — the memory-evolution bench for epoch reclamation
// (DESIGN.md §9).
//
// A 50/50 insert/erase mix over a small key range in a deliberately small
// chunk pool, run slice by slice.  After each slice we sample the arena:
// chunks in use (live + zombies + limbo), limbo depth, free-list depth and
// the cumulative reclaim count, plus host-side throughput.
//
// Run detached (no EpochManager) the same workload leaks every merged-away
// zombie and exhausts the pool within the first slices — the leak the paper's
// allocate-only scheme accepts.  Attached, in-use flat-lines at the live
// working set and the run continues indefinitely: churn in bounded memory.
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "core/gfsl.h"
#include "device/device_memory.h"
#include "device/epoch.h"
#include "simt/team.h"

using namespace gfsl;
using namespace gfsl::bench;

namespace {

struct ChurnParams {
  int workers = 4;
  int team_size = 8;
  std::uint32_t pool_chunks = 4096;
  std::uint64_t key_range = 512;
  std::uint64_t slices = 8;
  std::uint64_t ops_per_slice = 6144;  // slices * this >= 10x pool capacity
  std::uint64_t seed = 0xC0FF;
};

void run_churn(const ChurnParams& p, bool with_epochs, harness::Table* t) {
  device::DeviceMemory mem;
  device::EpochManager epochs;
  core::GfslConfig cfg;
  cfg.team_size = p.team_size;
  cfg.pool_chunks = p.pool_chunks;
  core::Gfsl sl(cfg, &mem, nullptr, nullptr, with_epochs ? &epochs : nullptr);
  const char* mode = with_epochs ? "ebr" : "leak";

  for (std::uint64_t s = 0; s < p.slices; ++s) {
    std::atomic<int> oom{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int w = 0; w < p.workers; ++w) {
      threads.emplace_back([&, w] {
        simt::Team team(p.team_size, w, 3);
        Xoshiro256ss rng(
            derive_seed(p.seed + s, static_cast<std::uint64_t>(w)));
        const std::uint64_t n =
            p.ops_per_slice / static_cast<std::uint64_t>(p.workers);
        try {
          for (std::uint64_t i = 0; i < n; ++i) {
            const Key k = 1 + static_cast<Key>(rng.below(p.key_range));
            if (rng.below(2) == 0) {
              sl.insert(team, k, k);
            } else {
              sl.erase(team, k);
            }
          }
        } catch (const std::bad_alloc&) {
          oom.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& th : threads) th.join();
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double kops = static_cast<double>(p.ops_per_slice) / sec / 1e3;

    t->add_row({mode, std::to_string(s + 1), harness::fmt(kops),
                std::to_string(sl.chunks_allocated()),
                std::to_string(with_epochs ? epochs.limbo_total() : 0),
                std::to_string(sl.arena().free_count()),
                std::to_string(sl.chunks_reclaimed()),
                oom.load() != 0 ? "POOL EXHAUSTED" : ""});
    if (oom.load() != 0) return;  // leaking mode: no point continuing
  }
}

}  // namespace

int main() {
  const Scale sc = Scale::from_env();
  print_scale_banner(sc);
  ChurnParams p;
  // GFSL_OPS scales total churn volume; keep >= 10x pool capacity per mode.
  p.ops_per_slice =
      std::max<std::uint64_t>(sc.ops / p.slices, 10ull * p.pool_chunks /
                                                     p.slices + 1);
  std::printf(
      "# steady-state churn: GFSL-%d, 50/50 insert/erase, range %llu, "
      "pool %u chunks, %llu slices x %llu ops, %d free-running teams\n",
      p.team_size, static_cast<unsigned long long>(p.key_range),
      p.pool_chunks, static_cast<unsigned long long>(p.slices),
      static_cast<unsigned long long>(p.ops_per_slice), p.workers);
  std::printf(
      "# detached (leak): every merge strands a zombie chunk until the pool "
      "dies; attached (ebr): in-use flat-lines at the working set\n\n");

  harness::Table t({"mode", "slice", "kops/s(host)", "in_use", "limbo",
                    "free", "reclaimed", "note"});
  run_churn(p, /*with_epochs=*/false, &t);
  run_churn(p, /*with_epochs=*/true, &t);
  t.print(std::cout);
  return 0;
}
