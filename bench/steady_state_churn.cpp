// Steady-state churn — the memory-evolution bench for epoch reclamation
// (DESIGN.md §9): a 50/50 insert/erase soak in a small pool, detached (leak)
// vs attached (ebr).
//
// Thin shim over the campaign registry (src/harness/campaign.cpp holds the
// soak loop); see fig_5_1_chunk_size.cpp for the shim contract.
#include "harness/campaign.h"

int main() { return gfsl::harness::campaign_main("steady_state_churn"); }
