// Figure 5.3 — "Throughput, in millions of operations per second, as a
// function of key range", one series pair (GFSL, M&C) per mixed-op
// distribution, with 95% confidence intervals over repeated runs.
//
// Shape to reproduce (§5.3): M&C "melts down quickly as the range ... grows"
// while GFSL stays nearly flat (e.g. 1M -> 10M costs M&C 69-75% and GFSL at
// most 8%); GFSL shows a contention dip at small ranges that moves right as
// the update share grows.
#include "bench_common.h"

using namespace gfsl;
using namespace gfsl::bench;

int main() {
  const Scale sc = Scale::from_env();
  print_scale_banner(sc);
  std::printf("# Figure 5.3: throughput vs key range, per mix (MOPS, mean ±95%% CI)\n\n");

  const harness::Mix mixes[] = {harness::kMix_1_1_98, harness::kMix_5_5_90,
                                harness::kMix_10_10_80, harness::kMix_20_20_60};
  const auto ranges = harness::sweep_ranges(sc.max_range);
  const int reps = static_cast<int>(sc.reps);

  for (const auto& mix : mixes) {
    std::printf("## mix %s\n", mix.name().c_str());
    harness::Table t({"range", "GFSL MOPS", "GFSL p50/p90/p99", "M&C MOPS",
                      "GFSL spins/op", "L2 hit (GFSL)", "L2 hit (M&C)"});
    for (const auto range : ranges) {
      auto wl = workload(mix, range, sc.ops, sc.seed);
      const auto setup = setup_from_scale(sc);
      const auto g = harness::repeat_gfsl(wl, setup, reps);
      const auto m = harness::repeat_mc(wl, setup, reps);
      // One extra instrumented run for the diagnostic columns.
      const auto gd = harness::measure_gfsl(wl, setup);
      const auto md = harness::measure_mc(wl, setup);
      const auto hit = [](const model::KernelRun& k) {
        return k.mem.transactions
                   ? static_cast<double>(k.mem.l2_hits) /
                         static_cast<double>(k.mem.transactions)
                   : 0.0;
      };
      t.add_row({harness::fmt_range(range),
                 harness::fmt_ci(g.mops.mean, g.mops.ci95_half),
                 fmt_tail(g.mops),
                 m.oom ? "OOM" : harness::fmt_ci(m.mops.mean, m.mops.ci95_half),
                 harness::fmt(static_cast<double>(gd.kernel.lock_spins) /
                                  static_cast<double>(gd.kernel.ops),
                              3),
                 harness::fmt_pct(hit(gd.kernel)),
                 harness::fmt_pct(hit(md.kernel))});
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "paper anchors @[10,10,80]: GFSL ~65.7 MOPS and M&C ~21.3 MOPS at 1M; "
      "GFSL loses up to 46%% at 10K with few updates.\n");
  return 0;
}
