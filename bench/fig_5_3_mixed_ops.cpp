// Figure 5.3 — throughput vs key range, one series pair (GFSL, M&C) per
// mixed-op distribution, with 95% confidence intervals over repeated runs.
//
// Thin shim over the campaign registry (src/harness/campaign.cpp holds the
// sweep); see fig_5_1_chunk_size.cpp for the shim contract.
#include "harness/campaign.h"

int main() { return gfsl::harness::campaign_main("fig_5_3_mixed_ops"); }
