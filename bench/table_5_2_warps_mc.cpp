// Table 5.2 — "Effects on M&C of limiting warps launched per block".
//
// Same sweep as Table 5.1, for the M&C baseline.  The thesis's observation
// to reproduce: throughput "varies very little, regardless of the number of
// warps launched" because M&C is memory-dependence bound, and spill stays
// ~23-25% everywhere due to the thread-local path arrays.
#include "bench_common.h"

#include "model/occupancy.h"

using namespace gfsl;
using namespace gfsl::bench;

int main() {
  const Scale sc = Scale::from_env();
  print_scale_banner(sc);
  const std::uint64_t range = std::min<std::uint64_t>(1'000'000, sc.max_range);
  std::printf("# Table 5.2: M&C, mix [10,10,80], range %s\n\n",
              harness::fmt_range(range).c_str());

  auto wl = workload(harness::kMix_10_10_80, range, sc.ops, sc.seed);
  const auto setup = setup_from_scale(sc);
  const auto measured = harness::measure_mc(wl, setup);

  const model::Occupancy occ_calc;
  const model::CostModel cm;

  struct PaperRow {
    int warps;
    double occ, theo;
    int regs, blocks;
    double spill, mops;
  };
  const PaperRow paper[] = {
      {8, 0.529, 0.625, 42, 5, 0.25, 20.7},
      {16, 0.416, 0.500, 42, 2, 0.23, 21.3},
      {24, 0.590, 0.750, 40, 2, 0.23, 20.6},
      {32, 0.794, 1.000, 32, 2, 0.24, 20.2},
  };

  harness::Table t({"warps/block", "occup/theor", "paper", "regs", "paper",
                    "blocks", "paper", "spill", "paper", "MOPS(model)",
                    "paper"});
  double lo = 1e30, hi = 0.0;
  for (const auto& p : paper) {
    const auto o = occ_calc.compute(model::kMcKernel, p.warps);
    const auto r = cm.throughput(measured.kernel, o);
    lo = std::min(lo, r.mops);
    hi = std::max(hi, r.mops);
    t.add_row({std::to_string(p.warps),
               harness::fmt_pct(o.achieved_occupancy) + "/" +
                   harness::fmt_pct(o.theoretical_occupancy),
               harness::fmt_pct(p.occ) + "/" + harness::fmt_pct(p.theo),
               std::to_string(o.registers_per_thread), std::to_string(p.regs),
               std::to_string(o.active_blocks), std::to_string(p.blocks),
               harness::fmt_pct(o.spill_fraction, 0),
               harness::fmt_pct(p.spill, 0), harness::fmt(r.mops),
               harness::fmt(p.mops)});
  }
  t.print(std::cout);
  std::printf(
      "\nmodeled throughput spread across configs: %.1f%% "
      "(paper: ~5%% — flat, memory-dependence bound)\n",
      hi > 0 ? (hi - lo) / hi * 100.0 : 0.0);
  return 0;
}
