// google-benchmark micro suite: costs of the cooperative primitives, chunk
// kernels and traversal building blocks in the simulator.  These measure
// *simulator* speed (host nanoseconds), useful for keeping the simulation
// itself fast; the modeled-GPU numbers come from the fig_*/table_* benches.
#include <benchmark/benchmark.h>

#include <memory>

#include "baseline/mc_skiplist.h"
#include "core/gfsl.h"
#include "device/device_memory.h"
#include "obs/metrics.h"
#include "sched/lease.h"
#include "simt/team.h"
#include "simt/trace.h"

namespace {

using namespace gfsl;

void BM_Ballot(benchmark::State& state) {
  simt::Team team(32, 0, 1);
  simt::LaneVec<bool> p(false);
  p[13] = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(team.ballot(p));
  }
}
BENCHMARK(BM_Ballot);

void BM_Shfl(benchmark::State& state) {
  simt::Team team(32, 0, 1);
  simt::LaneVec<std::uint64_t> v;
  for (int i = 0; i < 32; ++i) v[i] = static_cast<std::uint64_t>(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(team.shfl(v, 17));
  }
}
BENCHMARK(BM_Shfl);

struct GfslBench {
  GfslBench(int team_size, Key prefill, bool with_leases = false,
            bool with_epochs = false)
      : team(team_size, 0, 1) {
    core::GfslConfig cfg;
    cfg.team_size = team_size;
    cfg.pool_chunks = 1u << 16;
    if (with_leases) leases = std::make_unique<sched::LeaseTable>();
    if (with_epochs) epochs = std::make_unique<device::EpochManager>();
    sl = std::make_unique<core::Gfsl>(cfg, &mem, nullptr, leases.get(),
                                      epochs.get());
    std::vector<std::pair<Key, Value>> pairs;
    for (Key k = 1; k <= prefill; ++k) pairs.emplace_back(k * 2, k);
    sl->bulk_load(pairs);
  }
  device::DeviceMemory mem;
  std::unique_ptr<sched::LeaseTable> leases;
  std::unique_ptr<device::EpochManager> epochs;
  simt::Team team;
  std::unique_ptr<core::Gfsl> sl;
};

void BM_GfslContains(benchmark::State& state) {
  GfslBench b(static_cast<int>(state.range(0)), 10'000);
  Key k = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.sl->contains(b.team, k));
    k = (k % 20'000) + 1;
  }
}
BENCHMARK(BM_GfslContains)->Arg(16)->Arg(32);

void BM_GfslInsertErase(benchmark::State& state) {
  GfslBench b(32, 10'000);
  Key k = 50'001;
  for (auto _ : state) {
    b.sl->insert(b.team, k, 0);
    b.sl->erase(b.team, k);
    ++k;
  }
}
BENCHMARK(BM_GfslInsertErase);

// A/B partners for the two benchmarks above: identical loops with a metrics
// shard attached.  The deltas bound the telemetry hot-path cost; the
// unattached versions double as the disabled-path (null-pointer test only)
// regression check.
void BM_GfslContainsWithMetrics(benchmark::State& state) {
  GfslBench b(static_cast<int>(state.range(0)), 10'000);
  obs::MetricsRegistry reg(1);
  b.team.set_metrics(&reg.shard(0));
  Key k = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.sl->contains(b.team, k));
    k = (k % 20'000) + 1;
  }
}
BENCHMARK(BM_GfslContainsWithMetrics)->Arg(16)->Arg(32);

void BM_GfslInsertEraseWithMetrics(benchmark::State& state) {
  GfslBench b(32, 10'000);
  obs::MetricsRegistry reg(1);
  b.team.set_metrics(&reg.shard(0));
  Key k = 50'001;
  for (auto _ : state) {
    b.sl->insert(b.team, k, 0);
    b.sl->erase(b.team, k);
    ++k;
  }
}
BENCHMARK(BM_GfslInsertEraseWithMetrics);

// A/B partners with the flight recorder armed: a clockless TeamTrace ring
// (timestamps disabled — no steady_clock read per record) attached to the
// team, as the postmortem dump-on-anomaly path keeps it on every run.  The
// delta against the detached loops is the always-armed recorder cost, which
// must stay within noise (a ring store is a few arithmetic ops + one array
// write; the seq counter replaces the clock).
void BM_GfslContainsWithFlightRecorder(benchmark::State& state) {
  GfslBench b(static_cast<int>(state.range(0)), 10'000);
  simt::TeamTrace ring(256, /*timestamps=*/false);
  b.team.set_trace(&ring);
  Key k = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.sl->contains(b.team, k));
    k = (k % 20'000) + 1;
  }
}
BENCHMARK(BM_GfslContainsWithFlightRecorder)->Arg(16)->Arg(32);

void BM_GfslInsertEraseWithFlightRecorder(benchmark::State& state) {
  GfslBench b(32, 10'000);
  simt::TeamTrace ring(256, /*timestamps=*/false);
  b.team.set_trace(&ring);
  Key k = 50'001;
  for (auto _ : state) {
    b.sl->insert(b.team, k, 0);
    b.sl->erase(b.team, k);
    ++k;
  }
}
BENCHMARK(BM_GfslInsertEraseWithFlightRecorder);

// A/B partner for BM_GfslInsertErase with crash tolerance armed: every lock
// acquisition stamps a lease word and every mutation span publishes an
// intent descriptor.  The delta against the lease-less loop above is the
// fault-free overhead of the whole recovery layer (uncontended, the lease
// adds one relaxed load to try_lock plus the intent's handful of stores).
void BM_GfslInsertEraseWithLeases(benchmark::State& state) {
  GfslBench b(32, 10'000, /*with_leases=*/true);
  Key k = 50'001;
  for (auto _ : state) {
    b.sl->insert(b.team, k, 0);
    b.sl->erase(b.team, k);
    ++k;
  }
}
BENCHMARK(BM_GfslInsertEraseWithLeases);

void BM_GfslContainsWithLeases(benchmark::State& state) {
  GfslBench b(static_cast<int>(state.range(0)), 10'000, /*with_leases=*/true);
  Key k = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.sl->contains(b.team, k));
    k = (k % 20'000) + 1;
  }
}
BENCHMARK(BM_GfslContainsWithLeases)->Arg(16)->Arg(32);

// A/B partners with epoch reclamation attached: every op pins/unpins an
// epoch slot, traversal reads verify generation stamps, and erase-side
// merges retire chunks to limbo.  The delta against the detached loops is
// the fault-free EBR overhead (DESIGN.md §9 budgets it within noise for
// reads and a few percent for updates).
void BM_GfslInsertEraseWithEpochs(benchmark::State& state) {
  GfslBench b(32, 10'000, /*with_leases=*/false, /*with_epochs=*/true);
  Key k = 50'001;
  for (auto _ : state) {
    b.sl->insert(b.team, k, 0);
    b.sl->erase(b.team, k);
    ++k;
  }
}
BENCHMARK(BM_GfslInsertEraseWithEpochs);

void BM_GfslContainsWithEpochs(benchmark::State& state) {
  GfslBench b(static_cast<int>(state.range(0)), 10'000,
              /*with_leases=*/false, /*with_epochs=*/true);
  Key k = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.sl->contains(b.team, k));
    k = (k % 20'000) + 1;
  }
}
BENCHMARK(BM_GfslContainsWithEpochs)->Arg(16)->Arg(32);

void BM_GfslContainsNoAccounting(benchmark::State& state) {
  GfslBench b(32, 10'000);
  b.mem.set_accounting(false);
  Key k = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.sl->contains(b.team, k));
    k = (k % 20'000) + 1;
  }
}
BENCHMARK(BM_GfslContainsNoAccounting);

void BM_McContains(benchmark::State& state) {
  device::DeviceMemory mem;
  baseline::McSkiplist::Config cfg;
  cfg.pool_slots = 1u << 22;
  baseline::McSkiplist sl(cfg, &mem);
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 1; k <= 10'000; ++k) pairs.emplace_back(k * 2, k);
  sl.bulk_load(pairs, 1);
  baseline::McContext ctx(0);
  Key k = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sl.contains(ctx, k));
    k = (k % 20'000) + 1;
  }
}
BENCHMARK(BM_McContains);

void BM_GfslScan(benchmark::State& state) {
  GfslBench b(32, 20'000);
  const auto width = static_cast<Key>(state.range(0));
  Key lo = 2;
  std::vector<std::pair<Key, Value>> out;
  for (auto _ : state) {
    out.clear();
    benchmark::DoNotOptimize(b.sl->scan(b.team, lo, lo + width, out));
    lo = (lo % 30'000) + 2;
  }
  state.SetItemsProcessed(state.iterations() * (width / 2));
}
BENCHMARK(BM_GfslScan)->Arg(64)->Arg(1024);

void BM_GfslValidate(benchmark::State& state) {
  GfslBench b(32, static_cast<Key>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.sl->validate().ok);
  }
}
BENCHMARK(BM_GfslValidate)->Arg(1'000)->Arg(10'000);

void BM_CacheSimAccess(benchmark::State& state) {
  device::CacheSim cache;
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addr));
    addr += 128;
  }
}
BENCHMARK(BM_CacheSimAccess);

void BM_BulkLoad(benchmark::State& state) {
  const auto n = static_cast<Key>(state.range(0));
  for (auto _ : state) {
    GfslBench b(32, n);
    benchmark::DoNotOptimize(b.sl->size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BulkLoad)->Arg(1'000)->Arg(10'000);

}  // namespace
