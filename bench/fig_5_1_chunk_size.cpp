// Figure 5.1 — throughput of GFSL-16 vs GFSL-32 vs M&C on [10,10,80].
//
// The thesis shows the comparison at the 1M key range: GFSL-32 and GFSL-16
// are close (GFSL-32 ahead by up to 28% in large ranges) and both are well
// above M&C.  GFSL-16 chunks are 128 B (one transaction per team read);
// GFSL-32 chunks are 256 B (two transactions) but make a shallower
// structure.  A range sweep is printed as well, extending the figure.
#include "bench_common.h"

using namespace gfsl;
using namespace gfsl::bench;

int main() {
  const Scale sc = Scale::from_env();
  print_scale_banner(sc);
  std::printf("# Figure 5.1: GFSL-16 vs GFSL-32 vs M&C, mix [10,10,80]\n");
  std::printf("# paper @1M: GFSL-32 ~65.7, GFSL-16 within 28%% below, M&C ~21.3 MOPS\n\n");

  const int reps = static_cast<int>(sc.reps);
  harness::Table t({"range", "GFSL-16 MOPS", "GFSL-32 MOPS", "M&C MOPS",
                    "GFSL-32/GFSL-16"});
  for (const auto range : harness::sweep_ranges(sc.max_range)) {
    auto wl = workload(harness::kMix_10_10_80, range, sc.ops, sc.seed);
    auto s16 = setup_from_scale(sc, /*team_size=*/16);
    auto s32 = setup_from_scale(sc, /*team_size=*/32);
    const auto g16 = harness::repeat_gfsl(wl, s16, reps);
    const auto g32 = harness::repeat_gfsl(wl, s32, reps);
    const auto mc = harness::repeat_mc(wl, s32, reps);
    t.add_row({harness::fmt_range(range),
               harness::fmt_ci(g16.mops.mean, g16.mops.ci95_half),
               harness::fmt_ci(g32.mops.mean, g32.mops.ci95_half),
               mc.oom ? "OOM" : harness::fmt_ci(mc.mops.mean, mc.mops.ci95_half),
               harness::fmt(g32.mops.mean / g16.mops.mean, 2)});
  }
  t.print(std::cout);
  return 0;
}
