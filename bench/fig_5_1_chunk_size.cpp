// Figure 5.1 — throughput of GFSL-16 vs GFSL-32 vs M&C on [10,10,80].
//
// Thin shim over the campaign registry (src/harness/campaign.cpp holds the
// sweep): prints the figure tables at env scale and, when GFSL_BENCH_JSON_DIR
// is set, writes the gfsl-bench-v1 report alongside.  `bench_runner` drives
// the same campaign with quick/reps/out-dir knobs.
#include "harness/campaign.h"

int main() { return gfsl::harness::campaign_main("fig_5_1_chunk_size"); }
