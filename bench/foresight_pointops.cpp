// Foresight point-ops A/B — hinted bottom-chunk descent through the epoch-
// published hint table (DESIGN.md §14) versus the classic head descent, on
// the paper's point-lookup mixes.
//
// Thin shim over the campaign registry (src/harness/campaign.cpp holds the
// A/B loop); see fig_5_1_chunk_size.cpp for the shim contract.
#include "harness/campaign.h"

int main() { return gfsl::harness::campaign_main("foresight_pointops"); }
