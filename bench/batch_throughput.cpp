// Batch throughput A/B — kernel-style batched dispatch (DESIGN.md §10)
// versus the seed's per-op dispatch, across batch sizes and key ranges.
//
// Per-op dispatch restarts every traversal from the head; batched dispatch
// key-sorts each batch, cuts it into contiguous key-range shards, and a team
// draining a shard carries a warm descent cursor from op to op, so most
// searches resume partway down instead of paying a full descent.  The win
// grows with batch size (bigger shards, denser key runs) and shrinks with
// key range (sparser shards reuse less of the cursor).  Acceptance target:
// >= 1.3x modeled throughput at batch >= 1024 on the 20/20/60 mix at 1M keys.
#include "bench_common.h"

using namespace gfsl;
using namespace gfsl::bench;

int main() {
  const Scale sc = Scale::from_env();
  print_scale_banner(sc);
  std::printf(
      "# Batched vs per-op dispatch (MOPS, mean of %llu reps), mix 20/20/60\n\n",
      static_cast<unsigned long long>(sc.reps));

  const std::uint64_t ranges[] = {100'000, 1'000'000};
  const std::size_t batch_sizes[] = {256, 1024, 4096};
  const int reps = static_cast<int>(sc.reps);

  for (const auto range : ranges) {
    std::printf("## key range %s\n", harness::fmt_range(range).c_str());
    harness::Table t({"dispatch", "model MOPS", "sim MOPS", "speedup",
                      "reuse %", "chunks/trav", "steals/batch"});

    auto wl = workload(harness::kMix_20_20_60, range, sc.ops, sc.seed);
    auto setup = setup_from_scale(sc);

    setup.batch_size = 0;  // baseline: the seed's per-op dispatch
    const auto base = harness::repeat_gfsl(wl, setup, reps);
    const auto based = harness::measure_gfsl(wl, setup);
    t.add_row({"per-op", harness::fmt_ci(base.mops.mean, base.mops.ci95_half),
               harness::fmt(based.sim_mops), "1.00x", "-",
               harness::fmt(based.avg_chunks_per_traversal, 2), "-"});

    for (const auto bs : batch_sizes) {
      setup.batch_size = bs;
      const auto b = harness::repeat_gfsl(wl, setup, reps);
      const auto bd = harness::measure_gfsl(wl, setup);
      const auto descents =
          bd.batch.descent_reuses + bd.batch.full_descents;
      const double reuse =
          descents ? static_cast<double>(bd.batch.descent_reuses) /
                         static_cast<double>(descents)
                   : 0.0;
      const auto num_batches = (wl.num_ops + bs - 1) / bs;
      t.add_row(
          {"batch " + std::to_string(bs),
           harness::fmt_ci(b.mops.mean, b.mops.ci95_half),
           harness::fmt(bd.sim_mops),
           harness::fmt(b.mops.mean / base.mops.mean, 2) + "x",
           harness::fmt_pct(reuse),
           harness::fmt(bd.avg_chunks_per_traversal, 2),
           harness::fmt(static_cast<double>(bd.batch.steals) /
                            static_cast<double>(num_batches),
                        1)});
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "acceptance: batched >= 1.3x per-op modeled throughput at batch >= 1024, "
      "1M key range.\n");
  return 0;
}
