// Batch throughput A/B — kernel-style batched dispatch (DESIGN.md §10)
// versus the seed's per-op dispatch, across batch sizes and key ranges.
//
// Thin shim over the campaign registry (src/harness/campaign.cpp holds the
// A/B loop); see fig_5_1_chunk_size.cpp for the shim contract.
#include "harness/campaign.h"

int main() { return gfsl::harness::campaign_main("batch_throughput"); }
