// Extension — two teams per warp (thesis Chapter 7, future work).
//
// "We believe that GFSL-16 would probably outperform GFSL-32 with proper
//  support for executing two teams within the same warp.  However,
//  synchronization between threads in the same warp is a delicate task ...
//  teams in the same warp may deadlock while trying to take the lock for the
//  same chunk."
//
// This bench implements that support in the simulator: pairs of 16-lane
// teams share a warp under round-robin lockstep (StepScheduler::RoundRobin).
// The deadlock hazard is dissolved by construction — a spinning team yields
// at every iteration, so its warp-mate (possibly the lock holder) always
// advances.  The cost model overlaps the pair's memory waits while keeping
// their instruction issue serialized.  The conjecture to test: GFSL-16x2
// recovers the 128 B single-transaction chunk reads AND warp-level op
// parallelism, beating GFSL-32.
#include "bench_common.h"

using namespace gfsl;
using namespace gfsl::bench;

int main() {
  const Scale sc = Scale::from_env();
  print_scale_banner(sc);
  std::printf("# Extension: GFSL-16 x2 teams/warp vs GFSL-16 and GFSL-32\n");
  std::printf("# thesis conjecture: dual-team GFSL-16 should beat GFSL-32\n\n");

  const int reps = static_cast<int>(sc.reps);
  harness::Table t({"range", "GFSL-16 MOPS", "GFSL-32 MOPS", "GFSL-16x2 MOPS",
                    "16x2 / 32"});
  for (const auto range : harness::sweep_ranges(sc.max_range)) {
    auto wl = workload(harness::kMix_10_10_80, range, sc.ops, sc.seed);
    const auto s16 = setup_from_scale(sc, /*team_size=*/16);
    const auto s32 = setup_from_scale(sc, /*team_size=*/32);
    const auto g16 = harness::repeat_gfsl(wl, s16, reps);
    const auto g32 = harness::repeat_gfsl(wl, s32, reps);
    const auto dual = harness::repeat_gfsl_dual(wl, s16, reps);
    t.add_row({harness::fmt_range(range),
               harness::fmt_ci(g16.mops.mean, g16.mops.ci95_half),
               harness::fmt_ci(g32.mops.mean, g32.mops.ci95_half),
               harness::fmt_ci(dual.mops.mean, dual.mops.ci95_half),
               harness::fmt(dual.mops.mean / g32.mops.mean, 2) + "x"});
  }
  t.print(std::cout);
  return 0;
}
