// §5.2 ablation — the effect of p_chunk on GFSL.
//
// The thesis: "using p_chunk ≈ 1 in GFSL gave the best results in all
// operation mixtures ... the average number of chunks read in a traversal is
// between structure-height+1 and structure-height+2 ... Lowering p_chunk
// causes more lateral steps to be taken, while not having a significant
// impact on structure height."  This bench sweeps p_chunk and reports
// modeled throughput, structure height and chunks-read-per-traversal.
#include "bench_common.h"

using namespace gfsl;
using namespace gfsl::bench;

int main() {
  const Scale sc = Scale::from_env();
  print_scale_banner(sc);
  const std::uint64_t range = std::min<std::uint64_t>(1'000'000, sc.max_range);
  std::printf("# p_chunk ablation: GFSL-32, mix [10,10,80], range %s\n",
              harness::fmt_range(range).c_str());
  std::printf("# paper: best at p_chunk ~ 1; traversal reads height+1..height+2\n\n");

  harness::Table t({"p_chunk", "MOPS(model)", "chunks/traversal",
                    "warp reads/op", "L2 hit"});
  double best_mops = 0.0;
  double best_p = 0.0;
  for (const double p : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto wl = workload(harness::kMix_10_10_80, range, sc.ops, sc.seed);
    auto setup = setup_from_scale(sc);
    setup.p_chunk = p;
    const auto m = harness::measure_gfsl(wl, setup);
    if (m.model_mops > best_mops) {
      best_mops = m.model_mops;
      best_p = p;
    }
    const double reads_per_op =
        static_cast<double>(m.kernel.mem.warp_reads) /
        static_cast<double>(m.kernel.ops ? m.kernel.ops : 1);
    const double hit =
        m.kernel.mem.transactions
            ? static_cast<double>(m.kernel.mem.l2_hits) /
                  static_cast<double>(m.kernel.mem.transactions)
            : 0.0;
    t.add_row({harness::fmt(p, 1), harness::fmt(m.model_mops),
               harness::fmt(m.avg_chunks_per_traversal, 2),
               harness::fmt(reads_per_op, 2), harness::fmt_pct(hit)});
  }
  t.print(std::cout);
  std::printf("\nbest p_chunk (modeled): %.1f (paper: ~1.0)\n", best_p);
  return 0;
}
