// Table 5.1 — "Effects on GFSL of limiting warps launched per block".
//
// Sweeps warps/block over {8, 16, 24, 32} for GFSL-32 on the [10,10,80] mix
// at the 1M key range (reduced by default; see the scale banner).  Occupancy,
// registers, active blocks and spill come from the occupancy calculator; the
// throughput row feeds the measured simulator events through the cost model
// under each launch configuration.  Paper reference values are printed in
// the adjacent columns.
#include "bench_common.h"

#include "model/occupancy.h"

using namespace gfsl;
using namespace gfsl::bench;

int main() {
  const Scale sc = Scale::from_env();
  print_scale_banner(sc);
  const std::uint64_t range = std::min<std::uint64_t>(1'000'000, sc.max_range);
  std::printf("# Table 5.1: GFSL, mix [10,10,80], range %s\n\n",
              harness::fmt_range(range).c_str());

  // One measured run; the launch configuration only changes the model side.
  auto wl = workload(harness::kMix_10_10_80, range, sc.ops, sc.seed);
  const auto setup = setup_from_scale(sc);
  const auto measured = harness::measure_gfsl(wl, setup);

  const model::Occupancy occ_calc;
  const model::CostModel cm;

  // Thesis Table 5.1 rows for side-by-side comparison.
  struct PaperRow {
    int warps;
    double occ, theo;
    int regs, blocks;
    double spill, mops;
  };
  const PaperRow paper[] = {
      {8, 0.367, 0.375, 79, 3, 0.00, 58.9},
      {16, 0.488, 0.500, 64, 2, 0.10, 65.7},
      {24, 0.730, 0.750, 40, 2, 0.43, 62.5},
      {32, 0.958, 1.000, 32, 2, 0.53, 52.9},
  };

  harness::Table t({"warps/block", "occup/theor", "paper", "regs", "paper",
                    "blocks", "paper", "spill", "paper", "MOPS(model)",
                    "paper"});
  double best_mops = 0.0;
  int best_warps = 0;
  for (const auto& p : paper) {
    const auto o = occ_calc.compute(model::kGfslKernel, p.warps);
    const auto r = cm.throughput(measured.kernel, o);
    if (r.mops > best_mops) {
      best_mops = r.mops;
      best_warps = p.warps;
    }
    t.add_row({std::to_string(p.warps),
               harness::fmt_pct(o.achieved_occupancy) + "/" +
                   harness::fmt_pct(o.theoretical_occupancy),
               harness::fmt_pct(p.occ) + "/" + harness::fmt_pct(p.theo),
               std::to_string(o.registers_per_thread), std::to_string(p.regs),
               std::to_string(o.active_blocks), std::to_string(p.blocks),
               harness::fmt_pct(o.spill_fraction, 0),
               harness::fmt_pct(p.spill, 0), harness::fmt(r.mops),
               harness::fmt(p.mops)});
  }
  t.print(std::cout);
  std::printf(
      "\nbest modeled configuration: %d warps/block (paper: 16 warps/block "
      "peaks at 65.7 MOPS)\n",
      best_warps);
  return 0;
}
