// Figure 5.2 — "Ratio between GFSL and M&C as a function of the key range".
//
// Thin shim over the campaign registry (src/harness/campaign.cpp holds the
// sweep); see fig_5_1_chunk_size.cpp for the shim contract.
#include "harness/campaign.h"

int main() { return gfsl::harness::campaign_main("fig_5_2_ratio"); }
