// Figure 5.2 — "Ratio between GFSL and M&C as a function of the key range".
//
// For each mixed-op distribution, prints GFSL/M&C modeled-throughput ratios
// across the key-range sweep.  Shape to reproduce (§5.3): ratio < 1 at 10K
// (down to 0.54), ~1 around 30K, then rising — 1.27x to ~10.6x at large
// ranges as M&C's uncoalesced traffic blows past the L2.
#include "bench_common.h"

using namespace gfsl;
using namespace gfsl::bench;

int main() {
  const Scale sc = Scale::from_env();
  print_scale_banner(sc);
  std::printf("# Figure 5.2: GFSL / M&C throughput ratio per key range\n");
  std::printf("# paper: 0.54-0.85 @10K, ~1 @30K, 1.27-10.64 above\n\n");

  const harness::Mix mixes[] = {harness::kMix_1_1_98, harness::kMix_5_5_90,
                                harness::kMix_10_10_80, harness::kMix_20_20_60};
  const auto ranges = harness::sweep_ranges(sc.max_range);
  const int reps = static_cast<int>(sc.reps);

  std::vector<std::string> header{"range"};
  for (const auto& m : mixes) header.push_back(m.name());
  harness::Table t(header);

  for (const auto range : ranges) {
    std::vector<std::string> row{harness::fmt_range(range)};
    for (const auto& mix : mixes) {
      auto wl = workload(mix, range, sc.ops, sc.seed);
      const auto setup = setup_from_scale(sc);
      const auto g = harness::repeat_gfsl(wl, setup, reps);
      const auto m = harness::repeat_mc(wl, setup, reps);
      if (m.oom) {
        row.push_back("M&C OOM");
      } else {
        row.push_back(harness::fmt(g.mops.mean / m.mops.mean, 2) + "x");
      }
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  return 0;
}
