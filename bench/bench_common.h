// Shared bench-binary plumbing: scale knobs, standard setup, and the
// paper-reference annotations printed next to measured values.
#pragma once

#include <cstdio>
#include <iostream>

#include "common/env.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/workload.h"

namespace gfsl::bench {

inline harness::StructureSetup setup_from_scale(const Scale& sc,
                                                int team_size = 32) {
  harness::StructureSetup s;
  s.team_size = team_size;
  s.p_chunk = env_double("GFSL_P_CHUNK", 1.0);
  s.warps_per_block = static_cast<int>(env_u64("GFSL_WARPS_PER_BLOCK", 16));
  s.num_workers = static_cast<int>(sc.teams);
  s.warmup_ops = std::min<std::uint64_t>(sc.ops / 4, 20'000);
  return s;
}

inline harness::WorkloadConfig workload(const harness::Mix& mix,
                                        std::uint64_t range,
                                        std::uint64_t ops,
                                        std::uint64_t seed) {
  harness::WorkloadConfig wl;
  wl.mix = mix;
  wl.key_range = range;
  wl.num_ops = ops;
  wl.prefill = harness::default_prefill(mix);
  wl.seed = seed;
  return wl;
}

/// "p50/p90/p99" tail column for a repetition summary (same unit as mean).
inline std::string fmt_tail(const Summary& s) {
  return harness::fmt(s.p50, 1) + "/" + harness::fmt(s.p90, 1) + "/" +
         harness::fmt(s.p99, 1);
}

inline void print_scale_banner(const Scale& sc) {
  std::printf(
      "# scale: ops=%llu max_range=%llu reps=%llu teams=%llu "
      "(env: GFSL_OPS, GFSL_MAX_RANGE, GFSL_REPS, GFSL_TEAMS; "
      "paper scale: ops=10M, ranges to 100M, reps=10)\n",
      static_cast<unsigned long long>(sc.ops),
      static_cast<unsigned long long>(sc.max_range),
      static_cast<unsigned long long>(sc.reps),
      static_cast<unsigned long long>(sc.teams));
}

}  // namespace gfsl::bench
