// Shared bench-binary plumbing, now delegating to the campaign library
// (src/harness/campaign.h) so the standalone table/ablation binaries and the
// campaign runner share one copy of the scale/setup/workload helpers.
#pragma once

#include <iostream>
#include <string>

#include "common/env.h"
#include "harness/campaign.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/workload.h"

namespace gfsl::bench {

inline harness::StructureSetup setup_from_scale(const Scale& sc,
                                                int team_size = 32) {
  return harness::setup_from_scale(sc, team_size);
}

inline harness::WorkloadConfig workload(const harness::Mix& mix,
                                        std::uint64_t range,
                                        std::uint64_t ops,
                                        std::uint64_t seed) {
  return harness::make_workload(mix, range, ops, seed);
}

/// "p50/p90/p99" tail column for a repetition summary (same unit as mean).
inline std::string fmt_tail(const Summary& s) {
  return harness::fmt(s.p50, 1) + "/" + harness::fmt(s.p90, 1) + "/" +
         harness::fmt(s.p99, 1);
}

inline void print_scale_banner(const Scale& sc) {
  harness::print_scale_banner(sc);
}

}  // namespace gfsl::bench
