// Figure 5.4 — single-op-type throughput vs key range: Contains-only,
// Insert-only, Delete-only.
//
// Per §5.1: Contains runs against a fully prefilled structure; Insert starts
// empty; Delete starts full; insert/delete op counts track the key range
// ("in order not to oversaturate small structures").  Shape to reproduce
// (§5.3): GFSL wins everywhere — contains up to 4.4x, inserts 3.5-9.1x,
// deletes 3.5-12.6x — and the Contains-only GFSL curve has no contention dip.
#include "bench_common.h"

using namespace gfsl;
using namespace gfsl::bench;

int main() {
  const Scale sc = Scale::from_env();
  print_scale_banner(sc);
  std::printf("# Figure 5.4: single-op-type throughput vs key range\n\n");

  struct Panel {
    harness::Mix mix;
    const char* title;
    const char* paper;
  };
  const Panel panels[] = {
      {harness::kContainsOnly, "Contains-only",
       "paper: GFSL 2.9x-4.4x over M&C"},
      {harness::kInsertOnly, "Insert-only", "paper: GFSL 3.5x-9.1x over M&C"},
      {harness::kDeleteOnly, "Delete-only", "paper: GFSL 3.5x-12.6x over M&C"},
  };
  const auto ranges = harness::sweep_ranges(sc.max_range);
  const int reps = static_cast<int>(sc.reps);

  for (const auto& p : panels) {
    std::printf("## %s (%s)\n", p.title, p.paper);
    harness::Table t({"range", "GFSL MOPS", "M&C MOPS", "GFSL/M&C"});
    for (const auto range : ranges) {
      // Insert/Delete run `range` ops in the paper; scale alongside GFSL_OPS.
      const std::uint64_t ops = (p.mix.contains_pct == 100)
                                    ? sc.ops
                                    : std::min<std::uint64_t>(range, sc.ops);
      auto wl = workload(p.mix, range, ops, sc.seed);
      // The paper's insert-only run grows an empty structure with ops ==
      // range, so the structure averages ~range/2 keys.  When GFSL_OPS caps
      // the op count below the range, start from that average instead —
      // otherwise the structure never outgrows the L2 and the measurement
      // degenerates to the cache-resident regime.
      if (p.mix.insert_pct == 100 && ops < range) {
        wl.prefill = harness::Prefill::HalfRange;
      }
      const auto setup = setup_from_scale(sc);
      const auto g = harness::repeat_gfsl(wl, setup, reps);
      const auto m = harness::repeat_mc(wl, setup, reps);
      t.add_row({harness::fmt_range(range),
                 harness::fmt_ci(g.mops.mean, g.mops.ci95_half),
                 m.oom ? "OOM" : harness::fmt_ci(m.mops.mean, m.mops.ci95_half),
                 m.oom ? "-" : harness::fmt(g.mops.mean / m.mops.mean, 2) + "x"});
    }
    t.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
