// Figure 5.4 — single-op-type throughput vs key range: Contains-only,
// Insert-only, Delete-only.
//
// Thin shim over the campaign registry (src/harness/campaign.cpp holds the
// sweep); see fig_5_1_chunk_size.cpp for the shim contract.
#include "harness/campaign.h"

int main() { return gfsl::harness::campaign_main("fig_5_4_single_op"); }
