// Scan-mixed A/B — MVCC snapshot scans (DESIGN.md §13) concurrent with a
// mutating mix, versus the seed's best-effort legacy scan with versioning
// detached.
//
// Thin shim over the campaign registry (src/harness/campaign.cpp holds the
// A/B loop); see fig_5_1_chunk_size.cpp for the shim contract.
#include "harness/campaign.h"

int main() { return gfsl::harness::campaign_main("scan_mixed"); }
