// gfsl_cli — run arbitrary GFSL / M&C experiments from the command line.
//
//   gfsl_cli --structure gfsl --mix 10,10,80 --range 1000000 --ops 100000
//            --reps 3 --team-size 32 --p-chunk 1.0 --workers 8 --csv
//
// Options (all optional):
//   --structure gfsl|mc|gfsl-dual   which implementation to run [gfsl]
//   --mix i,d,c                     op percentages, summing to 100 [10,10,80]
//   --range N                       key range [1000000]
//   --ops N                         operations per run [100000]
//   --reps N                        repetitions (mean ±95% CI) [3]
//   --seed N                        master RNG seed [1]
//   --team-size 8|16|32             GFSL chunk/team size [32]
//   --p-chunk F                     GFSL raise probability [1.0]
//   --warps-per-block 8|16|24|32    launch config for the model [16]
//   --workers N                     concurrent simulator threads [8]
//   --prefill empty|half|full       initial structure [per-mix default]
//   --warmup N                      untimed warmup ops [ops/4]
//   --batch-size N                  kernel-style batched dispatch with N ops
//                                   per launch (gfsl only; 0 = per-op) [0]
//   --foresight                     attach a ForesightIndex (DESIGN.md §14):
//                                   point ops and cold batch descents jump to
//                                   a hinted bottom chunk; hit/stale counters
//                                   land in --metrics-json (gfsl only)
//   --snapshot-scan                 attach a SnapshotManager to the detail run
//                                   and drive a concurrent scanner thread
//                                   through snapshot() + scan_at(); scan
//                                   traffic is reported separately and the
//                                   repetition runs stay unversioned (gfsl
//                                   only)
//   --csv                           CSV output instead of a table
//   --metrics-json PATH             write a telemetry report (one measured
//                                   run) as gfsl-metrics-v1 JSON
//   --trace-out PATH                write per-team Chrome trace-event JSON
//                                   (load in chrome://tracing / perfetto)
//   --postmortem-out PATH           after the detail run, validate the
//                                   structure and write a gfsl-postmortem-v1
//                                   bundle (reason "on_demand" when healthy,
//                                   "validate_failure" otherwise; gfsl only)
//   --persist PATH                  back the detail run's arena with a durable
//                                   file-backed region at PATH (gfsl only);
//                                   the run ends with a clean-shutdown mark
//   --recover                       offline recovery: attach the region at
//                                   --persist PATH, run Gfsl::recover() and
//                                   print the repair report; no workload runs
//   --integrity                     attach an IntegritySidecar (DESIGN.md §15)
//                                   to the detail run: every lock release
//                                   restamps the chunk's seal, checked reads
//                                   verify on their cold path (gfsl only)
//   --scrub N                       with --integrity (implied): run N online
//                                   scrub passes after the detail run and
//                                   print the integrity stat rows (gfsl only)
//   --corrupt SECTION:KIND:SEED     no workload: run one corruption-sweep
//                                   cell (sections chunk|freelist|intent|
//                                   superblock|generation, kinds flip|
//                                   multiflip|torn|stuck|dropbarrier) and
//                                   print what the armor did about it
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "core/gfsl.h"
#include "device/device_memory.h"
#include "device/fault_plane.h"
#include "device/persist.h"
#include "harness/corrupt_sweep.h"
#include "harness/experiment.h"
#include "harness/options.h"
#include "harness/report.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"
#include "sched/lease.h"

using namespace gfsl;
using namespace gfsl::harness;

namespace {

Mix parse_mix(const std::string& s) {
  Mix m{};
  if (std::sscanf(s.c_str(), "%d,%d,%d", &m.insert_pct, &m.delete_pct,
                  &m.contains_pct) != 3 ||
      m.insert_pct + m.delete_pct + m.contains_pct != 100) {
    throw std::invalid_argument("--mix must be i,d,c summing to 100");
  }
  return m;
}

Prefill parse_prefill(const std::string& s, const Mix& mix) {
  if (s == "empty") return Prefill::Empty;
  if (s == "half") return Prefill::HalfRange;
  if (s == "full") return Prefill::FullRange;
  if (s.empty()) return default_prefill(mix);
  throw std::invalid_argument("--prefill must be empty|half|full");
}

int usage() {
  std::fprintf(stderr,
               "usage: gfsl_cli [--structure gfsl|mc|gfsl-dual] [--mix i,d,c] "
               "[--range N] [--ops N] [--reps N] [--seed N] [--team-size N] "
               "[--p-chunk F] [--warps-per-block N] [--workers N] "
               "[--prefill empty|half|full] [--warmup N] [--batch-size N] "
               "[--foresight] [--snapshot-scan] [--csv] [--metrics-json PATH] "
               "[--trace-out PATH] [--postmortem-out PATH] [--persist PATH] "
               "[--recover] [--integrity] [--scrub N] "
               "[--corrupt SECTION:KIND:SEED]\n");
  return 2;
}

/// One corruption-sweep cell (the `--corrupt section:kind:seed` repro form
/// the sweep's failure lines print): inject exactly that fault, run the
/// detect/repair/quarantine pipeline, and report what the armor did.
int run_corrupt_cell(const Options& opt, bool csv) {
  const std::string spec = opt.get("corrupt", "");
  const auto c1 = spec.find(':');
  const auto c2 = c1 == std::string::npos ? std::string::npos
                                          : spec.find(':', c1 + 1);
  device::FaultSection section{};
  device::FaultKind kind{};
  if (c2 == std::string::npos ||
      !device::parse_fault_section(spec.substr(0, c1), &section) ||
      !device::parse_fault_kind(spec.substr(c1 + 1, c2 - c1 - 1), &kind)) {
    std::fprintf(stderr,
                 "error: --corrupt wants SECTION:KIND:SEED (sections "
                 "chunk|freelist|intent|superblock|generation, kinds "
                 "flip|multiflip|torn|stuck|dropbarrier)\n");
    return 2;
  }
  CorruptSweepConfig cfg;
  cfg.sections = {section};
  cfg.kinds = {kind};
  cfg.first_seed = std::strtoull(spec.c_str() + c2 + 1, nullptr, 0);
  cfg.seeds = 1;
  cfg.team_size = static_cast<int>(opt.get_u64("team-size", 8));
  cfg.ops = opt.get_u64("ops", 400);
  cfg.key_range = opt.get_u64("range", 96);
  cfg.base_seed = opt.get_u64("seed", 0x5EED5EEDull);
  cfg.postmortem_dir = opt.get("postmortem-out", "");
  const CorruptSweepResult res = run_corrupt_sweep(cfg);

  Table t({"metric", "value"});
  t.add_row({"cell", spec});
  t.add_row({"resolved", res.ok ? "yes" : "NO"});
  t.add_row({"faults injected", std::to_string(res.injected)});
  t.add_row({"faults detected", std::to_string(res.detected)});
  t.add_row({"chunks repaired", std::to_string(res.repaired)});
  t.add_row({"chunks quarantined", std::to_string(res.quarantined)});
  t.add_row({"keys lost (reported)", std::to_string(res.keys_lost)});
  t.add_row({"typed rejections", std::to_string(res.rejected_typed)});
  t.add_row({"recoveries verified", std::to_string(res.recoveries)});
  t.add_row({"barriers dropped", std::to_string(res.barriers_dropped)});
  if (!res.ok) t.add_row({"error", res.error});
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
  return res.ok ? 0 : 1;
}

/// Offline crash recovery: attach the region file, adopt its image, run the
/// full recover() pass and report what was repaired.  The structure is torn
/// down immediately after — this is the "fsck" entry point; a subsequent run
/// with --persist PATH picks the repaired image back up.
int run_recover(const std::string& path, bool csv) {
  device::PersistRegion region(path, device::PersistRegion::Mode::kAttach);
  if (region.was_clean()) {
    std::fprintf(stderr,
                 "note: region was marked clean (%llu persist points "
                 "recorded); recovering anyway\n",
                 static_cast<unsigned long long>(
                     region.recorded_persist_points()));
  }
  sched::LeaseTable leases;
  leases.attach(
      static_cast<std::atomic<std::uint32_t>*>(region.lease_slots()),
      /*adopt=*/true);
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = static_cast<int>(region.geometry().entries_per_chunk);
  cfg.pool_chunks = region.geometry().capacity;
  core::Gfsl sl(cfg, &mem, nullptr, &leases, nullptr, &region);
  const core::RecoveryReport rep = sl.recover();

  Table t({"metric", "value"});
  t.add_row({"region", path});
  t.add_row({"team size", std::to_string(cfg.team_size)});
  t.add_row({"pool chunks", std::to_string(cfg.pool_chunks)});
  t.add_row({"recovered", rep.ok ? "yes" : "NO"});
  t.add_row({"locks released", std::to_string(rep.locks_released)});
  t.add_row({"intents repaired", std::to_string(rep.intents_repaired)});
  t.add_row({"chunks freed", std::to_string(rep.chunks_freed)});
  t.add_row({"stale keys scrubbed", std::to_string(rep.stale_keys_scrubbed)});
  t.add_row({"upper chunks unlinked", std::to_string(rep.chunks_unlinked)});
  if (!rep.ok) t.add_row({"error", rep.error});
  if (csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
  return rep.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    opt = Options::parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  }
  const std::set<std::string> known{
      "structure", "mix",     "range",           "ops",    "reps",
      "seed",      "team-size", "p-chunk",       "warps-per-block",
      "workers",   "prefill", "warmup",          "csv",    "help",
      "metrics-json", "trace-out", "batch-size", "postmortem-out",
      "persist",   "recover", "snapshot-scan", "foresight",
      "integrity", "scrub",   "corrupt"};
  if (opt.get_bool("help")) return usage();
  for (const auto& u : opt.unknown(known)) {
    std::fprintf(stderr, "error: unknown option --%s\n", u.c_str());
    return usage();
  }
  if (opt.has("corrupt")) {
    try {
      return run_corrupt_cell(opt, opt.get_bool("csv"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: corruption cell failed: %s\n", e.what());
      return 1;
    }
  }
  if (opt.get_bool("recover")) {
    const std::string path = opt.get("persist", "");
    if (path.empty()) {
      std::fprintf(stderr, "error: --recover requires --persist PATH\n");
      return usage();
    }
    try {
      return run_recover(path, opt.get_bool("csv"));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: recovery failed: %s\n", e.what());
      return 1;
    }
  }

  WorkloadConfig wl;
  StructureSetup setup;
  std::string structure;
  try {
    structure = opt.get("structure", "gfsl");
    wl.mix = parse_mix(opt.get("mix", "10,10,80"));
    wl.key_range = opt.get_u64("range", 1'000'000);
    wl.num_ops = opt.get_u64("ops", 100'000);
    wl.seed = opt.get_u64("seed", 1);
    wl.prefill = parse_prefill(opt.get("prefill", ""), wl.mix);
    setup.team_size = static_cast<int>(opt.get_u64("team-size", 32));
    setup.p_chunk = opt.get_double("p-chunk", 1.0);
    setup.warps_per_block =
        static_cast<int>(opt.get_u64("warps-per-block", 16));
    setup.num_workers = static_cast<int>(opt.get_u64("workers", 8));
    setup.warmup_ops = opt.get_u64("warmup", wl.num_ops / 4);
    setup.batch_size = opt.get_u64("batch-size", 0);
    if (setup.batch_size > 0 && opt.get("structure", "gfsl") != "gfsl") {
      throw std::invalid_argument("--batch-size requires --structure gfsl");
    }
    setup.persist_path = opt.get("persist", "");
    if (!setup.persist_path.empty() && structure != "gfsl") {
      throw std::invalid_argument("--persist requires --structure gfsl");
    }
    if (opt.get_bool("snapshot-scan") && structure != "gfsl") {
      throw std::invalid_argument("--snapshot-scan requires --structure gfsl");
    }
    setup.foresight = opt.get_bool("foresight");
    if (setup.foresight && structure != "gfsl") {
      throw std::invalid_argument("--foresight requires --structure gfsl");
    }
    setup.scrub_passes = static_cast<int>(opt.get_u64("scrub", 0));
    setup.integrity = opt.get_bool("integrity") || setup.scrub_passes > 0;
    if (setup.integrity && structure != "gfsl") {
      throw std::invalid_argument(
          "--integrity/--scrub requires --structure gfsl");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  }
  const int reps = static_cast<int>(opt.get_u64("reps", 3));
  const std::string metrics_path = opt.get("metrics-json", "");
  const std::string trace_path = opt.get("trace-out", "");
  const std::string postmortem_path = opt.get("postmortem-out", "");
  if (!postmortem_path.empty() && structure != "gfsl") {
    std::fprintf(stderr, "error: --postmortem-out requires --structure gfsl\n");
    return usage();
  }

  // Telemetry is attached to the single detail run only (not the reps), so
  // the report describes exactly one measured launch.  gfsl-dual rounds its
  // worker count up to even internally — shard accordingly.
  int telemetry_workers = setup.num_workers;
  if (structure == "gfsl-dual" && telemetry_workers % 2 != 0) {
    ++telemetry_workers;
  }
  const bool snapshot_scan = opt.get_bool("snapshot-scan");
  if (snapshot_scan) ++telemetry_workers;  // the scanner thread's shard
  if (setup.integrity) ++telemetry_workers;  // the scrub medic's shard
  obs::MetricsRegistry metrics(telemetry_workers);
  obs::TraceSession trace;
  StructureSetup detail_setup = setup;
  if (!metrics_path.empty()) detail_setup.metrics = &metrics;
  if (!trace_path.empty()) detail_setup.trace = &trace;
  detail_setup.postmortem_out = postmortem_path;
  // Versioning is attached to the detail run only: the repetition runs keep
  // the seed's unversioned fast path so the reported MOPS stay comparable.
  detail_setup.snapshot_scan = snapshot_scan;

  Repeated rep;
  Measurement detail;
  try {
    if (structure == "gfsl") {
      rep = repeat_gfsl(wl, setup, reps);
      detail = measure_gfsl(wl, detail_setup);
    } else if (structure == "mc") {
      rep = repeat_mc(wl, setup, reps);
      detail = measure_mc(wl, detail_setup);
    } else if (structure == "gfsl-dual") {
      rep = repeat_gfsl_dual(wl, setup, reps);
      detail = measure_gfsl_dual(wl, detail_setup);
    } else {
      std::fprintf(stderr, "error: unknown structure '%s'\n",
                   structure.c_str());
      return usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: experiment failed: %s\n", e.what());
    return 1;
  }

  if (!metrics_path.empty()) {
    metrics.set_info("structure", structure);
    metrics.set_info("mix", wl.mix.name());
    metrics.set_info("key_range", std::to_string(wl.key_range));
    metrics.set_info("num_ops", std::to_string(wl.num_ops));
    metrics.set_info("seed", std::to_string(wl.seed));
    metrics.set_info("team_size", std::to_string(setup.team_size));
    metrics.set_info("p_chunk", fmt(setup.p_chunk, 3));
    metrics.set_info("workers", std::to_string(telemetry_workers));
    metrics.set_info("warmup_ops", std::to_string(setup.warmup_ops));
    metrics.set_info("batch_size", std::to_string(setup.batch_size));
    metrics.set_info("snapshot_scan", snapshot_scan ? "1" : "0");
    metrics.set_info("foresight", setup.foresight ? "1" : "0");
    metrics.set_info("integrity", setup.integrity ? "1" : "0");
    metrics.set_info("scrub_passes", std::to_string(setup.scrub_passes));
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n", metrics_path.c_str());
      return 1;
    }
    metrics.write_json(out);
    if (!out) {
      std::fprintf(stderr, "error: write failed: %s\n", metrics_path.c_str());
      return 1;
    }
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot open %s\n", trace_path.c_str());
      return 1;
    }
    trace.write_chrome_trace(out);
    if (!out) {
      std::fprintf(stderr, "error: write failed: %s\n", trace_path.c_str());
      return 1;
    }
  }

  const auto& k = detail.kernel;
  const double per_op = k.ops > 0 ? 1.0 / static_cast<double>(k.ops) : 0.0;
  Table t({"metric", "value"});
  t.add_row({"structure", structure});
  t.add_row({"mix", wl.mix.name()});
  t.add_row({"range", fmt_range(wl.key_range)});
  t.add_row({"ops/run", std::to_string(wl.num_ops)});
  t.add_row({"modeled MOPS", fmt_ci(rep.mops.mean, rep.mops.ci95_half)});
  t.add_row({"MOPS p50/p90/p99", fmt(rep.mops.p50, 2) + "/" +
                                     fmt(rep.mops.p90, 2) + "/" +
                                     fmt(rep.mops.p99, 2)});
  t.add_row({"simulator MOPS", fmt(detail.sim_mops, 2)});
  t.add_row({"OOM", rep.oom ? "yes" : "no"});
  t.add_row({"bound", detail.detail.bandwidth_bound ? "bandwidth" : "latency"});
  t.add_row({"reads/op (coalesced)",
             fmt(static_cast<double>(k.mem.warp_reads) * per_op, 2)});
  t.add_row({"reads/op (lane)",
             fmt(static_cast<double>(k.mem.lane_reads) * per_op, 2)});
  t.add_row({"transactions/op",
             fmt(static_cast<double>(k.mem.transactions) * per_op, 2)});
  t.add_row({"L2 hit ratio",
             fmt_pct(k.mem.transactions
                         ? static_cast<double>(k.mem.l2_hits) /
                               static_cast<double>(k.mem.transactions)
                         : 0.0)});
  t.add_row({"atomics/op", fmt(static_cast<double>(k.mem.atomics) * per_op, 3)});
  t.add_row({"lock spins/op",
             fmt(static_cast<double>(k.lock_spins) * per_op, 3)});
  if (structure != "mc") {
    t.add_row({"chunks/traversal", fmt(detail.avg_chunks_per_traversal, 2)});
  }
  if (setup.batch_size > 0) {
    const auto& b = detail.batch;
    const std::uint64_t searches = b.descent_reuses + b.full_descents;
    t.add_row({"batch size", std::to_string(setup.batch_size)});
    t.add_row({"shards", std::to_string(b.shards)});
    t.add_row({"shard steals", std::to_string(b.steals)});
    t.add_row({"descent reuse",
               fmt_pct(searches ? static_cast<double>(b.descent_reuses) /
                                      static_cast<double>(searches)
                                : 0.0)});
    t.add_row({"epoch pins", std::to_string(b.epoch_pins)});
  }
  if (setup.foresight && detail_setup.metrics != nullptr) {
    // Hint-path effectiveness of the one armed detail run.
    const obs::MetricsShard all = metrics.merged();
    const double hits = static_cast<double>(all.counter(obs::kForesightHits));
    const double falls =
        static_cast<double>(all.counter(obs::kForesightFallbacks));
    const double consults = hits + falls;
    t.add_row({"foresight hit rate",
               fmt_pct(consults > 0.0 ? hits / consults : 0.0)});
    t.add_row({"foresight stale hints",
               std::to_string(all.counter(obs::kForesightStaleHints))});
    t.add_row({"foresight rebuilds",
               std::to_string(all.counter(obs::kForesightRebuilds))});
  }
  if (snapshot_scan) {
    t.add_row({"snapshot scans", std::to_string(detail.snapshot_scans)});
    t.add_row({"snapshot scan items",
               std::to_string(detail.snapshot_scan_items)});
    t.add_row({"snapshot scans expired",
               std::to_string(detail.snapshot_scans_expired)});
  }
  if (setup.integrity) {
    t.add_row({"sealed chunks", std::to_string(detail.sealed_chunks)});
    t.add_row({"scrub suspects", std::to_string(detail.scrub_suspects)});
    if (setup.scrub_passes > 0) {
      t.add_row({"scrub passes", std::to_string(setup.scrub_passes)});
      t.add_row({"scrub chunks scanned",
                 std::to_string(detail.scrub_chunks_scanned)});
      t.add_row({"scrub mismatches",
                 std::to_string(detail.scrub_mismatches)});
      t.add_row({"scrub repaired", std::to_string(detail.scrub_repaired)});
      t.add_row({"scrub quarantined",
                 std::to_string(detail.scrub_quarantined)});
    }
  }
  if (opt.get_bool("csv")) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
  return 0;
}
