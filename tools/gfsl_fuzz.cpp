// gfsl_fuzz — randomized concurrency fuzzing under deterministic schedules.
//
//   gfsl_fuzz [--rounds N] [--workers N] [--ops N] [--range N] [--team-size N]
//             [--with-foresight]
//
// Each round draws a fresh workload seed and scheduler seed, runs a
// multi-team history under StepScheduler::Deterministic, then checks
// (a) structural invariants, (b) per-key sequential consistency of the
// recorded history.  Any violation prints the reproduction parameters —
// plug them into gfsl_replay to debug.  Exits non-zero on the first failure.
// --with-foresight attaches an aggressively-rebuilt hint table (DESIGN.md
// §14) so hinted descents race the mix's splits/merges, and adds a
// full-range contains() differential against collect() after each round
// (failures dump `foresight_mismatch` postmortem bundles).
//
// Observability (every mode):
//
//   --postmortem-dir DIR   Arm clockless flight-recorder rings on every team
//       and, when a round fails (validate failure, watchdog stall, history
//       violation, oracle mismatch), drop a gfsl-postmortem-v1 bundle into
//       DIR (which must exist) carrying the per-team event tails, a metrics
//       snapshot, the epoch-pinned structure walk and the repro parameters.
//   --metrics-json PATH    (churn / crash / batch modes) After the run,
//       write the merged gfsl-metrics-v1 snapshot — op counters, retry and
//       structure-shape histograms — to PATH.  Crash modes keep
//       --metrics-out as an alias.
//
// Crash modes (harness/crash_sweep.h):
//
//   gfsl_fuzz --crash-sweep [--crash-seed S] [--crash-stride N]
//             [--workers N] [--team-size N] [--ops N] [--range N]
//             [--metrics-out FILE] [--with-snapshots] [--with-foresight]
//       Exhaustive crash-point sweep: kill the victim team at every yield
//       step of the seeded reference run; every run must recover (no hang,
//       valid structure, linearizable history with the crashed op optional).
//       --with-snapshots additionally bulk-loads a prefill, holds a
//       snapshot of it across every kill, and requires the post-recovery
//       scan_at to reproduce the prefill exactly (snapshot_mismatch
//       postmortems otherwise).
//
//   gfsl_fuzz --crash-at STEP [--crash-seed S] ...
//       Replay a single kill step — the repro form printed on failure.
//
//   gfsl_fuzz --proc-crash-sweep [--crash-seed S] [--crash-stride N]
//             [--workers N] [--team-size N] [--ops N] [--range N]
//             [--with-epochs] [--with-snapshots] [--work-dir DIR]
//       Whole-PROCESS crash sweep (harness/proc_crash_sweep.h): a forked
//       child runs the workload over a file-backed persist region and is
//       SIGKILLed at every persist point; the parent attaches the orphaned
//       region, runs Gfsl::recover() and checks the recovered contents
//       against the child's op journal (plus an exact std::map replay when
//       --workers 1).  --with-snapshots versions the child (kills land
//       inside record stamps and durable-revision pushes) and makes the
//       parent verify a fresh post-recovery snapshot: scan_at must equal
//       the recovered contents and its revision must not regress below the
//       durable clock.
//
// Corruption modes (harness/corrupt_sweep.h; DESIGN.md §15):
//
//   gfsl_fuzz --corrupt-sweep [--corrupt-seeds N] [--seed S] [--team-size N]
//             [--ops N] [--range N] [--pool N] [--work-dir DIR]
//             [--postmortem-dir DIR]
//       One injected fault per run, swept across every durable section x
//       fault kind x N seeds.  Chunk-data faults must be detected by the
//       seal machinery and repaired (exact contents restored) or
//       quarantined (every missing key inside a reported blast radius);
//       durable-section faults must recover() to the exact pre-close image
//       or be refused with a typed superblock rejection; dropped barriers
//       must change nothing.  Any silent wrong answer fails the sweep with
//       a one-line `--corrupt section:kind:seed` repro.
//
//   gfsl_fuzz --corrupt SECTION:KIND:SEED [...]
//       Replay a single matrix cell — the repro form printed on failure.
//       Sections: chunk freelist intent superblock generation.
//       Kinds: flip multiflip torn stuck dropbarrier.
//
// Churn mode (the bounded-memory soak, DESIGN.md §9):
//
//   gfsl_fuzz --churn [--workers N] [--ops N] [--range N] [--team-size N]
//             [--pool N] [--seed S] [--persist PATH]
//       Free-running threads drive a 50/50 insert/erase mix through a small
//       pool for >= 10x the pool's capacity in operations.  With epoch
//       reclamation every merged-away chunk is recycled, so the run must
//       finish with chunks_allocated() bounded and validate() clean; without
//       it the same workload exhausts the pool almost immediately.
//       --persist backs the arena with a durable region at PATH (leases
//       attached, every transition crossing a persist barrier), soaking the
//       persistence hot path under free-running contention; the run ends
//       with a clean shutdown mark.
//
// Batch mode (the differential oracle harness, DESIGN.md §10):
//
//   gfsl_fuzz --batch [--rounds N] [--workers N] [--ops N] [--range N]
//             [--team-size N] [--seed S]
//       Each round draws a random mixed batch and replays it against a
//       std::map oracle (tests/oracle.h): every per-op outcome and the final
//       structure must match the submission-order reference.  Rounds
//       alternate single-team run_batch and the multi-team stealing runner,
//       and attach an EpochManager on every second round so batched descent
//       reuse is fuzzed against concurrent reclamation too.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <set>
#include <thread>

#include "common/random.h"
#include "core/gfsl.h"
#include "device/device_memory.h"
#include "device/epoch.h"
#include "device/persist.h"
#include "harness/corrupt_sweep.h"
#include "harness/crash_sweep.h"
#include "harness/experiment.h"
#include "harness/proc_crash_sweep.h"
#include "harness/history.h"
#include "harness/options.h"
#include "harness/postmortem.h"
#include "harness/runner.h"
#include "harness/workload.h"
#include "obs/trace_export.h"
#include "oracle.h"
#include "sched/lease.h"
#include "sched/step_scheduler.h"
#include "simt/trace.h"

using namespace gfsl;
using namespace gfsl::harness;

namespace {

struct RoundParams {
  std::uint64_t wl_seed;
  std::uint64_t sched_seed;
  int workers;
  int team_size;
  std::uint64_t ops;
  std::uint64_t range;
  std::uint64_t round = 0;
  bool with_foresight = false;  // attach a hint table, verify the hinted path
  std::string postmortem_dir;  // non-empty: arm rings, dump on failure
};

bool run_round(const RoundParams& p, std::string* err) {
  device::DeviceMemory mem;
  sched::StepScheduler sched(sched::StepScheduler::Mode::Deterministic,
                             p.sched_seed, p.workers);
  core::GfslConfig cfg;
  cfg.team_size = p.team_size;
  cfg.pool_chunks = 1u << 14;
  // Threshold 1 keeps the table churning, so hinted descents race every
  // split/merge the mix produces instead of settling into a stale no-op.
  std::unique_ptr<core::ForesightIndex> foresight;
  if (p.with_foresight) {
    foresight = std::make_unique<core::ForesightIndex>(
        cfg.pool_chunks, /*stride=*/1, /*rebuild_threshold=*/1);
  }
  core::Gfsl sl(cfg, &mem, &sched, nullptr, nullptr, nullptr, nullptr,
                foresight.get());

  WorkloadConfig wl;
  wl.mix = kMix_20_20_60;  // update-heavy: maximum structural churn
  wl.key_range = p.range;
  wl.num_ops = p.ops;
  wl.seed = p.wl_seed;
  const auto ops = generate_ops(wl);

  HistoryLog log(p.ops / static_cast<std::uint64_t>(p.workers) + 8, p.workers);
  std::vector<std::unique_ptr<simt::TeamTrace>> rings;
  if (!p.postmortem_dir.empty()) {
    for (int w = 0; w < p.workers; ++w) {
      rings.push_back(
          std::make_unique<simt::TeamTrace>(1024, /*timestamps=*/false));
    }
  }
  auto dump_failure = [&](const std::string& reason,
                          const std::string& detail) {
    if (p.postmortem_dir.empty()) return;
    PostmortemContext ctx;
    ctx.reason = reason;
    ctx.detail = detail;
    ctx.gfsl = &sl;
    for (const auto& ring : rings) ctx.rings.push_back(ring.get());
    ctx.info = {{"harness", "fuzz_round"},
                {"round", std::to_string(p.round)},
                {"wl_seed", std::to_string(p.wl_seed)},
                {"sched_seed", std::to_string(p.sched_seed)},
                {"workers", std::to_string(p.workers)},
                {"team_size", std::to_string(p.team_size)},
                {"ops", std::to_string(p.ops)},
                {"range", std::to_string(p.range)},
                {"with_foresight", p.with_foresight ? "1" : "0"}};
    (void)dump_postmortem(p.postmortem_dir,
                          "postmortem_round_" + std::to_string(p.round), ctx);
  };
  std::vector<std::thread> threads;
  for (int w = 0; w < p.workers; ++w) {
    threads.emplace_back([&, w] {
      simt::Team team(p.team_size, w, 3);
      if (!rings.empty()) {
        team.set_trace(rings[static_cast<std::size_t>(w)].get());
      }
      sched.enter(w);
      for (std::size_t i = static_cast<std::size_t>(w); i < ops.size();
           i += static_cast<std::size_t>(p.workers)) {
        const Op& op = ops[i];
        const auto t = log.begin_op();
        bool r = false;
        switch (op.kind) {
          case OpKind::Insert: r = sl.insert(team, op.key, op.value); break;
          case OpKind::Delete: r = sl.erase(team, op.key); break;
          case OpKind::Contains: r = sl.contains(team, op.key); break;
        }
        log.end_op(w, t, op.kind, op.key, r);
      }
      sched.leave(w);
    });
  }
  for (auto& t : threads) t.join();

  const auto rep = sl.validate(/*strict=*/false);
  if (!rep.ok) {
    *err = "structure invalid: " + rep.error;
    dump_failure("validate_failure", *err);
    return false;
  }
  std::vector<Key> final_keys;
  for (const auto& [k, v] : sl.collect()) final_keys.push_back(k);
  const auto check = check_history(log.merged(), {}, final_keys);
  if (!check.ok) {
    *err = "history violation: " + check.error;
    dump_failure("history_violation", *err);
    return false;
  }
  // Hinted-read differential: with the table attached, a quiescent contains()
  // over every key in range — most consults land on a published hint — must
  // agree exactly with the structure walk collect() just did.  Any divergence
  // means a hint steered a search past its key: the one failure mode the
  // generation/zombie validation exists to make impossible.
  if (p.with_foresight) {
    std::set<Key> live(final_keys.begin(), final_keys.end());
    simt::Team verifier(p.team_size, p.workers, 3);  // medic-style fresh id
    for (std::uint64_t k = 1; k <= p.range; ++k) {
      const Key key = static_cast<Key>(k);
      if (sl.contains(verifier, key) != (live.count(key) != 0)) {
        *err = "foresight mismatch: contains(" + std::to_string(k) +
               ") disagrees with collect()";
        dump_failure("foresight_mismatch", *err);
        return false;
      }
    }
  }
  return true;
}

void dump_metrics(const obs::MetricsRegistry& reg, const std::string& path) {
  if (path.empty()) return;
  std::ofstream os(path);
  reg.write_json(os);
  std::printf("metrics written to %s\n", path.c_str());
}

int run_crash_mode(const Options& opt) {
  CrashSweepConfig cfg;
  cfg.workers = static_cast<int>(opt.get_u64("workers", 3));
  cfg.team_size = static_cast<int>(opt.get_u64("team-size", 8));
  cfg.ops = opt.get_u64("ops", 96);
  cfg.key_range = opt.get_u64("range", 48);
  cfg.victim = static_cast<int>(opt.get_u64("victim", 0));
  cfg.stride = opt.get_u64("crash-stride", 1);
  cfg.with_epochs = opt.get_bool("with-epochs");
  cfg.with_snapshots = opt.get_bool("with-snapshots");
  cfg.with_foresight = opt.get_bool("with-foresight");
  cfg.prefill = opt.get_u64("prefill", cfg.key_range / 2);
  const auto seed = opt.get_u64("crash-seed", 0xC4A5);
  cfg.wl_seed = seed;
  cfg.sched_seed = seed ^ 0x9E3779B97F4A7C15ull;
  obs::MetricsRegistry reg(cfg.workers + 1);
  reg.set_info("mode", opt.has("crash-at") ? "crash-at" : "crash-sweep");
  // --metrics-json is the cross-mode spelling; --metrics-out predates it.
  const std::string metrics_out =
      opt.get("metrics-json", opt.get("metrics-out", ""));
  cfg.postmortem_dir = opt.get("postmortem-dir", "");

  if (opt.has("crash-at")) {
    const auto step = opt.get_u64("crash-at", 1);
    // Watchdog needs the baseline step count; run the fault-free reference
    // first.
    const auto base = run_crash_at(cfg, UINT64_MAX, UINT64_MAX, nullptr);
    if (!base.ok) {
      std::printf("FAIL baseline: %s\n", base.error.c_str());
      return 1;
    }
    const auto r = run_crash_at(
        cfg, step, base.steps * cfg.watchdog_factor + cfg.watchdog_slack,
        &reg);
    dump_metrics(reg, metrics_out);
    if (!r.ok) {
      std::printf(
          "FAIL crash-at %llu: %s\n"
          "  repro: --crash-at %llu --crash-seed %llu --workers %d "
          "--team-size %d --ops %llu --range %llu\n",
          static_cast<unsigned long long>(step), r.error.c_str(),
          static_cast<unsigned long long>(step),
          static_cast<unsigned long long>(seed), cfg.workers, cfg.team_size,
          static_cast<unsigned long long>(cfg.ops),
          static_cast<unsigned long long>(cfg.key_range));
      return 1;
    }
    std::printf("crash-at %llu clean (victim %s, %d locks medic-recovered)\n",
                static_cast<unsigned long long>(step),
                r.victim_killed ? "killed" : "survived", r.locks_recovered);
    return 0;
  }

  const auto sweep = run_crash_sweep(cfg, &reg, stdout);
  dump_metrics(reg, metrics_out);
  if (!sweep.ok) {
    std::printf(
        "FAIL crash-sweep at step %llu: %s\n"
        "  repro: --crash-at %llu --crash-seed %llu --workers %d "
        "--team-size %d --ops %llu --range %llu\n",
        static_cast<unsigned long long>(sweep.failed_at_step),
        sweep.error.c_str(),
        static_cast<unsigned long long>(sweep.failed_at_step),
        static_cast<unsigned long long>(seed), cfg.workers, cfg.team_size,
        static_cast<unsigned long long>(cfg.ops),
        static_cast<unsigned long long>(cfg.key_range));
    return 1;
  }
  std::printf(
      "crash-sweep clean: %llu runs over %llu steps (stride %llu), "
      "%llu kills landed, %llu medic recoveries, %llu snapshot checks "
      "(workers=%d team=%d ops=%llu range=%llu seed=%llu%s)\n",
      static_cast<unsigned long long>(sweep.runs),
      static_cast<unsigned long long>(sweep.baseline_steps),
      static_cast<unsigned long long>(cfg.stride),
      static_cast<unsigned long long>(sweep.kills_landed),
      static_cast<unsigned long long>(sweep.medic_recoveries),
      static_cast<unsigned long long>(sweep.snapshot_checks), cfg.workers,
      cfg.team_size, static_cast<unsigned long long>(cfg.ops),
      static_cast<unsigned long long>(cfg.key_range),
      static_cast<unsigned long long>(seed),
      (std::string(cfg.with_snapshots ? " --with-snapshots" : "") +
       (cfg.with_foresight ? " --with-foresight" : ""))
          .c_str());
  return 0;
}

int run_proc_crash_mode(const Options& opt) {
  ProcCrashSweepConfig cfg;
  cfg.workers = static_cast<int>(opt.get_u64("workers", 2));
  cfg.team_size = static_cast<int>(opt.get_u64("team-size", 8));
  cfg.ops = opt.get_u64("ops", 160);
  cfg.key_range = opt.get_u64("range", 64);
  cfg.pool_chunks = static_cast<std::uint32_t>(opt.get_u64("pool", 1u << 14));
  cfg.stride = opt.get_u64("crash-stride", 1);
  cfg.with_epochs = opt.get_bool("with-epochs");
  cfg.with_snapshots = opt.get_bool("with-snapshots");
  cfg.work_dir = opt.get("work-dir", ".");
  cfg.postmortem_dir = opt.get("postmortem-dir", "");
  const auto seed = opt.get_u64("crash-seed", 0xAB5E);
  cfg.wl_seed = seed;
  cfg.sched_seed = seed ^ 0x9E3779B97F4A7C15ull;

  const auto sweep = run_proc_crash_sweep(cfg, stdout);
  if (!sweep.ok) {
    std::printf(
        "FAIL proc-crash-sweep at persist point %llu: %s\n"
        "  repro: --proc-crash-sweep --crash-seed %llu --workers %d "
        "--team-size %d --ops %llu --range %llu%s\n",
        static_cast<unsigned long long>(sweep.failed_at_point),
        sweep.error.c_str(), static_cast<unsigned long long>(seed),
        cfg.workers, cfg.team_size, static_cast<unsigned long long>(cfg.ops),
        static_cast<unsigned long long>(cfg.key_range),
        (std::string(cfg.with_epochs ? " --with-epochs" : "") +
         (cfg.with_snapshots ? " --with-snapshots" : ""))
            .c_str());
    return 1;
  }
  std::printf(
      "proc-crash-sweep clean: %llu child runs over %llu persist points "
      "(stride %llu), %llu SIGKILLs landed, %llu locks released, "
      "%llu intents replayed, %llu chunks freed "
      "(workers=%d team=%d ops=%llu range=%llu seed=%llu%s)\n",
      static_cast<unsigned long long>(sweep.runs),
      static_cast<unsigned long long>(sweep.persist_points),
      static_cast<unsigned long long>(cfg.stride),
      static_cast<unsigned long long>(sweep.kills_landed),
      static_cast<unsigned long long>(sweep.locks_released),
      static_cast<unsigned long long>(sweep.intents_replayed),
      static_cast<unsigned long long>(sweep.chunks_freed), cfg.workers,
      cfg.team_size, static_cast<unsigned long long>(cfg.ops),
      static_cast<unsigned long long>(cfg.key_range),
      static_cast<unsigned long long>(seed),
      (std::string(cfg.with_epochs ? " epochs" : "") +
       (cfg.with_snapshots ? " snapshots" : ""))
          .c_str());
  return 0;
}

int run_corrupt_mode(const Options& opt) {
  CorruptSweepConfig cfg;
  cfg.team_size = static_cast<int>(opt.get_u64("team-size", 8));
  cfg.ops = opt.get_u64("ops", 400);
  cfg.key_range = opt.get_u64("range", 96);
  cfg.seeds = opt.get_u64("corrupt-seeds", 6);
  cfg.base_seed = opt.get_u64("seed", 0x5EED5EEDull);
  cfg.pool_chunks = static_cast<std::uint32_t>(opt.get_u64("pool", 1u << 12));
  cfg.work_dir = opt.get("work-dir", ".");
  cfg.postmortem_dir = opt.get("postmortem-dir", "");

  // --corrupt SECTION:KIND:SEED narrows the matrix to one cell.
  const std::string cell = opt.get("corrupt", "");
  if (!cell.empty()) {
    const auto c1 = cell.find(':');
    const auto c2 = cell.find(':', c1 == std::string::npos ? c1 : c1 + 1);
    device::FaultSection section;
    device::FaultKind kind;
    if (c1 == std::string::npos || c2 == std::string::npos ||
        !device::parse_fault_section(cell.substr(0, c1), &section) ||
        !device::parse_fault_kind(cell.substr(c1 + 1, c2 - c1 - 1), &kind)) {
      std::printf("bad --corrupt spec '%s' (want SECTION:KIND:SEED)\n",
                  cell.c_str());
      return 2;
    }
    cfg.sections = {section};
    cfg.kinds = {kind};
    cfg.first_seed = std::strtoull(cell.c_str() + c2 + 1, nullptr, 10);
    cfg.seeds = 1;
  }

  const auto res = run_corrupt_sweep(cfg, stdout);
  if (!res.ok) {
    std::printf("FAIL corrupt-sweep: %s\n", res.error.c_str());
    return 1;
  }
  std::printf(
      "corrupt-sweep clean: %llu runs, %llu faults injected, %llu detected, "
      "%llu repaired, %llu quarantined (%llu keys lost, all reported), "
      "%llu typed rejections, %llu recoveries, %llu barriers dropped "
      "(team=%d ops=%llu range=%llu seeds=%llu base=%llu)\n",
      static_cast<unsigned long long>(res.runs),
      static_cast<unsigned long long>(res.injected),
      static_cast<unsigned long long>(res.detected),
      static_cast<unsigned long long>(res.repaired),
      static_cast<unsigned long long>(res.quarantined),
      static_cast<unsigned long long>(res.keys_lost),
      static_cast<unsigned long long>(res.rejected_typed),
      static_cast<unsigned long long>(res.recoveries),
      static_cast<unsigned long long>(res.barriers_dropped), cfg.team_size,
      static_cast<unsigned long long>(cfg.ops),
      static_cast<unsigned long long>(cfg.key_range),
      static_cast<unsigned long long>(cfg.seeds),
      static_cast<unsigned long long>(cfg.base_seed));
  return 0;
}

int run_churn_mode(const Options& opt) {
  const int workers = static_cast<int>(opt.get_u64("workers", 4));
  const int team_size = static_cast<int>(opt.get_u64("team-size", 8));
  const auto pool = static_cast<std::uint32_t>(opt.get_u64("pool", 4096));
  const auto range = opt.get_u64("range", 512);
  const auto total_ops =
      opt.get_u64("ops", 12ull * pool);  // default >= 10x pool capacity
  const auto seed = opt.get_u64("seed", 0xC0FF);
  const std::string metrics_json = opt.get("metrics-json", "");
  const std::string pm_dir = opt.get("postmortem-dir", "");
  const std::string persist_path = opt.get("persist", "");
  const bool want_obs = !metrics_json.empty() || !pm_dir.empty();

  device::DeviceMemory mem;
  device::EpochManager epochs;
  core::GfslConfig cfg;
  cfg.team_size = team_size;
  cfg.pool_chunks = pool;
  // --persist: back the arena with a durable region so every transition in
  // the churn storm crosses a persist barrier — the persistence hot path
  // soaked under free-running (non-deterministic) contention.
  std::unique_ptr<device::PersistRegion> region;
  std::unique_ptr<sched::LeaseTable> leases;
  if (!persist_path.empty()) {
    region = std::make_unique<device::PersistRegion>(
        persist_path, device::PersistRegion::Mode::kCreate,
        device::PersistGeometry{static_cast<std::uint32_t>(team_size), pool});
    leases = std::make_unique<sched::LeaseTable>();
    leases->attach(
        static_cast<std::atomic<std::uint32_t>*>(region->lease_slots()),
        /*adopt=*/false);
  }
  core::Gfsl sl(cfg, &mem, nullptr, leases.get(), &epochs, region.get());

  obs::MetricsRegistry reg(workers);
  reg.set_info("mode", "churn");
  std::vector<std::unique_ptr<simt::TeamTrace>> rings;
  if (!pm_dir.empty()) {
    for (int w = 0; w < workers; ++w) {
      rings.push_back(
          std::make_unique<simt::TeamTrace>(1024, /*timestamps=*/false));
    }
  }

  std::atomic<int> oom{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      simt::Team team(team_size, w, 3);
      if (want_obs) team.set_metrics(&reg.shard(w));
      if (!rings.empty()) {
        team.set_trace(rings[static_cast<std::size_t>(w)].get());
      }
      Xoshiro256ss rng(derive_seed(seed, static_cast<std::uint64_t>(w)));
      const std::uint64_t n = total_ops / static_cast<std::uint64_t>(workers);
      try {
        for (std::uint64_t i = 0; i < n; ++i) {
          const Key k = 1 + static_cast<Key>(rng.below(range));
          if (rng.below(2) == 0) {
            sl.insert(team, k, k);
          } else {
            sl.erase(team, k);
          }
        }
      } catch (const std::bad_alloc&) {
        oom.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();
  if (want_obs) sample_structure_gauges(reg, sl);

  bool ok = true;
  bool validate_failed = false;
  std::string detail;
  auto fail = [&](const std::string& msg) {
    std::printf("FAIL churn: %s\n", msg.c_str());
    if (detail.empty()) detail = msg;
    ok = false;
  };
  if (oom.load() != 0) {
    fail(std::to_string(oom.load()) + " team(s) hit pool exhaustion");
  }
  const auto rep = sl.validate(/*strict=*/false);
  if (!rep.ok) {
    fail("structure invalid: " + rep.error);
    validate_failed = true;
  }
  // "Bounded" = the steady state fits comfortably inside the pool: in-use
  // (live + in-flight zombies + limbo) never approaches capacity even after
  // an unbounded stream of merges.
  if (sl.chunks_allocated() >= pool / 2) {
    fail(std::to_string(sl.chunks_allocated()) + " chunks in use of " +
         std::to_string(pool) + " — reclamation fell behind");
  }
  if (sl.chunks_reclaimed() == 0) {
    fail("zero chunks reclaimed");
  }
  dump_metrics(reg, metrics_json);
  if (!ok) {
    if (!pm_dir.empty()) {
      PostmortemContext ctx;
      ctx.reason = validate_failed ? "validate_failure" : "churn_anomaly";
      ctx.detail = detail;
      ctx.gfsl = &sl;
      ctx.metrics = &reg;
      for (const auto& ring : rings) ctx.rings.push_back(ring.get());
      ctx.info = {{"harness", "churn"},
                  {"seed", std::to_string(seed)},
                  {"workers", std::to_string(workers)},
                  {"team_size", std::to_string(team_size)},
                  {"ops", std::to_string(total_ops)},
                  {"range", std::to_string(range)},
                  {"pool", std::to_string(pool)}};
      (void)dump_postmortem(pm_dir, "postmortem_churn", ctx);
    }
    std::printf("  repro: --churn --seed %llu --workers %d --team-size %d "
                "--ops %llu --range %llu --pool %u\n",
                static_cast<unsigned long long>(seed), workers, team_size,
                static_cast<unsigned long long>(total_ops),
                static_cast<unsigned long long>(range), pool);
    return 1;
  }
  if (region) region->mark_clean();
  std::printf(
      "churn clean: %llu ops through a %u-chunk pool, %llu reclaimed, "
      "%u in use at exit, %llu in limbo (workers=%d team=%d range=%llu)\n",
      static_cast<unsigned long long>(total_ops), pool,
      static_cast<unsigned long long>(sl.chunks_reclaimed()),
      sl.chunks_allocated(),
      static_cast<unsigned long long>(epochs.limbo_total()), workers,
      team_size, static_cast<unsigned long long>(range));
  if (region) {
    std::printf("  persisted: %llu barriers crossed, clean shutdown marked "
                "at %s\n",
                static_cast<unsigned long long>(region->persist_points()),
                persist_path.c_str());
  }
  return 0;
}

int run_batch_mode(const Options& opt) {
  const auto rounds = opt.get_u64("rounds", 30);
  const int workers = static_cast<int>(opt.get_u64("workers", 4));
  const int team_size = static_cast<int>(opt.get_u64("team-size", 8));
  const auto nops = opt.get_u64("ops", 2048);
  const auto range = opt.get_u64("range", 256);  // small: duplicate-key heavy
  const auto master = opt.get_u64("seed", 0xBA7C);
  const std::string metrics_json = opt.get("metrics-json", "");
  const std::string pm_dir = opt.get("postmortem-dir", "");
  const bool want_obs = !metrics_json.empty() || !pm_dir.empty();

  // One registry across rounds: counters accumulate, histograms merge, so
  // the snapshot summarizes the whole campaign of batches.
  obs::MetricsRegistry reg(workers);
  reg.set_info("mode", "batch");

  Xoshiro256ss rng(master);
  for (std::uint64_t round = 0; round < rounds; ++round) {
    const std::uint64_t wl_seed = rng.next();
    const bool multi_team = (round % 2) == 1;   // odd: stealing runner
    const bool with_epochs = (round % 4) >= 2;  // every 2nd pair: reclamation

    device::DeviceMemory mem;
    device::EpochManager epochs;
    core::GfslConfig cfg;
    cfg.team_size = team_size;
    cfg.pool_chunks = 1u << 14;
    core::Gfsl sl(cfg, &mem, nullptr, nullptr, with_epochs ? &epochs : nullptr);

    WorkloadConfig wl;
    wl.mix = kMix_20_20_60;
    wl.key_range = range;
    wl.num_ops = nops;
    wl.seed = wl_seed;
    const auto ops = generate_ops(wl);

    gfsl::testing::MapOracle oracle;
    const auto want = oracle.apply_batch(ops);

    obs::TraceSession session(1024, /*timestamps=*/false);
    std::unique_ptr<simt::TeamTrace> solo_ring;
    core::BatchResult br;
    if (multi_team) {
      RunConfig rc;
      rc.num_workers = workers;
      rc.seed = wl_seed;
      if (want_obs) rc.metrics = &reg;
      if (!pm_dir.empty()) rc.trace = &session;
      BatchRunOptions bo;
      bo.batch_size = nops / 4;
      (void)run_gfsl_batched(sl, ops, rc, mem, bo, &br);
    } else {
      simt::Team team(team_size, 0, 3);
      if (want_obs) team.set_metrics(&reg.shard(0));
      if (!pm_dir.empty()) {
        solo_ring =
            std::make_unique<simt::TeamTrace>(1024, /*timestamps=*/false);
        team.set_trace(solo_ring.get());
      }
      br = core::run_batch(sl, team, ops);
    }

    std::string err;
    for (std::size_t i = 0; i < want.size() && err.empty(); ++i) {
      if (br.outcomes[i] != want[i]) {
        err = "op " + std::to_string(i) + " (key " +
              std::to_string(ops[i].key) + ") returned " +
              std::to_string(br.outcomes[i]) + ", oracle says " +
              std::to_string(want[i]);
      }
    }
    bool validate_failed = false;
    if (err.empty() && sl.collect() != oracle.collect()) {
      err = "final structure diverges from the oracle";
    }
    if (err.empty()) {
      const auto rep = sl.validate(/*strict=*/false);
      if (!rep.ok) {
        err = "structure invalid: " + rep.error;
        validate_failed = true;
      }
    }
    if (err.empty() && want_obs) sample_structure_gauges(reg, sl);
    if (!err.empty()) {
      if (!pm_dir.empty()) {
        PostmortemContext ctx;
        ctx.reason = validate_failed ? "validate_failure" : "oracle_mismatch";
        ctx.detail = err;
        ctx.gfsl = &sl;
        ctx.metrics = want_obs ? &reg : nullptr;
        if (multi_team) {
          for (int t = 0; t < session.teams(); ++t) {
            ctx.rings.push_back(session.team(t));
          }
        } else if (solo_ring != nullptr) {
          ctx.rings.push_back(solo_ring.get());
        }
        ctx.info = {{"harness", "batch"},
                    {"seed", std::to_string(master)},
                    {"round", std::to_string(round)},
                    {"wl_seed", std::to_string(wl_seed)},
                    {"multi_team", multi_team ? "1" : "0"},
                    {"with_epochs", with_epochs ? "1" : "0"},
                    {"workers", std::to_string(workers)},
                    {"team_size", std::to_string(team_size)},
                    {"ops", std::to_string(nops)},
                    {"range", std::to_string(range)}};
        (void)dump_postmortem(pm_dir,
                              "postmortem_batch_r" + std::to_string(round),
                              ctx);
      }
      dump_metrics(reg, metrics_json);
      std::printf(
          "FAIL batch round %llu (%s-team%s): %s\n"
          "  repro: --batch --seed %llu --rounds %llu --workers %d "
          "--team-size %d --ops %llu --range %llu\n",
          static_cast<unsigned long long>(round),
          multi_team ? "multi" : "single", with_epochs ? ", epochs" : "",
          err.c_str(), static_cast<unsigned long long>(master),
          static_cast<unsigned long long>(round + 1), workers, team_size,
          static_cast<unsigned long long>(nops),
          static_cast<unsigned long long>(range));
      return 1;
    }
    if ((round + 1) % 10 == 0) {
      std::printf("%llu/%llu batch rounds clean\n",
                  static_cast<unsigned long long>(round + 1),
                  static_cast<unsigned long long>(rounds));
    }
  }
  dump_metrics(reg, metrics_json);
  std::printf(
      "all %llu batch rounds clean (workers=%d team=%d ops=%llu range=%llu)\n",
      static_cast<unsigned long long>(rounds), workers, team_size,
      static_cast<unsigned long long>(nops),
      static_cast<unsigned long long>(range));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = Options::parse(argc, argv);
  if (opt.get_bool("proc-crash-sweep")) {
    return run_proc_crash_mode(opt);
  }
  if (opt.get_bool("crash-sweep") || opt.has("crash-at")) {
    return run_crash_mode(opt);
  }
  if (opt.get_bool("corrupt-sweep") || opt.has("corrupt")) {
    return run_corrupt_mode(opt);
  }
  if (opt.get_bool("churn")) {
    return run_churn_mode(opt);
  }
  if (opt.get_bool("batch")) {
    return run_batch_mode(opt);
  }
  const auto rounds = opt.get_u64("rounds", 40);
  RoundParams p{};
  p.workers = static_cast<int>(opt.get_u64("workers", 3));
  p.team_size = static_cast<int>(opt.get_u64("team-size", 8));
  p.ops = opt.get_u64("ops", 600);
  p.range = opt.get_u64("range", 60);
  p.with_foresight = opt.get_bool("with-foresight");
  p.postmortem_dir = opt.get("postmortem-dir", "");
  const auto master = opt.get_u64("seed", 0xF022);

  Xoshiro256ss rng(master);
  for (std::uint64_t round = 0; round < rounds; ++round) {
    p.round = round;
    p.wl_seed = rng.next();
    p.sched_seed = rng.next();
    std::string err;
    if (!run_round(p, &err)) {
      std::printf(
          "FAIL round %llu: %s\n"
          "  repro: wl_seed=%llu sched_seed=%llu workers=%d team_size=%d "
          "ops=%llu range=%llu%s\n",
          static_cast<unsigned long long>(round), err.c_str(),
          static_cast<unsigned long long>(p.wl_seed),
          static_cast<unsigned long long>(p.sched_seed), p.workers,
          p.team_size, static_cast<unsigned long long>(p.ops),
          static_cast<unsigned long long>(p.range),
          p.with_foresight ? " --with-foresight" : "");
      return 1;
    }
    if ((round + 1) % 10 == 0) {
      std::printf("%llu/%llu rounds clean\n",
                  static_cast<unsigned long long>(round + 1),
                  static_cast<unsigned long long>(rounds));
    }
  }
  std::printf("all %llu rounds clean (workers=%d team=%d ops=%llu range=%llu)\n",
              static_cast<unsigned long long>(rounds), p.workers, p.team_size,
              static_cast<unsigned long long>(p.ops),
              static_cast<unsigned long long>(p.range));
  return 0;
}
