// gfsl_fuzz — randomized concurrency fuzzing under deterministic schedules.
//
//   gfsl_fuzz [--rounds N] [--workers N] [--ops N] [--range N] [--team-size N]
//
// Each round draws a fresh workload seed and scheduler seed, runs a
// multi-team history under StepScheduler::Deterministic, then checks
// (a) structural invariants, (b) per-key sequential consistency of the
// recorded history.  Any violation prints the reproduction parameters —
// plug them into gfsl_replay to debug.  Exits non-zero on the first failure.
//
// Crash modes (harness/crash_sweep.h):
//
//   gfsl_fuzz --crash-sweep [--crash-seed S] [--crash-stride N]
//             [--workers N] [--team-size N] [--ops N] [--range N]
//             [--metrics-out FILE]
//       Exhaustive crash-point sweep: kill the victim team at every yield
//       step of the seeded reference run; every run must recover (no hang,
//       valid structure, linearizable history with the crashed op optional).
//
//   gfsl_fuzz --crash-at STEP [--crash-seed S] ...
//       Replay a single kill step — the repro form printed on failure.
//
// Churn mode (the bounded-memory soak, DESIGN.md §9):
//
//   gfsl_fuzz --churn [--workers N] [--ops N] [--range N] [--team-size N]
//             [--pool N] [--seed S]
//       Free-running threads drive a 50/50 insert/erase mix through a small
//       pool for >= 10x the pool's capacity in operations.  With epoch
//       reclamation every merged-away chunk is recycled, so the run must
//       finish with chunks_allocated() bounded and validate() clean; without
//       it the same workload exhausts the pool almost immediately.
//
// Batch mode (the differential oracle harness, DESIGN.md §10):
//
//   gfsl_fuzz --batch [--rounds N] [--workers N] [--ops N] [--range N]
//             [--team-size N] [--seed S]
//       Each round draws a random mixed batch and replays it against a
//       std::map oracle (tests/oracle.h): every per-op outcome and the final
//       structure must match the submission-order reference.  Rounds
//       alternate single-team run_batch and the multi-team stealing runner,
//       and attach an EpochManager on every second round so batched descent
//       reuse is fuzzed against concurrent reclamation too.
#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>

#include "common/random.h"
#include "core/gfsl.h"
#include "device/device_memory.h"
#include "device/epoch.h"
#include "harness/crash_sweep.h"
#include "harness/history.h"
#include "harness/options.h"
#include "harness/runner.h"
#include "harness/workload.h"
#include "oracle.h"
#include "sched/step_scheduler.h"

using namespace gfsl;
using namespace gfsl::harness;

namespace {

struct RoundParams {
  std::uint64_t wl_seed;
  std::uint64_t sched_seed;
  int workers;
  int team_size;
  std::uint64_t ops;
  std::uint64_t range;
};

bool run_round(const RoundParams& p, std::string* err) {
  device::DeviceMemory mem;
  sched::StepScheduler sched(sched::StepScheduler::Mode::Deterministic,
                             p.sched_seed, p.workers);
  core::GfslConfig cfg;
  cfg.team_size = p.team_size;
  cfg.pool_chunks = 1u << 14;
  core::Gfsl sl(cfg, &mem, &sched);

  WorkloadConfig wl;
  wl.mix = kMix_20_20_60;  // update-heavy: maximum structural churn
  wl.key_range = p.range;
  wl.num_ops = p.ops;
  wl.seed = p.wl_seed;
  const auto ops = generate_ops(wl);

  HistoryLog log(p.ops / static_cast<std::uint64_t>(p.workers) + 8, p.workers);
  std::vector<std::thread> threads;
  for (int w = 0; w < p.workers; ++w) {
    threads.emplace_back([&, w] {
      simt::Team team(p.team_size, w, 3);
      sched.enter(w);
      for (std::size_t i = static_cast<std::size_t>(w); i < ops.size();
           i += static_cast<std::size_t>(p.workers)) {
        const Op& op = ops[i];
        const auto t = log.begin_op();
        bool r = false;
        switch (op.kind) {
          case OpKind::Insert: r = sl.insert(team, op.key, op.value); break;
          case OpKind::Delete: r = sl.erase(team, op.key); break;
          case OpKind::Contains: r = sl.contains(team, op.key); break;
        }
        log.end_op(w, t, op.kind, op.key, r);
      }
      sched.leave(w);
    });
  }
  for (auto& t : threads) t.join();

  const auto rep = sl.validate(/*strict=*/false);
  if (!rep.ok) {
    *err = "structure invalid: " + rep.error;
    return false;
  }
  std::vector<Key> final_keys;
  for (const auto& [k, v] : sl.collect()) final_keys.push_back(k);
  const auto check = check_history(log.merged(), {}, final_keys);
  if (!check.ok) {
    *err = "history violation: " + check.error;
    return false;
  }
  return true;
}

void dump_metrics(const obs::MetricsRegistry& reg, const std::string& path) {
  if (path.empty()) return;
  std::ofstream os(path);
  reg.write_json(os);
  std::printf("metrics written to %s\n", path.c_str());
}

int run_crash_mode(const Options& opt) {
  CrashSweepConfig cfg;
  cfg.workers = static_cast<int>(opt.get_u64("workers", 3));
  cfg.team_size = static_cast<int>(opt.get_u64("team-size", 8));
  cfg.ops = opt.get_u64("ops", 96);
  cfg.key_range = opt.get_u64("range", 48);
  cfg.victim = static_cast<int>(opt.get_u64("victim", 0));
  cfg.stride = opt.get_u64("crash-stride", 1);
  const auto seed = opt.get_u64("crash-seed", 0xC4A5);
  cfg.wl_seed = seed;
  cfg.sched_seed = seed ^ 0x9E3779B97F4A7C15ull;
  obs::MetricsRegistry reg(cfg.workers + 1);
  reg.set_info("mode", opt.has("crash-at") ? "crash-at" : "crash-sweep");
  const std::string metrics_out = opt.get("metrics-out", "");

  if (opt.has("crash-at")) {
    const auto step = opt.get_u64("crash-at", 1);
    // Watchdog needs the baseline step count; run the fault-free reference
    // first.
    const auto base = run_crash_at(cfg, UINT64_MAX, UINT64_MAX, nullptr);
    if (!base.ok) {
      std::printf("FAIL baseline: %s\n", base.error.c_str());
      return 1;
    }
    const auto r = run_crash_at(
        cfg, step, base.steps * cfg.watchdog_factor + cfg.watchdog_slack,
        &reg);
    dump_metrics(reg, metrics_out);
    if (!r.ok) {
      std::printf(
          "FAIL crash-at %llu: %s\n"
          "  repro: --crash-at %llu --crash-seed %llu --workers %d "
          "--team-size %d --ops %llu --range %llu\n",
          static_cast<unsigned long long>(step), r.error.c_str(),
          static_cast<unsigned long long>(step),
          static_cast<unsigned long long>(seed), cfg.workers, cfg.team_size,
          static_cast<unsigned long long>(cfg.ops),
          static_cast<unsigned long long>(cfg.key_range));
      return 1;
    }
    std::printf("crash-at %llu clean (victim %s, %d locks medic-recovered)\n",
                static_cast<unsigned long long>(step),
                r.victim_killed ? "killed" : "survived", r.locks_recovered);
    return 0;
  }

  const auto sweep = run_crash_sweep(cfg, &reg, stdout);
  dump_metrics(reg, metrics_out);
  if (!sweep.ok) {
    std::printf(
        "FAIL crash-sweep at step %llu: %s\n"
        "  repro: --crash-at %llu --crash-seed %llu --workers %d "
        "--team-size %d --ops %llu --range %llu\n",
        static_cast<unsigned long long>(sweep.failed_at_step),
        sweep.error.c_str(),
        static_cast<unsigned long long>(sweep.failed_at_step),
        static_cast<unsigned long long>(seed), cfg.workers, cfg.team_size,
        static_cast<unsigned long long>(cfg.ops),
        static_cast<unsigned long long>(cfg.key_range));
    return 1;
  }
  std::printf(
      "crash-sweep clean: %llu runs over %llu steps (stride %llu), "
      "%llu kills landed, %llu medic recoveries "
      "(workers=%d team=%d ops=%llu range=%llu seed=%llu)\n",
      static_cast<unsigned long long>(sweep.runs),
      static_cast<unsigned long long>(sweep.baseline_steps),
      static_cast<unsigned long long>(cfg.stride),
      static_cast<unsigned long long>(sweep.kills_landed),
      static_cast<unsigned long long>(sweep.medic_recoveries), cfg.workers,
      cfg.team_size, static_cast<unsigned long long>(cfg.ops),
      static_cast<unsigned long long>(cfg.key_range),
      static_cast<unsigned long long>(seed));
  return 0;
}

int run_churn_mode(const Options& opt) {
  const int workers = static_cast<int>(opt.get_u64("workers", 4));
  const int team_size = static_cast<int>(opt.get_u64("team-size", 8));
  const auto pool = static_cast<std::uint32_t>(opt.get_u64("pool", 4096));
  const auto range = opt.get_u64("range", 512);
  const auto total_ops =
      opt.get_u64("ops", 12ull * pool);  // default >= 10x pool capacity
  const auto seed = opt.get_u64("seed", 0xC0FF);

  device::DeviceMemory mem;
  device::EpochManager epochs;
  core::GfslConfig cfg;
  cfg.team_size = team_size;
  cfg.pool_chunks = pool;
  core::Gfsl sl(cfg, &mem, nullptr, nullptr, &epochs);

  std::atomic<int> oom{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      simt::Team team(team_size, w, 3);
      Xoshiro256ss rng(derive_seed(seed, static_cast<std::uint64_t>(w)));
      const std::uint64_t n = total_ops / static_cast<std::uint64_t>(workers);
      try {
        for (std::uint64_t i = 0; i < n; ++i) {
          const Key k = 1 + static_cast<Key>(rng.below(range));
          if (rng.below(2) == 0) {
            sl.insert(team, k, k);
          } else {
            sl.erase(team, k);
          }
        }
      } catch (const std::bad_alloc&) {
        oom.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : threads) t.join();

  bool ok = true;
  if (oom.load() != 0) {
    std::printf("FAIL churn: %d team(s) hit pool exhaustion\n", oom.load());
    ok = false;
  }
  const auto rep = sl.validate(/*strict=*/false);
  if (!rep.ok) {
    std::printf("FAIL churn: structure invalid: %s\n", rep.error.c_str());
    ok = false;
  }
  // "Bounded" = the steady state fits comfortably inside the pool: in-use
  // (live + in-flight zombies + limbo) never approaches capacity even after
  // an unbounded stream of merges.
  if (sl.chunks_allocated() >= pool / 2) {
    std::printf("FAIL churn: %u chunks in use of %u — reclamation fell behind\n",
                sl.chunks_allocated(), pool);
    ok = false;
  }
  if (sl.chunks_reclaimed() == 0) {
    std::printf("FAIL churn: zero chunks reclaimed\n");
    ok = false;
  }
  if (!ok) {
    std::printf("  repro: --churn --seed %llu --workers %d --team-size %d "
                "--ops %llu --range %llu --pool %u\n",
                static_cast<unsigned long long>(seed), workers, team_size,
                static_cast<unsigned long long>(total_ops),
                static_cast<unsigned long long>(range), pool);
    return 1;
  }
  std::printf(
      "churn clean: %llu ops through a %u-chunk pool, %llu reclaimed, "
      "%u in use at exit, %llu in limbo (workers=%d team=%d range=%llu)\n",
      static_cast<unsigned long long>(total_ops), pool,
      static_cast<unsigned long long>(sl.chunks_reclaimed()),
      sl.chunks_allocated(),
      static_cast<unsigned long long>(epochs.limbo_total()), workers,
      team_size, static_cast<unsigned long long>(range));
  return 0;
}

int run_batch_mode(const Options& opt) {
  const auto rounds = opt.get_u64("rounds", 30);
  const int workers = static_cast<int>(opt.get_u64("workers", 4));
  const int team_size = static_cast<int>(opt.get_u64("team-size", 8));
  const auto nops = opt.get_u64("ops", 2048);
  const auto range = opt.get_u64("range", 256);  // small: duplicate-key heavy
  const auto master = opt.get_u64("seed", 0xBA7C);

  Xoshiro256ss rng(master);
  for (std::uint64_t round = 0; round < rounds; ++round) {
    const std::uint64_t wl_seed = rng.next();
    const bool multi_team = (round % 2) == 1;   // odd: stealing runner
    const bool with_epochs = (round % 4) >= 2;  // every 2nd pair: reclamation

    device::DeviceMemory mem;
    device::EpochManager epochs;
    core::GfslConfig cfg;
    cfg.team_size = team_size;
    cfg.pool_chunks = 1u << 14;
    core::Gfsl sl(cfg, &mem, nullptr, nullptr, with_epochs ? &epochs : nullptr);

    WorkloadConfig wl;
    wl.mix = kMix_20_20_60;
    wl.key_range = range;
    wl.num_ops = nops;
    wl.seed = wl_seed;
    const auto ops = generate_ops(wl);

    gfsl::testing::MapOracle oracle;
    const auto want = oracle.apply_batch(ops);

    core::BatchResult br;
    if (multi_team) {
      RunConfig rc;
      rc.num_workers = workers;
      rc.seed = wl_seed;
      BatchRunOptions bo;
      bo.batch_size = nops / 4;
      (void)run_gfsl_batched(sl, ops, rc, mem, bo, &br);
    } else {
      simt::Team team(team_size, 0, 3);
      br = core::run_batch(sl, team, ops);
    }

    std::string err;
    for (std::size_t i = 0; i < want.size() && err.empty(); ++i) {
      if (br.outcomes[i] != want[i]) {
        err = "op " + std::to_string(i) + " (key " +
              std::to_string(ops[i].key) + ") returned " +
              std::to_string(br.outcomes[i]) + ", oracle says " +
              std::to_string(want[i]);
      }
    }
    if (err.empty() && sl.collect() != oracle.collect()) {
      err = "final structure diverges from the oracle";
    }
    if (err.empty()) {
      const auto rep = sl.validate(/*strict=*/false);
      if (!rep.ok) err = "structure invalid: " + rep.error;
    }
    if (!err.empty()) {
      std::printf(
          "FAIL batch round %llu (%s-team%s): %s\n"
          "  repro: --batch --seed %llu --rounds %llu --workers %d "
          "--team-size %d --ops %llu --range %llu\n",
          static_cast<unsigned long long>(round),
          multi_team ? "multi" : "single", with_epochs ? ", epochs" : "",
          err.c_str(), static_cast<unsigned long long>(master),
          static_cast<unsigned long long>(round + 1), workers, team_size,
          static_cast<unsigned long long>(nops),
          static_cast<unsigned long long>(range));
      return 1;
    }
    if ((round + 1) % 10 == 0) {
      std::printf("%llu/%llu batch rounds clean\n",
                  static_cast<unsigned long long>(round + 1),
                  static_cast<unsigned long long>(rounds));
    }
  }
  std::printf(
      "all %llu batch rounds clean (workers=%d team=%d ops=%llu range=%llu)\n",
      static_cast<unsigned long long>(rounds), workers, team_size,
      static_cast<unsigned long long>(nops),
      static_cast<unsigned long long>(range));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = Options::parse(argc, argv);
  if (opt.get_bool("crash-sweep") || opt.has("crash-at")) {
    return run_crash_mode(opt);
  }
  if (opt.get_bool("churn")) {
    return run_churn_mode(opt);
  }
  if (opt.get_bool("batch")) {
    return run_batch_mode(opt);
  }
  const auto rounds = opt.get_u64("rounds", 40);
  RoundParams p{};
  p.workers = static_cast<int>(opt.get_u64("workers", 3));
  p.team_size = static_cast<int>(opt.get_u64("team-size", 8));
  p.ops = opt.get_u64("ops", 600);
  p.range = opt.get_u64("range", 60);
  const auto master = opt.get_u64("seed", 0xF022);

  Xoshiro256ss rng(master);
  for (std::uint64_t round = 0; round < rounds; ++round) {
    p.wl_seed = rng.next();
    p.sched_seed = rng.next();
    std::string err;
    if (!run_round(p, &err)) {
      std::printf(
          "FAIL round %llu: %s\n"
          "  repro: wl_seed=%llu sched_seed=%llu workers=%d team_size=%d "
          "ops=%llu range=%llu\n",
          static_cast<unsigned long long>(round), err.c_str(),
          static_cast<unsigned long long>(p.wl_seed),
          static_cast<unsigned long long>(p.sched_seed), p.workers,
          p.team_size, static_cast<unsigned long long>(p.ops),
          static_cast<unsigned long long>(p.range));
      return 1;
    }
    if ((round + 1) % 10 == 0) {
      std::printf("%llu/%llu rounds clean\n",
                  static_cast<unsigned long long>(round + 1),
                  static_cast<unsigned long long>(rounds));
    }
  }
  std::printf("all %llu rounds clean (workers=%d team=%d ops=%llu range=%llu)\n",
              static_cast<unsigned long long>(rounds), p.workers, p.team_size,
              static_cast<unsigned long long>(p.ops),
              static_cast<unsigned long long>(p.range));
  return 0;
}
