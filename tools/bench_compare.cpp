// bench_compare — the noise-aware regression gate over gfsl-bench-v1 reports.
//
//   bench_compare --baseline FILE --current FILE
//                 [--rel-thresh F] [--k F] [--all] [--csv]
//
// Diffs two BENCH_<campaign>.json reports metric by metric.  A gated metric
// is flagged only when its mean moved in the *worse* direction by more than
//   max(rel_thresh * |baseline mean|, k * max(stddev_base, stddev_cur))
// — the relative floor suppresses microscopic shifts, the stddev window
// suppresses shifts explainable by run-to-run noise.  A gated baseline
// metric missing from the current report also fails the gate (a silently
// dropped series is a regression in coverage).  --all widens the table to
// ungated metrics (informational; they never fail the gate).
//
// Exit codes: 0 gate passed, 1 regressions found, 2 usage/parse errors.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "harness/bench_schema.h"
#include "harness/options.h"
#include "harness/report.h"

using namespace gfsl;
using namespace gfsl::harness;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_compare --baseline FILE --current FILE "
               "[--rel-thresh F] [--k F] [--all] [--csv]\n");
  return 2;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

bool load_report(const std::string& path, BenchReport& out) {
  std::string text;
  if (!read_file(path, text)) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return false;
  }
  std::string err;
  if (!read_bench_json(text, out, err)) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), err.c_str());
    return false;
  }
  return true;
}

std::string lookup(
    const std::vector<std::pair<std::string, std::string>>& kv,
    const std::string& key) {
  for (const auto& [k, v] : kv) {
    if (k == key) return v;
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    opt = Options::parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  }
  const std::set<std::string> known{"baseline", "current",   "rel-thresh",
                                    "k",        "all",       "csv",
                                    "help"};
  if (opt.get_bool("help")) return usage();
  for (const auto& u : opt.unknown(known)) {
    std::fprintf(stderr, "error: unknown option --%s\n", u.c_str());
    return usage();
  }
  const std::string base_path = opt.get("baseline", "");
  const std::string cur_path = opt.get("current", "");
  if (base_path.empty() || cur_path.empty()) return usage();

  BenchReport base, cur;
  if (!load_report(base_path, base) || !load_report(cur_path, cur)) return 2;
  if (base.campaign != cur.campaign) {
    std::fprintf(stderr, "error: campaign mismatch: baseline '%s' vs '%s'\n",
                 base.campaign.c_str(), cur.campaign.c_str());
    return 2;
  }

  CompareOptions copts;
  copts.rel_thresh = opt.get_double("rel-thresh", copts.rel_thresh);
  copts.k = opt.get_double("k", copts.k);
  copts.gated_only = !opt.get_bool("all");

  // Environment drift doesn't fail the gate (CI machines rotate) but it is
  // the first thing to rule out when reading a surprising diff.
  for (const auto& key : {"compiler", "build", "platform"}) {
    const auto b = lookup(base.environment, key);
    const auto c = lookup(cur.environment, key);
    if (b != c) {
      std::printf("note: environment %s differs: baseline '%s' vs '%s'\n",
                  key, b.c_str(), c.c_str());
    }
  }

  const CompareResult res = compare_reports(base, cur, copts);

  Table t({"metric", "baseline", "current", "delta", "threshold", "verdict"});
  for (const auto& d : res.deltas) {
    t.add_row({d.name, fmt_mean_stddev(d.base_mean, d.base_stddev, 3),
               fmt_mean_stddev(d.cur_mean, d.cur_stddev, 3),
               fmt(d.delta, 3), fmt(d.threshold, 3),
               std::string(verdict_name(d.verdict)) +
                   (d.gate ? "" : " (ungated)")});
  }
  if (opt.get_bool("csv")) {
    t.print_csv(std::cout);
  } else {
    std::printf("campaign %s: %zu metrics compared (rel_thresh=%s, k=%s)\n",
                base.campaign.c_str(), res.deltas.size(),
                fmt(copts.rel_thresh, 2).c_str(), fmt(copts.k, 1).c_str());
    t.print(std::cout);
  }
  if (res.regressions > 0) {
    std::printf("FAIL: %d regression(s), %d improvement(s)\n", res.regressions,
                res.improvements);
    return 1;
  }
  std::printf("OK: no regressions (%d improvement(s))\n", res.improvements);
  return 0;
}
