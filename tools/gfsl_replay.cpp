// gfsl_replay — deterministic reproduction of a recorded run.
//
// Record a failing workload once:
//   gfsl_replay --record ops.txt --mix 20,20,60 --range 200 --ops 500 --seed 7
// then replay it, bit-for-bit, under a chosen deterministic schedule:
//   gfsl_replay --load ops.txt --workers 2 --sched-seed 42 --team-size 8
//
// Replay runs the op log against GFSL under StepScheduler::Deterministic,
// validates the structure afterwards, and (with --trace) dumps the last
// events of every team — the full workflow for cornering a concurrency bug.
#include <cstdio>
#include <iostream>
#include <thread>

#include "core/gfsl.h"
#include "device/device_memory.h"
#include "harness/oplog.h"
#include "harness/options.h"
#include "harness/workload.h"
#include "sched/step_scheduler.h"
#include "simt/trace.h"

using namespace gfsl;
using namespace gfsl::harness;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  gfsl_replay --record FILE [--mix i,d,c] [--range N] [--ops N] "
      "[--seed N]\n"
      "  gfsl_replay --load FILE [--workers N] [--sched-seed N] "
      "[--team-size N] [--trace]\n");
  return 2;
}

Mix parse_mix(const std::string& s) {
  Mix m{};
  if (std::sscanf(s.c_str(), "%d,%d,%d", &m.insert_pct, &m.delete_pct,
                  &m.contains_pct) != 3 ||
      m.insert_pct + m.delete_pct + m.contains_pct != 100) {
    throw std::invalid_argument("--mix must be i,d,c summing to 100");
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    opt = Options::parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  }

  try {
    if (opt.has("record")) {
      WorkloadConfig wl;
      wl.mix = parse_mix(opt.get("mix", "20,20,60"));
      wl.key_range = opt.get_u64("range", 200);
      wl.num_ops = opt.get_u64("ops", 500);
      wl.seed = opt.get_u64("seed", 7);
      const auto ops = generate_ops(wl);
      save_oplog_file(opt.get("record", ""), ops);
      std::printf("recorded %zu ops to %s\n", ops.size(),
                  opt.get("record", "").c_str());
      return 0;
    }

    if (!opt.has("load")) return usage();
    const auto ops = load_oplog_file(opt.get("load", ""));
    const int workers = static_cast<int>(opt.get_u64("workers", 2));
    const auto sched_seed = opt.get_u64("sched-seed", 1);
    const int team_size = static_cast<int>(opt.get_u64("team-size", 8));
    const bool want_trace = opt.get_bool("trace");

    device::DeviceMemory mem;
    sched::StepScheduler sched(sched::StepScheduler::Mode::Deterministic,
                               sched_seed, workers);
    core::GfslConfig cfg;
    cfg.team_size = team_size;
    cfg.pool_chunks = 1u << 16;
    core::Gfsl sl(cfg, &mem, &sched);

    std::vector<std::unique_ptr<simt::TeamTrace>> traces;
    for (int w = 0; w < workers; ++w) {
      traces.push_back(std::make_unique<simt::TeamTrace>(1u << 12));
    }

    std::vector<std::thread> threads;
    std::atomic<std::uint64_t> trues{0};
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        simt::Team team(team_size, w, 1);
        if (want_trace) team.set_trace(traces[static_cast<std::size_t>(w)].get());
        sched.enter(w);
        std::uint64_t mine = 0;
        for (std::size_t i = static_cast<std::size_t>(w); i < ops.size();
             i += static_cast<std::size_t>(workers)) {
          const Op& op = ops[i];
          bool r = false;
          switch (op.kind) {
            case OpKind::Insert: r = sl.insert(team, op.key, op.value); break;
            case OpKind::Delete: r = sl.erase(team, op.key); break;
            case OpKind::Contains: r = sl.contains(team, op.key); break;
          }
          if (r) ++mine;
        }
        trues.fetch_add(mine);
        sched.leave(w);
      });
    }
    for (auto& t : threads) t.join();

    const auto rep = sl.validate(/*strict=*/false);
    std::printf(
        "replayed %zu ops on %d workers (schedule seed %llu, %llu steps)\n",
        ops.size(), workers,
        static_cast<unsigned long long>(sched_seed),
        static_cast<unsigned long long>(sched.global_steps()));
    std::printf("ops returning true: %llu; final size: %llu; valid: %s\n",
                static_cast<unsigned long long>(trues.load()),
                static_cast<unsigned long long>(sl.size()),
                rep.ok ? "yes" : rep.error.c_str());
    if (want_trace) {
      for (int w = 0; w < workers; ++w) {
        std::printf("--- team %d trace (last %zu events) ---\n", w,
                    traces[static_cast<std::size_t>(w)]->snapshot().size());
        traces[static_cast<std::size_t>(w)]->dump(std::cout);
      }
    }
    return rep.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
