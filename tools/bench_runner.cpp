// bench_runner — the unified campaign driver (gfsl-bench-v1 producer).
//
//   bench_runner [--campaign a,b,c | --campaign all] [--quick] [--reps N]
//                [--out-dir DIR] [--list]
//
// Runs the selected benchmark campaigns (the same registry the per-figure
// bench binaries wrap) and, when --out-dir is given, writes one
// `BENCH_<campaign>.json` gfsl-bench-v1 report per campaign.  --quick swaps
// in the fixed reduced scale the CI regression gate uses, so the emitted
// reports are directly comparable against the committed baselines under
// bench/baselines/.  Exit codes: 0 all campaigns ran, 2 bad usage or an
// unknown campaign name.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/campaign.h"
#include "harness/options.h"

using namespace gfsl;
using namespace gfsl::harness;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bench_runner [--campaign NAME[,NAME...]|all] [--quick] "
               "[--reps N] [--out-dir DIR] [--list]\n");
  return 2;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const auto comma = s.find(',', pos);
    const auto end = comma == std::string::npos ? s.size() : comma;
    if (end > pos) out.push_back(s.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    opt = Options::parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage();
  }
  const std::set<std::string> known{"campaign", "quick", "reps", "out-dir",
                                    "list", "help"};
  if (opt.get_bool("help")) return usage();
  for (const auto& u : opt.unknown(known)) {
    std::fprintf(stderr, "error: unknown option --%s\n", u.c_str());
    return usage();
  }

  if (opt.get_bool("list")) {
    for (const auto& c : campaigns()) {
      std::printf("%-22s %s\n", c.name.c_str(), c.description.c_str());
    }
    return 0;
  }

  CampaignOptions copts;
  copts.quick = opt.get_bool("quick");
  copts.reps = static_cast<int>(opt.get_u64("reps", 0));
  copts.out_dir = opt.get("out-dir", "");

  std::vector<const Campaign*> selected;
  const std::string sel = opt.get("campaign", "all");
  if (sel == "all") {
    for (const auto& c : campaigns()) selected.push_back(&c);
  } else {
    for (const auto& name : split_csv(sel)) {
      const Campaign* c = find_campaign(name);
      if (c == nullptr) {
        std::fprintf(stderr, "error: unknown campaign '%s' (try --list)\n",
                     name.c_str());
        return 2;
      }
      selected.push_back(c);
    }
  }
  if (selected.empty()) {
    std::fprintf(stderr, "error: no campaigns selected\n");
    return usage();
  }

  for (std::size_t i = 0; i < selected.size(); ++i) {
    const Campaign& c = *selected[i];
    std::printf("%s=== campaign %zu/%zu: %s — %s ===\n", i == 0 ? "" : "\n",
                i + 1, selected.size(), c.name.c_str(), c.description.c_str());
    (void)run_campaign(c, copts);
  }
  return 0;
}
