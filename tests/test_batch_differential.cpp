// Differential tests for the batch execution engine (DESIGN.md §10): every
// batch is replayed against a std::map oracle (tests/oracle.h) and both the
// element-wise outcomes and the final structure (via scan() and collect())
// must match — across randomized mixed batches, duplicate-key batches,
// batches spanning split/merge boundaries, and multi-team batched runs with
// and without epoch reclamation.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/gfsl.h"
#include "core/snapshot.h"
#include "device/device_memory.h"
#include "device/epoch.h"
#include "harness/runner.h"
#include "oracle.h"
#include "simt/team.h"

namespace gfsl::core {
namespace {

using gfsl::testing::MapOracle;
using gfsl::testing::SnapshotOracle;
using simt::Team;

Value value_of(Key k) { return static_cast<Value>(k * 31 + 7); }

/// One random op biased i:d:c = ins_pct : del_pct : rest.
Op random_op(Xoshiro256ss& rng, std::uint64_t key_range, int ins_pct,
             int del_pct) {
  const Key k = static_cast<Key>(1 + rng.below(key_range));
  const auto roll = static_cast<int>(rng.below(100));
  OpKind kind = OpKind::Contains;
  if (roll < ins_pct) {
    kind = OpKind::Insert;
  } else if (roll < ins_pct + del_pct) {
    kind = OpKind::Delete;
  }
  return Op{kind, k, kind == OpKind::Insert ? value_of(k) : Value{0}, 0};
}

std::vector<Op> random_batch(Xoshiro256ss& rng, std::size_t n,
                             std::uint64_t key_range, int ins_pct,
                             int del_pct) {
  std::vector<Op> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ops.push_back(random_op(rng, key_range, ins_pct, del_pct));
  }
  return ops;
}

/// Element-wise outcome check: every op executed and matches the oracle.
void expect_outcomes_match(const BatchResult& got,
                           const std::vector<std::uint8_t>& want,
                           const std::vector<Op>& ops) {
  ASSERT_EQ(got.outcomes.size(), want.size());
  EXPECT_FALSE(got.out_of_memory);
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got.outcomes[i], want[i])
        << "op " << i << " kind " << static_cast<int>(ops[i].kind) << " key "
        << ops[i].key;
  }
}

/// Final-structure check via the lock-free scan() — the ISSUE's acceptance
/// path — plus the quiescent collect() for value equality.
void expect_structure_matches(Gfsl& sl, Team& team, const MapOracle& oracle) {
  std::vector<std::pair<Key, Value>> scanned;
  sl.scan(team, MIN_USER_KEY, MAX_USER_KEY, scanned);
  EXPECT_EQ(scanned, oracle.collect());
  EXPECT_EQ(sl.collect(), oracle.collect());
  const auto rep = sl.validate(false);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(BatchDifferential, EmptyStructureMixedBatch) {
  device::DeviceMemory mem;
  GfslConfig cfg;
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem);
  Team team(sl.team_size(), 0, /*seed=*/42);
  MapOracle oracle;

  Xoshiro256ss rng(7);
  const auto ops = random_batch(rng, 300, 64, 30, 30);
  const BatchResult br = run_batch(sl, team, ops);
  expect_outcomes_match(br, oracle.apply_batch(ops), ops);
  expect_structure_matches(sl, team, oracle);
  EXPECT_EQ(br.stats.ops, ops.size());
}

TEST(BatchDifferential, RandomMixedBatchesMatchOracle) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    device::DeviceMemory mem;
    GfslConfig cfg;
    cfg.pool_chunks = 1u << 13;
    Gfsl sl(cfg, &mem);
    Team team(sl.team_size(), 0, seed);
    MapOracle oracle;

    // Prefill half the range, mirrored into the oracle.
    std::vector<std::pair<Key, Value>> prefill;
    for (Key k = 1; k <= 2048; k += 2) prefill.emplace_back(k, value_of(k));
    sl.bulk_load(prefill);
    oracle.preload(prefill);

    Xoshiro256ss rng(seed);
    for (int batch = 0; batch < 4; ++batch) {
      const auto ops = random_batch(rng, 512, 2048, 25, 25);
      const BatchResult br = run_batch(sl, team, ops);
      expect_outcomes_match(br, oracle.apply_batch(ops), ops);
    }
    expect_structure_matches(sl, team, oracle);
  }
}

TEST(BatchDifferential, DuplicateKeyHeavyBatches) {
  // Range 16 with 256 ops per batch: every key appears ~16 times per batch,
  // so per-key submission order is exercised hard.
  device::DeviceMemory mem;
  GfslConfig cfg;
  cfg.pool_chunks = 1u << 10;
  Gfsl sl(cfg, &mem);
  Team team(sl.team_size(), 0, 3);
  MapOracle oracle;

  Xoshiro256ss rng(11);
  for (int batch = 0; batch < 6; ++batch) {
    const auto ops = random_batch(rng, 256, 16, 35, 35);
    const BatchResult br = run_batch(sl, team, ops);
    expect_outcomes_match(br, oracle.apply_batch(ops), ops);
  }
  expect_structure_matches(sl, team, oracle);
}

TEST(BatchDifferential, AllOpsOnOneKey) {
  device::DeviceMemory mem;
  GfslConfig cfg;
  cfg.pool_chunks = 256;
  Gfsl sl(cfg, &mem);
  Team team(sl.team_size(), 0, 5);
  MapOracle oracle;

  const Key k = 1000;
  std::vector<Op> ops;
  Xoshiro256ss rng(13);
  for (int i = 0; i < 200; ++i) {
    const auto roll = static_cast<int>(rng.below(3));
    const OpKind kind = roll == 0   ? OpKind::Insert
                        : roll == 1 ? OpKind::Delete
                                    : OpKind::Contains;
    ops.push_back(Op{kind, k, value_of(k), 0});
  }
  const BatchResult br = run_batch(sl, team, ops);
  expect_outcomes_match(br, oracle.apply_batch(ops), ops);
  expect_structure_matches(sl, team, oracle);
}

TEST(BatchDifferential, SubmissionOrderPreservedWithinKey) {
  device::DeviceMemory mem;
  GfslConfig cfg;
  cfg.pool_chunks = 256;
  Gfsl sl(cfg, &mem);
  Team team(sl.team_size(), 0, 9);

  const Key k = 77;
  const std::vector<Op> ops{
      Op{OpKind::Contains, k, 0, 0},          // false: absent
      Op{OpKind::Insert, k, value_of(k), 0},  // true
      Op{OpKind::Insert, k, 999, 0},          // false: duplicate
      Op{OpKind::Contains, k, 0, 0},          // true
      Op{OpKind::Delete, k, 0, 0},            // true
      Op{OpKind::Delete, k, 0, 0},            // false: already gone
      Op{OpKind::Contains, k, 0, 0},          // false
      Op{OpKind::Insert, k, value_of(k), 0},  // true again
  };
  const BatchResult br = run_batch(sl, team, ops);
  const std::vector<std::uint8_t> want{0, 1, 0, 1, 1, 0, 0, 1};
  ASSERT_EQ(br.outcomes, want);
  // The first insert's value won; the duplicate's 999 must not have landed.
  const auto pairs = sl.collect();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], std::make_pair(k, value_of(k)));
}

TEST(BatchDifferential, BatchesSpanningSplitMergeBoundaries) {
  // team_size 8 (6 data slots): a dense prefill then erase-heavy batches
  // drive chunks below the merge threshold constantly, and insert bursts
  // split them back — every shard crosses structural mutations.
  device::DeviceMemory mem;
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem);
  Team team(sl.team_size(), 0, 17);
  MapOracle oracle;

  std::vector<std::pair<Key, Value>> prefill;
  for (Key k = 1; k <= 600; ++k) prefill.emplace_back(k, value_of(k));
  sl.bulk_load(prefill);
  oracle.preload(prefill);

  Xoshiro256ss rng(17);
  for (int batch = 0; batch < 8; ++batch) {
    // Alternate erase-heavy and insert-heavy batches.
    const int ins = (batch % 2 == 0) ? 10 : 60;
    const int del = (batch % 2 == 0) ? 60 : 10;
    const auto ops = random_batch(rng, 384, 600, ins, del);
    const BatchResult br = run_batch(sl, team, ops, /*target_shard_ops=*/32);
    expect_outcomes_match(br, oracle.apply_batch(ops), ops);
  }
  expect_structure_matches(sl, team, oracle);
}

TEST(BatchDifferential, MultiTeamBatchedRunnerMatchesOracle) {
  device::DeviceMemory mem;
  GfslConfig cfg;
  cfg.pool_chunks = 1u << 13;
  Gfsl sl(cfg, &mem);
  MapOracle oracle;

  std::vector<std::pair<Key, Value>> prefill;
  for (Key k = 2; k <= 4096; k += 4) prefill.emplace_back(k, value_of(k));
  sl.bulk_load(prefill);
  oracle.preload(prefill);

  Xoshiro256ss rng(23);
  const auto ops = random_batch(rng, 4096, 4096, 25, 25);

  harness::RunConfig rc;
  rc.num_workers = 4;
  rc.seed = 23;
  harness::BatchRunOptions bo;
  bo.batch_size = 1024;
  BatchResult br;
  const auto rr = harness::run_gfsl_batched(sl, ops, rc, mem, bo, &br);
  EXPECT_FALSE(rr.out_of_memory);

  expect_outcomes_match(br, oracle.apply_batch(ops), ops);
  Team team(sl.team_size(), 0, 1);
  expect_structure_matches(sl, team, oracle);
  EXPECT_EQ(br.stats.shard_sizes.size(), br.stats.shards);
}

TEST(BatchDifferential, MultiTeamChurnWithEpochsMatchesOracle) {
  device::DeviceMemory mem;
  device::EpochManager ep;
  GfslConfig cfg;
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem, nullptr, nullptr, &ep);
  MapOracle oracle;

  Xoshiro256ss rng(29);
  const auto ops = random_batch(rng, 6144, 512, 45, 45);

  harness::RunConfig rc;
  rc.num_workers = 4;
  rc.seed = 29;
  harness::BatchRunOptions bo;
  bo.batch_size = 1024;
  BatchResult br;
  const auto rr = harness::run_gfsl_batched(sl, ops, rc, mem, bo, &br);
  EXPECT_FALSE(rr.out_of_memory);

  expect_outcomes_match(br, oracle.apply_batch(ops), ops);
  Team team(sl.team_size(), 0, 1);
  expect_structure_matches(sl, team, oracle);
  // Pin-per-shard accounting actually happened.
  EXPECT_GT(br.stats.epoch_pins, 0u);
}

TEST(BatchDifferential, SingleTeamWithEpochsReclaims) {
  // Churny single-team batches under an EpochManager: outcomes must still
  // match the oracle, and the per-shard pins (with mid-shard refreshes) must
  // not prevent chunks from being recycled.
  device::DeviceMemory mem;
  device::EpochManager ep;
  GfslConfig cfg;
  cfg.team_size = 8;  // small chunks => constant merge/split churn
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem, nullptr, nullptr, &ep);
  Team team(sl.team_size(), 0, 31);
  MapOracle oracle;

  Xoshiro256ss rng(31);
  for (int batch = 0; batch < 12; ++batch) {
    const auto ops = random_batch(rng, 512, 512, 45, 45);
    const BatchResult br = run_batch(sl, team, ops);
    expect_outcomes_match(br, oracle.apply_batch(ops), ops);
    EXPECT_GT(br.stats.epoch_pins, 0u);
  }
  expect_structure_matches(sl, team, oracle);
  EXPECT_GT(sl.chunks_reclaimed(), 0u);
}

// --- MVCC snapshot differentials (DESIGN.md §13) ---------------------------
// A SnapshotOracle freezes the reference map the instant Gfsl::snapshot() is
// taken; however much batch or per-op traffic lands afterwards, scan_at over
// that snapshot must keep reproducing the frozen state exactly.

TEST(BatchDifferential, SnapshotsStayFrozenAcrossBatches) {
  device::DeviceMemory mem;
  device::EpochManager ep;
  GfslConfig cfg;
  cfg.pool_chunks = 1u << 12;
  SnapshotManager snaps(cfg.pool_chunks);
  Gfsl sl(cfg, &mem, nullptr, nullptr, &ep, nullptr, &snaps);
  Team team(sl.team_size(), 0, 41);
  MapOracle oracle;

  std::vector<std::pair<Key, Value>> prefill;
  for (Key k = 1; k <= 1024; k += 2) prefill.emplace_back(k, value_of(k));
  sl.bulk_load(prefill);
  oracle.preload(prefill);

  // One snapshot + frozen oracle per batch boundary; every batch of churn
  // must leave ALL earlier snapshots intact.
  std::vector<Snapshot> snapshots;
  std::vector<SnapshotOracle> frozen;
  Xoshiro256ss rng(41);
  for (int batch = 0; batch < 6; ++batch) {
    snapshots.push_back(sl.snapshot());
    frozen.emplace_back(oracle);
    const auto ops = random_batch(rng, 512, 1024, 35, 35);
    const BatchResult br = run_batch(sl, team, ops);
    expect_outcomes_match(br, oracle.apply_batch(ops), ops);
    for (std::size_t i = 0; i < snapshots.size(); ++i) {
      std::vector<std::pair<Key, Value>> got;
      ASSERT_EQ(sl.scan_at(team, snapshots[i], MIN_USER_KEY, MAX_USER_KEY, got),
                ScanAtStatus::kOk);
      EXPECT_EQ(got, frozen[i].expected_range(MIN_USER_KEY, MAX_USER_KEY))
          << "snapshot " << i << " drifted after batch " << batch;
      // Subrange + limit shapes must agree with the same frozen state.
      std::vector<std::pair<Key, Value>> sub;
      ASSERT_EQ(sl.scan_at(team, snapshots[i], 100, 400, sub, /*limit=*/37),
                ScanAtStatus::kOk);
      EXPECT_EQ(sub, frozen[i].expected_range(100, 400, 37));
    }
  }
  for (auto& s : snapshots) sl.release_snapshot(s);
  expect_structure_matches(sl, team, oracle);
  // A released snapshot is refused, not served stale data.
  std::vector<std::pair<Key, Value>> got;
  EXPECT_EQ(sl.scan_at(team, snapshots[0], MIN_USER_KEY, MAX_USER_KEY, got),
            ScanAtStatus::kSnapshotExpired);
}

TEST(BatchDifferential, SnapshotSeesNoneOrAllOfEachBatch) {
  // Batches commit under ONE revision: a scanner thread racing run_batch may
  // observe the structure only at batch boundaries.  Precompute every
  // boundary state; each concurrent scan_at harvest must equal one of them.
  device::DeviceMemory mem;
  device::EpochManager ep;
  GfslConfig cfg;
  cfg.pool_chunks = 1u << 12;
  SnapshotManager snaps(cfg.pool_chunks);
  Gfsl sl(cfg, &mem, nullptr, nullptr, &ep, nullptr, &snaps);
  MapOracle oracle;

  std::vector<std::pair<Key, Value>> prefill;
  for (Key k = 1; k <= 512; k += 2) prefill.emplace_back(k, value_of(k));
  sl.bulk_load(prefill);
  oracle.preload(prefill);

  constexpr int kBatches = 10;
  Xoshiro256ss rng(43);
  std::vector<std::vector<Op>> batches;
  std::vector<std::vector<std::pair<Key, Value>>> boundary;
  boundary.push_back(oracle.collect());
  for (int b = 0; b < kBatches; ++b) {
    batches.push_back(random_batch(rng, 384, 512, 40, 40));
    (void)oracle.apply_batch(batches.back());
    boundary.push_back(oracle.collect());
  }

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> scans{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::string torn;  // first mismatch, diffed against the nearest boundary
  std::thread scanner([&] {
    Team stm(sl.team_size(), 1, 47);
    while (!done.load(std::memory_order_acquire)) {
      Snapshot s = sl.snapshot();
      std::vector<std::pair<Key, Value>> got;
      if (sl.scan_at(stm, s, MIN_USER_KEY, MAX_USER_KEY, got) ==
          ScanAtStatus::kOk) {
        ++scans;
        bool hit = false;
        for (const auto& st : boundary) {
          if (got == st) {
            hit = true;
            break;
          }
        }
        if (!hit && mismatches.fetch_add(1) == 0) {
          // Postmortem: diff against the boundary with the fewest
          // symmetric differences so the failure names the torn keys.
          std::size_t best = SIZE_MAX, bi = 0;
          for (std::size_t i = 0; i < boundary.size(); ++i) {
            std::map<Key, Value> bm(boundary[i].begin(), boundary[i].end());
            std::size_t d = 0;
            for (const auto& [k, v] : got) {
              const auto it = bm.find(k);
              if (it == bm.end() || it->second != v) ++d;
            }
            std::map<Key, Value> gm(got.begin(), got.end());
            for (const auto& [k, v] : boundary[i]) {
              if (gm.find(k) == gm.end()) ++d;
            }
            if (d < best) {
              best = d;
              bi = i;
            }
          }
          std::ostringstream os;
          os << "snapshot rev " << s.rev << " harvested " << got.size()
             << " pairs; nearest boundary " << bi << " (size "
             << boundary[bi].size() << ", " << best << " diffs):";
          std::map<Key, Value> bm(boundary[bi].begin(), boundary[bi].end());
          std::map<Key, Value> gm(got.begin(), got.end());
          int shown = 0;
          for (const auto& [k, v] : gm) {
            const auto it = bm.find(k);
            if (it == bm.end()) {
              os << " extra<" << k << "," << v << ">";
            } else if (it->second != v) {
              os << " val<" << k << ":" << v << "!=" << it->second << ">";
            } else {
              continue;
            }
            if (++shown == 12) break;
          }
          for (const auto& [k, v] : bm) {
            if (gm.find(k) == gm.end()) {
              os << " missing<" << k << "," << v << ">";
              if (++shown == 24) break;
            }
          }
          torn = os.str();
        }
      }
      sl.release_snapshot(s);
    }
  });

  Team team(sl.team_size(), 0, 43);
  for (const auto& ops : batches) {
    const BatchResult br = run_batch(sl, team, ops);
    EXPECT_FALSE(br.out_of_memory);
  }
  done.store(true, std::memory_order_release);
  scanner.join();

  EXPECT_GT(scans.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u) << torn;
  expect_structure_matches(sl, team, oracle);
}

TEST(BatchDifferential, SnapshotFrozenUnderConcurrentPerOpChurn) {
  // Freeze a snapshot at a quiescent point, then hammer the structure with
  // concurrent per-op insert/erase workers while a scanner keeps comparing
  // scan_at against the frozen oracle.
  device::DeviceMemory mem;
  device::EpochManager ep;
  GfslConfig cfg;
  cfg.pool_chunks = 1u << 13;
  SnapshotManager snaps(cfg.pool_chunks);
  Gfsl sl(cfg, &mem, nullptr, nullptr, &ep, nullptr, &snaps);

  std::vector<std::pair<Key, Value>> prefill;
  for (Key k = 1; k <= 2048; k += 2) prefill.emplace_back(k, value_of(k));
  sl.bulk_load(prefill);

  Snapshot s = sl.snapshot();
  const SnapshotOracle frozen(sl.collect());

  constexpr int kWorkers = 3;
  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      Team team(sl.team_size(), w, 100 + static_cast<std::uint64_t>(w));
      Xoshiro256ss rng(200 + static_cast<std::uint64_t>(w));
      while (!done.load(std::memory_order_acquire)) {
        const Key k = static_cast<Key>(1 + rng.below(2048));
        if (rng.below(2) == 0) {
          sl.insert(team, k, value_of(k) + 1);
        } else {
          sl.erase(team, k);
        }
      }
    });
  }

  Team stm(sl.team_size(), kWorkers, 57);
  Xoshiro256ss srng(57);
  // Don't start comparing until the workers have actually mutated something,
  // or a heavily loaded machine lets all scans finish against an untouched
  // structure.
  while (snaps.records_created() == 0) std::this_thread::yield();
  std::string drift;  // first mismatch; asserted after the workers join
  for (std::uint64_t ok_scans = 0; ok_scans < 200 && drift.empty();
       ++ok_scans) {
    const Key lo = static_cast<Key>(1 + srng.below(2048));
    const Key hi = static_cast<Key>(std::min<std::uint64_t>(lo + 256, 2048));
    std::vector<std::pair<Key, Value>> got;
    const ScanAtStatus st = sl.scan_at(stm, s, lo, hi, got);
    if (st != ScanAtStatus::kOk) {
      drift = "scan_at status " + std::to_string(static_cast<int>(st));
    } else if (got != frozen.expected_range(lo, hi)) {
      drift = "snapshot drifted under churn in [" + std::to_string(lo) +
              ", " + std::to_string(hi) + "]: got " +
              std::to_string(got.size()) + " pairs, want " +
              std::to_string(frozen.expected_range(lo, hi).size());
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  EXPECT_TRUE(drift.empty()) << drift;
  sl.release_snapshot(s);

  const auto rep = sl.validate(false);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_GT(snaps.records_created(), 0u);
}

}  // namespace
}  // namespace gfsl::core
