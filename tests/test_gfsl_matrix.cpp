// Parameterized concurrent matrix: (team size x worker count x mix), every
// cell checked with structural validation AND the per-key history checker.
// This is the broad-coverage complement to the targeted concurrency tests.
#include <gtest/gtest.h>

#include <thread>
#include <tuple>

#include "common/random.h"
#include "core/gfsl.h"
#include "device/device_memory.h"
#include "harness/history.h"
#include "harness/workload.h"

namespace gfsl::core {
namespace {

// (team_size, workers, insert_pct, delete_pct)
using MatrixParams = std::tuple<int, int, int, int>;

class GfslMatrix : public ::testing::TestWithParam<MatrixParams> {};

TEST_P(GfslMatrix, HistoryConsistentUnderConcurrency) {
  const auto [team_size, workers, ins, del] = GetParam();
  device::DeviceMemory mem;
  GfslConfig cfg;
  cfg.team_size = team_size;
  cfg.pool_chunks = 1u << 15;
  Gfsl sl(cfg, &mem);

  constexpr int kOpsPerWorker = 1'500;
  constexpr Key kRange = 150;  // hot: constant structural churn
  harness::HistoryLog log(kOpsPerWorker + 8, workers);

  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w, ins = ins, del = del, team_size = team_size] {
      simt::Team team(team_size, w, 21);
      Xoshiro256ss rng(derive_seed(777, static_cast<std::uint64_t>(w)));
      for (int i = 0; i < kOpsPerWorker; ++i) {
        const Key k = static_cast<Key>(1 + rng.below(kRange));
        const auto dice = static_cast<int>(rng.below(100));
        OpKind kind = OpKind::Contains;
        if (dice < ins) {
          kind = OpKind::Insert;
        } else if (dice < ins + del) {
          kind = OpKind::Delete;
        }
        const auto t = log.begin_op();
        bool r = false;
        switch (kind) {
          case OpKind::Insert: r = sl.insert(team, k, k); break;
          case OpKind::Delete: r = sl.erase(team, k); break;
          case OpKind::Contains: r = sl.contains(team, k); break;
        }
        log.end_op(w, t, kind, k, r);
      }
    });
  }
  for (auto& t : threads) t.join();

  const auto rep = sl.validate(/*strict=*/false);
  ASSERT_TRUE(rep.ok) << rep.error;
  std::vector<Key> final_keys;
  for (const auto& [k, v] : sl.collect()) final_keys.push_back(k);
  const auto check = harness::check_history(log.merged(), {}, final_keys);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.events_checked,
            static_cast<std::uint64_t>(workers) * kOpsPerWorker);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GfslMatrix,
    ::testing::Values(MatrixParams{8, 2, 30, 30}, MatrixParams{8, 4, 40, 40},
                      MatrixParams{8, 3, 10, 10}, MatrixParams{16, 2, 30, 30},
                      MatrixParams{16, 4, 50, 50}, MatrixParams{16, 3, 20, 20},
                      MatrixParams{32, 2, 40, 40}, MatrixParams{32, 4, 25, 25},
                      MatrixParams{32, 3, 50, 25}, MatrixParams{8, 4, 50, 50},
                      MatrixParams{16, 4, 5, 5}, MatrixParams{32, 4, 45, 45}),
    [](const ::testing::TestParamInfo<MatrixParams>& info) {
      return "ts" + std::to_string(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param)) + "_i" +
             std::to_string(std::get<2>(info.param)) + "_d" +
             std::to_string(std::get<3>(info.param));
    });

}  // namespace
}  // namespace gfsl::core
