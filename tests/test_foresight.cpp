// Foresight hint index (core/foresight.{h,cpp}; DESIGN.md §14): differential
// oracle equivalence of the attached vs detached paths, the per-consult
// hit/fallback accounting invariant, staleness-adversarial churn (merge
// zombies, recycled-chunk generation bumps, compact invalidation) between
// hint publication and use, the fresh-hint traversal bound, and the A/B
// determinism contract — a Gfsl constructed *without* a ForesightIndex runs
// the seed code path, and attaching one must not change any operation's
// result or the final contents.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/foresight.h"
#include "core/gfsl.h"
#include "device/device_memory.h"
#include "device/epoch.h"
#include "obs/metrics.h"
#include "oracle.h"
#include "sched/step_scheduler.h"
#include "simt/team.h"

namespace gfsl::core {
namespace {

using gfsl::testing::MapOracle;
using simt::Team;

using Pairs = std::vector<std::pair<Key, Value>>;

Value value_of(Key k) { return static_cast<Value>(k * 31 + 7); }

Pairs ascending_pairs(Key first, Key last) {
  Pairs p;
  for (Key k = first; k <= last; ++k) p.emplace_back(k, value_of(k));
  return p;
}

Op random_op(Xoshiro256ss& rng, std::uint64_t key_range, int ins_pct,
             int del_pct) {
  const Key k = static_cast<Key>(1 + rng.below(key_range));
  const auto roll = static_cast<int>(rng.below(100));
  OpKind kind = OpKind::Contains;
  if (roll < ins_pct) {
    kind = OpKind::Insert;
  } else if (roll < ins_pct + del_pct) {
    kind = OpKind::Delete;
  }
  return Op{kind, k, kind == OpKind::Insert ? value_of(k) : Value{0}, 0};
}

bool apply_op(Gfsl& sl, Team& team, const Op& op) {
  switch (op.kind) {
    case OpKind::Insert:
      return sl.insert(team, op.key, op.value);
    case OpKind::Delete:
      return sl.erase(team, op.key);
    case OpKind::Contains:
      return sl.contains(team, op.key);
  }
  return false;
}

// ---------------------------------------------------------------------------
// Differential oracle: attached and detached runs replay the same per-op
// stream and must agree with each other and with the std::map oracle on
// every single result and on the final contents.

TEST(ForesightDifferential, AttachedDetachedAndOracleAgree) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    device::DeviceMemory mem_a, mem_d;
    device::EpochManager epochs_a, epochs_d;
    // stride 1 / tiny threshold: every split/merge/recycle soon republishes,
    // so the stream constantly flips between hinted and fallback starts.
    ForesightIndex foresight(1u << 12, /*stride=*/1, /*rebuild_threshold=*/8);
    GfslConfig cfg;
    cfg.team_size = 8;
    cfg.pool_chunks = 1u << 12;
    Gfsl attached(cfg, &mem_a, nullptr, nullptr, &epochs_a, nullptr, nullptr,
                  &foresight);
    Gfsl detached(cfg, &mem_d, nullptr, nullptr, &epochs_d);
    MapOracle oracle;
    Team team_a(8, 0, 5);
    Team team_d(8, 0, 5);

    Xoshiro256ss rng(derive_seed(0xF5, seed));
    for (int i = 0; i < 1500; ++i) {
      const Op op = random_op(rng, /*key_range=*/160, /*ins=*/35, /*del=*/35);
      const bool want = oracle.apply(op);
      ASSERT_EQ(apply_op(attached, team_a, op), want)
          << "seed " << seed << " op " << i << " kind "
          << static_cast<int>(op.kind) << " key " << op.key
          << ": attached arm diverged from the oracle";
      ASSERT_EQ(apply_op(detached, team_d, op), want)
          << "seed " << seed << " op " << i << ": detached arm diverged";
    }

    // find() goes through the same hinted start; sweep the whole key space.
    const auto& state = oracle.state();
    for (Key k = 1; k <= 160; ++k) {
      const auto it = state.find(k);
      const std::optional<Value> got = attached.find(team_a, k);
      ASSERT_EQ(got.has_value(), it != state.end()) << "find(" << k << ")";
      if (got.has_value()) {
        ASSERT_EQ(*got, it->second);
      }
    }

    EXPECT_EQ(attached.collect(), oracle.collect());
    EXPECT_EQ(detached.collect(), oracle.collect());
    const auto rep_a = attached.validate(/*strict=*/true);
    EXPECT_TRUE(rep_a.ok) << rep_a.error;
    const auto rep_d = detached.validate(/*strict=*/true);
    EXPECT_TRUE(rep_d.ok) << rep_d.error;
  }
}

// ---------------------------------------------------------------------------
// Accounting invariant: every consult records exactly one of hit/fallback,
// so hits + fallbacks == lookups and stale hints are a subset of fallbacks.

TEST(ForesightAccounting, StaticStructureEveryLookupIsAHit) {
  device::DeviceMemory mem;
  ForesightIndex foresight(1u << 12);
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem, nullptr, nullptr, nullptr, nullptr, nullptr, &foresight);
  Team team(8, 0, 5);

  sl.bulk_load(ascending_pairs(1, 2000));
  sl.foresight_prime(team);
  ASSERT_EQ(foresight.rebuilds(), 1u);
  ASSERT_GT(foresight.entries(), 0u);

  obs::MetricsShard shard;
  team.set_metrics(&shard);
  constexpr std::uint64_t kLookups = 600;
  Xoshiro256ss rng(0xACC1);
  for (std::uint64_t i = 0; i < kLookups; ++i) {
    const Key k = static_cast<Key>(1 + rng.below(2500));  // hits and misses
    EXPECT_EQ(sl.contains(team, k), k <= 2000);
  }
  team.set_metrics(nullptr);

  const std::uint64_t hits = shard.counter(obs::kForesightHits);
  const std::uint64_t falls = shard.counter(obs::kForesightFallbacks);
  EXPECT_EQ(hits + falls, kLookups)
      << "a consult recorded neither or both of hit/fallback";
  EXPECT_EQ(hits, kLookups) << "published, static structure: no fallbacks";
  EXPECT_EQ(shard.counter(obs::kForesightStaleHints), 0u);
}

TEST(ForesightAccounting, ChurnKeepsHitPlusFallbackCoveringEveryConsult) {
  device::DeviceMemory mem;
  device::EpochManager epochs;
  ForesightIndex foresight(1u << 12, /*stride=*/1, /*rebuild_threshold=*/8);
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem, nullptr, nullptr, &epochs, nullptr, nullptr, &foresight);
  Team team(8, 0, 5);

  obs::MetricsShard shard;
  team.set_metrics(&shard);
  Xoshiro256ss rng(0xACC2);
  constexpr int kOps = 2000;
  for (int i = 0; i < kOps; ++i) {
    apply_op(sl, team, random_op(rng, 128, 40, 40));
  }
  team.set_metrics(nullptr);

  const std::uint64_t hits = shard.counter(obs::kForesightHits);
  const std::uint64_t falls = shard.counter(obs::kForesightFallbacks);
  const std::uint64_t stale = shard.counter(obs::kForesightStaleHints);
  // Staleness restarts re-consult, so consults >= ops; the invariant is that
  // the two verdicts partition the consults and staleness implies fallback.
  EXPECT_GE(hits + falls, static_cast<std::uint64_t>(kOps));
  EXPECT_LE(stale, falls) << "a stale hint must always take the fallback";
  const auto rep = sl.validate(/*strict=*/true);
  EXPECT_TRUE(rep.ok) << rep.error;
}

// ---------------------------------------------------------------------------
// Staleness-adversarial: structural churn between a hint's publication and
// its consultation.  Correctness must never depend on hint freshness.

// Huge threshold and no invalidation: the primed table stays published (and
// increasingly wrong) across the churn, so consults keep dereferencing hints
// whose chunks were merged away or recycled since publication.
constexpr std::uint64_t kNeverRepublish = 1'000'000'000;

TEST(ForesightStaleness, MergeZombiesFallBackWithoutWrongAnswers) {
  device::DeviceMemory mem;
  // No EpochManager: merged-away chunks stay zombie with their published
  // generation intact — the gen-consistent-zombie shape, which validation
  // must reject (§9 ABA argument) even though the stamp matches.
  ForesightIndex foresight(1u << 12, /*stride=*/1, kNeverRepublish);
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem, nullptr, nullptr, nullptr, nullptr, nullptr, &foresight);
  Team team(8, 0, 5);

  sl.bulk_load(ascending_pairs(1, 1200));
  sl.foresight_prime(team);
  const std::uint64_t published = foresight.rebuilds();
  ASSERT_EQ(published, 1u);

  // Merge wave through [400, 800]: the hints into that region now name
  // zombies (or chunks whose coverage moved right underneath them).
  for (Key k = 400; k <= 800; ++k) ASSERT_TRUE(sl.erase(team, k));

  obs::MetricsShard shard;
  team.set_metrics(&shard);
  for (Key k = 350; k <= 850; ++k) {
    EXPECT_EQ(sl.contains(team, k), k < 400 || k > 800) << "key " << k;
  }
  team.set_metrics(nullptr);

  EXPECT_EQ(foresight.rebuilds(), published) << "table republished mid-test";
  const std::uint64_t stale = shard.counter(obs::kForesightStaleHints);
  const std::uint64_t falls = shard.counter(obs::kForesightFallbacks);
  EXPECT_GT(stale, 0u) << "churned hints never went stale — test is inert";
  EXPECT_LE(stale, falls);
  EXPECT_EQ(shard.counter(obs::kForesightHits) + falls,
            static_cast<std::uint64_t>(850 - 350 + 1));
}

TEST(ForesightStaleness, RecycledChunkGenerationBumpFallsBack) {
  device::DeviceMemory mem;
  device::EpochManager epochs;
  ForesightIndex foresight(1u << 12, /*stride=*/1, kNeverRepublish);
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem, nullptr, nullptr, &epochs, nullptr, nullptr, &foresight);
  Team team(8, 0, 5);

  sl.bulk_load(ascending_pairs(1, 1200));
  sl.foresight_prime(team);
  ASSERT_EQ(foresight.rebuilds(), 1u);

  // Drain a region, then churn elsewhere until the epoch machinery has
  // demonstrably recycled chunks: the drained region's hints now carry
  // generation stamps the arena has since bumped.
  obs::MetricsShard churn_shard;
  team.set_metrics(&churn_shard);
  for (Key k = 200; k <= 900; ++k) ASSERT_TRUE(sl.erase(team, k));
  Xoshiro256ss rng(0x9E4);
  for (int i = 0; i < 4000 &&
                  churn_shard.counter(obs::kChunkReclaims) == 0;
       ++i) {
    const Key k = static_cast<Key>(1000 + rng.below(4000));
    if (rng.below(2) == 0) {
      sl.insert(team, k, value_of(k));
    } else {
      sl.erase(team, k);
    }
  }
  team.set_metrics(nullptr);
  ASSERT_GT(churn_shard.counter(obs::kChunkReclaims), 0u)
      << "no chunk was recycled — the generation-bump path never ran";

  obs::MetricsShard shard;
  team.set_metrics(&shard);
  for (Key k = 150; k <= 950; ++k) {
    EXPECT_EQ(sl.contains(team, k), k < 200 || k > 900) << "key " << k;
  }
  team.set_metrics(nullptr);

  EXPECT_EQ(foresight.rebuilds(), 1u) << "table republished mid-test";
  EXPECT_GT(shard.counter(obs::kForesightStaleHints), 0u);
  EXPECT_LE(shard.counter(obs::kForesightStaleHints),
            shard.counter(obs::kForesightFallbacks));
  const auto rep = sl.validate(/*strict=*/true);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(ForesightStaleness, CompactInvalidatesAndTheNextOpRepublishes) {
  device::DeviceMemory mem;
  device::EpochManager epochs;
  ForesightIndex foresight(1u << 12, /*stride=*/1, kNeverRepublish);
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem, nullptr, nullptr, &epochs, nullptr, nullptr, &foresight);
  Team team(8, 0, 5);

  sl.bulk_load(ascending_pairs(1, 800));
  sl.foresight_prime(team);
  ASSERT_EQ(foresight.rebuilds(), 1u);

  // Quiescent structural replacement: every published ref is garbage, so
  // compact must unpublish (rebuild_due again) rather than leave a table
  // whose gen-consistent entries point into a rebuilt pool.
  sl.compact();
  ASSERT_TRUE(foresight.rebuild_due());

  obs::MetricsShard shard;
  team.set_metrics(&shard);
  for (Key k = 1; k <= 200; ++k) {
    EXPECT_TRUE(sl.contains(team, k)) << "key " << k;
  }
  team.set_metrics(nullptr);

  // The first consult after the invalidate republishes under its epoch pin;
  // later consults run hinted against the fresh table.
  EXPECT_EQ(foresight.rebuilds(), 2u);
  EXPECT_EQ(shard.counter(obs::kForesightRebuilds), 1u);
  EXPECT_GT(shard.counter(obs::kForesightHits), 0u);
  EXPECT_EQ(sl.collect(), ascending_pairs(1, 800));
}

// ---------------------------------------------------------------------------
// Fresh hints: a hinted lookup lands at-or-left within a stride of the
// enclosing chunk, so chunks read per traversal stays <= 2 (vs height+1 for
// the classic descent).

TEST(ForesightFreshness, FreshHintsReadAtMostTwoChunksPerTraversal) {
  device::DeviceMemory mem;
  ForesightIndex foresight(1u << 14);  // default stride 2
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 14;
  Gfsl sl(cfg, &mem, nullptr, nullptr, nullptr, nullptr, nullptr, &foresight);
  Team team(8, 0, 5);

  sl.bulk_load(ascending_pairs(1, 6000));
  sl.foresight_prime(team);

  obs::MetricsShard shard;
  team.set_metrics(&shard);
  Xoshiro256ss rng(0xF2E5);
  for (int i = 0; i < 3000; ++i) {
    const Key k = static_cast<Key>(1 + rng.below(6000));
    ASSERT_TRUE(sl.contains(team, k));
  }
  team.set_metrics(nullptr);

  // Nothing fell back (the prime published before any traffic), so the
  // traversal counters measure the hinted path alone: one validated jump
  // plus at most one lateral step at stride 2.
  ASSERT_EQ(shard.counter(obs::kForesightFallbacks), 0u);
  EXPECT_LE(sl.avg_chunks_per_traversal(), 2.0);
  EXPECT_GT(sl.avg_chunks_per_traversal(), 0.0);
}

// ---------------------------------------------------------------------------
// A/B determinism: the detached path is the seed path, and the attached path
// is reproducible under a fixed deterministic schedule.

struct AbRun {
  std::vector<bool> results;  // per-op return values, in program order
  Pairs contents;
  bool valid = false;
  std::string error;
};

// Two teams churn *disjoint* key spaces under the same seeded deterministic
// schedule (mirrors test_snapshot.cpp's A/B harness).  Per-team key spaces
// make every op's result a function of that team's own program order alone,
// so the result vectors and final contents must be identical across the two
// arms even though attaching the index changes traversal shapes — a hinted
// jump skips the upper descent's yield points — and can shift which team
// performs the lazy rebuild walk.
AbRun run_ab(std::uint64_t sched_seed, bool with_foresight) {
  device::DeviceMemory mem;
  device::EpochManager epochs;
  sched::StepScheduler sched(sched::StepScheduler::Mode::Deterministic,
                             sched_seed, 2);
  std::unique_ptr<ForesightIndex> foresight;
  if (with_foresight) {
    foresight = std::make_unique<ForesightIndex>(1u << 12, /*stride=*/1,
                                                 /*rebuild_threshold=*/16);
  }
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem, &sched, nullptr, &epochs, nullptr, nullptr,
          foresight.get());

  std::vector<std::vector<bool>> per_team(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Team team(8, t, 5);
      Xoshiro256ss rng(derive_seed(83, static_cast<std::uint64_t>(t)));
      auto& out = per_team[static_cast<std::size_t>(t)];
      sched.enter(t);
      for (int i = 0; i < 200; ++i) {
        const Key k = static_cast<Key>(1 + t * 1'000 + rng.below(64));
        switch (rng.below(3)) {
          case 0:
            out.push_back(sl.insert(team, k, k));
            break;
          case 1:
            out.push_back(sl.erase(team, k));
            break;
          default:
            out.push_back(sl.contains(team, k));
            break;
        }
      }
      sched.leave(t);
    });
  }
  for (auto& th : threads) th.join();

  AbRun r;
  for (const auto& v : per_team) {
    r.results.insert(r.results.end(), v.begin(), v.end());
  }
  r.contents = sl.collect();
  const auto rep = sl.validate(/*strict=*/false);
  r.valid = rep.ok;
  r.error = rep.error;
  return r;
}

TEST(ForesightABDeterminism, AttachedIndexChangesNoResultOrContents) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const AbRun detached = run_ab(seed, /*with_foresight=*/false);
    const AbRun attached = run_ab(seed, /*with_foresight=*/true);
    ASSERT_TRUE(detached.valid) << "seed " << seed << ": " << detached.error;
    ASSERT_TRUE(attached.valid) << "seed " << seed << ": " << attached.error;
    EXPECT_EQ(detached.results, attached.results)
        << "seed " << seed
        << ": an op returned differently with foresight armed";
    EXPECT_EQ(detached.contents, attached.contents)
        << "seed " << seed << ": final contents diverged with foresight armed";
  }
}

TEST(ForesightABDeterminism, DetachedPathIsReproducible) {
  const AbRun a = run_ab(13, /*with_foresight=*/false);
  const AbRun b = run_ab(13, /*with_foresight=*/false);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.contents, b.contents);
}

TEST(ForesightABDeterminism, AttachedPathIsReproducible) {
  // Fixed seed, foresight armed twice: hint consults, rebuild timing and all
  // fallbacks replay identically under the deterministic schedule.
  const AbRun a = run_ab(13, /*with_foresight=*/true);
  const AbRun b = run_ab(13, /*with_foresight=*/true);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.contents, b.contents);
}

}  // namespace
}  // namespace gfsl::core
