// Concurrency stress tests: multiple teams on OS threads hammering one
// structure.  Checks per-key result consistency (keys partitioned by team),
// global accounting (inserts − deletes == final size), and post-quiescence
// structural validity.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/gfsl.h"
#include "device/device_memory.h"

namespace gfsl::core {
namespace {

using simt::Team;

std::unique_ptr<Gfsl> make_list(device::DeviceMemory& mem, int team_size,
                                std::uint32_t pool = 1u << 17) {
  GfslConfig cfg;
  cfg.team_size = team_size;
  cfg.pool_chunks = pool;
  return std::make_unique<Gfsl>(cfg, &mem);
}

TEST(GfslConcurrent, DisjointKeyRangesStayConsistent) {
  device::DeviceMemory mem;
  auto sl = make_list(mem, 32);
  constexpr int kTeams = 4;
  constexpr int kOpsEach = 4'000;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  std::vector<std::set<Key>> finals(kTeams);

  for (int t = 0; t < kTeams; ++t) {
    threads.emplace_back([&, t] {
      Team team(32, t, 1234);
      Xoshiro256ss rng(derive_seed(55, static_cast<std::uint64_t>(t)));
      std::set<Key> mine;
      const Key base = static_cast<Key>(1 + t * 10'000'000);
      for (int i = 0; i < kOpsEach; ++i) {
        const Key k = base + static_cast<Key>(rng.below(300));
        switch (rng.below(3)) {
          case 0:
            if (sl->insert(team, k, k) != mine.insert(k).second) ++failures;
            break;
          case 1:
            if (sl->erase(team, k) != (mine.erase(k) > 0)) ++failures;
            break;
          default:
            if (sl->contains(team, k) != (mine.count(k) > 0)) ++failures;
            break;
        }
      }
      finals[static_cast<std::size_t>(t)] = std::move(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Post-quiescence: exact global contents and structural invariants.
  std::set<Key> expected;
  for (const auto& s : finals) expected.insert(s.begin(), s.end());
  const auto got = sl->collect();
  ASSERT_EQ(got.size(), expected.size());
  auto it = expected.begin();
  for (std::size_t i = 0; i < got.size(); ++i, ++it) {
    ASSERT_EQ(got[i].first, *it);
  }
  const auto rep = sl->validate(/*strict=*/false);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(GfslConcurrent, OverlappingKeysAccounting) {
  device::DeviceMemory mem;
  auto sl = make_list(mem, 32);
  constexpr int kTeams = 4;
  constexpr int kOpsEach = 3'000;
  std::atomic<std::int64_t> net_inserted{0};
  std::vector<std::thread> threads;

  for (int t = 0; t < kTeams; ++t) {
    threads.emplace_back([&, t] {
      Team team(32, t, 777);
      Xoshiro256ss rng(derive_seed(99, static_cast<std::uint64_t>(t)));
      std::int64_t net = 0;
      for (int i = 0; i < kOpsEach; ++i) {
        // Hot key range shared by all teams: real contention on chunks.
        const Key k = static_cast<Key>(1 + rng.below(150));
        if (rng.below(2) == 0) {
          if (sl->insert(team, k, t)) ++net;
        } else {
          if (sl->erase(team, k)) --net;
        }
      }
      net_inserted.fetch_add(net);
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(static_cast<std::int64_t>(sl->size()), net_inserted.load());
  const auto rep = sl->validate(/*strict=*/false);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(GfslConcurrent, ReadersNeverMissStableKeys) {
  // Keys 1..N are inserted up front and never removed; writers churn a
  // disjoint range.  Lock-free readers must see every stable key, always.
  device::DeviceMemory mem;
  auto sl = make_list(mem, 16);
  constexpr Key kStable = 400;
  {
    Team boot(16, 99, 1);
    for (Key k = 1; k <= kStable; ++k) ASSERT_TRUE(sl->insert(boot, k, k));
  }
  std::atomic<bool> stop{false};
  std::atomic<int> misses{0};

  std::thread writer([&] {
    Team team(16, 0, 2);
    Xoshiro256ss rng(8);
    // Churn keys adjacent to the stable range so splits/merges constantly
    // move chunks the readers traverse through.
    for (int i = 0; i < 12'000; ++i) {
      const Key k = kStable + 1 + static_cast<Key>(rng.below(300));
      if (rng.below(2) == 0) {
        sl->insert(team, k, 0);
      } else {
        sl->erase(team, k);
      }
    }
    stop = true;
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Team team(16, 10 + r, 3);
      Xoshiro256ss rng(derive_seed(6, static_cast<std::uint64_t>(r)));
      while (!stop.load(std::memory_order_acquire)) {
        const Key k = static_cast<Key>(1 + rng.below(kStable));
        if (!sl->contains(team, k)) ++misses;
      }
    });
  }
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_EQ(misses.load(), 0);
  EXPECT_TRUE(sl->validate(/*strict=*/false).ok);
}

TEST(GfslConcurrent, ConcurrentInsertOnlyThenExactContents) {
  device::DeviceMemory mem;
  auto sl = make_list(mem, 32);
  constexpr int kTeams = 4;
  constexpr Key kPerTeam = 2'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kTeams; ++t) {
    threads.emplace_back([&, t] {
      Team team(32, t, 10);
      // Interleaved key spaces (k % kTeams == t) so teams constantly insert
      // into the same chunks.
      for (Key i = 0; i < kPerTeam; ++i) {
        const Key k = 1 + i * kTeams + static_cast<Key>(t);
        ASSERT_TRUE(sl->insert(team, k, k));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(sl->size(), static_cast<std::uint64_t>(kTeams) * kPerTeam);
  const auto got = sl->collect();
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].first, static_cast<Key>(i + 1));  // dense 1..N
    ASSERT_EQ(got[i].second, got[i].first);
  }
  EXPECT_TRUE(sl->validate(/*strict=*/false).ok);
}

TEST(GfslConcurrent, ConcurrentDeleteOnlyDrainsExactly) {
  device::DeviceMemory mem;
  auto sl = make_list(mem, 32);
  constexpr Key kTotal = 6'000;
  {
    std::vector<std::pair<Key, Value>> pairs;
    for (Key k = 1; k <= kTotal; ++k) pairs.emplace_back(k, 0);
    sl->bulk_load(pairs);
  }
  constexpr int kTeams = 4;
  std::vector<std::thread> threads;
  std::atomic<std::uint64_t> deleted{0};
  for (int t = 0; t < kTeams; ++t) {
    threads.emplace_back([&, t] {
      Team team(32, t, 20);
      std::uint64_t mine = 0;
      for (Key k = 1 + static_cast<Key>(t); k <= kTotal; k += kTeams) {
        if (sl->erase(team, k)) ++mine;
      }
      deleted.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(deleted.load(), kTotal);
  EXPECT_EQ(sl->size(), 0u);
  EXPECT_TRUE(sl->validate(/*strict=*/false).ok);
}

TEST(GfslConcurrent, MixedTeamsContendOnSameKey) {
  // All teams fight over a handful of keys; every successful insert of key k
  // must be matched by exactly one successful delete before the next insert
  // can succeed.  Net count per key is 0 or 1 at the end.
  device::DeviceMemory mem;
  auto sl = make_list(mem, 32);
  constexpr int kTeams = 4;
  std::vector<std::thread> threads;
  std::atomic<std::int64_t> net{0};
  for (int t = 0; t < kTeams; ++t) {
    threads.emplace_back([&, t] {
      Team team(32, t, 30);
      Xoshiro256ss rng(derive_seed(44, static_cast<std::uint64_t>(t)));
      std::int64_t mine = 0;
      for (int i = 0; i < 4'000; ++i) {
        const Key k = static_cast<Key>(1 + rng.below(5));  // 5 hot keys
        if (rng.below(2) == 0) {
          if (sl->insert(team, k, t)) ++mine;
        } else {
          if (sl->erase(team, k)) --mine;
        }
      }
      net.fetch_add(mine);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(static_cast<std::int64_t>(sl->size()), net.load());
  EXPECT_LE(sl->size(), 5u);
  EXPECT_TRUE(sl->validate(/*strict=*/false).ok);
}

}  // namespace
}  // namespace gfsl::core
