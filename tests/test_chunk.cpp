// Unit tests: chunk arena layout, entry packing, allocation protocol.
#include <gtest/gtest.h>

#include <new>

#include "core/chunk.h"

namespace gfsl::core {
namespace {

TEST(ChunkArena, LayoutAndSlots) {
  ChunkArena a(32, 8);
  EXPECT_EQ(a.entries_per_chunk(), 32);
  EXPECT_EQ(a.dsize(), 30);
  EXPECT_EQ(a.next_slot(), 30);
  EXPECT_EQ(a.lock_slot(), 31);
  EXPECT_EQ(a.chunk_bytes(), 256u);

  ChunkArena b(16, 8);
  EXPECT_EQ(b.chunk_bytes(), 128u);  // one transaction per read (§5.2)
}

TEST(ChunkArena, DeviceAddressesAreDense) {
  ChunkArena a(32, 8);
  EXPECT_EQ(a.device_address(0), 0u);
  EXPECT_EQ(a.device_address(1), 256u);
  EXPECT_EQ(a.entry_address(1, 30), 256u + 240u);
}

TEST(ChunkArena, AllocInitializesLockedAndEmpty) {
  ChunkArena a(16, 4);
  const ChunkRef c = a.alloc_locked();
  for (int i = 0; i < a.dsize(); ++i) {
    EXPECT_TRUE(kv_is_empty(a.entry(c, i).load()));
  }
  const KV nx = a.entry(c, a.next_slot()).load();
  EXPECT_EQ(next_entry_max(nx), KEY_INF);  // allocated as a last chunk (§4.1)
  EXPECT_EQ(next_entry_ref(nx), NULL_CHUNK);
  EXPECT_EQ(lock_entry_state(a.entry(c, a.lock_slot()).load()), kLocked);
}

TEST(ChunkArena, ExhaustionReturnsNullChunk) {
  ChunkArena a(8, 2);
  a.alloc_locked();
  a.alloc_locked();
  EXPECT_FALSE(a.can_alloc());
  EXPECT_EQ(a.alloc_locked(), NULL_CHUNK);
}

TEST(ChunkArena, RejectsBadGeometry) {
  EXPECT_THROW(ChunkArena(7, 4), std::invalid_argument);
  EXPECT_THROW(ChunkArena(4, 4), std::invalid_argument);
  EXPECT_THROW(ChunkArena(64, 4), std::invalid_argument);
  EXPECT_THROW(ChunkArena(32, 0), std::invalid_argument);
}

TEST(ChunkEntries, NextEntryPacksMaxAndRef) {
  const KV e = make_next_entry(12345, 678);
  EXPECT_EQ(next_entry_max(e), 12345u);
  EXPECT_EQ(next_entry_ref(e), 678u);
  // Updating max and next together is a single 64-bit write (§4.2.2).
  static_assert(sizeof(KV) == 8);
}

TEST(ChunkEntries, LockStates) {
  EXPECT_EQ(lock_entry_state(make_lock_entry(kUnlocked)), kUnlocked);
  EXPECT_EQ(lock_entry_state(make_lock_entry(kLocked)), kLocked);
  EXPECT_EQ(lock_entry_state(make_lock_entry(kZombie)), kZombie);
}

}  // namespace
}  // namespace gfsl::core
