// Durable chunk arena + whole-process crash recovery (DESIGN.md §12).
//
// Three layers of coverage:
//
//   * PersistRegion unit tests: create/attach round-trip, superblock
//     validation, geometry rejection, clean-shutdown bookkeeping.
//   * Whole-process crash/recovery: a forked child runs a workload over a
//     file-backed region and SIGKILLs itself at an armed persist barrier;
//     the parent attaches the orphaned file and runs Gfsl::recover().  The
//     recovery pass must be idempotent — recover-twice and recover-killed-
//     mid-repair-then-rerun both converge to the bit-identical image.
//   * Per-mutation-kind torn-state fixtures: a scripted single team under
//     the deterministic scheduler is killed at *every* yield step of its
//     final op (insert shift, erase shift, split, merge); the region is then
//     re-attached cold and recovered whole-process — no surviving team,
//     no medic with live context — and the final key set must land on one
//     of the two legal roll directions.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/chunk.h"
#include "core/gfsl.h"
#include "device/device_memory.h"
#include "device/fault_plane.h"
#include "device/persist.h"
#include "sched/lease.h"
#include "sched/step_scheduler.h"
#include "simt/team.h"

namespace gfsl::core {
namespace {

using device::PersistGeometry;
using device::PersistRegion;

std::string tmp_region(const std::string& name) {
  return testing::TempDir() + "gfsl_" + name + ".region";
}

GfslConfig small_cfg(int team_size = 8, std::uint32_t pool = 1u << 12) {
  GfslConfig cfg;
  cfg.team_size = team_size;
  cfg.pool_chunks = pool;
  return cfg;
}

std::vector<unsigned char> snapshot(const PersistRegion& r) {
  const auto* p = static_cast<const unsigned char*>(r.raw());
  return std::vector<unsigned char>(p, p + r.bytes());
}

/// The deterministic single-team workload every fork-based test runs: mixed
/// inserts and erases with enough churn to split, merge, and raise.
void run_small_workload(Gfsl& sl, simt::Team& team) {
  for (Key k = 1; k <= 120; ++k) sl.insert(team, k * 3, k);
  for (Key k = 1; k <= 120; k += 2) sl.erase(team, k * 3);
  for (Key k = 200; k <= 260; ++k) sl.insert(team, k, k);
}

std::set<Key> small_workload_expected() {
  std::set<Key> keys;
  for (Key k = 1; k <= 120; ++k) keys.insert(k * 3);
  for (Key k = 1; k <= 120; k += 2) keys.erase(k * 3);
  for (Key k = 200; k <= 260; ++k) keys.insert(k);
  return keys;
}

[[noreturn]] void child_workload(const std::string& path,
                                 std::uint64_t kill_at) {
  try {
    PersistRegion region(path, PersistRegion::Mode::kCreate,
                         PersistGeometry{8, 1u << 12});
    if (kill_at != 0) region.arm_kill_at(kill_at);
    sched::LeaseTable leases;
    leases.attach(
        static_cast<std::atomic<std::uint32_t>*>(region.lease_slots()),
        /*adopt=*/false);
    device::DeviceMemory mem;
    Gfsl sl(small_cfg(), &mem, nullptr, &leases, nullptr, &region);
    simt::Team team(8, 0, 3);
    run_small_workload(sl, team);
    region.mark_clean();
    ::_exit(0);
  } catch (...) {
    ::_exit(3);
  }
}

/// Child attaches an existing (torn) region and runs recover() with the
/// j-th recovery-time persist barrier armed to SIGKILL — a crash *inside*
/// the repair pass.
[[noreturn]] void child_recover(const std::string& path,
                                std::uint64_t kill_at) {
  try {
    PersistRegion region(path, PersistRegion::Mode::kAttach);
    region.arm_kill_at(kill_at);
    sched::LeaseTable leases;
    leases.attach(
        static_cast<std::atomic<std::uint32_t>*>(region.lease_slots()),
        /*adopt=*/true);
    device::DeviceMemory mem;
    GfslConfig cfg;
    cfg.team_size = static_cast<int>(region.geometry().entries_per_chunk);
    cfg.pool_chunks = region.geometry().capacity;
    Gfsl sl(cfg, &mem, nullptr, &leases, nullptr, &region);
    (void)sl.recover();
    ::_exit(0);  // recovery crossed fewer than kill_at barriers
  } catch (...) {
    ::_exit(3);
  }
}

enum class ChildFate { kClean, kKilled, kError };

template <typename ChildFn>
ChildFate run_forked(ChildFn&& fn) {
  const pid_t pid = ::fork();
  if (pid == 0) fn();  // noreturn
  int st = 0;
  ::waitpid(pid, &st, 0);
  if (WIFSIGNALED(st) && WTERMSIG(st) == SIGKILL) return ChildFate::kKilled;
  if (WIFEXITED(st) && WEXITSTATUS(st) == 0) return ChildFate::kClean;
  return ChildFate::kError;
}

/// Full offline recovery of the region file: attach, adopt leases, recover.
RecoveryReport recover_file(const std::string& path,
                            std::vector<unsigned char>* bytes_after = nullptr,
                            std::set<Key>* keys = nullptr) {
  PersistRegion region(path, PersistRegion::Mode::kAttach);
  sched::LeaseTable leases;
  leases.attach(
      static_cast<std::atomic<std::uint32_t>*>(region.lease_slots()),
      /*adopt=*/true);
  device::DeviceMemory mem;
  GfslConfig cfg;
  cfg.team_size = static_cast<int>(region.geometry().entries_per_chunk);
  cfg.pool_chunks = region.geometry().capacity;
  Gfsl sl(cfg, &mem, nullptr, &leases, nullptr, &region);
  const RecoveryReport rep = sl.recover();
  if (keys != nullptr) {
    for (const auto& [k, v] : sl.collect()) keys->insert(k);
  }
  if (bytes_after != nullptr) *bytes_after = snapshot(region);
  return rep;
}

// ---------------------------------------------------------------------------
// PersistRegion unit tests.

TEST(PersistRegion, CreateAttachRoundTrip) {
  const auto path = tmp_region("roundtrip");
  {
    PersistRegion r(path, PersistRegion::Mode::kCreate,
                    PersistGeometry{8, 64});
    EXPECT_TRUE(r.fresh());
    EXPECT_GT(r.bytes(), PersistRegion::kSuperBytes);
    r.barrier();
    r.barrier();
    r.barrier();
    EXPECT_EQ(r.persist_points(), 3u);
    r.mark_clean();
  }
  PersistRegion r(path, PersistRegion::Mode::kAttach);
  EXPECT_FALSE(r.fresh());
  EXPECT_TRUE(r.was_clean());
  EXPECT_EQ(r.recorded_persist_points(), 3u);
  EXPECT_EQ(r.geometry().entries_per_chunk, 8u);
  EXPECT_EQ(r.geometry().capacity, 64u);
}

TEST(PersistRegion, DirtyShutdownIsVisibleAtAttach) {
  const auto path = tmp_region("dirty");
  { PersistRegion r(path, PersistRegion::Mode::kCreate,
                    PersistGeometry{8, 64}); }
  PersistRegion r(path, PersistRegion::Mode::kAttach);
  EXPECT_FALSE(r.was_clean());
}

TEST(PersistRegion, CorruptSuperblockRejected) {
  const auto path = tmp_region("corrupt");
  { PersistRegion r(path, PersistRegion::Mode::kCreate,
                    PersistGeometry{8, 64}); }
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    char b = 0;
    f.read(&b, 1);
    b ^= 0x5A;
    f.seekp(0);
    f.write(&b, 1);
  }
  EXPECT_THROW(PersistRegion(path, PersistRegion::Mode::kAttach),
               std::runtime_error);
}

TEST(PersistRegion, MissingFileRejectedOnAttach) {
  EXPECT_THROW(
      PersistRegion(tmp_region("never_created"), PersistRegion::Mode::kAttach),
      std::runtime_error);
}

TEST(PersistRegion, GeometryMismatchRejectedByArena) {
  const auto path = tmp_region("geom");
  PersistRegion r(path, PersistRegion::Mode::kCreate, PersistGeometry{8, 64});
  EXPECT_THROW(ChunkArena(16, 64, &r), std::invalid_argument);
  EXPECT_THROW(ChunkArena(8, 128, &r), std::invalid_argument);
  EXPECT_NO_THROW(ChunkArena(8, 64, &r));
}

TEST(PersistGfsl, RegionRequiresLeaseTable) {
  const auto path = tmp_region("no_leases");
  PersistRegion region(path, PersistRegion::Mode::kCreate,
                       PersistGeometry{8, 1u << 12});
  device::DeviceMemory mem;
  EXPECT_THROW(
      Gfsl(small_cfg(), &mem, nullptr, /*leases=*/nullptr, nullptr, &region),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Clean-shutdown round-trip through a real structure.

TEST(PersistGfsl, CleanShutdownReattachServesSameContents) {
  const auto path = tmp_region("clean_roundtrip");
  {
    PersistRegion region(path, PersistRegion::Mode::kCreate,
                         PersistGeometry{8, 1u << 12});
    sched::LeaseTable leases;
    leases.attach(
        static_cast<std::atomic<std::uint32_t>*>(region.lease_slots()),
        /*adopt=*/false);
    device::DeviceMemory mem;
    Gfsl sl(small_cfg(), &mem, nullptr, &leases, nullptr, &region);
    simt::Team team(8, 0, 3);
    run_small_workload(sl, team);
    EXPECT_GT(region.persist_points(), 0u);
    region.mark_clean();
  }
  std::set<Key> keys;
  const auto rep = recover_file(path, nullptr, &keys);
  EXPECT_TRUE(rep.ok) << rep.error;
  // A cleanly shut-down image has nothing to repair.
  EXPECT_EQ(rep.locks_released, 0);
  EXPECT_EQ(rep.intents_repaired, 0);
  EXPECT_EQ(rep.stale_keys_scrubbed, 0u);
  EXPECT_EQ(keys, small_workload_expected());
}

// ---------------------------------------------------------------------------
// Whole-process SIGKILL + recovery, and recovery idempotence.

TEST(PersistRecovery, SigkilledChildImageRecoversAndValidates) {
  const auto path = tmp_region("sigkill");
  // Kill points sampled across the workload: early (allocation storm),
  // middle (steady mutation), late (merge-heavy erase phase).
  for (const std::uint64_t kill_at : {7u, 120u, 400u}) {
    ASSERT_EQ(run_forked([&] { child_workload(path, kill_at); }),
              ChildFate::kKilled)
        << "child with barrier " << kill_at << " armed did not die by SIGKILL";
    std::set<Key> keys;
    const auto rep = recover_file(path, nullptr, &keys);
    EXPECT_TRUE(rep.ok) << "kill at " << kill_at << ": " << rep.error;
    // The single-team workload is sequential, so the recovered key set must
    // be a state the program actually passed through — every key is one the
    // workload inserts.
    const auto plausible = [] {
      std::set<Key> s;
      for (Key k = 1; k <= 120; ++k) s.insert(k * 3);
      for (Key k = 200; k <= 260; ++k) s.insert(k);
      return s;
    }();
    for (const Key k : keys) {
      EXPECT_TRUE(plausible.count(k) != 0) << "alien key " << k;
    }
  }
}

TEST(PersistRecovery, RecoverTwiceIsBitIdentical) {
  const auto path = tmp_region("idempotent");
  for (const std::uint64_t kill_at : {25u, 180u}) {
    ASSERT_EQ(run_forked([&] { child_workload(path, kill_at); }),
              ChildFate::kKilled);
    std::vector<unsigned char> first, second;
    const auto rep1 = recover_file(path, &first);
    ASSERT_TRUE(rep1.ok) << rep1.error;
    const auto rep2 = recover_file(path, &second);
    ASSERT_TRUE(rep2.ok) << rep2.error;
    // The second pass finds a canonical image and must change nothing.
    EXPECT_EQ(rep2.locks_released, 0);
    EXPECT_EQ(rep2.intents_repaired, 0);
    EXPECT_TRUE(first == second)
        << "recover() twice diverged (kill at " << kill_at << ")";
  }
}

TEST(PersistRecovery, KillMidRecoveryThenRerunConverges) {
  const auto path_a = tmp_region("midrecover_a");
  const auto path_b = tmp_region("midrecover_b");
  ASSERT_EQ(run_forked([&] { child_workload(path_a, 90); }),
            ChildFate::kKilled);
  // Two copies of the same torn image: B recovers straight through, A's
  // recovery is crashed at persist barrier j and then re-run.  Both paths
  // must land on the same bytes.
  std::filesystem::copy_file(path_a, path_b,
                             std::filesystem::copy_options::overwrite_existing);
  std::vector<unsigned char> straight;
  const auto rep_b = recover_file(path_b, &straight);
  ASSERT_TRUE(rep_b.ok) << rep_b.error;
  for (std::uint64_t j = 1; j <= 4; ++j) {
    const auto fate = run_forked([&] { child_recover(path_a, j); });
    ASSERT_NE(fate, ChildFate::kError);
    if (fate == ChildFate::kClean) break;  // recovery has < j barriers
    std::vector<unsigned char> rerun;
    const auto rep_a = recover_file(path_a, &rerun);
    ASSERT_TRUE(rep_a.ok)
        << "re-run after mid-recovery kill at barrier " << j << ": "
        << rep_a.error;
    EXPECT_TRUE(rerun == straight)
        << "mid-recovery crash at barrier " << j
        << " left a different converged image";
    // Re-tear the image for the next j: the recovered file is now clean, so
    // copy the pristine torn bytes back.
    std::filesystem::copy_file(
        path_b, path_a, std::filesystem::copy_options::overwrite_existing);
    // path_b is recovered, not torn — regenerate both from a fresh kill so
    // every j sweeps the same torn image.
    ASSERT_EQ(run_forked([&] { child_workload(path_a, 90); }),
              ChildFate::kKilled);
    std::filesystem::copy_file(
        path_a, path_b, std::filesystem::copy_options::overwrite_existing);
    straight.clear();
    const auto rb = recover_file(path_b, &straight);
    ASSERT_TRUE(rb.ok) << rb.error;
  }
}

// ---------------------------------------------------------------------------
// Per-mutation-kind torn-state fixtures: scripted deterministic kills, cold
// whole-process recovery (no surviving teams, no in-context medic).

Op ins(Key k) { return Op{OpKind::Insert, k, k * 10, 0}; }
Op del(Key k) { return Op{OpKind::Delete, k, 0, 0}; }

struct TornOutcome {
  bool ok = true;
  std::string error;
  std::set<Key> keys;
  std::uint64_t steps = 0;
};

TornOutcome run_torn_script(int team_size, const std::vector<Op>& ops,
                            std::uint64_t kill_step, const std::string& path) {
  TornOutcome out;
  {
    device::DeviceMemory mem;
    PersistRegion region(path, PersistRegion::Mode::kCreate,
                         PersistGeometry{static_cast<std::uint32_t>(team_size),
                                         1u << 12});
    sched::LeaseTable leases;
    leases.attach(
        static_cast<std::atomic<std::uint32_t>*>(region.lease_slots()),
        /*adopt=*/false);
    sched::StepScheduler sched(sched::StepScheduler::Mode::Deterministic, 42,
                               1);
    sched.attach_leases(&leases);
    if (kill_step != UINT64_MAX) sched.kill_at(0, kill_step);

    GfslConfig cfg;
    cfg.team_size = team_size;
    cfg.pool_chunks = 1u << 12;
    Gfsl sl(cfg, &mem, &sched, &leases, nullptr, &region);

    std::thread t([&] {
      simt::Team team(team_size, 0, 3);
      sched.enter(0);
      try {
        for (const Op& op : ops) {
          switch (op.kind) {
            case OpKind::Insert: sl.insert(team, op.key, op.value); break;
            case OpKind::Delete: sl.erase(team, op.key); break;
            case OpKind::Contains: sl.contains(team, op.key); break;
          }
        }
        sched.leave(0);
      } catch (const sched::TeamKilled&) {
        // The "process" dies here: the region file keeps whatever the
        // victim had published, including its held locks and intent.
      }
    });
    t.join();
    out.steps = sched.global_steps();
    // Scope exit unmaps without mark_clean() — a dirty image, like SIGKILL.
  }
  const auto rep = recover_file(path, nullptr, &out.keys);
  if (!rep.ok) {
    out.ok = false;
    out.error = rep.error;
  }
  return out;
}

/// Kill at every yield step of the final `target_ops` ops; each torn image
/// must recover, and the recovered key sets are returned so the caller can
/// assert both roll directions occurred.
std::set<std::set<Key>> sweep_torn(int team_size, const std::vector<Op>& ops,
                                   const std::string& path,
                                   std::size_t target_ops = 1) {
  const auto ref = run_torn_script(team_size, ops, UINT64_MAX, path);
  EXPECT_TRUE(ref.ok) << ref.error;
  EXPECT_GT(ref.steps, 0u);
  const std::vector<Op> prefix(ops.begin(), ops.end() - target_ops);
  const auto pre = run_torn_script(team_size, prefix, UINT64_MAX, path);
  EXPECT_TRUE(pre.ok) << pre.error;
  std::set<std::set<Key>> outcomes;
  for (std::uint64_t s = 1; s <= ref.steps; ++s) {
    const auto r = run_torn_script(team_size, ops, s, path);
    EXPECT_TRUE(r.ok) << "kill at step " << s << ": " << r.error;
    if (!r.ok) break;
    if (s > pre.steps) outcomes.insert(r.keys);
  }
  return outcomes;
}

TEST(PersistTorn, InsertShiftRollsForwardOrBack) {
  const auto path = tmp_region("torn_insert");
  const std::vector<Op> script{ins(10), ins(20), ins(30), ins(40), ins(25)};
  const auto outcomes = sweep_torn(8, script, path);
  const std::set<Key> without{10, 20, 30, 40};
  std::set<Key> with = without;
  with.insert(25);
  for (const auto& keys : outcomes) {
    EXPECT_TRUE(keys == without || keys == with)
        << "unexpected recovered key set of size " << keys.size();
  }
  EXPECT_TRUE(outcomes.count(without) == 1 && outcomes.count(with) == 1)
      << "sweep should observe both roll directions";
}

TEST(PersistTorn, EraseShiftRollsForwardOrBack) {
  const auto path = tmp_region("torn_erase");
  const std::vector<Op> script{ins(10), ins(20), ins(30), ins(40), ins(50),
                               del(30)};
  const auto outcomes = sweep_torn(8, script, path);
  const std::set<Key> with{10, 20, 30, 40, 50};
  std::set<Key> without = with;
  without.erase(30);
  for (const auto& keys : outcomes) {
    EXPECT_TRUE(keys == with || keys == without)
        << "unexpected recovered key set of size " << keys.size();
  }
}

TEST(PersistTorn, SplitPublishRollsForwardOrBack) {
  // Team size 8 => 6 data slots: the 7th insert forces a split.  A kill
  // anywhere inside the split (freeze, copy, publish, down swing) must
  // recover to one of the two legal states.
  const auto path = tmp_region("torn_split");
  std::vector<Op> script;
  std::set<Key> without;
  for (Key k = 1; k <= 6; ++k) {
    script.push_back(ins(k * 10));
    without.insert(k * 10);
  }
  script.push_back(ins(35));
  std::set<Key> with = without;
  with.insert(35);
  const auto outcomes = sweep_torn(8, script, path);
  for (const auto& keys : outcomes) {
    EXPECT_TRUE(keys == without || keys == with)
        << "unexpected recovered key set of size " << keys.size();
  }
  EXPECT_TRUE(outcomes.count(with) == 1)
      << "no kill point rolled the split forward";
}

// ---------------------------------------------------------------------------
// FaultPlane-driven corruption of a closed image (DESIGN.md §15): recovery
// must either converge to the pre-close contents or refuse with a typed
// error — never serve a silently wrong answer.  These are the unit-sized
// companions to `gfsl_fuzz --corrupt-sweep`, pinned to specific sections.

/// Writes the reference workload into a fresh region and closes it clean.
std::set<Key> make_clean_image(const std::string& path) {
  PersistRegion region(path, PersistRegion::Mode::kCreate,
                       PersistGeometry{8, 1u << 12});
  sched::LeaseTable leases;
  leases.attach(static_cast<std::atomic<std::uint32_t>*>(region.lease_slots()),
                /*adopt=*/false);
  device::DeviceMemory mem;
  Gfsl sl(small_cfg(), &mem, nullptr, &leases, nullptr, &region);
  simt::Team team(8, 0, 3);
  run_small_workload(sl, team);
  region.mark_clean();
  return small_workload_expected();
}

TEST(PersistCorrupt, FlippedSuperblockIsTypedRejection) {
  // A flip landing in the superblock's covered bytes must surface as a typed
  // recover() refusal (verify_superblock), never as a converged-but-wrong
  // structure.  Flips into don't-care padding may legitimately recover; the
  // seed sweep must observe at least one actual rejection.
  const auto path = tmp_region("corrupt_superblock");
  bool saw_rejection = false;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto expected = make_clean_image(path);
    device::FaultPlane plane;
    device::DeviceMemory mem;
    PersistRegion region(path, PersistRegion::Mode::kAttach);
    region.attach_fault_plane(&plane);
    region.arm_fault_sections(plane);
    const auto frep = plane.inject(
        {device::FaultSection::kSuperblock, device::FaultKind::kBitFlip, seed});
    ASSERT_TRUE(frep.injected);
    sched::LeaseTable leases;
    leases.attach(
        static_cast<std::atomic<std::uint32_t>*>(region.lease_slots()),
        /*adopt=*/true);
    Gfsl sl(small_cfg(), &mem, nullptr, &leases, nullptr, &region);
    const auto rep = sl.recover();
    if (!rep.ok) {
      saw_rejection = true;
      EXPECT_FALSE(rep.error.empty());
    } else {
      std::set<Key> keys;
      for (const auto& [k, v] : sl.collect()) keys.insert(k);
      EXPECT_EQ(keys, expected) << "seed " << seed
                                << ": recovery accepted a flipped superblock "
                                   "but served different contents";
    }
  }
  EXPECT_TRUE(saw_rejection)
      << "no superblock flip in 8 seeds was rejected — the typed-refusal "
         "path never ran";
}

TEST(PersistCorrupt, TornTrailingIntentRollsBackAndConverges) {
  // A torn write into the (quiescent) intent table models a descriptor that
  // was half-published at the crash.  recover()'s triage must claim and roll
  // back the garbage slot; a second pass over the repaired image must be a
  // bit-identical no-op.
  const auto path = tmp_region("corrupt_intent");
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto expected = make_clean_image(path);
    device::FaultPlane plane;
    device::DeviceMemory mem;
    PersistRegion region(path, PersistRegion::Mode::kAttach);
    region.attach_fault_plane(&plane);
    region.arm_fault_sections(plane);
    (void)plane.inject({device::FaultSection::kIntents,
                        device::FaultKind::kTornEntry, seed});
    sched::LeaseTable leases;
    leases.attach(
        static_cast<std::atomic<std::uint32_t>*>(region.lease_slots()),
        /*adopt=*/true);
    Gfsl sl(small_cfg(), &mem, nullptr, &leases, nullptr, &region);
    const auto rep = sl.recover();
    ASSERT_TRUE(rep.ok) << "seed " << seed << ": " << rep.error;
    std::set<Key> keys;
    for (const auto& [k, v] : sl.collect()) keys.insert(k);
    EXPECT_EQ(keys, expected) << "seed " << seed;
    const auto first = snapshot(region);
    const auto rep2 = sl.recover();
    ASSERT_TRUE(rep2.ok) << "seed " << seed << ": " << rep2.error;
    EXPECT_EQ(rep2.intents_repaired, 0) << "seed " << seed;
    EXPECT_TRUE(snapshot(region) == first)
        << "seed " << seed << ": second recovery changed the image";
  }
}

TEST(PersistCorrupt, GenerationWordCorruptionRecoversIdempotently) {
  // Generation stamps are derived bookkeeping: any damage must be rebuilt by
  // recover() without touching user data, and recover-twice must converge.
  const auto path = tmp_region("corrupt_generation");
  for (const device::FaultKind kind : {device::FaultKind::kBitFlip,
                                       device::FaultKind::kMultiBitFlip,
                                       device::FaultKind::kTornEntry}) {
    const auto expected = make_clean_image(path);
    device::FaultPlane plane;
    device::DeviceMemory mem;
    PersistRegion region(path, PersistRegion::Mode::kAttach);
    region.attach_fault_plane(&plane);
    region.arm_fault_sections(plane);
    (void)plane.inject({device::FaultSection::kGenerations, kind, 7});
    sched::LeaseTable leases;
    leases.attach(
        static_cast<std::atomic<std::uint32_t>*>(region.lease_slots()),
        /*adopt=*/true);
    Gfsl sl(small_cfg(), &mem, nullptr, &leases, nullptr, &region);
    const auto rep = sl.recover();
    ASSERT_TRUE(rep.ok) << device::fault_kind_name(kind) << ": " << rep.error;
    std::set<Key> keys;
    for (const auto& [k, v] : sl.collect()) keys.insert(k);
    EXPECT_EQ(keys, expected) << device::fault_kind_name(kind);
    const auto first = snapshot(region);
    const auto rep2 = sl.recover();
    ASSERT_TRUE(rep2.ok) << device::fault_kind_name(kind) << ": "
                         << rep2.error;
    EXPECT_TRUE(snapshot(region) == first)
        << device::fault_kind_name(kind)
        << ": second recovery changed the image";
  }
}

TEST(PersistTorn, MergeRollsForwardOrBack) {
  // Fill past one chunk, then drain until chunks underflow and merge.  The
  // final erase's kill window spans the merge protocol.
  const auto path = tmp_region("torn_merge");
  std::vector<Op> script;
  std::set<Key> base;
  for (Key k = 1; k <= 12; ++k) {
    script.push_back(ins(k * 5));
    base.insert(k * 5);
  }
  for (Key k = 2; k <= 10; k += 2) {
    script.push_back(del(k * 5));
    base.erase(k * 5);
  }
  script.push_back(del(35));
  std::set<Key> with = base;  // delete rolled back: 35 still present
  std::set<Key> without = base;
  without.erase(35);
  const auto outcomes = sweep_torn(8, script, path);
  for (const auto& keys : outcomes) {
    EXPECT_TRUE(keys == with || keys == without)
        << "unexpected recovered key set of size " << keys.size();
  }
}

}  // namespace
}  // namespace gfsl::core
