// Unit tests: lockstep team primitives with CUDA semantics.
#include <gtest/gtest.h>

#include "simt/team.h"

namespace gfsl::simt {
namespace {

TEST(Team, RolesForSize32) {
  Team t(32, 0, 1);
  EXPECT_EQ(t.dsize(), 30);
  EXPECT_EQ(t.next_lane(), 30);
  EXPECT_EQ(t.lock_lane(), 31);
}

TEST(Team, RolesForSize16) {
  Team t(16, 0, 1);
  EXPECT_EQ(t.dsize(), 14);
  EXPECT_EQ(t.next_lane(), 14);
  EXPECT_EQ(t.lock_lane(), 15);
}

TEST(Team, RejectsBadSizes) {
  EXPECT_THROW(Team(0, 0, 1), std::invalid_argument);
  EXPECT_THROW(Team(3, 0, 1), std::invalid_argument);
  EXPECT_THROW(Team(12, 0, 1), std::invalid_argument);
  EXPECT_THROW(Team(64, 0, 1), std::invalid_argument);
}

TEST(Team, BallotSetsOneBitPerTrueLane) {
  Team t(8, 0, 1);
  LaneVec<bool> p(false);
  p[0] = true;
  p[3] = true;
  p[7] = true;
  EXPECT_EQ(t.ballot(p), 0b10001001u);
}

TEST(Team, BallotIgnoresLanesBeyondTeamSize) {
  Team t(8, 0, 1);
  LaneVec<bool> p(true);  // all 32 capacity lanes true
  EXPECT_EQ(t.ballot(p), 0xFFu);
}

TEST(Team, BallotFnMatchesBallot) {
  Team t(16, 0, 1);
  const std::uint32_t bal = t.ballot_fn([](int i) { return i % 3 == 0; });
  std::uint32_t expect = 0;
  for (int i = 0; i < 16; i += 3) expect |= 1u << i;
  EXPECT_EQ(bal, expect);
}

TEST(Team, ShflBroadcasts) {
  Team t(32, 0, 1);
  LaneVec<int> v;
  for (int i = 0; i < 32; ++i) v[i] = i * 10;
  EXPECT_EQ(t.shfl(v, 5), 50);
  EXPECT_EQ(t.shfl(v, 31), 310);
}

TEST(Team, ShflInvalidLaneReturnsOwnValueLikeCuda) {
  Team t(16, 0, 1);
  LaneVec<int> v;
  for (int i = 0; i < 32; ++i) v[i] = i;
  EXPECT_EQ(t.shfl(v, 16), v[0]);  // out of team range
  EXPECT_EQ(t.shfl(v, -1), v[0]);
}

TEST(Team, ShflUpShiftsAndKeepsLowLanes) {
  Team t(8, 0, 1);
  LaneVec<int> v;
  for (int i = 0; i < 8; ++i) v[i] = 100 + i;
  const LaneVec<int> u = t.shfl_up(v, 1);
  EXPECT_EQ(u[0], 100);  // lane 0 keeps its own (CUDA __shfl_up)
  for (int i = 1; i < 8; ++i) EXPECT_EQ(u[i], 100 + i - 1);
}

TEST(Team, ShflFromGathersPerLane) {
  Team t(8, 0, 1);
  LaneVec<int> v;
  LaneVec<int> idx;
  for (int i = 0; i < 8; ++i) {
    v[i] = i * i;
    idx[i] = 7 - i;
  }
  const LaneVec<int> g = t.shfl_from(v, idx);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(g[i], (7 - i) * (7 - i));
}

TEST(Team, HighestAndLowestLane) {
  EXPECT_EQ(Team::highest_lane(0), -1);
  EXPECT_EQ(Team::highest_lane(1), 0);
  EXPECT_EQ(Team::highest_lane(0x80000000u), 31);
  EXPECT_EQ(Team::highest_lane(0b1010), 3);
  EXPECT_EQ(Team::lowest_lane(0), -1);
  EXPECT_EQ(Team::lowest_lane(0b1010), 1);
  EXPECT_EQ(Team::popc(0b1011), 3);
}

TEST(Team, AnyAllSemantics) {
  Team t(8, 0, 1);
  LaneVec<bool> none(false);
  LaneVec<bool> all(false);
  for (int i = 0; i < 8; ++i) all[i] = true;
  LaneVec<bool> some(false);
  some[4] = true;
  EXPECT_FALSE(t.any(none));
  EXPECT_TRUE(t.any(some));
  EXPECT_TRUE(t.any(all));
  EXPECT_FALSE(t.all(none));
  EXPECT_FALSE(t.all(some));
  EXPECT_TRUE(t.all(all));
}

TEST(Team, AllForFullWarp) {
  Team t(32, 0, 1);
  LaneVec<bool> all(false);
  for (int i = 0; i < 32; ++i) all[i] = true;
  EXPECT_TRUE(t.all(all));
  all[31] = false;
  EXPECT_FALSE(t.all(all));
}

TEST(Team, CountersAccumulate) {
  Team t(8, 0, 1);
  const auto before = t.counters().instructions;
  LaneVec<bool> p(false);
  t.ballot(p);
  t.step();
  EXPECT_EQ(t.counters().instructions, before + 2);
  EXPECT_EQ(t.counters().ballots, 1u);
}

TEST(Team, CounterAggregation) {
  TeamCounters a, b;
  a.instructions = 10;
  a.shfls = 2;
  b.instructions = 5;
  b.lock_spins = 3;
  a += b;
  EXPECT_EQ(a.instructions, 15u);
  EXPECT_EQ(a.shfls, 2u);
  EXPECT_EQ(a.lock_spins, 3u);
}

TEST(Team, BernoulliSeededPerTeam) {
  Team a(32, 1, 99), b(32, 1, 99), c(32, 2, 99);
  int same_ab = 0, same_ac = 0;
  for (int i = 0; i < 64; ++i) {
    const bool ra = a.bernoulli(0.5);
    const bool rb = b.bernoulli(0.5);
    const bool rc = c.bernoulli(0.5);
    same_ab += (ra == rb);
    same_ac += (ra == rc);
  }
  EXPECT_EQ(same_ab, 64);  // same team id + seed => same stream
  EXPECT_LT(same_ac, 64);  // different team id => different stream
}

}  // namespace
}  // namespace gfsl::simt
