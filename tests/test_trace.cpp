// Tests for the per-team execution trace.
#include <gtest/gtest.h>

#include <sstream>

#include "core/gfsl.h"
#include "device/device_memory.h"
#include "simt/trace.h"

namespace gfsl {
namespace {

using simt::TeamTrace;
using simt::TraceEvent;

TEST(Trace, RecordsInOrder) {
  TeamTrace t(8);
  t.record(TraceEvent::kOpBegin, 1);
  t.record(TraceEvent::kChunkRead, 2);
  t.record(TraceEvent::kOpEnd, 3);
  const auto s = t.snapshot();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].event, TraceEvent::kOpBegin);
  EXPECT_EQ(s[1].a, 2u);
  EXPECT_EQ(s[2].seq, 2u);
}

TEST(Trace, RingWrapsKeepingNewest) {
  TeamTrace t(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.record(TraceEvent::kChunkRead, i);
  }
  EXPECT_EQ(t.recorded(), 10u);
  const auto s = t.snapshot();
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s.front().a, 6u);  // oldest retained
  EXPECT_EQ(s.back().a, 9u);   // newest
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_EQ(s[i].seq, s[i - 1].seq + 1);
  }
}

TEST(Trace, DumpIsReadable) {
  TeamTrace t(8);
  t.record(TraceEvent::kLockAcquired, 42, 7);
  std::ostringstream ss;
  t.dump(ss);
  EXPECT_NE(ss.str().find("lock-acquired"), std::string::npos);
  EXPECT_NE(ss.str().find("a=42"), std::string::npos);
}

TEST(Trace, EventNamesAreDistinct) {
  std::set<std::string_view> names;
  for (int e = 0; e <= static_cast<int>(TraceEvent::kOpEnd); ++e) {
    names.insert(trace_event_name(static_cast<TraceEvent>(e)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(TraceEvent::kOpEnd) + 1);
}

TEST(Trace, GfslEmitsStructuralEvents) {
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 12;
  core::Gfsl sl(cfg, &mem);
  simt::Team team(8, 0, 1);
  TeamTrace trace(1u << 14);
  team.set_trace(&trace);

  for (Key k = 1; k <= 50; ++k) sl.insert(team, k, 0);  // forces splits
  for (Key k = 1; k <= 45; ++k) sl.erase(team, k);      // forces merges

  int splits = 0, merges = 0, locks = 0, unlocks = 0, zombies = 0;
  for (const auto& r : trace.snapshot()) {
    switch (r.event) {
      case TraceEvent::kSplit: ++splits; break;
      case TraceEvent::kMerge: ++merges; break;
      case TraceEvent::kLockAcquired: ++locks; break;
      case TraceEvent::kUnlock: ++unlocks; break;
      case TraceEvent::kZombieMarked: ++zombies; break;
      default: break;
    }
  }
  EXPECT_GT(splits, 0);
  EXPECT_GT(merges, 0);
  EXPECT_GT(zombies, 0);
  EXPECT_GT(locks, 0);
  // Lock balance: every CAS-acquired lock plus every chunk born locked by a
  // split's allocation is eventually released or consumed by a zombie mark.
  EXPECT_EQ(locks + splits, unlocks + zombies);
}

TEST(Trace, DisabledTraceCostsNothingAndRecordsNothing) {
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 10;
  core::Gfsl sl(cfg, &mem);
  simt::Team team(8, 0, 1);
  EXPECT_EQ(team.trace(), nullptr);
  sl.insert(team, 1, 1);  // must not crash without a trace attached
  EXPECT_TRUE(sl.contains(team, 1));
}

TEST(Trace, ClearResets) {
  TeamTrace t(4);
  t.record(TraceEvent::kChunkRead);
  t.clear();
  EXPECT_EQ(t.recorded(), 0u);
  EXPECT_TRUE(t.snapshot().empty());
}

}  // namespace
}  // namespace gfsl
