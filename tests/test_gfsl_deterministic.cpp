// Deterministic-interleaving tests: replay seeded schedules through the
// StepScheduler so split/merge/traversal races are exercised reproducibly,
// plus reader failure injection.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/gfsl.h"
#include "device/device_memory.h"
#include "sched/step_scheduler.h"

namespace gfsl::core {
namespace {

using sched::StepScheduler;
using simt::Team;

struct DetRunResult {
  std::set<Key> contents;
  bool valid = false;
  std::string error;
};

// Two teams churn overlapping keys under a seeded deterministic schedule.
DetRunResult run_schedule(std::uint64_t sched_seed) {
  device::DeviceMemory mem;
  StepScheduler sched(StepScheduler::Mode::Deterministic, sched_seed, 2);
  GfslConfig cfg;
  cfg.team_size = 8;  // small chunks: many splits/merges in few ops
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem, &sched);

  std::vector<std::thread> threads;
  std::vector<std::set<Key>> mine(2);
  std::atomic<int> inconsistencies{0};
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Team team(8, t, 5);
      Xoshiro256ss rng(derive_seed(71, static_cast<std::uint64_t>(t)));
      sched.enter(t);
      for (int i = 0; i < 150; ++i) {
        // Per-team key space so per-key semantics are checkable.
        const Key k = static_cast<Key>(1 + t * 1'000 + rng.below(40));
        if (rng.below(2) == 0) {
          if (sl.insert(team, k, 0) != mine[static_cast<std::size_t>(t)].insert(k).second) {
            ++inconsistencies;
          }
        } else {
          if (sl.erase(team, k) !=
              (mine[static_cast<std::size_t>(t)].erase(k) > 0)) {
            ++inconsistencies;
          }
        }
      }
      sched.leave(t);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(inconsistencies.load(), 0);

  DetRunResult r;
  const auto rep = sl.validate(/*strict=*/false);
  r.valid = rep.ok;
  r.error = rep.error;
  for (const auto& [k, v] : sl.collect()) r.contents.insert(k);

  std::set<Key> expected;
  for (const auto& s : mine) expected.insert(s.begin(), s.end());
  EXPECT_EQ(r.contents, expected);
  return r;
}

TEST(GfslDeterministic, SeedSweepKeepsInvariants) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto r = run_schedule(seed);
    EXPECT_TRUE(r.valid) << "seed " << seed << ": " << r.error;
  }
}

TEST(GfslDeterministic, SameSeedSameFinalState) {
  const auto a = run_schedule(424242);
  const auto b = run_schedule(424242);
  EXPECT_EQ(a.contents, b.contents);
  EXPECT_TRUE(a.valid) << a.error;
}

TEST(GfslDeterministic, KilledReaderLeavesStructureIntact) {
  // A lock-free Contains holds no locks; killing it mid-traversal must not
  // perturb the structure or block the writer.
  device::DeviceMemory mem;
  StepScheduler sched(StepScheduler::Mode::Deterministic, 9, 2);
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem, &sched);

  std::atomic<bool> reader_killed{false};
  sched.kill_at(/*id=*/1, /*step=*/200);

  std::thread writer([&] {
    Team team(8, 0, 1);
    sched.enter(0);
    for (Key k = 1; k <= 120; ++k) {
      ASSERT_TRUE(sl.insert(team, k, k));
    }
    sched.leave(0);
  });
  std::thread reader([&] {
    Team team(8, 1, 2);
    sched.enter(1);
    try {
      for (int i = 0; i < 100'000; ++i) {
        sl.contains(team, static_cast<Key>(1 + (i % 200)));
      }
      sched.leave(1);
    } catch (const sched::TeamKilled&) {
      reader_killed = true;  // abandoned mid-operation, locks untouched
    }
  });
  writer.join();
  reader.join();
  EXPECT_TRUE(reader_killed.load());

  const auto rep = sl.validate();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(sl.size(), 120u);
  // A fresh team can still do everything (no lock was leaked).
  Team after(8, 0, 3);
  EXPECT_TRUE(sl.contains(after, 60));
  EXPECT_TRUE(sl.insert(after, 500, 0));
  EXPECT_TRUE(sl.erase(after, 500));
}

TEST(GfslDeterministic, WriterAndReaderInterleaved) {
  // The reader observes a monotonically growing key sequence: once it has
  // seen key k (inserted in ascending order), k must never disappear.
  device::DeviceMemory mem;
  StepScheduler sched(StepScheduler::Mode::Deterministic, 31, 2);
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem, &sched);

  constexpr Key kMax = 100;
  std::atomic<Key> watermark{0};  // highest key surely inserted
  std::atomic<int> violations{0};
  std::atomic<bool> done{false};

  std::thread writer([&] {
    Team team(8, 0, 1);
    sched.enter(0);
    for (Key k = 1; k <= kMax; ++k) {
      ASSERT_TRUE(sl.insert(team, k, 0));
      watermark.store(k, std::memory_order_release);
    }
    done = true;
    sched.leave(0);
  });
  std::thread reader([&] {
    Team team(8, 1, 2);
    sched.enter(1);
    Xoshiro256ss rng(3);
    while (!done.load(std::memory_order_acquire)) {
      const Key w = watermark.load(std::memory_order_acquire);
      if (w == 0) {
        sl.contains(team, 1);  // keep yielding so the writer advances
        continue;
      }
      const Key k = static_cast<Key>(1 + rng.below(w));
      if (!sl.contains(team, k)) ++violations;
    }
    sched.leave(1);
  });
  writer.join();
  reader.join();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_TRUE(sl.validate().ok);
}

}  // namespace
}  // namespace gfsl::core
