// Crash tolerance: lock leases, intent-based roll-forward/roll-back, lock
// stealing, and the crash-point sweep harness.
//
// The scripted tests here are exhaustive in miniature: a single victim team
// runs a fixed op script under the deterministic scheduler, and the test
// re-runs the script killing the victim at *every* global yield step.  After
// each kill a medic team recovers the dead locks; the structure must
// validate, the completed prefix must be intact, and the in-flight op is
// checked as optional (crashed) via the history checker.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "core/gfsl.h"
#include "device/device_memory.h"
#include "harness/crash_sweep.h"
#include "harness/history.h"
#include "obs/metrics.h"
#include "sched/lease.h"
#include "sched/step_scheduler.h"
#include "simt/trace.h"

using namespace gfsl;
using harness::check_history;
using harness::CrashSweepConfig;
using harness::HistoryEvent;
using harness::HistoryLog;

namespace {

// ---------------------------------------------------------------------------
// LeaseTable unit tests.

TEST(LeaseTable, WordEncodesIdAndEpoch) {
  sched::LeaseTable lt;
  const auto w = lt.word(7);
  EXPECT_EQ(sched::LeaseTable::word_team(w), 7);
  EXPECT_EQ(w >> 8, 0u);  // epoch 0 at start
  EXPECT_FALSE(lt.expired(w));
}

TEST(LeaseTable, MarkCrashedExpiresCurrentWord) {
  sched::LeaseTable lt;
  const auto w = lt.word(3);
  lt.mark_crashed(3);
  EXPECT_TRUE(lt.crashed(3));
  EXPECT_TRUE(lt.expired(w));
  lt.mark_crashed(3);  // idempotent
  EXPECT_TRUE(lt.expired(w));
}

TEST(LeaseTable, ReviveBumpsEpochAndExpiresOldGeneration) {
  sched::LeaseTable lt;
  const auto dead = lt.word(5);
  lt.mark_crashed(5);
  lt.revive(5);
  EXPECT_FALSE(lt.crashed(5));
  EXPECT_TRUE(lt.expired(dead));  // stale epoch
  const auto fresh = lt.word(5);
  EXPECT_FALSE(lt.expired(fresh));
  EXPECT_NE(dead, fresh);
}

TEST(LeaseTable, AnonymousWordNeverExpires) {
  sched::LeaseTable lt;
  for (int id = 0; id < sched::LeaseTable::kMaxTeams; ++id) {
    lt.mark_crashed(id);
  }
  EXPECT_FALSE(lt.expired(0));  // legacy anonymous locks stay unstealable
  EXPECT_EQ(sched::LeaseTable::word_team(0), -1);
}

// ---------------------------------------------------------------------------
// History checker: crashed ops are optionally linearizable.

HistoryEvent ev(std::uint64_t inv, std::uint64_t resp, OpKind k, Key key,
                bool result) {
  return HistoryEvent{inv, resp, k, key, result, 0, false};
}

HistoryEvent crashed_ev(std::uint64_t inv, OpKind k, Key key) {
  return HistoryEvent{inv, UINT64_MAX, k, key, false, 0, true};
}

TEST(CrashedHistory, CrashedInsertMayOrMayNotTakeEffect) {
  const std::vector<HistoryEvent> h{crashed_ev(0, OpKind::Insert, 9)};
  EXPECT_TRUE(check_history(h, {}, {9}).ok);  // rolled forward
  EXPECT_TRUE(check_history(h, {}, {}).ok);   // rolled back
}

TEST(CrashedHistory, CrashedDeleteLinearizesAfterLaterContains) {
  // The delete's interval is open-ended: a contains that returns true after
  // the crash is legal (recovery removed the key later), and so is one that
  // returns false (the delete took effect before the crash).
  const std::vector<HistoryEvent> h_true{
      crashed_ev(0, OpKind::Delete, 4), ev(2, 3, OpKind::Contains, 4, true)};
  const std::vector<HistoryEvent> h_false{
      crashed_ev(0, OpKind::Delete, 4), ev(2, 3, OpKind::Contains, 4, false)};
  EXPECT_TRUE(check_history(h_true, {4}, {}).ok);
  EXPECT_TRUE(check_history(h_false, {4}, {}).ok);
}

TEST(CrashedHistory, CrashedOpCannotExcuseRealViolations) {
  // A completed insert(true) with the key missing at the end stays a
  // violation: a crashed *contains* has no effect to hide behind.
  const std::vector<HistoryEvent> h{ev(0, 1, OpKind::Insert, 7, true),
                                    crashed_ev(2, OpKind::Contains, 7)};
  EXPECT_FALSE(check_history(h, {}, {}).ok);
}

// ---------------------------------------------------------------------------
// Scripted single-victim crash sweeps, one per mutation kind.

struct ScriptOutcome {
  bool ok = true;
  std::string error;
  std::set<Key> keys;          // final bottom-level key set
  std::uint64_t steps = 0;     // global yield steps consumed
  int recovered = 0;           // dead locks released by the medic
  std::uint64_t roll_forward = 0;
  std::uint64_t roll_back = 0;
  std::vector<simt::TraceRecord> trace;  // victim's trace
};

ScriptOutcome run_script(int team_size, const std::vector<Op>& ops,
                         std::uint64_t kill_step) {
  ScriptOutcome out;
  device::DeviceMemory mem;
  sched::LeaseTable leases;
  sched::StepScheduler sched(sched::StepScheduler::Mode::Deterministic, 42, 1);
  sched.attach_leases(&leases);
  if (kill_step != UINT64_MAX) sched.kill_at(0, kill_step);

  core::GfslConfig cfg;
  cfg.team_size = team_size;
  cfg.pool_chunks = 1u << 12;
  core::Gfsl sl(cfg, &mem, &sched, &leases);

  HistoryLog log(ops.size() + 1, 1);
  simt::TeamTrace trace(1u << 14);
  std::thread t([&] {
    simt::Team team(team_size, 0, 3);
    team.set_trace(&trace);
    const Op* cur = nullptr;
    std::uint64_t tick = 0;
    sched.enter(0);
    try {
      for (const Op& op : ops) {
        cur = &op;
        tick = log.begin_op();
        bool r = false;
        switch (op.kind) {
          case OpKind::Insert: r = sl.insert(team, op.key, op.value); break;
          case OpKind::Delete: r = sl.erase(team, op.key); break;
          case OpKind::Contains: r = sl.contains(team, op.key); break;
        }
        log.end_op(0, tick, op.kind, op.key, r);
        cur = nullptr;
      }
      sched.leave(0);
    } catch (const sched::TeamKilled&) {
      if (cur != nullptr) log.crash_op(0, tick, cur->kind, cur->key);
    }
  });
  t.join();
  out.steps = sched.global_steps();
  out.trace = trace.snapshot();

  obs::MetricsShard medic_shard;
  simt::Team medic(team_size, 1, 7);
  medic.set_metrics(&medic_shard);
  out.recovered = sl.recover_all_expired(medic);
  out.roll_forward = medic_shard.counter(obs::kRecoveryRollForward);
  out.roll_back = medic_shard.counter(obs::kRecoveryRollBack);

  const auto rep = sl.validate(/*strict=*/false);
  if (!rep.ok) {
    out.ok = false;
    out.error = "structure invalid: " + rep.error;
    return out;
  }
  std::vector<Key> final_keys;
  for (const auto& [k, v] : sl.collect()) {
    final_keys.push_back(k);
    out.keys.insert(k);
  }
  const auto check = check_history(log.merged(), {}, final_keys);
  if (!check.ok) {
    out.ok = false;
    out.error = "history violation: " + check.error;
  }
  return out;
}

Op ins(Key k) { return Op{OpKind::Insert, k, k * 10, 0}; }
Op del(Key k) { return Op{OpKind::Delete, k, 0, 0}; }

bool trace_has(const std::vector<simt::TraceRecord>& tr, simt::TraceEvent e) {
  for (const auto& r : tr) {
    if (r.event == e) return true;
  }
  return false;
}

/// Kill the victim at every yield step of the script; every run must
/// validate and linearize.  Returns the final key sets observed for kills
/// landing inside the *last* `target_ops` operations (the ones under test —
/// earlier kills interrupt setup and legitimately yield smaller sets), so
/// callers can assert both roll directions of the target op occurred.
std::set<std::set<Key>> sweep_script(int team_size, const std::vector<Op>& ops,
                                     std::size_t target_ops = 1) {
  const auto ref = run_script(team_size, ops, UINT64_MAX);
  EXPECT_TRUE(ref.ok) << ref.error;
  EXPECT_GT(ref.steps, 0u);
  const std::vector<Op> prefix(ops.begin(), ops.end() - target_ops);
  const auto pre = run_script(team_size, prefix, UINT64_MAX);
  EXPECT_TRUE(pre.ok) << pre.error;
  std::set<std::set<Key>> outcomes;
  for (std::uint64_t s = 1; s <= ref.steps; ++s) {
    const auto r = run_script(team_size, ops, s);
    EXPECT_TRUE(r.ok) << "kill at step " << s << ": " << r.error;
    if (!r.ok) break;  // first failure is enough to debug
    if (s > pre.steps) outcomes.insert(r.keys);
  }
  return outcomes;
}

TEST(CrashSweepScripted, InsertShiftRollsForwardOrBack) {
  // 10,20,30,40 then insert 25: the landing shifts 30 and 40 right.  A kill
  // anywhere must leave either {10..40} (rolled back: the shift debris is
  // de-duplicated) or {10,20,25,30,40} (rolled forward: 25 landed).
  const std::vector<Op> script{ins(10), ins(20), ins(30), ins(40), ins(25)};
  const auto outcomes = sweep_script(8, script);
  const std::set<Key> without{10, 20, 30, 40};
  std::set<Key> with = without;
  with.insert(25);
  for (const auto& keys : outcomes) {
    EXPECT_TRUE(keys == without || keys == with)
        << "unexpected final key set of size " << keys.size();
  }
  EXPECT_TRUE(outcomes.count(without) == 1 && outcomes.count(with) == 1)
      << "sweep should observe both roll directions";
}

TEST(CrashSweepScripted, EraseShiftResumesIdempotently) {
  // Erase 30 out of five keys: a left-shift with the max untouched.  Killing
  // mid-shift leaves one adjacent duplicate, which recovery either collapses
  // (roll back the half-shift) or re-executes the removal over.
  const std::vector<Op> script{ins(10), ins(20), ins(30), ins(40), ins(50),
                               del(30)};
  const auto outcomes = sweep_script(8, script);
  const std::set<Key> removed{10, 20, 40, 50};
  std::set<Key> kept = removed;
  kept.insert(30);
  for (const auto& keys : outcomes) {
    EXPECT_TRUE(keys == removed || keys == kept)
        << "unexpected final key set of size " << keys.size();
  }
}

TEST(CrashSweepScripted, SplitRecoversAtEveryStep) {
  // Five keys fill a team-8 chunk (six data slots with -inf); the sixth
  // insert forces a split.  The fresh chunk must never leak keys or break
  // the chain, whether the kill lands before or after the publish write.
  const std::vector<Op> script{ins(10), ins(20), ins(30), ins(40), ins(50),
                               ins(35)};
  const auto ref = run_script(8, script, UINT64_MAX);
  ASSERT_TRUE(ref.ok) << ref.error;
  ASSERT_TRUE(trace_has(ref.trace, simt::TraceEvent::kSplit))
      << "script must exercise the split path";
  const auto outcomes = sweep_script(8, script);
  const std::set<Key> base{10, 20, 30, 40, 50};
  for (const auto& keys : outcomes) {
    std::set<Key> sans = keys;
    sans.erase(35);
    EXPECT_EQ(sans, base) << "prefix keys must survive every kill point";
  }
}

TEST(CrashSweepScripted, MergeZombifiesOrRollsForward) {
  // Build two bottom chunks via splits, then delete the first chunk's keys
  // until the merge threshold trips: the last delete copies survivors into
  // the successor and zombifies.  Every kill point must keep the survivors
  // reachable exactly once.
  const std::vector<Op> script{ins(10), ins(20), ins(30), ins(40), ins(50),
                               ins(60), ins(70), ins(80), del(10), del(20),
                               del(30), del(40)};
  const auto ref = run_script(8, script, UINT64_MAX);
  ASSERT_TRUE(ref.ok) << ref.error;
  ASSERT_TRUE(trace_has(ref.trace, simt::TraceEvent::kMerge))
      << "script must exercise the merge path";
  sweep_script(8, script);
}

TEST(CrashSweepScripted, WiderTeamsRecoverToo) {
  // Team size 16: deeper shifts, different split threshold.
  const std::vector<Op> script{ins(5),  ins(15), ins(25), ins(35), ins(45),
                               ins(55), ins(65), ins(75), ins(85), ins(95),
                               ins(105), ins(115), ins(110), del(55)};
  sweep_script(16, script);
}

TEST(CrashSweepScripted, MedicReleasesDeadLocks) {
  // At least one kill point must leave a lock only the medic releases (the
  // single-victim runs have no survivors to steal it first).
  const std::vector<Op> script{ins(10), ins(20), ins(30), ins(40), ins(25)};
  const auto ref = run_script(8, script, UINT64_MAX);
  ASSERT_TRUE(ref.ok) << ref.error;
  int total_recovered = 0;
  std::uint64_t rolls = 0;
  for (std::uint64_t s = 1; s <= ref.steps; ++s) {
    const auto r = run_script(8, script, s);
    ASSERT_TRUE(r.ok) << r.error;
    total_recovered += r.recovered;
    rolls += r.roll_forward + r.roll_back;
  }
  EXPECT_GT(total_recovered, 0);
  EXPECT_GT(rolls, 0u) << "some kill point must land inside an intent span";
}

// ---------------------------------------------------------------------------
// Multi-team bounded sweep (the exhaustive version runs via
// `gfsl_fuzz --crash-sweep`; this keeps ctest fast).

TEST(CrashSweepConcurrent, BoundedSweepWithSurvivors) {
  CrashSweepConfig cfg;
  cfg.workers = 3;
  cfg.team_size = 8;
  cfg.ops = 48;
  cfg.key_range = 24;
  cfg.wl_seed = 11;
  cfg.sched_seed = 12;
  cfg.stride = 5;
  const auto res = run_crash_sweep(cfg);
  EXPECT_TRUE(res.ok) << "kill step " << res.failed_at_step << ": "
                      << res.error;
  EXPECT_GT(res.baseline_steps, 0u);
  EXPECT_GT(res.kills_landed, 0u);
}

TEST(CrashSweepConcurrent, SurvivorsStealViaLeaseProbe) {
  // With survivors present, expired-lease probing (not just the medic)
  // must be doing recovery work: sweep and check the aggregated counters.
  CrashSweepConfig cfg;
  cfg.workers = 3;
  cfg.team_size = 8;
  cfg.ops = 64;
  cfg.key_range = 16;  // tight range: high contention, frequent conflicts
  cfg.wl_seed = 21;
  cfg.sched_seed = 22;
  cfg.stride = 3;
  obs::MetricsRegistry reg(cfg.workers + 1);
  const auto res = run_crash_sweep(cfg, &reg);
  ASSERT_TRUE(res.ok) << "kill step " << res.failed_at_step << ": "
                      << res.error;
  const auto merged = reg.merged();
  EXPECT_GT(merged.counter(obs::kLeaseExpiries) +
                merged.counter(obs::kLockSteals),
            0u)
      << "survivors never observed an expired lease across the sweep";
}

// ---------------------------------------------------------------------------
// Batched dispatch sweep (DESIGN.md §10): kills land inside shard execution —
// mid-shard with a warm descent cursor, between a shard's epoch pin and its
// refresh, or while draining a stolen shard.  The victim's partially-executed
// shard stays partial (unexecuted ops were never logged); survivors keep
// pulling shards from the queue and must still finish, validate, and leave a
// per-key-linearizable history.

TEST(CrashSweepBatched, BoundedSweepInsideShardExecution) {
  CrashSweepConfig cfg;
  cfg.workers = 3;
  cfg.team_size = 8;
  cfg.ops = 48;
  cfg.key_range = 24;
  cfg.wl_seed = 31;
  cfg.sched_seed = 32;
  cfg.stride = 5;
  cfg.batched = true;
  cfg.batch_shard_ops = 6;  // many small shards: steals happen mid-sweep
  const auto res = run_crash_sweep(cfg);
  EXPECT_TRUE(res.ok) << "kill step " << res.failed_at_step << ": "
                      << res.error;
  EXPECT_GT(res.baseline_steps, 0u);
  EXPECT_GT(res.kills_landed, 0u);
}

TEST(CrashSweepBatched, BatchedSweepWithEpochPins) {
  // With an EpochManager attached the victim can die holding its per-shard
  // pin; the medic's force-quiesce must unwedge the epoch so validation's
  // limbo/free classification still balances.
  CrashSweepConfig cfg;
  cfg.workers = 3;
  cfg.team_size = 8;
  cfg.ops = 48;
  cfg.key_range = 16;  // tight range: constant merge/split churn
  cfg.wl_seed = 41;
  cfg.sched_seed = 42;
  cfg.stride = 7;
  cfg.batched = true;
  cfg.batch_shard_ops = 6;
  cfg.with_epochs = true;
  const auto res = run_crash_sweep(cfg);
  EXPECT_TRUE(res.ok) << "kill step " << res.failed_at_step << ": "
                      << res.error;
  EXPECT_GT(res.kills_landed, 0u);
}

// ---------------------------------------------------------------------------
// Snapshot-holding sweeps (DESIGN.md §13): a snapshot of the bulk-loaded
// prefill is held across the whole run, so every kill — and whichever way
// recovery rolls the victim's half-done mutation — happens *under* it.  The
// post-run scan_at over that snapshot must return exactly the prefill:
// snapshot isolation is not allowed to depend on the crash-repair path.

TEST(CrashSweepSnapshots, HeldSnapshotSurvivesEveryKill) {
  CrashSweepConfig cfg;
  cfg.workers = 3;
  cfg.team_size = 8;
  cfg.ops = 48;
  cfg.key_range = 24;
  cfg.wl_seed = 51;
  cfg.sched_seed = 52;
  cfg.stride = 5;
  cfg.with_snapshots = true;
  cfg.prefill = 10;
  const auto res = run_crash_sweep(cfg);
  EXPECT_TRUE(res.ok) << "kill step " << res.failed_at_step << ": "
                      << res.error;
  EXPECT_GT(res.kills_landed, 0u);
  EXPECT_GT(res.snapshot_checks, 0u)
      << "sweep never actually verified the held snapshot";
}

TEST(CrashSweepSnapshots, HeldSnapshotSurvivesBatchedKillsWithEpochs) {
  // The hardest combination: batched dispatch (kills land inside shard
  // execution) plus an EpochManager (the medic force-quiesces the victim's
  // pin and reclaim/prune can run), all under a held snapshot.  Record
  // pruning through the watermark must still respect the held revision.
  CrashSweepConfig cfg;
  cfg.workers = 3;
  cfg.team_size = 8;
  cfg.ops = 48;
  cfg.key_range = 16;  // tight range: constant merge/split churn over prefill
  cfg.wl_seed = 61;
  cfg.sched_seed = 62;
  cfg.stride = 7;
  cfg.batched = true;
  cfg.batch_shard_ops = 6;
  cfg.with_epochs = true;
  cfg.with_snapshots = true;
  cfg.prefill = 7;
  const auto res = run_crash_sweep(cfg);
  EXPECT_TRUE(res.ok) << "kill step " << res.failed_at_step << ": "
                      << res.error;
  EXPECT_GT(res.kills_landed, 0u);
  EXPECT_GT(res.snapshot_checks, 0u)
      << "sweep never actually verified the held snapshot";
}

// ---------------------------------------------------------------------------
// Foresight sweeps (DESIGN.md §14): the sweep attaches a ForesightIndex with
// stride 1 / threshold 1, so hints are consulted on essentially every op and
// kills land between a hint's publication and its consultation, inside the
// rebuild walk itself, and between a mark_dirty site and the republish it
// schedules.  Correctness must never depend on hint freshness: stale hints
// fall back, an abandoned rebuild leaves the table unpublished, and the
// validate + per-key linearizability checks run unchanged.

TEST(CrashSweepForesight, BoundedSweepWithHintedDescents) {
  CrashSweepConfig cfg;
  cfg.workers = 3;
  cfg.team_size = 8;
  cfg.ops = 48;
  cfg.key_range = 24;
  cfg.wl_seed = 71;
  cfg.sched_seed = 72;
  cfg.stride = 5;
  cfg.with_foresight = true;
  const auto res = run_crash_sweep(cfg);
  EXPECT_TRUE(res.ok) << "kill step " << res.failed_at_step << ": "
                      << res.error;
  EXPECT_GT(res.baseline_steps, 0u);
  EXPECT_GT(res.kills_landed, 0u);
}

TEST(CrashSweepForesight, HintedSweepWithEpochReclaim) {
  // Epoch reclamation recycles merged-away chunks under the sweep, so
  // published hints go stale through real generation bumps (not just
  // zombies) while victims die at every step — including inside the rebuild
  // walk, which must release its single-writer claim on unwind.
  CrashSweepConfig cfg;
  cfg.workers = 3;
  cfg.team_size = 8;
  cfg.ops = 48;
  cfg.key_range = 16;  // tight range: constant merge/split churn
  cfg.wl_seed = 81;
  cfg.sched_seed = 82;
  cfg.stride = 7;
  cfg.with_epochs = true;
  cfg.with_foresight = true;
  const auto res = run_crash_sweep(cfg);
  EXPECT_TRUE(res.ok) << "kill step " << res.failed_at_step << ": "
                      << res.error;
  EXPECT_GT(res.kills_landed, 0u);
}

TEST(CrashSweepForesight, HintedBatchedSweepWithEpochs) {
  // Batched dispatch consults hints on every cold shard descent; combine
  // with epochs so kills land mid-shard while reclaim churns the very
  // chunks the cursor and the hint table both name.
  CrashSweepConfig cfg;
  cfg.workers = 3;
  cfg.team_size = 8;
  cfg.ops = 48;
  cfg.key_range = 16;
  cfg.wl_seed = 91;
  cfg.sched_seed = 92;
  cfg.stride = 7;
  cfg.batched = true;
  cfg.batch_shard_ops = 6;
  cfg.with_epochs = true;
  cfg.with_foresight = true;
  const auto res = run_crash_sweep(cfg);
  EXPECT_TRUE(res.ok) << "kill step " << res.failed_at_step << ": "
                      << res.error;
  EXPECT_GT(res.kills_landed, 0u);
}

}  // namespace
