// Property-based / parameterized tests: structural invariants must hold
// across chunk sizes, p_chunk values and RNG seeds, after arbitrary
// operation sequences.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <tuple>

#include "common/random.h"
#include "core/gfsl.h"
#include "device/device_memory.h"

namespace gfsl::core {
namespace {

using simt::Team;

// (team_size, p_chunk, seed)
using Params = std::tuple<int, double, std::uint64_t>;

class GfslProperty : public ::testing::TestWithParam<Params> {
 protected:
  void SetUp() override {
    const auto [ts, pc, seed] = GetParam();
    team_size_ = ts;
    seed_ = seed;
    GfslConfig cfg;
    cfg.team_size = ts;
    cfg.pool_chunks = 1u << 15;
    cfg.p_chunk = pc;
    sl_ = std::make_unique<Gfsl>(cfg, &mem_);
    team_ = std::make_unique<Team>(ts, 0, seed);
  }

  device::DeviceMemory mem_;
  std::unique_ptr<Gfsl> sl_;
  std::unique_ptr<Team> team_;
  int team_size_ = 0;
  std::uint64_t seed_ = 0;
};

TEST_P(GfslProperty, InvariantsUnderRandomHistory) {
  std::set<Key> ref;
  Xoshiro256ss rng(seed_);
  constexpr int kSteps = 6'000;
  for (int i = 0; i < kSteps; ++i) {
    const Key k = static_cast<Key>(1 + rng.below(700));
    switch (rng.below(3)) {
      case 0:
        ASSERT_EQ(sl_->insert(*team_, k, k ^ 0x5A5Au), ref.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(sl_->erase(*team_, k), ref.erase(k) > 0);
        break;
      default:
        ASSERT_EQ(sl_->contains(*team_, k), ref.count(k) > 0);
        break;
    }
    if (i % 1'500 == 1'499) {
      const auto rep = sl_->validate();
      ASSERT_TRUE(rep.ok) << "step " << i << ": " << rep.error;
      ASSERT_EQ(rep.bottom_keys, ref.size());
    }
  }
  // Final: exact key-set equality.
  const auto got = sl_->collect();
  ASSERT_EQ(got.size(), ref.size());
  auto it = ref.begin();
  for (std::size_t i = 0; i < got.size(); ++i, ++it) {
    ASSERT_EQ(got[i].first, *it);
  }
}

TEST_P(GfslProperty, InsertAllDeleteAllRepeatedly) {
  for (int round = 0; round < 3; ++round) {
    for (Key k = 1; k <= 200; ++k) {
      ASSERT_TRUE(sl_->insert(*team_, k, round));
    }
    ASSERT_EQ(sl_->size(), 200u);
    for (Key k = 1; k <= 200; ++k) {
      ASSERT_TRUE(sl_->erase(*team_, k));
    }
    ASSERT_EQ(sl_->size(), 0u);
    const auto rep = sl_->validate();
    ASSERT_TRUE(rep.ok) << "round " << round << ": " << rep.error;
  }
}

TEST_P(GfslProperty, ContainsNeverLiesAboutAbsentNeighbors) {
  // Insert only even keys; every odd probe must miss, every even must hit.
  for (Key k = 2; k <= 600; k += 2) ASSERT_TRUE(sl_->insert(*team_, k, 0));
  for (Key k = 1; k <= 601; k += 2) {
    ASSERT_FALSE(sl_->contains(*team_, k)) << "odd key " << k;
  }
  for (Key k = 2; k <= 600; k += 2) {
    ASSERT_TRUE(sl_->contains(*team_, k)) << "even key " << k;
  }
}

TEST_P(GfslProperty, UpperLevelsAreSubsetsAfterSequentialHistory) {
  Xoshiro256ss rng(seed_ ^ 0xFEED);
  std::set<Key> ref;
  for (int i = 0; i < 2'000; ++i) {
    const Key k = static_cast<Key>(1 + rng.below(400));
    if (rng.below(3) != 0) {
      if (sl_->insert(*team_, k, 0)) ref.insert(k);
    } else {
      if (sl_->erase(*team_, k)) ref.erase(k);
    }
  }
  // validate(strict=true) checks level i+1 ⊆ level i.
  const auto rep = sl_->validate(/*strict=*/true);
  ASSERT_TRUE(rep.ok) << rep.error;
  ASSERT_EQ(rep.bottom_keys, ref.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GfslProperty,
    ::testing::Values(Params{8, 1.0, 11}, Params{8, 0.5, 12},
                      Params{16, 1.0, 13}, Params{16, 0.9, 14},
                      Params{32, 1.0, 15}, Params{32, 0.5, 16},
                      Params{32, 0.0, 17}, Params{16, 0.0, 18}),
    [](const ::testing::TestParamInfo<Params>& info) {
      return "ts" + std::to_string(std::get<0>(info.param)) + "_pc" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100)) +
             "_s" + std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace gfsl::core
