// Integration tests: the concurrent runner end-to-end on both structures.
#include <gtest/gtest.h>

#include <memory>

#include "harness/runner.h"
#include "harness/workload.h"

namespace gfsl::harness {
namespace {

WorkloadConfig small_workload(Mix mix, std::uint64_t range,
                              std::uint64_t ops) {
  WorkloadConfig wl;
  wl.mix = mix;
  wl.key_range = range;
  wl.num_ops = ops;
  wl.prefill = default_prefill(mix);
  wl.seed = 7;
  return wl;
}

TEST(Runner, GfslMixedRunCollectsEvents) {
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = 32;
  cfg.pool_chunks = 1u << 14;
  core::Gfsl sl(cfg, &mem);

  const auto wl = small_workload(kMix_10_10_80, 2'000, 5'000);
  sl.bulk_load(generate_prefill(wl));
  const auto ops = generate_ops(wl);

  RunConfig rc;
  rc.num_workers = 4;
  const RunResult r = run_gfsl(sl, ops, rc, mem);

  EXPECT_EQ(r.kernel.ops, ops.size());
  EXPECT_FALSE(r.out_of_memory);
  EXPECT_GT(r.kernel.warp_steps, ops.size());          // many instrs per op
  EXPECT_GT(r.kernel.mem.warp_reads, ops.size());      // >1 chunk read per op
  EXPECT_EQ(r.kernel.mem.lane_reads, 0u);              // always coalesced
  EXPECT_GT(r.kernel.mem_epochs, 0u);
  EXPECT_GT(r.ops_true, ops.size() / 4);               // most contains hit
  EXPECT_TRUE(sl.validate(/*strict=*/false).ok);
}

TEST(Runner, McMixedRunCollectsEvents) {
  device::DeviceMemory mem;
  baseline::McSkiplist::Config cfg;
  cfg.pool_slots = 1u << 20;
  baseline::McSkiplist sl(cfg, &mem);

  const auto wl = small_workload(kMix_10_10_80, 2'000, 5'000);
  sl.bulk_load(generate_prefill(wl), 3);
  const auto ops = generate_ops(wl);

  RunConfig rc;
  rc.num_workers = 4;
  const RunResult r = run_mc(sl, ops, rc, mem);

  EXPECT_EQ(r.kernel.ops, ops.size());
  EXPECT_GT(r.kernel.mem.lane_reads, ops.size() * 5);  // uncoalesced hops
  EXPECT_EQ(r.kernel.mem.warp_reads, 0u);
  EXPECT_GT(r.kernel.mem_epochs, 0u);
  // Divergence folding: epochs are far fewer than total hops but at least
  // hops / 32.
  EXPECT_LT(r.kernel.mem_epochs, r.kernel.mem.lane_reads);
  std::string err;
  EXPECT_TRUE(sl.validate(&err)) << err;
}

TEST(Runner, GfslReadsPerOpScaleWithStructureHeight) {
  // The coalescing advantage: per-op warp reads ~ height + 1..2 (§5.2).
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = 32;
  cfg.pool_chunks = 1u << 15;
  core::Gfsl sl(cfg, &mem);

  const auto wl = small_workload(kContainsOnly, 20'000, 4'000);
  sl.bulk_load(generate_prefill(wl));
  const auto ops = generate_ops(wl);
  RunConfig rc;
  rc.num_workers = 2;
  const RunResult r = run_gfsl(sl, ops, rc, mem);
  const double reads_per_op = static_cast<double>(r.kernel.mem.warp_reads) /
                              static_cast<double>(ops.size());
  const double h = sl.current_height();
  // Down steps read one chunk per level, the bottom walk re-reads the
  // enclosing chunk and takes 1-2 lateral steps (§5.2).
  EXPECT_GE(reads_per_op, h);
  EXPECT_LE(reads_per_op, h + 5.0);
}

TEST(Runner, OutOfMemorySurfacesInResult) {
  device::DeviceMemory mem;
  baseline::McSkiplist::Config cfg;
  cfg.pool_slots = 2'048;  // tiny pool
  baseline::McSkiplist sl(cfg, &mem);

  const auto wl = small_workload(kInsertOnly, 100'000, 5'000);
  const auto ops = generate_ops(wl);
  RunConfig rc;
  rc.num_workers = 2;
  const RunResult r = run_mc(sl, ops, rc, mem);
  EXPECT_TRUE(r.out_of_memory);
}

TEST(Runner, SingleWorkerMatchesReferenceCounts) {
  // With one worker the run is sequential; ops_true is exactly predictable
  // from a reference simulation.
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = 16;
  cfg.pool_chunks = 1u << 14;
  core::Gfsl sl(cfg, &mem);

  const auto wl = small_workload(kMix_20_20_60, 500, 3'000);
  sl.bulk_load(generate_prefill(wl));
  const auto ops = generate_ops(wl);

  std::set<Key> ref;
  for (const auto& [k, v] : generate_prefill(wl)) ref.insert(k);
  std::uint64_t expected_true = 0;
  for (const auto& op : ops) {
    switch (op.kind) {
      case OpKind::Insert:
        if (ref.insert(op.key).second) ++expected_true;
        break;
      case OpKind::Delete:
        if (ref.erase(op.key) > 0) ++expected_true;
        break;
      case OpKind::Contains:
        if (ref.count(op.key) > 0) ++expected_true;
        break;
    }
  }

  RunConfig rc;
  rc.num_workers = 1;
  const RunResult r = run_gfsl(sl, ops, rc, mem);
  EXPECT_EQ(r.ops_true, expected_true);
  EXPECT_EQ(sl.size(), ref.size());
}

TEST(Runner, ResultArrayMatchesReferencePerOp) {
  // The kernel's output buffer (§5.1): with one worker, every op's recorded
  // result must match a sequential reference exactly, element by element.
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = 16;
  cfg.pool_chunks = 1u << 14;
  core::Gfsl sl(cfg, &mem);

  const auto wl = small_workload(kMix_20_20_60, 300, 2'000);
  sl.bulk_load(generate_prefill(wl));
  const auto ops = generate_ops(wl);

  std::set<Key> ref;
  for (const auto& [k, v] : generate_prefill(wl)) ref.insert(k);

  std::vector<std::uint8_t> results;
  RunConfig rc;
  rc.num_workers = 1;
  rc.results = &results;
  (void)run_gfsl(sl, ops, rc, mem);
  ASSERT_EQ(results.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    bool expect = false;
    switch (ops[i].kind) {
      case OpKind::Insert: expect = ref.insert(ops[i].key).second; break;
      case OpKind::Delete: expect = ref.erase(ops[i].key) > 0; break;
      case OpKind::Contains: expect = ref.count(ops[i].key) > 0; break;
    }
    ASSERT_EQ(results[i] != 0, expect) << "op " << i;
  }
}

TEST(Runner, ResultArrayWorksForMcAndPaired) {
  const auto wl = small_workload(kMix_10_10_80, 500, 1'000);
  const auto ops = generate_ops(wl);
  std::vector<std::uint8_t> results;

  {
    device::DeviceMemory mem;
    baseline::McSkiplist::Config cfg;
    cfg.pool_slots = 1u << 18;
    baseline::McSkiplist sl(cfg, &mem);
    sl.bulk_load(generate_prefill(wl), 1);
    RunConfig rc;
    rc.num_workers = 2;
    rc.results = &results;
    const auto r = run_mc(sl, ops, rc, mem);
    std::uint64_t trues = 0;
    for (const auto b : results) trues += b;
    EXPECT_EQ(trues, r.ops_true);
  }
  {
    device::DeviceMemory mem;
    core::GfslConfig cfg;
    cfg.team_size = 16;
    cfg.pool_chunks = 1u << 13;
    core::Gfsl sl(cfg, &mem);
    sl.bulk_load(generate_prefill(wl));
    RunConfig rc;
    rc.num_workers = 2;
    rc.results = &results;
    const auto r = run_gfsl_paired(sl, ops, rc, mem);
    std::uint64_t trues = 0;
    for (const auto b : results) trues += b;
    EXPECT_EQ(trues, r.ops_true);
  }
}

}  // namespace
}  // namespace gfsl::harness
