// Unit tests: deterministic step scheduler — reproducibility, fairness,
// failure injection.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sched/step_scheduler.h"

namespace gfsl::sched {
namespace {

// Run `n` workers that each append their id to a shared trace at every step.
std::vector<int> run_trace(std::uint64_t seed, int n, int steps_each) {
  StepScheduler sched(StepScheduler::Mode::Deterministic, seed, n);
  std::vector<int> trace;
  std::mutex trace_mu;
  std::vector<std::thread> threads;
  for (int id = 0; id < n; ++id) {
    threads.emplace_back([&, id] {
      sched.enter(id);
      for (int s = 0; s < steps_each; ++s) {
        {
          std::lock_guard<std::mutex> lk(trace_mu);
          trace.push_back(id);
        }
        sched.yield(id);
      }
      sched.leave(id);
    });
  }
  for (auto& t : threads) t.join();
  return trace;
}

TEST(StepScheduler, FreeModeIsNoOp) {
  StepScheduler s(StepScheduler::Mode::Free);
  s.enter(0);
  s.yield(0);
  s.leave(0);  // must not block or throw
  SUCCEED();
}

TEST(StepScheduler, SameSeedSameInterleaving) {
  const auto a = run_trace(123, 4, 50);
  const auto b = run_trace(123, 4, 50);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 200u);
}

TEST(StepScheduler, DifferentSeedsDiffer) {
  const auto a = run_trace(123, 4, 50);
  const auto b = run_trace(321, 4, 50);
  EXPECT_NE(a, b);
}

TEST(StepScheduler, AllParticipantsMakeProgress) {
  const auto trace = run_trace(7, 3, 100);
  int counts[3] = {};
  for (const int id : trace) ++counts[id];
  for (int i = 0; i < 3; ++i) EXPECT_EQ(counts[i], 100);
}

TEST(StepScheduler, InterleavingIsNotRoundRobin) {
  const auto trace = run_trace(99, 2, 200);
  // With random scheduling, some participant must run twice in a row
  // somewhere in 400 steps.
  bool repeat = false;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i] == trace[i - 1]) {
      repeat = true;
      break;
    }
  }
  EXPECT_TRUE(repeat);
}

TEST(StepScheduler, KillThrowsAtYield) {
  StepScheduler sched(StepScheduler::Mode::Deterministic, 1, 2);
  sched.kill_at(0, 1);  // kill participant 0 at its first yield
  std::atomic<bool> killed{false};
  std::atomic<int> survivor_steps{0};
  std::thread t0([&] {
    sched.enter(0);
    try {
      for (int i = 0; i < 100; ++i) sched.yield(0);
    } catch (const TeamKilled& k) {
      EXPECT_EQ(k.team_id, 0);
      killed = true;
      return;  // killed teams must not call leave()
    }
  });
  std::thread t1([&] {
    sched.enter(1);
    for (int i = 0; i < 100; ++i) {
      sched.yield(1);
      ++survivor_steps;
    }
    sched.leave(1);
  });
  t0.join();
  t1.join();
  EXPECT_TRUE(killed);
  EXPECT_EQ(survivor_steps, 100);  // the survivor still finishes
}

TEST(StepScheduler, KillMarksLeaseCrashedAtKillStep) {
  LeaseTable leases;
  StepScheduler sched(StepScheduler::Mode::Deterministic, 1, 1);
  sched.attach_leases(&leases);
  const auto dead_word = leases.word(0);
  sched.kill_at(0, 3);
  std::thread t([&] {
    sched.enter(0);
    try {
      for (int i = 0; i < 100; ++i) {
        sched.yield(0);
        // The lease must not expire before the kill lands.
        EXPECT_FALSE(leases.crashed(0));
      }
      ADD_FAILURE() << "kill never landed";
    } catch (const TeamKilled&) {
    }
  });
  t.join();
  EXPECT_TRUE(leases.crashed(0));
  EXPECT_TRUE(leases.expired(dead_word));
  EXPECT_EQ(sched.global_steps(), 3u);
}

TEST(StepScheduler, KillAllAtActsAsWatchdog) {
  StepScheduler sched(StepScheduler::Mode::Deterministic, 5, 2);
  sched.kill_all_at(20);
  std::atomic<int> killed{0};
  std::vector<std::thread> threads;
  for (int id = 0; id < 2; ++id) {
    threads.emplace_back([&, id] {
      sched.enter(id);
      try {
        for (int i = 0; i < 1000; ++i) sched.yield(id);
        sched.leave(id);
      } catch (const TeamKilled&) {
        ++killed;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(killed, 2);
}

TEST(StepScheduler, KillAllAtKeepsEarlierKills) {
  StepScheduler sched(StepScheduler::Mode::Deterministic, 1, 1);
  sched.kill_at(0, 2);
  sched.kill_all_at(50);  // must not postpone the armed kill
  std::thread t([&] {
    sched.enter(0);
    try {
      for (int i = 0; i < 100; ++i) sched.yield(0);
    } catch (const TeamKilled&) {
    }
  });
  t.join();
  EXPECT_EQ(sched.global_steps(), 2u);
}

TEST(StepScheduler, OutOfRangeIdsRunFree) {
  // Medic teams use an id beyond the participant set; every scheduler call
  // must be a no-op for them (no blocking, no kill).
  StepScheduler sched(StepScheduler::Mode::Deterministic, 1, 2);
  sched.kill_all_at(0);
  sched.enter(5);
  sched.yield(5);
  sched.yield(-1);
  sched.leave(5);
  sched.kill_at(5, 0);  // ignored, not out-of-bounds
  SUCCEED();
}

TEST(StepScheduler, RejectsZeroParticipants) {
  EXPECT_THROW(StepScheduler(StepScheduler::Mode::Deterministic, 1, 0),
               std::invalid_argument);
}

TEST(StepScheduler, GlobalStepsAdvance) {
  StepScheduler sched(StepScheduler::Mode::Deterministic, 1, 1);
  std::thread t([&] {
    sched.enter(0);
    for (int i = 0; i < 10; ++i) sched.yield(0);
    sched.leave(0);
  });
  t.join();
  EXPECT_EQ(sched.global_steps(), 10u);
}

}  // namespace
}  // namespace gfsl::sched
