// Unit tests: workload generation per §5.1.
#include <gtest/gtest.h>

#include <set>

#include "harness/workload.h"

namespace gfsl::harness {
namespace {

TEST(Workload, MixNames) {
  EXPECT_EQ(kMix_10_10_80.name(), "[10,10,80]");
  EXPECT_EQ(kContainsOnly.name(), "[0,0,100]");
}

TEST(Workload, OpMixProportions) {
  WorkloadConfig cfg;
  cfg.mix = kMix_20_20_60;
  cfg.key_range = 100'000;
  cfg.num_ops = 100'000;
  const auto ops = generate_ops(cfg);
  ASSERT_EQ(ops.size(), cfg.num_ops);
  std::size_t ins = 0, del = 0, con = 0;
  for (const auto& op : ops) {
    switch (op.kind) {
      case OpKind::Insert: ++ins; break;
      case OpKind::Delete: ++del; break;
      case OpKind::Contains: ++con; break;
    }
    EXPECT_GE(op.key, 1u);
    EXPECT_LE(op.key, cfg.key_range);
    EXPECT_EQ(op.value, 0u);  // "Insert operations use NULL as the value"
    EXPECT_GE(op.mc_height, 1);
  }
  const double n = static_cast<double>(cfg.num_ops);
  EXPECT_NEAR(ins / n, 0.20, 0.01);
  EXPECT_NEAR(del / n, 0.20, 0.01);
  EXPECT_NEAR(con / n, 0.60, 0.01);
}

TEST(Workload, Deterministic) {
  WorkloadConfig cfg;
  cfg.seed = 77;
  cfg.num_ops = 1'000;
  const auto a = generate_ops(cfg);
  const auto b = generate_ops(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].mc_height, b[i].mc_height);
  }
  cfg.seed = 78;
  const auto c = generate_ops(cfg);
  bool differ = false;
  for (std::size_t i = 0; i < a.size() && !differ; ++i) {
    differ = a[i].key != c[i].key;
  }
  EXPECT_TRUE(differ);
}

TEST(Workload, RejectsBadMix) {
  WorkloadConfig cfg;
  cfg.mix = Mix{50, 50, 50};
  EXPECT_THROW(generate_ops(cfg), std::invalid_argument);
  cfg.mix = kContainsOnly;
  cfg.key_range = 0;
  EXPECT_THROW(generate_ops(cfg), std::invalid_argument);
}

TEST(Workload, HalfRangePrefillIsExactlyHalfAndDistinct) {
  WorkloadConfig cfg;
  cfg.key_range = 10'000;
  cfg.prefill = Prefill::HalfRange;
  const auto pre = generate_prefill(cfg);
  EXPECT_EQ(pre.size(), 5'000u);  // "exactly half the size of the key range"
  std::set<Key> distinct;
  for (std::size_t i = 0; i < pre.size(); ++i) {
    EXPECT_TRUE(distinct.insert(pre[i].first).second);
    EXPECT_GE(pre[i].first, 1u);
    EXPECT_LE(pre[i].first, cfg.key_range);
    if (i > 0) {
      EXPECT_LT(pre[i - 1].first, pre[i].first);  // sorted
    }
  }
}

TEST(Workload, HalfRangePrefillIsRandomlySelected) {
  WorkloadConfig a, b;
  a.key_range = b.key_range = 10'000;
  a.prefill = b.prefill = Prefill::HalfRange;
  a.seed = 1;
  b.seed = 2;
  const auto pa = generate_prefill(a);
  const auto pb = generate_prefill(b);
  EXPECT_NE(pa, pb);
}

TEST(Workload, FullAndEmptyPrefill) {
  WorkloadConfig cfg;
  cfg.key_range = 1'000;
  cfg.prefill = Prefill::FullRange;
  const auto full = generate_prefill(cfg);
  ASSERT_EQ(full.size(), 1'000u);
  EXPECT_EQ(full.front().first, 1u);
  EXPECT_EQ(full.back().first, 1'000u);
  cfg.prefill = Prefill::Empty;
  EXPECT_TRUE(generate_prefill(cfg).empty());
}

TEST(Workload, DefaultPrefillPolicy) {
  EXPECT_EQ(default_prefill(kInsertOnly), Prefill::Empty);
  EXPECT_EQ(default_prefill(kDeleteOnly), Prefill::FullRange);
  EXPECT_EQ(default_prefill(kContainsOnly), Prefill::FullRange);
  EXPECT_EQ(default_prefill(kMix_10_10_80), Prefill::HalfRange);
}

TEST(Workload, McHeightsFollowGeometric) {
  WorkloadConfig cfg;
  cfg.num_ops = 100'000;
  cfg.p_key = 0.5;
  const auto ops = generate_ops(cfg);
  std::size_t h1 = 0;
  int hmax = 0;
  for (const auto& op : ops) {
    if (op.mc_height == 1) ++h1;
    hmax = std::max(hmax, static_cast<int>(op.mc_height));
  }
  EXPECT_NEAR(static_cast<double>(h1) / static_cast<double>(ops.size()), 0.5,
              0.01);
  EXPECT_LE(hmax, cfg.mc_max_height);
  EXPECT_GT(hmax, 8);  // 100K draws virtually surely exceed height 8
}

}  // namespace
}  // namespace gfsl::harness
