// Tests for the sub-warp-teams extension: round-robin warp scheduling,
// paired-team correctness (no deadlock, exact contents), and the cost-model
// overlap factor.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/random.h"
#include "harness/experiment.h"
#include "harness/runner.h"
#include "harness/workload.h"
#include "sched/step_scheduler.h"

namespace gfsl {
namespace {

using sched::StepScheduler;

TEST(RoundRobinScheduler, StrictAlternation) {
  StepScheduler sched(StepScheduler::Mode::RoundRobin, 1, 2);
  std::vector<int> trace;
  std::mutex mu;
  std::vector<std::thread> threads;
  for (int id = 0; id < 2; ++id) {
    threads.emplace_back([&, id] {
      sched.enter(id);
      for (int s = 0; s < 20; ++s) {
        {
          std::lock_guard<std::mutex> lk(mu);
          trace.push_back(id);
        }
        sched.yield(id);
      }
      sched.leave(id);
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(trace.size(), 40u);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_NE(trace[i], trace[i - 1]) << "at step " << i;
  }
}

TEST(RoundRobinScheduler, SurvivorRunsAloneAfterPeerLeaves) {
  StepScheduler sched(StepScheduler::Mode::RoundRobin, 1, 2);
  std::atomic<int> done{0};
  std::thread a([&] {
    sched.enter(0);
    for (int i = 0; i < 3; ++i) sched.yield(0);
    sched.leave(0);
    ++done;
  });
  std::thread b([&] {
    sched.enter(1);
    for (int i = 0; i < 500; ++i) sched.yield(1);
    sched.leave(1);
    ++done;
  });
  a.join();
  b.join();
  EXPECT_EQ(done.load(), 2);
}

TEST(DualTeam, PairedRunMatchesReference) {
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = 16;
  cfg.pool_chunks = 1u << 14;
  core::Gfsl sl(cfg, &mem);

  harness::WorkloadConfig wl;
  wl.mix = harness::kMix_20_20_60;
  wl.key_range = 800;
  wl.num_ops = 4'000;
  wl.prefill = harness::Prefill::HalfRange;
  wl.seed = 9;
  sl.bulk_load(harness::generate_prefill(wl));
  const auto ops = harness::generate_ops(wl);

  harness::RunConfig rc;
  rc.num_workers = 4;  // two warps of two teams each
  const auto r = harness::run_gfsl_paired(sl, ops, rc, mem);
  EXPECT_FALSE(r.out_of_memory);
  EXPECT_EQ(r.kernel.ops, ops.size());
  EXPECT_TRUE(sl.validate(/*strict=*/false).ok);

  // Accounting: net inserts must equal the size change.
  std::set<Key> ref;
  for (const auto& [k, v] : harness::generate_prefill(wl)) ref.insert(k);
  // Per-key results are order-dependent under concurrency; check the
  // invariant that every key present is within range and the structure
  // contents are a subset of all touched-or-prefilled keys.
  for (const auto& [k, v] : sl.collect()) {
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, wl.key_range);
  }
}

TEST(DualTeam, PairSharingHotChunkDoesNotDeadlock) {
  // The thesis's feared scenario: both teams of one warp contend for the
  // same chunk lock.  Round-robin yields make the spinner let the holder
  // advance, so this must terminate.
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = 16;
  cfg.pool_chunks = 1u << 12;
  core::Gfsl sl(cfg, &mem);

  std::vector<Op> ops;
  Xoshiro256ss rng(4);
  for (int i = 0; i < 2'000; ++i) {
    Op op{};
    op.kind = (i % 2 == 0) ? OpKind::Insert : OpKind::Delete;
    op.key = static_cast<Key>(1 + rng.below(8));  // 8 hot keys, one chunk
    ops.push_back(op);
  }
  harness::RunConfig rc;
  rc.num_workers = 2;  // one warp, both teams on the same chunk
  const auto r = harness::run_gfsl_paired(sl, ops, rc, mem);
  EXPECT_EQ(r.kernel.ops, ops.size());
  EXPECT_TRUE(sl.validate(/*strict=*/false).ok);
  EXPECT_LE(sl.size(), 8u);
}

TEST(DualTeam, CostModelOverlapsMemoryNotIssue) {
  model::CostModel cm;
  model::Occupancy occ_calc;
  const auto occ = occ_calc.compute(model::kGfslKernel, 16);

  // Memory-dominated run: dual teams nearly double throughput.
  model::KernelRun memory_heavy;
  memory_heavy.ops = 100'000;
  memory_heavy.warp_steps = memory_heavy.ops * 10;
  memory_heavy.mem_epochs = memory_heavy.ops * 10;
  memory_heavy.mem.transactions = memory_heavy.ops * 10;
  memory_heavy.mem.l2_hits = memory_heavy.mem.transactions;
  const double m1 = cm.throughput(memory_heavy, occ, 1).mops;
  const double m2 = cm.throughput(memory_heavy, occ, 2).mops;
  EXPECT_GT(m2 / m1, 1.7);

  // Issue-dominated run: dual teams gain almost nothing (issue serializes).
  model::KernelRun issue_heavy;
  issue_heavy.ops = 100'000;
  issue_heavy.warp_steps = issue_heavy.ops * 1'000;
  issue_heavy.mem_epochs = issue_heavy.ops;
  issue_heavy.mem.transactions = issue_heavy.ops;
  issue_heavy.mem.l2_hits = issue_heavy.mem.transactions;
  const double i1 = cm.throughput(issue_heavy, occ, 1).mops;
  const double i2 = cm.throughput(issue_heavy, occ, 2).mops;
  EXPECT_LT(i2 / i1, 1.2);
}

TEST(DualTeam, MeasureDualProducesThroughput) {
  harness::WorkloadConfig wl;
  wl.mix = harness::kMix_10_10_80;
  wl.key_range = 5'000;
  wl.num_ops = 3'000;
  wl.prefill = harness::Prefill::HalfRange;
  wl.seed = 2;
  harness::StructureSetup setup;
  setup.num_workers = 4;
  setup.warmup_ops = 300;
  const auto m = harness::measure_gfsl_dual(wl, setup);
  EXPECT_GT(m.model_mops, 0.0);
  EXPECT_FALSE(m.oom);
}

TEST(DualTeam, RejectsOddWorkerCount) {
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = 16;
  cfg.pool_chunks = 1u << 10;
  core::Gfsl sl(cfg, &mem);
  harness::RunConfig rc;
  rc.num_workers = 3;
  EXPECT_THROW(harness::run_gfsl_paired(sl, {}, rc, mem),
               std::invalid_argument);
}

}  // namespace
}  // namespace gfsl
