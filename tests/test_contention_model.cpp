// Tests: the analytic update-contention correction and the thesis's restart
// claim (§4.2.1: restarts "occur in less than 0.01% of Contains").
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/gfsl.h"
#include "device/device_memory.h"
#include "harness/experiment.h"

namespace gfsl::harness {
namespace {

model::KernelRun sample_run() {
  model::KernelRun k;
  k.ops = 100'000;
  k.warp_steps = k.ops * 50;
  k.mem_epochs = k.ops * 8;
  k.mem.transactions = k.ops * 15;
  k.mem.l2_hits = k.ops * 10;
  k.mem.dram_transactions = k.ops * 5;
  k.mem.bytes_moved = k.mem.transactions * 128;
  k.mem.atomics = k.ops;
  k.mem.lane_reads = k.ops * 4;
  return k;
}

TEST(ContentionModel, ReadOnlyIsUntouched) {
  auto k = sample_run();
  const auto before = k;
  const model::Occupancy occ;
  const auto o = occ.compute(model::kGfslKernel, 16);
  apply_gfsl_contention(k, o, {10'000.0, 0.0}, 32);
  EXPECT_EQ(k.lock_spins, before.lock_spins);
  EXPECT_EQ(k.mem_epochs, before.mem_epochs);
  auto m = sample_run();
  apply_mc_contention(m, occ.compute(model::kMcKernel, 16), {10'000.0, 0.0});
  EXPECT_EQ(m.mem_epochs, before.mem_epochs);
}

TEST(ContentionModel, SmallStructuresContendMore) {
  const model::Occupancy occ;
  const auto o = occ.compute(model::kGfslKernel, 16);
  auto small = sample_run();
  auto large = sample_run();
  apply_gfsl_contention(small, o, {5'000.0, 1.0}, 32);
  apply_gfsl_contention(large, o, {5'000'000.0, 1.0}, 32);
  EXPECT_GT(small.lock_spins, large.lock_spins * 10);
}

TEST(ContentionModel, UpdateFractionIsQuadratic) {
  // A conflict needs both parties to be updates, so halving u should cut
  // the correction by roughly 4x (below the retry-feedback knee).
  const model::Occupancy occ;
  const auto o = occ.compute(model::kMcKernel, 16);
  auto u_full = sample_run();
  auto u_half = sample_run();
  apply_mc_contention(u_full, o, {500'000.0, 0.4});
  apply_mc_contention(u_half, o, {500'000.0, 0.2});
  const double extra_full =
      static_cast<double>(u_full.mem_epochs) / sample_run().mem_epochs - 1.0;
  const double extra_half =
      static_cast<double>(u_half.mem_epochs) / sample_run().mem_epochs - 1.0;
  EXPECT_GT(extra_full, extra_half * 3.0);
  EXPECT_LT(extra_full, extra_half * 5.0);
}

TEST(ContentionModel, McScalesAllTrafficClasses) {
  const model::Occupancy occ;
  const auto o = occ.compute(model::kMcKernel, 16);
  auto k = sample_run();
  const auto before = k;
  apply_mc_contention(k, o, {2'000.0, 1.0});  // heavy contention
  EXPECT_GT(k.mem_epochs, before.mem_epochs);
  EXPECT_GT(k.mem.dram_transactions, before.mem.dram_transactions);
  EXPECT_GT(k.mem.atomics, before.mem.atomics);
  // Retry feedback is capped: the blow-up stays finite.
  EXPECT_LT(k.mem_epochs, before.mem_epochs * 6);
}

TEST(RestartRate, ThesisClaimUnderConcurrentChurn) {
  // §4.2.1: the searchDown restart "occurs in less than 0.01% of Contains".
  // Under heavy delete churn our rate must at least stay below 1%.
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = 8;  // small chunks: maximal merge/delete churn
  cfg.pool_chunks = 1u << 14;
  core::Gfsl sl(cfg, &mem);
  {
    simt::Team boot(8, 9, 1);
    for (Key k = 1; k <= 2'000; ++k) sl.insert(boot, k, 0);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> contains_ops{0};
  std::atomic<std::uint64_t> restarts{0};

  std::thread churn([&] {
    simt::Team team(8, 0, 2);
    Xoshiro256ss rng(3);
    for (int round = 0; round < 3; ++round) {
      for (Key k = 1; k <= 2'000; ++k) {
        if (rng.below(2) == 0) sl.erase(team, k);
      }
      for (Key k = 1; k <= 2'000; ++k) sl.insert(team, k, 0);
    }
    stop = true;
  });
  std::thread reader([&] {
    simt::Team team(8, 1, 4);
    Xoshiro256ss rng(5);
    while (!stop.load(std::memory_order_acquire)) {
      sl.contains(team, static_cast<Key>(1 + rng.below(2'000)));
      contains_ops.fetch_add(1, std::memory_order_relaxed);
    }
    restarts.store(team.counters().restarts);
  });
  churn.join();
  reader.join();

  ASSERT_GT(contains_ops.load(), 1'000u);
  const double rate = static_cast<double>(restarts.load()) /
                      static_cast<double>(contains_ops.load());
  EXPECT_LT(rate, 0.01) << restarts.load() << " restarts in "
                        << contains_ops.load() << " contains";
}

}  // namespace
}  // namespace gfsl::harness
