// Tests for the cooperative range-scan extension.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>

#include "common/random.h"
#include "core/gfsl.h"
#include "device/device_memory.h"

namespace gfsl::core {
namespace {

using simt::Team;

struct Fixture {
  explicit Fixture(int team_size = 32) : team(team_size, 0, 5) {
    GfslConfig cfg;
    cfg.team_size = team_size;
    cfg.pool_chunks = 1u << 15;
    sl = std::make_unique<Gfsl>(cfg, &mem);
  }
  device::DeviceMemory mem;
  Team team;
  std::unique_ptr<Gfsl> sl;
};

TEST(Scan, EmptyStructureAndEmptyRange) {
  Fixture f;
  std::vector<std::pair<Key, Value>> out;
  EXPECT_EQ(f.sl->scan(f.team, 1, 100, out), 0u);
  f.sl->insert(f.team, 50, 1);
  EXPECT_EQ(f.sl->scan(f.team, 60, 40, out), 0u);  // inverted range
  EXPECT_EQ(f.sl->scan(f.team, 1, 100, out, 0), 0u);  // zero limit
  EXPECT_TRUE(out.empty());
}

TEST(Scan, ExactRangeSortedOutput) {
  Fixture f;
  for (Key k = 10; k <= 1'000; k += 10) f.sl->insert(f.team, k, k * 2);
  std::vector<std::pair<Key, Value>> out;
  const auto n = f.sl->scan(f.team, 95, 305, out);
  // Keys 100, 110, ..., 300.
  ASSERT_EQ(n, 21u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, 100 + 10 * i);
    EXPECT_EQ(out[i].second, out[i].first * 2);
  }
}

TEST(Scan, InclusiveBounds) {
  Fixture f;
  f.sl->insert(f.team, 5, 0);
  f.sl->insert(f.team, 10, 0);
  f.sl->insert(f.team, 15, 0);
  std::vector<std::pair<Key, Value>> out;
  EXPECT_EQ(f.sl->scan(f.team, 5, 15, out), 3u);
  out.clear();
  EXPECT_EQ(f.sl->scan(f.team, 6, 14, out), 1u);
  EXPECT_EQ(out[0].first, 10u);
}

TEST(Scan, LimitTruncates) {
  Fixture f;
  for (Key k = 1; k <= 500; ++k) f.sl->insert(f.team, k, 0);
  std::vector<std::pair<Key, Value>> out;
  EXPECT_EQ(f.sl->scan(f.team, 1, 500, out, 37), 37u);
  EXPECT_EQ(out.size(), 37u);
  EXPECT_EQ(out.front().first, 1u);
  EXPECT_EQ(out.back().first, 37u);
}

TEST(Scan, FullScanMatchesCollect) {
  Fixture f;
  Xoshiro256ss rng(1);
  for (int i = 0; i < 3'000; ++i) {
    f.sl->insert(f.team, static_cast<Key>(1 + rng.below(10'000)), 7);
  }
  std::vector<std::pair<Key, Value>> out;
  f.sl->scan(f.team, MIN_USER_KEY, MAX_USER_KEY, out);
  EXPECT_EQ(out, f.sl->collect());
}

TEST(Scan, SpansChunksAndSkipsZombies) {
  Fixture f;
  for (Key k = 1; k <= 400; ++k) f.sl->insert(f.team, k, k);
  // Force merges to create zombies inside the scan range: drop chunks well
  // below the DSIZE/3 merge threshold by deleting 3 of every 4 keys.
  for (Key k = 20; k <= 380; ++k) {
    if (k % 4 != 0) f.sl->erase(f.team, k);
  }
  ASSERT_GT(f.sl->validate().zombie_chunks, 0u);
  std::vector<std::pair<Key, Value>> out;
  f.sl->scan(f.team, 1, 400, out);
  EXPECT_EQ(out, f.sl->collect());
}

TEST(Scan, AppendsToExistingVector) {
  Fixture f;
  f.sl->insert(f.team, 7, 1);
  std::vector<std::pair<Key, Value>> out{{1, 1}};
  EXPECT_EQ(f.sl->scan(f.team, 1, 100, out), 1u);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].first, 7u);
}

TEST(Scan, SmallTeamSize) {
  Fixture f(8);
  for (Key k = 1; k <= 200; ++k) f.sl->insert(f.team, k, k);
  std::vector<std::pair<Key, Value>> out;
  EXPECT_EQ(f.sl->scan(f.team, 40, 60, out), 21u);
}

TEST(Scan, StableKeysVisibleUnderConcurrentChurn) {
  // Keys 1..200 are permanent; a writer churns 1000..2000.  Every scan of
  // [1, 200] must return exactly the stable keys.
  Fixture f(16);
  for (Key k = 1; k <= 200; ++k) f.sl->insert(f.team, k, k);
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread writer([&] {
    Team w(16, 1, 9);
    Xoshiro256ss rng(2);
    for (int i = 0; i < 6'000; ++i) {
      const Key k = static_cast<Key>(1'000 + rng.below(1'000));
      if (rng.below(2) == 0) {
        f.sl->insert(w, k, 0);
      } else {
        f.sl->erase(w, k);
      }
    }
    stop = true;
  });
  std::thread scanner([&] {
    Team s(16, 2, 10);
    while (!stop.load(std::memory_order_acquire)) {
      std::vector<std::pair<Key, Value>> out;
      f.sl->scan(s, 1, 200, out);
      if (out.size() != 200) {
        ++bad;
        continue;
      }
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i].first != i + 1) ++bad;
      }
    }
  });
  writer.join();
  scanner.join();
  EXPECT_EQ(bad.load(), 0);
}

}  // namespace
}  // namespace gfsl::core
