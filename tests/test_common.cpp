// Unit tests: types/KV packing, RNG determinism & distribution, statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "common/env.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/types.h"

namespace gfsl {
namespace {

TEST(Types, KvPackingRoundTrips) {
  const KV kv = make_kv(0x12345678u, 0x9ABCDEF0u);
  EXPECT_EQ(kv_key(kv), 0x12345678u);
  EXPECT_EQ(kv_value(kv), 0x9ABCDEF0u);
}

TEST(Types, SentinelsAreDisjointFromUserKeys) {
  EXPECT_LT(KEY_NEG_INF, MIN_USER_KEY);
  EXPECT_GT(KEY_INF, MAX_USER_KEY);
  EXPECT_TRUE(kv_is_empty(KV_EMPTY));
  EXPECT_FALSE(kv_is_empty(make_kv(MAX_USER_KEY, 7)));
}

TEST(Types, KeyOrderingMatchesLow32BitOrdering) {
  // A lane compares keys by comparing kv_key; the packing must not disturb
  // integer ordering of keys.
  EXPECT_LT(kv_key(make_kv(5, 1000)), kv_key(make_kv(6, 0)));
}

TEST(Random, SplitMix64IsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Random, XoshiroStreamsDiffer) {
  Xoshiro256ss a(derive_seed(1, 0)), b(derive_seed(1, 1));
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Random, BelowIsInRange) {
  Xoshiro256ss r(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(r.below(13), 13u);
  }
}

TEST(Random, BelowIsRoughlyUniform) {
  Xoshiro256ss r(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100'000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[r.below(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Random, BernoulliMatchesProbability) {
  Xoshiro256ss r(13);
  int hits = 0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Stats, SummaryOfConstantSeries) {
  RunStats s;
  for (int i = 0; i < 10; ++i) s.add(5.0);
  const Summary sum = s.summarize();
  EXPECT_DOUBLE_EQ(sum.mean, 5.0);
  EXPECT_DOUBLE_EQ(sum.stddev, 0.0);
  EXPECT_DOUBLE_EQ(sum.ci95_half, 0.0);
  EXPECT_EQ(sum.n, 10u);
}

TEST(Stats, KnownCi) {
  // n=10 samples 1..10: mean 5.5, sd ~3.0277, t(9)=2.262.
  RunStats s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  const Summary sum = s.summarize();
  EXPECT_DOUBLE_EQ(sum.mean, 5.5);
  EXPECT_NEAR(sum.stddev, 3.0277, 1e-3);
  EXPECT_NEAR(sum.ci95_half, 2.262 * 3.0277 / std::sqrt(10.0), 1e-3);
  EXPECT_DOUBLE_EQ(sum.min, 1.0);
  EXPECT_DOUBLE_EQ(sum.max, 10.0);
}

TEST(Stats, TCriticalValues) {
  EXPECT_NEAR(t_critical_95(1), 12.706, 1e-3);
  EXPECT_NEAR(t_critical_95(9), 2.262, 1e-3);
  EXPECT_NEAR(t_critical_95(1000), 1.96, 1e-3);
}

TEST(Stats, EmptySummary) {
  RunStats s;
  const Summary sum = s.summarize();
  EXPECT_EQ(sum.n, 0u);
  EXPECT_DOUBLE_EQ(sum.mean, 0.0);
  EXPECT_DOUBLE_EQ(sum.p50, 0.0);
  EXPECT_DOUBLE_EQ(sum.p99, 0.0);
}

TEST(Stats, PercentilesInterpolate) {
  // Samples 1..10 (added out of order): R-7 linear interpolation gives
  // p50 = 5.5, p90 = 9.1, p99 = 9.91.
  RunStats s;
  for (int i : {7, 1, 10, 3, 5, 2, 9, 4, 8, 6}) s.add(i);
  const Summary sum = s.summarize();
  EXPECT_DOUBLE_EQ(sum.p50, 5.5);
  EXPECT_NEAR(sum.p90, 9.1, 1e-12);
  EXPECT_NEAR(sum.p99, 9.91, 1e-12);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 10.0);
}

TEST(Stats, PercentileOfSingleSample) {
  RunStats s;
  s.add(42.0);
  const Summary sum = s.summarize();
  EXPECT_DOUBLE_EQ(sum.p50, 42.0);
  EXPECT_DOUBLE_EQ(sum.p90, 42.0);
  EXPECT_DOUBLE_EQ(sum.p99, 42.0);
}

TEST(Env, ParsesAndFallsBack) {
  ::setenv("GFSL_TEST_ENV_U64", "1234", 1);
  EXPECT_EQ(env_u64("GFSL_TEST_ENV_U64", 7), 1234u);
  EXPECT_EQ(env_u64("GFSL_TEST_ENV_UNSET_XYZ", 7), 7u);
  ::setenv("GFSL_TEST_ENV_BAD", "xyz", 1);
  EXPECT_EQ(env_u64("GFSL_TEST_ENV_BAD", 9), 9u);
  ::setenv("GFSL_TEST_ENV_DBL", "0.25", 1);
  EXPECT_DOUBLE_EQ(env_double("GFSL_TEST_ENV_DBL", 1.0), 0.25);
}

TEST(Env, ScaleDefaults) {
  ::unsetenv("GFSL_OPS");
  const Scale s = Scale::from_env();
  EXPECT_GT(s.ops, 0u);
  EXPECT_GT(s.reps, 0u);
  EXPECT_GT(s.teams, 0u);
}

}  // namespace
}  // namespace gfsl
