// Shape statistics + direct checks of the thesis's quantitative claims about
// the structure GFSL converges to (Chapter 3, §4.2.2, §5.2).
#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "core/gfsl.h"
#include "core/shape.h"
#include "device/device_memory.h"

namespace gfsl::core {
namespace {

using simt::Team;

std::unique_ptr<Gfsl> grown_list(device::DeviceMemory& mem, int team_size,
                                 Key keys, std::uint64_t seed) {
  GfslConfig cfg;
  cfg.team_size = team_size;
  cfg.pool_chunks = 1u << 17;
  cfg.p_chunk = 1.0;
  auto sl = std::make_unique<Gfsl>(cfg, &mem);
  Team team(team_size, 0, seed);
  // Random insertion order so splits shape the structure organically.
  Xoshiro256ss rng(seed);
  std::vector<Key> ks(keys);
  for (Key i = 0; i < keys; ++i) ks[i] = i + 1;
  for (std::size_t i = ks.size(); i > 1; --i) {
    std::swap(ks[i - 1], ks[rng.below(i)]);
  }
  for (const Key k : ks) sl->insert(team, k, k);
  return sl;
}

TEST(Shape, EmptyStructure) {
  device::DeviceMemory mem;
  GfslConfig cfg;
  Gfsl sl(cfg, &mem);
  const auto s = measure_shape(sl);
  EXPECT_EQ(s.height, 0);
  EXPECT_EQ(s.total_keys, 0u);
  EXPECT_EQ(s.zombie_chunks, 0u);
  EXPECT_DOUBLE_EQ(s.zombie_fraction(), 0.0);
}

TEST(Shape, CountsMatchCollect) {
  device::DeviceMemory mem;
  auto sl = grown_list(mem, 32, 3'000, 7);
  const auto s = measure_shape(*sl);
  EXPECT_EQ(s.total_keys, sl->size());
  EXPECT_EQ(s.height, sl->current_height());
  EXPECT_GT(s.live_chunks, 0u);
}

TEST(Shape, ThesisClaim_Chunk32HoldsAbout20Keys) {
  // §4.2.2: "chunks of size 32, which hold an average of 20 keys".
  // Split-in-half dynamics keep live chunks between DSIZE/2 (15) and DSIZE
  // (30); random growth settles the mean around 20.
  device::DeviceMemory mem;
  auto sl = grown_list(mem, 32, 20'000, 11);
  const auto s = measure_shape(*sl);
  EXPECT_GE(s.avg_keys_per_chunk, 16.0);
  EXPECT_LE(s.avg_keys_per_chunk, 24.0);
}

TEST(Shape, ThesisClaim_Chunk16HoldsAbout10Keys) {
  // §4.2.2: "chunks of size 16 hold an average of 10 keys".
  device::DeviceMemory mem;
  auto sl = grown_list(mem, 16, 20'000, 13);
  const auto s = measure_shape(*sl);
  EXPECT_GE(s.avg_keys_per_chunk, 8.0);
  EXPECT_LE(s.avg_keys_per_chunk, 12.0);
}

TEST(Shape, ThesisClaim_Gfsl16HasMoreLevels) {
  // §5.2: "GFSL-16 contains 25% more levels on average than GFSL-32".
  device::DeviceMemory mem16, mem32;
  auto sl16 = grown_list(mem16, 16, 30'000, 17);
  auto sl32 = grown_list(mem32, 32, 30'000, 17);
  const int h16 = measure_shape(*sl16).height;
  const int h32 = measure_shape(*sl32).height;
  EXPECT_GT(h16, h32);
}

TEST(Shape, FanoutTracksChunkFill) {
  // With p_chunk = 1 one key is raised per split, so the level-0/level-1 key
  // ratio approximates the average chunk fill (§3: "the factor between
  // levels [is] tied to the number of entries in a chunk").
  device::DeviceMemory mem;
  auto sl = grown_list(mem, 32, 20'000, 19);
  const auto s = measure_shape(*sl);
  EXPECT_GT(s.fanout, s.avg_keys_per_chunk * 0.5);
  EXPECT_LT(s.fanout, s.avg_keys_per_chunk * 2.0);
}

TEST(Shape, ZombieFractionGrowsWithDeletesAndResetsOnCompact) {
  device::DeviceMemory mem;
  auto sl = grown_list(mem, 32, 5'000, 23);
  Team team(32, 1, 2);
  for (Key k = 1; k <= 4'500; ++k) sl->erase(team, k);
  const auto before = measure_shape(*sl);
  EXPECT_GT(before.zombie_fraction(), 0.0);
  sl->compact();
  const auto after = measure_shape(*sl);
  EXPECT_DOUBLE_EQ(after.zombie_fraction(), 0.0);
  EXPECT_EQ(after.total_keys, before.total_keys);
}

TEST(Shape, LowPChunkFlattensTheStructure) {
  // §5.2: lowering p_chunk lengthens lateral walks without much height
  // impact — in the limit p_chunk = 0 the structure is one long level.
  device::DeviceMemory mem0, mem1;
  GfslConfig cfg;
  cfg.team_size = 16;
  cfg.pool_chunks = 1u << 15;
  cfg.p_chunk = 0.0;
  Gfsl flat(cfg, &mem0);
  cfg.p_chunk = 1.0;
  Gfsl tall(cfg, &mem1);
  Team team(16, 0, 3);
  for (Key k = 1; k <= 4'000; ++k) {
    flat.insert(team, k, 0);
    tall.insert(team, k, 0);
  }
  EXPECT_EQ(measure_shape(flat).height, 0);
  EXPECT_GE(measure_shape(tall).height, 2);
}

TEST(Shape, PerLevelFillWithinSplitMergeBand) {
  device::DeviceMemory mem;
  auto sl = grown_list(mem, 32, 10'000, 29);
  const auto s = measure_shape(*sl);
  const double dsize = 30.0;
  for (int l = 0; l <= s.height; ++l) {
    const auto& ls = s.levels[static_cast<std::size_t>(l)];
    if (ls.live_chunks < 3) continue;  // head/last chunks skew tiny levels
    EXPECT_LE(ls.max_fill, dsize) << "level " << l;
    // Live interior chunks sit between the merge floor and capacity.
    EXPECT_GE(ls.avg_fill, dsize / 3.0) << "level " << l;
  }
}

}  // namespace
}  // namespace gfsl::core
