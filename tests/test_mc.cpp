// Unit/integration tests: the M&C lock-free skiplist baseline.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>

#include "baseline/mc_skiplist.h"
#include "common/random.h"

namespace gfsl::baseline {
namespace {

struct Fixture {
  explicit Fixture(std::uint32_t slots = 1u << 20) : ctx(0) {
    McSkiplist::Config cfg;
    cfg.pool_slots = slots;
    sl = std::make_unique<McSkiplist>(cfg, &mem);
  }
  device::DeviceMemory mem;
  McContext ctx;
  std::unique_ptr<McSkiplist> sl;
};

TEST(McSkiplist, EmptyStructure) {
  Fixture f;
  EXPECT_FALSE(f.sl->contains(f.ctx, 5));
  EXPECT_FALSE(f.sl->erase(f.ctx, 5));
  EXPECT_EQ(f.sl->size(), 0u);
  std::string err;
  EXPECT_TRUE(f.sl->validate(&err)) << err;
}

TEST(McSkiplist, InsertFindDelete) {
  Fixture f;
  EXPECT_TRUE(f.sl->insert(f.ctx, 10, 7, 3));
  EXPECT_TRUE(f.sl->contains(f.ctx, 10));
  EXPECT_FALSE(f.sl->contains(f.ctx, 9));
  EXPECT_FALSE(f.sl->insert(f.ctx, 10, 8, 1));
  EXPECT_TRUE(f.sl->erase(f.ctx, 10));
  EXPECT_FALSE(f.sl->erase(f.ctx, 10));
  EXPECT_FALSE(f.sl->contains(f.ctx, 10));
}

TEST(McSkiplist, TallAndShortTowers) {
  Fixture f;
  EXPECT_TRUE(f.sl->insert(f.ctx, 100, 0, 32));  // max height
  EXPECT_TRUE(f.sl->insert(f.ctx, 200, 0, 1));   // bottom only
  EXPECT_TRUE(f.sl->contains(f.ctx, 100));
  EXPECT_TRUE(f.sl->contains(f.ctx, 200));
  std::string err;
  EXPECT_TRUE(f.sl->validate(&err)) << err;
  EXPECT_TRUE(f.sl->erase(f.ctx, 100));
  EXPECT_TRUE(f.sl->contains(f.ctx, 200));
}

TEST(McSkiplist, HeightClamping) {
  Fixture f;
  EXPECT_TRUE(f.sl->insert(f.ctx, 1, 0, 0));    // clamped up to 1
  EXPECT_TRUE(f.sl->insert(f.ctx, 2, 0, 200));  // clamped down to max
  EXPECT_TRUE(f.sl->contains(f.ctx, 1));
  EXPECT_TRUE(f.sl->contains(f.ctx, 2));
}

TEST(McSkiplist, RandomMixAgainstStdSet) {
  Fixture f;
  std::set<Key> ref;
  Xoshiro256ss rng(17);
  for (int i = 0; i < 20'000; ++i) {
    const Key k = static_cast<Key>(1 + rng.below(400));
    const auto dice = rng.below(100);
    if (dice < 40) {
      const int h = f.sl->random_height(rng);
      ASSERT_EQ(f.sl->insert(f.ctx, k, 0, h), ref.insert(k).second)
          << "insert " << k << " step " << i;
    } else if (dice < 80) {
      ASSERT_EQ(f.sl->erase(f.ctx, k), ref.erase(k) > 0)
          << "erase " << k << " step " << i;
    } else {
      ASSERT_EQ(f.sl->contains(f.ctx, k), ref.count(k) > 0)
          << "contains " << k << " step " << i;
    }
  }
  const auto got = f.sl->collect();
  ASSERT_EQ(got.size(), ref.size());
  auto it = ref.begin();
  for (std::size_t i = 0; i < got.size(); ++i, ++it) {
    EXPECT_EQ(got[i].first, *it);
  }
  std::string err;
  EXPECT_TRUE(f.sl->validate(&err)) << err;
}

TEST(McSkiplist, BulkLoadMatchesContents) {
  Fixture f;
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 5; k <= 5'000; k += 5) pairs.emplace_back(k, k * 3);
  f.sl->bulk_load(pairs, 99);
  EXPECT_EQ(f.sl->size(), pairs.size());
  std::string err;
  EXPECT_TRUE(f.sl->validate(&err)) << err;
  EXPECT_TRUE(f.sl->contains(f.ctx, 50));
  EXPECT_FALSE(f.sl->contains(f.ctx, 51));
  EXPECT_TRUE(f.sl->insert(f.ctx, 51, 0, 2));
  EXPECT_TRUE(f.sl->erase(f.ctx, 50));
  EXPECT_TRUE(f.sl->validate(&err)) << err;
}

TEST(McSkiplist, PoolExhaustionThrows) {
  Fixture f(/*slots=*/256);
  bool threw = false;
  try {
    for (Key k = 1; k <= 1'000; ++k) f.sl->insert(f.ctx, k, 0, 4);
  } catch (const std::bad_alloc&) {
    threw = true;
  }
  EXPECT_TRUE(threw);  // §5.3: M&C "runs out of memory for larger structures"
}

TEST(McSkiplist, RandomHeightDistribution) {
  Fixture f;
  Xoshiro256ss rng(3);
  int ones = 0;
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    if (f.sl->random_height(rng) == 1) ++ones;
  }
  // P(height == 1) = 1 - p_key = 0.5.
  EXPECT_NEAR(static_cast<double>(ones) / kDraws, 0.5, 0.01);
}

TEST(McSkiplist, UncoalescedAccessesAreAccounted) {
  Fixture f;
  f.sl->insert(f.ctx, 10, 0, 1);
  f.mem.reset_stats();
  f.sl->contains(f.ctx, 10);
  const auto s = f.mem.snapshot();
  EXPECT_GT(s.lane_reads, 0u);   // every hop is a divergent lane read
  EXPECT_EQ(s.warp_reads, 0u);   // never coalesced
}

TEST(McSkiplist, DivergenceFoldingInContext) {
  McContext ctx(0, /*lanes_per_warp=*/4);
  // Ops with hop counts 3, 1, 7, 2 -> one full warp group, epoch = max = 7.
  for (const int hops : {3, 1, 7, 2}) {
    for (int h = 0; h < hops; ++h) ctx.hop();
    ctx.end_op();
  }
  EXPECT_EQ(ctx.warp_epochs(), 7u);
  EXPECT_EQ(ctx.total_hops(), 13u);
  EXPECT_EQ(ctx.ops(), 4u);
}

TEST(McSkiplist, PartialWarpGroupFlushes) {
  McContext ctx(0, 32);
  for (int h = 0; h < 5; ++h) ctx.hop();
  ctx.end_op();  // only 1 of 32 lanes used
  EXPECT_EQ(ctx.warp_epochs(), 5u);
}

TEST(McSkiplist, ConcurrentStressPerKeyOwnership) {
  Fixture f(1u << 22);
  constexpr int kThreads = 4;
  constexpr int kOpsEach = 4'000;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      McContext ctx(t);
      Xoshiro256ss rng(derive_seed(7, static_cast<std::uint64_t>(t)));
      std::set<Key> mine;
      for (int i = 0; i < kOpsEach; ++i) {
        // Keys are partitioned by thread: results must match a sequential
        // set even under concurrency.
        const Key k = static_cast<Key>(1 + t * 1'000'000 + rng.below(200));
        if (rng.below(2) == 0) {
          const int h = f.sl->random_height(rng);
          if (f.sl->insert(ctx, k, 0, h) != mine.insert(k).second) {
            ++failures[t];
          }
        } else {
          if (f.sl->erase(ctx, k) != (mine.erase(k) > 0)) ++failures[t];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
  std::string err;
  EXPECT_TRUE(f.sl->validate(&err)) << err;
}

TEST(McSkiplist, DeterministicSchedulesKeepPerKeySemantics) {
  // Two threads under seeded deterministic interleavings, keys partitioned
  // per thread: results must match a sequential set, for every schedule.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    device::DeviceMemory mem;
    sched::StepScheduler sched(sched::StepScheduler::Mode::Deterministic,
                               seed, 2);
    McSkiplist::Config cfg;
    cfg.pool_slots = 1u << 18;
    McSkiplist sl(cfg, &mem, &sched);

    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&, t] {
        McContext ctx(t);
        Xoshiro256ss rng(derive_seed(5, static_cast<std::uint64_t>(t)));
        std::set<Key> mine;
        sched.enter(t);
        for (int i = 0; i < 200; ++i) {
          const Key k = static_cast<Key>(1 + t * 100'000 + rng.below(30));
          if (rng.below(2) == 0) {
            const int h = sl.random_height(rng);
            if (sl.insert(ctx, k, 0, h) != mine.insert(k).second) ++failures;
          } else {
            if (sl.erase(ctx, k) != (mine.erase(k) > 0)) ++failures;
          }
        }
        sched.leave(t);
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(failures.load(), 0) << "seed " << seed;
    std::string err;
    EXPECT_TRUE(sl.validate(&err)) << "seed " << seed << ": " << err;
  }
}

}  // namespace
}  // namespace gfsl::baseline
