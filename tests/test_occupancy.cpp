// The occupancy/spill calculator must reproduce every row of the thesis's
// Tables 5.1 (GFSL) and 5.2 (M&C) from first principles: register demand +
// CC 5.2 hardware rules + the authors' "keep two blocks resident" policy.
#include <gtest/gtest.h>

#include "model/occupancy.h"

namespace gfsl::model {
namespace {

struct Row {
  int warps;
  int regs;
  int blocks;
  double theoretical;
  double spill;  // thesis-reported spill traffic fraction
};

class OccupancyTable : public ::testing::Test {
 protected:
  Occupancy calc;
};

TEST_F(OccupancyTable, Gfsl_Table_5_1) {
  // Warps | Regs | Blocks | Theoretical | Spill  (thesis Table 5.1)
  const Row rows[] = {
      {8, 79, 3, 0.375, 0.00},
      {16, 64, 2, 0.50, 0.10},
      {24, 40, 2, 0.75, 0.43},
      {32, 32, 2, 1.00, 0.53},
  };
  for (const Row& r : rows) {
    const auto o = calc.compute(kGfslKernel, r.warps);
    EXPECT_EQ(o.registers_per_thread, r.regs) << "warps=" << r.warps;
    EXPECT_EQ(o.active_blocks, r.blocks) << "warps=" << r.warps;
    EXPECT_NEAR(o.theoretical_occupancy, r.theoretical, 1e-9)
        << "warps=" << r.warps;
    EXPECT_NEAR(o.spill_fraction, r.spill, 0.02) << "warps=" << r.warps;
  }
}

TEST_F(OccupancyTable, Gfsl_AchievedOccupancyMatchesThesis) {
  // Thesis: 36.7 / 48.8 / 73 / 95.8 percent achieved.
  EXPECT_NEAR(calc.compute(kGfslKernel, 16).achieved_occupancy, 0.488, 0.005);
  EXPECT_NEAR(calc.compute(kGfslKernel, 32).achieved_occupancy, 0.958, 0.025);
}

TEST_F(OccupancyTable, Mc_Table_5_2) {
  const Row rows[] = {
      {8, 42, 5, 0.625, 0.25},
      {16, 42, 2, 0.50, 0.23},
      {24, 40, 2, 0.75, 0.23},
      {32, 32, 2, 1.00, 0.24},
  };
  for (const Row& r : rows) {
    const auto o = calc.compute(kMcKernel, r.warps);
    EXPECT_EQ(o.registers_per_thread, r.regs) << "warps=" << r.warps;
    EXPECT_EQ(o.active_blocks, r.blocks) << "warps=" << r.warps;
    EXPECT_NEAR(o.theoretical_occupancy, r.theoretical, 1e-9)
        << "warps=" << r.warps;
    EXPECT_NEAR(o.spill_fraction, r.spill, 0.04) << "warps=" << r.warps;
  }
}

TEST_F(OccupancyTable, Mc_AchievedOccupancyMatchesThesis) {
  // Thesis: 52.9 / 41.6 / 59 / 79.4 percent achieved.
  EXPECT_NEAR(calc.compute(kMcKernel, 16).achieved_occupancy, 0.416, 0.01);
  // The per-kernel stall efficiency is a single constant; the thesis's
  // achieved occupancy varies by ~1pp across block sizes.
  EXPECT_NEAR(calc.compute(kMcKernel, 8).achieved_occupancy, 0.529, 0.015);
}

TEST_F(OccupancyTable, GfslHasNoLocalArraySpillFloor) {
  // GFSL keeps its path in a shfl "artificial array" precisely to avoid the
  // local-memory spill M&C pays at every configuration (§4.2.2, §5.2).
  EXPECT_DOUBLE_EQ(calc.compute(kGfslKernel, 8).spill_fraction, 0.0);
  EXPECT_GT(calc.compute(kMcKernel, 8).spill_fraction, 0.2);
}

TEST_F(OccupancyTable, ActiveWarpsNeverExceedHardware) {
  for (int w : {8, 16, 24, 32}) {
    for (const auto& k : {kGfslKernel, kMcKernel}) {
      const auto o = calc.compute(k, w);
      EXPECT_LE(o.active_warps, gtx970().max_warps_per_sm);
      EXPECT_GE(o.active_blocks, 1);
      EXPECT_LE(o.achieved_occupancy, o.theoretical_occupancy);
    }
  }
}

TEST_F(OccupancyTable, RejectsInvalidLaunch) {
  EXPECT_THROW(calc.compute(kGfslKernel, 0), std::invalid_argument);
  EXPECT_THROW(calc.compute(kGfslKernel, 65), std::invalid_argument);
}

TEST_F(OccupancyTable, SpillGrowsMonotonicallyWithWarps) {
  double prev = -1.0;
  for (int w : {8, 16, 24, 32}) {
    const double s = calc.compute(kGfslKernel, w).spill_fraction;
    EXPECT_GE(s, prev);
    prev = s;
  }
}

}  // namespace
}  // namespace gfsl::model
