// Edge-case and scenario tests: sentinel-adjacent keys, max-field
// maintenance, last-chunk behavior, backtrack paths, level drain/regrow,
// value integrity across splits and merges.
#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "core/gfsl.h"
#include "core/shape.h"
#include "device/device_memory.h"

namespace gfsl::core {
namespace {

using simt::Team;

struct Fixture {
  explicit Fixture(int team_size = 8, std::uint32_t pool = 1u << 14)
      : team(team_size, 0, 77) {
    GfslConfig cfg;
    cfg.team_size = team_size;
    cfg.pool_chunks = pool;
    sl = std::make_unique<Gfsl>(cfg, &mem);
  }
  device::DeviceMemory mem;
  Team team;
  std::unique_ptr<Gfsl> sl;
};

TEST(GfslEdge, ExtremeUserKeys) {
  Fixture f;
  EXPECT_TRUE(f.sl->insert(f.team, MIN_USER_KEY, 1));
  EXPECT_TRUE(f.sl->insert(f.team, MAX_USER_KEY, 2));
  EXPECT_TRUE(f.sl->contains(f.team, MIN_USER_KEY));
  EXPECT_TRUE(f.sl->contains(f.team, MAX_USER_KEY));
  EXPECT_EQ(f.sl->find(f.team, MAX_USER_KEY).value_or(0), 2u);
  EXPECT_TRUE(f.sl->validate().ok);
  EXPECT_TRUE(f.sl->erase(f.team, MIN_USER_KEY));
  EXPECT_TRUE(f.sl->erase(f.team, MAX_USER_KEY));
  EXPECT_EQ(f.sl->size(), 0u);
}

TEST(GfslEdge, DeletingChunkMaxLowersMaxBeforeData) {
  // Fill two chunks, then delete the first chunk's maximum key repeatedly;
  // validate() checks max == largest key after every step (§4.2.3 "the NEXT
  // thread must update the max field ... before the deletion").
  Fixture f;
  for (Key k = 1; k <= 12; ++k) ASSERT_TRUE(f.sl->insert(f.team, k * 10, k));
  for (int round = 0; round < 6; ++round) {
    // Find the current max of the first (non-head) chunk via collect order.
    const auto all = f.sl->collect();
    ASSERT_FALSE(all.empty());
    // Delete a key from the middle (likely some chunk's max at some point).
    const Key victim = all[all.size() / 2].first;
    ASSERT_TRUE(f.sl->erase(f.team, victim));
    const auto rep = f.sl->validate();
    ASSERT_TRUE(rep.ok) << rep.error;
  }
}

TEST(GfslEdge, DrainLevelThenRegrow) {
  Fixture f;
  for (Key k = 1; k <= 300; ++k) ASSERT_TRUE(f.sl->insert(f.team, k, 0));
  const int h1 = f.sl->current_height();
  ASSERT_GE(h1, 1);
  for (Key k = 1; k <= 300; ++k) ASSERT_TRUE(f.sl->erase(f.team, k));
  EXPECT_EQ(f.sl->size(), 0u);
  // Regrow: the drained levels must come back into use cleanly.
  for (Key k = 1; k <= 300; ++k) ASSERT_TRUE(f.sl->insert(f.team, k + 500, 1));
  EXPECT_EQ(f.sl->size(), 300u);
  EXPECT_TRUE(f.sl->validate().ok);
  for (Key k = 1; k <= 300; ++k) {
    ASSERT_TRUE(f.sl->contains(f.team, k + 500));
    ASSERT_FALSE(f.sl->contains(f.team, k));
  }
}

TEST(GfslEdge, BacktrackPath) {
  // Craft the Figure 4.1b situation: after a lateral step the team lands in
  // a chunk whose keys are all greater than the target, forcing a backtrack
  // through the previous chunk.  With dense keys and gaps right after chunk
  // boundaries, probes into the gaps exercise exactly that path.
  Fixture f(8);
  for (Key k = 0; k < 40; ++k) {
    ASSERT_TRUE(f.sl->insert(f.team, 100 + k * 100, k));
  }
  // Probe every inter-key gap; misses must come back false without hanging.
  for (Key k = 0; k < 40; ++k) {
    EXPECT_FALSE(f.sl->contains(f.team, 100 + k * 100 + 50));
    EXPECT_TRUE(f.sl->contains(f.team, 100 + k * 100));
  }
  // Keys below the first and above the last key.
  EXPECT_FALSE(f.sl->contains(f.team, 1));
  EXPECT_FALSE(f.sl->contains(f.team, 100 + 40 * 100));
}

TEST(GfslEdge, ValuesSurviveSplits) {
  Fixture f(8);
  // Values are distinct functions of the key; splits copy them between
  // chunks and must never mix them up.
  for (Key k = 1; k <= 500; ++k) {
    ASSERT_TRUE(f.sl->insert(f.team, k, k * 31 + 7));
  }
  for (Key k = 1; k <= 500; ++k) {
    ASSERT_EQ(f.sl->find(f.team, k).value_or(0), k * 31 + 7) << "k=" << k;
  }
}

TEST(GfslEdge, ValuesSurviveMerges) {
  Fixture f(8);
  for (Key k = 1; k <= 400; ++k) ASSERT_TRUE(f.sl->insert(f.team, k, k ^ 0xABCD));
  // Delete three of every four keys — heavy merging.
  for (Key k = 1; k <= 400; ++k) {
    if (k % 4 != 0) {
      ASSERT_TRUE(f.sl->erase(f.team, k));
    }
  }
  for (Key k = 4; k <= 400; k += 4) {
    ASSERT_EQ(f.sl->find(f.team, k).value_or(0), k ^ 0xABCD) << "k=" << k;
  }
  EXPECT_TRUE(f.sl->validate().ok);
}

TEST(GfslEdge, AlternatingInsertEraseAtChunkBoundary) {
  // Oscillate the fill level right at the split/merge thresholds to shake
  // out hysteresis bugs (split at full, merge at DSIZE/3).
  Fixture f(8);  // DSIZE = 6: split at 6, merge at <= 2
  for (Key k = 1; k <= 6; ++k) ASSERT_TRUE(f.sl->insert(f.team, k * 10, 0));
  for (int round = 0; round < 50; ++round) {
    const Key k = 5 + static_cast<Key>(round);
    ASSERT_TRUE(f.sl->insert(f.team, k * 10 + 1, 0));
    ASSERT_TRUE(f.sl->erase(f.team, k * 10 + 1));
    const auto rep = f.sl->validate();
    ASSERT_TRUE(rep.ok) << "round " << round << ": " << rep.error;
  }
  EXPECT_EQ(f.sl->size(), 6u);
}

TEST(GfslEdge, SparseThenDenseKeys) {
  Fixture f;
  // Powers of two: maximal key spread.
  for (Key k = 1; k != 0 && k <= (1u << 30); k <<= 1) {
    ASSERT_TRUE(f.sl->insert(f.team, k, 0));
  }
  // Then densely pack one region (1024 is already present as a power of 2).
  for (Key k = 1000; k < 1200; ++k) {
    ASSERT_EQ(f.sl->insert(f.team, k, 0), k != 1024);
  }
  EXPECT_TRUE(f.sl->validate().ok);
  EXPECT_TRUE(f.sl->contains(f.team, 1u << 20));
  EXPECT_TRUE(f.sl->contains(f.team, 1100));
  EXPECT_FALSE(f.sl->contains(f.team, 999));
  // 1024 belongs to both sets; erase once, it must be gone.
  EXPECT_TRUE(f.sl->erase(f.team, 1024));
  EXPECT_FALSE(f.sl->contains(f.team, 1024));
}

TEST(GfslEdge, ManyMergesIntoLastChunk) {
  // Deleting from the tail end repeatedly exercises the never-merge-the-
  // last-chunk rule (§4.2.3) and the empty-last-chunk case.
  Fixture f(8);
  for (Key k = 1; k <= 100; ++k) ASSERT_TRUE(f.sl->insert(f.team, k, 0));
  for (Key k = 100; k >= 20; --k) {
    ASSERT_TRUE(f.sl->erase(f.team, k));
    const auto rep = f.sl->validate();
    ASSERT_TRUE(rep.ok) << "k=" << k << ": " << rep.error;
  }
  EXPECT_EQ(f.sl->size(), 19u);
  // Refill the drained tail.
  for (Key k = 50; k <= 120; ++k) ASSERT_TRUE(f.sl->insert(f.team, k, 0));
  EXPECT_TRUE(f.sl->validate().ok);
}

TEST(GfslEdge, InterleavedFindDuringStructuralChanges) {
  Fixture f(8);
  Xoshiro256ss rng(31);
  std::set<Key> ref;
  for (int i = 0; i < 4'000; ++i) {
    const Key k = static_cast<Key>(1 + rng.below(120));  // tiny hot range
    switch (rng.below(4)) {
      case 0:
        ASSERT_EQ(f.sl->insert(f.team, k, k), ref.insert(k).second);
        break;
      case 1:
        ASSERT_EQ(f.sl->erase(f.team, k), ref.erase(k) > 0);
        break;
      default: {
        const auto v = f.sl->find(f.team, k);
        ASSERT_EQ(v.has_value(), ref.count(k) > 0);
        if (v.has_value()) {
          ASSERT_EQ(*v, k);
        }
      }
    }
  }
}

TEST(GfslEdge, HeightNeverExceedsTeamSizeBound) {
  Fixture f(8, 1u << 15);
  for (Key k = 1; k <= 10'000; ++k) ASSERT_TRUE(f.sl->insert(f.team, k, 0));
  EXPECT_LT(f.sl->current_height(), f.sl->max_levels());
  EXPECT_TRUE(f.sl->validate().ok);
}

}  // namespace
}  // namespace gfsl::core
