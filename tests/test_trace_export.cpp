// Tests for the Chrome trace-event exporter: the emitted JSON must be
// well-formed, preserve per-team event order, and render kOpBegin/kOpEnd
// pairs as duration slices.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>

#include "harness/runner.h"
#include "harness/workload.h"
#include "obs/trace_export.h"

namespace gfsl::obs {
namespace {

// --- a mini recursive-descent JSON validator (structure only) ---

struct JsonCheck {
  const std::string& s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool string() {
    ws();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;  // skip the escaped char
      ++i;
    }
    return eat('"');
  }
  bool number() {
    ws();
    const std::size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == '-' || s[i] == '+')) {
      ++i;
    }
    return i > start;
  }
  bool literal(const char* lit) {
    ws();
    const std::size_t len = std::string(lit).size();
    if (s.compare(i, len, lit) == 0) {
      i += len;
      return true;
    }
    return false;
  }
  bool value() {
    ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      if (!string() || !eat(':') || !value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }
  bool document() {
    if (!value()) return false;
    ws();
    return i == s.size();
  }
};

bool valid_json(const std::string& s) {
  JsonCheck c{s};
  return c.document();
}

TEST(JsonCheckSelfTest, AcceptsAndRejects) {
  EXPECT_TRUE(valid_json(R"({"a": [1, 2.5, "x", true], "b": {}})"));
  EXPECT_TRUE(valid_json("[]"));
  EXPECT_FALSE(valid_json(R"({"a": )"));
  EXPECT_FALSE(valid_json(R"({"a": 1} trailing)"));
  EXPECT_FALSE(valid_json(R"({"a" 1})"));
}

// --- exporter unit tests on synthetic rings ---

TEST(TraceExport, EmptySessionIsValidJson) {
  TraceSession ts;
  std::ostringstream os;
  ts.write_chrome_trace(os);
  const std::string j = os.str();
  EXPECT_TRUE(valid_json(j)) << j;
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("gfsl-trace-v1"), std::string::npos);
}

TEST(TraceExport, OpPairBecomesDurationSlice) {
  TraceSession ts;
  ts.ensure(2);
  simt::TeamTrace* t0 = ts.team(0);
  t0->record(simt::TraceEvent::kOpBegin, /*tag=*/0, /*key=*/42);
  t0->record(simt::TraceEvent::kChunkRead, 7, 1);
  t0->record(simt::TraceEvent::kOpEnd, 0, /*result=*/1);
  ts.team(1)->record(simt::TraceEvent::kRestart, 0, 0);

  std::ostringstream os;
  ts.write_chrome_trace(os);
  const std::string j = os.str();
  ASSERT_TRUE(valid_json(j)) << j;

  // Both teams announced by thread-name metadata.
  EXPECT_NE(j.find("\"team 0\""), std::string::npos);
  EXPECT_NE(j.find("\"team 1\""), std::string::npos);
  // The begin/end pair renders as a complete event named after the op tag,
  // carrying the key and the result.
  EXPECT_NE(j.find("\"name\": \"insert\", \"ph\": \"X\""), std::string::npos);
  EXPECT_NE(j.find("\"key\": 42"), std::string::npos);
  EXPECT_NE(j.find("\"result\": 1"), std::string::npos);
  // The interior record is a thread-scoped instant on team 0's row.
  EXPECT_NE(j.find("\"name\": \"chunk-read\", \"ph\": \"i\""),
            std::string::npos);
  EXPECT_NE(j.find("\"name\": \"restart\", \"ph\": \"i\""), std::string::npos);
  // Raw op-begin/op-end markers never leak into the output.
  EXPECT_EQ(j.find("op-begin"), std::string::npos);
  EXPECT_EQ(j.find("op-end"), std::string::npos);
}

TEST(TraceExport, PerTeamEventOrderRoundTrips) {
  TraceSession ts;
  ts.ensure(1);
  simt::TeamTrace* t0 = ts.team(0);
  // Three instants with distinct names: output order must match record order.
  t0->record(simt::TraceEvent::kDownStep, 1, 0);
  t0->record(simt::TraceEvent::kLateralStep, 2, 0);
  t0->record(simt::TraceEvent::kBacktrack, 3, 0);

  std::ostringstream os;
  ts.write_chrome_trace(os);
  const std::string j = os.str();
  ASSERT_TRUE(valid_json(j)) << j;
  const auto down = j.find("down-step");
  const auto lat = j.find("lateral-step");
  const auto back = j.find("backtrack");
  ASSERT_NE(down, std::string::npos);
  ASSERT_NE(lat, std::string::npos);
  ASSERT_NE(back, std::string::npos);
  EXPECT_LT(down, lat);
  EXPECT_LT(lat, back);
  // Sequence numbers are carried through for exact ordering downstream.
  EXPECT_NE(j.find("\"seq\": 0"), std::string::npos);
  EXPECT_NE(j.find("\"seq\": 1"), std::string::npos);
  EXPECT_NE(j.find("\"seq\": 2"), std::string::npos);
}

TEST(TraceExport, UnmatchedBeginIsKeptAsTruncatedSlice) {
  TraceSession ts;
  ts.ensure(1);
  ts.team(0)->record(simt::TraceEvent::kOpBegin, /*tag=*/2, /*key=*/9);

  std::ostringstream os;
  ts.write_chrome_trace(os);
  const std::string j = os.str();
  ASSERT_TRUE(valid_json(j)) << j;
  EXPECT_NE(j.find("\"name\": \"contains\", \"ph\": \"X\""),
            std::string::npos);
  EXPECT_NE(j.find("\"truncated\": 1"), std::string::npos);
}

// --- end-to-end: trace a real concurrent GFSL run ---

TEST(TraceExport, GfslRunProducesLoadableTrace) {
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = 32;
  cfg.pool_chunks = 1u << 14;
  core::Gfsl sl(cfg, &mem);

  harness::WorkloadConfig wl;
  wl.mix = harness::kMix_20_20_60;
  wl.key_range = 1'000;
  wl.num_ops = 2'000;
  wl.prefill = harness::default_prefill(wl.mix);
  wl.seed = 3;
  sl.bulk_load(harness::generate_prefill(wl));
  const auto ops = harness::generate_ops(wl);

  TraceSession ts;
  harness::RunConfig rc;
  rc.num_workers = 4;
  rc.trace = &ts;
  (void)harness::run_gfsl(sl, ops, rc, mem);

  ASSERT_EQ(ts.teams(), 4);
  std::ostringstream os;
  ts.write_chrome_trace(os);
  const std::string j = os.str();
  ASSERT_TRUE(valid_json(j)) << j.substr(0, 2'000);
  // Every worker shows up as a named timeline with op slices on it.
  for (int t = 0; t < 4; ++t) {
    EXPECT_NE(j.find("\"team " + std::to_string(t) + "\""), std::string::npos);
  }
  EXPECT_NE(j.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(j.find("\"name\": \"contains\""), std::string::npos);
}

}  // namespace
}  // namespace gfsl::obs
