// Causal check of the evaluation's central mechanism (§5.3): the GFSL/M&C
// crossover is driven by L2 residency.  "In the smaller range, the entire
// structure fits into the L2 cache in both implementations ... in larger key
// ranges, M&C requires frequent uncoalesced accesses to the global memory."
//
// If that story is right, then shrinking the simulated L2 must push the
// miss onset to smaller key ranges and growing it must delay it — for the
// same workloads and the same code.  These tests run the actual structures
// against different cache geometries and check exactly that.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/mc_skiplist.h"
#include "core/gfsl.h"
#include "device/device_memory.h"
#include "harness/runner.h"
#include "harness/workload.h"

namespace gfsl {
namespace {

double gfsl_dram_per_op(std::uint64_t l2_bytes, std::uint64_t range) {
  device::CacheConfig cc;
  cc.capacity_bytes = l2_bytes;
  device::DeviceMemory mem(cc);
  core::GfslConfig cfg;
  cfg.team_size = 32;
  cfg.pool_chunks = 1u << 16;
  core::Gfsl sl(cfg, &mem);

  harness::WorkloadConfig wl;
  wl.mix = harness::kContainsOnly;
  wl.key_range = range;
  wl.num_ops = 20'000;
  wl.prefill = harness::Prefill::FullRange;
  wl.seed = 11;
  sl.bulk_load(harness::generate_prefill(wl));
  const auto ops = harness::generate_ops(wl);

  harness::RunConfig rc;
  rc.num_workers = 2;
  // Warm pass (cold-start misses excluded), then measured pass.
  (void)harness::run_gfsl(sl, ops, rc, mem);
  mem.reset_stats();
  rc.flush_cache_before = false;
  const auto r = harness::run_gfsl(sl, ops, rc, mem);
  return static_cast<double>(r.kernel.mem.dram_transactions) /
         static_cast<double>(r.kernel.ops);
}

double mc_dram_per_op(std::uint64_t l2_bytes, std::uint64_t range) {
  device::CacheConfig cc;
  cc.capacity_bytes = l2_bytes;
  device::DeviceMemory mem(cc);
  baseline::McSkiplist::Config cfg;
  cfg.pool_slots = 1u << 22;
  baseline::McSkiplist sl(cfg, &mem);

  harness::WorkloadConfig wl;
  wl.mix = harness::kContainsOnly;
  wl.key_range = range;
  wl.num_ops = 20'000;
  wl.prefill = harness::Prefill::FullRange;
  wl.seed = 11;
  sl.bulk_load(harness::generate_prefill(wl), 5);
  const auto ops = harness::generate_ops(wl);

  harness::RunConfig rc;
  rc.num_workers = 2;
  (void)harness::run_mc(sl, ops, rc, mem);
  mem.reset_stats();
  rc.flush_cache_before = false;
  const auto r = harness::run_mc(sl, ops, rc, mem);
  return static_cast<double>(r.kernel.mem.dram_transactions) /
         static_cast<double>(r.kernel.ops);
}

constexpr std::uint64_t kMiB = 1024 * 1024;

TEST(CacheSensitivity, GfslResidentAtSmallRangeOnStockL2) {
  // 10K keys: the whole structure is a few hundred KB — near-zero DRAM.
  EXPECT_LT(gfsl_dram_per_op(1792 * 1024, 10'000), 0.05);
}

TEST(CacheSensitivity, ShrinkingL2MovesGfslMissOnsetLeft) {
  // Same 50K-key structure (~600 KB): resident on the stock 1.75 MB L2,
  // thrashing on a quarter-size one.
  const double stock = gfsl_dram_per_op(1792 * 1024, 50'000);
  const double tiny = gfsl_dram_per_op(448 * 1024, 50'000);
  EXPECT_LT(stock, 0.1);
  EXPECT_GT(tiny, stock + 0.5);
}

TEST(CacheSensitivity, GrowingL2MovesGfslMissOnsetRight) {
  // 500K keys (~6 MB of chunks): misses on the stock L2, resident on 16 MB.
  const double stock = gfsl_dram_per_op(1792 * 1024, 500'000);
  const double big = gfsl_dram_per_op(16 * kMiB, 500'000);
  EXPECT_GT(stock, 0.5);
  EXPECT_LT(big, 0.1);
}

TEST(CacheSensitivity, McSuffersMoreDramPerOpBeyondL2) {
  // Beyond residency, M&C's scattered per-node hops cost far more DRAM
  // transactions per operation than GFSL's coalesced chunk reads — the
  // whole point of the design (§5.3).
  const double g = gfsl_dram_per_op(1792 * 1024, 500'000);
  const double m = mc_dram_per_op(1792 * 1024, 500'000);
  EXPECT_GT(m, g * 2.0);
}

TEST(CacheSensitivity, McResidencyEndsEarlierThanGfsl) {
  // At an intermediate range the compact GFSL layout still fits where
  // M&C's node soup no longer does: GFSL ~8 B/key in 256 B chunks vs
  // M&C ~32 B/key scattered.  Pick the range where that separates.
  const std::uint64_t range = 120'000;
  const double g = gfsl_dram_per_op(1792 * 1024, range);
  const double m = mc_dram_per_op(1792 * 1024, range);
  EXPECT_GT(m, g + 0.5) << "GFSL " << g << " vs M&C " << m;
}

TEST(CacheSensitivity, DramPerOpMonotonicInRangeForMc) {
  const double a = mc_dram_per_op(1792 * 1024, 30'000);
  const double b = mc_dram_per_op(1792 * 1024, 120'000);
  const double c = mc_dram_per_op(1792 * 1024, 400'000);
  EXPECT_LE(a, b + 0.1);
  EXPECT_LT(b, c);
}

}  // namespace
}  // namespace gfsl
