// Unit tests: the analytic cost model's structural properties.  Absolute
// MOPS are calibration-dependent; what must hold is the *shape*: bandwidth
// vs latency bounds, monotonic responses, and the GFSL-vs-M&C asymmetries
// the thesis attributes to coalescing and divergence.
#include <gtest/gtest.h>

#include "model/cost_model.h"

namespace gfsl::model {
namespace {

KernelRun typical_gfsl_run(std::uint64_t ops, double dram_fraction) {
  KernelRun r;
  r.ops = ops;
  r.warp_steps = ops * 120;  // ~120 lockstep instructions per op
  r.mem_epochs = ops * 8;    // ~7 chunk reads + an atomic
  r.lock_spins = 0;
  r.mem.warp_reads = ops * 7;
  r.mem.transactions = ops * 15;
  r.mem.dram_transactions =
      static_cast<std::uint64_t>(static_cast<double>(r.mem.transactions) * dram_fraction);
  r.mem.l2_hits = r.mem.transactions - r.mem.dram_transactions;
  r.mem.atomics = ops;
  r.mem.bytes_moved = r.mem.transactions * 128;
  return r;
}

KernelRun typical_mc_run(std::uint64_t ops, double dram_fraction) {
  KernelRun r;
  r.ops = ops;
  r.mem_epochs = ops * 2;  // divergence-folded: ~55 hops per warp of 32 ops
  r.warp_steps = r.mem_epochs * 8;
  r.mem.lane_reads = ops * 40;  // uncoalesced node hops
  r.mem.transactions = ops * 40;
  r.mem.dram_transactions =
      static_cast<std::uint64_t>(static_cast<double>(r.mem.transactions) * dram_fraction);
  r.mem.l2_hits = r.mem.transactions - r.mem.dram_transactions;
  r.mem.atomics = ops / 10;
  r.mem.bytes_moved = r.mem.transactions * 128;
  return r;
}

class CostModelTest : public ::testing::Test {
 protected:
  CostModel cm;
  Occupancy occ;
};

TEST_F(CostModelTest, ZeroOpsIsZero) {
  const auto r = cm.throughput(KernelRun{}, occ.compute(kGfslKernel, 16));
  EXPECT_DOUBLE_EQ(r.mops, 0.0);
}

TEST_F(CostModelTest, MoreDramTrafficIsSlower) {
  const auto o = occ.compute(kGfslKernel, 16);
  const double cached = cm.throughput(typical_gfsl_run(100'000, 0.05), o).mops;
  const double dramy = cm.throughput(typical_gfsl_run(100'000, 0.9), o).mops;
  EXPECT_GT(cached, dramy);
}

TEST_F(CostModelTest, McIsBandwidthBoundAtLargeRanges) {
  // §5.2: "M&C ... bound by inefficient memory accesses to the point where
  // they cannot properly utilize available resources on the SM."
  const auto o = occ.compute(kMcKernel, 16);
  const auto r = cm.throughput(typical_mc_run(100'000, 0.85), o);
  EXPECT_TRUE(r.bandwidth_bound);
}

TEST_F(CostModelTest, GfslBeatsMcWhenDramDominates) {
  const double g = cm.throughput(typical_gfsl_run(100'000, 0.8),
                                 occ.compute(kGfslKernel, 16))
                       .mops;
  const double m =
      cm.throughput(typical_mc_run(100'000, 0.8), occ.compute(kMcKernel, 16))
          .mops;
  EXPECT_GT(g / m, 2.0);  // the thesis sees ~3x at the 1M range
}

TEST_F(CostModelTest, McCompetitiveWhenCacheResident) {
  // At 10K keys everything fits in L2 and M&C's 32-ops-per-warp parallelism
  // pays off (thesis: M&C up to 46% faster at 10K).
  const double g = cm.throughput(typical_gfsl_run(100'000, 0.0),
                                 occ.compute(kGfslKernel, 16))
                       .mops;
  const double m =
      cm.throughput(typical_mc_run(100'000, 0.0), occ.compute(kMcKernel, 16))
          .mops;
  EXPECT_GT(m, g * 0.8);  // at least competitive
}

TEST_F(CostModelTest, SpillInflatesBandwidthTime) {
  const auto run = typical_gfsl_run(100'000, 0.9);
  const auto lean = occ.compute(kGfslKernel, 16);   // 10% spill
  const auto heavy = occ.compute(kGfslKernel, 32);  // 53% spill
  const auto r_lean = cm.throughput(run, lean);
  const auto r_heavy = cm.throughput(run, heavy);
  EXPECT_GT(r_heavy.bandwidth_seconds, r_lean.bandwidth_seconds * 1.5);
}

TEST_F(CostModelTest, LockSpinsCost) {
  // Fully cache-resident (latency-bound) so the spin term is what moves.
  auto run = typical_gfsl_run(100'000, 0.0);
  const auto o = occ.compute(kGfslKernel, 16);
  const double clean = cm.throughput(run, o).mops;
  run.lock_spins = run.ops * 5;  // heavy contention
  const double contended = cm.throughput(run, o).mops;
  EXPECT_LT(contended, clean);
}

TEST_F(CostModelTest, AvgEpochLatencyInterpolates) {
  const auto o = occ.compute(kGfslKernel, 16);
  const auto hot = cm.throughput(typical_gfsl_run(1000, 0.0), o);
  const auto cold = cm.throughput(typical_gfsl_run(1000, 1.0), o);
  EXPECT_NEAR(hot.avg_epoch_latency, gtx970().l2_latency, 1e-6);
  EXPECT_NEAR(cold.avg_epoch_latency, gtx970().dram_latency, 1e-6);
}

TEST_F(CostModelTest, TransferOverheadScalesWithOps) {
  // §2.1: host<->device transfer is a bottleneck for small launches.
  const double tiny = cm.transfer_seconds(1'000, 8);
  const double big = cm.transfer_seconds(10'000'000, 8);
  EXPECT_GT(big, tiny * 100);
  // The launch constant floors tiny transfers.
  EXPECT_GE(tiny, gtx970().kernel_launch_seconds);
  // 10M ops x 9 B at ~12 GB/s is several milliseconds.
  EXPECT_GT(big, 5e-3);
  EXPECT_LT(big, 1e-1);
}

TEST_F(CostModelTest, CalibrationKnobs) {
  CostModel tweaked;
  tweaked.set_hiding_efficiency(0.1);
  const auto run = typical_gfsl_run(100'000, 0.1);
  const auto o = occ.compute(kGfslKernel, 16);
  EXPECT_LT(tweaked.throughput(run, o).mops, cm.throughput(run, o).mops);
}

}  // namespace
}  // namespace gfsl::model
