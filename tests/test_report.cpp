// Unit tests: table rendering and numeric formatting helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "harness/report.h"

namespace gfsl::harness {
namespace {

TEST(Report, FmtBasics) {
  EXPECT_EQ(fmt(12.34, 1), "12.3");
  EXPECT_EQ(fmt(12.36, 1), "12.4");
  EXPECT_EQ(fmt(5.0, 0), "5");
  EXPECT_EQ(fmt(std::nan(""), 1), "-");
}

TEST(Report, FmtCi) { EXPECT_EQ(fmt_ci(12.34, 0.56, 1), "12.3 ±0.6"); }

TEST(Report, FmtRange) {
  EXPECT_EQ(fmt_range(10'000), "10K");
  EXPECT_EQ(fmt_range(300'000), "300K");
  EXPECT_EQ(fmt_range(1'000'000), "1M");
  EXPECT_EQ(fmt_range(100'000'000), "100M");
  EXPECT_EQ(fmt_range(1'234), "1234");
}

TEST(Report, FmtPct) {
  EXPECT_EQ(fmt_pct(0.488), "48.8%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(Report, TableAlignsColumns) {
  Table t({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"widest-cell", "x", "y"});
  std::ostringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  // Header + separator + two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Every line has the same width (aligned columns).
  std::istringstream lines(out);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
}

TEST(Report, TablePadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream ss;
  t.print(ss);
  EXPECT_NE(ss.str().find("only-one"), std::string::npos);
}

TEST(Report, Csv) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_row({"3", "4"});
  std::ostringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(), "x,y\n1,2\n3,4\n");
}

TEST(Report, CsvQuotesCommas) {
  Table t({"mix", "value"});
  t.add_row({"10,10,80", "1.5"});
  std::ostringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(), "mix,value\n\"10,10,80\",1.5\n");
}

TEST(Report, CsvEscapesQuotesAndNewlines) {
  Table t({"a", "b"});
  t.add_row({"say \"hi\"", "line1\nline2"});
  std::ostringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(), "a,b\n\"say \"\"hi\"\"\",\"line1\nline2\"\n");
}

TEST(Report, CsvLeavesPlainCellsUnquoted) {
  Table t({"h"});
  t.add_row({"plain value with spaces"});
  std::ostringstream ss;
  t.print_csv(ss);
  EXPECT_EQ(ss.str(), "h\nplain value with spaces\n");
}

}  // namespace
}  // namespace gfsl::harness
