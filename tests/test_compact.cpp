// Tests for the between-kernel compaction extension (§4.1 future work).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/random.h"
#include "core/gfsl.h"
#include "device/device_memory.h"

namespace gfsl::core {
namespace {

using simt::Team;

struct Fixture {
  Fixture() : team(32, 0, 1) {
    GfslConfig cfg;
    cfg.team_size = 32;
    cfg.pool_chunks = 1u << 15;
    sl = std::make_unique<Gfsl>(cfg, &mem);
  }
  device::DeviceMemory mem;
  Team team;
  std::unique_ptr<Gfsl> sl;
};

TEST(Compact, PreservesContents) {
  Fixture f;
  std::set<Key> ref;
  Xoshiro256ss rng(1);
  for (int i = 0; i < 4'000; ++i) {
    const Key k = static_cast<Key>(1 + rng.below(2'000));
    if (rng.below(3) != 0) {
      if (f.sl->insert(f.team, k, k * 7)) ref.insert(k);
    } else {
      if (f.sl->erase(f.team, k)) ref.erase(k);
    }
  }
  const auto before = f.sl->collect();
  f.sl->compact();
  const auto after = f.sl->collect();
  EXPECT_EQ(before, after);
  EXPECT_EQ(after.size(), ref.size());
  const auto rep = f.sl->validate();
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(Compact, ReclaimsZombiesAndStaleChunks) {
  Fixture f;
  for (Key k = 1; k <= 3'000; ++k) ASSERT_TRUE(f.sl->insert(f.team, k, 0));
  for (Key k = 1; k <= 2'700; ++k) ASSERT_TRUE(f.sl->erase(f.team, k));
  const auto before = f.sl->chunks_allocated();
  const auto rep_before = f.sl->validate();
  ASSERT_GT(rep_before.zombie_chunks, 0u);

  f.sl->compact();

  EXPECT_LT(f.sl->chunks_allocated(), before);
  const auto rep = f.sl->validate();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.zombie_chunks, 0u);
  EXPECT_EQ(f.sl->size(), 300u);
}

TEST(Compact, StructureRemainsFullyOperational) {
  Fixture f;
  for (Key k = 1; k <= 1'000; ++k) f.sl->insert(f.team, k, k);
  f.sl->compact();
  for (Key k = 1; k <= 1'000; ++k) {
    ASSERT_EQ(f.sl->find(f.team, k).value_or(0), k);
  }
  EXPECT_TRUE(f.sl->insert(f.team, 5'000, 1));
  EXPECT_TRUE(f.sl->erase(f.team, 500));
  EXPECT_FALSE(f.sl->contains(f.team, 500));
  EXPECT_TRUE(f.sl->validate().ok);
}

TEST(Compact, EmptyStructure) {
  Fixture f;
  f.sl->compact();
  EXPECT_EQ(f.sl->size(), 0u);
  EXPECT_TRUE(f.sl->validate().ok);
  EXPECT_TRUE(f.sl->insert(f.team, 1, 1));
  EXPECT_TRUE(f.sl->contains(f.team, 1));
}

TEST(Compact, RepeatedCompactionIsIdempotent) {
  Fixture f;
  for (Key k = 10; k <= 5'000; k += 10) f.sl->insert(f.team, k, k);
  f.sl->compact();
  const auto once = f.sl->chunks_allocated();
  const auto contents = f.sl->collect();
  f.sl->compact();
  EXPECT_EQ(f.sl->chunks_allocated(), once);
  EXPECT_EQ(f.sl->collect(), contents);
  EXPECT_TRUE(f.sl->validate().ok);
}

TEST(Compact, RebuildsIdealHeightShape) {
  Fixture f;
  for (Key k = 1; k <= 8'000; ++k) f.sl->insert(f.team, k, 0);
  f.sl->compact();
  // Ideal p_chunk=1 shape: fan-out ~ chunk fill, so height ~ log_fill(n).
  const int h = f.sl->current_height();
  EXPECT_GE(h, 2);
  EXPECT_LE(h, 5);
  EXPECT_TRUE(f.sl->validate().ok);
}

}  // namespace
}  // namespace gfsl::core
