// Integration tests: the experiment drivers end-to-end (structure + prefill
// + warmup + measured run + cost model), plus pool-sizing policies.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace gfsl::harness {
namespace {

StructureSetup quick_setup() {
  StructureSetup s;
  s.num_workers = 2;
  s.warmup_ops = 500;
  return s;
}

WorkloadConfig quick_workload() {
  WorkloadConfig wl;
  wl.mix = kMix_10_10_80;
  wl.key_range = 5'000;
  wl.num_ops = 4'000;
  wl.prefill = Prefill::HalfRange;
  wl.seed = 21;
  return wl;
}

TEST(Experiment, SweepRanges) {
  const auto r = sweep_ranges(1'000'000);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r.front(), 10'000u);
  EXPECT_EQ(r.back(), 1'000'000u);
  EXPECT_EQ(sweep_ranges(100'000'000).size(), 9u);
}

TEST(Experiment, PoolSizingCoversWorkload) {
  WorkloadConfig wl = quick_workload();
  const auto chunks = gfsl_pool_chunks(wl, 32);
  // Must fit prefill (2.5K keys) plus the update stream comfortably.
  EXPECT_GT(chunks, 2'500u * 3 / 30);
  const auto slots = mc_pool_slots(wl);
  EXPECT_GT(slots, 2'500u * 4);
}

TEST(Experiment, PoolSizingCapsAtDeviceBudget) {
  WorkloadConfig wl = quick_workload();
  wl.key_range = 3'000'000'000ull;  // absurd range
  wl.prefill = Prefill::FullRange;
  const std::uint64_t gfsl_bytes =
      static_cast<std::uint64_t>(gfsl_pool_chunks(wl, 32)) * 256;
  const std::uint64_t mc_bytes =
      static_cast<std::uint64_t>(mc_pool_slots(wl)) * 8;
  const std::uint64_t budget = 3500ull * 1024 * 1024;
  EXPECT_LE(gfsl_bytes, budget);
  EXPECT_LE(mc_bytes, budget);
}

TEST(Experiment, MeasureGfslProducesModeledThroughput) {
  const auto m = measure_gfsl(quick_workload(), quick_setup());
  EXPECT_GT(m.model_mops, 0.0);
  EXPECT_FALSE(m.oom);
  EXPECT_GT(m.kernel.mem.warp_reads, 0u);
  EXPECT_GT(m.avg_chunks_per_traversal, 1.0);
}

TEST(Experiment, MeasureMcProducesModeledThroughput) {
  const auto m = measure_mc(quick_workload(), quick_setup());
  EXPECT_GT(m.model_mops, 0.0);
  EXPECT_FALSE(m.oom);
  EXPECT_GT(m.kernel.mem.lane_reads, 0u);
}

TEST(Experiment, RepeatSummarizes) {
  auto setup = quick_setup();
  setup.warmup_ops = 200;
  auto wl = quick_workload();
  wl.num_ops = 1'500;
  const auto rep = repeat_gfsl(wl, setup, 3);
  EXPECT_EQ(rep.mops.n, 3u);
  EXPECT_GT(rep.mops.mean, 0.0);
  EXPECT_GE(rep.mops.max, rep.mops.min);
}

TEST(Experiment, GfslBeatsMcAtLargeRangeShape) {
  // The headline result in miniature: at a range far beyond L2 capacity the
  // modeled GFSL throughput must exceed M&C's (Figure 5.2 shows 27%-1064%
  // above the 30K crossover).
  WorkloadConfig wl;
  wl.mix = kMix_10_10_80;
  wl.key_range = 400'000;  // ~3 MB GFSL / ~13 MB M&C: well past 1.75 MB L2
  wl.num_ops = 6'000;
  wl.prefill = Prefill::HalfRange;
  wl.seed = 5;
  auto setup = quick_setup();
  setup.warmup_ops = 2'000;
  const auto g = measure_gfsl(wl, setup);
  const auto m = measure_mc(wl, setup);
  EXPECT_GT(g.model_mops, m.model_mops);
}

}  // namespace
}  // namespace gfsl::harness
