// Unit tests: memory pool, cache simulator, coalescing/transaction counting.
#include <gtest/gtest.h>

#include <new>

#include "device/cache_sim.h"
#include "device/device_memory.h"
#include "device/memory_pool.h"

namespace gfsl::device {
namespace {

TEST(MemoryPool, BumpAllocationAndAddresses) {
  MemoryPool<std::uint64_t> pool(16);
  EXPECT_EQ(pool.alloc(), 0u);
  EXPECT_EQ(pool.alloc(), 1u);
  EXPECT_EQ(pool.allocated(), 2u);
  EXPECT_EQ(pool.device_address(3), 24u);
}

TEST(MemoryPool, ExhaustionReturnsNullIndex) {
  MemoryPool<int> pool(2);
  pool.alloc();
  pool.alloc();
  EXPECT_FALSE(pool.can_alloc());
  EXPECT_EQ(pool.alloc(), MemoryPool<int>::kNullIndex);
  pool.reset();
  EXPECT_TRUE(pool.can_alloc(2));
}

TEST(MemoryPool, FreeListRecyclesLifo) {
  MemoryPool<int> pool(2);
  const auto a = pool.alloc();
  const auto b = pool.alloc();
  EXPECT_EQ(pool.allocated(), 2u);
  pool.free(a);
  pool.free(b);
  EXPECT_EQ(pool.allocated(), 0u);
  EXPECT_EQ(pool.free_count(), 2u);
  EXPECT_TRUE(pool.can_alloc(2));
  // LIFO: the most recently freed index comes back first; the bump
  // high-water mark never moves once indices recycle.
  EXPECT_EQ(pool.alloc(), b);
  EXPECT_EQ(pool.alloc(), a);
  EXPECT_EQ(pool.high_water(), 2u);
  EXPECT_EQ(pool.alloc(), MemoryPool<int>::kNullIndex);
}

TEST(CacheSim, HitsAfterFirstTouch) {
  CacheSim cache;
  EXPECT_FALSE(cache.access(0));   // cold miss
  EXPECT_TRUE(cache.access(0));    // hit
  EXPECT_TRUE(cache.access(64));   // same 128 B line
  EXPECT_FALSE(cache.access(128)); // next line
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(CacheSim, LruEvictionWithinSet) {
  CacheConfig cfg;
  cfg.capacity_bytes = 2 * 128;  // 2 lines total
  cfg.line_bytes = 128;
  cfg.associativity = 2;  // one set, 2 ways
  CacheSim cache(cfg);
  EXPECT_EQ(cache.num_sets(), 1u);
  cache.access(0 * 128);
  cache.access(1 * 128);
  cache.access(0 * 128);       // refresh line 0
  cache.access(2 * 128);       // evicts line 1 (LRU)
  EXPECT_TRUE(cache.access(0 * 128));
  EXPECT_FALSE(cache.access(1 * 128));  // was evicted
}

TEST(CacheSim, CapacityWorkingSetBehavior) {
  // A working set within capacity hits on re-scan; a 2x working set thrashes.
  CacheConfig cfg;
  cfg.capacity_bytes = 64 * 128;
  CacheSim small(cfg);
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 64; ++i) small.access(static_cast<std::uint64_t>(i) * 128);
  }
  EXPECT_EQ(small.misses(), 64u);
  EXPECT_EQ(small.hits(), 64u);
}

TEST(CacheSim, InvalidateDropsEverything) {
  CacheSim cache;
  cache.access(0);
  cache.invalidate_all();
  EXPECT_FALSE(cache.access(0));
}

TEST(CacheSim, RejectsBadConfig) {
  CacheConfig cfg;
  cfg.line_bytes = 100;  // not a power of two
  EXPECT_THROW(CacheSim{cfg}, std::invalid_argument);
  cfg.line_bytes = 128;
  cfg.associativity = 0;
  EXPECT_THROW(CacheSim{cfg}, std::invalid_argument);
}

TEST(DeviceMemory, CoalescedChunkReadTransactions) {
  DeviceMemory mem;
  // A 256 B chunk read (GFSL-32) covers two 128 B lines -> 2 transactions.
  mem.warp_read(0, 256);
  auto s = mem.snapshot();
  EXPECT_EQ(s.warp_reads, 1u);
  EXPECT_EQ(s.transactions, 2u);
  EXPECT_EQ(s.dram_transactions, 2u);  // cold
  // A 128 B chunk read (GFSL-16) is a single transaction (§5.2).
  mem.reset_stats();
  mem.warp_read(512, 128);
  s = mem.snapshot();
  EXPECT_EQ(s.transactions, 1u);
}

TEST(DeviceMemory, UnalignedAccessSpansExtraLine) {
  DeviceMemory mem;
  mem.warp_read(64, 128);  // straddles two lines
  EXPECT_EQ(mem.snapshot().transactions, 2u);
}

TEST(DeviceMemory, LaneAccessesAreSingleTransactions) {
  DeviceMemory mem;
  // 32 scattered 8 B node reads (the M&C pattern) = 32 transactions...
  for (int i = 0; i < 32; ++i) {
    mem.lane_read(static_cast<std::uint64_t>(i) * 4096, 8);
  }
  auto s = mem.snapshot();
  EXPECT_EQ(s.lane_reads, 32u);
  EXPECT_EQ(s.transactions, 32u);
  // ...while the same 256 bytes in one coalesced access is 2.
  mem.reset_stats();
  mem.warp_read(1 << 20, 256);
  EXPECT_EQ(mem.snapshot().transactions, 2u);
}

TEST(DeviceMemory, L2HitClassification) {
  DeviceMemory mem;
  mem.warp_read(0, 128);
  mem.warp_read(0, 128);
  auto s = mem.snapshot();
  EXPECT_EQ(s.l2_hits, 1u);
  EXPECT_EQ(s.dram_transactions, 1u);
  EXPECT_EQ(s.bytes_moved, 256u);
}

TEST(DeviceMemory, AtomicsCountAndTouchCache) {
  DeviceMemory mem;
  mem.atomic_rmw(128);
  mem.atomic_rmw(128);
  auto s = mem.snapshot();
  EXPECT_EQ(s.atomics, 2u);
  EXPECT_EQ(s.l2_hits, 1u);
}

TEST(DeviceMemory, AccountingToggle) {
  DeviceMemory mem;
  mem.set_accounting(false);
  mem.warp_read(0, 256);
  mem.atomic_rmw(0);
  auto s = mem.snapshot();
  EXPECT_EQ(s.transactions, 0u);
  EXPECT_EQ(s.atomics, 0u);
  mem.set_accounting(true);
  mem.warp_read(0, 256);
  EXPECT_EQ(mem.snapshot().transactions, 2u);
}

TEST(DeviceMemory, StatsDiffOperator) {
  DeviceMemory mem;
  mem.warp_read(0, 256);
  const MemStats a = mem.snapshot();
  mem.warp_read(4096, 256);
  mem.atomic_rmw(0);
  const MemStats d = mem.snapshot() - a;
  EXPECT_EQ(d.warp_reads, 1u);
  EXPECT_EQ(d.atomics, 1u);
  EXPECT_EQ(d.transactions, 3u);
}

TEST(DeviceMemory, GTX970L2Geometry) {
  DeviceMemory mem;
  EXPECT_EQ(mem.cache().config().capacity_bytes, 1792ull * 1024);
  EXPECT_EQ(mem.cache().config().line_bytes, 128u);
}

}  // namespace
}  // namespace gfsl::device
