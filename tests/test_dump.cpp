// Tests for the quiescent structure dumper.
#include <gtest/gtest.h>

#include <sstream>

#include "core/gfsl.h"
#include "device/device_memory.h"

namespace gfsl::core {
namespace {

TEST(Dump, RendersLevelsKeysAndSentinels) {
  device::DeviceMemory mem;
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 10;
  Gfsl sl(cfg, &mem);
  simt::Team team(8, 0, 1);
  for (Key k = 10; k <= 200; k += 10) sl.insert(team, k, k);

  std::ostringstream ss;
  sl.dump(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("level 0:"), std::string::npos);
  EXPECT_NE(out.find("-inf"), std::string::npos);
  EXPECT_NE(out.find("max=inf"), std::string::npos);  // the last chunk
  EXPECT_NE(out.find("100"), std::string::npos);
  EXPECT_EQ(out.find("LOCKED"), std::string::npos);  // quiescent
  // Upper levels show down pointers as key->ref.
  if (sl.current_height() > 0) {
    EXPECT_NE(out.find("->"), std::string::npos);
  }
}

TEST(Dump, MarksZombies) {
  device::DeviceMemory mem;
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 10;
  Gfsl sl(cfg, &mem);
  simt::Team team(8, 0, 1);
  for (Key k = 1; k <= 60; ++k) sl.insert(team, k, 0);
  for (Key k = 1; k <= 55; ++k) sl.erase(team, k);
  ASSERT_GT(sl.validate().zombie_chunks, 0u);
  std::ostringstream ss;
  sl.dump(ss);
  EXPECT_NE(ss.str().find("ZOMBIE"), std::string::npos);
}

TEST(Dump, EmptyStructure) {
  device::DeviceMemory mem;
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 64;
  Gfsl sl(cfg, &mem);
  std::ostringstream ss;
  sl.dump(ss);
  EXPECT_NE(ss.str().find("level 0:"), std::string::npos);
  EXPECT_EQ(ss.str().find("level 1:"), std::string::npos);
}

}  // namespace
}  // namespace gfsl::core
