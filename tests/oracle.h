// Differential oracle for batch execution: a std::map reference model that
// replays operation sequences with per-op-API semantics.  Batch semantics
// promise per-key submission order (the stable sort + never-split-a-key
// sharding rule), and ops on distinct keys commute, so a batch's outcomes
// must match a sequential submission-order replay element-wise — which is
// exactly what this oracle produces.  Shared by tests/test_batch_*.cpp and
// `gfsl_fuzz --batch`.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/types.h"

namespace gfsl::testing {

class MapOracle {
 public:
  MapOracle() = default;

  /// Install the structure's prefill (mirrors Gfsl::bulk_load).
  void preload(const std::vector<std::pair<Key, Value>>& pairs) {
    for (const auto& [k, v] : pairs) map_[k] = v;
  }

  /// Apply one op with the per-op API's semantics; returns its boolean.
  bool apply(const Op& op) {
    switch (op.kind) {
      case OpKind::Insert:
        return map_.emplace(op.key, op.value).second;
      case OpKind::Delete:
        return map_.erase(op.key) > 0;
      case OpKind::Contains:
        return map_.count(op.key) > 0;
    }
    return false;
  }

  /// Submission-order replay: expected BatchOpStatus codes (0 = kFalse,
  /// 1 = kTrue) for every op of the batch.
  std::vector<std::uint8_t> apply_batch(const std::vector<Op>& ops) {
    std::vector<std::uint8_t> out;
    out.reserve(ops.size());
    for (const Op& op : ops) out.push_back(apply(op) ? 1 : 0);
    return out;
  }

  const std::map<Key, Value>& state() const { return map_; }

  /// Sorted <key, value> pairs — directly comparable with Gfsl::collect()
  /// and with scan() over the full key range.
  std::vector<std::pair<Key, Value>> collect() const {
    return {map_.begin(), map_.end()};
  }

  std::size_t size() const { return map_.size(); }

 private:
  std::map<Key, Value> map_;
};

/// Frozen point-in-time reference for MVCC snapshot scans: captures the
/// oracle's (or any collected) state at the instant a Gfsl::snapshot() is
/// taken.  However much traffic mutates the structure afterwards, scan_at()
/// over that snapshot must keep producing exactly expected_range() — the
/// oracle never changes, which is the whole contract.
class SnapshotOracle {
 public:
  explicit SnapshotOracle(const MapOracle& live) : frozen_(live.state()) {}
  explicit SnapshotOracle(const std::vector<std::pair<Key, Value>>& pairs)
      : frozen_(pairs.begin(), pairs.end()) {}

  /// What a consistent scan_at(s, lo, hi, limit) must return: the frozen
  /// pairs with keys in [lo, hi], ascending, truncated at `limit`.
  std::vector<std::pair<Key, Value>> expected_range(
      Key lo, Key hi, std::size_t limit = SIZE_MAX) const {
    std::vector<std::pair<Key, Value>> out;
    for (auto it = frozen_.lower_bound(lo);
         it != frozen_.end() && it->first <= hi && out.size() < limit; ++it) {
      out.push_back(*it);
    }
    return out;
  }

  const std::map<Key, Value>& state() const { return frozen_; }
  std::size_t size() const { return frozen_.size(); }

 private:
  std::map<Key, Value> frozen_;
};

}  // namespace gfsl::testing
