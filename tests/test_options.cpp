// Unit tests: command-line option parsing.
#include <gtest/gtest.h>

#include "harness/options.h"

namespace gfsl::harness {
namespace {

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, EqualsForm) {
  const auto o = parse({"--range=1000", "--p-chunk=0.5"});
  EXPECT_EQ(o.get_u64("range", 0), 1000u);
  EXPECT_DOUBLE_EQ(o.get_double("p-chunk", 0), 0.5);
}

TEST(Options, SpaceForm) {
  const auto o = parse({"--range", "42", "--mix", "10,10,80"});
  EXPECT_EQ(o.get_u64("range", 0), 42u);
  EXPECT_EQ(o.get("mix", ""), "10,10,80");
}

TEST(Options, BareFlag) {
  const auto o = parse({"--csv", "--range", "7"});
  EXPECT_TRUE(o.get_bool("csv"));
  EXPECT_FALSE(o.get_bool("quiet"));
  EXPECT_EQ(o.get_u64("range", 0), 7u);
}

TEST(Options, FlagFollowedByFlag) {
  const auto o = parse({"--csv", "--verbose"});
  EXPECT_TRUE(o.get_bool("csv"));
  EXPECT_TRUE(o.get_bool("verbose"));
}

TEST(Options, Positionals) {
  // A non-option token after "--name" binds as its value (space form), so
  // positionals are tokens not consumed that way.
  const auto o = parse({"input.txt", "more", "--csv"});
  ASSERT_EQ(o.positionals().size(), 2u);
  EXPECT_EQ(o.positionals()[0], "input.txt");
  EXPECT_EQ(o.positionals()[1], "more");
  EXPECT_TRUE(o.get_bool("csv"));
}

TEST(Options, Fallbacks) {
  const auto o = parse({});
  EXPECT_EQ(o.get("missing", "d"), "d");
  EXPECT_EQ(o.get_u64("missing", 9), 9u);
  EXPECT_DOUBLE_EQ(o.get_double("missing", 1.5), 1.5);
}

TEST(Options, MalformedNumbersFallBack) {
  const auto o = parse({"--range", "abc"});
  EXPECT_EQ(o.get_u64("range", 3), 3u);
}

TEST(Options, UnknownDetection) {
  const auto o = parse({"--range", "1", "--typo-opt", "x"});
  const auto u = o.unknown({"range"});
  ASSERT_EQ(u.size(), 1u);
  EXPECT_EQ(u[0], "typo-opt");
}

TEST(Options, BareDashDashThrows) {
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(Options, BoolSpellings) {
  const auto o = parse({"--a=true", "--b=1", "--c=yes", "--d=false"});
  EXPECT_TRUE(o.get_bool("a"));
  EXPECT_TRUE(o.get_bool("b"));
  EXPECT_TRUE(o.get_bool("c"));
  EXPECT_FALSE(o.get_bool("d"));
}

}  // namespace
}  // namespace gfsl::harness
