// gfsl-bench-v1 schema round-trip and the bench_compare gating logic.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "harness/bench_schema.h"
#include "obs/json_value.h"

using namespace gfsl;
using namespace gfsl::harness;

namespace {

BenchMetric make_metric(const std::string& name, std::vector<double> samples,
                        Better better = Better::kHigher, bool gate = true) {
  BenchMetric m;
  m.name = name;
  m.unit = "mops";
  m.better = better;
  m.gate = gate;
  m.samples = std::move(samples);
  return m;
}

BenchReport make_report(std::vector<BenchMetric> metrics) {
  BenchReport r;
  r.campaign = "unit_test";
  r.metrics = std::move(metrics);
  return r;
}

std::string to_json(const BenchReport& r) {
  std::ostringstream os;
  write_bench_json(os, r);
  return os.str();
}

}  // namespace

TEST(BenchMetric, DerivedStats) {
  const auto m = make_metric("x", {2.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(m.mean(), 4.0);
  EXPECT_DOUBLE_EQ(m.stddev(), 2.0);  // sample stddev of {2,4,6}
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 6.0);
  EXPECT_DOUBLE_EQ(m.percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(m.percentile(50.0), 4.0);
  EXPECT_DOUBLE_EQ(m.percentile(100.0), 6.0);

  const BenchMetric empty;
  EXPECT_DOUBLE_EQ(empty.mean(), 0.0);
  EXPECT_DOUBLE_EQ(empty.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);
}

TEST(BenchSchema, RoundTripPreservesEverything) {
  BenchReport r = make_report({
      make_metric("gfsl32_mops.r10000", {91.25, 92.5, 90.0}),
      make_metric("host_ns.micro", {120.0, 130.0}, Better::kLower, false),
  });
  r.set_config("ops", "6000");
  r.set_config("quick", "1");
  r.stamp_environment();

  BenchReport back;
  std::string err;
  ASSERT_TRUE(read_bench_json(to_json(r), back, err)) << err;
  EXPECT_EQ(back.campaign, "unit_test");
  // The parser re-keys objects in sorted order; compare as sets.
  auto sorted = [](std::vector<std::pair<std::string, std::string>> kv) {
    std::sort(kv.begin(), kv.end());
    return kv;
  };
  EXPECT_EQ(sorted(back.config), sorted(r.config));
  EXPECT_EQ(sorted(back.environment), sorted(r.environment));
  ASSERT_EQ(back.metrics.size(), 2u);
  const BenchMetric* m = back.find("gfsl32_mops.r10000");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->unit, "mops");
  EXPECT_EQ(m->better, Better::kHigher);
  EXPECT_TRUE(m->gate);
  EXPECT_EQ(m->samples, (std::vector<double>{91.25, 92.5, 90.0}));
  const BenchMetric* h = back.find("host_ns.micro");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->better, Better::kLower);
  EXPECT_FALSE(h->gate);
}

TEST(BenchSchema, RejectsWrongSchemaAndGarbage) {
  BenchReport out;
  std::string err;
  EXPECT_FALSE(read_bench_json("{\"schema\": \"something-else\"}", out, err));
  EXPECT_NE(err.find("schema"), std::string::npos);
  EXPECT_FALSE(read_bench_json("not json at all", out, err));
  EXPECT_FALSE(read_bench_json(
      "{\"schema\": \"gfsl-bench-v1\", \"campaign\": \"c\"}", out, err));
  EXPECT_NE(err.find("metrics"), std::string::npos);
}

TEST(BenchSchema, SummaryOnlyBaselineReconstructsPseudoSample) {
  // A degraded baseline that kept only the summary stats must still compare.
  const std::string text =
      "{\"schema\": \"gfsl-bench-v1\", \"campaign\": \"c\", \"metrics\": "
      "[{\"name\": \"m\", \"better\": \"higher\", \"gate\": true, "
      "\"mean\": 42.5}]}";
  BenchReport out;
  std::string err;
  ASSERT_TRUE(read_bench_json(text, out, err)) << err;
  ASSERT_EQ(out.metrics.size(), 1u);
  EXPECT_EQ(out.metrics[0].samples, std::vector<double>{42.5});
  EXPECT_DOUBLE_EQ(out.metrics[0].stddev(), 0.0);
}

TEST(BenchCompare, IdenticalReportsPass) {
  const auto r = make_report({make_metric("m", {100.0, 101.0, 99.0})});
  const auto res = compare_reports(r, r);
  EXPECT_TRUE(res.ok());
  ASSERT_EQ(res.deltas.size(), 1u);
  EXPECT_EQ(res.deltas[0].verdict, Verdict::kOk);
}

TEST(BenchCompare, FlagsInjectedRegression) {
  const auto base = make_report({make_metric("m", {100.0, 101.0, 99.0})});
  const auto cur = make_report({make_metric("m", {60.0, 61.0, 59.0})});
  const auto res = compare_reports(base, cur);
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.regressions, 1);
  ASSERT_EQ(res.deltas.size(), 1u);
  EXPECT_EQ(res.deltas[0].verdict, Verdict::kRegressed);
  // The default rel_thresh=0.25 floor dominates tiny stddevs here.
  EXPECT_NEAR(res.deltas[0].threshold, 25.0, 1.0);
}

TEST(BenchCompare, ImprovementIsNotARegression) {
  const auto base = make_report({make_metric("m", {100.0, 100.0})});
  const auto cur = make_report({make_metric("m", {150.0, 150.0})});
  const auto res = compare_reports(base, cur);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.improvements, 1);
  EXPECT_EQ(res.deltas[0].verdict, Verdict::kImproved);
}

TEST(BenchCompare, LowerIsBetterFlipsTheWorseDirection) {
  const auto base =
      make_report({make_metric("in_use", {100.0, 100.0}, Better::kLower)});
  const auto up = make_report({make_metric("in_use", {200.0, 200.0},
                                           Better::kLower)});
  EXPECT_FALSE(compare_reports(base, up).ok());
  const auto down = make_report({make_metric("in_use", {50.0, 50.0},
                                             Better::kLower)});
  EXPECT_TRUE(compare_reports(base, down).ok());
}

TEST(BenchCompare, NoiseWindowSuppressesJitteryShifts) {
  // stddev 10 → k=4 gives a 40-wide window, above the 25% relative floor:
  // a 30-point drop is within noise and must not flag.
  const auto base =
      make_report({make_metric("m", {90.0, 100.0, 110.0})});  // σ = 10
  const auto cur = make_report({make_metric("m", {60.0, 70.0, 80.0})});
  const auto res = compare_reports(base, cur);
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.deltas[0].verdict, Verdict::kOk);
  EXPECT_NEAR(res.deltas[0].threshold, 40.0, 0.5);
}

TEST(BenchCompare, MissingGatedMetricFailsTheGate) {
  const auto base = make_report({make_metric("m", {100.0})});
  const auto cur = make_report({});
  const auto res = compare_reports(base, cur);
  EXPECT_FALSE(res.ok());
  ASSERT_EQ(res.deltas.size(), 1u);
  EXPECT_EQ(res.deltas[0].verdict, Verdict::kMissing);
}

TEST(BenchCompare, UngatedMetricsAreIgnoredByDefault) {
  const auto base = make_report(
      {make_metric("host", {100.0}, Better::kLower, /*gate=*/false)});
  const auto cur = make_report(
      {make_metric("host", {500.0}, Better::kLower, /*gate=*/false)});
  const auto res = compare_reports(base, cur);
  EXPECT_TRUE(res.ok());
  EXPECT_TRUE(res.deltas.empty());

  CompareOptions all;
  all.gated_only = false;
  const auto wide = compare_reports(base, cur, all);
  EXPECT_TRUE(wide.ok());  // ungated never fails, even when shown
  ASSERT_EQ(wide.deltas.size(), 1u);
}

TEST(BenchCompare, NewMetricIsInformational) {
  const auto base = make_report({});
  const auto cur = make_report({make_metric("m", {100.0})});
  const auto res = compare_reports(base, cur);
  EXPECT_TRUE(res.ok());
  ASSERT_EQ(res.deltas.size(), 1u);
  EXPECT_EQ(res.deltas[0].verdict, Verdict::kNew);
}

TEST(JsonValue, ParsesNestedDocuments) {
  const auto r = obs::json_parse(
      "{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": \"x\\ny\", \"d\": true}, "
      "\"e\": null}");
  ASSERT_TRUE(r.ok) << r.error;
  const obs::JsonValue* a = r.value.get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_DOUBLE_EQ(a->as_array()[2].as_number(), -300.0);
  const obs::JsonValue* b = r.value.get("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->string_or("c", ""), "x\ny");
  EXPECT_TRUE(b->get("d")->as_bool());
  EXPECT_TRUE(r.value.get("e")->is_null());
}

TEST(JsonValue, RejectsTrailingGarbageAndBadSyntax) {
  EXPECT_FALSE(obs::json_parse("{} trailing").ok);
  EXPECT_FALSE(obs::json_parse("{\"a\": }").ok);
  EXPECT_FALSE(obs::json_parse("[1, 2").ok);
  EXPECT_FALSE(obs::json_parse("").ok);
}

TEST(JsonValue, PathologicalNestingFailsGracefullyNotFatally) {
  // The recursive-descent parser guards its depth; adversarial input (a
  // crafted postmortem bundle, a corrupted bench report) must come back as a
  // parse error naming the limit, never a stack overflow.  10k opens is ~40x
  // the limit — deep enough that an unguarded recursion would crash.
  const std::string deep_arrays(10'000, '[');
  const auto ra = obs::json_parse(deep_arrays);
  EXPECT_FALSE(ra.ok);
  EXPECT_NE(ra.error.find("depth"), std::string::npos) << ra.error;

  std::string deep_objects;
  for (int i = 0; i < 10'000; ++i) deep_objects += "{\"k\":";
  const auto ro = obs::json_parse(deep_objects);
  EXPECT_FALSE(ro.ok);
  EXPECT_NE(ro.error.find("depth"), std::string::npos) << ro.error;

  // Nesting *at* the limit still parses: the guard rejects only beyond it.
  const int kMaxDepth = 256;  // mirrors json_value.cpp
  std::string at_limit(static_cast<std::size_t>(kMaxDepth), '[');
  at_limit.append(static_cast<std::size_t>(kMaxDepth), ']');
  EXPECT_TRUE(obs::json_parse(at_limit).ok);
  std::string over_limit(static_cast<std::size_t>(kMaxDepth) + 1, '[');
  over_limit.append(static_cast<std::size_t>(kMaxDepth) + 1, ']');
  EXPECT_FALSE(obs::json_parse(over_limit).ok);
}
