// Unit + integration tests for the telemetry layer: histogram bucketing and
// percentiles, shard merging, the JSON run report, and end-to-end metric
// collection from a concurrent GFSL run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <vector>

#include "common/random.h"
#include "harness/runner.h"
#include "harness/workload.h"
#include "obs/metrics.h"

namespace gfsl::obs {
namespace {

TEST(Histogram, BucketEdges) {
  // bucket b holds [2^(b-1), 2^b); value 0 is its own bucket.
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(7), 3);
  EXPECT_EQ(Histogram::bucket_of(8), 4);
  EXPECT_EQ(Histogram::bucket_of(UINT64_MAX), 64);

  EXPECT_EQ(Histogram::bucket_lo(0), 0u);
  EXPECT_EQ(Histogram::bucket_hi(0), 0u);
  EXPECT_EQ(Histogram::bucket_lo(1), 1u);
  EXPECT_EQ(Histogram::bucket_hi(1), 1u);
  EXPECT_EQ(Histogram::bucket_lo(3), 4u);
  EXPECT_EQ(Histogram::bucket_hi(3), 7u);
  EXPECT_EQ(Histogram::bucket_lo(64), std::uint64_t{1} << 63);
  EXPECT_EQ(Histogram::bucket_hi(64), UINT64_MAX);

  // Every value lands inside its bucket's [lo, hi] span.
  for (const std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 1000ull,
                                (1ull << 40) - 1, 1ull << 40}) {
    const int b = Histogram::bucket_of(v);
    EXPECT_GE(v, Histogram::bucket_lo(b)) << v;
    EXPECT_LE(v, Histogram::bucket_hi(b)) << v;
  }
}

TEST(Histogram, RecordAccumulates) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);

  h.record(0);
  h.record(1);
  h.record(3);
  h.record(12);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 16u);
  EXPECT_EQ(h.max(), 12u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_EQ(h.bucket(0), 1u);  // the zero
  EXPECT_EQ(h.bucket(1), 1u);  // 1
  EXPECT_EQ(h.bucket(2), 1u);  // 3
  EXPECT_EQ(h.bucket(4), 1u);  // 12
}

TEST(Histogram, PercentileWithinBucketBoundsOfOracle) {
  // Log-bucketed percentiles cannot be exact, but each estimate must stay
  // within the bucket covering the true order statistic — i.e. within a
  // factor of 2 of the sorted-vector oracle.
  Histogram h;
  std::vector<std::uint64_t> vals;
  Xoshiro256ss rng(42);
  for (int i = 0; i < 10'000; ++i) {
    const std::uint64_t v = rng.below(100'000) + 1;
    h.record(v);
    vals.push_back(v);
  }
  std::sort(vals.begin(), vals.end());
  for (const double p : {50.0, 90.0, 99.0}) {
    const std::size_t rank = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(vals.size() - 1));
    const double oracle = static_cast<double>(vals[rank]);
    const double est = h.percentile(p);
    EXPECT_GE(est, oracle / 2.0) << "p" << p;
    EXPECT_LE(est, oracle * 2.0) << "p" << p;
  }
  // p100 is exact: the recorded max caps the top bucket.
  EXPECT_DOUBLE_EQ(h.percentile(100.0), static_cast<double>(vals.back()));
}

TEST(Histogram, PercentileSingleValue) {
  Histogram h;
  for (int i = 0; i < 5; ++i) h.record(100);
  // All mass in one bucket capped by max: every percentile <= 100 and within
  // the bucket [64, 127].
  for (const double p : {1.0, 50.0, 99.0, 100.0}) {
    EXPECT_GE(h.percentile(p), 64.0);
    EXPECT_LE(h.percentile(p), 100.0);
  }
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 100.0);
}

TEST(Histogram, EmptyHistogramIsAllZero) {
  const Histogram h;
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
  for (const double p : {-5.0, 0.0, 50.0, 100.0, 150.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 0.0) << p;
  }
}

TEST(Histogram, PercentileEndpointsAreExactMinAndMax) {
  Histogram h;
  for (const std::uint64_t v : {3ull, 17ull, 900ull, 12'345ull}) h.record(v);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 12'345u);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 12'345.0);
  // Out-of-range p clamps to the endpoints instead of extrapolating.
  EXPECT_DOUBLE_EQ(h.percentile(-1.0), 3.0);
  EXPECT_DOUBLE_EQ(h.percentile(250.0), 12'345.0);
  // Interpolated estimates never escape [min, max].
  for (double p = 5.0; p < 100.0; p += 5.0) {
    EXPECT_GE(h.percentile(p), 3.0) << p;
    EXPECT_LE(h.percentile(p), 12'345.0) << p;
  }
}

TEST(Histogram, TopBucketStaysFiniteAtUint64Max) {
  // Bucket 64 spans [2^63, UINT64_MAX]; naive lo + (hi - lo + 1) * frac
  // arithmetic overflows there.  Estimates must stay finite and inside the
  // recorded [min, max].
  Histogram h;
  h.record(UINT64_MAX);
  h.record(UINT64_MAX - 1);
  h.record(std::uint64_t{1} << 63);
  for (const double p : {0.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
    const double est = h.percentile(p);
    EXPECT_GE(est, static_cast<double>(std::uint64_t{1} << 63)) << p;
    EXPECT_LE(est, static_cast<double>(UINT64_MAX)) << p;
  }
  EXPECT_DOUBLE_EQ(h.percentile(0.0),
                   static_cast<double>(std::uint64_t{1} << 63));
}

TEST(Histogram, StddevMatchesClosedForm) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
  h.record(10);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);  // < 2 samples
  h.record(20);
  h.record(30);
  // Population stddev of {10, 20, 30} = sqrt(200/3).
  EXPECT_NEAR(h.stddev(), std::sqrt(200.0 / 3.0), 1e-9);

  Histogram flat;
  for (int i = 0; i < 100; ++i) flat.record(42);
  EXPECT_DOUBLE_EQ(flat.stddev(), 0.0);
}

TEST(Histogram, MergePreservesMinMaxAndMoments) {
  Histogram a, b;
  a.record(100);
  b.record(2);
  b.record(400);
  a += b;
  EXPECT_EQ(a.min(), 2u);
  EXPECT_EQ(a.max(), 400u);
  Histogram ref;
  ref.record(100);
  ref.record(2);
  ref.record(400);
  EXPECT_DOUBLE_EQ(a.stddev(), ref.stddev());
  EXPECT_DOUBLE_EQ(a.percentile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(a.percentile(100.0), 400.0);
}

TEST(Histogram, MergeAddsMass) {
  Histogram a, b;
  a.record(1);
  a.record(100);
  b.record(7);
  b.record(5'000);
  a += b;
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 5'108u);
  EXPECT_EQ(a.max(), 5'000u);
  EXPECT_EQ(a.bucket(Histogram::bucket_of(7)), 1u);
  EXPECT_EQ(a.bucket(Histogram::bucket_of(5'000)), 1u);
}

TEST(MetricsShard, MergeSumsCountersAndHists) {
  MetricsShard a, b;
  a.add(kOpInsertCount, 3);
  a.add(kLockSpins, 10);
  a.record(kInsertWallNs, 500);
  b.add(kOpInsertCount, 2);
  b.add(kZombieEncounters);
  b.record(kInsertWallNs, 700);
  b.record(kEraseWallNs, 9);

  a += b;
  EXPECT_EQ(a.counter(kOpInsertCount), 5u);
  EXPECT_EQ(a.counter(kLockSpins), 10u);
  EXPECT_EQ(a.counter(kZombieEncounters), 1u);
  EXPECT_EQ(a.hist(kInsertWallNs).count(), 2u);
  EXPECT_EQ(a.hist(kInsertWallNs).sum(), 1'200u);
  EXPECT_EQ(a.hist(kEraseWallNs).count(), 1u);
}

TEST(MetricsRegistry, MergedFoldsAllShards) {
  MetricsRegistry reg(4);
  ASSERT_EQ(reg.shards(), 4);
  for (int i = 0; i < 4; ++i) {
    reg.shard(i).add(kOpContainsCount, static_cast<std::uint64_t>(i + 1));
    reg.shard(i).record(kContainsWallNs, 10);
  }
  const MetricsShard all = reg.merged();
  EXPECT_EQ(all.counter(kOpContainsCount), 10u);
  EXPECT_EQ(all.hist(kContainsWallNs).count(), 4u);
}

TEST(MetricsRegistry, AtLeastOneShard) {
  MetricsRegistry reg(0);
  EXPECT_EQ(reg.shards(), 1);
}

TEST(MetricsRegistry, JsonReportHasSchemaAndAllSections) {
  MetricsRegistry reg(2);
  reg.shard(0).add(kOpInsertCount, 7);
  reg.shard(1).record(kInsertWallNs, 321);
  reg.set_gauge(kHeight, 3.0);
  reg.set_gauge(kChunkOccupancy, 0.5);
  reg.set_info("structure", "gfsl");
  reg.set_info("mix", "10,10,80");
  reg.set_info("mix", "5,5,90");  // last write wins

  std::ostringstream ss;
  reg.write_json(ss);
  const std::string j = ss.str();

  EXPECT_NE(j.find("\"schema\": \"gfsl-metrics-v1\""), std::string::npos);
  EXPECT_NE(j.find("\"info\""), std::string::npos);
  EXPECT_NE(j.find("\"counters\""), std::string::npos);
  EXPECT_NE(j.find("\"gauges\""), std::string::npos);
  EXPECT_NE(j.find("\"histograms\""), std::string::npos);
  EXPECT_NE(j.find("\"insert_count\": 7"), std::string::npos);
  EXPECT_NE(j.find("\"height\": 3"), std::string::npos);
  EXPECT_NE(j.find("\"structure\": \"gfsl\""), std::string::npos);
  EXPECT_NE(j.find("\"5,5,90\""), std::string::npos);
  EXPECT_EQ(j.find("\"10,10,80\""), std::string::npos);
  // Every declared metric name appears.
  for (int i = 0; i < kCounterIdCount; ++i) {
    const auto name = counter_name(static_cast<CounterId>(i));
    EXPECT_NE(j.find("\"" + std::string(name) + "\""), std::string::npos)
        << name;
  }
  for (int i = 0; i < kGaugeIdCount; ++i) {
    const auto name = gauge_name(static_cast<GaugeId>(i));
    EXPECT_NE(j.find("\"" + std::string(name) + "\""), std::string::npos)
        << name;
  }
}

// --- end-to-end: a concurrent GFSL run populates the registry ---

harness::WorkloadConfig small_workload() {
  harness::WorkloadConfig wl;
  wl.mix = harness::kMix_20_20_60;
  wl.key_range = 2'000;
  wl.num_ops = 6'000;
  wl.prefill = harness::default_prefill(wl.mix);
  wl.seed = 11;
  return wl;
}

TEST(MetricsEndToEnd, GfslRunPopulatesRegistry) {
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = 32;
  cfg.pool_chunks = 1u << 14;
  core::Gfsl sl(cfg, &mem);

  const auto wl = small_workload();
  sl.bulk_load(harness::generate_prefill(wl));
  const auto ops = harness::generate_ops(wl);

  MetricsRegistry reg(4);
  harness::RunConfig rc;
  rc.num_workers = 4;
  rc.metrics = &reg;
  const auto r = harness::run_gfsl(sl, ops, rc, mem);

  const MetricsShard all = reg.merged();
  // Per-op counts match the workload mix exactly.
  std::uint64_t inserts = 0, erases = 0, contains = 0;
  for (const auto& op : ops) {
    switch (op.kind) {
      case OpKind::Insert: ++inserts; break;
      case OpKind::Delete: ++erases; break;
      case OpKind::Contains: ++contains; break;
    }
  }
  EXPECT_EQ(all.counter(kOpInsertCount), inserts);
  EXPECT_EQ(all.counter(kOpEraseCount), erases);
  EXPECT_EQ(all.counter(kOpContainsCount), contains);
  EXPECT_EQ(all.counter(kOpInsertTrue) + all.counter(kOpEraseTrue) +
                all.counter(kOpContainsTrue),
            r.ops_true);

  // Latency histograms: one sample per op, both in wall time and steps.
  EXPECT_EQ(all.hist(kInsertWallNs).count(), inserts);
  EXPECT_EQ(all.hist(kEraseWallNs).count(), erases);
  EXPECT_EQ(all.hist(kContainsWallNs).count(), contains);
  EXPECT_EQ(all.hist(kInsertSteps).count(), inserts);
  EXPECT_GT(all.hist(kContainsSteps).mean(), 0.0);

  // Updates take chunk locks; holds are measured in scheduler steps.
  EXPECT_GT(all.counter(kLockAcquires), 0u);
  EXPECT_GT(all.counter(kLockHoldSteps), 0u);
  EXPECT_GT(all.hist(kLockHoldStepsHist).count(), 0u);

  // Folded team counters match the runner's own totals.
  EXPECT_EQ(all.counter(kInstructions), r.team_totals.instructions);
  EXPECT_EQ(all.counter(kBallots), r.team_totals.ballots);
  EXPECT_EQ(all.counter(kShfls), r.team_totals.shfls);
  EXPECT_EQ(all.counter(kLockSpins), r.team_totals.lock_spins);
}

TEST(MetricsEndToEnd, RegistryWithTooFewShardsThrows) {
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = 16;
  cfg.pool_chunks = 1u << 12;
  core::Gfsl sl(cfg, &mem);

  const auto wl = small_workload();
  const auto ops = harness::generate_ops(wl);
  MetricsRegistry reg(1);
  harness::RunConfig rc;
  rc.num_workers = 4;
  rc.metrics = &reg;
  EXPECT_THROW((void)harness::run_gfsl(sl, ops, rc, mem),
               std::invalid_argument);
}

TEST(MetricsEndToEnd, McRunRecordsOpLatencies) {
  device::DeviceMemory mem;
  baseline::McSkiplist::Config cfg;
  cfg.pool_slots = 1u << 18;
  baseline::McSkiplist sl(cfg, &mem);

  const auto wl = small_workload();
  sl.bulk_load(harness::generate_prefill(wl), 5);
  const auto ops = harness::generate_ops(wl);

  MetricsRegistry reg(2);
  harness::RunConfig rc;
  rc.num_workers = 2;
  rc.metrics = &reg;
  (void)harness::run_mc(sl, ops, rc, mem);

  const MetricsShard all = reg.merged();
  EXPECT_EQ(all.counter(kOpInsertCount) + all.counter(kOpEraseCount) +
                all.counter(kOpContainsCount),
            ops.size());
  EXPECT_EQ(all.hist(kContainsWallNs).count(), all.counter(kOpContainsCount));
  EXPECT_GT(all.hist(kContainsSteps).mean(), 0.0);
}

TEST(MetricsEndToEnd, DisabledRunLeavesNoTrace) {
  // The null-registry fast path: no metrics attached, nothing recorded
  // anywhere (and nothing crashes).
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = 16;
  cfg.pool_chunks = 1u << 12;
  core::Gfsl sl(cfg, &mem);

  const auto wl = small_workload();
  sl.bulk_load(harness::generate_prefill(wl));
  const auto ops = harness::generate_ops(wl);
  harness::RunConfig rc;
  rc.num_workers = 2;
  const auto r = harness::run_gfsl(sl, ops, rc, mem);
  EXPECT_EQ(r.kernel.ops, ops.size());
  EXPECT_TRUE(sl.validate(false).ok);
}

}  // namespace
}  // namespace gfsl::obs
