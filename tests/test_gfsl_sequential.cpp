// Integration tests: single-team GFSL against a std::map reference, covering
// growth across levels, splits, merges, zombies, backtracks and max-field
// maintenance.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "core/gfsl.h"
#include "device/device_memory.h"

namespace gfsl::core {
namespace {

using simt::Team;

struct Fixture {
  explicit Fixture(int team_size = 32, std::uint32_t pool = 1u << 16,
                   double p_chunk = 1.0)
      : mem(), team(team_size, 0, 42) {
    GfslConfig cfg;
    cfg.team_size = team_size;
    cfg.pool_chunks = pool;
    cfg.p_chunk = p_chunk;
    sl = std::make_unique<Gfsl>(cfg, &mem);
  }
  device::DeviceMemory mem;
  Team team;
  std::unique_ptr<Gfsl> sl;
};

TEST(GfslSequential, EmptyStructure) {
  Fixture f;
  EXPECT_FALSE(f.sl->contains(f.team, 5));
  EXPECT_FALSE(f.sl->erase(f.team, 5));
  EXPECT_EQ(f.sl->size(), 0u);
  EXPECT_EQ(f.sl->current_height(), 0);
  const auto rep = f.sl->validate();
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(GfslSequential, SingleInsertFindDelete) {
  Fixture f;
  EXPECT_TRUE(f.sl->insert(f.team, 10, 99));
  EXPECT_TRUE(f.sl->contains(f.team, 10));
  EXPECT_EQ(f.sl->find(f.team, 10).value_or(0), 99u);
  EXPECT_FALSE(f.sl->contains(f.team, 9));
  EXPECT_FALSE(f.sl->contains(f.team, 11));
  EXPECT_TRUE(f.sl->erase(f.team, 10));
  EXPECT_FALSE(f.sl->contains(f.team, 10));
  EXPECT_TRUE(f.sl->validate().ok);
}

TEST(GfslSequential, DuplicateInsertRejected) {
  Fixture f;
  EXPECT_TRUE(f.sl->insert(f.team, 7, 1));
  EXPECT_FALSE(f.sl->insert(f.team, 7, 2));
  EXPECT_EQ(f.sl->find(f.team, 7).value_or(0), 1u);  // first value kept
  EXPECT_EQ(f.sl->size(), 1u);
}

TEST(GfslSequential, DoubleDeleteRejected) {
  Fixture f;
  f.sl->insert(f.team, 7, 1);
  EXPECT_TRUE(f.sl->erase(f.team, 7));
  EXPECT_FALSE(f.sl->erase(f.team, 7));
}

TEST(GfslSequential, RejectsSentinelKeys) {
  Fixture f;
  EXPECT_THROW(f.sl->insert(f.team, KEY_NEG_INF, 0), std::invalid_argument);
  EXPECT_THROW(f.sl->insert(f.team, KEY_INF, 0), std::invalid_argument);
  EXPECT_THROW(f.sl->erase(f.team, KEY_INF), std::invalid_argument);
}

TEST(GfslSequential, FillOneChunkExactly) {
  Fixture f;
  const int dsize = f.sl->team_size() - 2;
  // The head chunk holds -inf, so dsize-1 user keys fit without a split.
  for (int i = 1; i < dsize; ++i) {
    ASSERT_TRUE(f.sl->insert(f.team, static_cast<Key>(i * 10), 0));
  }
  EXPECT_EQ(f.sl->chunks_in_level(0), 0);  // no split yet
  EXPECT_TRUE(f.sl->validate().ok);
  for (int i = 1; i < dsize; ++i) {
    EXPECT_TRUE(f.sl->contains(f.team, static_cast<Key>(i * 10)));
  }
}

TEST(GfslSequential, SplitCreatesSecondChunkAndRaisesKey) {
  Fixture f;  // p_chunk = 1: every split raises
  const int dsize = f.sl->team_size() - 2;
  for (int i = 1; i <= dsize; ++i) {  // one more than fits
    ASSERT_TRUE(f.sl->insert(f.team, static_cast<Key>(i), 0));
  }
  EXPECT_GE(f.sl->chunks_in_level(0), 1);  // split happened
  EXPECT_GE(f.sl->current_height(), 1);    // p_chunk=1 raised a key
  const auto rep = f.sl->validate();
  EXPECT_TRUE(rep.ok) << rep.error;
  for (int i = 1; i <= dsize; ++i) {
    EXPECT_TRUE(f.sl->contains(f.team, static_cast<Key>(i)));
  }
}

TEST(GfslSequential, AscendingInsertScan) {
  Fixture f;
  for (Key k = 1; k <= 500; ++k) {
    ASSERT_TRUE(f.sl->insert(f.team, k, k * 2));
  }
  EXPECT_EQ(f.sl->size(), 500u);
  for (Key k = 1; k <= 500; ++k) {
    ASSERT_EQ(f.sl->find(f.team, k).value_or(0), k * 2);
  }
  EXPECT_FALSE(f.sl->contains(f.team, 501));
  const auto rep = f.sl->validate();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_GE(f.sl->current_height(), 1);
}

TEST(GfslSequential, DescendingInsertScan) {
  Fixture f;
  for (Key k = 500; k >= 1; --k) {
    ASSERT_TRUE(f.sl->insert(f.team, k, k));
  }
  EXPECT_EQ(f.sl->size(), 500u);
  const auto rep = f.sl->validate();
  EXPECT_TRUE(rep.ok) << rep.error;
  for (Key k = 1; k <= 500; ++k) {
    ASSERT_TRUE(f.sl->contains(f.team, k));
  }
}

TEST(GfslSequential, DeleteEverythingAscending) {
  Fixture f;
  for (Key k = 1; k <= 300; ++k) ASSERT_TRUE(f.sl->insert(f.team, k, 0));
  for (Key k = 1; k <= 300; ++k) {
    ASSERT_TRUE(f.sl->erase(f.team, k)) << "k=" << k;
    const auto rep = f.sl->validate();
    ASSERT_TRUE(rep.ok) << "k=" << k << ": " << rep.error;
  }
  EXPECT_EQ(f.sl->size(), 0u);
}

TEST(GfslSequential, DeleteEverythingDescending) {
  Fixture f;
  for (Key k = 1; k <= 300; ++k) ASSERT_TRUE(f.sl->insert(f.team, k, 0));
  for (Key k = 300; k >= 1; --k) {
    ASSERT_TRUE(f.sl->erase(f.team, k)) << "k=" << k;
  }
  EXPECT_EQ(f.sl->size(), 0u);
  const auto rep = f.sl->validate();
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(GfslSequential, MergeProducesZombies) {
  Fixture f;
  for (Key k = 1; k <= 200; ++k) ASSERT_TRUE(f.sl->insert(f.team, k, 0));
  const auto before = f.sl->validate();
  // Deleting most keys forces chunks under DSIZE/3 and triggers merges.
  for (Key k = 1; k <= 180; ++k) ASSERT_TRUE(f.sl->erase(f.team, k));
  const auto after = f.sl->validate();
  EXPECT_TRUE(after.ok) << after.error;
  EXPECT_GT(after.zombie_chunks, 0u);
  EXPECT_LT(after.live_chunks, before.live_chunks);
  for (Key k = 181; k <= 200; ++k) {
    EXPECT_TRUE(f.sl->contains(f.team, k));
  }
}

TEST(GfslSequential, RandomMixAgainstStdMap) {
  Fixture f(32, 1u << 16);
  std::map<Key, Value> ref;
  Xoshiro256ss rng(2024);
  for (int i = 0; i < 20'000; ++i) {
    const Key k = static_cast<Key>(1 + rng.below(500));
    const auto dice = rng.below(100);
    if (dice < 40) {
      const Value v = static_cast<Value>(rng.below(1 << 30));
      const bool mine = f.sl->insert(f.team, k, v);
      const bool theirs = ref.emplace(k, v).second;
      ASSERT_EQ(mine, theirs) << "insert " << k << " at step " << i;
    } else if (dice < 80) {
      const bool mine = f.sl->erase(f.team, k);
      const bool theirs = ref.erase(k) > 0;
      ASSERT_EQ(mine, theirs) << "erase " << k << " at step " << i;
    } else {
      const auto mine = f.sl->find(f.team, k);
      const auto it = ref.find(k);
      ASSERT_EQ(mine.has_value(), it != ref.end()) << "find " << k;
      if (mine.has_value()) {
        ASSERT_EQ(*mine, it->second);
      }
    }
    if (i % 2'500 == 0) {
      const auto rep = f.sl->validate();
      ASSERT_TRUE(rep.ok) << "step " << i << ": " << rep.error;
    }
  }
  // Final exact content comparison.
  const auto got = f.sl->collect();
  ASSERT_EQ(got.size(), ref.size());
  auto it = ref.begin();
  for (std::size_t i = 0; i < got.size(); ++i, ++it) {
    EXPECT_EQ(got[i].first, it->first);
    EXPECT_EQ(got[i].second, it->second);
  }
}

TEST(GfslSequential, GrowsSeveralLevels) {
  Fixture f(8, 1u << 16);  // small chunks grow tall quickly
  for (Key k = 1; k <= 2'000; ++k) ASSERT_TRUE(f.sl->insert(f.team, k, 0));
  EXPECT_GE(f.sl->current_height(), 3);
  const auto rep = f.sl->validate();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(f.sl->size(), 2'000u);
}

TEST(GfslSequential, PChunkZeroNeverRaises) {
  Fixture f(16, 1u << 14, /*p_chunk=*/0.0);
  for (Key k = 1; k <= 400; ++k) ASSERT_TRUE(f.sl->insert(f.team, k, 0));
  EXPECT_EQ(f.sl->current_height(), 0);  // a flat chunked list
  EXPECT_TRUE(f.sl->validate().ok);
  for (Key k = 1; k <= 400; ++k) ASSERT_TRUE(f.sl->contains(f.team, k));
}

TEST(GfslSequential, AvgTraversalTracksHeight) {
  Fixture f;
  for (Key k = 1; k <= 1'000; ++k) f.sl->insert(f.team, k, 0);
  for (Key k = 1; k <= 1'000; ++k) f.sl->contains(f.team, k);
  // §5.2: with p_chunk ~ 1 a traversal reads between height+1 and height+2
  // chunks on average.
  const double avg = f.sl->avg_chunks_per_traversal();
  const double h = f.sl->current_height();
  EXPECT_GE(avg, h + 0.5);
  EXPECT_LE(avg, h + 3.5);
}

TEST(GfslSequential, PoolExhaustionSurfacesAsBadAlloc) {
  Fixture f(32, 40);  // 32 head chunks + a handful of data chunks
  bool threw = false;
  try {
    for (Key k = 1; k <= 10'000; ++k) f.sl->insert(f.team, k, 0);
  } catch (const std::bad_alloc&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST(GfslSequential, BulkLoadThenOperate) {
  Fixture f;
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 2; k <= 1'000; k += 2) pairs.emplace_back(k, k + 1);
  f.sl->bulk_load(pairs);
  EXPECT_EQ(f.sl->size(), pairs.size());
  const auto rep = f.sl->validate();
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_TRUE(f.sl->contains(f.team, 500));
  EXPECT_FALSE(f.sl->contains(f.team, 501));
  EXPECT_TRUE(f.sl->insert(f.team, 501, 1));
  EXPECT_TRUE(f.sl->erase(f.team, 500));
  EXPECT_TRUE(f.sl->validate().ok);
}

TEST(GfslSequential, TeamSize16Works) {
  Fixture f(16, 1u << 15);
  std::set<Key> ref;
  Xoshiro256ss rng(5);
  for (int i = 0; i < 5'000; ++i) {
    const Key k = static_cast<Key>(1 + rng.below(300));
    if (rng.below(2) == 0) {
      ASSERT_EQ(f.sl->insert(f.team, k, 0), ref.insert(k).second);
    } else {
      ASSERT_EQ(f.sl->erase(f.team, k), ref.erase(k) > 0);
    }
  }
  EXPECT_EQ(f.sl->size(), ref.size());
  EXPECT_TRUE(f.sl->validate().ok);
}

TEST(GfslSequential, ConfigValidation) {
  device::DeviceMemory mem;
  GfslConfig cfg;
  cfg.team_size = 12;
  EXPECT_THROW(Gfsl(cfg, &mem), std::invalid_argument);
  cfg.team_size = 32;
  cfg.p_chunk = 1.5;
  EXPECT_THROW(Gfsl(cfg, &mem), std::invalid_argument);
  cfg.p_chunk = 1.0;
  cfg.pool_chunks = 4;  // smaller than the head chunks
  EXPECT_THROW(Gfsl(cfg, &mem), std::invalid_argument);
  EXPECT_THROW(Gfsl(GfslConfig{}, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace gfsl::core
