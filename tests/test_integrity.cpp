// Integrity armor (DESIGN.md §15): checksummed chunks, the deterministic
// fault plane, and the online scrub/repair/quarantine pipeline.
//
// Layers:
//   * IntegritySidecar units: checksum algebra, stamp/verify/unseal, the
//     generation binding that defeats recycle ABA.
//   * FaultPlane units: seed determinism, targeted injection, stuck-at
//     reassertion.
//   * Live structure: every unlocked chunk is sealed after arbitrary
//     workloads (the stamp-at-unlock invariant), damage is detected and
//     repaired (upper chunks from the level below, bottom chunks from the
//     version-record chain), unrepairable damage is quarantined with an
//     exact blast radius, and the armed structure answers exactly like a
//     detached one on undamaged runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/chunk.h"
#include "core/gfsl.h"
#include "core/inspect.h"
#include "core/integrity.h"
#include "device/device_memory.h"
#include "device/epoch.h"
#include "device/fault_plane.h"
#include "simt/team.h"

namespace gfsl::core {
namespace {

GfslConfig small_cfg(int team_size = 8, std::uint32_t pool = 1u << 12) {
  GfslConfig cfg;
  cfg.team_size = team_size;
  cfg.pool_chunks = pool;
  return cfg;
}

/// A Gfsl with the full armor stack: epochs (reclamation), snapshots
/// (version chains, so bottom repair has something to restore from) and the
/// integrity sidecar.
struct ArmoredFixture {
  explicit ArmoredFixture(std::uint32_t pool = 1u << 12)
      : epochs(),
        snaps(pool),
        sl(small_cfg(8, pool), &mem, nullptr, nullptr, &epochs, nullptr,
           &snaps, nullptr, &integrity),
        team(8, 0, 3) {}
  device::DeviceMemory mem;
  device::EpochManager epochs;
  SnapshotManager snaps;
  IntegritySidecar integrity;
  Gfsl sl;
  simt::Team team;
};

void small_workload(Gfsl& sl, simt::Team& team, std::map<Key, Value>* model) {
  for (Key k = 1; k <= 150; ++k) {
    sl.insert(team, k * 3, k);
    if (model != nullptr) (*model)[k * 3] = k;
  }
  for (Key k = 1; k <= 150; k += 2) {
    sl.erase(team, k * 3);
    if (model != nullptr) model->erase(k * 3);
  }
}

/// First live bottom chunk holding at least `min_keys` user keys.
ChunkRef pick_bottom_victim(const Gfsl& sl, int min_keys) {
  GfslInspector insp(sl);
  bool cycle = false;
  for (const auto& v : insp.level_chain(0, &cycle)) {
    if (v.lock == kZombie) continue;
    int users = 0;
    for (const KV kv : v.data) {
      if (kv_key(kv) >= MIN_USER_KEY && kv_key(kv) <= MAX_USER_KEY) ++users;
    }
    if (users >= min_keys) return v.ref;
  }
  return NULL_CHUNK;
}

/// Damage one data word of `ref` in place (the sidecar must notice).
std::uint64_t corrupt_first_user_slot(Gfsl& sl, ChunkRef ref,
                                      device::FaultKind kind,
                                      std::uint64_t seed) {
  const ChunkArena& arena = sl.arena();
  auto* entries = const_cast<std::atomic<KV>*>(arena.entries(ref));
  for (int s = 0; s < arena.dsize(); ++s) {
    const KV kv = entries[s].load(std::memory_order_acquire);
    if (kv_is_empty(kv) || kv_key(kv) == KEY_NEG_INF) continue;
    device::FaultPlane plane;
    const auto rep = plane.inject_at(kind, entries + s, seed);
    EXPECT_TRUE(rep.injected);
    EXPECT_NE(rep.before, rep.after);
    plane.clear_stuck();  // the test drives reassertion itself
    return rep.after;
  }
  ADD_FAILURE() << "chunk " << ref << " had no user slot to corrupt";
  return 0;
}

// --- IntegritySidecar units -------------------------------------------------

TEST(IntegritySidecar, ChecksumIsDeterministicAndSensitive) {
  for (const SealAlgo algo : {SealAlgo::kCrc32c, SealAlgo::kXorFold}) {
    IntegritySidecar sc(algo);
    std::uint64_t words[6] = {1, 2, 3, 0xDEADBEEFull, 5, 6};
    const std::uint32_t a = sc.checksum(words, 6);
    EXPECT_EQ(a, sc.checksum(words, 6));
    words[3] ^= 1ull << 17;
    EXPECT_NE(a, sc.checksum(words, 6));
    // Position sensitivity: swapping two words must change the sum.
    std::uint64_t swapped[6] = {2, 1, 3, words[3], 5, 6};
    EXPECT_NE(sc.checksum(swapped, 6), sc.checksum(words, 6));
  }
}

TEST(IntegritySidecar, StampVerifyUnsealRoundTrip) {
  IntegritySidecar sc;
  sc.bind(16);
  std::atomic<KV> entries[8];
  for (int i = 0; i < 8; ++i) entries[i].store(make_kv(i + 1, i));
  EXPECT_FALSE(sc.sealed(3, 4));
  sc.stamp(3, /*gen=*/4, entries, /*dsize=*/6);
  EXPECT_TRUE(sc.sealed(3, 4));
  EXPECT_EQ(sc.sealed_count(), 1u);
  EXPECT_TRUE(sc.verify_exact(3, 4, entries, 6));
  entries[2].store(make_kv(99, 99));
  EXPECT_FALSE(sc.verify_exact(3, 4, entries, 6));
  EXPECT_GE(sc.seal_mismatches(), 1u);
  sc.unseal(3);
  EXPECT_FALSE(sc.sealed(3, 4));
  EXPECT_EQ(sc.sealed_count(), 0u);
}

TEST(IntegritySidecar, SealIsGenerationBound) {
  // A seal stamped for one lifetime must not vouch for a recycled one.
  IntegritySidecar sc;
  sc.bind(4);
  std::atomic<KV> entries[8];
  for (int i = 0; i < 8; ++i) entries[i].store(make_kv(i + 1, i));
  sc.stamp(0, /*gen=*/2, entries, 6);
  EXPECT_TRUE(sc.sealed(0, 2));
  EXPECT_FALSE(sc.sealed(0, 4));  // same bits, later lifetime
  EXPECT_TRUE(sc.verify_exact(0, 4, entries, 6))
      << "verify against an unsealed generation must pass vacuously";
}

TEST(IntegritySidecar, SuspectFlagFirstFlaggerOwns) {
  IntegritySidecar sc;
  sc.bind(8);
  EXPECT_TRUE(sc.flag_suspect(5));
  EXPECT_FALSE(sc.flag_suspect(5));  // second flagger does not own reporting
  EXPECT_EQ(sc.suspect_count(), 1u);
  sc.clear_suspect(5);
  EXPECT_FALSE(sc.suspect(5));
  EXPECT_EQ(sc.suspect_count(), 0u);
}

// --- FaultPlane units -------------------------------------------------------

TEST(FaultPlane, InjectionIsSeedDeterministic) {
  std::uint64_t window_a[32], window_b[32];
  for (int i = 0; i < 32; ++i) window_a[i] = window_b[i] = 0x0101010101010101ull * i;
  device::FaultPlane pa, pb;
  pa.map_section(device::FaultSection::kChunkData, window_a, sizeof window_a);
  pb.map_section(device::FaultSection::kChunkData, window_b, sizeof window_b);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto ra = pa.inject({device::FaultSection::kChunkData,
                               device::FaultKind::kMultiBitFlip, seed});
    const auto rb = pb.inject({device::FaultSection::kChunkData,
                               device::FaultKind::kMultiBitFlip, seed});
    ASSERT_TRUE(ra.injected && rb.injected);
    EXPECT_EQ(ra.offset, rb.offset) << "seed " << seed;
    EXPECT_EQ(ra.after, rb.after) << "seed " << seed;
  }
  for (int i = 0; i < 32; ++i) EXPECT_EQ(window_a[i], window_b[i]);
}

TEST(FaultPlane, UnarmedSectionInjectsNothing) {
  device::FaultPlane plane;
  const auto rep = plane.inject(
      {device::FaultSection::kFreeList, device::FaultKind::kBitFlip, 7});
  EXPECT_FALSE(rep.injected);
  EXPECT_EQ(plane.faults_injected(), 0u);
}

TEST(FaultPlane, StuckWordReassertsAfterRepair) {
  std::uint64_t word = 0xABCDEF0123456789ull;
  device::FaultPlane plane;
  const auto rep =
      plane.inject_at(device::FaultKind::kStuckWord, &word, /*seed=*/3);
  ASSERT_TRUE(rep.injected);
  const std::uint64_t corrupt = rep.after;
  EXPECT_EQ(word, corrupt);
  word = 0xABCDEF0123456789ull;  // "repair" the cell
  plane.reassert();              // the failed cell re-asserts the damage
  EXPECT_EQ(word, corrupt);
  EXPECT_EQ(plane.stuck_words(), 1u);
  plane.clear_stuck();
}

TEST(FaultPlane, SectionAndKindNamesRoundTrip) {
  for (int s = 0; s < device::kFaultSectionCount; ++s) {
    const auto sec = static_cast<device::FaultSection>(s);
    device::FaultSection parsed{};
    ASSERT_TRUE(
        device::parse_fault_section(device::fault_section_name(sec), &parsed));
    EXPECT_EQ(parsed, sec);
  }
  for (int k = 0; k < device::kFaultKindCount; ++k) {
    const auto kind = static_cast<device::FaultKind>(k);
    device::FaultKind parsed{};
    ASSERT_TRUE(device::parse_fault_kind(device::fault_kind_name(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  device::FaultSection sink_s{};
  device::FaultKind sink_k{};
  EXPECT_FALSE(device::parse_fault_section("bogus", &sink_s));
  EXPECT_FALSE(device::parse_fault_kind("bogus", &sink_k));
}

// --- Stamp-at-unlock invariant ----------------------------------------------

TEST(IntegrityLive, EveryUnlockedLiveChunkIsSealedAfterWorkload) {
  ArmoredFixture f;
  small_workload(f.sl, f.team, nullptr);
  const ChunkArena& arena = f.sl.arena();
  std::uint64_t sealed = 0;
  for (ChunkRef ref = 0; ref < arena.high_water(); ++ref) {
    const std::uint32_t gen = arena.generation(ref);
    if ((gen & 1u) != 0) continue;  // on the free-list
    const KV lk =
        arena.entries(ref)[arena.lock_slot()].load(std::memory_order_acquire);
    if (lock_entry_state(lk) != kUnlocked) continue;
    EXPECT_TRUE(f.integrity.sealed(ref, gen)) << "unsealed live chunk " << ref;
    ++sealed;
  }
  EXPECT_GT(sealed, 0u);
  // A quiescent undamaged structure scrubs clean.
  const ScrubReport rep = f.sl.scrub_pass(f.team);
  EXPECT_GT(rep.chunks_scanned, 0u);
  EXPECT_EQ(rep.mismatches, 0u);
  EXPECT_EQ(rep.repaired, 0u);
  EXPECT_EQ(rep.quarantined, 0u);
}

// --- Detection and repair ---------------------------------------------------

TEST(IntegrityLive, ReadPathDetectsAndInlineRepairsBottomDamage) {
  ArmoredFixture f;
  f.integrity.set_verify_period(1);  // every checked read verifies
  std::map<Key, Value> model;
  small_workload(f.sl, f.team, &model);
  const ChunkRef victim = pick_bottom_victim(f.sl, 2);
  ASSERT_NE(victim, NULL_CHUNK);
  corrupt_first_user_slot(f.sl, victim, device::FaultKind::kBitFlip, 11);

  // Point reads over the whole model: the damaged chunk's reader flags it
  // suspect, repairs inline from the version chain, restarts, and every
  // answer is exactly the model's.
  for (const auto& [k, v] : model) {
    const std::optional<Value> got = f.sl.find(f.team, k);
    ASSERT_TRUE(got.has_value()) << "key " << k;
    EXPECT_EQ(*got, v) << "key " << k;
  }
  EXPECT_GE(f.integrity.seal_mismatches(), 1u);
  EXPECT_EQ(f.integrity.suspect_count(), 0u) << "suspicion must be resolved";
  EXPECT_TRUE(f.sl.validate(false).ok);
}

TEST(IntegrityLive, ScrubRepairsBottomChunkFromVersionChain) {
  for (const auto kind :
       {device::FaultKind::kBitFlip, device::FaultKind::kMultiBitFlip,
        device::FaultKind::kTornEntry}) {
    ArmoredFixture f;
    std::map<Key, Value> model;
    small_workload(f.sl, f.team, &model);
    const ChunkRef victim = pick_bottom_victim(f.sl, 2);
    ASSERT_NE(victim, NULL_CHUNK);
    corrupt_first_user_slot(f.sl, victim, kind, 23);

    const ScrubReport rep = f.sl.scrub_pass(f.team);
    EXPECT_EQ(rep.mismatches, 1u);
    EXPECT_EQ(rep.repaired, 1u);
    EXPECT_EQ(rep.quarantined, 0u);
    ASSERT_TRUE(f.sl.validate(false).ok);
    std::map<Key, Value> got;
    for (const auto& [k, v] : f.sl.collect()) got[k] = v;
    EXPECT_EQ(got, model) << "repair must restore the exact pre-damage "
                             "contents (kind "
                          << device::fault_kind_name(kind) << ")";
  }
}

TEST(IntegrityLive, ScrubRepairsUpperChunkFromLevelBelow) {
  ArmoredFixture f;
  std::map<Key, Value> model;
  // Enough keys to raise several levels.
  for (Key k = 1; k <= 600; ++k) {
    f.sl.insert(f.team, k * 2, k);
    model[k * 2] = k;
  }
  GfslInspector insp(f.sl);
  bool cycle = false;
  const auto chain = insp.level_chain(1, &cycle);
  ASSERT_FALSE(cycle);
  ChunkRef victim = NULL_CHUNK;
  for (const auto& v : chain) {
    if (v.lock == kUnlocked && v.data.size() >= 2) {
      victim = v.ref;
      break;
    }
  }
  ASSERT_NE(victim, NULL_CHUNK) << "no upper chunk to damage";
  corrupt_first_user_slot(f.sl, victim, device::FaultKind::kTornEntry, 31);

  const ScrubReport rep = f.sl.scrub_pass(f.team);
  EXPECT_EQ(rep.mismatches, 1u);
  EXPECT_EQ(rep.repaired, 1u);
  EXPECT_TRUE(rep.lost.empty()) << "upper damage must never lose user keys";
  ASSERT_TRUE(f.sl.validate(false).ok);
  std::map<Key, Value> got;
  for (const auto& [k, v] : f.sl.collect()) got[k] = v;
  EXPECT_EQ(got, model);
}

// --- Quarantine and blast radius --------------------------------------------

TEST(IntegrityLive, StuckCellEscalatesToQuarantineWithExactBlastRadius) {
  ArmoredFixture f;
  std::map<Key, Value> model;
  small_workload(f.sl, f.team, &model);
  const ChunkRef victim = pick_bottom_victim(f.sl, 2);
  ASSERT_NE(victim, NULL_CHUNK);

  const ChunkArena& arena = f.sl.arena();
  auto* entries = const_cast<std::atomic<KV>*>(arena.entries(victim));
  int slot = -1;
  for (int s = 0; s < arena.dsize(); ++s) {
    const KV kv = entries[s].load(std::memory_order_acquire);
    if (!kv_is_empty(kv) && kv_key(kv) != KEY_NEG_INF) {
      slot = s;
      break;
    }
  }
  ASSERT_GE(slot, 0);
  device::FaultPlane plane;
  const auto frep = plane.inject_at(device::FaultKind::kStuckWord,
                                    entries + slot, /*seed=*/5);
  ASSERT_TRUE(frep.injected);

  // Pass 1 repairs; the cell re-asserts; pass 2 must escalate.
  const ScrubReport r1 = f.sl.scrub_pass(f.team);
  EXPECT_EQ(r1.repaired, 1u);
  plane.reassert();
  const ScrubReport r2 = f.sl.scrub_pass(f.team);
  plane.clear_stuck();
  EXPECT_EQ(r2.quarantined, 1u);
  ASSERT_EQ(r2.lost.size(), 1u);
  const LostRange& lost = r2.lost.front();
  EXPECT_EQ(lost.ref, victim);

  ASSERT_TRUE(f.sl.validate(false).ok);
  // Zero silent wrong answers: every surviving key matches the model and
  // every missing key falls inside the reported blast radius.
  std::map<Key, Value> got;
  for (const auto& [k, v] : f.sl.collect()) got[k] = v;
  for (const auto& [k, v] : got) {
    auto it = model.find(k);
    ASSERT_TRUE(it != model.end()) << "alien key " << k;
    EXPECT_EQ(v, it->second) << "key " << k;
  }
  for (const auto& [k, v] : model) {
    if (got.count(k) != 0) continue;
    EXPECT_TRUE(k > lost.lo_exclusive && k <= lost.hi_inclusive)
        << "key " << k << " lost outside the reported range ("
        << lost.lo_exclusive << ", " << lost.hi_inclusive << "]";
  }
}

// --- A/B: armed answers exactly like detached on undamaged runs -------------

TEST(IntegrityAB, ArmedAndDetachedAgreeOnUndamagedWorkload) {
  device::DeviceMemory mem_a, mem_d;
  IntegritySidecar integrity;
  Gfsl armed(small_cfg(), &mem_a, nullptr, nullptr, nullptr, nullptr, nullptr,
             nullptr, &integrity);
  Gfsl detached(small_cfg(), &mem_d);
  integrity.set_verify_period(1);
  simt::Team ta(8, 0, 3), td(8, 0, 3);
  small_workload(armed, ta, nullptr);
  small_workload(detached, td, nullptr);
  EXPECT_EQ(armed.collect(), detached.collect());
  EXPECT_TRUE(armed.validate(false).ok);
  // The detached structure never pays a seal: nothing is stamped.
  EXPECT_GT(integrity.seals_stamped(), 0u);
  EXPECT_EQ(integrity.seal_mismatches(), 0u);
}

}  // namespace
}  // namespace gfsl::core
