// Tests for the host-side session façade.
#include <gtest/gtest.h>

#include <set>

#include "harness/session.h"
#include "harness/workload.h"

namespace gfsl::harness {
namespace {

GfslSession::Config small_config(int workers = 2, int team_size = 16) {
  GfslSession::Config c;
  c.structure.team_size = team_size;
  c.structure.pool_chunks = 1u << 14;
  c.num_workers = workers;
  c.seed = 8;
  return c;
}

TEST(Session, LaunchReturnsPerOpResults) {
  GfslSession s(small_config(1));
  std::vector<Op> ops;
  for (Key k = 1; k <= 100; ++k) ops.push_back({OpKind::Insert, k, k, 1});
  for (Key k = 1; k <= 100; ++k) ops.push_back({OpKind::Contains, k, 0, 1});
  ops.push_back({OpKind::Contains, 999, 0, 1});
  const auto res = s.launch(ops);
  ASSERT_EQ(res.size(), ops.size());
  for (std::size_t i = 0; i < 200; ++i) EXPECT_EQ(res[i], 1) << i;
  EXPECT_EQ(res.back(), 0);
  EXPECT_EQ(s.structure().size(), 100u);
}

TEST(Session, MultipleLaunchesShareState) {
  GfslSession s(small_config());
  std::vector<Op> first;
  for (Key k = 1; k <= 50; ++k) first.push_back({OpKind::Insert, k, k, 1});
  s.launch(first);
  std::vector<Op> second;
  for (Key k = 1; k <= 50; ++k) second.push_back({OpKind::Delete, k, 0, 1});
  const auto res = s.launch(second);
  for (const auto r : res) EXPECT_EQ(r, 1);
  EXPECT_EQ(s.structure().size(), 0u);
  EXPECT_EQ(s.launches(), 2u);
}

TEST(Session, LoadThenLaunchThenCompact) {
  GfslSession s(small_config());
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 2; k <= 2'000; k += 2) pairs.emplace_back(k, k);
  s.load(pairs);
  std::vector<Op> ops;
  for (Key k = 1; k <= 100; ++k) ops.push_back({OpKind::Delete, k * 2, 0, 1});
  s.launch(ops);
  EXPECT_EQ(s.structure().size(), pairs.size() - 100);
  s.compact();
  EXPECT_TRUE(s.structure().validate().ok);
  EXPECT_GT(s.modeled_mops(), 0.0);
  EXPECT_GT(s.last_kernel().mem.warp_reads, 0u);
}

TEST(Session, DualTeamsModeWorks) {
  auto cfg = small_config(4, 16);
  cfg.dual_teams_per_warp = true;
  GfslSession s(cfg);
  std::vector<Op> ops;
  for (Key k = 1; k <= 400; ++k) ops.push_back({OpKind::Insert, k, k, 1});
  const auto res = s.launch(ops);
  std::size_t trues = 0;
  for (const auto r : res) trues += r;
  EXPECT_EQ(trues, 400u);
  EXPECT_TRUE(s.structure().validate(false).ok);
}

TEST(Session, DualTeamsConfigValidation) {
  auto cfg = small_config(4, 32);
  cfg.dual_teams_per_warp = true;
  EXPECT_THROW(GfslSession{cfg}, std::invalid_argument);
  cfg = small_config(3, 16);
  cfg.dual_teams_per_warp = true;
  EXPECT_THROW(GfslSession{cfg}, std::invalid_argument);
}

TEST(Session, OutOfMemorySurfacesAsBadAlloc) {
  auto cfg = small_config(1, 8);
  cfg.structure.pool_chunks = 40;
  GfslSession s(cfg);
  std::vector<Op> ops;
  for (Key k = 1; k <= 5'000; ++k) ops.push_back({OpKind::Insert, k, 0, 1});
  EXPECT_THROW(s.launch(ops), std::bad_alloc);
}

}  // namespace
}  // namespace gfsl::harness
