// Flight-recorder rings and the gfsl-postmortem-v1 dump path.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>

#include "core/gfsl.h"
#include "core/inspect.h"
#include "device/device_memory.h"
#include "device/epoch.h"
#include "harness/postmortem.h"
#include "obs/json_value.h"
#include "obs/metrics.h"
#include "simt/team.h"
#include "simt/trace.h"

using namespace gfsl;
using namespace gfsl::harness;

namespace {

struct Fixture {
  device::DeviceMemory mem;
  device::EpochManager epochs;
  core::Gfsl sl;

  explicit Fixture(int team_size = 8, bool with_epochs = false)
      : sl(make_cfg(team_size), &mem, nullptr, nullptr,
           with_epochs ? &epochs : nullptr) {}

  static core::GfslConfig make_cfg(int team_size) {
    core::GfslConfig cfg;
    cfg.team_size = team_size;
    cfg.pool_chunks = 1u << 12;
    return cfg;
  }
};

obs::JsonParseResult dump_and_parse(const PostmortemContext& ctx) {
  std::ostringstream os;
  write_postmortem(os, ctx);
  return obs::json_parse(os.str());
}

}  // namespace

TEST(TeamTrace, RingWrapsKeepingTheLastCapacityEvents) {
  simt::TeamTrace ring(8, /*timestamps=*/false);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ring.record(simt::TraceEvent::kChunkRead, i, 2 * i);
  }
  EXPECT_EQ(ring.recorded(), 20u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first tail: seqs 12..19, payloads intact.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_EQ(events[i].a, 12 + i);
    EXPECT_EQ(events[i].b, 2 * (12 + i));
  }
}

TEST(TeamTrace, ClocklessRingRecordsNoTimestamps) {
  simt::TeamTrace clockless(4, /*timestamps=*/false);
  simt::TeamTrace stamped(4, /*timestamps=*/true);
  clockless.record(simt::TraceEvent::kSplit, 1, 2);
  stamped.record(simt::TraceEvent::kSplit, 1, 2);
  EXPECT_EQ(clockless.snapshot()[0].ts_ns, 0u);
  EXPECT_GT(stamped.snapshot()[0].ts_ns, 0u);
  EXPECT_FALSE(clockless.timestamps());
}

TEST(Postmortem, OnDemandBundleRoundTripsThroughTheParser) {
  Fixture f(8, /*with_epochs=*/true);
  obs::MetricsRegistry reg(1);
  simt::TeamTrace ring(64, /*timestamps=*/false);
  simt::Team team(8, 0, 3);
  team.set_metrics(&reg.shard(0));
  team.set_trace(&ring);
  for (Key k = 1; k <= 60; ++k) f.sl.insert(team, k, k);
  for (Key k = 1; k <= 60; k += 3) f.sl.erase(team, k);

  PostmortemContext ctx;
  ctx.reason = "on_demand";
  ctx.detail = "";
  ctx.gfsl = &f.sl;
  ctx.metrics = &reg;
  ctx.rings = {&ring};
  ctx.info = {{"harness", "unit_test"}, {"seed", "1"}};
  ctx.last_k = 16;

  const auto parsed = dump_and_parse(ctx);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const obs::JsonValue& root = parsed.value;
  EXPECT_EQ(root.string_or("schema", ""), "gfsl-postmortem-v1");
  EXPECT_EQ(root.string_or("reason", ""), "on_demand");
  EXPECT_EQ(root.get("info")->string_or("harness", ""), "unit_test");

  const obs::JsonValue* teams = root.get("teams");
  ASSERT_NE(teams, nullptr);
  ASSERT_TRUE(teams->is_array());
  ASSERT_EQ(teams->as_array().size(), 1u);
  const obs::JsonValue& t0 = teams->as_array()[0];
  EXPECT_DOUBLE_EQ(t0.number_or("team", -1.0), 0.0);
  EXPECT_GT(t0.number_or("recorded", 0.0), 0.0);
  const obs::JsonValue* events = t0.get("events");
  ASSERT_NE(events, nullptr);
  EXPECT_LE(events->as_array().size(), 16u);  // last_k cap
  EXPECT_FALSE(events->as_array().empty());
  EXPECT_FALSE(
      events->as_array()[0].string_or("event", "").empty());

  const obs::JsonValue* metrics = root.get("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->string_or("schema", ""), "gfsl-metrics-v1");

  const obs::JsonValue* structure = root.get("structure");
  ASSERT_NE(structure, nullptr);
  EXPECT_TRUE(structure->get("validate")->get("ok")->as_bool());
  EXPECT_EQ(structure->number_or("bottom_keys", 0.0), 40.0);  // 60 - 20 erased
  ASSERT_NE(structure->get("levels"), nullptr);
  EXPECT_FALSE(structure->get("levels")->as_array().empty());
  ASSERT_NE(structure->get("bottom_occupancy_histogram"), nullptr);
  EXPECT_NE(structure->get("epoch"), nullptr);  // epochs attached
}

TEST(Postmortem, ValidateFailureDumpCarriesTheVerdict) {
  Fixture f;
  simt::Team team(8, 0, 3);
  for (Key k = 10; k <= 100; k += 10) f.sl.insert(team, k, k);

  // Corrupt the first bottom chunk's slot 0 with a key far above the chunk's
  // max: validate must flag the broken ordering invariant.
  core::GfslInspector insp(f.sl);
  bool cycle = false;
  const auto chain = insp.level_chain(0, &cycle);
  ASSERT_FALSE(chain.empty());
  auto* entries =
      const_cast<std::atomic<KV>*>(f.sl.arena().entries(chain[0].ref));
  entries[0].store(make_kv(KEY_INF - 2, 0), std::memory_order_release);
  const auto rep = f.sl.validate(/*strict=*/false);
  ASSERT_FALSE(rep.ok);

  PostmortemContext ctx;
  ctx.reason = "validate_failure";
  ctx.detail = rep.error;
  ctx.gfsl = &f.sl;

  const std::string path =
      dump_postmortem(::testing::TempDir(), "postmortem_unit", ctx);
  ASSERT_FALSE(path.empty());
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto parsed = obs::json_parse(ss.str());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.string_or("reason", ""), "validate_failure");
  EXPECT_FALSE(parsed.value.string_or("detail", "").empty());
  const obs::JsonValue* validate =
      parsed.value.get("structure")->get("validate");
  ASSERT_NE(validate, nullptr);
  EXPECT_FALSE(validate->get("ok")->as_bool());
  EXPECT_FALSE(validate->string_or("error", "").empty());
}

TEST(Postmortem, DumpToMissingDirectoryReportsFailure) {
  PostmortemContext ctx;
  ctx.reason = "on_demand";
  EXPECT_TRUE(
      dump_postmortem("/nonexistent_dir_for_sure", "stem", ctx).empty());
}

TEST(Postmortem, NullRingsAndEmptyContextStillSerialize) {
  PostmortemContext ctx;
  ctx.reason = "watchdog_stall";
  ctx.rings = {nullptr, nullptr};
  const auto parsed = dump_and_parse(ctx);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.string_or("reason", ""), "watchdog_stall");
  EXPECT_TRUE(parsed.value.get("teams")->as_array().empty());
  EXPECT_EQ(parsed.value.get("structure"), nullptr);
  EXPECT_EQ(parsed.value.get("metrics"), nullptr);
}
