// Tests: op-log serialization round trips and rejects malformed input.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/oplog.h"
#include "harness/workload.h"

namespace gfsl::harness {
namespace {

TEST(OpLog, RoundTripsGeneratedWorkload) {
  WorkloadConfig cfg;
  cfg.mix = kMix_20_20_60;
  cfg.key_range = 10'000;
  cfg.num_ops = 2'000;
  cfg.seed = 4;
  const auto ops = generate_ops(cfg);

  std::stringstream buf;
  save_oplog(buf, ops);
  const auto loaded = load_oplog(buf);
  ASSERT_EQ(loaded.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(loaded[i].kind, ops[i].kind) << i;
    EXPECT_EQ(loaded[i].key, ops[i].key) << i;
    EXPECT_EQ(loaded[i].value, ops[i].value) << i;
    EXPECT_EQ(loaded[i].mc_height, ops[i].mc_height) << i;
  }
}

TEST(OpLog, EmptyLog) {
  std::stringstream buf;
  save_oplog(buf, {});
  EXPECT_TRUE(load_oplog(buf).empty());
}

TEST(OpLog, CommentsAndBlankLinesIgnored) {
  std::stringstream buf("gfsl-oplog v1\n# hello\n\nI 5 9 2\n# bye\nC 5 0 1\n");
  const auto ops = load_oplog(buf);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].kind, OpKind::Insert);
  EXPECT_EQ(ops[0].key, 5u);
  EXPECT_EQ(ops[0].value, 9u);
  EXPECT_EQ(ops[1].kind, OpKind::Contains);
}

TEST(OpLog, RejectsBadHeader) {
  std::stringstream buf("not-an-oplog\nI 1 0 1\n");
  EXPECT_THROW(load_oplog(buf), std::runtime_error);
}

TEST(OpLog, RejectsBadKind) {
  std::stringstream buf("gfsl-oplog v1\nX 1 0 1\n");
  EXPECT_THROW(load_oplog(buf), std::runtime_error);
}

TEST(OpLog, RejectsMalformedRecord) {
  std::stringstream buf("gfsl-oplog v1\nI 1\n");
  EXPECT_THROW(load_oplog(buf), std::runtime_error);
}

TEST(OpLog, RejectsOutOfRangeKey) {
  std::stringstream buf("gfsl-oplog v1\nI 0 0 1\n");
  EXPECT_THROW(load_oplog(buf), std::runtime_error);
}

TEST(OpLog, ClampsHeights) {
  std::stringstream buf("gfsl-oplog v1\nI 1 0 99\nI 2 0 0\n");
  const auto ops = load_oplog(buf);
  EXPECT_EQ(ops[0].mc_height, 32);
  EXPECT_EQ(ops[1].mc_height, 1);
}

TEST(OpLog, FileRoundTrip) {
  WorkloadConfig cfg;
  cfg.num_ops = 100;
  const auto ops = generate_ops(cfg);
  const std::string path = ::testing::TempDir() + "/oplog_test.txt";
  save_oplog_file(path, ops);
  const auto loaded = load_oplog_file(path);
  EXPECT_EQ(loaded.size(), ops.size());
  EXPECT_THROW(load_oplog_file(path + ".missing"), std::runtime_error);
}

}  // namespace
}  // namespace gfsl::harness
