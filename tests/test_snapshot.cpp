// MVCC snapshots (core/snapshot.{h,cpp}; DESIGN.md §13): visibility rules
// across insert/erase/split/merge, watermark-bounded version-chain GC under
// a rotating snapshot holder, expiry and degrade paths, and the A/B
// determinism contract — a Gfsl constructed *without* a SnapshotManager runs
// the seed code path, and attaching one must not change any operation's
// result or the final contents.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/gfsl.h"
#include "core/snapshot.h"
#include "device/device_memory.h"
#include "device/epoch.h"
#include "sched/step_scheduler.h"

namespace gfsl::core {
namespace {

using simt::Team;

using Pairs = std::vector<std::pair<Key, Value>>;

Pairs scan_all(Gfsl& sl, Team& team, const Snapshot& s,
               ScanAtStatus* st_out = nullptr) {
  Pairs got;
  const auto st = sl.scan_at(team, s, MIN_USER_KEY, MAX_USER_KEY, got);
  if (st_out != nullptr) *st_out = st;
  EXPECT_EQ(st, ScanAtStatus::kOk);
  return got;
}

// ---------------------------------------------------------------------------
// Visibility rules.

TEST(SnapshotVisibility, MutationsAfterSnapshotAreInvisible) {
  device::DeviceMemory mem;
  SnapshotManager snaps(1u << 10);
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 10;
  Gfsl sl(cfg, &mem, nullptr, nullptr, nullptr, nullptr, &snaps);
  Team team(8, 0, 5);

  Pairs frozen;
  for (Key k = 10; k <= 50; k += 10) {
    ASSERT_TRUE(sl.insert(team, k, k * 2));
    frozen.emplace_back(k, k * 2);
  }
  Snapshot s1 = sl.snapshot();
  ASSERT_TRUE(s1.open());

  // Every kind of post-snapshot mutation: fresh insert, erase of a frozen
  // key, and erase+reinsert (value change) of another.
  ASSERT_TRUE(sl.insert(team, 15, 1));
  ASSERT_TRUE(sl.erase(team, 30));
  ASSERT_TRUE(sl.erase(team, 40));
  ASSERT_TRUE(sl.insert(team, 40, 999));

  EXPECT_EQ(scan_all(sl, team, s1), frozen)
      << "snapshot leaked post-snapshot mutations";

  Snapshot s2 = sl.snapshot();
  const Pairs now{{10, 20}, {15, 1}, {20, 40}, {40, 999}, {50, 100}};
  EXPECT_EQ(scan_all(sl, team, s2), now);
  sl.release_snapshot(s1);
  sl.release_snapshot(s2);
}

TEST(SnapshotVisibility, EraseThenReinsertResolvesPerRevision) {
  device::DeviceMemory mem;
  SnapshotManager snaps(1u << 10);
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 10;
  Gfsl sl(cfg, &mem, nullptr, nullptr, nullptr, nullptr, &snaps);
  Team team(8, 0, 5);

  ASSERT_TRUE(sl.insert(team, 42, 1));
  Snapshot s1 = sl.snapshot();
  ASSERT_TRUE(sl.erase(team, 42));
  Snapshot s2 = sl.snapshot();
  ASSERT_TRUE(sl.insert(team, 42, 2));
  Snapshot s3 = sl.snapshot();

  EXPECT_EQ(scan_all(sl, team, s1), (Pairs{{42, 1}}));
  EXPECT_EQ(scan_all(sl, team, s2), Pairs{});
  EXPECT_EQ(scan_all(sl, team, s3), (Pairs{{42, 2}}));
  sl.release_snapshot(s1);
  sl.release_snapshot(s2);
  sl.release_snapshot(s3);
}

TEST(SnapshotVisibility, SurvivesSplitsAndMerges) {
  // Small chunks so the post-snapshot churn forces real splits (inserts) and
  // merges (erases) through the frozen keys' chunks; records must ride along
  // with every key move.  The held snapshot pins the GC watermark for the
  // whole cascade, and each merge *copies* the donor's chain into the
  // receiver (the originals only free after epoch grace), so the arena is
  // sized well above the default 4x-pool heuristic — undersizing degrades
  // (by design) instead of returning a torn scan, which is covered by
  // SnapshotExpiry.DegradeExpiresHoldersButNotTheStructure.
  device::DeviceMemory mem;
  device::EpochManager epochs;
  SnapshotManager snaps(1u << 12, /*record_capacity=*/1u << 17);
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem, nullptr, nullptr, &epochs, nullptr, &snaps);
  Team team(8, 0, 5);

  Pairs frozen;
  for (Key k = 5; k <= 500; k += 5) {
    ASSERT_TRUE(sl.insert(team, k, k));
    frozen.emplace_back(k, k);
  }
  Snapshot s = sl.snapshot();
  ASSERT_TRUE(s.open());

  // Split wave: fill every gap.
  for (Key k = 1; k <= 500; ++k) {
    if (k % 5 != 0) sl.insert(team, k, k + 1'000);
  }
  EXPECT_EQ(scan_all(sl, team, s), frozen) << "splits leaked or lost keys";

  // Merge wave: drain everything, frozen keys included.
  for (Key k = 1; k <= 500; ++k) sl.erase(team, k);
  ASSERT_EQ(snaps.overflows(), 0u) << "arena undersized for the cascade";
  EXPECT_EQ(sl.collect().size(), 0u);
  EXPECT_EQ(scan_all(sl, team, s), frozen) << "merges dropped version records";

  const auto rep = sl.validate(/*strict=*/true);
  EXPECT_TRUE(rep.ok) << rep.error;
  sl.release_snapshot(s);
}

// ---------------------------------------------------------------------------
// Expiry and degrade paths.

TEST(SnapshotExpiry, NoManagerYieldsClosedHandle) {
  device::DeviceMemory mem;
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 10;
  Gfsl sl(cfg, &mem);
  Team team(8, 0, 5);
  ASSERT_TRUE(sl.insert(team, 7, 7));

  Snapshot s = sl.snapshot();
  EXPECT_FALSE(s.open());
  Pairs got{{1, 1}};
  EXPECT_EQ(sl.scan_at(team, s, MIN_USER_KEY, MAX_USER_KEY, got),
            ScanAtStatus::kNoManager);
  EXPECT_EQ(got.size(), 1u) << "failed scan_at touched the output tail";
}

TEST(SnapshotExpiry, ReleasedAndLaggingSnapshotsAreRejected) {
  device::DeviceMemory mem;
  SnapshotManager snaps(1u << 10);
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 10;
  Gfsl sl(cfg, &mem, nullptr, nullptr, nullptr, nullptr, &snaps);
  Team team(8, 0, 5);
  ASSERT_TRUE(sl.insert(team, 7, 7));

  Snapshot released = sl.snapshot();
  sl.release_snapshot(released);
  Pairs got{{1, 1}};
  EXPECT_EQ(sl.scan_at(team, released, MIN_USER_KEY, MAX_USER_KEY, got),
            ScanAtStatus::kSnapshotExpired);
  EXPECT_EQ(got.size(), 1u) << "failed scan_at touched the output tail";

  // Lagging policy: a holder that falls `max_age` revisions behind is
  // forcibly expired; the laggard sees kSnapshotExpired, never stale data.
  Snapshot laggard = sl.snapshot();
  for (Key k = 100; k < 120; ++k) sl.insert(team, k, k);
  EXPECT_GE(snaps.expire_lagging(/*max_age=*/4), 1u);
  EXPECT_GE(snaps.snapshots_expired(), 1u);
  got.clear();
  EXPECT_EQ(sl.scan_at(team, laggard, MIN_USER_KEY, MAX_USER_KEY, got),
            ScanAtStatus::kSnapshotExpired);
}

TEST(SnapshotExpiry, DegradeExpiresHoldersButNotTheStructure) {
  device::DeviceMemory mem;
  SnapshotManager snaps(1u << 10);
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 10;
  Gfsl sl(cfg, &mem, nullptr, nullptr, nullptr, nullptr, &snaps);
  Team team(8, 0, 5);
  ASSERT_TRUE(sl.insert(team, 7, 7));

  Snapshot held = sl.snapshot();
  snaps.degrade();
  Pairs got;
  EXPECT_EQ(sl.scan_at(team, held, MIN_USER_KEY, MAX_USER_KEY, got),
            ScanAtStatus::kSnapshotExpired);

  // The structure itself never blocks or breaks: mutations continue, the
  // revision clock moves past the poisoned window, and a *fresh* snapshot
  // resolves correctly again.
  ASSERT_TRUE(sl.insert(team, 8, 8));
  Snapshot fresh = sl.snapshot();
  ASSERT_TRUE(fresh.open());
  EXPECT_EQ(scan_all(sl, team, fresh), (Pairs{{7, 7}, {8, 8}}));
  sl.release_snapshot(fresh);
}

// ---------------------------------------------------------------------------
// Watermark GC: bounded memory under churn with a rotating snapshot holder.

TEST(SnapshotGC, RotatingHolderKeepsRecordArenaBounded) {
  device::DeviceMemory mem;
  device::EpochManager epochs;
  // An arena a fraction of the default size: the soak stamps several times
  // its capacity, so surviving without an overflow-degrade requires pruning
  // down to the rotating watermark every round.
  SnapshotManager snaps(1u << 12, /*record_capacity=*/4096);
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem, nullptr, nullptr, &epochs, nullptr, &snaps);
  Team team(8, 0, 5);

  constexpr std::uint64_t kRounds = 60;
  constexpr std::uint64_t kOpsPerRound = 400;
  constexpr std::uint64_t kRange = 96;  // tight: long per-key histories
  Xoshiro256ss rng(0x50AC);
  Snapshot held = sl.snapshot();
  std::uint64_t peak_live = 0;
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    for (std::uint64_t i = 0; i < kOpsPerRound; ++i) {
      const Key k = 1 + static_cast<Key>(rng.below(kRange));
      if (rng.below(2) == 0) {
        sl.insert(team, k, static_cast<Value>(round));
      } else {
        sl.erase(team, k);
      }
    }
    // Rotate the holder: the watermark advances every round, so departed
    // records older than the new snapshot become GC-eligible.
    Snapshot next = sl.snapshot();
    sl.release_snapshot(held);
    held = next;
    peak_live = std::max(peak_live, snaps.records_live());
  }
  sl.release_snapshot(held);

  EXPECT_GT(snaps.records_created(),
            static_cast<std::uint64_t>(snaps.record_capacity()))
      << "soak too small to exercise GC";
  EXPECT_EQ(snaps.overflows(), 0u)
      << "record arena overflowed: watermark GC is not keeping up";
  EXPECT_LT(peak_live, static_cast<std::uint64_t>(snaps.record_capacity()))
      << "live records reached arena capacity";
  EXPECT_GT(snaps.records_pruned(), 0u);
  const auto rep = sl.validate(/*strict=*/true);
  EXPECT_TRUE(rep.ok) << rep.error;
}

// ---------------------------------------------------------------------------
// A/B determinism: the detached path is the seed path.

struct AbRun {
  std::vector<bool> results;  // per-op return values, in program order
  Pairs contents;
  bool valid = false;
  std::string error;
};

// Two teams churn *disjoint* key spaces under the same seeded deterministic
// schedule (mirrors test_gfsl_deterministic.cpp).  Per-team key spaces make
// every op's result a function of that team's own program order alone, so
// the result vectors and final contents must be identical across the two
// arms even where attaching the manager shifts structural decisions (e.g.
// erase keeps a chunk's max sticky so version chains stay pinned to their
// chunk, which can change split/merge timing and therefore yield counts).
AbRun run_ab(std::uint64_t sched_seed, bool with_snaps) {
  device::DeviceMemory mem;
  sched::StepScheduler sched(sched::StepScheduler::Mode::Deterministic,
                             sched_seed, 2);
  std::unique_ptr<SnapshotManager> snaps;
  if (with_snaps) snaps = std::make_unique<SnapshotManager>(1u << 12);
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem, &sched, nullptr, nullptr, nullptr, snaps.get());

  std::vector<std::vector<bool>> per_team(2);
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Team team(8, t, 5);
      Xoshiro256ss rng(derive_seed(97, static_cast<std::uint64_t>(t)));
      auto& out = per_team[static_cast<std::size_t>(t)];
      sched.enter(t);
      for (int i = 0; i < 200; ++i) {
        const Key k = static_cast<Key>(1 + t * 1'000 + rng.below(64));
        switch (rng.below(3)) {
          case 0:
            out.push_back(sl.insert(team, k, k));
            break;
          case 1:
            out.push_back(sl.erase(team, k));
            break;
          default:
            out.push_back(sl.contains(team, k));
            break;
        }
      }
      sched.leave(t);
    });
  }
  for (auto& th : threads) th.join();

  AbRun r;
  for (const auto& v : per_team) {
    r.results.insert(r.results.end(), v.begin(), v.end());
  }
  r.contents = sl.collect();
  const auto rep = sl.validate(/*strict=*/false);
  r.valid = rep.ok;
  r.error = rep.error;
  return r;
}

TEST(SnapshotABDeterminism, AttachedManagerChangesNoResultOrContents) {
  // The deterministic scheduler replays the same interleaving for both arms
  // (the snapshot sidecar has no yield points), so any behavioral difference
  // introduced by version stamping would surface as a diverging op result or
  // final contents.  Sweep a few schedules.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const AbRun detached = run_ab(seed, /*with_snaps=*/false);
    const AbRun attached = run_ab(seed, /*with_snaps=*/true);
    ASSERT_TRUE(detached.valid) << "seed " << seed << ": " << detached.error;
    ASSERT_TRUE(attached.valid) << "seed " << seed << ": " << attached.error;
    EXPECT_EQ(detached.results, attached.results)
        << "seed " << seed << ": an op returned differently with MVCC armed";
    EXPECT_EQ(detached.contents, attached.contents)
        << "seed " << seed << ": final contents diverged with MVCC armed";
  }
}

TEST(SnapshotABDeterminism, DetachedPathIsReproducible) {
  // Seed-path determinism (same schedule twice, no manager): the baseline
  // the A/B above compares against is itself stable.
  const AbRun a = run_ab(11, /*with_snaps=*/false);
  const AbRun b = run_ab(11, /*with_snaps=*/false);
  EXPECT_EQ(a.results, b.results);
  EXPECT_EQ(a.contents, b.contents);
}

}  // namespace
}  // namespace gfsl::core
