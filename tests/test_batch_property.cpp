// Property tests for the batch execution engine (DESIGN.md §10): algebraic
// invariants that must hold for any correct implementation — batch-of-one
// equivalence with the per-op API, order-insensitivity on distinct keys,
// edge-case batches, bit-identical determinism under the deterministic
// scheduler, and the shard planner / work queue contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/gfsl.h"
#include "device/device_memory.h"
#include "harness/runner.h"
#include "oracle.h"
#include "sched/batch_dispatch.h"
#include "sched/step_scheduler.h"
#include "simt/team.h"

namespace gfsl::core {
namespace {

using gfsl::testing::MapOracle;
using simt::Team;

Value value_of(Key k) { return static_cast<Value>(k * 17 + 3); }

std::vector<Op> random_distinct_key_batch(Xoshiro256ss& rng, std::size_t n) {
  // Distinct keys => every pair of ops commutes, so any op order yields the
  // same final structure and the same per-key outcome.
  std::vector<Op> ops;
  ops.reserve(n);
  Key k = 1;
  for (std::size_t i = 0; i < n; ++i) {
    k += 1 + rng.below(5);
    const auto roll = static_cast<int>(rng.below(3));
    const OpKind kind = roll == 0   ? OpKind::Insert
                        : roll == 1 ? OpKind::Delete
                                    : OpKind::Contains;
    ops.push_back(Op{kind, k, kind == OpKind::Insert ? value_of(k) : Value{0},
                     0});
  }
  return ops;
}

struct Fixture {
  device::DeviceMemory mem;
  GfslConfig cfg;
  Gfsl* sl = nullptr;

  explicit Fixture(std::uint32_t pool = 1u << 12) {
    cfg.pool_chunks = pool;
    sl = new Gfsl(cfg, &mem);
  }
  ~Fixture() { delete sl; }
};

TEST(BatchProperty, EmptyBatch) {
  Fixture f(256);
  Team team(f.sl->team_size(), 0, 1);
  const BatchResult br = run_batch(*f.sl, team, {});
  EXPECT_TRUE(br.outcomes.empty());
  EXPECT_EQ(br.stats.ops, 0u);
  EXPECT_EQ(br.stats.shards, 0u);
  EXPECT_FALSE(br.out_of_memory);
  EXPECT_TRUE(f.sl->collect().empty());
}

TEST(BatchProperty, SingletonBatch) {
  Fixture f(256);
  Team team(f.sl->team_size(), 0, 2);
  const Key k = 50;

  BatchResult br = run_batch(*f.sl, team, {Op{OpKind::Insert, k, 9, 0}});
  ASSERT_EQ(br.outcomes.size(), 1u);
  EXPECT_EQ(br.status(0), BatchOpStatus::kTrue);
  EXPECT_EQ(br.stats.shards, 1u);

  br = run_batch(*f.sl, team, {Op{OpKind::Contains, k, 0, 0}});
  EXPECT_EQ(br.status(0), BatchOpStatus::kTrue);
  br = run_batch(*f.sl, team, {Op{OpKind::Delete, k, 0, 0}});
  EXPECT_EQ(br.status(0), BatchOpStatus::kTrue);
  br = run_batch(*f.sl, team, {Op{OpKind::Contains, k, 0, 0}});
  EXPECT_EQ(br.status(0), BatchOpStatus::kFalse);
}

TEST(BatchProperty, AllDuplicateInsertsExactlyOneSucceeds) {
  Fixture f(256);
  Team team(f.sl->team_size(), 0, 3);
  const Key k = 321;
  std::vector<Op> ops(100, Op{OpKind::Insert, k, value_of(k), 0});
  const BatchResult br = run_batch(*f.sl, team, ops);
  int wins = 0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (br.status(i) == BatchOpStatus::kTrue) ++wins;
  }
  EXPECT_EQ(wins, 1);
  // Submission order within a key: the *first* insert is the winner.
  EXPECT_EQ(br.status(0), BatchOpStatus::kTrue);
  EXPECT_EQ(f.sl->collect().size(), 1u);
}

TEST(BatchProperty, BatchOfOneEqualsPerOpApi) {
  // Replaying a random op sequence one-op-per-batch must behave exactly like
  // the per-op API on a twin structure.
  Fixture batched;
  Fixture perop;
  Team tb(batched.sl->team_size(), 0, 4);
  Team tp(perop.sl->team_size(), 0, 4);

  Xoshiro256ss rng(44);
  for (int i = 0; i < 400; ++i) {
    const Key k = static_cast<Key>(1 + rng.below(64));
    const auto roll = static_cast<int>(rng.below(3));
    const OpKind kind = roll == 0   ? OpKind::Insert
                        : roll == 1 ? OpKind::Delete
                                    : OpKind::Contains;
    const Op op{kind, k, value_of(k), 0};

    const BatchResult br = run_batch(*batched.sl, tb, {op});
    bool want = false;
    switch (kind) {
      case OpKind::Insert:
        want = perop.sl->insert(tp, k, value_of(k));
        break;
      case OpKind::Delete:
        want = perop.sl->erase(tp, k);
        break;
      case OpKind::Contains:
        want = perop.sl->contains(tp, k);
        break;
    }
    ASSERT_EQ(br.status(0), want ? BatchOpStatus::kTrue : BatchOpStatus::kFalse)
        << "op " << i;
  }
  EXPECT_EQ(batched.sl->collect(), perop.sl->collect());
}

TEST(BatchProperty, SortedEqualsShuffledOnDistinctKeys) {
  Xoshiro256ss rng(55);
  auto ops = random_distinct_key_batch(rng, 600);

  auto sorted = ops;
  std::sort(sorted.begin(), sorted.end(),
            [](const Op& a, const Op& b) { return a.key < b.key; });
  auto shuffled = ops;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
  }

  Fixture fa, fb;
  Team ta(fa.sl->team_size(), 0, 5);
  Team tb(fb.sl->team_size(), 0, 5);
  const BatchResult ra = run_batch(*fa.sl, ta, sorted);
  const BatchResult rb = run_batch(*fb.sl, tb, shuffled);

  // Same final structure, and per-key outcomes agree regardless of input
  // permutation.
  EXPECT_EQ(fa.sl->collect(), fb.sl->collect());
  std::map<Key, std::uint8_t> by_key_a, by_key_b;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    by_key_a[sorted[i].key] = ra.outcomes[i];
  }
  for (std::size_t i = 0; i < shuffled.size(); ++i) {
    by_key_b[shuffled[i].key] = rb.outcomes[i];
  }
  EXPECT_EQ(by_key_a, by_key_b);
}

TEST(BatchProperty, ReverseSortedInputMatchesOracle) {
  Fixture f;
  Team team(f.sl->team_size(), 0, 6);
  MapOracle oracle;

  std::vector<Op> ops;
  for (Key k = 500; k >= 1; --k) {
    ops.push_back(Op{OpKind::Insert, k, value_of(k), 0});
  }
  const BatchResult br = run_batch(*f.sl, team, ops);
  const auto want = oracle.apply_batch(ops);
  ASSERT_EQ(br.outcomes, want);
  EXPECT_EQ(f.sl->collect(), oracle.collect());
}

TEST(BatchProperty, DeterminismSameSeedBitIdentical) {
  // Same ops + same seed + deterministic scheduler => bit-identical outcome
  // vectors AND bit-identical batch stats (shards, steals, reuses, pins).
  Xoshiro256ss rng(66);
  std::vector<Op> ops;
  for (int i = 0; i < 3000; ++i) {
    const Key k = static_cast<Key>(1 + rng.below(1024));
    const auto roll = static_cast<int>(rng.below(100));
    const OpKind kind = roll < 30   ? OpKind::Insert
                        : roll < 60 ? OpKind::Delete
                                    : OpKind::Contains;
    ops.push_back(Op{kind, k, value_of(k), 0});
  }

  auto run_once = [&](BatchResult* out) {
    device::DeviceMemory mem;
    GfslConfig cfg;
    cfg.pool_chunks = 1u << 13;
    sched::StepScheduler sched(sched::StepScheduler::Mode::Deterministic, 99,
                               4);
    Gfsl sl(cfg, &mem, &sched);
    harness::RunConfig rc;
    rc.num_workers = 4;
    rc.seed = 99;
    rc.scheduler = &sched;
    harness::BatchRunOptions bo;
    bo.batch_size = 1024;
    const auto rr = harness::run_gfsl_batched(sl, ops, rc, mem, bo, out);
    EXPECT_FALSE(rr.out_of_memory);
    return sl.collect();
  };

  BatchResult a, b;
  const auto state_a = run_once(&a);
  const auto state_b = run_once(&b);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(state_a, state_b);
  EXPECT_EQ(a.stats.shards, b.stats.shards);
  EXPECT_EQ(a.stats.shard_sizes, b.stats.shard_sizes);
  EXPECT_EQ(a.stats.steals, b.stats.steals);
  EXPECT_EQ(a.stats.descent_reuses, b.stats.descent_reuses);
  EXPECT_EQ(a.stats.full_descents, b.stats.full_descents);
  EXPECT_EQ(a.stats.epoch_pins, b.stats.epoch_pins);
}

TEST(BatchProperty, WarmCursorDominatesOnSortedBatches) {
  // The whole point of sorted sharded dispatch: after the first descent of a
  // shard, neighbouring keys reuse the warm cursor instead of descending
  // from the head.  On a dense batch, reuses must dwarf full descents.
  Fixture f(1u << 13);
  Team team(f.sl->team_size(), 0, 7);

  std::vector<Op> ops;
  Xoshiro256ss rng(77);
  for (int i = 0; i < 4096; ++i) {
    const Key k = static_cast<Key>(1 + rng.below(8192));
    ops.push_back(Op{OpKind::Insert, k, value_of(k), 0});
  }
  const BatchResult br = run_batch(*f.sl, team, ops);
  EXPECT_GT(br.stats.descent_reuses, br.stats.full_descents * 4);
  EXPECT_GT(br.stats.descent_reuses + br.stats.full_descents, 0u);
}

TEST(BatchProperty, BatchedRunnerMatchesPerOpRunnerOnDistinctKeys) {
  Xoshiro256ss rng(88);
  const auto ops = random_distinct_key_batch(rng, 2000);

  auto run_mode = [&](bool batched, std::vector<std::uint8_t>* results) {
    device::DeviceMemory mem;
    GfslConfig cfg;
    cfg.pool_chunks = 1u << 13;
    Gfsl sl(cfg, &mem);
    harness::RunConfig rc;
    rc.num_workers = 4;
    rc.seed = 88;
    rc.results = results;
    if (batched) {
      harness::BatchRunOptions bo;
      bo.batch_size = 512;
      (void)harness::run_gfsl_batched(sl, ops, rc, mem, bo);
    } else {
      (void)harness::run_gfsl(sl, ops, rc, mem);
    }
    return sl.collect();
  };

  std::vector<std::uint8_t> res_batched, res_perop;
  const auto state_batched = run_mode(true, &res_batched);
  const auto state_perop = run_mode(false, &res_perop);
  // Distinct keys: all ops commute, so both modes agree element-wise and on
  // the final structure.
  EXPECT_EQ(res_batched, res_perop);
  EXPECT_EQ(state_batched, state_perop);
}

TEST(BatchProperty, PlanShardsIsAPermutationAndNeverSplitsKeys) {
  Xoshiro256ss rng(99);
  std::vector<Op> ops;
  for (int i = 0; i < 1000; ++i) {
    // Small range => long equal-key runs to tempt the splitter.
    const Key k = static_cast<Key>(1 + rng.below(37));
    ops.push_back(Op{OpKind::Insert, k, 0, 0});
  }

  const sched::ShardPlan plan =
      sched::plan_shards(ops, /*num_teams=*/4, /*target_shard_ops=*/16);

  // `order` is a permutation of [0, n).
  ASSERT_EQ(plan.order.size(), ops.size());
  std::vector<bool> seen(ops.size(), false);
  for (const std::uint32_t idx : plan.order) {
    ASSERT_LT(idx, ops.size());
    ASSERT_FALSE(seen[idx]);
    seen[idx] = true;
  }

  // Sorted by (key, submission idx): the strict total order determinism
  // rests on.
  for (std::size_t i = 1; i < plan.order.size(); ++i) {
    const Op& prev = ops[plan.order[i - 1]];
    const Op& curr = ops[plan.order[i]];
    ASSERT_TRUE(prev.key < curr.key ||
                (prev.key == curr.key && plan.order[i - 1] < plan.order[i]));
  }

  // Shards tile [0, n) and never split an equal-key run.
  ASSERT_FALSE(plan.shards.empty());
  EXPECT_EQ(plan.shards.front().begin, 0u);
  EXPECT_EQ(plan.shards.back().end, ops.size());
  for (std::size_t s = 1; s < plan.shards.size(); ++s) {
    ASSERT_EQ(plan.shards[s].begin, plan.shards[s - 1].end);
    const Key left = ops[plan.order[plan.shards[s].begin - 1]].key;
    const Key right = ops[plan.order[plan.shards[s].begin]].key;
    ASSERT_LT(left, right) << "shard boundary splits key " << right;
  }

  // Team ranges tile the shard list.
  ASSERT_EQ(plan.team_ranges.size(), 4u);
  EXPECT_EQ(plan.team_ranges.front().first, 0u);
  EXPECT_EQ(plan.team_ranges.back().second, plan.shards.size());
  for (std::size_t t = 1; t < plan.team_ranges.size(); ++t) {
    EXPECT_EQ(plan.team_ranges[t].first, plan.team_ranges[t - 1].second);
  }
}

TEST(BatchProperty, ShardQueueDrainsEveryShardExactlyOnce) {
  std::vector<Op> ops;
  for (int i = 0; i < 500; ++i) {
    ops.push_back(Op{OpKind::Contains, static_cast<Key>(i + 1), 0, 0});
  }
  const sched::ShardPlan plan =
      sched::plan_shards(ops, /*num_teams=*/3, /*target_shard_ops=*/8);
  ASSERT_GT(plan.shards.size(), 3u);

  sched::ShardQueue queue(plan);
  std::vector<int> popped(plan.shards.size(), 0);
  // Team 2 drains the WHOLE queue: after exhausting its home range it must
  // steal every remaining shard from teams 0 and 1.
  bool team2_stole = false;
  int s;
  bool stolen = false;
  while ((s = queue.pop(2, &stolen)) >= 0) {
    popped[static_cast<std::size_t>(s)]++;
    team2_stole |= stolen;
  }
  for (int t = 0; t < 2; ++t) {
    while ((s = queue.pop(t, &stolen)) >= 0) {
      popped[static_cast<std::size_t>(s)]++;
    }
  }
  for (std::size_t i = 0; i < popped.size(); ++i) {
    EXPECT_EQ(popped[i], 1) << "shard " << i;
  }
  // Team 2 drained shards outside its home range: the steal path fired and
  // was counted.
  EXPECT_TRUE(team2_stole);
  EXPECT_GT(queue.steals(), 0u);
  // Drained queue stays drained.
  EXPECT_EQ(queue.pop(0), -1);
  EXPECT_EQ(queue.pop(2), -1);
}

}  // namespace
}  // namespace gfsl::core
