// Unit tests for the per-key sequential-consistency checker, plus an
// end-to-end concurrent GFSL run checked against its recorded history.
#include <gtest/gtest.h>

#include <thread>

#include "common/random.h"
#include "core/gfsl.h"
#include "device/device_memory.h"
#include "harness/history.h"

namespace gfsl::harness {
namespace {

HistoryEvent ev(std::uint64_t inv, std::uint64_t resp, OpKind k, Key key,
                bool result) {
  return HistoryEvent{inv, resp, k, key, result, 0};
}

TEST(HistoryChecker, EmptyHistory) {
  const auto r = check_history({}, {}, {});
  EXPECT_TRUE(r.ok) << r.error;
}

TEST(HistoryChecker, SequentialLegalHistory) {
  std::vector<HistoryEvent> h{
      ev(0, 1, OpKind::Insert, 5, true),
      ev(2, 3, OpKind::Contains, 5, true),
      ev(4, 5, OpKind::Delete, 5, true),
      ev(6, 7, OpKind::Contains, 5, false),
      ev(8, 9, OpKind::Delete, 5, false),
  };
  const auto r = check_history(h, {}, {});
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.keys_checked, 1u);
  EXPECT_EQ(r.events_checked, 5u);
}

TEST(HistoryChecker, RejectsDoubleInsertSuccess) {
  std::vector<HistoryEvent> h{
      ev(0, 1, OpKind::Insert, 5, true),
      ev(2, 3, OpKind::Insert, 5, true),  // both true, no delete between
  };
  EXPECT_FALSE(check_history(h, {}, {5}).ok);
}

TEST(HistoryChecker, RejectsContainsOnAbsentKey) {
  std::vector<HistoryEvent> h{
      ev(0, 1, OpKind::Contains, 9, true),  // never inserted
  };
  EXPECT_FALSE(check_history(h, {}, {}).ok);
}

TEST(HistoryChecker, AcceptsContainsOnInitialKey) {
  std::vector<HistoryEvent> h{
      ev(0, 1, OpKind::Contains, 9, true),
  };
  EXPECT_TRUE(check_history(h, {9}, {9}).ok);
}

TEST(HistoryChecker, OverlappingOpsMayReorder) {
  // Contains(5)=true overlaps Insert(5)=true and is allowed to linearize
  // after it, even though it was invoked first.
  std::vector<HistoryEvent> h{
      ev(0, 10, OpKind::Contains, 5, true),
      ev(1, 2, OpKind::Insert, 5, true),
  };
  EXPECT_TRUE(check_history(h, {}, {5}).ok) << "overlap reorder";
}

TEST(HistoryChecker, RealTimeOrderIsBinding) {
  // Contains(5)=true STRICTLY BEFORE the only insert: illegal.
  std::vector<HistoryEvent> h{
      ev(0, 1, OpKind::Contains, 5, true),
      ev(2, 3, OpKind::Insert, 5, true),
  };
  EXPECT_FALSE(check_history(h, {}, {5}).ok);
}

TEST(HistoryChecker, ConcurrentInsertsExactlyOneSucceeds) {
  std::vector<HistoryEvent> good{
      ev(0, 5, OpKind::Insert, 7, true),
      ev(1, 6, OpKind::Insert, 7, false),
  };
  EXPECT_TRUE(check_history(good, {}, {7}).ok);
  std::vector<HistoryEvent> bad{
      ev(0, 5, OpKind::Insert, 7, true),
      ev(1, 6, OpKind::Insert, 7, true),
  };
  EXPECT_FALSE(check_history(bad, {}, {7}).ok);
}

TEST(HistoryChecker, FinalStateMustMatch) {
  std::vector<HistoryEvent> h{
      ev(0, 1, OpKind::Insert, 5, true),
  };
  EXPECT_TRUE(check_history(h, {}, {5}).ok);
  EXPECT_FALSE(check_history(h, {}, {}).ok);  // key missing at the end
}

TEST(HistoryChecker, UntouchedKeysAccounted) {
  EXPECT_FALSE(check_history({}, {}, {3}).ok);   // appeared from nowhere
  EXPECT_FALSE(check_history({}, {3}, {}).ok);   // vanished
  EXPECT_TRUE(check_history({}, {3}, {3}).ok);   // carried through
}

TEST(HistoryChecker, MultiKeyIndependence) {
  std::vector<HistoryEvent> h{
      ev(0, 1, OpKind::Insert, 1, true),
      ev(2, 3, OpKind::Insert, 2, true),
      ev(4, 5, OpKind::Delete, 1, true),
      ev(6, 7, OpKind::Contains, 2, true),
  };
  const auto r = check_history(h, {}, {2});
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.keys_checked, 2u);
}

TEST(HistoryLog, RecordsRealTimeOrder) {
  HistoryLog log(16, 2);
  const auto t0 = log.begin_op();
  log.end_op(0, t0, OpKind::Insert, 1, true);
  const auto t1 = log.begin_op();
  log.end_op(1, t1, OpKind::Delete, 1, true);
  const auto m = log.merged();
  ASSERT_EQ(m.size(), 2u);
  EXPECT_LT(m[0].response, m[1].invoke);  // fully ordered
}

TEST(HistoryEndToEnd, ConcurrentGfslRunIsPerKeyConsistent) {
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = 16;
  cfg.pool_chunks = 1u << 15;
  core::Gfsl sl(cfg, &mem);

  // Prefill a known set.
  std::vector<Key> initial;
  {
    simt::Team boot(16, 9, 1);
    for (Key k = 2; k <= 100; k += 2) {
      sl.insert(boot, k, k);
      initial.push_back(k);
    }
  }

  constexpr int kWorkers = 4;
  HistoryLog log(4'096, kWorkers);
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      simt::Team team(16, w, 33);
      Xoshiro256ss rng(derive_seed(1234, static_cast<std::uint64_t>(w)));
      for (int i = 0; i < 2'500; ++i) {
        const Key k = static_cast<Key>(1 + rng.below(120));  // hot overlap
        const OpKind kind = static_cast<OpKind>(rng.below(3));
        const auto t = log.begin_op();
        bool r = false;
        switch (kind) {
          case OpKind::Insert: r = sl.insert(team, k, k); break;
          case OpKind::Delete: r = sl.erase(team, k); break;
          case OpKind::Contains: r = sl.contains(team, k); break;
        }
        log.end_op(w, t, kind, k, r);
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<Key> final_keys;
  for (const auto& [k, v] : sl.collect()) final_keys.push_back(k);
  const auto res = check_history(log.merged(), initial, final_keys);
  EXPECT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.events_checked, kWorkers * 2'500u);
}

}  // namespace
}  // namespace gfsl::harness
