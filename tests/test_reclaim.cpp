// Epoch-based chunk reclamation (DESIGN.md §9): generation-stamp ABA
// detection, grace-period enforcement, crashed-team limbo adoption,
// bounded-memory churn, and determinism with/without an EpochManager.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/chunk.h"
#include "core/gfsl.h"
#include "device/device_memory.h"
#include "device/epoch.h"
#include "device/persist.h"
#include "harness/crash_sweep.h"
#include "harness/runner.h"
#include "sched/lease.h"
#include "sched/step_scheduler.h"
#include "simt/team.h"

namespace gfsl::core {
namespace {

using device::EpochManager;
using simt::Team;

// ---- generation stamps (the ABA defence) ----------------------------------

TEST(ReclaimArena, GenerationStampFlipsAcrossLifetimes) {
  ChunkArena a(8, 4);
  const ChunkRef c = a.alloc_locked();
  const std::uint32_t g0 = a.generation(c);
  EXPECT_EQ(g0 & 1u, 0u);  // even: in use

  a.recycle(c);
  EXPECT_EQ(a.generation(c), g0 + 1);  // odd: on the free-list

  const ChunkRef c2 = a.alloc_locked();
  EXPECT_EQ(c2, c);  // LIFO free-list hands the index straight back
  const std::uint32_t g1 = a.generation(c);
  EXPECT_EQ(g1 & 1u, 0u);
  // A reader parked across the recycle+reuse compares its pre-recycle stamp
  // against the current one and must see a mismatch — this inequality IS the
  // seqlock's staleness signal.
  EXPECT_NE(g1, g0);
}

TEST(ReclaimArena, StaleStampVisibleMidReuse) {
  ChunkArena a(8, 2);
  const ChunkRef c = a.alloc_locked();
  const std::uint32_t parked = a.generation(c);  // reader "parks" here
  a.recycle(c);
  // Stale is detectable both while the index sits free (odd stamp) ...
  EXPECT_NE(a.generation(c), parked);
  EXPECT_EQ(a.generation(c) & 1u, 1u);
  // ... and after it has been re-allocated into a new lifetime.
  ASSERT_EQ(a.alloc_locked(), c);
  EXPECT_NE(a.generation(c), parked);
}

TEST(ReclaimArena, AccountingSeparatesInUseFromHighWater) {
  ChunkArena a(8, 4);
  const ChunkRef c0 = a.alloc_locked();
  const ChunkRef c1 = a.alloc_locked();
  (void)c0;
  EXPECT_EQ(a.allocated(), 2u);
  EXPECT_EQ(a.high_water(), 2u);

  a.recycle(c1);
  EXPECT_EQ(a.allocated(), 1u);   // in-use shrinks ...
  EXPECT_EQ(a.high_water(), 2u);  // ... the sweep bound does not
  EXPECT_EQ(a.free_count(), 1u);
  // Headroom counts both the bump tail and the recycled index.
  EXPECT_TRUE(a.can_alloc(3));
  EXPECT_FALSE(a.can_alloc(4));
}

// ---- epoch grace periods ---------------------------------------------------

TEST(ReclaimEpoch, PinnedReaderBlocksDrainUntilUnpin) {
  EpochManager ep;
  ep.pin(1);         // reader enters at epoch 1
  ep.retire(0, 7);   // writer retires chunk 7 (stamped epoch 1)

  std::vector<ChunkRef> out;
  EXPECT_EQ(ep.drain_safe(0, &out), 0u);  // no grace period yet
  EXPECT_TRUE(ep.try_advance());          // 1 -> 2: reader has caught up
  EXPECT_FALSE(ep.try_advance());         // parked at 1, the epoch wedges
  EXPECT_EQ(ep.drain_safe(0, &out), 0u);  // still protected by the pin

  ep.unpin(1);
  EXPECT_TRUE(ep.try_advance());          // 2 -> 3
  ASSERT_EQ(ep.drain_safe(0, &out), 1u);  // two epochs + no retire-era pin
  EXPECT_EQ(out[0], 7u);
  EXPECT_EQ(ep.limbo_depth(0), 0u);
}

TEST(ReclaimEpoch, RequeueRestartsTheGracePeriod) {
  EpochManager ep;
  ep.retire(0, 3);
  EXPECT_TRUE(ep.try_advance());
  EXPECT_TRUE(ep.try_advance());
  std::vector<ChunkRef> out;
  ASSERT_EQ(ep.drain_safe(0, &out), 1u);

  ep.requeue(0, 3);  // a stale down pointer was found: age it again
  out.clear();
  EXPECT_EQ(ep.drain_safe(0, &out), 0u);  // re-stamped at the current epoch
  EXPECT_TRUE(ep.try_advance());
  EXPECT_TRUE(ep.try_advance());
  EXPECT_EQ(ep.drain_safe(0, &out), 1u);
}

TEST(ReclaimEpoch, OutOfRangeIdsNeverAliasLiveTeamSlots) {
  // Ids outside [0, kMaxSlots) map to one shared overflow slot instead of
  // wrapping modulo onto a live team's slot: a stray force_quiesce/unpin on
  // such an id must not void a real team's grace period, and a stray adopt
  // must not splice a real team's limbo.
  EpochManager ep;
  ep.pin(3);
  ep.retire(3, 21);
  EXPECT_TRUE(ep.try_advance());  // slot 3 pinned at 1; 1 -> 2 still legal

  ep.force_quiesce(3 + EpochManager::kMaxSlots);  // would alias slot 3 if
  ep.unpin(-1);                                   // slot_of wrapped
  EXPECT_TRUE(ep.pinned(3));
  EXPECT_FALSE(ep.try_advance());  // the lagging pin still wedges the epoch

  ep.adopt(3 + EpochManager::kMaxSlots, 9);
  EXPECT_EQ(ep.limbo_depth(3), 1u);  // limbo stayed with its owner
  EXPECT_EQ(ep.limbo_depth(9), 0u);

  // Overflow ids are still fully usable (shared among themselves): a pin is
  // honored by the epoch like any in-range team's.
  ep.unpin(3);
  ep.pin(EpochManager::kMaxSlots + 7);
  EXPECT_TRUE(ep.try_advance());   // overflow pin caught up at pin time
  EXPECT_FALSE(ep.try_advance());  // ... then lags and wedges
  ep.force_quiesce(EpochManager::kMaxSlots + 7);
  EXPECT_TRUE(ep.try_advance());
}

TEST(ReclaimEpoch, MedicQuiescesAndAdoptsCrashedTeam) {
  EpochManager ep;
  ep.pin(2);
  ep.retire(2, 11);
  ep.retire(2, 12);
  EXPECT_TRUE(ep.try_advance());
  EXPECT_FALSE(ep.try_advance());  // the "crashed" pin wedges everyone

  ep.force_quiesce(2);
  ep.adopt(2, 5);
  EXPECT_EQ(ep.limbo_depth(2), 0u);
  EXPECT_EQ(ep.limbo_depth(5), 2u);
  EXPECT_TRUE(ep.try_advance());   // unwedged

  std::vector<ChunkRef> out;
  ASSERT_EQ(ep.drain_safe(5, &out), 2u);  // stamps survived the adoption
  EXPECT_EQ(ep.limbo_total(), 0u);
}

// ---- structure-level reclamation -------------------------------------------

void churn_cycle(Gfsl& sl, Team& team, Key lo, Key hi) {
  for (Key k = lo; k <= hi; ++k) sl.insert(team, k, k);
  for (Key k = lo; k <= hi; ++k) sl.erase(team, k);
}

TEST(ReclaimGfsl, ParkedPinPreventsReuseThenLimboDrains) {
  device::DeviceMemory mem;
  EpochManager ep;
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem, nullptr, nullptr, &ep);
  Team team(8, 0, 1);

  // Scripted interleaving, host-driven: a reader pins, then a writer retires
  // a full structure's worth of chunks "under" it.
  for (Key k = 1; k <= 600; ++k) sl.insert(team, k, k);
  ep.pin(99);  // the parked reader
  for (Key k = 1; k <= 600; ++k) sl.erase(team, k);

  EXPECT_GT(ep.limbo_total(), 0u);          // zombies retired ...
  EXPECT_EQ(sl.chunks_reclaimed(), 0u);     // ... but nothing recycled:
  churn_cycle(sl, team, 1, 600);            // even more churn cannot drain
  EXPECT_EQ(sl.chunks_reclaimed(), 0u);     // past the parked pin

  ep.unpin(99);
  churn_cycle(sl, team, 1, 600);  // epoch advances again; limbo drains
  EXPECT_GT(sl.chunks_reclaimed(), 0u);

  const auto rep = sl.validate(/*strict=*/true);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(ReclaimGfsl, ChurnSoakStaysWithinBoundedMemory) {
  // 50/50 insert/erase on a small key range in a small pool: without
  // reclamation every merge leaks a zombie chunk and this exhausts the pool
  // long before the end; with it the in-use count stays near the live
  // working set forever.
  device::DeviceMemory mem;
  EpochManager ep;
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 4096;
  Gfsl sl(cfg, &mem, nullptr, nullptr, &ep);

  constexpr int kThreads = 4;
  constexpr std::uint64_t kOpsEach = 12'000;  // 48k total > 10x pool capacity
  std::atomic<int> oom{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Team team(8, t, 42);
      Xoshiro256ss rng(derive_seed(7, static_cast<std::uint64_t>(t)));
      try {
        for (std::uint64_t i = 0; i < kOpsEach; ++i) {
          const Key k = 1 + static_cast<Key>(rng.below(512));
          if (rng.below(2) == 0) {
            sl.insert(team, k, k);
          } else {
            sl.erase(team, k);
          }
        }
      } catch (const std::bad_alloc&) {
        oom.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(oom.load(), 0) << "pool exhausted mid-churn";
  EXPECT_GT(sl.chunks_reclaimed(), 0u);
  // In-use = live + zombies-in-flight + limbo: far below the pool size.
  EXPECT_LT(sl.chunks_allocated(), 2048u);
  const auto rep = sl.validate(/*strict=*/false);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.limbo_chunks + rep.free_chunks +
                rep.live_chunks + rep.zombie_chunks,
            static_cast<std::uint64_t>(sl.arena().high_water()))
      << "every index the bump pointer handed out must be classified";
}

TEST(ReclaimGfsl, EraseCompletesOnMergeSplitOom) {
  // No EpochManager: nothing is ever recycled, so once the bump pointer hits
  // the pool end every merge-path receiver split fails.  Erase must still
  // complete (merge-free fallback) instead of throwing bad_alloc *after*
  // the key was already removed from the upper levels — a failed erase used
  // to leave the structure partially mutated while reporting total failure.
  device::DeviceMemory mem;
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 48;  // tiny: inserts exhaust it
  Gfsl sl(cfg, &mem, nullptr, nullptr, /*epochs=*/nullptr);
  Team team(8, 0, 11);

  Key last_inserted = 0;
  try {
    for (Key k = 1; k <= 100000; ++k) {
      sl.insert(team, k, k);
      last_inserted = k;
    }
  } catch (const std::bad_alloc&) {
    // expected: the pool is now exhausted
  }
  ASSERT_GT(last_inserted, 0);

  // Every erase below runs against a full pool; merges that need a receiver
  // split hit OOM and must fall back, never throw, never lose the removal.
  for (Key k = 1; k <= last_inserted; ++k) {
    EXPECT_NO_THROW(EXPECT_TRUE(sl.erase(team, k))) << "key " << k;
  }
  for (Key k = 1; k <= last_inserted; ++k) {
    EXPECT_FALSE(sl.contains(team, k)) << "key " << k;
  }
  // Underfull chunks are legal; every other invariant must hold.
  const auto rep = sl.validate(/*strict=*/false);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.bottom_keys, 0u);
}

TEST(ReclaimGfsl, ChurnWithLockFreeReadersStaysConsistent) {
  // Writers churn a small key range hard enough that chunks are retired,
  // recycled, and reused while lock-free readers (contains + scan) traverse.
  // Readers cross retire/reuse boundaries constantly: the epoch pins plus
  // the transitive requeue of zombie chains (reclaim_pass) and the
  // acquisition-time generation checks must keep a reader from ever walking
  // into a reused chunk.  Every insert stores v == k, so a scan that strayed
  // into a chunk reused as an upper level would return down-pointer values
  // that differ from their keys — that mismatch is the detector.  (Sortedness
  // is NOT asserted: in-chunk shift duplicates are legal seed semantics.)
  device::DeviceMemory mem;
  EpochManager ep;
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 2048;
  Gfsl sl(cfg, &mem, nullptr, nullptr, &ep);

  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      Team team(8, t, 23);
      Xoshiro256ss rng(derive_seed(13, static_cast<std::uint64_t>(t)));
      for (std::uint64_t i = 0; i < 8000; ++i) {
        const Key k = 1 + static_cast<Key>(rng.below(256));
        if (rng.below(2) == 0) {
          sl.insert(team, k, k);
        } else {
          sl.erase(team, k);
        }
      }
      stop.store(true, std::memory_order_release);
    });
  }
  for (int t = 2; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Team team(8, t, 23);
      Xoshiro256ss rng(derive_seed(29, static_cast<std::uint64_t>(t)));
      std::vector<std::pair<Key, Value>> hits;
      while (!stop.load(std::memory_order_acquire)) {
        sl.contains(team, 1 + static_cast<Key>(rng.below(256)));
        hits.clear();
        sl.scan(team, 1, 256, hits);
        for (const auto& [hk, hv] : hits) {
          if (hv != static_cast<Value>(hk)) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(violations.load(), 0) << "a scan observed unsorted/duplicate keys";
  EXPECT_GT(sl.chunks_reclaimed(), 0u);  // reuse actually happened
  const auto rep = sl.validate(/*strict=*/false);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(ReclaimGfsl, CompactReturnsChunksThroughFreeList) {
  device::DeviceMemory mem;
  EpochManager ep;
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem, nullptr, nullptr, &ep);
  Team team(8, 0, 3);

  for (Key k = 1; k <= 300; ++k) sl.insert(team, k, k);
  for (Key k = 1; k <= 300; k += 2) sl.erase(team, k);
  const std::uint32_t before = sl.chunks_allocated();
  const std::uint32_t hw_before = sl.arena().high_water();

  sl.compact();
  // Densely rebuilt: fewer in-use chunks, all through the free-list — the
  // bump high-water mark must not grow.
  EXPECT_LT(sl.chunks_allocated(), before);
  EXPECT_LE(sl.arena().high_water(), hw_before);
  EXPECT_EQ(sl.epochs()->limbo_total(), 0u);

  auto rep = sl.validate(/*strict=*/true);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.bottom_keys, 150u);

  // Idempotent, and the structure keeps answering queries.
  sl.compact();
  rep = sl.validate(/*strict=*/true);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_TRUE(sl.contains(team, 2));
  EXPECT_FALSE(sl.contains(team, 1));
}

// ---- generation protocol across process crashes ----------------------------

TEST(ReclaimPersist, TornOddGenChunkClassifiedFreeNeverLive) {
  // The recycle protocol is gen-flip-first: the generation goes odd *before*
  // the free-list push, so a process crash between the two persists chunks
  // that are odd-generation yet on no list.  Recovery must classify every
  // such chunk as free — odd is never reachable — and must never serve it
  // as live data.  Simulate the torn state by wiping the persisted free-list
  // control words (head + count) out from under a churned image.
  using device::PersistGeometry;
  using device::PersistRegion;
  const std::string path = testing::TempDir() + "gfsl_reclaim_torn.region";
  std::set<Key> expected;
  {
    PersistRegion region(path, PersistRegion::Mode::kCreate,
                         PersistGeometry{8, 4096});
    sched::LeaseTable leases;
    leases.attach(
        static_cast<std::atomic<std::uint32_t>*>(region.lease_slots()),
        /*adopt=*/false);
    device::DeviceMemory mem;
    EpochManager ep;
    GfslConfig cfg;
    cfg.team_size = 8;
    cfg.pool_chunks = 4096;
    Gfsl sl(cfg, &mem, nullptr, &leases, &ep, &region);
    Team team(8, 0, 1);
    for (int round = 0; round < 3; ++round) churn_cycle(sl, team, 1, 600);
    for (Key k = 1; k <= 100; ++k) sl.insert(team, k, k);
    ASSERT_GT(sl.chunks_reclaimed(), 0u) << "churn produced no recycles";
    ASSERT_GT(sl.arena().free_count(), 0u);
    for (const auto& [k, v] : sl.collect()) expected.insert(k);
    // No mark_clean(): the image is dirty, as after SIGKILL.
  }
  std::uint32_t odd_before = 0;
  {
    // Tear the free-list: same control layout the arena maps (chunk.cpp).
    struct Ctl {
      std::atomic<std::uint32_t> next;
      std::atomic<std::uint32_t> free_count;
      std::atomic<std::uint64_t> free_head;
    };
    PersistRegion region(path, PersistRegion::Mode::kAttach);
    auto* ctl = static_cast<Ctl*>(region.arena_control());
    const auto* gens =
        static_cast<const std::atomic<std::uint32_t>*>(region.generations());
    const std::uint32_t hw = ctl->next.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < hw; ++i) {
      if ((gens[i].load(std::memory_order_relaxed) & 1u) != 0) ++odd_before;
    }
    ASSERT_GT(odd_before, 0u);
    ctl->free_count.store(0, std::memory_order_relaxed);
    ctl->free_head.store((std::uint64_t{0} << 32) | NULL_CHUNK,
                         std::memory_order_relaxed);
  }
  {
    PersistRegion region(path, PersistRegion::Mode::kAttach);
    sched::LeaseTable leases;
    leases.attach(
        static_cast<std::atomic<std::uint32_t>*>(region.lease_slots()),
        /*adopt=*/true);
    device::DeviceMemory mem;
    GfslConfig cfg;
    cfg.team_size = 8;
    cfg.pool_chunks = 4096;
    Gfsl sl(cfg, &mem, nullptr, &leases, nullptr, &region);
    const auto rep = sl.recover();
    ASSERT_TRUE(rep.ok) << rep.error;
    // Every stranded odd-gen chunk is back on the free-list ...
    EXPECT_GE(rep.chunks_freed, odd_before);
    EXPECT_GE(sl.arena().free_count(), odd_before);
    // ... and none of them leaked into the live structure: the contents are
    // exactly what the dirty image held, and post-recovery the free-list
    // population and the odd-generation population coincide.
    std::set<Key> recovered;
    for (const auto& [k, v] : sl.collect()) recovered.insert(k);
    EXPECT_EQ(recovered, expected);
    std::uint32_t odd_after = 0;
    for (std::uint32_t i = 0; i < sl.arena().high_water(); ++i) {
      if ((sl.arena().generation(i) & 1u) != 0) ++odd_after;
    }
    EXPECT_EQ(odd_after, sl.arena().free_count());
  }
}

// ---- crash composition -----------------------------------------------------

TEST(ReclaimCrash, SweepWithEpochsStaysConsistent) {
  harness::CrashSweepConfig cfg;
  cfg.workers = 3;
  cfg.team_size = 8;
  cfg.ops = 96;
  cfg.key_range = 48;
  cfg.stride = 5;
  cfg.with_epochs = true;
  const auto res = harness::run_crash_sweep(cfg);
  EXPECT_TRUE(res.ok) << res.error << " (kill step " << res.failed_at_step
                      << ")";
  EXPECT_GT(res.kills_landed, 0u);
}

// ---- determinism -----------------------------------------------------------

struct DetRun {
  std::vector<std::pair<Key, Value>> contents;
  std::uint64_t instructions = 0;
  std::uint64_t steps = 0;
};

DetRun deterministic_run(bool with_epochs, std::uint64_t seed) {
  device::DeviceMemory mem;
  EpochManager ep;
  constexpr int kWorkers = 3;
  sched::StepScheduler sched(sched::StepScheduler::Mode::Deterministic, seed,
                             kWorkers);
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 14;
  Gfsl sl(cfg, &mem, &sched, nullptr, with_epochs ? &ep : nullptr);

  DetRun out;
  std::atomic<std::uint64_t> instructions{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      Team team(8, w, 5);
      Xoshiro256ss rng(derive_seed(seed, static_cast<std::uint64_t>(w)));
      sched.enter(w);
      for (int i = 0; i < 160; ++i) {
        const Key k = 1 + static_cast<Key>(rng.below(64));
        switch (rng.below(3)) {
          case 0: sl.insert(team, k, k); break;
          case 1: sl.erase(team, k); break;
          default: sl.contains(team, k); break;
        }
      }
      sched.leave(w);
      instructions.fetch_add(team.counters().instructions,
                             std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();
  out.contents = sl.collect();
  out.instructions = instructions.load(std::memory_order_relaxed);
  out.steps = sched.global_steps();
  return out;
}

TEST(ReclaimDeterminism, DetachedRunsAreBitIdentical) {
  const DetRun a = deterministic_run(/*with_epochs=*/false, 17);
  const DetRun b = deterministic_run(/*with_epochs=*/false, 17);
  EXPECT_EQ(a.contents, b.contents);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.steps, b.steps);
}

TEST(ReclaimDeterminism, AttachedRunsAreBitIdentical) {
  const DetRun a = deterministic_run(/*with_epochs=*/true, 17);
  const DetRun b = deterministic_run(/*with_epochs=*/true, 17);
  EXPECT_EQ(a.contents, b.contents);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.steps, b.steps);
}

// ---- batched dispatch vs reclamation (DESIGN.md SS10) ----------------------

TEST(ReclaimGfsl, BatchedChurnSoakStaysWithinBoundedMemory) {
  // The batched engine pins once per shard instead of once per op.  A pin
  // held across a whole shard must still cycle fast enough for the epoch to
  // advance and limbo to drain: 50/50 churn through run_gfsl_batched in a
  // small pool would exhaust it within a few batches if per-shard pins
  // stalled reclamation.
  device::DeviceMemory mem;
  EpochManager ep;
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 4096;
  Gfsl sl(cfg, &mem, nullptr, nullptr, &ep);

  std::vector<Op> ops;
  Xoshiro256ss rng(7);
  for (int i = 0; i < 48000; ++i) {  // > 10x pool capacity worth of churn
    const Key k = 1 + static_cast<Key>(rng.below(512));
    ops.push_back(Op{rng.below(2) == 0 ? OpKind::Insert : OpKind::Delete, k,
                     k, 0});
  }

  harness::RunConfig rc;
  rc.num_workers = 4;
  rc.seed = 42;
  harness::BatchRunOptions bo;
  bo.batch_size = 2048;
  BatchResult br;
  const auto rr = harness::run_gfsl_batched(sl, ops, rc, mem, bo, &br);

  EXPECT_FALSE(rr.out_of_memory) << "pool exhausted mid-churn";
  EXPECT_FALSE(br.out_of_memory);
  EXPECT_GT(br.stats.epoch_pins, 0u);
  EXPECT_GT(sl.chunks_reclaimed(), 0u);
  EXPECT_LT(sl.chunks_allocated(), 2048u);
  const auto rep = sl.validate(/*strict=*/false);
  EXPECT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.limbo_chunks + rep.free_chunks +
                rep.live_chunks + rep.zombie_chunks,
            static_cast<std::uint64_t>(sl.arena().high_water()))
      << "every index the bump pointer handed out must be classified";
}

TEST(ReclaimGfsl, PinRefreshInsideGiantShardUnblocksReclamation) {
  // Force the degenerate plan: one team, ONE shard erasing an entire
  // prefilled structure.  The sorted left-to-right erase sweep merges
  // chunk after chunk, retiring ~130 zombies into the team's limbo — far
  // past kReclaimBatch — while the team holds its per-shard pin.  Without
  // the kBatchPinRefresh mid-shard re-pin the epoch could never advance
  // past that pin, drain_safe would find nothing grace-expired, and the
  // run would end with zero chunks recycled.  The refresh cycles the pin
  // every 64 ops, so reclamation must have happened *during* the shard.
  device::DeviceMemory mem;
  EpochManager ep;
  GfslConfig cfg;
  cfg.team_size = 8;
  cfg.pool_chunks = 1u << 12;
  Gfsl sl(cfg, &mem, nullptr, nullptr, &ep);
  Team team(8, 0, 5);

  std::vector<std::pair<Key, Value>> prefill;
  for (Key k = 1; k <= 800; ++k) prefill.emplace_back(k, k);
  sl.bulk_load(prefill);

  std::vector<Op> ops;
  for (Key k = 1; k <= 800; ++k) ops.push_back(Op{OpKind::Delete, k, 0, 0});

  // target_shard_ops >= n: plan_shards emits a single shard.
  const BatchResult br = run_batch(sl, team, ops, ops.size());
  ASSERT_EQ(br.stats.shards, 1u);
  EXPECT_FALSE(br.out_of_memory);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ASSERT_EQ(br.status(i), BatchOpStatus::kTrue) << "erase " << i;
  }
  EXPECT_GT(br.stats.epoch_pins, 1u) << "no mid-shard pin refresh happened";
  EXPECT_GT(sl.chunks_reclaimed(), 0u)
      << "reclamation stalled behind the per-shard pin";
  const auto rep = sl.validate(/*strict=*/false);
  EXPECT_TRUE(rep.ok) << rep.error;
}

}  // namespace
}  // namespace gfsl::core
