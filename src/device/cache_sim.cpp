#include "device/cache_sim.h"

#include <bit>
#include <stdexcept>

namespace gfsl::device {

CacheSim::CacheSim(const CacheConfig& cfg) : cfg_(cfg) {
  if (cfg_.line_bytes == 0 || (cfg_.line_bytes & (cfg_.line_bytes - 1)) != 0) {
    throw std::invalid_argument("cache line size must be a power of two");
  }
  if (cfg_.associativity == 0) {
    throw std::invalid_argument("associativity must be positive");
  }
  const std::uint64_t lines = cfg_.capacity_bytes / cfg_.line_bytes;
  num_sets_ = static_cast<std::uint32_t>(lines / cfg_.associativity);
  if (num_sets_ == 0) num_sets_ = 1;
  ways_.assign(static_cast<std::size_t>(num_sets_) * cfg_.associativity, Way{});
}

bool CacheSim::access(std::uint64_t byte_addr) {
  const std::uint64_t line = byte_addr / cfg_.line_bytes;
  const std::uint32_t set = static_cast<std::uint32_t>(line % num_sets_);
  const std::uint64_t tag = line / num_sets_;

  std::lock_guard<std::mutex> lk(mu_);
  ++tick_;
  Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.associativity];

  Way* victim = base;
  for (std::uint32_t w = 0; w < cfg_.associativity; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = tick_;
      ++hits_;
      return true;
    }
    if (!way.valid) {
      victim = &way;  // prefer an empty way over evicting
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }

  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  ++misses_;
  return false;
}

void CacheSim::invalidate_all() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& w : ways_) w.valid = false;
}

}  // namespace gfsl::device
