// Epoch-based reclamation for chunk indices (DESIGN.md §9).
//
// The paper never frees a chunk: merges mark the donor a *zombie* and leave
// it linked until lazily unlinked, so a sustained insert/erase mix exhausts
// the pool no matter how large it is (the way M&C "runs out of memory",
// §5.3).  This manager closes the loop: once a zombie is *unlinked* it is
// retired into the unlinking team's limbo list stamped with the current
// global epoch, and its index may be recycled only after a grace period in
// which every concurrently running operation provably began after the
// unlink.
//
// Protocol (classic EBR, adapted to the team/lockstep model):
//
//  * One slot per team id.  A team *pins* the global epoch on operation
//    entry (slot = E, E >= 1) and unpins on exit (slot = 0).  Pinning is a
//    Dekker handshake with reclaimers — both sides use seq_cst so a pin
//    cannot be invisible to a concurrent min_active_epoch() scan that
//    already advanced past it.
//  * The global epoch advances only when every pinned slot has caught up to
//    it, so active pins always span at most {E-1, E}.
//  * A retired index stamped with epoch `e` is a *reclaim candidate* once
//    global >= e+2 AND min_active_epoch() > e+1: every pin taken before the
//    unlink has since been dropped, so only parked references remain and
//    those are exactly the ones the generation stamps (core/chunk.h) make
//    detectable.  Final *reuse* safety additionally needs the structural
//    reference scan in Gfsl::reclaim_pass() — stale upper-level down
//    pointers are persistent references no pin protects.
//
// Crash composition (sched/lease.h): a crashed team's pin would wedge the
// epoch forever, so the medic — after repairing the victim's intent — calls
// force_quiesce(victim) to clear the stale pin and adopt(victim, medic) to
// take over its limbo list; the retired indices drain through the medic's
// own reclaim passes.
//
// Layering: this lives in the device layer and depends only on common/ —
// *when* to quiesce or adopt is decided by core/recovery.cpp, which owns the
// lease table.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/types.h"

namespace gfsl::device {

class EpochManager {
 public:
  using Epoch = std::uint64_t;
  /// Covers sched::LeaseTable::kMaxTeams plus the extra medic id the crash
  /// harness uses.  Ids outside [0, kMaxSlots) share one dedicated overflow
  /// slot (see slot_of) — they can interfere with each other but can never
  /// alias a live in-range team's pin or limbo list.
  static constexpr int kMaxSlots = 256;
  /// Sentinel from min_active_epoch() when no team is pinned.
  static constexpr Epoch kNoPin = ~Epoch{0};

  EpochManager();

  // --- Pinning -------------------------------------------------------------

  /// Pin `id`'s slot to the current global epoch.  Idempotent: an already
  /// pinned slot is left alone (nested operation scopes).
  void pin(int id);
  /// Clear `id`'s pin.  The release store publishes every structure access
  /// made under the pin before a reclaimer can observe the slot empty.
  void unpin(int id);
  bool pinned(int id) const {
    return slots_[slot_of(id)].load(std::memory_order_acquire) != 0;
  }

  Epoch global() const { return global_.load(std::memory_order_seq_cst); }
  /// Advance the global epoch if every pinned slot has caught up to it.
  bool try_advance();
  /// Minimum epoch over all pinned slots, kNoPin when none are pinned.
  Epoch min_active_epoch() const;
  /// global - min_active: how far the slowest pinned team lags (0 if none).
  Epoch epoch_lag() const;

  // --- Retire / reclaim ----------------------------------------------------

  /// Queue an unlinked chunk index on `id`'s limbo list, stamped with the
  /// current global epoch.  Must be called by the unlinking team, exactly
  /// once per unlink (the unlink point is unique: a predecessor's held lock
  /// or a won head-swing CAS).
  void retire(int id, ChunkRef ref);

  /// Move every reclaim candidate (grace period elapsed, see header) from
  /// `id`'s limbo list into `out`; returns how many moved.  The caller owns
  /// the final reference scan + recycle/requeue decision.
  std::size_t drain_safe(int id, std::vector<ChunkRef>* out);

  /// Put a drained candidate back in limbo, re-stamped with the *current*
  /// epoch (used when the reference scan finds a live down pointer — the
  /// repair it triggers must itself age before the index can be reused).
  void requeue(int id, ChunkRef ref);

  /// Quiescent only (compact()/bulk_load()): empty every limbo list into
  /// `out` regardless of grace periods.  Safe because the caller guarantees
  /// no team is running — there is nothing a stamp could still protect.
  std::size_t drain_all(std::vector<ChunkRef>* out);

  // --- Ticket limbo ---------------------------------------------------------
  // A second, payload-agnostic limbo channel with the same grace-period
  // rules, for resources other than chunk indices that lock-free readers
  // reach under an epoch pin (today: MVCC version-record indices,
  // core/snapshot.h).  Tickets never take the reclaim pass's structural
  // reference scan — once their grace elapses they are simply handed back.

  /// Queue `ticket` on `id`'s ticket limbo, stamped with the current epoch.
  void retire_ticket(int id, std::uint32_t ticket);
  /// Move every grace-elapsed ticket from `id`'s list into `out`.
  std::size_t drain_safe_tickets(int id, std::vector<std::uint32_t>* out);
  /// Quiescent only: empty every ticket list regardless of grace periods.
  std::size_t drain_all_tickets(std::vector<std::uint32_t>* out);
  std::size_t ticket_limbo_total() const;

  // --- Crash composition ---------------------------------------------------

  /// Drop `id`'s pin unconditionally (the team is certified crashed and
  /// will never unpin itself).
  void force_quiesce(int id);
  /// Splice `from`'s limbo list onto `to`'s (medic adoption).  Stamps are
  /// preserved — the adopted indices still honor their grace periods.
  void adopt(int from, int to);

  // --- Introspection -------------------------------------------------------

  std::size_t limbo_depth(int id) const;
  std::size_t limbo_total() const;
  /// All refs currently in limbo, over every slot (validate()).
  std::vector<ChunkRef> limbo_snapshot() const;
  std::uint64_t retired_total() const {
    return retired_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t epoch_advances() const {
    return advances_.load(std::memory_order_relaxed);
  }
  Epoch slot(int id) const {
    return slots_[slot_of(id)].load(std::memory_order_acquire);
  }

 private:
  struct Retired {
    ChunkRef ref;
    Epoch epoch;
  };
  struct Limbo {
    mutable std::mutex mu;
    std::vector<Retired> items;
  };
  struct RetiredTicket {
    std::uint32_t ticket;
    Epoch epoch;
  };
  struct TicketLimbo {
    mutable std::mutex mu;
    std::vector<RetiredTicket> items;
  };

  // Out-of-range ids map to the overflow slot at index kMaxSlots instead of
  // wrapping onto a live team's slot: a stray force_quiesce/unpin on such an
  // id must never drop an unrelated team's epoch pin, and a stray adopt must
  // never splice an unrelated team's limbo.
  static std::size_t slot_of(int id) {
    return (id >= 0 && id < kMaxSlots) ? static_cast<std::size_t>(id)
                                       : static_cast<std::size_t>(kMaxSlots);
  }

  std::atomic<Epoch> global_;
  std::atomic<Epoch> slots_[kMaxSlots + 1];
  Limbo limbo_[kMaxSlots + 1];
  TicketLimbo tickets_[kMaxSlots + 1];
  std::atomic<std::uint64_t> retired_total_;
  std::atomic<std::uint64_t> advances_;
};

}  // namespace gfsl::device
