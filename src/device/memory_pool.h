// Bump-pointer device memory pool (§4.1).
//
// "During the initialization stage we create the structure and allocate an
//  array of chunks in the device memory for a memory pool. ... Allocations
//  from the memory pool are performed by incrementing a global counter and
//  using the resulting index as a pointer."
//
// The pool is index-addressed: a 32-bit index stands in for a device pointer
// (§4.2: for 128 B chunks a 32-bit index covers 512 GB).  Indices double as
// synthetic device addresses (index * sizeof(T)) for the cache/coalescing
// model, so the simulated memory layout is exactly the dense array layout the
// real implementation would have.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>

namespace gfsl::device {

template <typename T>
class MemoryPool {
 public:
  explicit MemoryPool(std::uint32_t capacity)
      : capacity_(capacity),
        storage_(std::make_unique<T[]>(capacity)),
        next_(0) {}

  /// Allocate one object; returns its index.  Throws std::bad_alloc on
  /// exhaustion — the paper's M&C runs "run out of memory for larger
  /// structures" the same way (§5.3).
  std::uint32_t alloc() {
    const std::uint32_t idx = next_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= capacity_) {
      next_.fetch_sub(1, std::memory_order_relaxed);
      throw std::bad_alloc();
    }
    return idx;
  }

  /// True if `count` more allocations would succeed right now.
  bool can_alloc(std::uint32_t count = 1) const {
    return next_.load(std::memory_order_relaxed) + count <= capacity_;
  }

  T& operator[](std::uint32_t idx) { return storage_[idx]; }
  const T& operator[](std::uint32_t idx) const { return storage_[idx]; }

  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t allocated() const {
    return std::min(next_.load(std::memory_order_relaxed), capacity_);
  }

  /// Synthetic device byte address of element `idx` for the memory model.
  std::uint64_t device_address(std::uint32_t idx) const {
    return static_cast<std::uint64_t>(idx) * sizeof(T);
  }

  /// Reset the bump pointer.  Only legal when no other thread is using the
  /// pool (used by tests and by Gfsl::compact()).
  void reset() { next_.store(0, std::memory_order_relaxed); }

 private:
  std::uint32_t capacity_;
  std::unique_ptr<T[]> storage_;
  std::atomic<std::uint32_t> next_;
};

}  // namespace gfsl::device
