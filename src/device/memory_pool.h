// Device memory pool (§4.1) — bump pointer plus a lock-free free-list.
//
// "During the initialization stage we create the structure and allocate an
//  array of chunks in the device memory for a memory pool. ... Allocations
//  from the memory pool are performed by incrementing a global counter and
//  using the resulting index as a pointer."
//
// The pool is index-addressed: a 32-bit index stands in for a device pointer
// (§4.2: for 128 B chunks a 32-bit index covers 512 GB).  Indices double as
// synthetic device addresses (index * sizeof(T)) for the cache/coalescing
// model, so the simulated memory layout is exactly the dense array layout the
// real implementation would have.
//
// Beyond the paper: `free()` returns an index to a LIFO Treiber free-list
// (tagged head, so pops are ABA-safe) and `alloc()` prefers recycled indices
// over fresh ones.  Exhaustion returns `kNullIndex` instead of throwing —
// allocation failure on the device is a value the kernel handles, not an
// exception (callers map it to RunResult::out_of_memory).  Reuse *safety*
// (when an index may be freed) is the epoch layer's job (device/epoch.h);
// the pool only recycles what it is handed.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>

namespace gfsl::device {

template <typename T>
class MemoryPool {
 public:
  /// Sentinel returned by alloc() on exhaustion.
  static constexpr std::uint32_t kNullIndex = 0xFFFFFFFFu;

  explicit MemoryPool(std::uint32_t capacity)
      : capacity_(capacity),
        storage_(std::make_unique<T[]>(capacity)),
        free_next_(std::make_unique<std::atomic<std::uint32_t>[]>(capacity)),
        next_(0),
        free_head_(pack(0, kNullIndex)),
        free_count_(0) {
    for (std::uint32_t i = 0; i < capacity; ++i) {
      free_next_[i].store(kNullIndex, std::memory_order_relaxed);
    }
  }

  /// Allocate one object; returns its index, or kNullIndex on exhaustion.
  /// Recycled indices are handed out LIFO before the bump pointer grows.
  std::uint32_t alloc() {
    std::uint64_t h = free_head_.load(std::memory_order_acquire);
    while (idx_of(h) != kNullIndex) {
      const std::uint32_t idx = idx_of(h);
      const std::uint32_t nxt = free_next_[idx].load(std::memory_order_relaxed);
      if (free_head_.compare_exchange_weak(h, pack(tag_of(h), nxt),
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        free_count_.fetch_sub(1, std::memory_order_relaxed);
        return idx;
      }
    }
    const std::uint32_t idx = next_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= capacity_) {
      next_.fetch_sub(1, std::memory_order_relaxed);
      return kNullIndex;
    }
    return idx;
  }

  /// Return an index to the free-list.  The caller must guarantee no thread
  /// will still acquire new references to it (epoch grace period).
  void free(std::uint32_t idx) {
    std::uint64_t h = free_head_.load(std::memory_order_relaxed);
    for (;;) {
      free_next_[idx].store(idx_of(h), std::memory_order_relaxed);
      if (free_head_.compare_exchange_weak(h, pack(tag_of(h) + 1, idx),
                                           std::memory_order_release,
                                           std::memory_order_relaxed)) {
        break;
      }
    }
    free_count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// True if `count` more allocations would succeed right now — bump
  /// headroom plus the free-list population, consistent with alloc().
  bool can_alloc(std::uint32_t count = 1) const {
    const auto bumped = next_.load(std::memory_order_relaxed);
    const std::uint32_t headroom = bumped < capacity_ ? capacity_ - bumped : 0;
    return headroom + free_count_.load(std::memory_order_relaxed) >= count;
  }

  T& operator[](std::uint32_t idx) { return storage_[idx]; }
  const T& operator[](std::uint32_t idx) const { return storage_[idx]; }

  std::uint32_t capacity() const { return capacity_; }
  /// Objects currently in use (bump high-water minus free-list population).
  std::uint32_t allocated() const {
    const auto hw = high_water();
    const auto freed = free_count_.load(std::memory_order_relaxed);
    return freed < hw ? hw - freed : 0;
  }
  /// Highest index ever handed out; full-pool sweeps walk [0, high_water()).
  std::uint32_t high_water() const {
    return std::min(next_.load(std::memory_order_relaxed), capacity_);
  }
  std::uint32_t free_count() const {
    return free_count_.load(std::memory_order_relaxed);
  }

  /// Synthetic device byte address of element `idx` for the memory model.
  std::uint64_t device_address(std::uint32_t idx) const {
    return static_cast<std::uint64_t>(idx) * sizeof(T);
  }

  /// Reset the bump pointer and drop the free-list.  Only legal when no
  /// other thread is using the pool (used by tests).
  void reset() {
    next_.store(0, std::memory_order_relaxed);
    free_head_.store(pack(0, kNullIndex), std::memory_order_relaxed);
    free_count_.store(0, std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < capacity_; ++i) {
      free_next_[i].store(kNullIndex, std::memory_order_relaxed);
    }
  }

 private:
  static constexpr std::uint64_t pack(std::uint32_t tag, std::uint32_t idx) {
    return (static_cast<std::uint64_t>(tag) << 32) | idx;
  }
  static constexpr std::uint32_t tag_of(std::uint64_t h) {
    return static_cast<std::uint32_t>(h >> 32);
  }
  static constexpr std::uint32_t idx_of(std::uint64_t h) {
    return static_cast<std::uint32_t>(h);
  }

  std::uint32_t capacity_;
  std::unique_ptr<T[]> storage_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> free_next_;
  std::atomic<std::uint32_t> next_;
  std::atomic<std::uint64_t> free_head_;
  std::atomic<std::uint32_t> free_count_;
};

}  // namespace gfsl::device
