#include "device/device_memory.h"

namespace gfsl::device {

MemStats& MemStats::operator+=(const MemStats& o) {
  warp_reads += o.warp_reads;
  warp_writes += o.warp_writes;
  lane_reads += o.lane_reads;
  lane_writes += o.lane_writes;
  transactions += o.transactions;
  l2_hits += o.l2_hits;
  dram_transactions += o.dram_transactions;
  atomics += o.atomics;
  bytes_moved += o.bytes_moved;
  prefetches += o.prefetches;
  return *this;
}

MemStats MemStats::operator-(const MemStats& o) const {
  MemStats r = *this;
  r.warp_reads -= o.warp_reads;
  r.warp_writes -= o.warp_writes;
  r.lane_reads -= o.lane_reads;
  r.lane_writes -= o.lane_writes;
  r.transactions -= o.transactions;
  r.l2_hits -= o.l2_hits;
  r.dram_transactions -= o.dram_transactions;
  r.atomics -= o.atomics;
  r.bytes_moved -= o.bytes_moved;
  r.prefetches -= o.prefetches;
  return r;
}

DeviceMemory::DeviceMemory(const CacheConfig& cfg)
    : cache_(cfg), accounting_(true) {}

void DeviceMemory::record_contiguous(std::uint64_t addr, std::uint32_t bytes,
                                     std::atomic<std::uint64_t>* class_counter) {
  if (!accounting()) return;
  const std::uint32_t line = cache_.config().line_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = (addr + bytes - 1) / line;

  class_counter->fetch_add(1, std::memory_order_relaxed);
  for (std::uint64_t l = first; l <= last; ++l) {
    transactions_.fetch_add(1, std::memory_order_relaxed);
    bytes_moved_.fetch_add(line, std::memory_order_relaxed);
    if (cache_.access(l * line)) {
      l2_hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      dram_transactions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void DeviceMemory::atomic_rmw(std::uint64_t addr) {
  if (!accounting()) return;
  atomics_.fetch_add(1, std::memory_order_relaxed);
  // An atomic still moves its line through L2 (atomics resolve in L2 on
  // Maxwell); classify it like a one-line transaction.
  const std::uint32_t line = cache_.config().line_bytes;
  transactions_.fetch_add(1, std::memory_order_relaxed);
  bytes_moved_.fetch_add(line, std::memory_order_relaxed);
  if (cache_.access((addr / line) * line)) {
    l2_hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    dram_transactions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void DeviceMemory::prefetch(std::uint64_t addr, std::uint32_t bytes) {
  if (!accounting()) return;
  prefetches_.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t line = cache_.config().line_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = (addr + bytes - 1) / line;
  for (std::uint64_t l = first; l <= last; ++l) {
    // Touch the line through the L2 model so the demand read that follows
    // classifies as a hit; no transaction or byte accounting — a prefetch
    // rides otherwise-idle bandwidth in the modeled machine.
    cache_.access(l * line);
  }
}

MemStats DeviceMemory::snapshot() const {
  MemStats s;
  s.warp_reads = warp_reads_.load(std::memory_order_relaxed);
  s.warp_writes = warp_writes_.load(std::memory_order_relaxed);
  s.lane_reads = lane_reads_.load(std::memory_order_relaxed);
  s.lane_writes = lane_writes_.load(std::memory_order_relaxed);
  s.transactions = transactions_.load(std::memory_order_relaxed);
  s.l2_hits = l2_hits_.load(std::memory_order_relaxed);
  s.dram_transactions = dram_transactions_.load(std::memory_order_relaxed);
  s.atomics = atomics_.load(std::memory_order_relaxed);
  s.bytes_moved = bytes_moved_.load(std::memory_order_relaxed);
  s.prefetches = prefetches_.load(std::memory_order_relaxed);
  return s;
}

void DeviceMemory::reset_stats() {
  warp_reads_.store(0, std::memory_order_relaxed);
  warp_writes_.store(0, std::memory_order_relaxed);
  lane_reads_.store(0, std::memory_order_relaxed);
  lane_writes_.store(0, std::memory_order_relaxed);
  transactions_.store(0, std::memory_order_relaxed);
  l2_hits_.store(0, std::memory_order_relaxed);
  dram_transactions_.store(0, std::memory_order_relaxed);
  atomics_.store(0, std::memory_order_relaxed);
  bytes_moved_.store(0, std::memory_order_relaxed);
  prefetches_.store(0, std::memory_order_relaxed);
}

}  // namespace gfsl::device
