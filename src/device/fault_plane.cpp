#include "device/fault_plane.h"

#include <cstdio>

namespace gfsl::device {

namespace {

/// splitmix64: the canonical seed-expansion PRNG — every output is a pure
/// function of the seed, no shared state between draws.
std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

const char* fault_section_name(FaultSection s) {
  switch (s) {
    case FaultSection::kChunkData: return "chunk";
    case FaultSection::kFreeList: return "freelist";
    case FaultSection::kIntents: return "intent";
    case FaultSection::kSuperblock: return "superblock";
    case FaultSection::kGenerations: return "generation";
  }
  return "?";
}

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kBitFlip: return "flip";
    case FaultKind::kMultiBitFlip: return "multiflip";
    case FaultKind::kTornEntry: return "torn";
    case FaultKind::kStuckWord: return "stuck";
    case FaultKind::kDroppedBarrier: return "dropbarrier";
  }
  return "?";
}

bool parse_fault_section(const std::string& s, FaultSection* out) {
  for (int i = 0; i < kFaultSectionCount; ++i) {
    const auto sec = static_cast<FaultSection>(i);
    if (s == fault_section_name(sec)) {
      *out = sec;
      return true;
    }
  }
  return false;
}

bool parse_fault_kind(const std::string& s, FaultKind* out) {
  for (int i = 0; i < kFaultKindCount; ++i) {
    const auto kind = static_cast<FaultKind>(i);
    if (s == fault_kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::string FaultReport::describe() const {
  char buf[160];
  if (!injected) {
    std::snprintf(buf, sizeof(buf), "%s:%s:%llu (not injected)",
                  fault_section_name(section), fault_kind_name(kind),
                  static_cast<unsigned long long>(seed));
    return buf;
  }
  std::snprintf(buf, sizeof(buf),
                "%s:%s:%llu @ +0x%llx  %016llx -> %016llx",
                fault_section_name(section), fault_kind_name(kind),
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(offset),
                static_cast<unsigned long long>(before),
                static_cast<unsigned long long>(after));
  return buf;
}

void FaultPlane::map_section(FaultSection s, void* base, std::size_t bytes) {
  auto& w = windows_[static_cast<int>(s)];
  w.base = base;
  w.words = bytes / 8;
}

bool FaultPlane::armed(FaultSection s) const {
  return windows_[static_cast<int>(s)].words != 0;
}

FaultReport FaultPlane::inject(const FaultSpec& spec) {
  FaultReport rep;
  rep.section = spec.section;
  rep.kind = spec.kind;
  rep.seed = spec.seed;
  if (spec.kind == FaultKind::kDroppedBarrier) {
    // Barriers are events, not words: arm 1-3 drops from the seed.
    std::uint64_t st = spec.seed;
    arm_barrier_drops(1 + splitmix64(st) % 3);
    rep.injected = true;
    return rep;
  }
  const Window& w = windows_[static_cast<int>(spec.section)];
  if (w.words == 0) return rep;
  std::uint64_t st = spec.seed ^ (static_cast<std::uint64_t>(spec.section) << 56);
  auto* word = static_cast<std::uint64_t*>(w.base) + splitmix64(st) % w.words;
  FaultReport r = inject_at(spec.kind, word, st);
  r.section = spec.section;
  r.seed = spec.seed;
  r.offset = static_cast<std::uint64_t>(
      reinterpret_cast<const char*>(word) - static_cast<const char*>(w.base));
  return r;
}

FaultReport FaultPlane::inject_at(FaultKind kind, void* word,
                                  std::uint64_t seed) {
  FaultReport rep;
  rep.kind = kind;
  rep.seed = seed;
  rep.address = word;
  auto* p = static_cast<std::uint64_t*>(word);
  std::uint64_t st = seed * 0x2545f4914f6cdd1dull + 0x9e3779b97f4a7c15ull;
  const std::uint64_t before = *p;
  std::uint64_t after = before;
  switch (kind) {
    case FaultKind::kBitFlip:
      after ^= 1ull << (splitmix64(st) % 64);
      break;
    case FaultKind::kMultiBitFlip: {
      const int bits = 2 + static_cast<int>(splitmix64(st) % 3);  // 2..4
      for (int i = 0; i < bits; ++i) after ^= 1ull << (splitmix64(st) % 64);
      if (after == before) after ^= 1ull;  // flips may cancel; never a no-op
      break;
    }
    case FaultKind::kTornEntry: {
      // A 32-bit-granular store torn mid-entry: one half keeps its old
      // bytes, the other takes a plausible-but-wrong value.
      const std::uint64_t garbage = splitmix64(st);
      if ((splitmix64(st) & 1) != 0) {
        after = (before & 0xffffffff00000000ull) | (garbage & 0xffffffffull);
      } else {
        after = (before & 0xffffffffull) | (garbage & 0xffffffff00000000ull);
      }
      if (after == before) after ^= 1ull;
      break;
    }
    case FaultKind::kStuckWord:
      after ^= 1ull << (splitmix64(st) % 64);
      stuck_.push_back(Stuck{p, after});
      break;
    case FaultKind::kDroppedBarrier:
      return rep;  // not a word fault; inject() handles it
  }
  *p = after;
  std::atomic_thread_fence(std::memory_order_seq_cst);
  rep.injected = true;
  rep.before = before;
  rep.after = after;
  injected_.fetch_add(1, std::memory_order_relaxed);
  return rep;
}

void FaultPlane::reassert() {
  for (const Stuck& s : stuck_) {
    *s.addr = s.value;
  }
  if (!stuck_.empty()) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }
}

}  // namespace gfsl::device
