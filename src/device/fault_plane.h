// Deterministic fault-injection plane for the device layer (DESIGN.md §15).
//
// The paper's target hardware is a consumer GTX-970: ECC-less GDDR5 where a
// cosmic-ray bit flip lands in live data and nothing at the device level
// notices.  The FaultPlane models that adversary *deterministically*: each
// durable section of the region (chunk slots, generation stamps, free-list
// linkage, intent descriptors, the superblock) registers its byte window
// here, and `inject()` picks a victim 8-byte word from a seed-driven PRNG
// and applies one fault kind:
//
//   * kBitFlip       — one bit inverted in the victim word (classic soft
//                      error in an idle cell).
//   * kMultiBitFlip  — 2–4 bits inverted, possibly spanning adjacent bytes
//                      (a row-disturb burst; defeats parity-per-byte
//                      schemes, still caught by CRC32C).
//   * kTornEntry     — half of an 8-byte entry replaced with pseudo-random
//                      garbage (a 32-bit-granular store torn by power loss;
//                      the word is *plausible*, not obviously insane).
//   * kStuckWord     — a bit flip that *re-asserts itself*: the plane
//                      remembers (address, corrupt value) and rewrites it on
//                      every `reassert()` tick, modeling a failed cell that
//                      repair cannot durably overwrite.
//   * kDroppedBarrier— the n-th persist barrier after arming is silently
//                      skipped (no fence, no sync), modeling a write-combining
//                      buffer that lied about durability.
//
// Everything is a pure function of (section windows, spec.seed): the same
// build, workload, and spec corrupts the same bit of the same word, which is
// what lets `gfsl_fuzz --corrupt-sweep` print a one-line repro for any
// failure.  The plane never allocates after arming and injection is plain
// stores — it is safe to call from the harness between quiesced phases or
// (for reassert) from the traffic path.
//
// Detached behavior: a null FaultPlane pointer anywhere (DeviceMemory,
// PersistRegion) is the default and costs one branch; no section window is
// consulted and no fault can fire.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace gfsl::device {

enum class FaultSection : std::uint8_t {
  kChunkData = 0,    // chunk slot payload (DATA entries of sealed chunks)
  kFreeList = 1,     // free-list linkage words
  kIntents = 2,      // published intent descriptors
  kSuperblock = 3,   // region superblock page
  kGenerations = 4,  // per-chunk generation stamps
};
constexpr int kFaultSectionCount = 5;

enum class FaultKind : std::uint8_t {
  kBitFlip = 0,
  kMultiBitFlip = 1,
  kTornEntry = 2,
  kStuckWord = 3,
  kDroppedBarrier = 4,
};
constexpr int kFaultKindCount = 5;

const char* fault_section_name(FaultSection s);
const char* fault_kind_name(FaultKind k);
/// Parses the names fault_section_name/fault_kind_name print; returns false
/// on unknown input (the CLI `--corrupt <section>:<kind>:<seed>` path).
bool parse_fault_section(const std::string& s, FaultSection* out);
bool parse_fault_kind(const std::string& s, FaultKind* out);

struct FaultSpec {
  FaultSection section = FaultSection::kChunkData;
  FaultKind kind = FaultKind::kBitFlip;
  std::uint64_t seed = 1;
};

/// What one injection did — enough to reproduce and to assert detection.
struct FaultReport {
  bool injected = false;          // false: no window / empty window / barrier-arm only
  FaultSection section = FaultSection::kChunkData;
  FaultKind kind = FaultKind::kBitFlip;
  std::uint64_t seed = 0;
  const void* address = nullptr;  // victim word (8-byte aligned)
  std::uint64_t offset = 0;       // byte offset of the word within its window
  std::uint64_t before = 0;
  std::uint64_t after = 0;
  std::string describe() const;
};

class FaultPlane {
 public:
  FaultPlane() = default;
  FaultPlane(const FaultPlane&) = delete;
  FaultPlane& operator=(const FaultPlane&) = delete;

  // --- Arming ---------------------------------------------------------------

  /// Registers (or replaces) the byte window injections against `s` draw
  /// their victim word from.  `bytes` rounds down to whole 8-byte words.
  void map_section(FaultSection s, void* base, std::size_t bytes);
  /// True when `s` has a non-empty window.
  bool armed(FaultSection s) const;

  // --- Injection ------------------------------------------------------------

  /// Injects one fault per the spec: picks a victim word in the section's
  /// window from splitmix64(seed) and applies the kind.  kDroppedBarrier
  /// ignores the window and arms the next barrier to be dropped instead.
  /// Returns a report with injected=false when the section has no window.
  FaultReport inject(const FaultSpec& spec);

  /// Word-targeted variant for callers that already chose the victim (e.g.
  /// "corrupt this sealed chunk's data slots"): `word` must be 8-byte
  /// aligned; only the kind + seed drive which bits are damaged.
  FaultReport inject_at(FaultKind kind, void* word, std::uint64_t seed);

  // --- Stuck-at cells -------------------------------------------------------

  /// Rewrites every stuck word back to its corrupt value (the failed cell
  /// re-asserting itself).  Called from DeviceMemory's traffic tick and
  /// directly by harnesses between phases.
  void reassert();
  std::size_t stuck_words() const { return stuck_.size(); }
  void clear_stuck() { stuck_.clear(); }

  /// Traffic tick: every kReassertPeriod calls, reassert().  Cheap enough
  /// for DeviceMemory's store paths (one counter decrement when attached).
  void on_traffic() {
    if (stuck_.empty()) return;
    if (traffic_.fetch_add(1, std::memory_order_relaxed) % kReassertPeriod ==
        kReassertPeriod - 1) {
      reassert();
    }
  }

  // --- Dropped barriers -----------------------------------------------------

  /// Arms the next `count` barriers to be dropped (consumed by
  /// PersistRegion::barrier through consume_barrier_drop()).
  void arm_barrier_drops(std::uint64_t count) {
    drop_budget_.store(count, std::memory_order_relaxed);
  }
  /// True => the caller must skip this barrier's fence/sync.
  bool consume_barrier_drop() {
    std::uint64_t b = drop_budget_.load(std::memory_order_relaxed);
    while (b > 0) {
      if (drop_budget_.compare_exchange_weak(b, b - 1,
                                             std::memory_order_relaxed)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }
  std::uint64_t barriers_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  std::uint64_t faults_injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  static constexpr std::uint64_t kReassertPeriod = 64;

 private:
  struct Window {
    void* base = nullptr;
    std::size_t words = 0;  // 8-byte words
  };
  struct Stuck {
    std::uint64_t* addr = nullptr;
    std::uint64_t value = 0;
  };

  Window windows_[kFaultSectionCount]{};
  std::vector<Stuck> stuck_;
  std::atomic<std::uint64_t> traffic_{0};
  std::atomic<std::uint64_t> drop_budget_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> injected_{0};
};

}  // namespace gfsl::device
