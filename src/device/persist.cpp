#include "device/persist.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace gfsl::device {

namespace {

/// On-disk superblock, at offset 0.  Fixed-width, host-endian (the region is
/// a same-machine restart image, not an interchange format).
struct Super {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t entries_per_chunk;
  std::uint32_t capacity;
  std::uint32_t max_levels;
  std::uint32_t max_teams;
  std::uint32_t clean;  // 1 = closed through mark_clean()/mark_recovered()
  std::uint64_t persist_points;
};
static_assert(sizeof(Super) <= PersistRegion::kSuperBytes);

constexpr std::uint64_t align64(std::uint64_t v) { return (v + 63u) & ~63ull; }

[[noreturn]] void throw_errno(const std::string& what, const std::string& path) {
  throw std::runtime_error("persist region: " + what + " failed for " + path +
                           ": " + std::strerror(errno));
}

}  // namespace

PersistRegion::PersistRegion(const std::string& path, Mode mode,
                             PersistGeometry geom)
    : path_(path) {
  fd_ = ::open(path.c_str(),
               mode == Mode::kCreate ? (O_RDWR | O_CREAT | O_TRUNC) : O_RDWR,
               0644);
  if (fd_ < 0) throw_errno("open", path);

  if (mode == Mode::kAttach) {
    Super sb{};
    const ssize_t got = ::pread(fd_, &sb, sizeof(sb), 0);
    if (got != static_cast<ssize_t>(sizeof(sb))) {
      ::close(fd_);
      throw RegionFormatError(
          RegionFormatError::Code::kTruncated,
          "persist region: " + path + " is too short to hold a superblock");
    }
    if (sb.magic != kMagic) {
      ::close(fd_);
      throw RegionFormatError(
          RegionFormatError::Code::kBadMagic,
          "persist region: " + path + " has a bad magic (not a gfsl region, "
          "or its superblock was corrupted)");
    }
    if (sb.version != kVersion) {
      ::close(fd_);
      throw RegionFormatError(
          RegionFormatError::Code::kBadVersion,
          "persist region: " + path + " was written by an incompatible build "
          "(version " + std::to_string(sb.version) + ", expected " +
          std::to_string(kVersion) + ")");
    }
    // kMaxCapacity bounds the section extents: capacity <= 2^28 chunks of
    // <= 32 entries keeps every offset computation far below uint64 overflow
    // and rejects a flipped high bit in the capacity word before it turns
    // into a terabyte ftruncate/mmap.
    if (sb.max_levels != kMaxLevels || sb.max_teams != kMaxTeams ||
        sb.entries_per_chunk < 8 || sb.entries_per_chunk > 32 ||
        sb.capacity == 0 || sb.capacity > kMaxCapacity) {
      ::close(fd_);
      throw RegionFormatError(
          RegionFormatError::Code::kBadGeometry,
          "persist region: " + path + " superblock geometry is invalid");
    }
    geom_.entries_per_chunk = sb.entries_per_chunk;
    geom_.capacity = sb.capacity;
    was_clean_ = sb.clean != 0;
    recorded_points_ = sb.persist_points;
  } else {
    if (geom.entries_per_chunk < 8 || geom.entries_per_chunk > 32 ||
        geom.capacity == 0) {
      ::close(fd_);
      throw std::runtime_error(
          "persist region: create needs a valid geometry (N in [8,32], "
          "capacity > 0)");
    }
    geom_ = geom;
    fresh_ = true;
  }

  const std::uint64_t n = geom_.entries_per_chunk;
  const std::uint64_t cap = geom_.capacity;
  std::uint64_t off = kSuperBytes;
  off_slots_ = off;
  off = align64(off + cap * n * 8);
  off_gen_ = off;
  off = align64(off + cap * 4);
  off_free_ = off;
  off = align64(off + cap * 4);
  off_ctl_ = off;
  off = align64(off + kArenaControlBytes);
  off_heads_ = off;
  off = align64(off + static_cast<std::uint64_t>(kMaxLevels) * 4);
  off_intents_ = off;
  off = align64(off + static_cast<std::uint64_t>(kMaxTeams) * kIntentSlotBytes);
  off_leases_ = off;
  off = align64(off + static_cast<std::uint64_t>(kMaxTeams) * 4);
  bytes_ = static_cast<std::size_t>(off);

  if (mode == Mode::kCreate) {
    if (::ftruncate(fd_, static_cast<off_t>(bytes_)) != 0) {
      ::close(fd_);
      throw_errno("ftruncate", path);
    }
  } else {
    struct stat st{};
    if (::fstat(fd_, &st) != 0 ||
        st.st_size < static_cast<off_t>(bytes_)) {
      ::close(fd_);
      throw RegionFormatError(
          RegionFormatError::Code::kTruncated,
          "persist region: " + path + " is shorter than its superblock "
          "geometry implies (truncated image)");
    }
  }

  base_ = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, fd_, 0);
  if (base_ == MAP_FAILED) {
    base_ = nullptr;
    ::close(fd_);
    throw_errno("mmap", path);
  }

  auto* sb = static_cast<Super*>(base_);
  if (mode == Mode::kCreate) {
    sb->magic = kMagic;
    sb->version = kVersion;
    sb->entries_per_chunk = geom_.entries_per_chunk;
    sb->capacity = geom_.capacity;
    sb->max_levels = kMaxLevels;
    sb->max_teams = kMaxTeams;
    sb->clean = 0;
    sb->persist_points = 0;
  } else {
    // Open-for-write marks the image dirty: only mark_clean()/
    // mark_recovered() restore the flag.
    sb->clean = 0;
  }
}

PersistRegion::~PersistRegion() {
  if (base_ != nullptr) ::munmap(base_, bytes_);
  if (fd_ >= 0) ::close(fd_);
}

void PersistRegion::mark_clean() {
  auto* sb = static_cast<Super*>(base_);
  sb->persist_points = points_.load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  sb->clean = 1;
  sync();
}

void PersistRegion::mark_recovered() {
  auto* sb = static_cast<Super*>(base_);
  sb->persist_points = 0;
  std::atomic_thread_fence(std::memory_order_seq_cst);
  sb->clean = 1;
  sync();
}

void PersistRegion::sync() {
  if (base_ != nullptr) ::msync(base_, bytes_, MS_SYNC);
}

bool PersistRegion::verify_superblock(std::string* error) const {
  const auto* sb = static_cast<const Super*>(base_);
  auto fail = [error](const std::string& msg) {
    if (error != nullptr) *error = "superblock: " + msg;
    return false;
  };
  // Re-read the live words: a fault injected after attach can have changed
  // any of them, and every section pointer recover() hands out is derived
  // from this geometry.
  if (sb->magic != kMagic) return fail("bad magic");
  if (sb->version != kVersion) return fail("bad version");
  if (sb->max_levels != kMaxLevels || sb->max_teams != kMaxTeams) {
    return fail("max_levels/max_teams mismatch");
  }
  if (sb->entries_per_chunk != geom_.entries_per_chunk ||
      sb->capacity != geom_.capacity) {
    return fail("geometry drifted from the attached mapping (entries " +
                std::to_string(sb->entries_per_chunk) + ", capacity " +
                std::to_string(sb->capacity) + ")");
  }
  return true;
}

void PersistRegion::arm_fault_sections(FaultPlane& plane) {
  plane.map_section(FaultSection::kSuperblock, base_, sizeof(Super));
  plane.map_section(FaultSection::kChunkData, chunk_slots(),
                    static_cast<std::size_t>(geom_.capacity) *
                        geom_.entries_per_chunk * 8);
  plane.map_section(FaultSection::kGenerations, generations(),
                    static_cast<std::size_t>(geom_.capacity) * 4);
  plane.map_section(FaultSection::kFreeList, free_links(),
                    static_cast<std::size_t>(geom_.capacity) * 4);
  plane.map_section(FaultSection::kIntents, intent_slots(),
                    static_cast<std::size_t>(kMaxTeams) * kIntentSlotBytes);
}

void PersistRegion::kill_self() {
  // SIGKILL, not abort(): no atexit handlers, no stream flushes, no unwind —
  // the image must be exactly what the stores left behind.
  ::kill(::getpid(), SIGKILL);
  for (;;) ::pause();  // never reached; kill(2) cannot fail against self
}

}  // namespace gfsl::device
