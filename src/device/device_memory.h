// Instrumented device-memory access layer.
//
// Every global-memory access made by the data structures is routed through
// this layer so the simulator can count *memory transactions* exactly as the
// hardware issues them (§2.2 "Memory Coalescing"): each half-warp's request
// is split into one transaction per 128 B cache line covered.
//
//   * warp_read/warp_write  — a team accessing a contiguous block (a chunk):
//     transactions = number of distinct lines covered.  A 256 B chunk is two
//     transactions; a 128 B chunk is one (§5.2 "Chunk Size").
//   * lane_read/lane_write  — a single diverging lane touching its own node
//     (the M&C access pattern): one transaction per access, every line
//     distinct in the common case.
//   * atomic_rmw            — atomic operations; simultaneous atomics from a
//     warp to one destination serialize (§2.2 "Synchronization").
//
// Each transaction is filtered through the simulated L2 to classify it as an
// L2 hit or a DRAM transaction.  Accounting can be disabled for pure
// wall-clock runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "device/cache_sim.h"
#include "device/fault_plane.h"

namespace gfsl::device {

struct MemStats {
  std::uint64_t warp_reads = 0;      // coalesced team reads issued
  std::uint64_t warp_writes = 0;     // coalesced team writes issued
  std::uint64_t lane_reads = 0;      // single-lane (divergent) reads
  std::uint64_t lane_writes = 0;     // single-lane (divergent) writes
  std::uint64_t transactions = 0;    // total memory transactions
  std::uint64_t l2_hits = 0;         // transactions served by L2
  std::uint64_t dram_transactions = 0;  // transactions that went to DRAM
  std::uint64_t atomics = 0;
  std::uint64_t bytes_moved = 0;     // line_bytes per transaction
  std::uint64_t prefetches = 0;      // software prefetches issued (foresight)

  std::uint64_t reads() const { return warp_reads + lane_reads; }
  std::uint64_t writes() const { return warp_writes + lane_writes; }

  MemStats& operator+=(const MemStats& o);
  MemStats operator-(const MemStats& o) const;
};

class DeviceMemory {
 public:
  explicit DeviceMemory(const CacheConfig& cfg = CacheConfig{});

  void warp_read(std::uint64_t addr, std::uint32_t bytes) {
    record_contiguous(addr, bytes, &warp_reads_);
  }
  void warp_write(std::uint64_t addr, std::uint32_t bytes) {
    if (fault_plane_ != nullptr) fault_plane_->on_traffic();
    record_contiguous(addr, bytes, &warp_writes_);
  }
  void lane_read(std::uint64_t addr, std::uint32_t bytes) {
    record_contiguous(addr, bytes, &lane_reads_);
  }
  void lane_write(std::uint64_t addr, std::uint32_t bytes) {
    if (fault_plane_ != nullptr) fault_plane_->on_traffic();
    record_contiguous(addr, bytes, &lane_writes_);
  }
  void atomic_rmw(std::uint64_t addr);

  /// Software prefetch: pull the covered lines into the simulated L2 ahead
  /// of a predicted demand access (the foresight hint path).  Warms the
  /// cache without counting as demand traffic — only the prefetch counter
  /// moves, so A/B comparisons can attribute the hit-rate shift to it.
  void prefetch(std::uint64_t addr, std::uint32_t bytes);

  void set_accounting(bool on) { accounting_.store(on, std::memory_order_relaxed); }
  bool accounting() const { return accounting_.load(std::memory_order_relaxed); }

  /// Drop simulated cache contents (between kernel launches).
  void flush_cache() { cache_.invalidate_all(); }

  MemStats snapshot() const;
  void reset_stats();

  const CacheSim& cache() const { return cache_; }

  /// Attaches a fault plane: write traffic ticks it so stuck-at cells
  /// re-assert themselves under load.  Null (the default) is the detached
  /// path — one pointer test per store, no behavior change.
  void attach_fault_plane(FaultPlane* plane) { fault_plane_ = plane; }
  FaultPlane* fault_plane() const { return fault_plane_; }

 private:
  void record_contiguous(std::uint64_t addr, std::uint32_t bytes,
                         std::atomic<std::uint64_t>* class_counter);

  CacheSim cache_;
  FaultPlane* fault_plane_ = nullptr;
  std::atomic<bool> accounting_;
  // Relaxed atomics: counters are aggregated, never used for synchronization.
  std::atomic<std::uint64_t> warp_reads_{0};
  std::atomic<std::uint64_t> warp_writes_{0};
  std::atomic<std::uint64_t> lane_reads_{0};
  std::atomic<std::uint64_t> lane_writes_{0};
  std::atomic<std::uint64_t> transactions_{0};
  std::atomic<std::uint64_t> l2_hits_{0};
  std::atomic<std::uint64_t> dram_transactions_{0};
  std::atomic<std::uint64_t> atomics_{0};
  std::atomic<std::uint64_t> bytes_moved_{0};
  std::atomic<std::uint64_t> prefetches_{0};
};

}  // namespace gfsl::device
