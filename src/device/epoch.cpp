#include "device/epoch.h"

namespace gfsl::device {

EpochManager::EpochManager() : global_(1), retired_total_(0), advances_(0) {
  for (auto& s : slots_) s.store(0, std::memory_order_relaxed);
}

void EpochManager::pin(int id) {
  auto& slot = slots_[slot_of(id)];
  if (slot.load(std::memory_order_relaxed) != 0) return;  // nested scope
  // Dekker handshake with min_active_epoch(): publish the pin, then re-read
  // the global.  If the global moved between our read and our store, a
  // reclaimer may have scanned the slots without seeing us — re-pin at the
  // newer epoch until the two agree.  seq_cst on both sides makes the
  // store/load pair totally ordered against the reclaimer's.
  Epoch e = global_.load(std::memory_order_seq_cst);
  for (;;) {
    slot.store(e, std::memory_order_seq_cst);
    const Epoch now = global_.load(std::memory_order_seq_cst);
    if (now == e) return;
    e = now;
  }
}

void EpochManager::unpin(int id) {
  slots_[slot_of(id)].store(0, std::memory_order_release);
}

bool EpochManager::try_advance() {
  const Epoch g = global_.load(std::memory_order_seq_cst);
  for (const auto& s : slots_) {
    const Epoch e = s.load(std::memory_order_seq_cst);
    if (e != 0 && e != g) return false;  // a pinned team still lags
  }
  Epoch expected = g;
  if (global_.compare_exchange_strong(expected, g + 1,
                                      std::memory_order_seq_cst)) {
    advances_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

EpochManager::Epoch EpochManager::min_active_epoch() const {
  Epoch min = kNoPin;
  for (const auto& s : slots_) {
    const Epoch e = s.load(std::memory_order_seq_cst);
    if (e != 0 && e < min) min = e;
  }
  return min;
}

EpochManager::Epoch EpochManager::epoch_lag() const {
  const Epoch ma = min_active_epoch();
  if (ma == kNoPin) return 0;
  const Epoch g = global_.load(std::memory_order_seq_cst);
  return g > ma ? g - ma : 0;
}

void EpochManager::retire(int id, ChunkRef ref) {
  const Epoch e = global_.load(std::memory_order_seq_cst);
  auto& l = limbo_[slot_of(id)];
  std::lock_guard<std::mutex> g(l.mu);
  l.items.push_back({ref, e});
  retired_total_.fetch_add(1, std::memory_order_relaxed);
}

std::size_t EpochManager::drain_safe(int id, std::vector<ChunkRef>* out) {
  const Epoch g = global_.load(std::memory_order_seq_cst);
  const Epoch ma = min_active_epoch();
  auto& l = limbo_[slot_of(id)];
  std::lock_guard<std::mutex> guard(l.mu);
  std::size_t moved = 0;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < l.items.size(); ++i) {
    const Retired& r = l.items[i];
    // Safe when two full epochs elapsed since the retire *and* no pin from
    // the retire-era survives (the stamp may have raced an advance, so the
    // global bound alone is not enough).
    const bool safe = g >= r.epoch + 2 && (ma == kNoPin || ma > r.epoch + 1);
    if (safe) {
      out->push_back(r.ref);
      ++moved;
    } else {
      l.items[keep++] = r;
    }
  }
  l.items.resize(keep);
  return moved;
}

void EpochManager::requeue(int id, ChunkRef ref) {
  retire(id, ref);
}

std::size_t EpochManager::drain_all(std::vector<ChunkRef>* out) {
  std::size_t moved = 0;
  for (auto& l : limbo_) {
    std::lock_guard<std::mutex> g(l.mu);
    for (const auto& r : l.items) {
      out->push_back(r.ref);
      ++moved;
    }
    l.items.clear();
  }
  return moved;
}

void EpochManager::retire_ticket(int id, std::uint32_t ticket) {
  const Epoch e = global_.load(std::memory_order_seq_cst);
  auto& l = tickets_[slot_of(id)];
  std::lock_guard<std::mutex> g(l.mu);
  l.items.push_back({ticket, e});
}

std::size_t EpochManager::drain_safe_tickets(int id,
                                             std::vector<std::uint32_t>* out) {
  const Epoch g = global_.load(std::memory_order_seq_cst);
  const Epoch ma = min_active_epoch();
  auto& l = tickets_[slot_of(id)];
  std::lock_guard<std::mutex> guard(l.mu);
  std::size_t moved = 0;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < l.items.size(); ++i) {
    const RetiredTicket& r = l.items[i];
    const bool safe = g >= r.epoch + 2 && (ma == kNoPin || ma > r.epoch + 1);
    if (safe) {
      out->push_back(r.ticket);
      ++moved;
    } else {
      l.items[keep++] = r;
    }
  }
  l.items.resize(keep);
  return moved;
}

std::size_t EpochManager::drain_all_tickets(std::vector<std::uint32_t>* out) {
  std::size_t moved = 0;
  for (auto& l : tickets_) {
    std::lock_guard<std::mutex> g(l.mu);
    for (const auto& r : l.items) {
      out->push_back(r.ticket);
      ++moved;
    }
    l.items.clear();
  }
  return moved;
}

std::size_t EpochManager::ticket_limbo_total() const {
  std::size_t total = 0;
  for (const auto& l : tickets_) {
    std::lock_guard<std::mutex> g(l.mu);
    total += l.items.size();
  }
  return total;
}

void EpochManager::force_quiesce(int id) {
  slots_[slot_of(id)].store(0, std::memory_order_seq_cst);
}

void EpochManager::adopt(int from, int to) {
  const std::size_t f = slot_of(from);
  const std::size_t t = slot_of(to);
  if (f == t) return;
  // Lock in address order to stay deadlock-free against concurrent adopts.
  Limbo& a = limbo_[f < t ? f : t];
  Limbo& b = limbo_[f < t ? t : f];
  std::lock_guard<std::mutex> ga(a.mu);
  std::lock_guard<std::mutex> gb(b.mu);
  auto& src = limbo_[f].items;
  auto& dst = limbo_[t].items;
  dst.insert(dst.end(), src.begin(), src.end());
  src.clear();
  // Tickets ride along under the same ordering discipline.
  TicketLimbo& ta = tickets_[f < t ? f : t];
  TicketLimbo& tb = tickets_[f < t ? t : f];
  std::lock_guard<std::mutex> gta(ta.mu);
  std::lock_guard<std::mutex> gtb(tb.mu);
  auto& tsrc = tickets_[f].items;
  auto& tdst = tickets_[t].items;
  tdst.insert(tdst.end(), tsrc.begin(), tsrc.end());
  tsrc.clear();
}

std::size_t EpochManager::limbo_depth(int id) const {
  const auto& l = limbo_[slot_of(id)];
  std::lock_guard<std::mutex> g(l.mu);
  return l.items.size();
}

std::size_t EpochManager::limbo_total() const {
  std::size_t total = 0;
  for (const auto& l : limbo_) {
    std::lock_guard<std::mutex> g(l.mu);
    total += l.items.size();
  }
  return total;
}

std::vector<ChunkRef> EpochManager::limbo_snapshot() const {
  std::vector<ChunkRef> out;
  for (const auto& l : limbo_) {
    std::lock_guard<std::mutex> g(l.mu);
    for (const auto& r : l.items) out.push_back(r.ref);
  }
  return out;
}

}  // namespace gfsl::device
