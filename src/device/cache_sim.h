// Set-associative LRU cache simulator standing in for the GTX 970's L2.
//
// The evaluation's central effect (§5.3) is cache residency: "In the smaller
// range (10K), the entire structure fits into the L2 cache in both
// implementations ... in larger key ranges, M&C requires frequent uncoalesced
// accesses to the global memory that causes a sharp degradation".  We model
// that with the thesis's own L2 geometry: 1.75 MB, 128 B lines (the memory
// transaction granularity from §2.2).
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace gfsl::device {

struct CacheConfig {
  std::uint64_t capacity_bytes = 1792ull * 1024;  // 1.75 MB (GTX 970 L2)
  std::uint32_t line_bytes = 128;                 // transaction granularity
  std::uint32_t associativity = 16;
};

class CacheSim {
 public:
  explicit CacheSim(const CacheConfig& cfg = CacheConfig{});

  /// Access one cache line by byte address; returns true on hit.
  /// Thread-safe (internally locked): the simulator runs teams on separate
  /// host threads while sharing one modeled L2.
  bool access(std::uint64_t byte_addr);

  /// Drop all cached lines (used between kernel launches).
  void invalidate_all();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  const CacheConfig& config() const { return cfg_; }
  std::uint32_t num_sets() const { return num_sets_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // last-use stamp
    bool valid = false;
  };

  CacheConfig cfg_;
  std::uint32_t num_sets_;
  std::vector<Way> ways_;  // num_sets_ * associativity, row-major by set
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::mutex mu_;
};

}  // namespace gfsl::device
