// File-backed persistent region for the chunk arena (DESIGN.md §12).
//
// The region is one mmap(MAP_SHARED) file holding every word of durable
// state a restart needs to rebuild the skiplist: the chunk slots themselves,
// the per-chunk generation stamps, the free-list linkage, the arena control
// words (bump pointer, tagged free-list head, free count), the per-level
// head array, the per-team IntentSlot descriptors and the lease table slots.
// A versioned superblock in the first page pins the geometry so an attach
// can refuse a file written with a different chunk size or pool capacity.
//
// Durability model: with MAP_SHARED, every store a thread performs lands in
// the shared page cache immediately — a SIGKILL (the process-crash model
// this repo sweeps) loses *nothing* that was already stored, only whatever
// a thread had in registers.  msync() is therefore not required for the
// crash sweeps; `sync()` exists for callers that also want to survive a
// machine crash (NVRAM-style flush-at-barrier semantics).
//
// Persist points: `barrier()` is the hook the structure calls at every
// durable transition (mutating-entry store, lock/zombie/intent publish,
// retire/recycle/alloc).  It issues a full fence (so the crash image is
// ordered exactly as the memory model promised the stores) and counts the
// point.  The crash harness arms `arm_kill_at(n)` in a forked child: the
// n-th barrier SIGKILLs the process mid-protocol, which is how the sweep
// visits every persist point of a run.  The counter is deliberately *not*
// stored in the region on every barrier — the recovered image must be a
// deterministic function of the crash state, and recovery itself re-enters
// barrier() while repairing.  A clean shutdown records the final count in
// the superblock (`mark_clean()`), which is what the sweep's baseline run
// uses to learn how many kill points a workload has.
//
// Layering: this file exposes raw, 64-byte-aligned byte sections; the typed
// casts live with the owning subsystem (core::ChunkArena / core::Gfsl /
// sched::LeaseTable), keeping device below core in the library graph.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "device/fault_plane.h"

namespace gfsl::device {

struct PersistGeometry {
  std::uint32_t entries_per_chunk = 0;  // chunk size N (== team size)
  std::uint32_t capacity = 0;           // total chunks in the pool
};

/// Typed rejection of a region file that is not a sane gfsl image.  Derives
/// from std::runtime_error so pre-existing catch sites keep working, but
/// callers that care (recover-under-corruption tests, the CLI) can switch on
/// the code instead of string-matching `what()`.
class RegionFormatError : public std::runtime_error {
 public:
  enum class Code {
    kTruncated,    // file too short for a superblock or its implied extent
    kBadMagic,     // not a gfsl region at all
    kBadVersion,   // written by an incompatible build
    kBadGeometry,  // N / capacity / max_levels / max_teams out of range
  };
  RegionFormatError(Code code, const std::string& msg)
      : std::runtime_error(msg), code_(code) {}
  Code code() const { return code_; }

 private:
  Code code_;
};

class PersistRegion {
 public:
  static constexpr std::uint64_t kMagic = 0x3152455031534647ull;  // "GFSL0PER1"
  static constexpr std::uint32_t kVersion = 1;
  /// Superblock page size; all sections start 64-byte aligned after it.
  static constexpr std::uint64_t kSuperBytes = 4096;
  /// Mirrors core::Gfsl::kMaxLevels (static_asserted at the use site).
  static constexpr std::uint32_t kMaxLevels = 32;
  /// Mirrors sched::LeaseTable::kMaxTeams (static_asserted at the use site).
  static constexpr std::uint32_t kMaxTeams = 255;
  /// Per-team IntentSlot stride reserved in the region; the real struct is
  /// smaller (static_asserted where it is placed).
  static constexpr std::uint32_t kIntentSlotBytes = 64;
  /// Arena control section: bump pointer, free count, tagged free head.
  static constexpr std::uint32_t kArenaControlBytes = 64;
  /// Extent-sanity bound on superblock capacity: 2^28 chunks of <= 32
  /// entries keeps every section-offset computation far below uint64
  /// overflow and rejects a flipped high bit in the capacity word before it
  /// turns into a terabyte mapping.
  static constexpr std::uint32_t kMaxCapacity = 1u << 28;

  enum class Mode {
    kCreate,  // truncate/extend the file and zero-initialize the region
    kAttach,  // map an existing file; superblock must validate
  };

  /// kCreate requires `geom`; kAttach reads the geometry back from the
  /// superblock and ignores the argument.  Throws std::runtime_error on I/O
  /// failure or superblock mismatch.
  PersistRegion(const std::string& path, Mode mode, PersistGeometry geom = {});
  ~PersistRegion();

  PersistRegion(const PersistRegion&) = delete;
  PersistRegion& operator=(const PersistRegion&) = delete;

  bool fresh() const { return fresh_; }
  const PersistGeometry& geometry() const { return geom_; }
  const std::string& path() const { return path_; }
  std::size_t bytes() const { return bytes_; }
  /// Whole mapping, superblock included (tests byte-compare images).
  const void* raw() const { return base_; }

  // --- Section pointers (64-byte aligned, zero on kCreate) ------------------
  void* chunk_slots() const { return at(off_slots_); }     // capacity * N * 8
  void* generations() const { return at(off_gen_); }       // capacity * 4
  void* free_links() const { return at(off_free_); }       // capacity * 4
  void* arena_control() const { return at(off_ctl_); }     // kArenaControlBytes
  void* level_heads() const { return at(off_heads_); }     // kMaxLevels * 4
  void* intent_slots() const { return at(off_intents_); }  // kMaxTeams * 64
  void* lease_slots() const { return at(off_leases_); }    // kMaxTeams * 4
  /// Durable MVCC revision (CAS-max mirror of the SnapshotEpoch), stored in
  /// the spare tail of the arena-control section so version-1 images stay
  /// attachable — a pre-MVCC file reads back revision 0, which recover()
  /// treats as "everything collapses to insert_rev 0" (core/snapshot.h).
  /// ChunkArena's Control struct occupies the first 16 bytes of the section
  /// (static_asserted at the cast site).
  void* durable_rev() const { return at(off_ctl_ + 16); }

  // --- Persist points -------------------------------------------------------

  /// One persist point: full fence + count + (armed) self-SIGKILL.  An
  /// attached FaultPlane may silently drop the whole point (no fence, no
  /// count, no sync) — the kDroppedBarrier fault model.
  void barrier() {
    if (fault_plane_ != nullptr && fault_plane_->consume_barrier_drop()) {
      return;
    }
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::uint64_t n = points_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (kill_at_ != 0 && n >= kill_at_) kill_self();
    if (sync_on_barrier_) sync();
  }
  /// Persist points crossed by this process since the region was opened.
  std::uint64_t persist_points() const {
    return points_.load(std::memory_order_relaxed);
  }
  /// SIGKILL this process at the n-th barrier (n >= 1; 0 disarms).  The
  /// crash harness arms this in a forked child.
  void arm_kill_at(std::uint64_t n) { kill_at_ = n; }
  /// Also msync the region at every barrier (machine-crash durability; the
  /// process-crash sweeps do not need it).
  void set_sync_on_barrier(bool on) { sync_on_barrier_ = on; }

  // --- Superblock state -----------------------------------------------------

  /// True when the file was last closed through mark_clean()/mark_recovered()
  /// (sampled at open; opening for write clears the flag in the file).
  bool was_clean() const { return was_clean_; }
  /// Recorded persist-point count of the last clean run (sampled at open).
  std::uint64_t recorded_persist_points() const { return recorded_points_; }

  /// Clean shutdown: record this process's persist-point count, set the
  /// clean flag, msync.
  void mark_clean();
  /// Recovery epilogue: set the clean flag with a canonical zero count so a
  /// recovered image is a deterministic function of the crash state alone.
  void mark_recovered();

  /// msync the whole mapping (synchronous).
  void sync();

  // --- Integrity / fault injection ------------------------------------------

  /// Re-checks the *live* superblock in the mapping against the geometry the
  /// region was opened with — the words a corruption could have changed
  /// since attach.  Returns false and fills `error` on mismatch; recover()
  /// calls this before trusting any section pointer.
  bool verify_superblock(std::string* error) const;

  /// Attaches a fault plane: barrier() consults it for dropped persist
  /// points.  Null (the default) is the detached path.
  void attach_fault_plane(FaultPlane* plane) { fault_plane_ = plane; }
  FaultPlane* fault_plane() const { return fault_plane_; }

  /// Registers every durable section's byte window with `plane` so seeded
  /// injections can target them independently (the region owns the layout;
  /// callers should not re-derive offsets).  The superblock window covers
  /// only the meaningful header words, not the zero padding of the page.
  void arm_fault_sections(FaultPlane& plane);

 private:
  void* at(std::uint64_t off) const {
    return static_cast<char*>(base_) + off;
  }
  [[noreturn]] void kill_self();

  std::string path_;
  PersistGeometry geom_{};
  void* base_ = nullptr;
  std::size_t bytes_ = 0;
  int fd_ = -1;
  bool fresh_ = false;
  bool was_clean_ = false;
  std::uint64_t recorded_points_ = 0;

  std::uint64_t off_slots_ = 0;
  std::uint64_t off_gen_ = 0;
  std::uint64_t off_free_ = 0;
  std::uint64_t off_ctl_ = 0;
  std::uint64_t off_heads_ = 0;
  std::uint64_t off_intents_ = 0;
  std::uint64_t off_leases_ = 0;

  std::atomic<std::uint64_t> points_{0};
  std::uint64_t kill_at_ = 0;
  bool sync_on_barrier_ = false;
  FaultPlane* fault_plane_ = nullptr;
};

}  // namespace gfsl::device
