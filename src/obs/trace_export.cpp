#include "obs/trace_export.h"

#include <algorithm>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json_util.h"
#include "obs/metrics.h"

namespace gfsl::obs {

void TraceSession::ensure(int n) {
  while (static_cast<int>(rings_.size()) < n) {
    rings_.push_back(std::make_unique<simt::TeamTrace>(capacity_, timestamps_));
  }
}

namespace {

/// Microseconds relative to the earliest record — chrome://tracing expects
/// small positive µs timestamps.
double rel_us(std::uint64_t ts_ns, std::uint64_t epoch_ns) {
  return static_cast<double>(ts_ns - epoch_ns) / 1000.0;
}

void emit_common(std::ostream& os, double ts_us, int tid) {
  os << "\"ts\": ";
  json_number(os, ts_us);
  os << ", \"pid\": 0, \"tid\": " << tid;
}

}  // namespace

void TraceSession::write_chrome_trace(std::ostream& os) const {
  // Epoch: earliest stamp over all rings, so every team shares one timeline.
  std::uint64_t epoch = UINT64_MAX;
  for (const auto& ring : rings_) {
    for (const auto& r : ring->snapshot()) epoch = std::min(epoch, r.ts_ns);
  }
  if (epoch == UINT64_MAX) epoch = 0;

  os << "{\"traceEvents\": [";
  bool first = true;
  auto sep = [&] {
    os << (first ? "\n" : ",\n");
    first = false;
  };

  for (int t = 0; t < teams(); ++t) {
    sep();
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": "
       << t << ", \"args\": {\"name\": \"team " << t << "\"}}";
  }

  for (int t = 0; t < teams(); ++t) {
    std::vector<simt::TraceRecord> open;  // kOpBegin stack (ops never nest,
                                          // but the ring may drop an end)
    for (const auto& r : rings_[static_cast<std::size_t>(t)]->snapshot()) {
      if (r.event == simt::TraceEvent::kOpBegin) {
        open.push_back(r);
        continue;
      }
      if (r.event == simt::TraceEvent::kOpEnd) {
        if (open.empty()) continue;  // begin fell out of the ring
        const simt::TraceRecord begin = open.back();
        open.pop_back();
        sep();
        os << "{\"name\": ";
        json_string(os, op_tag_name(static_cast<std::uint8_t>(begin.a)));
        os << ", \"ph\": \"X\", ";
        emit_common(os, rel_us(begin.ts_ns, epoch), t);
        os << ", \"dur\": ";
        json_number(os, rel_us(r.ts_ns, epoch) - rel_us(begin.ts_ns, epoch));
        os << ", \"args\": {\"key\": " << begin.b << ", \"result\": " << r.b
           << ", \"seq\": " << begin.seq << "}}";
        continue;
      }
      sep();
      os << "{\"name\": ";
      json_string(os, simt::trace_event_name(r.event));
      os << ", \"ph\": \"i\", \"s\": \"t\", ";
      emit_common(os, rel_us(r.ts_ns, epoch), t);
      os << ", \"args\": {\"a\": " << r.a << ", \"b\": " << r.b
         << ", \"seq\": " << r.seq << "}}";
    }
    // Ops whose end was never recorded (team killed / ring truncation):
    // keep them visible as zero-length slices instead of dropping them.
    for (const auto& begin : open) {
      sep();
      os << "{\"name\": ";
      json_string(os, op_tag_name(static_cast<std::uint8_t>(begin.a)));
      os << ", \"ph\": \"X\", ";
      emit_common(os, rel_us(begin.ts_ns, epoch), t);
      os << ", \"dur\": 0, \"args\": {\"key\": " << begin.b
         << ", \"truncated\": 1, \"seq\": " << begin.seq << "}}";
    }
  }

  os << "\n], \"displayTimeUnit\": \"ns\", \"otherData\": {\"source\": "
        "\"gfsl-trace-v1\"}}\n";
}

}  // namespace gfsl::obs
