// Minimal JSON document model + recursive-descent parser (std only).
//
// The observability layer *emits* JSON through the streaming helpers in
// json_util.h; this is the read side: bench_compare loads committed
// gfsl-bench-v1 baselines, and the schema tests round-trip every exporter
// (metrics, bench, postmortem) through a real parse instead of grepping for
// substrings.  Scope is deliberately small — RFC 8259 minus \uXXXX surrogate
// pairs (escapes decode to code points <= 0xFFFF as UTF-8) — which covers
// everything our own writers produce.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace gfsl::obs {

namespace detail {
class JsonParser;
}

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& as_array() const { return array_; }
  const std::map<std::string, JsonValue>& as_object() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* get(const std::string& key) const;

  /// Convenience accessors with fallbacks for schema consumers.
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;

 private:
  friend class detail::JsonParser;
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

struct JsonParseResult {
  bool ok = false;
  std::string error;     // first syntax error, with byte offset
  JsonValue value;
};

/// Parse one JSON document.  Trailing whitespace is allowed, trailing
/// garbage is an error.
JsonParseResult json_parse(const std::string& text);

}  // namespace gfsl::obs
