// Chrome trace-event export for per-team execution timelines.
//
// A TraceSession owns one simt::TeamTrace ring per team; the runner attaches
// them before launching workers.  After the run, write_chrome_trace() renders
// the retained events as Chrome trace-event JSON ("JSON object format",
// loadable in chrome://tracing and https://ui.perfetto.dev): kOpBegin/kOpEnd
// pairs become complete ("X") duration slices on the team's row, every other
// record — lock transitions, splits, merges, zombie encounters, restarts,
// i.e. each scheduler-visible step — becomes a thread-scoped instant event.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "simt/trace.h"

namespace gfsl::obs {

class TraceSession {
 public:
  /// `ring_capacity` bounds the retained tail per team (the TeamTrace ring
  /// size); older events are overwritten, never reallocated.  `timestamps` =
  /// false creates clockless flight-recorder rings (simt/trace.h): cheap
  /// enough to keep armed on every run, ordered by seq only — use the
  /// default when the session feeds write_chrome_trace(), which needs the
  /// wall-clock stamps to align team timelines.
  explicit TraceSession(std::size_t ring_capacity = 1u << 16,
                        bool timestamps = true)
      : capacity_(ring_capacity), timestamps_(timestamps) {}

  /// Pre-create rings for `n` teams.  Must be called before worker threads
  /// start; team() afterwards is a plain index and thread-safe.
  void ensure(int n);

  int teams() const { return static_cast<int>(rings_.size()); }
  simt::TeamTrace* team(int id) {
    return rings_[static_cast<std::size_t>(id)].get();
  }
  const simt::TeamTrace* team(int id) const {
    return rings_[static_cast<std::size_t>(id)].get();
  }

  void write_chrome_trace(std::ostream& os) const;

 private:
  std::size_t capacity_;
  bool timestamps_ = true;
  std::vector<std::unique_ptr<simt::TeamTrace>> rings_;
};

}  // namespace gfsl::obs
