#include "obs/json_value.h"

#include <cctype>
#include <cstdlib>

namespace gfsl::obs {

const JsonValue* JsonValue::get(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue* v = get(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = get(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult result;
    skip_ws();
    if (!parse_value(result.value)) {
      result.error = error_;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.error = fail("trailing garbage after document");
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  std::string fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at byte " + std::to_string(pos_);
    }
    return error_;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) {
      fail(std::string("expected '") + lit + "'");
      return false;
    }
    pos_ += n;
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (++depth_ > kMaxDepth) {
      fail("nesting depth limit exceeded");
      return false;
    }
    bool ok = parse_value_inner(out);
    --depth_;
    return ok;
  }

  bool parse_value_inner(JsonValue& out) {
    if (eof()) {
      fail("unexpected end of input");
      return false;
    }
    switch (peek()) {
      case 'n':
        out.kind_ = JsonValue::Kind::Null;
        return consume_literal("null");
      case 't':
        out.kind_ = JsonValue::Kind::Bool;
        out.bool_ = true;
        return consume_literal("true");
      case 'f':
        out.kind_ = JsonValue::Kind::Bool;
        out.bool_ = false;
        return consume_literal("false");
      case '"':
        out.kind_ = JsonValue::Kind::String;
        return parse_string(out.string_);
      case '[':
        return parse_array(out);
      case '{':
        return parse_object(out);
      default:
        return parse_number(out);
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
      return false;
    }
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0') {
      pos_ = start;
      fail("malformed number");
      return false;
    }
    out.kind_ = JsonValue::Kind::Number;
    out.number_ = v;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (true) {
      if (eof()) {
        fail("unterminated string");
        return false;
      }
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) {
        fail("unterminated escape");
        return false;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            if (eof()) {
              fail("truncated \\u escape");
              return false;
            }
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
              return false;
            }
          }
          // BMP-only UTF-8 encoding; our writers never emit surrogate pairs.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
          return false;
      }
    }
  }

  bool parse_array(JsonValue& out) {
    out.kind_ = JsonValue::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue elem;
      skip_ws();
      if (!parse_value(elem)) return false;
      out.array_.push_back(std::move(elem));
      skip_ws();
      if (eof()) {
        fail("unterminated array");
        return false;
      }
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
        return false;
      }
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind_ = JsonValue::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') {
        fail("expected object key");
        return false;
      }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (eof() || text_[pos_++] != ':') {
        fail("expected ':' after object key");
        return false;
      }
      skip_ws();
      JsonValue val;
      if (!parse_value(val)) return false;
      out.object_[std::move(key)] = std::move(val);
      skip_ws();
      if (eof()) {
        fail("unterminated object");
        return false;
      }
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
        return false;
      }
    }
  }

  static constexpr int kMaxDepth = 256;

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace detail

JsonParseResult json_parse(const std::string& text) {
  return detail::JsonParser(text).run();
}

}  // namespace gfsl::obs
