#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "obs/json_util.h"

namespace gfsl::obs {

double Histogram::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double m = static_cast<double>(sum_) / n;
  // Catastrophic cancellation can push the variance estimate slightly
  // negative for near-constant samples; clamp instead of sqrt(-eps) = NaN.
  const double var = std::max(0.0, sum_sq_ / n - m * m);
  return std::sqrt(var);
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // The extremes are tracked exactly; returning them directly also keeps
  // bucket interpolation off the p=0 edge (where `target` would be 0 and the
  // lowest occupied bucket's floor — not the recorded minimum — would leak
  // through).
  if (p == 0.0) return static_cast<double>(min_);
  if (p == 100.0) return static_cast<double>(max_);
  // Nearest-rank target in [1, count], then linear interpolation across the
  // covering bucket's value span.
  const double target = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = buckets_[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    if (static_cast<double>(seen + n) >= target) {
      // The recorded extremes cap the occupied span.  Clamping `hi` to max_
      // also keeps bucket 64 finite-safe: bucket_hi(64) == UINT64_MAX rounds
      // UP to 2^64 as a double, so interpolating against it could return a
      // value no uint64_t can hold; max_ is the largest value actually seen.
      const double lo = std::max(static_cast<double>(bucket_lo(b)),
                                 static_cast<double>(min_));
      const double hi = std::min(static_cast<double>(bucket_hi(b)),
                                 static_cast<double>(max_));
      if (hi <= lo) return lo;
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(n);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += n;
  }
  return static_cast<double>(max_);
}

Histogram& Histogram::operator+=(const Histogram& o) {
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[static_cast<std::size_t>(b)] +=
        o.buckets_[static_cast<std::size_t>(b)];
  }
  count_ += o.count_;
  sum_ += o.sum_;
  sum_sq_ += o.sum_sq_;
  max_ = std::max(max_, o.max_);
  min_ = std::min(min_, o.min_);
  return *this;
}

std::string_view counter_name(CounterId id) {
  switch (id) {
    case kOpInsertCount: return "insert_count";
    case kOpInsertTrue: return "insert_true";
    case kOpEraseCount: return "erase_count";
    case kOpEraseTrue: return "erase_true";
    case kOpContainsCount: return "contains_count";
    case kOpContainsTrue: return "contains_true";
    case kOpScanCount: return "scan_count";
    case kOpScanItems: return "scan_items";
    case kLockAcquires: return "lock_acquires";
    case kLockSpins: return "lock_spins";
    case kLockHoldSteps: return "lock_hold_steps";
    case kZombieEncounters: return "zombie_encounters";
    case kRestarts: return "restarts";
    case kLeaseExpiries: return "lease_expiries";
    case kLockSteals: return "lock_steals";
    case kRecoveryRollForward: return "recovery_roll_forward";
    case kRecoveryRollBack: return "recovery_roll_back";
    case kBackoffRounds: return "backoff_rounds";
    case kBackoffSpinIters: return "backoff_spin_iters";
    case kLockRetraversals: return "lock_retraversals";
    case kChunkRetires: return "chunk_retires";
    case kChunkReclaims: return "chunk_reclaims";
    case kChunkRequeues: return "chunk_requeues";
    case kDownPtrScrubs: return "down_ptr_scrubs";
    case kEmergencyReclaims: return "emergency_reclaims";
    case kStaleChunkReads: return "stale_chunk_reads";
    case kEpochAdvances: return "epoch_advances";
    case kBatchShardsExecuted: return "batch_shards_executed";
    case kBatchShardsStolen: return "batch_shards_stolen";
    case kBatchDescentReuses: return "batch_descent_reuses";
    case kBatchFullDescents: return "batch_full_descents";
    case kBatchEpochPins: return "batch_epoch_pins";
    case kOpScanAtCount: return "scan_at_count";
    case kOpScanAtItems: return "scan_at_items";
    case kScanAtRedescents: return "scan_at_redescents";
    case kScanAtExpired: return "scan_at_expired";
    case kVersionRecordsCreated: return "version_records_created";
    case kVersionRecordsPruned: return "version_records_pruned";
    case kVersionRecordCopies: return "version_record_copies";
    case kForesightHits: return "foresight_hits";
    case kForesightFallbacks: return "foresight_fallbacks";
    case kForesightStaleHints: return "foresight_stale_hints";
    case kForesightRebuilds: return "foresight_rebuilds";
    case kCorruptionSealsStamped: return "corruption_seals_stamped";
    case kCorruptionSealsVerified: return "corruption_seals_verified";
    case kCorruptionSealMismatches: return "corruption_seal_mismatches";
    case kCorruptionChunksQuarantined: return "corruption_chunks_quarantined";
    case kCorruptionChunksRepaired: return "corruption_chunks_repaired";
    case kCorruptionChunksLost: return "corruption_chunks_lost";
    case kScrubPasses: return "scrub_passes";
    case kScrubChunksScanned: return "scrub_chunks_scanned";
    case kInstructions: return "instructions";
    case kBallots: return "ballots";
    case kShfls: return "shfls";
    case kDivergentBranches: return "divergent_branches";
    case kCounterIdCount: break;
  }
  return "unknown";
}

std::string_view hist_name(HistId id) {
  switch (id) {
    case kInsertWallNs: return "insert_wall_ns";
    case kEraseWallNs: return "erase_wall_ns";
    case kContainsWallNs: return "contains_wall_ns";
    case kScanWallNs: return "scan_wall_ns";
    case kInsertSteps: return "insert_steps";
    case kEraseSteps: return "erase_steps";
    case kContainsSteps: return "contains_steps";
    case kScanSteps: return "scan_steps";
    case kLockHoldStepsHist: return "lock_hold_steps";
    case kBatchShardOps: return "batch_shard_ops";
    case kScanAtWallNs: return "scan_at_wall_ns";
    case kScanAtSteps: return "scan_at_steps";
    case kVersionChainLen: return "version_chain_len";
    case kHistIdCount: break;
  }
  return "unknown";
}

std::string_view gauge_name(GaugeId id) {
  switch (id) {
    case kHeight: return "height";
    case kBottomKeys: return "bottom_keys";
    case kLiveChunks: return "live_chunks";
    case kZombieChunks: return "zombie_chunks";
    case kChunksAllocated: return "chunks_allocated";
    case kChunkOccupancy: return "chunk_occupancy";
    case kLimboChunks: return "limbo_chunks";
    case kFreeChunks: return "free_chunks";
    case kEpochLag: return "epoch_lag";
    case kActiveSnapshots: return "active_snapshots";
    case kSnapshotAgeRevs: return "snapshot_age_revs";
    case kVersionRecordsLive: return "version_records_live";
    case kForesightEntries: return "foresight_entries";
    case kForesightDirty: return "foresight_dirty";
    case kSealedChunks: return "sealed_chunks";
    case kScrubSuspects: return "scrub_suspects";
    case kGaugeIdCount: break;
  }
  return "unknown";
}

std::string_view op_tag_name(std::uint8_t tag) {
  switch (tag) {
    case 0: return "insert";
    case 1: return "erase";
    case 2: return "contains";
    case 3: return "scan";
    case 4: return "scan_at";
    default: return "op";
  }
}

MetricsShard& MetricsShard::operator+=(const MetricsShard& o) {
  for (int i = 0; i < kCounterIdCount; ++i) {
    counters_[static_cast<std::size_t>(i)] +=
        o.counters_[static_cast<std::size_t>(i)];
  }
  for (int i = 0; i < kHistIdCount; ++i) {
    hists_[static_cast<std::size_t>(i)] +=
        o.hists_[static_cast<std::size_t>(i)];
  }
  return *this;
}

MetricsRegistry::MetricsRegistry(int shards)
    : shards_(static_cast<std::size_t>(shards < 1 ? 1 : shards)) {}

void MetricsRegistry::set_info(const std::string& key,
                               const std::string& value) {
  for (auto& [k, v] : info_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  info_.emplace_back(key, value);
}

MetricsShard MetricsRegistry::merged() const {
  MetricsShard all;
  for (const auto& s : shards_) all += s;
  return all;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  const MetricsShard all = merged();
  os << "{\n  \"schema\": \"gfsl-metrics-v1\",\n  \"info\": {";
  for (std::size_t i = 0; i < info_.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    json_string(os, info_[i].first);
    os << ": ";
    json_string(os, info_[i].second);
  }
  os << (info_.empty() ? "" : "\n  ") << "},\n  \"counters\": {";
  for (int i = 0; i < kCounterIdCount; ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    json_string(os, counter_name(static_cast<CounterId>(i)));
    os << ": " << all.counter(static_cast<CounterId>(i));
  }
  os << "\n  },\n  \"gauges\": {";
  for (int i = 0; i < kGaugeIdCount; ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    json_string(os, gauge_name(static_cast<GaugeId>(i)));
    os << ": ";
    json_number(os, gauges_[static_cast<std::size_t>(i)]);
  }
  os << "\n  },\n  \"histograms\": {";
  for (int i = 0; i < kHistIdCount; ++i) {
    const Histogram& h = all.hist(static_cast<HistId>(i));
    os << (i == 0 ? "\n    " : ",\n    ");
    json_string(os, hist_name(static_cast<HistId>(i)));
    os << ": {\"count\": " << h.count() << ", \"mean\": ";
    json_number(os, h.mean());
    os << ", \"stddev\": ";
    json_number(os, h.stddev());
    os << ", \"p50\": ";
    json_number(os, h.percentile(50.0));
    os << ", \"p90\": ";
    json_number(os, h.percentile(90.0));
    os << ", \"p99\": ";
    json_number(os, h.percentile(99.0));
    os << ", \"min\": " << h.min() << ", \"max\": " << h.max() << "}";
  }
  os << "\n  }\n}\n";
}

}  // namespace gfsl::obs
