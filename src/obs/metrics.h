// Unified telemetry: counters, gauges and log-bucketed latency histograms.
//
// The hot path is allocation-free and lock-free: every team writes into its
// own MetricsShard (fixed arrays indexed by enum), and a quiescent merge step
// folds the shards together for reporting.  When no shard is attached the
// instrumentation sites reduce to a single null-pointer test, so the
// disabled path costs nothing measurable (verified by the micro_ops A/B
// benchmarks).
//
// Layering: this header is self-contained (std only) so that `simt::Team`
// can embed a shard pointer without a dependency cycle; only the exporters
// (metrics.cpp) need linking against gfsl_obs.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gfsl::obs {

/// Power-of-two-bucketed histogram: bucket b collects values v with
/// std::bit_width(v) == b, i.e. [2^(b-1), 2^b); value 0 lands in bucket 0.
/// Recording is a few arithmetic ops and never allocates; percentiles are
/// estimated by linear interpolation inside the covering bucket, so the
/// relative error is bounded by the bucket width (< 2x).
class Histogram {
 public:
  static constexpr int kBuckets = 65;  // bit_width ranges over [0, 64]

  void record(std::uint64_t v) {
    ++buckets_[static_cast<std::size_t>(bucket_of(v))];
    ++count_;
    sum_ += v;
    const double dv = static_cast<double>(v);
    sum_sq_ += dv * dv;
    if (v > max_) max_ = v;
    if (v < min_) min_ = v;
  }

  static int bucket_of(std::uint64_t v) { return std::bit_width(v); }
  /// Smallest / largest value a bucket can hold.
  static std::uint64_t bucket_lo(int b) {
    return b == 0 ? 0 : (std::uint64_t{1} << (b - 1));
  }
  static std::uint64_t bucket_hi(int b) {
    if (b == 0) return 0;
    if (b == 64) return UINT64_MAX;
    return (std::uint64_t{1} << b) - 1;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t max() const { return max_; }
  /// Smallest recorded value; 0 when empty.
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)];
  }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  /// Population standard deviation of the recorded samples (exact up to
  /// double rounding of the running sum of squares), 0 for < 2 samples.
  double stddev() const;

  /// Percentile estimate for p in [0, 100], clamped outside that range.
  /// p = 0 returns the exact recorded minimum and p = 100 the exact maximum;
  /// interpolated estimates in between are clamped into [min, max].  An
  /// empty histogram returns 0 for every p.
  double percentile(double p) const;

  Histogram& operator+=(const Histogram& o);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  double sum_sq_ = 0.0;
  std::uint64_t max_ = 0;
  std::uint64_t min_ = UINT64_MAX;
};

// Fixed metric identities.  Enum-indexed arrays keep the hot path to a load,
// an add and a store; counter_name()/hist_name()/gauge_name() provide the
// stable strings of the JSON schema.
enum CounterId : int {
  kOpInsertCount,
  kOpInsertTrue,
  kOpEraseCount,
  kOpEraseTrue,
  kOpContainsCount,
  kOpContainsTrue,
  kOpScanCount,
  kOpScanItems,
  kLockAcquires,
  kLockSpins,
  kLockHoldSteps,  // lockstep instructions elapsed while holding chunk locks
  kZombieEncounters,
  kRestarts,
  kLeaseExpiries,        // expired-lease observations while spinning on a lock
  kLockSteals,           // dead teams' locks force-released (clean or post-repair)
  kRecoveryRollForward,  // intents completed on the dead team's behalf
  kRecoveryRollBack,     // intents undone (partial insert shifts)
  kBackoffRounds,        // bounded-spin rounds that ended in a backoff
  kBackoffSpinIters,     // host pause/yield iterations spent backing off
  kLockRetraversals,     // spin caps that fell back to a fresh lateral walk
  kChunkRetires,         // unlinked zombies queued into an epoch limbo list
  kChunkReclaims,        // retired chunks recycled onto the arena free-list
  kChunkRequeues,        // reclaim candidates sent back to limbo (still
                         // referenced by a stale upper-level down pointer)
  kDownPtrScrubs,        // stale down pointers repaired by the reclaim scan
  kEmergencyReclaims,    // reclaim passes forced by allocation exhaustion
  kStaleChunkReads,      // generation-stamp mismatches (reader raced a reuse)
  kEpochAdvances,        // successful global-epoch advances by this team
  kBatchShardsExecuted,  // key-range shards drained by this team
  kBatchShardsStolen,    // shards popped from another team's queue range
  kBatchDescentReuses,   // batch searches that started from a warm cursor
  kBatchFullDescents,    // batch searches that restarted from the head
  kBatchEpochPins,       // per-shard epoch pins (incl. mid-shard refreshes)
  kOpScanAtCount,        // snapshot scans started (scan_at)
  kOpScanAtItems,        // pairs emitted by snapshot scans
  kScanAtRedescents,     // scan_at resumes (stale chunk -> re-descend, no restart)
  kScanAtExpired,        // scan_at calls aborted on an expired snapshot
  kVersionRecordsCreated,  // version records stamped by this team
  kVersionRecordsPruned,   // records unlinked by chain pruning / purges
  kVersionRecordCopies,    // records copied along split/merge key movement
  kForesightHits,        // hint consults whose hinted chunk validated
  kForesightFallbacks,   // hint consults that took the classic descent
                         // (invariant: hits + fallbacks == consults)
  kForesightStaleHints,  // fallbacks where a published hint existed but
                         // failed validation (gen mismatch or zombie)
  kForesightRebuilds,    // hint-table republishes completed by this team
  kCorruptionSealsStamped,      // chunk seals (re)computed at unlock/commit edges
  kCorruptionSealsVerified,     // seal checks that ran against a sealed chunk
  kCorruptionSealMismatches,    // checks that caught damaged data slots
  kCorruptionChunksQuarantined, // damaged chunks zombified + unlinked by scrub
  kCorruptionChunksRepaired,    // damaged chunks rebuilt in place by scrub
  kCorruptionChunksLost,        // quarantines that lost a key range (blast radius)
  kScrubPasses,                 // scrub passes completed
  kScrubChunksScanned,          // sealed chunks visited by scrub passes
  kInstructions,
  kBallots,
  kShfls,
  kDivergentBranches,
  kCounterIdCount,
};

enum HistId : int {
  kInsertWallNs,
  kEraseWallNs,
  kContainsWallNs,
  kScanWallNs,
  kInsertSteps,
  kEraseSteps,
  kContainsSteps,
  kScanSteps,
  kLockHoldStepsHist,
  kBatchShardOps,  // ops per executed shard (batch dispatch granularity)
  kScanAtWallNs,
  kScanAtSteps,
  kVersionChainLen,  // chain length observed at prune points
  kHistIdCount,
};

enum GaugeId : int {
  kHeight,
  kBottomKeys,
  kLiveChunks,
  kZombieChunks,
  kChunksAllocated,
  kChunkOccupancy,  // filled fraction of live chunks' data slots, [0, 1]
  kLimboChunks,     // retired chunks awaiting their grace period
  kFreeChunks,      // recycled chunks on the arena free-list
  kEpochLag,        // global epoch minus the slowest pinned team's epoch
  kActiveSnapshots,     // registered snapshots at report time
  kSnapshotAgeRevs,     // current revision minus the oldest snapshot's
  kVersionRecordsLive,  // version records resident in chunk chains
  kForesightEntries,    // hints in the currently published table
  kForesightDirty,      // dirty events pending since the last publish
  kSealedChunks,        // chunks carrying a valid integrity seal
  kScrubSuspects,       // chunks flagged suspect, awaiting a scrub pass
  kGaugeIdCount,
};

std::string_view counter_name(CounterId id);
std::string_view hist_name(HistId id);
std::string_view gauge_name(GaugeId id);

/// The ids one operation records under, bundled so the scoped
/// instrumentation in simt::Team stays generic over operation kinds.
struct OpIds {
  CounterId count;
  CounterId value;  // succeeded ops (insert/erase/contains) or items (scan)
  HistId wall_ns;
  HistId steps;
  std::uint8_t tag;  // payload for kOpBegin/kOpEnd trace records
};

inline constexpr OpIds kInsertOp{kOpInsertCount, kOpInsertTrue, kInsertWallNs,
                                 kInsertSteps, 0};
inline constexpr OpIds kEraseOp{kOpEraseCount, kOpEraseTrue, kEraseWallNs,
                                kEraseSteps, 1};
inline constexpr OpIds kContainsOp{kOpContainsCount, kOpContainsTrue,
                                   kContainsWallNs, kContainsSteps, 2};
inline constexpr OpIds kScanOp{kOpScanCount, kOpScanItems, kScanWallNs,
                               kScanSteps, 3};
inline constexpr OpIds kScanAtOp{kOpScanAtCount, kOpScanAtItems, kScanAtWallNs,
                                 kScanAtSteps, 4};

std::string_view op_tag_name(std::uint8_t tag);

/// One team's private slice of the registry.  Not thread-safe by design:
/// exactly one team writes a shard during a run; readers merge quiescently.
class MetricsShard {
 public:
  void add(CounterId id, std::uint64_t v = 1) {
    counters_[static_cast<std::size_t>(id)] += v;
  }
  void record(HistId id, std::uint64_t v) {
    hists_[static_cast<std::size_t>(id)].record(v);
  }

  std::uint64_t counter(CounterId id) const {
    return counters_[static_cast<std::size_t>(id)];
  }
  const Histogram& hist(HistId id) const {
    return hists_[static_cast<std::size_t>(id)];
  }

  MetricsShard& operator+=(const MetricsShard& o);

 private:
  std::array<std::uint64_t, kCounterIdCount> counters_{};
  std::array<Histogram, kHistIdCount> hists_{};
};

/// The per-run registry: one shard per worker/team plus quiescent gauges and
/// free-form run metadata.  merged() and write_json() must only be called
/// while no team is recording.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(int shards);

  int shards() const { return static_cast<int>(shards_.size()); }
  MetricsShard& shard(int i) { return shards_[static_cast<std::size_t>(i)]; }
  const MetricsShard& shard(int i) const {
    return shards_[static_cast<std::size_t>(i)];
  }

  void set_gauge(GaugeId id, double v) {
    gauges_[static_cast<std::size_t>(id)] = v;
  }
  double gauge(GaugeId id) const {
    return gauges_[static_cast<std::size_t>(id)];
  }

  /// Attach a run-metadata string (structure, mix, range, ...) surfaced in
  /// the report's "info" object.  Last write per key wins.
  void set_info(const std::string& key, const std::string& value);

  /// Fold every shard into one view.
  MetricsShard merged() const;

  /// Stable JSON run report (schema "gfsl-metrics-v1"):
  ///   { "schema": ..., "info": {..}, "counters": {..}, "gauges": {..},
  ///     "histograms": { name: {count, mean, p50, p90, p99, max}, .. } }
  void write_json(std::ostream& os) const;

 private:
  std::vector<MetricsShard> shards_;
  std::array<double, kGaugeIdCount> gauges_{};
  std::vector<std::pair<std::string, std::string>> info_;
};

}  // namespace gfsl::obs
