// Minimal JSON emission helpers shared by the obs exporters.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>

namespace gfsl::obs {

/// RFC 8259 string escaping (quotes, backslash, control characters).
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline void json_string(std::ostream& os, std::string_view s) {
  os << '"' << json_escape(s) << '"';
}

/// Finite doubles print with enough precision to round-trip; non-finite
/// values (illegal in JSON) degrade to 0.
inline void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace gfsl::obs
