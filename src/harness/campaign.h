// Canonical benchmark campaigns behind both the per-figure bench binaries
// and the unified `bench_runner` tool.
//
// A campaign bundles one experiment family (a thesis figure sweep, the batch
// A/B, the churn soak, the host-micro suite): it prints the same
// human-readable tables the standalone binaries always printed AND returns a
// BenchReport (gfsl-bench-v1) carrying every measured series with its
// per-repetition samples, so one run feeds eyeballs, dashboards and the
// bench_compare regression gate alike.  The per-figure binaries are thin
// shims over campaign_main(); bench_runner iterates the registry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "harness/bench_schema.h"
#include "harness/experiment.h"
#include "harness/workload.h"

namespace gfsl::harness {

struct CampaignOptions {
  /// Reduced fixed scale (ops=6000, ranges to 100K, 4 teams) so a full
  /// campaign finishes in seconds — the CI regression gate runs this.
  /// Ignores GFSL_OPS/GFSL_MAX_RANGE/GFSL_TEAMS; GFSL_SEED still applies.
  bool quick = false;
  int reps = 0;             // > 0 overrides the scale's repetition count
  std::string out_dir;      // non-empty: write BENCH_<campaign>.json here
};

struct Campaign {
  std::string name;
  std::string description;
  BenchReport (*run)(const CampaignOptions&);
};

/// All registered campaigns, in canonical order.
const std::vector<Campaign>& campaigns();
const Campaign* find_campaign(const std::string& name);

/// Resolve the experiment scale for `opts` (env scale, or the fixed quick
/// scale) and apply the reps override.
Scale campaign_scale(const CampaignOptions& opts);

/// Entry point for the single-campaign bench binaries: run `name` at env
/// scale and print its tables.  When GFSL_BENCH_JSON_DIR is set the
/// gfsl-bench-v1 report is also written there.  Returns a main()-style exit
/// code (2 = unknown campaign).
int campaign_main(const std::string& name);

/// Run one campaign and, when opts.out_dir is set, write
/// `<out_dir>/BENCH_<name>.json`.  Returns the report.
BenchReport run_campaign(const Campaign& c, const CampaignOptions& opts);

// Shared bench plumbing (formerly private to bench/bench_common.h; the
// campaign implementations and the standalone binaries use one copy).

StructureSetup setup_from_scale(const Scale& sc, int team_size = 32);

WorkloadConfig make_workload(const Mix& mix, std::uint64_t range,
                             std::uint64_t ops, std::uint64_t seed);

void print_scale_banner(const Scale& sc);

/// Stable metric-name fragment for a mix ("mix_10_10_80") or range ("r10000").
std::string mix_key(const Mix& mix);
std::string range_key(std::uint64_t range);

}  // namespace gfsl::harness
