#include "harness/proc_crash_sweep.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/gfsl.h"
#include "core/snapshot.h"
#include "device/device_memory.h"
#include "device/epoch.h"
#include "device/persist.h"
#include "harness/history.h"
#include "harness/postmortem.h"
#include "harness/workload.h"
#include "sched/lease.h"
#include "sched/step_scheduler.h"

namespace gfsl::harness {

namespace {

// One journal record; a single write() under O_APPEND, so a SIGKILL can
// truncate the file only at a record boundary (a torn trailing record is
// discarded by the reader).  The record's file index is its logical tick.
struct JournalRec {
  std::uint8_t tag;     // 'B' = op begin, 'E' = op end
  std::uint8_t worker;
  std::uint8_t kind;    // OpKind
  std::uint8_t result;  // 'E' only
  std::uint32_t opid;   // index into the generated op array
  std::uint64_t key;
};
static_assert(sizeof(JournalRec) == 16);

std::string region_path(const ProcCrashSweepConfig& cfg) {
  return cfg.work_dir + "/proc_crash_region.gfsl";
}
std::string journal_path(const ProcCrashSweepConfig& cfg) {
  return cfg.work_dir + "/proc_crash_journal.bin";
}

void jwrite(int fd, const JournalRec& r) {
  // Best-effort: a record the kill raced past is simply absent, which the
  // checker treats as "op never invoked" ('B' missing) or "op crashed"
  // ('E' missing) — both sound.
  (void)!::write(fd, &r, sizeof r);
}

core::GfslConfig gfsl_config(const ProcCrashSweepConfig& cfg) {
  core::GfslConfig gcfg;
  gcfg.team_size = cfg.team_size;
  gcfg.pool_chunks = cfg.pool_chunks;
  return gcfg;
}

std::vector<Op> sweep_ops(const ProcCrashSweepConfig& cfg) {
  WorkloadConfig wl;
  wl.mix = kMix_20_20_60;  // update-heavy: splits, merges, reclaim traffic
  wl.key_range = cfg.key_range;
  wl.num_ops = cfg.ops;
  wl.seed = cfg.wl_seed;
  return generate_ops(wl);
}

/// Child body: fresh region, deterministic threaded workload, journal every
/// op, die at the armed barrier or exit(0) through mark_clean().  Never
/// returns.
[[noreturn]] void child_run(const ProcCrashSweepConfig& cfg,
                            std::uint64_t kill_at) {
  ::alarm(cfg.alarm_seconds);  // livelock guard: SIGALRM terminates us
  try {
    device::PersistRegion region(
        region_path(cfg), device::PersistRegion::Mode::kCreate,
        {static_cast<std::uint32_t>(cfg.team_size), cfg.pool_chunks});
    if (kill_at != 0) region.arm_kill_at(kill_at);

    sched::LeaseTable leases;
    leases.attach(
        static_cast<std::atomic<std::uint32_t>*>(region.lease_slots()),
        /*adopt=*/false);
    sched::StepScheduler sched(sched::StepScheduler::Mode::Deterministic,
                               cfg.sched_seed, cfg.workers);
    sched.attach_leases(&leases);
    device::DeviceMemory mem;
    device::EpochManager epochs;
    std::unique_ptr<core::SnapshotManager> snaps;
    if (cfg.with_snapshots) {
      snaps = std::make_unique<core::SnapshotManager>(cfg.pool_chunks);
    }
    core::Gfsl sl(gfsl_config(cfg), &mem, &sched, &leases,
                  cfg.with_epochs ? &epochs : nullptr, &region, snaps.get());

    const auto ops = sweep_ops(cfg);
    const int jfd = ::open(journal_path(cfg).c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
    if (jfd < 0) ::_exit(3);

    std::vector<std::thread> threads;
    for (int w = 0; w < cfg.workers; ++w) {
      threads.emplace_back([&, w] {
        simt::Team team(cfg.team_size, w, 3);
        sched.enter(w);
        for (std::size_t i = static_cast<std::size_t>(w); i < ops.size();
             i += static_cast<std::size_t>(cfg.workers)) {
          const Op& op = ops[i];
          jwrite(jfd, {'B', static_cast<std::uint8_t>(w),
                       static_cast<std::uint8_t>(op.kind), 0,
                       static_cast<std::uint32_t>(i), op.key});
          bool r = false;
          switch (op.kind) {
            case OpKind::Insert: r = sl.insert(team, op.key, op.value); break;
            case OpKind::Delete: r = sl.erase(team, op.key); break;
            case OpKind::Contains: r = sl.contains(team, op.key); break;
          }
          jwrite(jfd, {'E', static_cast<std::uint8_t>(w),
                       static_cast<std::uint8_t>(op.kind),
                       static_cast<std::uint8_t>(r),
                       static_cast<std::uint32_t>(i), op.key});
        }
        sched.leave(w);
      });
    }
    for (auto& t : threads) t.join();
    ::close(jfd);
    region.mark_clean();
    ::_exit(0);
  } catch (...) {
    ::_exit(3);
  }
}

std::vector<JournalRec> read_journal(const std::string& path) {
  std::vector<JournalRec> out;
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return out;
  JournalRec r;
  while (::read(fd, &r, sizeof r) == static_cast<ssize_t>(sizeof r)) {
    out.push_back(r);
  }
  ::close(fd);
  return out;
}

struct VerifyOutcome {
  bool ok = true;
  std::string error;
  std::uint64_t recorded_points = 0;  // superblock count (clean exits only)
  core::RecoveryReport recovery;
};

/// Parent-side verification of one child image: attach, recover, check the
/// journal history against the recovered contents.
VerifyOutcome verify_image(const ProcCrashSweepConfig& cfg,
                           std::uint64_t kill_at) {
  VerifyOutcome out;
  device::PersistRegion region(region_path(cfg),
                               device::PersistRegion::Mode::kAttach);
  out.recorded_points = region.recorded_persist_points();
  sched::LeaseTable leases;
  leases.attach(
      static_cast<std::atomic<std::uint32_t>*>(region.lease_slots()),
      /*adopt=*/true);
  device::DeviceMemory mem;
  device::EpochManager epochs;  // fresh: limbo is rebuilt by classification
  std::unique_ptr<core::SnapshotManager> snaps;
  if (cfg.with_snapshots) {
    snaps = std::make_unique<core::SnapshotManager>(cfg.pool_chunks);
  }
  core::Gfsl sl(gfsl_config(cfg), &mem, /*scheduler=*/nullptr, &leases,
                cfg.with_epochs ? &epochs : nullptr, &region, snaps.get());
  out.recovery = sl.recover();

  auto fail = [&](const std::string& msg,
                  const std::string& reason = "recovery_failure") {
    if (out.ok) {
      out.ok = false;
      out.error = msg;
    }
    if (!cfg.postmortem_dir.empty()) {
      PostmortemContext ctx;
      ctx.reason = reason;
      ctx.detail = msg;
      ctx.gfsl = &sl;
      ctx.info = {
          {"harness", "proc_crash_sweep"},
          {"kill_point", std::to_string(kill_at)},
          {"wl_seed", std::to_string(cfg.wl_seed)},
          {"sched_seed", std::to_string(cfg.sched_seed)},
          {"workers", std::to_string(cfg.workers)},
          {"team_size", std::to_string(cfg.team_size)},
          {"ops", std::to_string(cfg.ops)},
          {"key_range", std::to_string(cfg.key_range)},
          {"with_epochs", cfg.with_epochs ? "1" : "0"},
          {"with_snapshots", cfg.with_snapshots ? "1" : "0"},
      };
      (void)dump_postmortem(cfg.postmortem_dir,
                            "postmortem_proc_crash_k" + std::to_string(kill_at),
                            ctx);
    }
  };

  if (!out.recovery.ok) {
    fail("recover() failed: " + out.recovery.error);
    return out;
  }

  // Journal -> per-key linearizable history.  Record index = logical tick;
  // a 'B' without an 'E' is the crashed (optional-effect) op.
  const auto recs = read_journal(journal_path(cfg));
  const auto ops = sweep_ops(cfg);
  std::vector<HistoryEvent> events;
  std::map<std::uint32_t, std::uint64_t> open;  // opid -> begin tick
  for (std::size_t i = 0; i < recs.size(); ++i) {
    const JournalRec& r = recs[i];
    if (r.opid >= ops.size() ||
        static_cast<OpKind>(r.kind) != ops[r.opid].kind ||
        r.key != ops[r.opid].key) {
      fail("journal record " + std::to_string(i) +
           " does not match the generated workload");
      return out;
    }
    if (r.tag == 'B') {
      open[r.opid] = i;
    } else {
      const auto it = open.find(r.opid);
      if (it == open.end()) {
        fail("journal end-record " + std::to_string(i) + " without a begin");
        return out;
      }
      events.push_back(HistoryEvent{it->second, i,
                                    static_cast<OpKind>(r.kind), r.key,
                                    r.result != 0, r.worker});
      open.erase(it);
    }
  }
  for (const auto& [opid, tick] : open) {
    events.push_back(HistoryEvent{tick, UINT64_MAX, ops[opid].kind,
                                  ops[opid].key, false,
                                  static_cast<int>(opid %
                                      static_cast<std::uint32_t>(cfg.workers)),
                                  /*crashed=*/true});
  }

  const auto contents = sl.collect();
  std::vector<Key> final_keys;
  for (const auto& [k, v] : contents) final_keys.push_back(k);
  const auto check = check_history(events, {}, final_keys);
  if (!check.ok) {
    fail("history violation after recovery: " + check.error);
    return out;
  }

  // Single-worker runs are sequential programs: tighten to an exact replay.
  // Every completed op's result must match a std::map model, and the
  // recovered contents must equal the model with the one crashed op either
  // applied or not.
  if (cfg.workers == 1) {
    std::map<Key, Value> model;
    std::uint32_t crashed_opid = UINT32_MAX;
    for (const JournalRec& r : recs) {
      if (r.tag != 'E') continue;
      const Op& op = ops[r.opid];
      bool expect = false;
      switch (op.kind) {
        case OpKind::Insert:
          expect = model.emplace(op.key, op.value).second;
          break;
        case OpKind::Delete: expect = model.erase(op.key) != 0; break;
        case OpKind::Contains: expect = model.count(op.key) != 0; break;
      }
      if (expect != (r.result != 0)) {
        fail("oracle mismatch at op " + std::to_string(r.opid) +
             " (key " + std::to_string(op.key) + "): journal says " +
             std::to_string(r.result) + ", model says " +
             std::to_string(expect));
        return out;
      }
    }
    if (!open.empty()) crashed_opid = open.begin()->first;
    std::vector<std::pair<Key, Value>> without(model.begin(), model.end());
    bool matches = contents == without;
    if (!matches && crashed_opid != UINT32_MAX) {
      const Op& op = ops[crashed_opid];
      switch (op.kind) {
        case OpKind::Insert: model.emplace(op.key, op.value); break;
        case OpKind::Delete: model.erase(op.key); break;
        case OpKind::Contains: break;
      }
      std::vector<std::pair<Key, Value>> with(model.begin(), model.end());
      matches = contents == with;
    }
    if (!matches) {
      fail("recovered contents match neither replay model (crashed op " +
           (crashed_opid == UINT32_MAX ? std::string("none")
                                       : std::to_string(crashed_opid)) +
           ")");
      return out;
    }
  }

  // Post-recovery MVCC coherence: the child's version chains died with it,
  // so a fresh snapshot must see the recovered contents verbatim (every
  // surviving key resolves as a legacy, pre-history key), and its revision
  // must sit at or above the durable clock the child pushed — a regressed
  // clock would let post-restart commits reuse pre-crash revisions.
  if (cfg.with_snapshots) {
    const std::uint64_t durable =
        static_cast<std::atomic<std::uint64_t>*>(region.durable_rev())
            ->load(std::memory_order_acquire);
    core::Snapshot fresh = sl.snapshot();
    if (!fresh.open()) {
      fail("post-recovery snapshot acquisition failed", "snapshot_mismatch");
      return out;
    }
    if (fresh.rev < durable) {
      fail("post-recovery snapshot rev " + std::to_string(fresh.rev) +
               " below the durable revision " + std::to_string(durable),
           "snapshot_mismatch");
      return out;
    }
    simt::Team team(cfg.team_size, 0, 7);
    std::vector<std::pair<Key, Value>> got;
    const auto st = sl.scan_at(team, fresh, MIN_USER_KEY, MAX_USER_KEY, got);
    if (st != core::ScanAtStatus::kOk) {
      fail("post-recovery scan_at failed with status " +
               std::to_string(static_cast<int>(st)),
           "snapshot_mismatch");
      return out;
    }
    if (got != contents) {
      fail("post-recovery snapshot scan (" + std::to_string(got.size()) +
               " pairs) disagrees with recovered contents (" +
               std::to_string(contents.size()) + ")",
           "snapshot_mismatch");
      return out;
    }
    sl.release_snapshot(fresh);
  }
  return out;
}

enum class ChildExit { kClean, kKilled, kHang, kError };

ChildExit run_child(const ProcCrashSweepConfig& cfg, std::uint64_t kill_at,
                    std::string* error) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    *error = "fork failed: " + std::string(std::strerror(errno));
    return ChildExit::kError;
  }
  if (pid == 0) child_run(cfg, kill_at);  // never returns
  int status = 0;
  if (::waitpid(pid, &status, 0) < 0) {
    *error = "waitpid failed: " + std::string(std::strerror(errno));
    return ChildExit::kError;
  }
  if (WIFEXITED(status)) {
    if (WEXITSTATUS(status) == 0) return ChildExit::kClean;
    *error = "child exited with code " + std::to_string(WEXITSTATUS(status));
    return ChildExit::kError;
  }
  if (WIFSIGNALED(status)) {
    if (WTERMSIG(status) == SIGKILL) return ChildExit::kKilled;
    if (WTERMSIG(status) == SIGALRM) {
      *error = "child hit its alarm (livelock)";
      return ChildExit::kHang;
    }
    *error = "child died on signal " + std::to_string(WTERMSIG(status));
    return ChildExit::kError;
  }
  *error = "child neither exited nor was signaled";
  return ChildExit::kError;
}

}  // namespace

ProcCrashSweepResult run_proc_crash_sweep(const ProcCrashSweepConfig& cfg,
                                          std::FILE* progress) {
  ProcCrashSweepResult res;
  auto fail = [&res](std::uint64_t point, const std::string& msg) {
    res.ok = false;
    res.failed_at_point = point;
    res.error = msg;
  };

  // Baseline: nothing armed; the clean exit records the workload's total
  // persist-point count in the superblock.
  std::string cerr;
  ++res.runs;
  if (run_child(cfg, 0, &cerr) != ChildExit::kClean) {
    fail(0, "baseline child failed: " + cerr);
    return res;
  }
  {
    const auto v = verify_image(cfg, 0);
    if (!v.ok) {
      fail(0, "baseline image failed verification: " + v.error);
      return res;
    }
    res.persist_points = v.recorded_points;
    res.locks_released += static_cast<std::uint64_t>(v.recovery.locks_released);
    res.intents_replayed +=
        static_cast<std::uint64_t>(v.recovery.intents_repaired);
    res.chunks_freed += v.recovery.chunks_freed;
  }
  if (res.persist_points == 0) {
    fail(0, "baseline run crossed no persist points (nothing to sweep)");
    return res;
  }

  const std::uint64_t stride = cfg.stride == 0 ? 1 : cfg.stride;
  const std::uint64_t report_every =
      (res.persist_points / stride) / 10 + 1;  // ~10 progress lines
  std::uint64_t since_report = 0;
  for (std::uint64_t k = 1; k <= res.persist_points; k += stride) {
    ++res.runs;
    const ChildExit ce = run_child(cfg, k, &cerr);
    if (ce == ChildExit::kKilled) {
      ++res.kills_landed;
    } else if (ce != ChildExit::kClean) {
      // kClean can only mean the armed point was never reached — the
      // deterministic schedule makes that a sweep bug, not a tolerance.
      fail(k, cerr.empty() ? "armed child exited cleanly before its kill point"
                           : cerr);
      return res;
    } else {
      fail(k, "armed child exited cleanly before its kill point");
      return res;
    }
    const auto v = verify_image(cfg, k);
    if (!v.ok) {
      fail(k, v.error);
      return res;
    }
    res.locks_released += static_cast<std::uint64_t>(v.recovery.locks_released);
    res.intents_replayed +=
        static_cast<std::uint64_t>(v.recovery.intents_repaired);
    res.chunks_freed += v.recovery.chunks_freed;
    if (progress != nullptr && ++since_report >= report_every) {
      since_report = 0;
      std::fprintf(progress,
                   "  proc-crash-sweep %llu/%llu points (%llu kills, "
                   "%llu locks released, %llu intents replayed)\n",
                   static_cast<unsigned long long>(k),
                   static_cast<unsigned long long>(res.persist_points),
                   static_cast<unsigned long long>(res.kills_landed),
                   static_cast<unsigned long long>(res.locks_released),
                   static_cast<unsigned long long>(res.intents_replayed));
      std::fflush(progress);
    }
  }
  ::unlink(region_path(cfg).c_str());
  ::unlink(journal_path(cfg).c_str());
  return res;
}

}  // namespace gfsl::harness
