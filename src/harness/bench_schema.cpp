#include "harness/bench_schema.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "obs/json_util.h"
#include "obs/json_value.h"

namespace gfsl::harness {

std::string_view better_name(Better b) {
  switch (b) {
    case Better::kHigher: return "higher";
    case Better::kLower: return "lower";
    case Better::kNone: return "none";
  }
  return "none";
}

namespace {

Better better_from(const std::string& s) {
  if (s == "higher") return Better::kHigher;
  if (s == "lower") return Better::kLower;
  return Better::kNone;
}

}  // namespace

double BenchMetric::mean() const {
  if (samples.empty()) return 0.0;
  double s = 0.0;
  for (const double v : samples) s += v;
  return s / static_cast<double>(samples.size());
}

double BenchMetric::stddev() const {
  if (samples.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (const double v : samples) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples.size() - 1));
}

double BenchMetric::min() const {
  if (samples.empty()) return 0.0;
  return *std::min_element(samples.begin(), samples.end());
}

double BenchMetric::max() const {
  if (samples.empty()) return 0.0;
  return *std::max_element(samples.begin(), samples.end());
}

double BenchMetric::percentile(double p) const {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

const BenchMetric* BenchReport::find(const std::string& name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void BenchReport::set_config(const std::string& key, const std::string& value) {
  for (auto& [k, v] : config) {
    if (k == key) {
      v = value;
      return;
    }
  }
  config.emplace_back(key, value);
}

void BenchReport::stamp_environment() {
  auto put = [&](const std::string& key, const std::string& value) {
    for (const auto& [k, v] : environment) {
      if (k == key) return;
    }
    environment.emplace_back(key, value);
  };
#if defined(__clang__)
  put("compiler", std::string("clang ") + __clang_version__);
#elif defined(__GNUC__)
  put("compiler", std::string("gcc ") + __VERSION__);
#else
  put("compiler", "unknown");
#endif
#if defined(NDEBUG)
  put("build", "release");
#else
  put("build", "debug");
#endif
#if defined(__linux__)
  put("platform", "linux");
#elif defined(__APPLE__)
  put("platform", "darwin");
#elif defined(_WIN32)
  put("platform", "windows");
#else
  put("platform", "unknown");
#endif
  put("pointer_bits", std::to_string(sizeof(void*) * 8));
  put("schema_producer", "gfsl bench_runner");
}

namespace {

void write_string_map(
    std::ostream& os, const char* indent,
    const std::vector<std::pair<std::string, std::string>>& kv) {
  os << "{";
  for (std::size_t i = 0; i < kv.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << indent << "  ";
    obs::json_string(os, kv[i].first);
    os << ": ";
    obs::json_string(os, kv[i].second);
  }
  if (!kv.empty()) os << "\n" << indent;
  os << "}";
}

}  // namespace

void write_bench_json(std::ostream& os, const BenchReport& report) {
  os << "{\n  \"schema\": \"gfsl-bench-v1\",\n  \"campaign\": ";
  obs::json_string(os, report.campaign);
  os << ",\n  \"config\": ";
  write_string_map(os, "  ", report.config);
  os << ",\n  \"environment\": ";
  write_string_map(os, "  ", report.environment);
  os << ",\n  \"metrics\": [";
  for (std::size_t i = 0; i < report.metrics.size(); ++i) {
    const BenchMetric& m = report.metrics[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"name\": ";
    obs::json_string(os, m.name);
    os << ", \"unit\": ";
    obs::json_string(os, m.unit);
    os << ", \"better\": ";
    obs::json_string(os, better_name(m.better));
    os << ", \"gate\": " << (m.gate ? "true" : "false");
    os << ",\n     \"n\": " << m.samples.size();
    os << ", \"mean\": ";
    obs::json_number(os, m.mean());
    os << ", \"stddev\": ";
    obs::json_number(os, m.stddev());
    os << ", \"min\": ";
    obs::json_number(os, m.min());
    os << ", \"max\": ";
    obs::json_number(os, m.max());
    os << ", \"p50\": ";
    obs::json_number(os, m.percentile(50.0));
    os << ", \"p99\": ";
    obs::json_number(os, m.percentile(99.0));
    os << ",\n     \"samples\": [";
    for (std::size_t s = 0; s < m.samples.size(); ++s) {
      if (s != 0) os << ", ";
      obs::json_number(os, m.samples[s]);
    }
    os << "]}";
  }
  if (!report.metrics.empty()) os << "\n  ";
  os << "]\n}\n";
}

namespace {

bool read_string_map(const obs::JsonValue* v,
                     std::vector<std::pair<std::string, std::string>>& out) {
  if (v == nullptr || !v->is_object()) return false;
  for (const auto& [k, val] : v->as_object()) {
    if (!val.is_string()) return false;
    out.emplace_back(k, val.as_string());
  }
  return true;
}

}  // namespace

bool read_bench_json(const std::string& text, BenchReport& out,
                     std::string& error) {
  const obs::JsonParseResult parsed = obs::json_parse(text);
  if (!parsed.ok) {
    error = "JSON parse error: " + parsed.error;
    return false;
  }
  const obs::JsonValue& root = parsed.value;
  if (!root.is_object()) {
    error = "document root is not an object";
    return false;
  }
  if (root.string_or("schema", "") != "gfsl-bench-v1") {
    error = "unexpected schema '" + root.string_or("schema", "<missing>") +
            "' (want gfsl-bench-v1)";
    return false;
  }
  out = BenchReport{};
  out.campaign = root.string_or("campaign", "");
  if (out.campaign.empty()) {
    error = "missing campaign name";
    return false;
  }
  // config/environment are informational; tolerate absence.
  read_string_map(root.get("config"), out.config);
  read_string_map(root.get("environment"), out.environment);

  const obs::JsonValue* metrics = root.get("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    error = "missing metrics array";
    return false;
  }
  for (const obs::JsonValue& mv : metrics->as_array()) {
    if (!mv.is_object()) {
      error = "metrics entry is not an object";
      return false;
    }
    BenchMetric m;
    m.name = mv.string_or("name", "");
    if (m.name.empty()) {
      error = "metric with missing name";
      return false;
    }
    m.unit = mv.string_or("unit", "");
    m.better = better_from(mv.string_or("better", "none"));
    const obs::JsonValue* gate = mv.get("gate");
    m.gate = gate != nullptr && gate->is_bool() && gate->as_bool();
    const obs::JsonValue* samples = mv.get("samples");
    if (samples != nullptr && samples->is_array()) {
      for (const obs::JsonValue& s : samples->as_array()) {
        if (!s.is_number()) {
          error = "non-numeric sample in metric '" + m.name + "'";
          return false;
        }
        m.samples.push_back(s.as_number());
      }
    } else {
      // Degraded baseline (summary only): reconstruct a single pseudo-sample
      // from the stored mean so comparisons still work, with zero stddev.
      m.samples.push_back(mv.number_or("mean", 0.0));
    }
    out.metrics.push_back(std::move(m));
  }
  return true;
}

std::string_view verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kOk: return "ok";
    case Verdict::kImproved: return "improved";
    case Verdict::kRegressed: return "REGRESSED";
    case Verdict::kMissing: return "missing";
    case Verdict::kNew: return "new";
  }
  return "ok";
}

CompareResult compare_reports(const BenchReport& baseline,
                              const BenchReport& current,
                              const CompareOptions& opts) {
  CompareResult result;
  for (const BenchMetric& base : baseline.metrics) {
    if (opts.gated_only && !base.gate) continue;
    MetricDelta d;
    d.name = base.name;
    d.unit = base.unit;
    d.better = base.better;
    d.gate = base.gate;
    d.base_mean = base.mean();
    d.base_stddev = base.stddev();

    const BenchMetric* cur = current.find(base.name);
    if (cur == nullptr) {
      d.verdict = Verdict::kMissing;
      // A vanished gated metric is a gate failure: silently dropping the
      // regression-sensitive series would defeat the point of the gate.
      if (base.gate) ++result.regressions;
      result.deltas.push_back(std::move(d));
      continue;
    }
    d.cur_mean = cur->mean();
    d.cur_stddev = cur->stddev();
    d.delta = d.cur_mean - d.base_mean;
    d.threshold = std::max(opts.rel_thresh * std::fabs(d.base_mean),
                           opts.k * std::max(d.base_stddev, d.cur_stddev));

    if (!base.gate || base.better == Better::kNone) {
      d.verdict = Verdict::kOk;
    } else if (std::fabs(d.delta) <= d.threshold) {
      d.verdict = Verdict::kOk;
    } else {
      const bool worse = (base.better == Better::kHigher) ? (d.delta < 0.0)
                                                          : (d.delta > 0.0);
      d.verdict = worse ? Verdict::kRegressed : Verdict::kImproved;
      if (worse) {
        ++result.regressions;
      } else {
        ++result.improvements;
      }
    }
    result.deltas.push_back(std::move(d));
  }
  // Surface metrics that only the current run has (informational).
  for (const BenchMetric& cur : current.metrics) {
    if (opts.gated_only && !cur.gate) continue;
    if (baseline.find(cur.name) != nullptr) continue;
    MetricDelta d;
    d.name = cur.name;
    d.unit = cur.unit;
    d.better = cur.better;
    d.gate = cur.gate;
    d.cur_mean = cur.mean();
    d.cur_stddev = cur.stddev();
    d.verdict = Verdict::kNew;
    result.deltas.push_back(std::move(d));
  }
  return result;
}

}  // namespace gfsl::harness
