#include "harness/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <new>
#include <stdexcept>
#include <thread>

namespace gfsl::harness {

namespace {

using Clock = std::chrono::steady_clock;

/// Instruction-issue proxy for an M&C warp: lockstep instructions per
/// serialized hop epoch (compare + address arithmetic + branch per level
/// step, executed by the warp at the pace of its slowest lane).
constexpr std::uint64_t kMcInstrPerHop = 8;

std::pair<std::size_t, std::size_t> slice(std::size_t total, int workers,
                                          int w) {
  const std::size_t base = total / static_cast<std::size_t>(workers);
  const std::size_t extra = total % static_cast<std::size_t>(workers);
  const auto uw = static_cast<std::size_t>(w);
  const std::size_t begin = uw * base + std::min(uw, extra);
  const std::size_t len = base + (uw < extra ? 1 : 0);
  return {begin, begin + len};
}

}  // namespace

RunResult run_gfsl(core::Gfsl& sl, const std::vector<Op>& ops,
                   const RunConfig& cfg, device::DeviceMemory& mem) {
  RunResult res;
  if (cfg.flush_cache_before) mem.flush_cache();
  const device::MemStats before = mem.snapshot();
  if (cfg.results != nullptr) cfg.results->assign(ops.size(), 0);
  std::atomic<std::uint64_t> ops_true{0};
  std::atomic<bool> oom{false};

  std::vector<simt::TeamCounters> counters(
      static_cast<std::size_t>(cfg.num_workers));

  const auto t0 = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(cfg.num_workers));
    for (int w = 0; w < cfg.num_workers; ++w) {
      threads.emplace_back([&, w] {
        simt::Team team(sl.team_size(), w, cfg.seed);
        if (cfg.scheduler != nullptr) cfg.scheduler->enter(w);
        const auto [begin, end] =
            slice(ops.size(), cfg.num_workers, w);
        std::uint64_t mine_true = 0;
        try {
          for (std::size_t i = begin; i < end; ++i) {
            const Op& op = ops[i];
            bool r = false;
            switch (op.kind) {
              case OpKind::Insert:
                r = sl.insert(team, op.key, op.value);
                break;
              case OpKind::Delete:
                r = sl.erase(team, op.key);
                break;
              case OpKind::Contains:
                r = sl.contains(team, op.key);
                break;
            }
            if (r) ++mine_true;
            if (cfg.results != nullptr) {
              (*cfg.results)[i] = r ? 1 : 0;
            }
          }
        } catch (const std::bad_alloc&) {
          oom.store(true, std::memory_order_relaxed);
        } catch (const sched::TeamKilled&) {
          // Failure injection: abandon remaining work.
        }
        ops_true.fetch_add(mine_true, std::memory_order_relaxed);
        counters[static_cast<std::size_t>(w)] = team.counters();
        if (cfg.scheduler != nullptr) cfg.scheduler->leave(w);
      });
    }
    for (auto& t : threads) t.join();
  }
  const auto t1 = Clock::now();

  res.sim_wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  res.ops_true = ops_true.load(std::memory_order_relaxed);
  res.out_of_memory = oom.load(std::memory_order_relaxed);
  for (const auto& c : counters) res.team_totals += c;

  res.kernel.ops = ops.size();
  res.kernel.mem = mem.snapshot() - before;
  // A coalesced team read is one serialized wait; so is each atomic.
  res.kernel.mem_epochs = res.kernel.mem.warp_reads + res.kernel.mem.atomics;
  res.kernel.warp_steps = res.team_totals.instructions;
  res.kernel.lock_spins = res.team_totals.lock_spins;
  return res;
}

RunResult run_gfsl_paired(core::Gfsl& sl, const std::vector<Op>& ops,
                          const RunConfig& cfg, device::DeviceMemory& mem) {
  RunResult res;
  if (cfg.num_workers < 2 || cfg.num_workers % 2 != 0) {
    throw std::invalid_argument("paired execution needs an even worker count");
  }
  if (cfg.flush_cache_before) mem.flush_cache();
  const device::MemStats before = mem.snapshot();
  if (cfg.results != nullptr) cfg.results->assign(ops.size(), 0);
  std::atomic<std::uint64_t> ops_true{0};
  std::atomic<bool> oom{false};

  const int pairs = cfg.num_workers / 2;
  std::vector<std::unique_ptr<sched::StepScheduler>> warp_sched;
  warp_sched.reserve(static_cast<std::size_t>(pairs));
  for (int p = 0; p < pairs; ++p) {
    warp_sched.push_back(std::make_unique<sched::StepScheduler>(
        sched::StepScheduler::Mode::RoundRobin, cfg.seed, 2));
  }

  std::vector<simt::TeamCounters> counters(
      static_cast<std::size_t>(cfg.num_workers));

  const auto t0 = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(cfg.num_workers));
    for (int w = 0; w < cfg.num_workers; ++w) {
      threads.emplace_back([&, w] {
        sched::StepScheduler* warp = warp_sched[static_cast<std::size_t>(w / 2)].get();
        const int lane_team = w % 2;
        simt::Team team(sl.team_size(), w, cfg.seed);
        team.set_yield_hook([warp, lane_team] { warp->yield(lane_team); });
        warp->enter(lane_team);
        const auto [begin, end] = slice(ops.size(), cfg.num_workers, w);
        std::uint64_t mine_true = 0;
        try {
          for (std::size_t i = begin; i < end; ++i) {
            const Op& op = ops[i];
            bool r = false;
            switch (op.kind) {
              case OpKind::Insert:
                r = sl.insert(team, op.key, op.value);
                break;
              case OpKind::Delete:
                r = sl.erase(team, op.key);
                break;
              case OpKind::Contains:
                r = sl.contains(team, op.key);
                break;
            }
            if (r) ++mine_true;
            if (cfg.results != nullptr) {
              (*cfg.results)[i] = r ? 1 : 0;
            }
          }
        } catch (const std::bad_alloc&) {
          oom.store(true, std::memory_order_relaxed);
        }
        ops_true.fetch_add(mine_true, std::memory_order_relaxed);
        counters[static_cast<std::size_t>(w)] = team.counters();
        warp->leave(lane_team);
      });
    }
    for (auto& t : threads) t.join();
  }
  const auto t1 = Clock::now();

  res.sim_wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  res.ops_true = ops_true.load(std::memory_order_relaxed);
  res.out_of_memory = oom.load(std::memory_order_relaxed);
  for (const auto& c : counters) res.team_totals += c;

  res.kernel.ops = ops.size();
  res.kernel.mem = mem.snapshot() - before;
  res.kernel.mem_epochs = res.kernel.mem.warp_reads + res.kernel.mem.atomics;
  res.kernel.warp_steps = res.team_totals.instructions;
  res.kernel.lock_spins = res.team_totals.lock_spins;
  return res;
}

RunResult run_mc(baseline::McSkiplist& sl, const std::vector<Op>& ops,
                 const RunConfig& cfg, device::DeviceMemory& mem) {
  RunResult res;
  if (cfg.flush_cache_before) mem.flush_cache();
  const device::MemStats before = mem.snapshot();
  if (cfg.results != nullptr) cfg.results->assign(ops.size(), 0);
  std::atomic<std::uint64_t> ops_true{0};
  std::atomic<std::uint64_t> warp_epochs{0};
  std::atomic<bool> oom{false};

  const auto t0 = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(cfg.num_workers));
    for (int w = 0; w < cfg.num_workers; ++w) {
      threads.emplace_back([&, w] {
        baseline::McContext ctx(w);
        if (cfg.scheduler != nullptr) cfg.scheduler->enter(w);
        const auto [begin, end] = slice(ops.size(), cfg.num_workers, w);
        std::uint64_t mine_true = 0;
        try {
          for (std::size_t i = begin; i < end; ++i) {
            const Op& op = ops[i];
            bool r = false;
            switch (op.kind) {
              case OpKind::Insert:
                r = sl.insert(ctx, op.key, op.value, op.mc_height);
                break;
              case OpKind::Delete:
                r = sl.erase(ctx, op.key);
                break;
              case OpKind::Contains:
                r = sl.contains(ctx, op.key);
                break;
            }
            if (r) ++mine_true;
            if (cfg.results != nullptr) {
              (*cfg.results)[i] = r ? 1 : 0;
            }
          }
        } catch (const std::bad_alloc&) {
          oom.store(true, std::memory_order_relaxed);
        } catch (const sched::TeamKilled&) {
        }
        ops_true.fetch_add(mine_true, std::memory_order_relaxed);
        warp_epochs.fetch_add(ctx.warp_epochs(), std::memory_order_relaxed);
        if (cfg.scheduler != nullptr) cfg.scheduler->leave(w);
      });
    }
    for (auto& t : threads) t.join();
  }
  const auto t1 = Clock::now();

  res.sim_wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  res.ops_true = ops_true.load(std::memory_order_relaxed);
  res.out_of_memory = oom.load(std::memory_order_relaxed);

  res.kernel.ops = ops.size();
  res.kernel.mem = mem.snapshot() - before;
  // Divergence model: a warp of 32 independent lanes advances at its slowest
  // lane; the contexts already folded per-op hop counts into warp epochs.
  // Atomics serialize on top of that (§2.2 "Synchronization").
  res.kernel.mem_epochs =
      warp_epochs.load(std::memory_order_relaxed) + res.kernel.mem.atomics;
  res.kernel.warp_steps = res.kernel.mem_epochs * kMcInstrPerHop;
  res.kernel.lock_spins = 0;  // lock-free
  return res;
}

}  // namespace gfsl::harness
