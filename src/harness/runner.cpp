#include "harness/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <new>
#include <stdexcept>
#include <thread>

#include "harness/workload.h"
#include "sched/batch_dispatch.h"

namespace gfsl::harness {

namespace {

using Clock = std::chrono::steady_clock;

/// Instruction-issue proxy for an M&C warp: lockstep instructions per
/// serialized hop epoch (compare + address arithmetic + branch per level
/// step, executed by the warp at the pace of its slowest lane).
constexpr std::uint64_t kMcInstrPerHop = 8;

std::pair<std::size_t, std::size_t> slice(std::size_t total, int workers,
                                          int w) {
  const std::size_t base = total / static_cast<std::size_t>(workers);
  const std::size_t extra = total % static_cast<std::size_t>(workers);
  const auto uw = static_cast<std::size_t>(w);
  const std::size_t begin = uw * base + std::min(uw, extra);
  const std::size_t len = base + (uw < extra ? 1 : 0);
  return {begin, begin + len};
}

/// Pre-flight for the optional telemetry sinks: every worker needs its own
/// shard (shards are single-writer) and trace ring (created before the
/// threads spawn so attachment is race-free).
void prepare_obs(const RunConfig& cfg) {
  if (cfg.metrics != nullptr && cfg.metrics->shards() < cfg.num_workers) {
    throw std::invalid_argument(
        "metrics registry needs at least one shard per worker");
  }
  if (cfg.trace != nullptr) cfg.trace->ensure(cfg.num_workers);
}

/// SIMT-event totals (ballot/shfl/divergence rates, lock events) folded into
/// the worker's shard once at the end of the run — no hot-path cost.
void fold_team_counters(obs::MetricsShard* shard,
                        const simt::TeamCounters& c) {
  if (shard == nullptr) return;
  shard->add(obs::kInstructions, c.instructions);
  shard->add(obs::kBallots, c.ballots);
  shard->add(obs::kShfls, c.shfls);
  shard->add(obs::kDivergentBranches, c.divergent_branches);
  shard->add(obs::kLockAcquires, c.lock_acquires);
  shard->add(obs::kLockSpins, c.lock_spins);
  shard->add(obs::kRestarts, c.restarts);
}

const obs::OpIds& op_ids(OpKind kind) {
  switch (kind) {
    case OpKind::Insert: return obs::kInsertOp;
    case OpKind::Delete: return obs::kEraseOp;
    case OpKind::Contains: break;
  }
  return obs::kContainsOp;
}

}  // namespace

RunResult run_gfsl(core::Gfsl& sl, const std::vector<Op>& ops,
                   const RunConfig& cfg, device::DeviceMemory& mem) {
  RunResult res;
  prepare_obs(cfg);
  if (cfg.flush_cache_before) mem.flush_cache();
  const device::MemStats before = mem.snapshot();
  if (cfg.results != nullptr) cfg.results->assign(ops.size(), 0);
  std::atomic<std::uint64_t> ops_true{0};
  std::atomic<bool> oom{false};

  std::vector<simt::TeamCounters> counters(
      static_cast<std::size_t>(cfg.num_workers));

  const auto t0 = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(cfg.num_workers));
    for (int w = 0; w < cfg.num_workers; ++w) {
      threads.emplace_back([&, w] {
        simt::Team team(sl.team_size(), w, cfg.seed);
        obs::MetricsShard* shard =
            cfg.metrics != nullptr ? &cfg.metrics->shard(w) : nullptr;
        if (shard != nullptr) team.set_metrics(shard);
        if (cfg.trace != nullptr) team.set_trace(cfg.trace->team(w));
        if (cfg.scheduler != nullptr) cfg.scheduler->enter(w);
        const auto [begin, end] =
            slice(ops.size(), cfg.num_workers, w);
        std::uint64_t mine_true = 0;
        try {
          for (std::size_t i = begin; i < end; ++i) {
            const Op& op = ops[i];
            bool r = false;
            switch (op.kind) {
              case OpKind::Insert:
                r = sl.insert(team, op.key, op.value);
                break;
              case OpKind::Delete:
                r = sl.erase(team, op.key);
                break;
              case OpKind::Contains:
                r = sl.contains(team, op.key);
                break;
            }
            if (r) ++mine_true;
            if (cfg.results != nullptr) {
              (*cfg.results)[i] = r ? 1 : 0;
            }
          }
        } catch (const std::bad_alloc&) {
          oom.store(true, std::memory_order_relaxed);
        } catch (const sched::TeamKilled&) {
          // Failure injection: abandon remaining work.
        }
        ops_true.fetch_add(mine_true, std::memory_order_relaxed);
        counters[static_cast<std::size_t>(w)] = team.counters();
        fold_team_counters(shard, team.counters());
        if (cfg.scheduler != nullptr) cfg.scheduler->leave(w);
      });
    }
    for (auto& t : threads) t.join();
  }
  const auto t1 = Clock::now();

  res.sim_wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  res.ops_true = ops_true.load(std::memory_order_relaxed);
  res.out_of_memory = oom.load(std::memory_order_relaxed);
  for (const auto& c : counters) res.team_totals += c;

  res.kernel.ops = ops.size();
  res.kernel.mem = mem.snapshot() - before;
  // A coalesced team read is one serialized wait; so is each atomic.
  res.kernel.mem_epochs = res.kernel.mem.warp_reads + res.kernel.mem.atomics;
  res.kernel.warp_steps = res.team_totals.instructions;
  res.kernel.lock_spins = res.team_totals.lock_spins;
  return res;
}

RunResult run_gfsl_batched(core::Gfsl& sl, const std::vector<Op>& ops,
                           const RunConfig& cfg, device::DeviceMemory& mem,
                           const BatchRunOptions& opts,
                           core::BatchResult* batch_out) {
  RunResult res;
  prepare_obs(cfg);
  if (cfg.flush_cache_before) mem.flush_cache();
  const device::MemStats before = mem.snapshot();
  if (cfg.results != nullptr) cfg.results->assign(ops.size(), 0);

  std::vector<std::uint8_t> outcomes(
      ops.size(), static_cast<std::uint8_t>(core::BatchOpStatus::kSkipped));
  const auto batches = batch_slices(ops.size(), opts.batch_size);
  const std::size_t nb = batches.size();
  const int workers = cfg.num_workers;

  std::vector<simt::TeamCounters> counters(static_cast<std::size_t>(workers));
  std::vector<core::ShardExecStats> worker_stats(
      static_cast<std::size_t>(workers));
  std::vector<std::uint64_t> worker_steals(static_cast<std::size_t>(workers),
                                           0);
  std::atomic<bool> oom{false};

  const auto t0 = Clock::now();
  // Host-side batch prep: sort + shard every launch (this is the work a GPU
  // driver would do — or a tiny sort kernel — between launches; it is timed
  // as part of the batched run so the A/B against per-op dispatch is fair).
  std::vector<sched::ShardPlan> plans(nb);
  std::vector<std::unique_ptr<sched::ShardQueue>> queues(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    plans[b] = sched::plan_shards(ops.data() + batches[b].first,
                                  batches[b].second - batches[b].first,
                                  workers, opts.target_shard_ops);
    queues[b] = std::make_unique<sched::ShardQueue>(plans[b]);
  }

  // One thread per team for the whole run: StepScheduler::enter is not
  // re-entrant (the start barrier fires exactly once), so batches are
  // separated by a yielding spin barrier instead of join/respawn.  Killed
  // teams are excused from every subsequent barrier via `dead`.
  auto arrived = std::make_unique<std::atomic<int>[]>(nb);
  for (std::size_t b = 0; b < nb; ++b) arrived[b].store(0);
  std::atomic<int> dead{0};

  // Whole-batch MVCC revision, same protocol as core::run_batch: the first
  // worker to reach batch b claims a batch commit slot and publishes one
  // revision for the whole launch; every shard stamps it, so a snapshot sees
  // none or all of the batch.  The revision stays in-flight (invisible to
  // stable_rev) until the batch barrier clears; exactly one survivor ends
  // it, and the host sweeps up after killed teams post-join.  Slot
  // exhaustion (or no SnapshotManager) degrades to per-op revisions (rev 0).
  constexpr core::Rev kRevUnset = ~core::Rev{0};
  core::SnapshotManager* snaps = sl.snapshots();
  auto brev = std::make_unique<std::atomic<core::Rev>[]>(nb);
  auto bslot = std::make_unique<std::atomic<int>[]>(nb);
  auto bclaim = std::make_unique<std::atomic<int>[]>(nb);
  auto bended = std::make_unique<std::atomic<int>[]>(nb);
  for (std::size_t b = 0; b < nb; ++b) {
    brev[b].store(snaps != nullptr ? kRevUnset : 0);
    bslot[b].store(-1);
    bclaim[b].store(0);
    bended[b].store(0);
  }
  auto end_batch_commit = [&](std::size_t b) {
    if (snaps == nullptr) return;
    if (bended[b].exchange(1, std::memory_order_acq_rel) != 0) return;
    const int s = bslot[b].load(std::memory_order_acquire);
    if (s >= 0) {
      snaps->end_commit(s);
      snaps->release_batch_slot(s);
    }
  };

  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        simt::Team team(sl.team_size(), w, cfg.seed);
        obs::MetricsShard* shard =
            cfg.metrics != nullptr ? &cfg.metrics->shard(w) : nullptr;
        if (shard != nullptr) team.set_metrics(shard);
        if (cfg.trace != nullptr) team.set_trace(cfg.trace->team(w));
        if (cfg.scheduler != nullptr) cfg.scheduler->enter(w);
        core::ShardExecStats mine;
        std::uint64_t mine_steals = 0;
        try {
          for (std::size_t b = 0; b < nb; ++b) {
            const std::size_t off = batches[b].first;
            // Publish (or wait for) this launch's whole-batch revision.
            core::Rev rev = brev[b].load(std::memory_order_acquire);
            if (rev == kRevUnset) {
              int claim = 0;
              if (bclaim[b].compare_exchange_strong(
                      claim, 1, std::memory_order_acq_rel)) {
                const int bs = snaps->acquire_batch_slot();
                core::Rev r = 0;
                if (bs >= 0) {
                  bslot[b].store(bs, std::memory_order_release);
                  r = snaps->begin_commit(bs);
                }
                brev[b].store(r, std::memory_order_release);
                rev = r;
              } else {
                while ((rev = brev[b].load(std::memory_order_acquire)) ==
                       kRevUnset) {
                  if (cfg.scheduler != nullptr) {
                    cfg.scheduler->yield(w);  // may throw TeamKilled
                  } else {
                    std::this_thread::yield();
                  }
                }
              }
            }
            int s;
            bool stolen = false;
            while ((s = queues[b]->pop(w, &stolen)) >= 0) {
              const auto& sh = plans[b].shards[static_cast<std::size_t>(s)];
              if (stolen) {
                ++mine_steals;
                team.metric(obs::kBatchShardsStolen);
              }
              const core::ShardExecStats ex = sl.execute_shard(
                  team, ops.data() + off, plans[b].order.data(), sh.begin,
                  sh.end, outcomes.data() + off, nullptr, rev);
              mine.reuses += ex.reuses;
              mine.fulls += ex.fulls;
              mine.pins += ex.pins;
              mine.applied_true += ex.applied_true;
              if (ex.out_of_memory) oom.store(true, std::memory_order_relaxed);
            }
            // Batch boundary: a launch completes before the next begins.
            arrived[b].fetch_add(1, std::memory_order_acq_rel);
            while (arrived[b].load(std::memory_order_acquire) +
                       dead.load(std::memory_order_acquire) <
                   workers) {
              if (cfg.scheduler != nullptr) {
                cfg.scheduler->yield(w);  // may throw TeamKilled
              } else {
                std::this_thread::yield();
              }
            }
            // Every shard of the launch has retired; the batch's revision
            // becomes stable in one step.
            end_batch_commit(b);
          }
        } catch (const sched::TeamKilled&) {
          // Failure injection: excuse this team from remaining barriers.
          dead.fetch_add(1, std::memory_order_acq_rel);
        }
        worker_stats[static_cast<std::size_t>(w)] = mine;
        worker_steals[static_cast<std::size_t>(w)] = mine_steals;
        counters[static_cast<std::size_t>(w)] = team.counters();
        fold_team_counters(shard, team.counters());
        if (cfg.scheduler != nullptr) cfg.scheduler->leave(w);
      });
    }
    for (auto& t : threads) t.join();
  }
  // Killed teams may have left batch commits in flight; a stuck in-flight
  // revision would pin stable_rev (and every future snapshot) forever.
  for (std::size_t b = 0; b < nb; ++b) {
    if (snaps != nullptr &&
        brev[b].load(std::memory_order_acquire) != kRevUnset) {
      end_batch_commit(b);
    }
  }
  const auto t1 = Clock::now();

  res.sim_wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  res.out_of_memory = oom.load(std::memory_order_relaxed);
  for (const auto& c : counters) res.team_totals += c;
  for (const auto& st : worker_stats) res.ops_true += st.applied_true;

  if (cfg.results != nullptr) {
    for (std::size_t i = 0; i < ops.size(); ++i) {
      (*cfg.results)[i] =
          outcomes[i] == static_cast<std::uint8_t>(core::BatchOpStatus::kTrue)
              ? 1
              : 0;
    }
  }
  if (batch_out != nullptr) {
    batch_out->outcomes = std::move(outcomes);
    batch_out->out_of_memory = res.out_of_memory;
    core::BatchStats& bs = batch_out->stats;
    bs = core::BatchStats{};
    bs.ops = ops.size();
    for (std::size_t b = 0; b < nb; ++b) {
      bs.shards += plans[b].shards.size();
      for (const auto& sh : plans[b].shards) {
        bs.shard_sizes.push_back(sh.end - sh.begin);
      }
    }
    for (const auto& st : worker_stats) {
      bs.descent_reuses += st.reuses;
      bs.full_descents += st.fulls;
      bs.epoch_pins += st.pins;
    }
    for (const std::uint64_t s : worker_steals) bs.steals += s;
  }

  res.kernel.ops = ops.size();
  res.kernel.mem = mem.snapshot() - before;
  res.kernel.mem_epochs = res.kernel.mem.warp_reads + res.kernel.mem.atomics;
  res.kernel.warp_steps = res.team_totals.instructions;
  res.kernel.lock_spins = res.team_totals.lock_spins;
  return res;
}

RunResult run_gfsl_paired(core::Gfsl& sl, const std::vector<Op>& ops,
                          const RunConfig& cfg, device::DeviceMemory& mem) {
  RunResult res;
  if (cfg.num_workers < 2 || cfg.num_workers % 2 != 0) {
    throw std::invalid_argument("paired execution needs an even worker count");
  }
  prepare_obs(cfg);
  if (cfg.flush_cache_before) mem.flush_cache();
  const device::MemStats before = mem.snapshot();
  if (cfg.results != nullptr) cfg.results->assign(ops.size(), 0);
  std::atomic<std::uint64_t> ops_true{0};
  std::atomic<bool> oom{false};

  const int pairs = cfg.num_workers / 2;
  std::vector<std::unique_ptr<sched::StepScheduler>> warp_sched;
  warp_sched.reserve(static_cast<std::size_t>(pairs));
  for (int p = 0; p < pairs; ++p) {
    warp_sched.push_back(std::make_unique<sched::StepScheduler>(
        sched::StepScheduler::Mode::RoundRobin, cfg.seed, 2));
  }

  std::vector<simt::TeamCounters> counters(
      static_cast<std::size_t>(cfg.num_workers));

  const auto t0 = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(cfg.num_workers));
    for (int w = 0; w < cfg.num_workers; ++w) {
      threads.emplace_back([&, w] {
        sched::StepScheduler* warp = warp_sched[static_cast<std::size_t>(w / 2)].get();
        const int lane_team = w % 2;
        simt::Team team(sl.team_size(), w, cfg.seed);
        obs::MetricsShard* shard =
            cfg.metrics != nullptr ? &cfg.metrics->shard(w) : nullptr;
        if (shard != nullptr) team.set_metrics(shard);
        if (cfg.trace != nullptr) team.set_trace(cfg.trace->team(w));
        team.set_yield_hook([warp, lane_team] { warp->yield(lane_team); });
        warp->enter(lane_team);
        const auto [begin, end] = slice(ops.size(), cfg.num_workers, w);
        std::uint64_t mine_true = 0;
        try {
          for (std::size_t i = begin; i < end; ++i) {
            const Op& op = ops[i];
            bool r = false;
            switch (op.kind) {
              case OpKind::Insert:
                r = sl.insert(team, op.key, op.value);
                break;
              case OpKind::Delete:
                r = sl.erase(team, op.key);
                break;
              case OpKind::Contains:
                r = sl.contains(team, op.key);
                break;
            }
            if (r) ++mine_true;
            if (cfg.results != nullptr) {
              (*cfg.results)[i] = r ? 1 : 0;
            }
          }
        } catch (const std::bad_alloc&) {
          oom.store(true, std::memory_order_relaxed);
        }
        ops_true.fetch_add(mine_true, std::memory_order_relaxed);
        counters[static_cast<std::size_t>(w)] = team.counters();
        fold_team_counters(shard, team.counters());
        warp->leave(lane_team);
      });
    }
    for (auto& t : threads) t.join();
  }
  const auto t1 = Clock::now();

  res.sim_wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  res.ops_true = ops_true.load(std::memory_order_relaxed);
  res.out_of_memory = oom.load(std::memory_order_relaxed);
  for (const auto& c : counters) res.team_totals += c;

  res.kernel.ops = ops.size();
  res.kernel.mem = mem.snapshot() - before;
  res.kernel.mem_epochs = res.kernel.mem.warp_reads + res.kernel.mem.atomics;
  res.kernel.warp_steps = res.team_totals.instructions;
  res.kernel.lock_spins = res.team_totals.lock_spins;
  return res;
}

RunResult run_mc(baseline::McSkiplist& sl, const std::vector<Op>& ops,
                 const RunConfig& cfg, device::DeviceMemory& mem) {
  RunResult res;
  prepare_obs(cfg);
  if (cfg.flush_cache_before) mem.flush_cache();
  const device::MemStats before = mem.snapshot();
  if (cfg.results != nullptr) cfg.results->assign(ops.size(), 0);
  std::atomic<std::uint64_t> ops_true{0};
  std::atomic<std::uint64_t> warp_epochs{0};
  std::atomic<bool> oom{false};

  const auto t0 = Clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(cfg.num_workers));
    for (int w = 0; w < cfg.num_workers; ++w) {
      threads.emplace_back([&, w] {
        baseline::McContext ctx(w);
        obs::MetricsShard* shard =
            cfg.metrics != nullptr ? &cfg.metrics->shard(w) : nullptr;
        if (cfg.scheduler != nullptr) cfg.scheduler->enter(w);
        const auto [begin, end] = slice(ops.size(), cfg.num_workers, w);
        std::uint64_t mine_true = 0;
        try {
          for (std::size_t i = begin; i < end; ++i) {
            const Op& op = ops[i];
            // M&C ops run per-lane (no Team), so op latency is recorded here
            // rather than by an OpScope in the structure; "steps" are the
            // context's serialized warp epochs.
            Clock::time_point op_t0;
            std::uint64_t op_e0 = 0;
            if (shard != nullptr) {
              op_t0 = Clock::now();
              op_e0 = ctx.warp_epochs();
            }
            bool r = false;
            switch (op.kind) {
              case OpKind::Insert:
                r = sl.insert(ctx, op.key, op.value, op.mc_height);
                break;
              case OpKind::Delete:
                r = sl.erase(ctx, op.key);
                break;
              case OpKind::Contains:
                r = sl.contains(ctx, op.key);
                break;
            }
            if (shard != nullptr) {
              const obs::OpIds& ids = op_ids(op.kind);
              shard->add(ids.count);
              if (r) shard->add(ids.value);
              shard->record(
                  ids.wall_ns,
                  static_cast<std::uint64_t>(
                      std::chrono::duration_cast<std::chrono::nanoseconds>(
                          Clock::now() - op_t0)
                          .count()));
              shard->record(ids.steps, ctx.warp_epochs() - op_e0);
            }
            if (r) ++mine_true;
            if (cfg.results != nullptr) {
              (*cfg.results)[i] = r ? 1 : 0;
            }
          }
        } catch (const std::bad_alloc&) {
          oom.store(true, std::memory_order_relaxed);
        } catch (const sched::TeamKilled&) {
        }
        ops_true.fetch_add(mine_true, std::memory_order_relaxed);
        warp_epochs.fetch_add(ctx.warp_epochs(), std::memory_order_relaxed);
        if (cfg.scheduler != nullptr) cfg.scheduler->leave(w);
      });
    }
    for (auto& t : threads) t.join();
  }
  const auto t1 = Clock::now();

  res.sim_wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  res.ops_true = ops_true.load(std::memory_order_relaxed);
  res.out_of_memory = oom.load(std::memory_order_relaxed);

  res.kernel.ops = ops.size();
  res.kernel.mem = mem.snapshot() - before;
  // Divergence model: a warp of 32 independent lanes advances at its slowest
  // lane; the contexts already folded per-op hop counts into warp epochs.
  // Atomics serialize on top of that (§2.2 "Synchronization").
  res.kernel.mem_epochs =
      warp_epochs.load(std::memory_order_relaxed) + res.kernel.mem.atomics;
  res.kernel.warp_steps = res.kernel.mem_epochs * kMcInstrPerHop;
  res.kernel.lock_spins = 0;  // lock-free
  return res;
}

}  // namespace gfsl::harness
