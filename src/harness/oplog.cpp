#include "harness/oplog.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace gfsl::harness {

namespace {
constexpr char kHeader[] = "gfsl-oplog v1";

char kind_char(OpKind k) {
  switch (k) {
    case OpKind::Insert: return 'I';
    case OpKind::Delete: return 'D';
    case OpKind::Contains: return 'C';
  }
  return '?';
}
}  // namespace

void save_oplog(std::ostream& os, const std::vector<Op>& ops) {
  os << kHeader << '\n';
  os << "# " << ops.size() << " operations\n";
  for (const Op& op : ops) {
    os << kind_char(op.kind) << ' ' << op.key << ' ' << op.value << ' '
       << static_cast<int>(op.mc_height) << '\n';
  }
}

void save_oplog_file(const std::string& path, const std::vector<Op>& ops) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  save_oplog(f, ops);
}

std::vector<Op> load_oplog(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::runtime_error("not a gfsl-oplog v1 file");
  }
  std::vector<Op> ops;
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    char kind = 0;
    unsigned long long key = 0, value = 0;
    int height = 0;
    if (!(ss >> kind >> key >> value >> height)) {
      throw std::runtime_error("malformed record at line " +
                               std::to_string(lineno));
    }
    Op op{};
    switch (kind) {
      case 'I': op.kind = OpKind::Insert; break;
      case 'D': op.kind = OpKind::Delete; break;
      case 'C': op.kind = OpKind::Contains; break;
      default:
        throw std::runtime_error("unknown op kind '" + std::string(1, kind) +
                                 "' at line " + std::to_string(lineno));
    }
    if (key < MIN_USER_KEY || key > MAX_USER_KEY) {
      throw std::runtime_error("key out of range at line " +
                               std::to_string(lineno));
    }
    op.key = static_cast<Key>(key);
    op.value = static_cast<Value>(value);
    op.mc_height = static_cast<std::uint8_t>(
        height < 1 ? 1 : (height > 32 ? 32 : height));
    ops.push_back(op);
  }
  return ops;
}

std::vector<Op> load_oplog_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open: " + path);
  return load_oplog(f);
}

}  // namespace gfsl::harness
