// Workload generation (§5.1).
//
// "Mixtures are represented as tuples [i, d, c] signifying a set of random
//  operations with a probability of i% Inserts, d% Deletes, and c% Contains.
//  ...  The operation type and keys for each entry are generated using
//  uniform random functions. ...  The initial structure on which the
//  mixed-operation tests are performed contains a random set of keys, exactly
//  half the size of the key range."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace gfsl::harness {

struct Mix {
  int insert_pct;
  int delete_pct;
  int contains_pct;

  std::string name() const;
};

/// The four mixed-op distributions of Figures 5.2/5.3 …
inline constexpr Mix kMix_1_1_98{1, 1, 98};
inline constexpr Mix kMix_5_5_90{5, 5, 90};
inline constexpr Mix kMix_10_10_80{10, 10, 80};
inline constexpr Mix kMix_20_20_60{20, 20, 60};
/// … and the single-op-type tests of Figure 5.4.
inline constexpr Mix kInsertOnly{100, 0, 0};
inline constexpr Mix kDeleteOnly{0, 100, 0};
inline constexpr Mix kContainsOnly{0, 0, 100};
/// Pure churn: the steady-state insert/erase mix the reclamation soaks use
/// (live size stays near the prefill while every op allocates or retires).
inline constexpr Mix kMix_50_50_0{50, 50, 0};

enum class Prefill {
  Empty,      // Insert-only benchmark
  HalfRange,  // mixed-op benchmarks: a random half of the key range
  FullRange,  // Contains-only / Delete-only benchmarks
};

struct WorkloadConfig {
  Mix mix = kMix_10_10_80;
  std::uint64_t key_range = 1'000'000;
  std::uint64_t num_ops = 100'000;
  Prefill prefill = Prefill::HalfRange;
  std::uint64_t seed = 1;
  // M&C host-side tower heights (§5.1: the op array carries the level).
  double p_key = 0.5;
  int mc_max_height = 32;
};

/// The per-launch operation array.
std::vector<Op> generate_ops(const WorkloadConfig& cfg);

/// Sorted, distinct <key, value> prefill pairs per the config's Prefill mode.
std::vector<std::pair<Key, Value>> generate_prefill(const WorkloadConfig& cfg);

/// The prefill policy the paper pairs with each mix.
Prefill default_prefill(const Mix& mix);

/// Cut a `num_ops`-long op array into contiguous kernel launches of
/// `batch_size` ops (the last one may be short).  `batch_size` 0 means one
/// batch covering everything.  Returned as half-open [begin, end) ranges.
std::vector<std::pair<std::size_t, std::size_t>> batch_slices(
    std::size_t num_ops, std::size_t batch_size);

}  // namespace gfsl::harness
