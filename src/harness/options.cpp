#include "harness/options.h"

#include <cstdlib>
#include <stdexcept>

namespace gfsl::harness {

Options Options::parse(int argc, const char* const* argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      o.positionals_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) throw std::invalid_argument("bare '--' argument");
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      o.values_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // "--key value" when the next token is not an option; "--flag" otherwise.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      o.values_[body] = argv[++i];
    } else {
      o.values_[body] = "true";
    }
  }
  return o;
}

bool Options::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Options::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::uint64_t Options::get_u64(const std::string& name,
                               std::uint64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const auto v = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str()) return fallback;
  return static_cast<std::uint64_t>(v);
}

double Options::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str()) return fallback;
  return v;
}

bool Options::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Options::unknown(
    const std::set<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) {
    if (known.count(k) == 0) out.push_back(k);
  }
  return out;
}

}  // namespace gfsl::harness
