#include "harness/workload.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "common/random.h"

namespace gfsl::harness {

std::string Mix::name() const {
  return "[" + std::to_string(insert_pct) + "," + std::to_string(delete_pct) +
         "," + std::to_string(contains_pct) + "]";
}

Prefill default_prefill(const Mix& mix) {
  if (mix.insert_pct == 100) return Prefill::Empty;
  if (mix.contains_pct == 100 || mix.delete_pct == 100) {
    return Prefill::FullRange;
  }
  return Prefill::HalfRange;
}

std::vector<Op> generate_ops(const WorkloadConfig& cfg) {
  if (cfg.mix.insert_pct + cfg.mix.delete_pct + cfg.mix.contains_pct != 100) {
    throw std::invalid_argument("operation mix must sum to 100");
  }
  if (cfg.key_range == 0 || cfg.key_range > MAX_USER_KEY) {
    throw std::invalid_argument("key range out of bounds");
  }
  Xoshiro256ss rng(derive_seed(cfg.seed, 0xA11));
  std::vector<Op> ops;
  ops.reserve(cfg.num_ops);
  for (std::uint64_t i = 0; i < cfg.num_ops; ++i) {
    Op op{};
    const auto dice = static_cast<int>(rng.below(100));
    if (dice < cfg.mix.insert_pct) {
      op.kind = OpKind::Insert;
    } else if (dice < cfg.mix.insert_pct + cfg.mix.delete_pct) {
      op.kind = OpKind::Delete;
    } else {
      op.kind = OpKind::Contains;
    }
    op.key = static_cast<Key>(1 + rng.below(cfg.key_range));
    op.value = 0;  // "Insert operations use NULL as the value" (§5.1)
    // Host-side tower height for M&C (geometric at p_key).
    int h = 1;
    while (h < cfg.mc_max_height && rng.bernoulli(cfg.p_key)) ++h;
    op.mc_height = static_cast<std::uint8_t>(h);
    ops.push_back(op);
  }
  return ops;
}

std::vector<std::pair<Key, Value>> generate_prefill(const WorkloadConfig& cfg) {
  std::vector<std::pair<Key, Value>> out;
  if (cfg.prefill == Prefill::Empty) return out;

  if (cfg.prefill == Prefill::FullRange) {
    out.reserve(cfg.key_range);
    for (std::uint64_t k = 1; k <= cfg.key_range; ++k) {
      out.emplace_back(static_cast<Key>(k), Value{0});
    }
    return out;
  }

  // HalfRange: "a random set of keys, exactly half the size of the key
  // range".  Partial Fisher-Yates selects exactly range/2 distinct keys.
  Xoshiro256ss rng(derive_seed(cfg.seed, 0xF177));
  const std::uint64_t n = cfg.key_range;
  const std::uint64_t take = n / 2;
  std::vector<Key> keys(n);
  std::iota(keys.begin(), keys.end(), Key{1});
  for (std::uint64_t i = 0; i < take; ++i) {
    const std::uint64_t j = i + rng.below(n - i);
    std::swap(keys[i], keys[j]);
  }
  keys.resize(take);
  std::sort(keys.begin(), keys.end());
  out.reserve(take);
  for (const Key k : keys) out.emplace_back(k, Value{0});
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> batch_slices(
    std::size_t num_ops, std::size_t batch_size) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  if (num_ops == 0) return out;
  if (batch_size == 0) batch_size = num_ops;
  for (std::size_t begin = 0; begin < num_ops; begin += batch_size) {
    out.emplace_back(begin, std::min(num_ops, begin + batch_size));
  }
  return out;
}

}  // namespace gfsl::harness
