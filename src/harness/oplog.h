// Operation-log serialization: save the exact op array of a run to a text
// file and load it back — deterministic bug reproduction across processes
// ("here is the 40-op sequence that breaks seed 7").
//
// Format (one record per line, '#' comments allowed):
//   gfsl-oplog v1
//   I <key> <value> <mc_height>
//   D <key> 0 <mc_height>
//   C <key> 0 <mc_height>
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace gfsl::harness {

void save_oplog(std::ostream& os, const std::vector<Op>& ops);
void save_oplog_file(const std::string& path, const std::vector<Op>& ops);

/// Throws std::runtime_error on malformed input (bad header, bad record).
std::vector<Op> load_oplog(std::istream& is);
std::vector<Op> load_oplog_file(const std::string& path);

}  // namespace gfsl::harness
