#include "harness/crash_sweep.h"

#include <atomic>
#include <thread>
#include <vector>

#include <memory>

#include "core/gfsl.h"
#include "core/snapshot.h"
#include "device/device_memory.h"
#include "harness/history.h"
#include "harness/postmortem.h"
#include "harness/workload.h"
#include "sched/batch_dispatch.h"
#include "sched/lease.h"
#include "sched/step_scheduler.h"
#include "simt/trace.h"

namespace gfsl::harness {

namespace {

// Bridges execute_shard's per-op hooks into the HistoryLog, and remembers the
// in-flight op so a TeamKilled unwind can record it as crashed (optional in
// the linearizability check — recovery may roll it either way).  An op
// abandoned on pool exhaustion is logged the same way: it began but never
// produced a response, so "optional" is exactly its contract.
class HistoryObserver final : public core::BatchOpObserver {
 public:
  HistoryObserver(HistoryLog& log, int worker) : log_(log), w_(worker) {}

  void on_begin(std::uint32_t /*idx*/, const Op& op) override {
    cur_ = &op;
    tick_ = log_.begin_op();
  }
  void on_end(std::uint32_t /*idx*/, const Op& op, bool result) override {
    log_.end_op(w_, tick_, op.kind, op.key, result);
    cur_ = nullptr;
  }
  void on_skipped(std::uint32_t /*idx*/, const Op& op) override {
    log_.crash_op(w_, tick_, op.kind, op.key);
    cur_ = nullptr;
  }

  void record_crash() {
    if (cur_ != nullptr) {
      log_.crash_op(w_, tick_, cur_->kind, cur_->key);
      cur_ = nullptr;
    }
  }

 private:
  HistoryLog& log_;
  int w_;
  const Op* cur_ = nullptr;
  std::uint64_t tick_ = 0;
};

}  // namespace

CrashRunResult run_crash_at(const CrashSweepConfig& cfg,
                            std::uint64_t kill_step,
                            std::uint64_t watchdog_step,
                            obs::MetricsRegistry* reg) {
  CrashRunResult res;
  device::DeviceMemory mem;
  sched::LeaseTable leases;
  sched::StepScheduler sched(sched::StepScheduler::Mode::Deterministic,
                             cfg.sched_seed, cfg.workers);
  sched.attach_leases(&leases);
  if (kill_step != UINT64_MAX) sched.kill_at(cfg.victim, kill_step);
  if (watchdog_step != UINT64_MAX) sched.kill_all_at(watchdog_step);

  core::GfslConfig gcfg;
  gcfg.team_size = cfg.team_size;
  gcfg.pool_chunks = cfg.pool_chunks;
  device::EpochManager epochs;
  std::unique_ptr<core::SnapshotManager> snaps;
  if (cfg.with_snapshots) {
    snaps = std::make_unique<core::SnapshotManager>(gcfg.pool_chunks);
  }
  std::unique_ptr<core::ForesightIndex> foresight;
  if (cfg.with_foresight) {
    // Tiny rebuild threshold: at sweep scale (dozens of ops) a realistic
    // threshold would never republish, so hints would never be consulted.
    // Forcing frequent rebuilds puts kill steps inside the walk/publish
    // window and makes hint consultation the common path.
    foresight = std::make_unique<core::ForesightIndex>(
        gcfg.pool_chunks, /*stride=*/1, /*rebuild_threshold=*/1);
  }
  core::Gfsl sl(gcfg, &mem, &sched, &leases,
                cfg.with_epochs ? &epochs : nullptr, /*region=*/nullptr,
                snaps.get(), foresight.get());

  // Snapshot-held-across-kill: freeze a bulk-loaded prefill under a snapshot
  // before any scheduled team runs.  Every op of the workload — including
  // the one the kill interrupts and recovery rolls forward or back — commits
  // at a revision above the snapshot, so the post-run scan must reproduce
  // the prefill exactly no matter where the victim died.
  std::vector<std::pair<Key, Value>> frozen;
  core::Snapshot held;
  if (cfg.with_snapshots && cfg.prefill > 0) {
    const std::uint64_t span = cfg.key_range > 1 ? cfg.key_range : 2;
    for (std::uint64_t i = 0; i < cfg.prefill; ++i) {
      const Key k = static_cast<Key>(1 + (2 * i) % span);
      if (!frozen.empty() && frozen.back().first >= k) break;  // wrapped
      frozen.emplace_back(k, static_cast<Value>(k * 31 + 7));
    }
    sl.bulk_load(frozen);
    held = sl.snapshot();
  }

  WorkloadConfig wl;
  wl.mix = kMix_20_20_60;  // update-heavy: splits, merges, down-ptr swings
  wl.key_range = cfg.key_range;
  wl.num_ops = cfg.ops;
  wl.seed = cfg.wl_seed;
  const auto ops = generate_ops(wl);

  HistoryLog log(cfg.ops / static_cast<std::uint64_t>(cfg.workers) + 8,
                 cfg.workers);
  // Flight recorder: clockless rings (no steady-clock read per record) for
  // every team plus the medic, armed only when a postmortem sink is set.
  std::vector<std::unique_ptr<simt::TeamTrace>> rings;
  if (!cfg.postmortem_dir.empty()) {
    for (int w = 0; w <= cfg.workers; ++w) {
      rings.push_back(
          std::make_unique<simt::TeamTrace>(1024, /*timestamps=*/false));
    }
  }
  auto dump_failure = [&](const std::string& reason, const std::string& detail,
                          const core::Gfsl* structure) {
    if (cfg.postmortem_dir.empty()) return;
    PostmortemContext ctx;
    ctx.reason = reason;
    ctx.detail = detail;
    ctx.gfsl = structure;
    ctx.metrics = reg;
    for (const auto& ring : rings) ctx.rings.push_back(ring.get());
    ctx.info = {
        {"harness", "crash_sweep"},
        {"wl_seed", std::to_string(cfg.wl_seed)},
        {"sched_seed", std::to_string(cfg.sched_seed)},
        {"kill_step", std::to_string(kill_step)},
        {"watchdog_step", std::to_string(sched.watchdog_step())},
        {"watchdog_fired", sched.watchdog_fired() ? "1" : "0"},
        {"global_steps", std::to_string(sched.global_steps())},
        {"workers", std::to_string(cfg.workers)},
        {"victim", std::to_string(cfg.victim)},
        {"team_size", std::to_string(cfg.team_size)},
        {"ops", std::to_string(cfg.ops)},
        {"key_range", std::to_string(cfg.key_range)},
        {"with_epochs", cfg.with_epochs ? "1" : "0"},
        {"with_snapshots", cfg.with_snapshots ? "1" : "0"},
        {"batched", cfg.batched ? "1" : "0"},
        {"with_foresight", cfg.with_foresight ? "1" : "0"},
    };
    const std::string stem =
        "postmortem_crash_k" +
        (kill_step == UINT64_MAX ? std::string("none")
                                 : std::to_string(kill_step));
    (void)dump_postmortem(cfg.postmortem_dir, stem, ctx);
  };
  // Batched mode: the whole op array is one batch, planned once and drained
  // through a shared stealing queue — same shape as run_gfsl_batched, but
  // under the deterministic scheduler with a kill step armed.
  sched::ShardPlan plan;
  std::vector<std::uint8_t> outcomes;
  if (cfg.batched) {
    plan = sched::plan_shards(ops, cfg.workers, cfg.batch_shard_ops);
    outcomes.assign(ops.size(),
                    static_cast<std::uint8_t>(core::BatchOpStatus::kSkipped));
  }
  sched::ShardQueue queue(plan);

  std::atomic<bool> hang{false};
  std::atomic<bool> victim_killed{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < cfg.workers; ++w) {
    threads.emplace_back([&, w] {
      simt::Team team(cfg.team_size, w, 3);
      if (reg != nullptr) team.set_metrics(&reg->shard(w));
      if (!rings.empty()) team.set_trace(rings[static_cast<std::size_t>(w)].get());
      HistoryObserver observer(log, w);
      const Op* cur_op = nullptr;
      std::uint64_t cur_tick = 0;
      sched.enter(w);
      try {
        if (cfg.batched) {
          int s;
          while ((s = queue.pop(w)) >= 0) {
            const auto& shard = plan.shards[static_cast<std::size_t>(s)];
            (void)sl.execute_shard(team, ops.data(), plan.order.data(),
                                   shard.begin, shard.end, outcomes.data(),
                                   &observer);
          }
        } else {
          for (std::size_t i = static_cast<std::size_t>(w); i < ops.size();
               i += static_cast<std::size_t>(cfg.workers)) {
            const Op& op = ops[i];
            cur_op = &op;
            cur_tick = log.begin_op();
            bool r = false;
            switch (op.kind) {
              case OpKind::Insert: r = sl.insert(team, op.key, op.value); break;
              case OpKind::Delete: r = sl.erase(team, op.key); break;
              case OpKind::Contains: r = sl.contains(team, op.key); break;
            }
            log.end_op(w, cur_tick, op.kind, op.key, r);
            cur_op = nullptr;
          }
        }
        sched.leave(w);
      } catch (const sched::TeamKilled&) {
        // Killed teams must not call leave(): yield() already deactivated
        // them and handed the baton on.
        observer.record_crash();  // batched: the op execute_shard was inside
        if (cur_op != nullptr) {
          log.crash_op(w, cur_tick, cur_op->kind, cur_op->key);
        }
        if (w == cfg.victim) {
          victim_killed.store(true, std::memory_order_relaxed);
        } else {
          // Survivors only die via the watchdog: the run livelocked.
          hang.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  res.steps = sched.global_steps();
  res.victim_killed = victim_killed.load(std::memory_order_relaxed);
  if (hang.load(std::memory_order_relaxed)) {
    res.ok = false;
    res.hang = true;
    res.error = "hang: survivors hit the watchdog (step " +
                std::to_string(res.steps) + ")";
    // Every team is dead (killed or returned), so the walk is quiescent.
    dump_failure("watchdog_stall", res.error, &sl);
    return res;
  }

  // Medic pass: a FRESH team id outside the scheduled participant set.
  // Reusing the victim's id would bump its lease epoch and hide any lock
  // the survivors should have been able to steal.
  simt::Team medic(cfg.team_size, cfg.workers, 7);
  if (reg != nullptr) medic.set_metrics(&reg->shard(cfg.workers));
  if (!rings.empty()) medic.set_trace(rings.back().get());
  res.locks_recovered = sl.recover_all_expired(medic);

  const auto rep = sl.validate(/*strict=*/false);
  if (!rep.ok) {
    res.ok = false;
    res.error = "structure invalid: " + rep.error;
    dump_failure("validate_failure", res.error, &sl);
    return res;
  }
  std::vector<Key> final_keys;
  for (const auto& [k, v] : sl.collect()) final_keys.push_back(k);
  std::vector<Key> initial_keys;
  for (const auto& [k, v] : frozen) initial_keys.push_back(k);
  const auto check = check_history(log.merged(), initial_keys, final_keys);
  if (!check.ok) {
    res.ok = false;
    res.error = "history violation: " + check.error;
    dump_failure("history_violation", res.error, &sl);
    return res;
  }

  // The held snapshot survived the kill, the recovery rolls, and the medic:
  // its scan must still be exactly the frozen prefill.
  if (cfg.with_snapshots && held.open()) {
    std::vector<std::pair<Key, Value>> got;
    const auto st = sl.scan_at(medic, held, MIN_USER_KEY, MAX_USER_KEY, got);
    if (st != core::ScanAtStatus::kOk) {
      res.ok = false;
      res.error = "held snapshot expired across the kill (scan_at status " +
                  std::to_string(static_cast<int>(st)) + ")";
      dump_failure("snapshot_mismatch", res.error, &sl);
      return res;
    }
    if (got != frozen) {
      std::string detail = "held snapshot drifted: harvested " +
                           std::to_string(got.size()) + " pairs, froze " +
                           std::to_string(frozen.size());
      for (const auto& [k, v] : got) {
        bool found = false;
        for (const auto& [fk, fv] : frozen) {
          if (fk == k && fv == v) {
            found = true;
            break;
          }
        }
        if (!found) {
          detail += "; first divergence at key " + std::to_string(k);
          break;
        }
      }
      res.ok = false;
      res.error = detail;
      dump_failure("snapshot_mismatch", res.error, &sl);
      return res;
    }
    res.snapshot_checked = true;
    sl.release_snapshot(held);
  }
  return res;
}

CrashSweepResult run_crash_sweep(const CrashSweepConfig& cfg,
                                 obs::MetricsRegistry* reg,
                                 std::FILE* progress) {
  CrashSweepResult out;
  // Baseline: same seeds, no kill.  Leases are attached here too, so the
  // pre-kill prefix of every swept run replays this exact interleaving.
  const auto base = run_crash_at(cfg, UINT64_MAX, UINT64_MAX, reg);
  if (!base.ok) {
    out.ok = false;
    out.error = "baseline run failed: " + base.error;
    return out;
  }
  out.baseline_steps = base.steps;
  const std::uint64_t watchdog =
      base.steps * cfg.watchdog_factor + cfg.watchdog_slack;
  const std::uint64_t stride = cfg.stride == 0 ? 1 : cfg.stride;
  const std::uint64_t report_every =
      (base.steps / stride) / 10 + 1;  // ~10 progress lines

  std::uint64_t since_report = 0;
  for (std::uint64_t s = 1; s <= base.steps; s += stride) {
    const auto r = run_crash_at(cfg, s, watchdog, reg);
    ++out.runs;
    if (r.victim_killed) ++out.kills_landed;
    if (r.snapshot_checked) ++out.snapshot_checks;
    out.medic_recoveries += static_cast<std::uint64_t>(r.locks_recovered);
    if (!r.ok) {
      out.ok = false;
      out.failed_at_step = s;
      out.error = r.error;
      return out;
    }
    if (progress != nullptr && ++since_report >= report_every) {
      since_report = 0;
      std::fprintf(progress,
                   "  crash-sweep %llu/%llu steps (%llu kills landed, "
                   "%llu medic recoveries)\n",
                   static_cast<unsigned long long>(s),
                   static_cast<unsigned long long>(base.steps),
                   static_cast<unsigned long long>(out.kills_landed),
                   static_cast<unsigned long long>(out.medic_recoveries));
      std::fflush(progress);
    }
  }
  return out;
}

}  // namespace gfsl::harness
