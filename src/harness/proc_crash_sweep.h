// Whole-process crash sweep: fork, SIGKILL at every persist point, recover.
//
// The in-process crash sweep (crash_sweep.h) kills one *team* and lets the
// survivors repair it.  This harness kills the *process*: a forked child
// runs a seeded deterministic workload over a fresh file-backed
// device::PersistRegion with the n-th persist barrier armed to SIGKILL the
// whole process mid-protocol.  The parent then attaches the orphaned region
// file, runs Gfsl::recover() — death certificates, intent replay, upper
// scrub, free-list rebuild, strict validate — and verifies the recovered
// contents against the child's operation journal:
//
//   * the journal is an O_APPEND file of fixed 16-byte records, one 'B'
//     (begin) record written before each operation starts and one 'E' (end)
//     record after it returns, so a single write() each — atomic under
//     O_APPEND — and the record's position in the file is its logical tick;
//   * a 'B' with no matching 'E' is the op the crash caught mid-flight: it
//     enters the per-key linearizability check as *crashed* (effect
//     optional — recovery may have rolled it either way);
//   * with workers == 1 the journal is a sequential program and the check
//     tightens to an exact std::map replay: every completed op's result must
//     match, and the recovered contents must equal the model either with or
//     without the one crashed op applied.
//
// A baseline run (nothing armed) exits cleanly through mark_clean(), which
// records the workload's total persist-point count P in the superblock; the
// sweep then re-runs the same seeds P/stride times, killing at point
// 1, 1+stride, ... — every durable transition of the reference run.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace gfsl::harness {

struct ProcCrashSweepConfig {
  int workers = 2;    // child worker threads, team ids 0..workers-1
  int team_size = 8;  // chunk size = team size
  std::uint64_t ops = 160;
  std::uint64_t key_range = 64;
  std::uint64_t wl_seed = 1;
  std::uint64_t sched_seed = 1;
  std::uint32_t pool_chunks = 1u << 14;
  std::uint64_t stride = 1;  // kill at every stride-th persist point
  // Attach an EpochManager in the child: kills then also land inside
  // retire/recycle transitions and recovery must rebuild limbo accounting
  // from the generation stamps alone.
  bool with_epochs = false;
  // Attach a SnapshotManager in both child and parent: child kills then also
  // land inside version-record stamps, commit-slot windows, and durable
  // revision CAS-max updates.  After recover(), the parent opens a fresh
  // snapshot and its scan_at must equal the recovered contents exactly (the
  // chains died with the child; every surviving key resolves as legacy), and
  // the restored revision clock must be at least the durable revision —
  // failures dump a `snapshot_mismatch` postmortem.
  bool with_snapshots = false;
  // Region + journal live under this directory (must exist; files are
  // recreated per run and removed on success).
  std::string work_dir = ".";
  // Child wall-clock guard: a livelocked child is killed by its own alarm()
  // and reported as a hang.
  unsigned alarm_seconds = 120;
  // Non-empty: on a failed run, dump a gfsl-postmortem-v1 bundle of the
  // recovered (or part-recovered) structure into this directory.
  std::string postmortem_dir;
};

struct ProcCrashSweepResult {
  bool ok = true;
  std::string error;
  std::uint64_t persist_points = 0;  // kill points the baseline discovered
  std::uint64_t runs = 0;            // child runs, baseline included
  std::uint64_t kills_landed = 0;    // children that died by SIGKILL
  std::uint64_t locks_released = 0;  // summed over every recover()
  std::uint64_t intents_replayed = 0;
  std::uint64_t chunks_freed = 0;    // summed free-list rebuild sizes
  std::uint64_t failed_at_point = 0; // kill point of the first failure
};

/// The full sweep: one clean baseline child to count persist points, then
/// one forked child per swept kill point, each recovered and verified in
/// the parent.  Stops at the first failing point.  If `progress` is
/// non-null, prints a coarse progress line every ~10% of the sweep.
ProcCrashSweepResult run_proc_crash_sweep(const ProcCrashSweepConfig& cfg,
                                          std::FILE* progress = nullptr);

}  // namespace gfsl::harness
