#include "harness/session.h"

#include <stdexcept>

#include "model/occupancy.h"

namespace gfsl::harness {

GfslSession::GfslSession(const Config& cfg)
    : cfg_(cfg),
      mem_(std::make_unique<device::DeviceMemory>()),
      list_(std::make_unique<core::Gfsl>(cfg.structure, mem_.get())) {
  if (cfg_.dual_teams_per_warp) {
    if (cfg_.structure.team_size != 16) {
      throw std::invalid_argument(
          "dual-teams-per-warp needs 16-lane teams (two per 32-lane warp)");
    }
    if (cfg_.num_workers % 2 != 0) {
      throw std::invalid_argument(
          "dual-teams-per-warp needs an even worker count");
    }
  }
}

std::vector<std::uint8_t> GfslSession::launch(const std::vector<Op>& ops) {
  std::vector<std::uint8_t> results;
  RunConfig rc;
  rc.num_workers = cfg_.num_workers;
  rc.seed = derive_seed(cfg_.seed, launches_);
  rc.results = &results;
  // Each launch starts with whatever the L2 holds from the previous one —
  // consecutive kernels on a device share cache state.
  rc.flush_cache_before = (launches_ == 0);
  last_ = cfg_.dual_teams_per_warp ? run_gfsl_paired(*list_, ops, rc, *mem_)
                                   : run_gfsl(*list_, ops, rc, *mem_);
  ++launches_;
  if (last_.out_of_memory) throw std::bad_alloc();
  return results;
}

double GfslSession::modeled_mops(int warps_per_block) const {
  const model::Occupancy occ_calc;
  const auto occ = occ_calc.compute(model::kGfslKernel, warps_per_block);
  const model::CostModel cm;
  return cm
      .throughput(last_.kernel, occ, cfg_.dual_teams_per_warp ? 2 : 1)
      .mops;
}

}  // namespace gfsl::harness
