// Corruption sweep implementation (see corrupt_sweep.h for the contract).
#include "harness/corrupt_sweep.h"

#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "core/gfsl.h"
#include "core/integrity.h"
#include "core/snapshot.h"
#include "device/device_memory.h"
#include "device/epoch.h"
#include "device/persist.h"
#include "harness/postmortem.h"
#include "harness/workload.h"
#include "sched/lease.h"
#include "simt/team.h"

namespace gfsl::harness {
namespace {

using core::Gfsl;
using core::GfslConfig;
using device::FaultKind;
using device::FaultPlane;
using device::FaultSection;
using device::FaultSpec;

std::string repro(FaultSection s, FaultKind k, std::uint64_t seed) {
  return std::string("--corrupt ") + device::fault_section_name(s) + ":" +
         device::fault_kind_name(k) + ":" + std::to_string(seed);
}

// Sequential reference model.  tests/oracle.h stays test-local; the map is
// a few lines and this keeps the harness library free of tests/ includes.
struct Model {
  std::map<Key, Value> m;
  bool apply(const Op& op) {
    switch (op.kind) {
      case OpKind::Insert:
        return m.emplace(op.key, op.value).second;
      case OpKind::Delete:
        return m.erase(op.key) > 0;
      case OpKind::Contains:
        return m.count(op.key) > 0;
    }
    return false;
  }
  std::vector<std::pair<Key, Value>> collect() const {
    return {m.begin(), m.end()};
  }
};

struct CellCtx {
  const CorruptSweepConfig* cfg = nullptr;
  FaultSection section = FaultSection::kChunkData;
  FaultKind kind = FaultKind::kBitFlip;
  std::uint64_t seed = 0;
  CorruptSweepResult* res = nullptr;
};

bool fail_cell(CellCtx& c, const std::string& what, const Gfsl* sl = nullptr) {
  c.res->ok = false;
  c.res->error = what + "\n  repro: " + repro(c.section, c.kind, c.seed);
  if (!c.cfg->postmortem_dir.empty()) {
    PostmortemContext ctx;
    ctx.reason = "corruption_unresolved";
    ctx.detail = what;
    ctx.gfsl = sl;
    ctx.info = {{"harness", "corrupt_sweep"},
                {"section", device::fault_section_name(c.section)},
                {"kind", device::fault_kind_name(c.kind)},
                {"seed", std::to_string(c.seed)},
                {"ops", std::to_string(c.cfg->ops)},
                {"range", std::to_string(c.cfg->key_range)},
                {"team_size", std::to_string(c.cfg->team_size)}};
    (void)dump_postmortem(
        c.cfg->postmortem_dir,
        std::string("postmortem_corrupt_") +
            device::fault_section_name(c.section) + "_" +
            device::fault_kind_name(c.kind) + "_" + std::to_string(c.seed),
        ctx);
  }
  return false;
}

/// Drive the seeded reference workload through `sl` with a single team,
/// checking every outcome against the model as it goes.  Single-team runs
/// are sequential, so any divergence here is a harness bug, not corruption.
bool drive(Gfsl& sl, simt::Team& team, Model& model, std::uint64_t ops,
           std::uint64_t range, std::uint64_t seed, std::string* err) {
  WorkloadConfig wl;
  wl.mix = kMix_20_20_60;  // update-heavy: deep version chains, busy chunks
  wl.key_range = range;
  wl.num_ops = ops;
  wl.seed = seed;
  for (const Op& op : generate_ops(wl)) {
    bool got = false;
    switch (op.kind) {
      case OpKind::Insert:
        got = sl.insert(team, op.key, op.value);
        break;
      case OpKind::Delete:
        got = sl.erase(team, op.key);
        break;
      case OpKind::Contains:
        got = sl.contains(team, op.key);
        break;
    }
    if (got != model.apply(op)) {
      *err = "pre-injection workload diverged from the model at key " +
             std::to_string(op.key);
      return false;
    }
  }
  return true;
}

bool key_in_ranges(Key k, const std::vector<core::LostRange>& lost) {
  for (const auto& lr : lost) {
    if (k > lr.lo_exclusive && k <= lr.hi_inclusive) return true;
  }
  return false;
}

/// Exact-or-reported contents check: every surviving key must carry the
/// model's value (anything else is a silent wrong answer) and every missing
/// key must fall inside a reported blast radius.
bool check_contents(Gfsl& sl, const Model& model,
                    const std::vector<core::LostRange>& lost,
                    std::uint64_t* keys_lost, std::string* err) {
  const auto actual = sl.collect();
  std::map<Key, Value> am(actual.begin(), actual.end());
  for (const auto& [k, v] : am) {
    const auto it = model.m.find(k);
    if (it == model.m.end()) {
      *err = "silent corruption: key " + std::to_string(k) +
             " present but never inserted";
      return false;
    }
    if (it->second != v) {
      *err = "silent corruption: key " + std::to_string(k) +
             " carries value " + std::to_string(v) + ", model says " +
             std::to_string(it->second);
      return false;
    }
  }
  for (const auto& [k, v] : model.m) {
    (void)v;
    if (am.count(k) != 0) continue;
    if (!key_in_ranges(k, lost)) {
      *err = "silent loss: key " + std::to_string(k) +
             " vanished outside every reported blast radius";
      return false;
    }
    ++*keys_lost;
  }
  return true;
}

// --- kChunkData: in-memory inject -> scrub -> verify ------------------------

bool run_chunk_cell(CellCtx& c) {
  const CorruptSweepConfig& cfg = *c.cfg;
  device::DeviceMemory mem;
  device::EpochManager epochs;
  core::SnapshotManager snaps(cfg.pool_chunks);
  core::IntegritySidecar integrity;
  GfslConfig gc;
  gc.team_size = cfg.team_size;
  gc.pool_chunks = cfg.pool_chunks;
  // Epochs + snapshots attached: bottom-chunk repair restores from the
  // version-record chains, so every key this workload wrote is recoverable.
  Gfsl sl(gc, &mem, nullptr, nullptr, &epochs, nullptr, &snaps, nullptr,
          &integrity);
  simt::Team team(cfg.team_size, 0, 3);
  Model model;
  std::string err;
  if (!drive(sl, team, model, cfg.ops, cfg.key_range,
             derive_seed(cfg.base_seed, c.seed), &err)) {
    return fail_cell(c, err, &sl);
  }

  // Victim: a sealed, unlocked, live chunk — picked by the seed across every
  // level (upper chunks exercise index repair, bottom chunks exercise the
  // CRC-certified restore).
  const core::ChunkArena& arena = sl.arena();
  std::vector<ChunkRef> sealed;
  for (std::uint32_t r = 0; r < arena.high_water(); ++r) {
    const auto ref = static_cast<ChunkRef>(r);
    const std::uint32_t gen = arena.generation(ref);
    if ((gen & 1u) != 0 || !integrity.sealed(ref, gen)) continue;
    const KV lk = arena.entries(ref)[arena.lock_slot()].load(
        std::memory_order_relaxed);
    if (core::lock_entry_state(lk) != core::kUnlocked) continue;
    sealed.push_back(ref);
  }
  if (sealed.empty()) return fail_cell(c, "no sealed chunk to corrupt", &sl);
  Xoshiro256ss rng(derive_seed(cfg.base_seed ^ 0xC022u, c.seed));
  const ChunkRef victim = sealed[rng.below(sealed.size())];
  const int slot =
      static_cast<int>(rng.below(static_cast<std::uint64_t>(arena.dsize())));
  auto* word = const_cast<std::atomic<KV>*>(arena.entries(victim)) + slot;

  FaultPlane plane;
  const auto frep = plane.inject_at(c.kind, word, c.seed + 1);
  ++c.res->runs;
  const bool changed = frep.injected && frep.before != frep.after;
  if (changed) ++c.res->injected;

  simt::Team medic(cfg.team_size, 1, 3);
  auto srep = sl.scrub_pass(medic);
  if (c.kind == FaultKind::kStuckWord && changed) {
    // The failed cell re-asserts its corrupt value over whatever the first
    // pass repaired; the second pass must escalate to quarantine instead of
    // burning passes re-repairing unrepairable memory.
    plane.reassert();
    const auto srep2 = sl.scrub_pass(medic);
    if (srep2.mismatches != 0 && srep2.quarantined == 0) {
      plane.clear_stuck();
      return fail_cell(
          c, "stuck-at word was re-repaired instead of escalating", &sl);
    }
    srep.mismatches += srep2.mismatches;
    srep.repaired += srep2.repaired;
    srep.quarantined += srep2.quarantined;
    srep.lost.insert(srep.lost.end(), srep2.lost.begin(), srep2.lost.end());
  }
  plane.clear_stuck();

  c.res->detected += srep.mismatches;
  c.res->repaired += srep.repaired;
  c.res->quarantined += srep.quarantined;
  if (changed && srep.mismatches == 0) {
    return fail_cell(c, "damaged seal went undetected by the scrub pass", &sl);
  }
  if (changed && srep.repaired + srep.quarantined == 0) {
    return fail_cell(
        c, "confirmed mismatch was neither repaired nor quarantined", &sl);
  }

  const auto vrep = sl.validate(/*strict=*/false);
  if (!vrep.ok) {
    return fail_cell(c, "post-scrub validate failed: " + vrep.error, &sl);
  }
  if (!check_contents(sl, model, srep.lost, &c.res->keys_lost, &err)) {
    return fail_cell(c, err, &sl);
  }
  // Post-resolution point reads across the whole key space: the repaired
  // structure must answer exactly like the model, modulo the reported radii.
  for (std::uint64_t k = 1; k <= cfg.key_range; ++k) {
    const Key key = static_cast<Key>(k);
    const bool got = sl.contains(team, key);
    const bool want = model.m.count(key) != 0;
    if (got == want) continue;
    if (got) {
      return fail_cell(
          c, "contains(" + std::to_string(k) + ") invented a key", &sl);
    }
    if (!key_in_ranges(key, srep.lost)) {
      return fail_cell(c,
                       "contains(" + std::to_string(k) +
                           ") lost a key outside every blast radius",
                       &sl);
    }
  }
  return true;
}

// --- Durable sections: region-file inject -> recover -> verify --------------

bool run_region_cell(CellCtx& c) {
  const CorruptSweepConfig& cfg = *c.cfg;
  const std::string path =
      cfg.work_dir + "/corrupt_" + device::fault_section_name(c.section) +
      "_" + device::fault_kind_name(c.kind) + "_" + std::to_string(c.seed) +
      ".region";
  std::remove(path.c_str());
  GfslConfig gc;
  gc.team_size = cfg.team_size;
  gc.pool_chunks = cfg.pool_chunks;
  const device::PersistGeometry geom{
      static_cast<std::uint32_t>(cfg.team_size), cfg.pool_chunks};
  Model model;
  {  // Phase 1: write a clean reference image.
    device::DeviceMemory mem;
    device::PersistRegion region(path, device::PersistRegion::Mode::kCreate,
                                 geom);
    sched::LeaseTable leases;
    leases.attach(
        static_cast<std::atomic<std::uint32_t>*>(region.lease_slots()),
        /*adopt=*/false);
    Gfsl sl(gc, &mem, nullptr, &leases, nullptr, &region);
    simt::Team team(cfg.team_size, 0, 3);
    std::string err;
    if (!drive(sl, team, model, cfg.ops, cfg.key_range,
               derive_seed(cfg.base_seed, c.seed ^ 0xD15Cu), &err)) {
      std::remove(path.c_str());
      return fail_cell(c, err, &sl);
    }
    region.mark_clean();
  }
  const auto expected = model.collect();

  bool cell_ok = true;
  std::string err;
  {  // Phase 2: damage the live window, then recover on the same mapping.
    FaultPlane plane;  // outlives every use; stuck addresses stay valid
    device::DeviceMemory mem;
    device::PersistRegion region(path, device::PersistRegion::Mode::kAttach);
    region.attach_fault_plane(&plane);
    region.arm_fault_sections(plane);
    const auto frep = plane.inject({c.section, c.kind, c.seed + 1});
    ++c.res->runs;
    if (frep.injected && frep.before != frep.after) ++c.res->injected;

    sched::LeaseTable leases;
    leases.attach(
        static_cast<std::atomic<std::uint32_t>*>(region.lease_slots()),
        /*adopt=*/true);
    Gfsl sl(gc, &mem, nullptr, &leases, nullptr, &region);
    // Accept either outcome of one recovery attempt: a typed refusal (only
    // the superblock section may refuse — every other section must always
    // converge) or a clean recovery whose contents match the closed image
    // exactly.  Returns false when the cell already failed.
    bool rejected = false;
    const auto accept = [&](const core::RecoveryReport& rec) -> bool {
      if (!rec.ok) {
        if (c.section == FaultSection::kSuperblock) {
          rejected = true;
          ++c.res->rejected_typed;
          ++c.res->detected;
          return true;
        }
        err = "recover() failed to converge: " + rec.error;
        cell_ok = false;
        return false;
      }
      ++c.res->recoveries;
      if (sl.collect() != expected) {
        err = "recovered contents diverge from the pre-close image";
        cell_ok = false;
        return false;
      }
      return true;
    };
    if (accept(sl.recover()) && c.kind == FaultKind::kStuckWord && !rejected) {
      // The failed cell re-asserts into the recovered image; a second
      // recovery must converge (or refuse) all over again — idempotence
      // under memory that will not stay fixed.
      plane.reassert();
      (void)accept(sl.recover());
    }
    plane.clear_stuck();
    if (!cell_ok) fail_cell(c, err, &sl);
  }
  if (!cell_ok) return false;  // region file left behind for inspection
  std::remove(path.c_str());
  return true;
}

// --- kDroppedBarrier: live-run arming, any section --------------------------

bool run_dropped_barrier_cell(CellCtx& c) {
  const CorruptSweepConfig& cfg = *c.cfg;
  const std::string path =
      cfg.work_dir + "/corrupt_" + device::fault_section_name(c.section) +
      "_dropbarrier_" + std::to_string(c.seed) + ".region";
  std::remove(path.c_str());
  GfslConfig gc;
  gc.team_size = cfg.team_size;
  gc.pool_chunks = cfg.pool_chunks;
  Model model;
  bool cell_ok = true;
  std::string err;
  {  // Live run with 1..8 persist barriers silently dropped.  MAP_SHARED
     // loses nothing without a machine crash, so the run must stay clean.
    FaultPlane plane;
    plane.arm_barrier_drops(1 + (c.seed % 8));
    device::DeviceMemory mem;
    device::PersistRegion region(
        path, device::PersistRegion::Mode::kCreate,
        device::PersistGeometry{static_cast<std::uint32_t>(cfg.team_size),
                                cfg.pool_chunks});
    region.attach_fault_plane(&plane);
    sched::LeaseTable leases;
    leases.attach(
        static_cast<std::atomic<std::uint32_t>*>(region.lease_slots()),
        /*adopt=*/false);
    Gfsl sl(gc, &mem, nullptr, &leases, nullptr, &region);
    simt::Team team(cfg.team_size, 0, 3);
    ++c.res->runs;
    if (!drive(sl, team, model, cfg.ops, cfg.key_range,
               derive_seed(cfg.base_seed, c.seed ^ 0xD20Bu), &err)) {
      cell_ok = false;
      fail_cell(c, err, &sl);
    } else {
      c.res->barriers_dropped += plane.barriers_dropped();
      const auto vrep = sl.validate(/*strict=*/false);
      if (!vrep.ok) {
        cell_ok = false;
        fail_cell(c, "validate failed under dropped barriers: " + vrep.error,
                  &sl);
      } else if (sl.collect() != model.collect()) {
        cell_ok = false;
        fail_cell(c, "contents diverged under dropped barriers", &sl);
      } else {
        region.mark_clean();
      }
    }
  }
  if (cell_ok) {  // Belt and braces: the closed image must still recover.
    device::DeviceMemory mem;
    device::PersistRegion region(path, device::PersistRegion::Mode::kAttach);
    sched::LeaseTable leases;
    leases.attach(
        static_cast<std::atomic<std::uint32_t>*>(region.lease_slots()),
        /*adopt=*/true);
    Gfsl sl(gc, &mem, nullptr, &leases, nullptr, &region);
    const auto rec = sl.recover();
    if (!rec.ok) {
      cell_ok = false;
      fail_cell(c, "post-drop image failed to recover: " + rec.error, &sl);
    } else if (sl.collect() != model.collect()) {
      cell_ok = false;
      fail_cell(c, "post-drop recovery diverged from the model", &sl);
    } else {
      ++c.res->recoveries;
    }
  }
  if (cell_ok) std::remove(path.c_str());
  return cell_ok;
}

}  // namespace

CorruptSweepResult run_corrupt_sweep(const CorruptSweepConfig& cfg,
                                     std::FILE* progress) {
  CorruptSweepResult res;
  std::vector<FaultSection> sections = cfg.sections;
  if (sections.empty()) {
    for (int s = 0; s < device::kFaultSectionCount; ++s) {
      sections.push_back(static_cast<FaultSection>(s));
    }
  }
  std::vector<FaultKind> kinds = cfg.kinds;
  if (kinds.empty()) {
    for (int k = 0; k < device::kFaultKindCount; ++k) {
      kinds.push_back(static_cast<FaultKind>(k));
    }
  }
  for (const FaultSection section : sections) {
    for (const FaultKind kind : kinds) {
      if (progress != nullptr) {
        std::fprintf(progress, "corrupt-sweep: %s x %s (%llu seeds)\n",
                     device::fault_section_name(section),
                     device::fault_kind_name(kind),
                     static_cast<unsigned long long>(cfg.seeds));
        std::fflush(progress);
      }
      for (std::uint64_t seed = cfg.first_seed;
           seed < cfg.first_seed + cfg.seeds; ++seed) {
        CellCtx c;
        c.cfg = &cfg;
        c.section = section;
        c.kind = kind;
        c.seed = seed;
        c.res = &res;
        bool ok;
        if (kind == FaultKind::kDroppedBarrier) {
          ok = run_dropped_barrier_cell(c);
        } else if (section == FaultSection::kChunkData) {
          ok = run_chunk_cell(c);
        } else {
          ok = run_region_cell(c);
        }
        if (!ok) return res;
      }
    }
  }
  return res;
}

}  // namespace gfsl::harness
