// gfsl-bench-v1: the stable benchmark-report schema plus the noise-aware
// comparator behind `bench_compare`.
//
// A BenchReport is one campaign run: the campaign name, the knob settings it
// ran under, an environment fingerprint (compiler / build type / platform —
// enough to flag apples-to-oranges diffs), and a flat list of metrics.  Each
// metric keeps its raw per-repetition samples; the summary statistics are
// derived at write time so the JSON is self-contained for dashboards while
// the samples stay available for re-analysis.
//
// Gating model: a metric opts into regression gating (`gate`) and declares
// which direction is better (`better`).  compare_reports() flags a metric
// only when the delta in the *worse* direction exceeds
//   max(rel_thresh * |baseline.mean|, k * max(baseline.stddev, cur.stddev))
// i.e. both a relative floor (ignore microscopic shifts) and a noise window
// (ignore shifts explainable by run-to-run variance).  Host-wall-time metrics
// ship with gate=false: they vary with the machine, unlike the modeled-MOPS
// and structural metrics the gate is meant for.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gfsl::harness {

/// Direction in which a metric improves.
enum class Better { kHigher, kLower, kNone };

std::string_view better_name(Better b);

struct BenchMetric {
  std::string name;            // stable flat key, e.g. "gfsl32_mops.range_1000000"
  std::string unit;            // "mops", "chunks", "percent", "ns", ...
  Better better = Better::kNone;
  bool gate = false;           // participates in regression gating
  std::vector<double> samples; // one entry per repetition

  // Derived views over `samples` (0 when empty).
  double mean() const;
  double stddev() const;  // sample stddev (n-1), 0 for < 2 samples
  double min() const;
  double max() const;
  double percentile(double p) const;  // nearest-rank with interpolation
};

struct BenchReport {
  std::string campaign;
  std::vector<std::pair<std::string, std::string>> config;       // ordered
  std::vector<std::pair<std::string, std::string>> environment;  // ordered
  std::vector<BenchMetric> metrics;

  const BenchMetric* find(const std::string& name) const;

  /// Record one knob (insertion-ordered, last write per key wins).
  void set_config(const std::string& key, const std::string& value);

  /// Fill `environment` with the build fingerprint (compiler, build type,
  /// platform, pointer width).  Existing keys are preserved.
  void stamp_environment();
};

/// Serialize as gfsl-bench-v1 JSON.
void write_bench_json(std::ostream& os, const BenchReport& report);

/// Parse a gfsl-bench-v1 document.  Returns false (with `error` set) on
/// syntax errors or schema mismatches.
bool read_bench_json(const std::string& text, BenchReport& out,
                     std::string& error);

struct CompareOptions {
  double rel_thresh = 0.25;  // relative floor on |delta| vs baseline mean
  double k = 4.0;            // noise window: k * max(stddev_base, stddev_cur)
  bool gated_only = true;    // ignore metrics with gate=false
};

enum class Verdict {
  kOk,          // within threshold (or not gated)
  kImproved,    // moved beyond threshold in the better direction
  kRegressed,   // moved beyond threshold in the worse direction
  kMissing,     // present in baseline, absent in current
  kNew,         // present in current, absent in baseline
};

std::string_view verdict_name(Verdict v);

struct MetricDelta {
  std::string name;
  std::string unit;
  Better better = Better::kNone;
  bool gate = false;
  double base_mean = 0.0;
  double base_stddev = 0.0;
  double cur_mean = 0.0;
  double cur_stddev = 0.0;
  double delta = 0.0;      // cur - base
  double threshold = 0.0;  // the |delta| bar this comparison used
  Verdict verdict = Verdict::kOk;
};

struct CompareResult {
  std::vector<MetricDelta> deltas;
  int regressions = 0;
  int improvements = 0;
  bool ok() const { return regressions == 0; }
};

CompareResult compare_reports(const BenchReport& baseline,
                              const BenchReport& current,
                              const CompareOptions& opts = {});

}  // namespace gfsl::harness
