// GfslSession — the host-side interface the paper's evaluation uses (§5.1):
// hand the device an array of operations, get back an array of results.
//
// The session owns the device memory, the structure and the launch
// configuration; each launch() executes the op array with a pool of
// concurrent teams (one host thread per team) and accumulates the kernel
// statistics the performance model consumes.  This is the API an
// application would embed; the lower-level run_gfsl() is for harness code
// that wants to manage structures itself.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/gfsl.h"
#include "device/device_memory.h"
#include "harness/runner.h"
#include "model/cost_model.h"

namespace gfsl::harness {

class GfslSession {
 public:
  struct Config {
    core::GfslConfig structure;
    int num_workers = 8;
    std::uint64_t seed = 1;
    /// Two 16-lane teams per warp (the Chapter 7 extension).  Requires
    /// structure.team_size == 16 and an even worker count.
    bool dual_teams_per_warp = false;
  };

  explicit GfslSession(const Config& cfg);

  /// Execute one "kernel launch": ops in, per-op boolean results out.
  std::vector<std::uint8_t> launch(const std::vector<Op>& ops);

  /// Host-side bulk initialization between launches (untimed, §5.1).
  void load(const std::vector<std::pair<Key, Value>>& sorted_pairs) {
    list_->bulk_load(sorted_pairs);
  }

  /// Between-kernel compaction (§4.1 future work).
  void compact() { list_->compact(); }

  core::Gfsl& structure() { return *list_; }
  device::DeviceMemory& memory() { return *mem_; }

  /// Events of the most recent launch.
  const model::KernelRun& last_kernel() const { return last_.kernel; }
  const RunResult& last_run() const { return last_; }
  std::uint64_t launches() const { return launches_; }

  /// Modeled GTX-970 throughput of the most recent launch.
  double modeled_mops(int warps_per_block = 16) const;

 private:
  Config cfg_;
  std::unique_ptr<device::DeviceMemory> mem_;
  std::unique_ptr<core::Gfsl> list_;
  RunResult last_;
  std::uint64_t launches_ = 0;
};

}  // namespace gfsl::harness
