#include "harness/campaign.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>

#include "common/random.h"
#include "core/gfsl.h"
#include "device/device_memory.h"
#include "device/epoch.h"
#include "device/persist.h"
#include "harness/report.h"
#include "sched/lease.h"
#include "model/cost_model.h"
#include "obs/metrics.h"
#include "simt/team.h"
#include "simt/trace.h"

namespace gfsl::harness {

StructureSetup setup_from_scale(const Scale& sc, int team_size) {
  StructureSetup s;
  s.team_size = team_size;
  s.p_chunk = env_double("GFSL_P_CHUNK", 1.0);
  s.warps_per_block = static_cast<int>(env_u64("GFSL_WARPS_PER_BLOCK", 16));
  s.num_workers = static_cast<int>(sc.teams);
  s.warmup_ops = std::min<std::uint64_t>(sc.ops / 4, 20'000);
  return s;
}

WorkloadConfig make_workload(const Mix& mix, std::uint64_t range,
                             std::uint64_t ops, std::uint64_t seed) {
  WorkloadConfig wl;
  wl.mix = mix;
  wl.key_range = range;
  wl.num_ops = ops;
  wl.prefill = default_prefill(mix);
  wl.seed = seed;
  return wl;
}

void print_scale_banner(const Scale& sc) {
  std::printf(
      "# scale: ops=%llu max_range=%llu reps=%llu teams=%llu "
      "(env: GFSL_OPS, GFSL_MAX_RANGE, GFSL_REPS, GFSL_TEAMS; "
      "paper scale: ops=10M, ranges to 100M, reps=10)\n",
      static_cast<unsigned long long>(sc.ops),
      static_cast<unsigned long long>(sc.max_range),
      static_cast<unsigned long long>(sc.reps),
      static_cast<unsigned long long>(sc.teams));
}

std::string mix_key(const Mix& mix) {
  return "mix_" + std::to_string(mix.insert_pct) + "_" +
         std::to_string(mix.delete_pct) + "_" +
         std::to_string(mix.contains_pct);
}

std::string range_key(std::uint64_t range) {
  return "r" + std::to_string(range);
}

Scale campaign_scale(const CampaignOptions& opts) {
  Scale sc = Scale::from_env();
  if (opts.quick) {
    // Fixed footprint for the CI gate: the point is run-to-run stability on
    // one config, not coverage — the committed baselines were produced at
    // exactly this scale.
    sc.ops = 6'000;
    sc.max_range = 100'000;
    sc.teams = 4;
    sc.reps = 3;
  }
  if (opts.reps > 0) sc.reps = static_cast<std::uint64_t>(opts.reps);
  return sc;
}

namespace {

/// "p50/p90/p99" tail column for a repetition summary (same unit as mean).
std::string fmt_tail(const Summary& s) {
  return fmt(s.p50, 1) + "/" + fmt(s.p90, 1) + "/" + fmt(s.p99, 1);
}

void stamp_scale(BenchReport& r, const Scale& sc, const CampaignOptions& o) {
  r.set_config("ops", std::to_string(sc.ops));
  r.set_config("max_range", std::to_string(sc.max_range));
  r.set_config("reps", std::to_string(sc.reps));
  r.set_config("teams", std::to_string(sc.teams));
  r.set_config("seed", std::to_string(sc.seed));
  r.set_config("quick", o.quick ? "1" : "0");
  r.set_config("p_chunk", fmt(env_double("GFSL_P_CHUNK", 1.0), 2));
}

void add_metric(BenchReport& r, std::string name, std::string unit,
                Better better, bool gate, std::vector<double> samples) {
  BenchMetric m;
  m.name = std::move(name);
  m.unit = std::move(unit);
  m.better = better;
  m.gate = gate;
  m.samples = std::move(samples);
  r.metrics.push_back(std::move(m));
}

// ---------------------------------------------------------------------------
// Figure 5.1 — GFSL-16 vs GFSL-32 vs M&C on [10,10,80].

BenchReport run_fig_5_1(const CampaignOptions& opts) {
  const Scale sc = campaign_scale(opts);
  BenchReport report;
  report.campaign = "fig_5_1_chunk_size";
  stamp_scale(report, sc, opts);

  print_scale_banner(sc);
  std::printf("# Figure 5.1: GFSL-16 vs GFSL-32 vs M&C, mix [10,10,80]\n");
  std::printf(
      "# paper @1M: GFSL-32 ~65.7, GFSL-16 within 28%% below, M&C ~21.3 "
      "MOPS\n\n");

  const int reps = static_cast<int>(sc.reps);
  Table t({"range", "GFSL-16 MOPS", "GFSL-32 MOPS", "M&C MOPS",
           "GFSL-32/GFSL-16"});
  for (const auto range : sweep_ranges(sc.max_range)) {
    auto wl = make_workload(kMix_10_10_80, range, sc.ops, sc.seed);
    auto s16 = setup_from_scale(sc, /*team_size=*/16);
    auto s32 = setup_from_scale(sc, /*team_size=*/32);
    const auto g16 = repeat_gfsl(wl, s16, reps);
    const auto g32 = repeat_gfsl(wl, s32, reps);
    const auto mc = repeat_mc(wl, s32, reps);
    t.add_row({fmt_range(range), fmt_ci(g16.mops.mean, g16.mops.ci95_half),
               fmt_ci(g32.mops.mean, g32.mops.ci95_half),
               mc.oom ? "OOM" : fmt_ci(mc.mops.mean, mc.mops.ci95_half),
               fmt(g32.mops.mean / g16.mops.mean, 2)});
    const std::string rk = range_key(range);
    add_metric(report, "gfsl16_mops." + rk, "mops", Better::kHigher, true,
               g16.samples);
    add_metric(report, "gfsl32_mops." + rk, "mops", Better::kHigher, true,
               g32.samples);
    if (!mc.oom) {
      add_metric(report, "mc_mops." + rk, "mops", Better::kHigher, true,
                 mc.samples);
    }
  }
  t.print(std::cout);
  return report;
}

// ---------------------------------------------------------------------------
// Figure 5.2 — GFSL / M&C ratio per mix per range.

BenchReport run_fig_5_2(const CampaignOptions& opts) {
  const Scale sc = campaign_scale(opts);
  BenchReport report;
  report.campaign = "fig_5_2_ratio";
  stamp_scale(report, sc, opts);

  print_scale_banner(sc);
  std::printf("# Figure 5.2: GFSL / M&C throughput ratio per key range\n");
  std::printf("# paper: 0.54-0.85 @10K, ~1 @30K, 1.27-10.64 above\n\n");

  const Mix mixes[] = {kMix_1_1_98, kMix_5_5_90, kMix_10_10_80, kMix_20_20_60};
  const auto ranges = sweep_ranges(sc.max_range);
  const int reps = static_cast<int>(sc.reps);

  std::vector<std::string> header{"range"};
  for (const auto& m : mixes) header.push_back(m.name());
  Table t(header);

  for (const auto range : ranges) {
    std::vector<std::string> row{fmt_range(range)};
    for (const auto& mix : mixes) {
      auto wl = make_workload(mix, range, sc.ops, sc.seed);
      const auto setup = setup_from_scale(sc);
      const auto g = repeat_gfsl(wl, setup, reps);
      const auto m = repeat_mc(wl, setup, reps);
      if (m.oom) {
        row.push_back("M&C OOM");
      } else {
        row.push_back(fmt(g.mops.mean / m.mops.mean, 2) + "x");
        // Informational: the MOPS series in fig_5_1/fig_5_3 already gate;
        // a ratio of two noisy series is too jittery to gate on its own.
        add_metric(report, "ratio." + mix_key(mix) + "." + range_key(range),
                   "x", Better::kHigher, false,
                   {g.mops.mean / m.mops.mean});
      }
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  return report;
}

// ---------------------------------------------------------------------------
// Figure 5.3 — throughput vs key range per mixed-op distribution.

BenchReport run_fig_5_3(const CampaignOptions& opts) {
  const Scale sc = campaign_scale(opts);
  BenchReport report;
  report.campaign = "fig_5_3_mixed_ops";
  stamp_scale(report, sc, opts);

  print_scale_banner(sc);
  std::printf(
      "# Figure 5.3: throughput vs key range, per mix (MOPS, mean ±95%% "
      "CI)\n\n");

  const Mix mixes[] = {kMix_1_1_98, kMix_5_5_90, kMix_10_10_80, kMix_20_20_60};
  const auto ranges = sweep_ranges(sc.max_range);
  const int reps = static_cast<int>(sc.reps);

  for (const auto& mix : mixes) {
    std::printf("## mix %s\n", mix.name().c_str());
    Table t({"range", "GFSL MOPS", "GFSL p50/p90/p99", "M&C MOPS",
             "GFSL spins/op", "L2 hit (GFSL)", "L2 hit (M&C)"});
    for (const auto range : ranges) {
      auto wl = make_workload(mix, range, sc.ops, sc.seed);
      const auto setup = setup_from_scale(sc);
      const auto g = repeat_gfsl(wl, setup, reps);
      const auto m = repeat_mc(wl, setup, reps);
      // One extra instrumented run for the diagnostic columns.
      const auto gd = measure_gfsl(wl, setup);
      const auto md = measure_mc(wl, setup);
      const auto hit = [](const model::KernelRun& k) {
        return k.mem.transactions
                   ? static_cast<double>(k.mem.l2_hits) /
                         static_cast<double>(k.mem.transactions)
                   : 0.0;
      };
      const double spins = static_cast<double>(gd.kernel.lock_spins) /
                           static_cast<double>(gd.kernel.ops);
      t.add_row({fmt_range(range), fmt_ci(g.mops.mean, g.mops.ci95_half),
                 fmt_tail(g.mops),
                 m.oom ? "OOM" : fmt_ci(m.mops.mean, m.mops.ci95_half),
                 fmt(spins, 3), fmt_pct(hit(gd.kernel)),
                 fmt_pct(hit(md.kernel))});
      const std::string key = mix_key(mix) + "." + range_key(range);
      add_metric(report, "gfsl_mops." + key, "mops", Better::kHigher, true,
                 g.samples);
      if (!m.oom) {
        add_metric(report, "mc_mops." + key, "mops", Better::kHigher, true,
                   m.samples);
      }
      add_metric(report, "gfsl_spins_per_op." + key, "spins", Better::kLower,
                 false, {spins});
      add_metric(report, "gfsl_chunks_per_trav." + key, "chunks",
                 Better::kLower, false, {gd.avg_chunks_per_traversal});
      add_metric(report, "gfsl_l2_hit." + key, "fraction", Better::kHigher,
                 false, {hit(gd.kernel)});
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "paper anchors @[10,10,80]: GFSL ~65.7 MOPS and M&C ~21.3 MOPS at 1M; "
      "GFSL loses up to 46%% at 10K with few updates.\n");
  return report;
}

// ---------------------------------------------------------------------------
// Figure 5.4 — single-op-type throughput vs key range.

BenchReport run_fig_5_4(const CampaignOptions& opts) {
  const Scale sc = campaign_scale(opts);
  BenchReport report;
  report.campaign = "fig_5_4_single_op";
  stamp_scale(report, sc, opts);

  print_scale_banner(sc);
  std::printf("# Figure 5.4: single-op-type throughput vs key range\n\n");

  struct Panel {
    Mix mix;
    const char* key;
    const char* title;
    const char* paper;
  };
  const Panel panels[] = {
      {kContainsOnly, "contains", "Contains-only",
       "paper: GFSL 2.9x-4.4x over M&C"},
      {kInsertOnly, "insert", "Insert-only", "paper: GFSL 3.5x-9.1x over M&C"},
      {kDeleteOnly, "delete", "Delete-only", "paper: GFSL 3.5x-12.6x over M&C"},
  };
  const auto ranges = sweep_ranges(sc.max_range);
  const int reps = static_cast<int>(sc.reps);

  for (const auto& p : panels) {
    std::printf("## %s (%s)\n", p.title, p.paper);
    Table t({"range", "GFSL MOPS", "M&C MOPS", "GFSL/M&C"});
    for (const auto range : ranges) {
      // Insert/Delete run `range` ops in the paper; scale alongside GFSL_OPS.
      const std::uint64_t ops = (p.mix.contains_pct == 100)
                                    ? sc.ops
                                    : std::min<std::uint64_t>(range, sc.ops);
      auto wl = make_workload(p.mix, range, ops, sc.seed);
      // Grow-from-empty runs capped below the range never leave the cache-
      // resident regime; start from the average live size instead.
      if (p.mix.insert_pct == 100 && ops < range) {
        wl.prefill = Prefill::HalfRange;
      }
      const auto setup = setup_from_scale(sc);
      const auto g = repeat_gfsl(wl, setup, reps);
      const auto m = repeat_mc(wl, setup, reps);
      t.add_row({fmt_range(range), fmt_ci(g.mops.mean, g.mops.ci95_half),
                 m.oom ? "OOM" : fmt_ci(m.mops.mean, m.mops.ci95_half),
                 m.oom ? "-" : fmt(g.mops.mean / m.mops.mean, 2) + "x"});
      const std::string key = std::string(p.key) + "." + range_key(range);
      add_metric(report, "gfsl_mops." + key, "mops", Better::kHigher, true,
                 g.samples);
      if (!m.oom) {
        add_metric(report, "mc_mops." + key, "mops", Better::kHigher, true,
                   m.samples);
      }
    }
    t.print(std::cout);
    std::printf("\n");
  }
  return report;
}

// ---------------------------------------------------------------------------
// Batch throughput — kernel-style batched dispatch vs per-op dispatch.

BenchReport run_batch_throughput(const CampaignOptions& opts) {
  const Scale sc = campaign_scale(opts);
  BenchReport report;
  report.campaign = "batch_throughput";
  stamp_scale(report, sc, opts);

  print_scale_banner(sc);
  std::printf(
      "# Batched vs per-op dispatch (MOPS, mean of %llu reps), mix "
      "20/20/60\n\n",
      static_cast<unsigned long long>(sc.reps));

  std::vector<std::uint64_t> ranges{100'000};
  if (sc.max_range >= 1'000'000) ranges.push_back(1'000'000);
  const std::size_t batch_sizes[] = {256, 1024, 4096};
  const int reps = static_cast<int>(sc.reps);

  for (const auto range : ranges) {
    std::printf("## key range %s\n", fmt_range(range).c_str());
    Table t({"dispatch", "model MOPS", "sim MOPS", "speedup", "reuse %",
             "chunks/trav", "steals/batch"});

    auto wl = make_workload(kMix_20_20_60, range, sc.ops, sc.seed);
    auto setup = setup_from_scale(sc);
    const std::string rk = range_key(range);

    setup.batch_size = 0;  // baseline: the seed's per-op dispatch
    const auto base = repeat_gfsl(wl, setup, reps);
    const auto based = measure_gfsl(wl, setup);
    t.add_row({"per-op", fmt_ci(base.mops.mean, base.mops.ci95_half),
               fmt(based.sim_mops), "1.00x", "-",
               fmt(based.avg_chunks_per_traversal, 2), "-"});
    add_metric(report, "per_op_mops." + rk, "mops", Better::kHigher, true,
               base.samples);
    add_metric(report, "per_op_chunks_per_trav." + rk, "chunks",
               Better::kLower, true, {based.avg_chunks_per_traversal});

    for (const auto bs : batch_sizes) {
      setup.batch_size = bs;
      const auto b = repeat_gfsl(wl, setup, reps);
      const auto bd = measure_gfsl(wl, setup);
      const auto descents = bd.batch.descent_reuses + bd.batch.full_descents;
      const double reuse =
          descents ? static_cast<double>(bd.batch.descent_reuses) /
                         static_cast<double>(descents)
                   : 0.0;
      const auto num_batches = (wl.num_ops + bs - 1) / bs;
      t.add_row({"batch " + std::to_string(bs),
                 fmt_ci(b.mops.mean, b.mops.ci95_half), fmt(bd.sim_mops),
                 fmt(b.mops.mean / base.mops.mean, 2) + "x", fmt_pct(reuse),
                 fmt(bd.avg_chunks_per_traversal, 2),
                 fmt(static_cast<double>(bd.batch.steals) /
                         static_cast<double>(num_batches),
                     1)});
      const std::string key = "b" + std::to_string(bs) + "." + rk;
      add_metric(report, "batch_mops." + key, "mops", Better::kHigher, true,
                 b.samples);
      add_metric(report, "batch_speedup." + key, "x", Better::kHigher, false,
                 {b.mops.mean / base.mops.mean});
      add_metric(report, "batch_reuse_pct." + key, "fraction", Better::kHigher,
                 true, {reuse});
      add_metric(report, "batch_chunks_per_trav." + key, "chunks",
                 Better::kLower, true, {bd.avg_chunks_per_traversal});
    }
    t.print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "acceptance: batched >= 1.3x per-op modeled throughput at batch >= "
      "1024, 1M key range.\n");
  return report;
}

// ---------------------------------------------------------------------------
// Steady-state churn — memory evolution under epoch reclamation.

struct ChurnParams {
  int workers = 4;
  int team_size = 8;
  std::uint32_t pool_chunks = 4096;
  std::uint64_t key_range = 512;
  std::uint64_t slices = 8;
  std::uint64_t ops_per_slice = 6144;  // slices * this >= 10x pool capacity
  std::uint64_t seed = 0xC0FF;
};

struct ChurnOutcome {
  std::uint64_t slices_survived = 0;
  std::uint64_t final_in_use = 0;
  std::uint64_t final_limbo = 0;
  std::uint64_t final_free = 0;
  std::uint64_t reclaimed = 0;
  double host_kops = 0.0;  // mean over completed slices
};

ChurnOutcome run_churn(const ChurnParams& p, bool with_epochs, Table* t) {
  device::DeviceMemory mem;
  device::EpochManager epochs;
  core::GfslConfig cfg;
  cfg.team_size = p.team_size;
  cfg.pool_chunks = p.pool_chunks;
  core::Gfsl sl(cfg, &mem, nullptr, nullptr, with_epochs ? &epochs : nullptr);
  const char* mode = with_epochs ? "ebr" : "leak";
  ChurnOutcome out;
  double kops_sum = 0.0;

  for (std::uint64_t s = 0; s < p.slices; ++s) {
    std::atomic<int> oom{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int w = 0; w < p.workers; ++w) {
      threads.emplace_back([&, w] {
        simt::Team team(p.team_size, w, 3);
        Xoshiro256ss rng(derive_seed(p.seed + s, static_cast<std::uint64_t>(w)));
        const std::uint64_t n =
            p.ops_per_slice / static_cast<std::uint64_t>(p.workers);
        try {
          for (std::uint64_t i = 0; i < n; ++i) {
            const Key k = 1 + static_cast<Key>(rng.below(p.key_range));
            if (rng.below(2) == 0) {
              sl.insert(team, k, k);
            } else {
              sl.erase(team, k);
            }
          }
        } catch (const std::bad_alloc&) {
          oom.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& th : threads) th.join();
    const double sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double kops = static_cast<double>(p.ops_per_slice) / sec / 1e3;

    t->add_row({mode, std::to_string(s + 1), fmt(kops),
                std::to_string(sl.chunks_allocated()),
                std::to_string(with_epochs ? epochs.limbo_total() : 0),
                std::to_string(sl.arena().free_count()),
                std::to_string(sl.chunks_reclaimed()),
                oom.load() != 0 ? "POOL EXHAUSTED" : ""});
    kops_sum += kops;
    out.slices_survived = s + 1;
    out.final_in_use = sl.chunks_allocated();
    out.final_limbo = with_epochs ? epochs.limbo_total() : 0;
    out.final_free = sl.arena().free_count();
    out.reclaimed = sl.chunks_reclaimed();
    if (oom.load() != 0) break;  // leaking mode: no point continuing
  }
  out.host_kops =
      out.slices_survived ? kops_sum / static_cast<double>(out.slices_survived)
                          : 0.0;
  return out;
}

BenchReport run_steady_state_churn(const CampaignOptions& opts) {
  const Scale sc = campaign_scale(opts);
  BenchReport report;
  report.campaign = "steady_state_churn";
  stamp_scale(report, sc, opts);

  print_scale_banner(sc);
  ChurnParams p;
  p.seed = sc.seed == 0x5EEDF ? p.seed : sc.seed;
  // GFSL_OPS scales total churn volume; keep >= 10x pool capacity per mode.
  p.ops_per_slice = std::max<std::uint64_t>(
      sc.ops / p.slices, 10ull * p.pool_chunks / p.slices + 1);
  std::printf(
      "# steady-state churn: GFSL-%d, 50/50 insert/erase, range %llu, "
      "pool %u chunks, %llu slices x %llu ops, %d free-running teams\n",
      p.team_size, static_cast<unsigned long long>(p.key_range), p.pool_chunks,
      static_cast<unsigned long long>(p.slices),
      static_cast<unsigned long long>(p.ops_per_slice), p.workers);
  std::printf(
      "# detached (leak): every merge strands a zombie chunk until the pool "
      "dies; attached (ebr): in-use flat-lines at the working set\n\n");

  Table t({"mode", "slice", "kops/s(host)", "in_use", "limbo", "free",
           "reclaimed", "note"});
  // The per-metric samples are per-repetition outcomes of the full soak.
  const int reps = static_cast<int>(sc.reps);
  std::vector<double> ebr_in_use, ebr_reclaimed, ebr_limbo, ebr_kops,
      leak_slices;
  for (int r = 0; r < reps; ++r) {
    ChurnParams pr = p;
    pr.seed = derive_seed(p.seed, static_cast<std::uint64_t>(r) + 1);
    const auto leak = run_churn(pr, /*with_epochs=*/false, &t);
    const auto ebr = run_churn(pr, /*with_epochs=*/true, &t);
    leak_slices.push_back(static_cast<double>(leak.slices_survived));
    ebr_in_use.push_back(static_cast<double>(ebr.final_in_use));
    ebr_reclaimed.push_back(static_cast<double>(ebr.reclaimed));
    ebr_limbo.push_back(static_cast<double>(ebr.final_limbo));
    ebr_kops.push_back(ebr.host_kops);
  }
  t.print(std::cout);

  report.set_config("pool_chunks", std::to_string(p.pool_chunks));
  report.set_config("churn_key_range", std::to_string(p.key_range));
  report.set_config("churn_slices", std::to_string(p.slices));
  report.set_config("churn_ops_per_slice", std::to_string(p.ops_per_slice));
  // Gate the memory-evolution invariants (deterministic up to scheduling
  // noise), never the host-side throughput.
  add_metric(report, "ebr_final_in_use", "chunks", Better::kLower, true,
             std::move(ebr_in_use));
  add_metric(report, "ebr_reclaimed_total", "chunks", Better::kHigher, false,
             std::move(ebr_reclaimed));
  add_metric(report, "ebr_final_limbo", "chunks", Better::kLower, false,
             std::move(ebr_limbo));
  add_metric(report, "ebr_host_kops", "kops", Better::kHigher, false,
             std::move(ebr_kops));
  add_metric(report, "leak_slices_survived", "slices", Better::kNone, false,
             std::move(leak_slices));
  return report;
}

// ---------------------------------------------------------------------------
// Host micro suite — simulator-speed loops with the observability layers
// detached / metrics-attached / flight-recorder-armed.  Host nanoseconds, so
// nothing here gates; the A/B columns bound the always-armed cost of each
// layer (the flight recorder must stay within noise of detached).

struct MicroFixture {
  explicit MicroFixture(int team_size, Key prefill) : team(team_size, 0, 1) {
    core::GfslConfig cfg;
    cfg.team_size = team_size;
    cfg.pool_chunks = 1u << 16;
    sl = std::make_unique<core::Gfsl>(cfg, &mem);
    std::vector<std::pair<Key, Value>> pairs;
    for (Key k = 1; k <= prefill; ++k) pairs.emplace_back(k * 2, k);
    sl->bulk_load(pairs);
  }
  device::DeviceMemory mem;
  simt::Team team;
  std::unique_ptr<core::Gfsl> sl;
};

enum class MicroMode { kDetached, kMetrics, kFlightRecorder };

const char* micro_mode_key(MicroMode m) {
  switch (m) {
    case MicroMode::kDetached: return "detached";
    case MicroMode::kMetrics: return "metrics";
    case MicroMode::kFlightRecorder: return "flight_recorder";
  }
  return "detached";
}

double micro_contains_ns(MicroMode mode, std::uint64_t iters) {
  MicroFixture f(32, 10'000);
  obs::MetricsRegistry reg(1);
  simt::TeamTrace ring(256, /*timestamps=*/false);
  if (mode == MicroMode::kMetrics) f.team.set_metrics(&reg.shard(0));
  if (mode == MicroMode::kFlightRecorder) f.team.set_trace(&ring);
  Key k = 1;
  bool sink = false;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    sink ^= f.sl->contains(f.team, k);
    k = (k % 20'000) + 1;
  }
  const auto dt = std::chrono::steady_clock::now() - t0;
  if (sink) std::fputs("", stdout);  // keep the loop observable
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()) /
         static_cast<double>(iters);
}

double micro_insert_erase_ns(MicroMode mode, std::uint64_t iters) {
  MicroFixture f(32, 10'000);
  obs::MetricsRegistry reg(1);
  simt::TeamTrace ring(256, /*timestamps=*/false);
  if (mode == MicroMode::kMetrics) f.team.set_metrics(&reg.shard(0));
  if (mode == MicroMode::kFlightRecorder) f.team.set_trace(&ring);
  Key k = 50'001;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    f.sl->insert(f.team, k, 0);
    f.sl->erase(f.team, k);
    ++k;
  }
  const auto dt = std::chrono::steady_clock::now() - t0;
  // Two structure ops per iteration.
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()) /
         static_cast<double>(iters * 2);
}

BenchReport run_micro_ops(const CampaignOptions& opts) {
  const Scale sc = campaign_scale(opts);
  BenchReport report;
  report.campaign = "micro_ops";
  stamp_scale(report, sc, opts);

  const std::uint64_t iters = opts.quick ? 20'000 : 50'000;
  const int reps = static_cast<int>(sc.reps);
  report.set_config("iters", std::to_string(iters));

  std::printf(
      "# micro_ops: host ns/op with observability detached / metrics shard "
      "attached / flight recorder armed\n"
      "# (%d reps x %llu iters; armed-but-idle flight recorder must stay "
      "within noise of detached)\n\n",
      reps, static_cast<unsigned long long>(iters));

  const MicroMode modes[] = {MicroMode::kDetached, MicroMode::kMetrics,
                             MicroMode::kFlightRecorder};
  Table t({"loop", "mode", "ns/op (mean ±stddev)"});
  for (const auto mode : modes) {
    std::vector<double> contains_ns, ie_ns;
    for (int r = 0; r < reps; ++r) {
      contains_ns.push_back(micro_contains_ns(mode, iters));
      ie_ns.push_back(micro_insert_erase_ns(mode, iters));
    }
    BenchMetric c;
    c.samples = contains_ns;
    BenchMetric ie;
    ie.samples = ie_ns;
    t.add_row({"contains", micro_mode_key(mode),
               fmt_mean_stddev(c.mean(), c.stddev(), 1)});
    t.add_row({"insert_erase", micro_mode_key(mode),
               fmt_mean_stddev(ie.mean(), ie.stddev(), 1)});
    add_metric(report, std::string("contains_ns.") + micro_mode_key(mode),
               "ns", Better::kLower, false, std::move(contains_ns));
    add_metric(report, std::string("insert_erase_ns.") + micro_mode_key(mode),
               "ns", Better::kLower, false, std::move(ie_ns));
  }
  t.print(std::cout);
  return report;
}

// ---------------------------------------------------------------------------
// Persistence micro suite — host ns/op A/B across the durability ladder:
// detached (no leases, no region — the seed's zero-cost path, persist_point()
// is one pointer test), leased (lease words stamped, still in-memory), armed
// (file-backed region, every durable transition crosses a persist barrier).
// Raw nanoseconds are machine-speed-bound and stay informational; the gated
// metrics are the *ratios* against detached, which cancel the machine out.

enum class PersistMode { kDetached, kLeased, kArmed };

const char* persist_mode_key(PersistMode m) {
  switch (m) {
    case PersistMode::kDetached: return "detached";
    case PersistMode::kLeased: return "leased";
    case PersistMode::kArmed: return "armed";
  }
  return "detached";
}

struct PersistFixture {
  PersistFixture(int team_size, Key prefill, PersistMode mode,
                 const std::string& region_path)
      : team(team_size, 0, 1) {
    core::GfslConfig cfg;
    cfg.team_size = team_size;
    cfg.pool_chunks = 1u << 16;
    if (mode == PersistMode::kArmed) {
      region = std::make_unique<device::PersistRegion>(
          region_path, device::PersistRegion::Mode::kCreate,
          device::PersistGeometry{static_cast<std::uint32_t>(team_size),
                                  cfg.pool_chunks});
    }
    if (mode != PersistMode::kDetached) {
      leases = std::make_unique<sched::LeaseTable>();
      if (region) {
        leases->attach(
            static_cast<std::atomic<std::uint32_t>*>(region->lease_slots()),
            /*adopt=*/false);
      }
    }
    sl = std::make_unique<core::Gfsl>(cfg, &mem, nullptr, leases.get(),
                                      nullptr, region.get());
    std::vector<std::pair<Key, Value>> pairs;
    for (Key k = 1; k <= prefill; ++k) pairs.emplace_back(k * 2, k);
    sl->bulk_load(pairs);
  }
  device::DeviceMemory mem;
  simt::Team team;
  std::unique_ptr<device::PersistRegion> region;
  std::unique_ptr<sched::LeaseTable> leases;
  std::unique_ptr<core::Gfsl> sl;
};

double persist_contains_ns(PersistMode mode, std::uint64_t iters,
                           const std::string& region_path) {
  PersistFixture f(32, 10'000, mode, region_path);
  Key k = 1;
  bool sink = false;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    sink ^= f.sl->contains(f.team, k);
    k = (k % 20'000) + 1;
  }
  const auto dt = std::chrono::steady_clock::now() - t0;
  if (sink) std::fputs("", stdout);
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()) /
         static_cast<double>(iters);
}

double persist_insert_erase_ns(PersistMode mode, std::uint64_t iters,
                               const std::string& region_path) {
  PersistFixture f(32, 10'000, mode, region_path);
  Key k = 50'001;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    f.sl->insert(f.team, k, 0);
    f.sl->erase(f.team, k);
    ++k;
  }
  const auto dt = std::chrono::steady_clock::now() - t0;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()) /
         static_cast<double>(iters * 2);
}

BenchReport run_persist_overhead(const CampaignOptions& opts) {
  const Scale sc = campaign_scale(opts);
  BenchReport report;
  report.campaign = "persist_overhead";
  stamp_scale(report, sc, opts);

  const std::uint64_t iters = opts.quick ? 20'000 : 50'000;
  const int reps = static_cast<int>(sc.reps);
  report.set_config("iters", std::to_string(iters));
  const std::string region_path =
      (std::filesystem::temp_directory_path() / "gfsl_persist_overhead.region")
          .string();

  std::printf(
      "# persist_overhead: host ns/op across the durability ladder — "
      "detached (seed path) / leased (lease words only) / armed "
      "(file-backed region + persist barriers)\n"
      "# (%d reps x %llu iters; gated on the armed/detached and "
      "leased/detached ratios, which cancel machine speed)\n\n",
      reps, static_cast<unsigned long long>(iters));

  const PersistMode modes[] = {PersistMode::kDetached, PersistMode::kLeased,
                               PersistMode::kArmed};
  Table t({"loop", "mode", "ns/op (mean ±stddev)", "vs detached"});
  // Interleave the modes within each rep so machine drift (thermal, cache
  // pressure from neighbors) hits all three arms of rep r alike; the gated
  // per-rep ratios then carry a real spread for bench_compare's k·σ band.
  std::vector<double> ns_c[3], ns_ie[3];
  for (int r = 0; r < reps; ++r) {
    for (int mi = 0; mi < 3; ++mi) {
      ns_c[mi].push_back(persist_contains_ns(modes[mi], iters, region_path));
      ns_ie[mi].push_back(
          persist_insert_erase_ns(modes[mi], iters, region_path));
    }
  }
  for (int mi = 0; mi < 3; ++mi) {
    BenchMetric c;
    c.samples = ns_c[mi];
    BenchMetric ie;
    ie.samples = ns_ie[mi];
    const bool base = mi == 0;
    const std::string mk = persist_mode_key(modes[mi]);
    std::vector<double> ratio_c, ratio_ie;
    for (int r = 0; r < reps; ++r) {
      ratio_c.push_back(ns_c[mi][static_cast<std::size_t>(r)] /
                        ns_c[0][static_cast<std::size_t>(r)]);
      ratio_ie.push_back(ns_ie[mi][static_cast<std::size_t>(r)] /
                         ns_ie[0][static_cast<std::size_t>(r)]);
    }
    BenchMetric rc;
    rc.samples = ratio_c;
    BenchMetric rie;
    rie.samples = ratio_ie;
    t.add_row({"contains", mk, fmt_mean_stddev(c.mean(), c.stddev(), 1),
               base ? "1.00x" : fmt(rc.mean(), 2) + "x"});
    t.add_row({"insert_erase", mk, fmt_mean_stddev(ie.mean(), ie.stddev(), 1),
               base ? "1.00x" : fmt(rie.mean(), 2) + "x"});
    add_metric(report, "contains_ns." + mk, "ns", Better::kLower, false,
               ns_c[mi]);
    add_metric(report, "insert_erase_ns." + mk, "ns", Better::kLower, false,
               ns_ie[mi]);
    if (!base) {
      add_metric(report, "contains_ratio." + mk, "x", Better::kLower, true,
                 std::move(ratio_c));
      add_metric(report, "insert_erase_ratio." + mk, "x", Better::kLower, true,
                 std::move(ratio_ie));
    }
  }
  t.print(std::cout);
  std::printf(
      "\nacceptance: the fault-free detached path pays nothing (persist_point"
      "() is a single pointer test); the armed ratio is the price of "
      "durability and must not creep.\n");
  std::error_code ec;
  std::filesystem::remove(region_path, ec);
  return report;
}

// ---------------------------------------------------------------------------
// Integrity armor micro suite — host ns/op A/B with the IntegritySidecar
// detached (the seed path: no seals, no checks, bit-identical behavior) vs
// armed with each seal algorithm (every lock release restamps the chunk's
// data-slot seal; checked reads verify on their cold path).  Raw nanoseconds
// are machine-speed-bound and stay informational; the gated metrics are the
// per-rep armed/detached ratios, which cancel the machine out.  A quiescent
// full-pool scrub pass is timed per scanned chunk (informational): the
// steady-state cost of patrolling an undamaged structure.

enum class IntegrityMode { kDetached, kCrc32c, kXorFold };

const char* integrity_mode_key(IntegrityMode m) {
  switch (m) {
    case IntegrityMode::kDetached: return "detached";
    case IntegrityMode::kCrc32c: return "crc32c";
    case IntegrityMode::kXorFold: return "xorfold";
  }
  return "detached";
}

struct IntegrityFixture {
  IntegrityFixture(int team_size, Key prefill, IntegrityMode mode)
      : team(team_size, 0, 1) {
    if (mode != IntegrityMode::kDetached) {
      sidecar = std::make_unique<core::IntegritySidecar>(
          mode == IntegrityMode::kCrc32c ? core::SealAlgo::kCrc32c
                                         : core::SealAlgo::kXorFold);
    }
    core::GfslConfig cfg;
    cfg.team_size = team_size;
    cfg.pool_chunks = 1u << 16;
    sl = std::make_unique<core::Gfsl>(cfg, &mem, nullptr, nullptr, nullptr,
                                      nullptr, nullptr, nullptr,
                                      sidecar.get());
    std::vector<std::pair<Key, Value>> pairs;
    for (Key k = 1; k <= prefill; ++k) pairs.emplace_back(k * 2, k);
    sl->bulk_load(pairs);
  }
  device::DeviceMemory mem;
  simt::Team team;
  std::unique_ptr<core::IntegritySidecar> sidecar;
  std::unique_ptr<core::Gfsl> sl;
};

double integrity_contains_ns(IntegrityMode mode, std::uint64_t iters) {
  IntegrityFixture f(32, 10'000, mode);
  Key k = 1;
  bool sink = false;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    sink ^= f.sl->contains(f.team, k);
    k = (k % 20'000) + 1;
  }
  const auto dt = std::chrono::steady_clock::now() - t0;
  if (sink) std::fputs("", stdout);
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()) /
         static_cast<double>(iters);
}

double integrity_insert_erase_ns(IntegrityMode mode, std::uint64_t iters) {
  IntegrityFixture f(32, 10'000, mode);
  Key k = 50'001;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    f.sl->insert(f.team, k, 0);
    f.sl->erase(f.team, k);
    ++k;
  }
  const auto dt = std::chrono::steady_clock::now() - t0;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()) /
         static_cast<double>(iters * 2);
}

double integrity_scrub_ns_per_chunk(IntegrityMode mode) {
  IntegrityFixture f(32, 10'000, mode);
  const auto t0 = std::chrono::steady_clock::now();
  const core::ScrubReport rep = f.sl->scrub_pass(f.team);
  const auto dt = std::chrono::steady_clock::now() - t0;
  if (rep.chunks_scanned == 0) return 0.0;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()) /
         static_cast<double>(rep.chunks_scanned);
}

BenchReport run_integrity_overhead(const CampaignOptions& opts) {
  const Scale sc = campaign_scale(opts);
  BenchReport report;
  report.campaign = "integrity_overhead";
  stamp_scale(report, sc, opts);

  const std::uint64_t iters = opts.quick ? 20'000 : 50'000;
  const int reps = static_cast<int>(sc.reps);
  report.set_config("iters", std::to_string(iters));

  std::printf(
      "# integrity_overhead: host ns/op with the integrity sidecar detached "
      "(seed path) / armed crc32c / armed xorfold\n"
      "# (%d reps x %llu iters; gated on the per-rep armed/detached ratios, "
      "which cancel machine speed)\n\n",
      reps, static_cast<unsigned long long>(iters));

  const IntegrityMode modes[] = {IntegrityMode::kDetached,
                                 IntegrityMode::kCrc32c,
                                 IntegrityMode::kXorFold};
  Table t({"loop", "mode", "ns/op (mean ±stddev)", "vs detached"});
  // Interleave the modes within each rep so machine drift hits all arms of
  // rep r alike; the gated per-rep ratios then carry a real spread for
  // bench_compare's k·σ band.
  std::vector<double> ns_c[3], ns_ie[3], ns_scrub;
  for (int r = 0; r < reps; ++r) {
    for (int mi = 0; mi < 3; ++mi) {
      ns_c[mi].push_back(integrity_contains_ns(modes[mi], iters));
      ns_ie[mi].push_back(integrity_insert_erase_ns(modes[mi], iters));
    }
    ns_scrub.push_back(integrity_scrub_ns_per_chunk(IntegrityMode::kCrc32c));
  }
  for (int mi = 0; mi < 3; ++mi) {
    BenchMetric c;
    c.samples = ns_c[mi];
    BenchMetric ie;
    ie.samples = ns_ie[mi];
    const bool base = mi == 0;
    const std::string mk = integrity_mode_key(modes[mi]);
    std::vector<double> ratio_c, ratio_ie;
    for (int r = 0; r < reps; ++r) {
      ratio_c.push_back(ns_c[mi][static_cast<std::size_t>(r)] /
                        ns_c[0][static_cast<std::size_t>(r)]);
      ratio_ie.push_back(ns_ie[mi][static_cast<std::size_t>(r)] /
                         ns_ie[0][static_cast<std::size_t>(r)]);
    }
    BenchMetric rc;
    rc.samples = ratio_c;
    BenchMetric rie;
    rie.samples = ratio_ie;
    t.add_row({"contains", mk, fmt_mean_stddev(c.mean(), c.stddev(), 1),
               base ? "1.00x" : fmt(rc.mean(), 2) + "x"});
    t.add_row({"insert_erase", mk, fmt_mean_stddev(ie.mean(), ie.stddev(), 1),
               base ? "1.00x" : fmt(rie.mean(), 2) + "x"});
    add_metric(report, "contains_ns." + mk, "ns", Better::kLower, false,
               ns_c[mi]);
    add_metric(report, "insert_erase_ns." + mk, "ns", Better::kLower, false,
               ns_ie[mi]);
    if (!base) {
      add_metric(report, "contains_ratio." + mk, "x", Better::kLower, true,
                 std::move(ratio_c));
      add_metric(report, "insert_erase_ratio." + mk, "x", Better::kLower, true,
                 std::move(ratio_ie));
    }
  }
  BenchMetric scrub;
  scrub.samples = ns_scrub;
  t.add_row({"scrub_pass", "crc32c",
             fmt_mean_stddev(scrub.mean(), scrub.stddev(), 1) + " /chunk",
             "-"});
  add_metric(report, "scrub_ns_per_chunk.crc32c", "ns", Better::kLower, false,
             std::move(ns_scrub));
  t.print(std::cout);
  std::printf(
      "\nacceptance: the detached path pays nothing (every seal call starts "
      "with one null test); the armed ratios are the price of tamper-evident "
      "chunks and must not creep.\n");
  return report;
}

// ---------------------------------------------------------------------------
// Scan-mixed — MVCC snapshot scans concurrent with a mutating mix
// (DESIGN.md §13).  A/B: the same mutator workload runs once with no
// SnapshotManager attached (seed path; the scanner uses the best-effort
// legacy scan) and once with versioning armed (the scanner takes a snapshot,
// scan_at's the full range, releases, repeats).  Gated series: mutator
// throughput in both modes and their paired ratio — the price mutators pay
// for record stamping plus a live scanner pinning the GC watermark.

struct ScanMixedParams {
  int workers = 4;
  int team_size = 8;
  std::uint32_t pool_chunks = 1u << 14;
  std::uint64_t key_range = 4096;
  std::uint64_t ops = 6'000;  // total mutator ops per rep
  std::uint64_t seed = 0x5CA7;
};

struct ScanMixedOutcome {
  double mut_kops = 0.0;       // mutator host throughput
  double scans = 0.0;          // full-range scans the scanner completed
  double keys_per_scan = 0.0;  // mean pairs per completed scan
  double expired = 0.0;        // scan_at aborts on an expired snapshot
};

ScanMixedOutcome run_scan_mixed_once(const ScanMixedParams& p, bool mvcc) {
  device::DeviceMemory mem;
  device::EpochManager epochs;
  std::unique_ptr<core::SnapshotManager> snaps;
  if (mvcc) snaps = std::make_unique<core::SnapshotManager>(p.pool_chunks);
  core::GfslConfig cfg;
  cfg.team_size = p.team_size;
  cfg.pool_chunks = p.pool_chunks;
  core::Gfsl sl(cfg, &mem, nullptr, nullptr, &epochs, nullptr, snaps.get());
  std::vector<std::pair<Key, Value>> pairs;
  for (Key k = 2; k < static_cast<Key>(p.key_range); k += 2) {
    pairs.emplace_back(k, k);
  }
  sl.bulk_load(pairs);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> scans{0}, keys{0}, expired{0};
  std::thread scanner([&] {
    simt::Team team(p.team_size, p.workers, 5);
    std::vector<std::pair<Key, Value>> got;
    while (!done.load(std::memory_order_acquire)) {
      got.clear();
      if (mvcc) {
        core::Snapshot s = sl.snapshot();
        const auto st = sl.scan_at(team, s, MIN_USER_KEY, MAX_USER_KEY, got);
        sl.release_snapshot(s);
        if (st != core::ScanAtStatus::kOk) {
          expired.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
      } else {
        sl.scan(team, MIN_USER_KEY, MAX_USER_KEY, got);
      }
      scans.fetch_add(1, std::memory_order_relaxed);
      keys.fetch_add(got.size(), std::memory_order_relaxed);
    }
  });

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int w = 0; w < p.workers; ++w) {
    threads.emplace_back([&, w] {
      simt::Team team(p.team_size, w, 3);
      Xoshiro256ss rng(derive_seed(p.seed, static_cast<std::uint64_t>(w)));
      const std::uint64_t n = p.ops / static_cast<std::uint64_t>(p.workers);
      for (std::uint64_t i = 0; i < n; ++i) {
        const Key k = 1 + static_cast<Key>(rng.below(p.key_range));
        const auto roll = rng.below(100);
        if (roll < 40) {
          sl.insert(team, k, k);
        } else if (roll < 80) {
          sl.erase(team, k);
        } else {
          (void)sl.contains(team, k);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  done.store(true, std::memory_order_release);
  scanner.join();

  ScanMixedOutcome out;
  out.mut_kops = static_cast<double>(p.ops) / sec / 1e3;
  out.scans = static_cast<double>(scans.load());
  out.keys_per_scan =
      scans.load() ? static_cast<double>(keys.load()) /
                         static_cast<double>(scans.load())
                   : 0.0;
  out.expired = static_cast<double>(expired.load());
  return out;
}

BenchReport run_scan_mixed(const CampaignOptions& opts) {
  const Scale sc = campaign_scale(opts);
  BenchReport report;
  report.campaign = "scan_mixed";
  stamp_scale(report, sc, opts);

  ScanMixedParams p;
  p.workers = static_cast<int>(sc.teams);
  p.ops = sc.ops;
  p.seed = sc.seed;
  report.set_config("key_range", std::to_string(p.key_range));
  const int reps = static_cast<int>(sc.reps);

  std::printf(
      "# scan_mixed: %d mutator teams (mix 40/40/20 over %llu keys) vs one "
      "full-range scanner — legacy best-effort scan (detached) against "
      "snapshot()+scan_at() (mvcc)\n"
      "# (%d reps x %llu ops; gated on mutator kops and the paired "
      "mvcc/detached ratio, which cancels machine speed)\n\n",
      p.workers, static_cast<unsigned long long>(p.key_range), reps,
      static_cast<unsigned long long>(p.ops));

  // Interleave the two arms within each rep (same rationale as
  // persist_overhead: drift hits both arms of rep r alike, so the paired
  // per-rep ratio carries real spread for bench_compare's k-sigma band).
  std::vector<double> kops[2], scans[2], kps[2], expired[2];
  for (int r = 0; r < reps; ++r) {
    for (int mi = 0; mi < 2; ++mi) {
      const auto o = run_scan_mixed_once(p, /*mvcc=*/mi == 1);
      kops[mi].push_back(o.mut_kops);
      scans[mi].push_back(o.scans);
      kps[mi].push_back(o.keys_per_scan);
      expired[mi].push_back(o.expired);
    }
  }

  Table t({"mode", "mutator kops (mean ±stddev)", "vs detached", "scans/rep",
           "keys/scan", "expired"});
  for (int mi = 0; mi < 2; ++mi) {
    const std::string mk = mi == 0 ? "detached" : "mvcc";
    BenchMetric m;
    m.samples = kops[mi];
    BenchMetric s;
    s.samples = scans[mi];
    BenchMetric k;
    k.samples = kps[mi];
    std::vector<double> ratio;
    for (int r = 0; r < reps; ++r) {
      ratio.push_back(kops[0][static_cast<std::size_t>(r)] /
                      kops[mi][static_cast<std::size_t>(r)]);
    }
    BenchMetric rm;
    rm.samples = ratio;
    BenchMetric ex;
    ex.samples = expired[mi];
    t.add_row({mk, fmt_mean_stddev(m.mean(), m.stddev(), 1),
               mi == 0 ? "1.00x" : fmt(rm.mean(), 2) + "x", fmt(s.mean(), 1),
               fmt(k.mean(), 1), fmt(ex.mean(), 1)});
    add_metric(report, "mutator_kops." + mk, "kops", Better::kHigher, true,
               kops[mi]);
    add_metric(report, "scans." + mk, "scans", Better::kHigher, false,
               scans[mi]);
    add_metric(report, "keys_per_scan." + mk, "keys", Better::kHigher, false,
               kps[mi]);
    if (mi == 1) {
      add_metric(report, "mutator_slowdown.mvcc", "x", Better::kLower, true,
                 std::move(ratio));
      add_metric(report, "scan_expired.mvcc", "scans", Better::kLower, false,
                 expired[mi]);
    }
  }
  t.print(std::cout);
  std::printf(
      "\nacceptance: the mvcc mutator slowdown stays a small constant factor "
      "(record stamping + a pinned watermark, no stop-the-world), and "
      "scan_at keeps completing full-range cuts under churn (expired ~ 0).\n");
  return report;
}

// ---------------------------------------------------------------------------
// Foresight point ops — hinted descent A/B (DESIGN.md §14).

BenchReport run_foresight_pointops(const CampaignOptions& opts) {
  const Scale sc = campaign_scale(opts);
  BenchReport report;
  report.campaign = "foresight_pointops";
  stamp_scale(report, sc, opts);

  print_scale_banner(sc);
  std::printf(
      "# Foresight hint table A/B: classic head descent (detached) vs hinted "
      "bottom-chunk jump (foresight), per-op dispatch\n"
      "# (hit/stale rates from gfsl-metrics-v1 counters of one armed rep)\n\n");

  std::vector<std::uint64_t> ranges{100'000};
  if (sc.max_range >= 1'000'000) ranges.push_back(1'000'000);
  // Contains-only is the paper's pure point-lookup test; 5/5/90 adds enough
  // churn that splits and merges keep dirtying the published table.
  const Mix mixes[] = {kContainsOnly, kMix_5_5_90};
  const int reps = static_cast<int>(sc.reps);

  for (const auto range : ranges) {
    for (const auto& mix : mixes) {
      std::printf("## key range %s, mix %s\n", fmt_range(range).c_str(),
                  mix.name().c_str());
      Table t({"mode", "model MOPS", "speedup", "chunks/trav", "hit %",
               "stale %", "rebuilds"});

      auto wl = make_workload(mix, range, sc.ops, sc.seed);
      auto setup = setup_from_scale(sc);
      const std::string key = mix_key(mix) + "." + range_key(range);

      setup.foresight = false;
      const auto base = repeat_gfsl(wl, setup, reps);
      const auto based = measure_gfsl(wl, setup);
      t.add_row({"detached", fmt_ci(base.mops.mean, base.mops.ci95_half),
                 "1.00x", fmt(based.avg_chunks_per_traversal, 2), "-", "-",
                 "-"});
      add_metric(report, "detached_mops." + key, "mops", Better::kHigher, true,
                 base.samples);
      add_metric(report, "detached_chunks_per_trav." + key, "chunks",
                 Better::kLower, true, {based.avg_chunks_per_traversal});

      setup.foresight = true;
      const auto fs = repeat_gfsl(wl, setup, reps);
      obs::MetricsRegistry reg(setup.num_workers);
      setup.metrics = &reg;
      const auto fsd = measure_gfsl(wl, setup);
      setup.metrics = nullptr;
      const obs::MetricsShard all = reg.merged();
      const double hits =
          static_cast<double>(all.counter(obs::kForesightHits));
      const double falls =
          static_cast<double>(all.counter(obs::kForesightFallbacks));
      const double stale =
          static_cast<double>(all.counter(obs::kForesightStaleHints));
      const double consults = hits + falls;
      const double hit_rate = consults > 0.0 ? hits / consults : 0.0;
      const double stale_rate = consults > 0.0 ? stale / consults : 0.0;
      const double rebuilds =
          static_cast<double>(all.counter(obs::kForesightRebuilds));
      t.add_row({"foresight", fmt_ci(fs.mops.mean, fs.mops.ci95_half),
                 fmt(fs.mops.mean / base.mops.mean, 2) + "x",
                 fmt(fsd.avg_chunks_per_traversal, 2), fmt_pct(hit_rate),
                 fmt_pct(stale_rate), fmt(rebuilds, 0)});
      add_metric(report, "foresight_mops." + key, "mops", Better::kHigher,
                 true, fs.samples);
      add_metric(report, "foresight_speedup." + key, "x", Better::kHigher,
                 false, {fs.mops.mean / base.mops.mean});
      add_metric(report, "foresight_chunks_per_trav." + key, "chunks",
                 Better::kLower, true, {fsd.avg_chunks_per_traversal});
      add_metric(report, "foresight_hit_rate." + key, "fraction",
                 Better::kHigher, true, {hit_rate});
      add_metric(report, "foresight_stale_rate." + key, "fraction",
                 Better::kLower, false, {stale_rate});
      t.print(std::cout);
      std::printf("\n");
    }
  }
  std::printf(
      "acceptance: hinted point lookups average <= 2 chunks/traversal at 1M+ "
      "keys with a high hit rate; churny mixes degrade to fallbacks, never "
      "to wrong results.\n");
  return report;
}

}  // namespace

const std::vector<Campaign>& campaigns() {
  static const std::vector<Campaign> kCampaigns = {
      {"fig_5_1_chunk_size", "GFSL-16 vs GFSL-32 vs M&C, mix [10,10,80]",
       run_fig_5_1},
      {"fig_5_2_ratio", "GFSL / M&C throughput ratio per mix and key range",
       run_fig_5_2},
      {"fig_5_3_mixed_ops", "throughput vs key range per mixed-op mix",
       run_fig_5_3},
      {"fig_5_4_single_op",
       "contains-/insert-/delete-only throughput vs key range", run_fig_5_4},
      {"batch_throughput", "batched vs per-op dispatch A/B",
       run_batch_throughput},
      {"steady_state_churn", "epoch-reclamation memory soak (leak vs ebr)",
       run_steady_state_churn},
      {"micro_ops", "host ns/op with observability layers detached vs armed",
       run_micro_ops},
      {"persist_overhead",
       "host ns/op with the durable region detached / leased / armed",
       run_persist_overhead},
      {"integrity_overhead",
       "host ns/op with the integrity sidecar detached / crc32c / xorfold",
       run_integrity_overhead},
      {"scan_mixed",
       "mutator mix vs a full-range scanner, legacy scan / mvcc scan_at A/B",
       run_scan_mixed},
      {"foresight_pointops",
       "hinted bottom-chunk descent vs classic head descent A/B",
       run_foresight_pointops},
  };
  return kCampaigns;
}

const Campaign* find_campaign(const std::string& name) {
  for (const auto& c : campaigns()) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

BenchReport run_campaign(const Campaign& c, const CampaignOptions& opts) {
  BenchReport report = c.run(opts);
  report.stamp_environment();
  if (!opts.out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.out_dir, ec);
    const std::string path = opts.out_dir + "/BENCH_" + report.campaign +
                             ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    } else {
      write_bench_json(out, report);
      std::printf("# wrote %s\n", path.c_str());
    }
  }
  return report;
}

int campaign_main(const std::string& name) {
  const Campaign* c = find_campaign(name);
  if (c == nullptr) {
    std::fprintf(stderr, "unknown campaign '%s'\n", name.c_str());
    return 2;
  }
  CampaignOptions opts;
  if (const char* dir = std::getenv("GFSL_BENCH_JSON_DIR"); dir != nullptr) {
    opts.out_dir = dir;
  }
  (void)run_campaign(*c, opts);
  return 0;
}

}  // namespace gfsl::harness
