// Shared experiment drivers: build a structure, prefill it per §5.1, run the
// operation array with concurrent workers, and feed the measured events
// through the GPU cost model.  Every bench binary is a thin loop over these.
#pragma once

#include <cstdint>
#include <vector>

#include "common/env.h"
#include "common/stats.h"
#include "harness/runner.h"
#include "harness/workload.h"
#include "model/cost_model.h"
#include "model/occupancy.h"

namespace gfsl::harness {

struct StructureSetup {
  int team_size = 32;        // GFSL chunk/team size
  double p_chunk = 1.0;      // GFSL raise probability
  int warps_per_block = 16;  // launch config for the occupancy model
  int num_workers = 8;       // concurrent host threads in the simulator
  std::uint64_t warmup_ops = 10'000;  // untimed cache-warming operations
  /// 0 = per-op dispatch (the seed's mode).  > 0 = kernel-style batched
  /// execution: the measured op array is cut into batches of this many ops,
  /// each key-sorted, sharded and drained by all teams (DESIGN.md §10).
  std::size_t batch_size = 0;
  /// Optional telemetry for the *measured* run (warmup stays dark).  The
  /// registry needs >= num_workers shards; after the run the structure
  /// gauges (height, live/zombie chunks, occupancy, ...) are sampled into
  /// it.  Both must outlive the measure_* call.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSession* trace = nullptr;
  /// Non-empty: after the measured GFSL run, validate the structure and
  /// write a gfsl-postmortem-v1 bundle to this exact path (reason
  /// "on_demand" when the structure is healthy, "validate_failure"
  /// otherwise).  When no TraceSession is attached, a clockless
  /// flight-recorder session is armed for the measured run so the bundle
  /// carries per-team event tails.  GFSL only; ignored by measure_mc.
  std::string postmortem_out;
  /// Non-empty: back the GFSL arena with a file-backed device::PersistRegion
  /// at this path (created fresh), so every mutating transition of the
  /// measured run crosses a persist barrier — the armed-persistence cost the
  /// persist_overhead campaign measures.  A lease table is attached
  /// automatically (the durability protocol requires one); the run ends with
  /// a clean-shutdown mark.  GFSL only; ignored by measure_mc.
  std::string persist_path;
  /// Attach a core::SnapshotManager (plus an EpochManager, so version chains
  /// are GC'd to the min-snapshot watermark) and run a concurrent scanner
  /// thread through snapshot() + scan_at() for the whole measured run.  The
  /// scanner's traffic lands in Measurement::snapshot_* and, when a metrics
  /// registry with > num_workers shards is attached, in shard num_workers —
  /// it does not count toward the modeled MOPS.  GFSL only.
  bool snapshot_scan = false;
  /// Attach a core::ForesightIndex (DESIGN.md §14) so point operations and
  /// cold batch descents jump straight to a hinted bottom chunk instead of
  /// descending from the head.  Hit/fallback/staleness counters land in the
  /// metrics registry when one is attached.  GFSL only.
  bool foresight = false;
  /// Attach a core::IntegritySidecar (DESIGN.md §15): every lock release
  /// restamps the chunk's data-slot seal and checked reads verify it on
  /// their cold path — the armed cost the integrity_overhead campaign
  /// measures.  GFSL only.
  bool integrity = false;
  /// With integrity: run this many online scrub passes after the measured
  /// run (a medic team walking every sealed chunk) and accumulate their
  /// reports into Measurement::scrub_*.
  int scrub_passes = 0;
};

struct Measurement {
  double model_mops = 0.0;  // modeled GTX-970 throughput (the paper's metric)
  double sim_mops = 0.0;    // raw simulator throughput (informational)
  bool oom = false;         // device pool exhausted (paper: M&C at 30M+)
  model::ModelResult detail;
  model::KernelRun kernel;
  simt::TeamCounters team_totals;  // GFSL only
  double avg_chunks_per_traversal = 0.0;  // GFSL only (§5.2 p_chunk metric)
  core::BatchStats batch;  // populated when setup.batch_size > 0
  // Populated when setup.snapshot_scan: concurrent scan_at traffic.
  std::uint64_t snapshot_scans = 0;          // scans that completed kOk
  std::uint64_t snapshot_scan_items = 0;     // pairs harvested across them
  std::uint64_t snapshot_scans_expired = 0;  // snapshots expired mid-scan
  // Populated when setup.integrity: sidecar state at teardown plus the
  // accumulated post-run scrub results (zero passes => zeros).
  std::uint64_t sealed_chunks = 0;           // chunks carrying a valid seal
  std::uint64_t scrub_suspects = 0;          // suspect flags still pending
  std::uint64_t scrub_chunks_scanned = 0;
  std::uint64_t scrub_mismatches = 0;
  std::uint64_t scrub_repaired = 0;
  std::uint64_t scrub_quarantined = 0;
};

/// One measured GFSL launch: fresh structure + prefill + warmup + timed run.
Measurement measure_gfsl(const WorkloadConfig& wl, const StructureSetup& setup);

/// One measured M&C launch.
Measurement measure_mc(const WorkloadConfig& wl, const StructureSetup& setup);

/// One measured launch of the sub-warp-teams extension: GFSL-16 with two
/// teams per warp (thesis Chapter 7 future work).  `setup.team_size` is
/// forced to 16 and `setup.num_workers` rounded to even.
Measurement measure_gfsl_dual(const WorkloadConfig& wl,
                              const StructureSetup& setup);

/// Repeat with per-repetition seeds and summarize the modeled throughput
/// (the paper reports means of 10 runs with 95% CIs, §5.1).
struct Repeated {
  Summary mops;
  bool oom = false;
  std::vector<double> samples;  // per-repetition modeled MOPS, in run order
};
Repeated repeat_gfsl(WorkloadConfig wl, const StructureSetup& setup, int reps);
Repeated repeat_mc(WorkloadConfig wl, const StructureSetup& setup, int reps);
Repeated repeat_gfsl_dual(WorkloadConfig wl, const StructureSetup& setup,
                          int reps);

/// The paper's key-range sweep points (10K ... max_range).
std::vector<std::uint64_t> sweep_ranges(std::uint64_t max_range);

/// Quiescent post-run sampling of the structure gauges (height, chunk
/// population, zombie share, slot occupancy, epoch lag) into `reg`.  Also
/// used by external drivers (gfsl_fuzz --metrics-json) that run the
/// structure outside measure_gfsl.
void sample_structure_gauges(obs::MetricsRegistry& reg, const core::Gfsl& sl);

/// Device pool capacities emulating the GTX 970's 4 GB memory (§5.3: M&C
/// "runs out of memory for larger structures").
std::uint32_t gfsl_pool_chunks(const WorkloadConfig& wl, int team_size);
std::uint32_t mc_pool_slots(const WorkloadConfig& wl);

/// First-order update-contention correction.
///
/// The simulator runs ~8 concurrent workers; the modeled GPU runs thousands
/// of lanes (M&C) / hundreds of teams (GFSL), so conflict-driven retries —
/// CAS retry storms in M&C, lock waits in GFSL — are drastically
/// under-sampled in the measured events.  The correction adds the expected
/// extra work analytically: two operations conflict when both are updates
/// and their windows overlap on the same target, so the per-op conflict rate
/// is  p = C_eff * u^2 * window / targets  (C_eff = modeled ops in flight,
/// u = update fraction, targets = nodes or chunks), amplified by retry
/// feedback 1/(1-p).  M&C's optimistic window spans the whole operation;
/// GFSL holds its chunk locks for only a small fraction of one.
/// Negligible for read-mostly mixes; decisive for the §5.1 single-op-type
/// tests at small key ranges.
struct ContentionInputs {
  double structure_keys;    // average live keys during the run
  double update_fraction;   // (i + d) / 100
};
void apply_gfsl_contention(model::KernelRun& k, const model::OccupancyResult& occ,
                           const ContentionInputs& c, int team_size);
void apply_mc_contention(model::KernelRun& k, const model::OccupancyResult& occ,
                         const ContentionInputs& c);

}  // namespace gfsl::harness
