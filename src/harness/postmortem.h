// Dump-on-anomaly flight recorder (gfsl-postmortem-v1).
//
// The recorder itself is just the clockless TeamTrace rings every harness
// run can keep armed (simt/trace.h: no steady-clock read per record).  This
// module is the *dump* side: when something goes wrong — validate() fails, a
// crash-sweep watchdog declares a stall, a fuzz oracle disagrees — the
// harness serializes everything a human needs to reconstruct the failure:
//
//   * the last K events per team, straight from the rings (seq-ordered),
//   * the merged gfsl-metrics-v1 snapshot (counters/gauges/histograms),
//   * an epoch-pinned StructureInspector walk: per-level chunk counts,
//     zombie share, an occupancy histogram over live chunks' data slots,
//     free/limbo accounting, and the validate() verdict itself,
//   * free-form context (workload params, kill step, repro seeds).
//
// Lives in the harness layer (not obs) because the structure walk needs
// core::GfslInspector; obs stays below core in the library DAG.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace gfsl::core {
class Gfsl;
}
namespace gfsl::obs {
class MetricsRegistry;
}
namespace gfsl::simt {
class TeamTrace;
}

namespace gfsl::harness {

struct PostmortemContext {
  /// Why the dump fired: "validate_failure", "watchdog_stall",
  /// "oracle_mismatch", "history_violation", "on_demand".
  std::string reason;
  std::string detail;  // the validate error / mismatch description
  /// Optional structure to walk.  The walk is quiescent — callers must have
  /// stopped (or killed) every team first; the dump additionally pins an
  /// epoch slot so a concurrent reclaimer cannot recycle chunks mid-walk.
  const core::Gfsl* gfsl = nullptr;
  const obs::MetricsRegistry* metrics = nullptr;
  /// Flight-recorder rings, one per team (null entries are skipped).
  std::vector<const simt::TeamTrace*> rings;
  /// Free-form repro context (seeds, kill step, workload knobs), emitted
  /// verbatim into the "info" object.
  std::vector<std::pair<std::string, std::string>> info;
  /// Events to keep per team (the tail of each ring).
  std::size_t last_k = 64;
};

/// Serialize the bundle as gfsl-postmortem-v1 JSON.
void write_postmortem(std::ostream& os, const PostmortemContext& ctx);

/// write_postmortem to `<dir>/<stem>.json` (dir must exist).  Returns the
/// path, or an empty string when the file could not be opened.
std::string dump_postmortem(const std::string& dir, const std::string& stem,
                            const PostmortemContext& ctx);

}  // namespace gfsl::harness
