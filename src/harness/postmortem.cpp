#include "harness/postmortem.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "core/gfsl.h"
#include "core/inspect.h"
#include "device/epoch.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "simt/trace.h"

namespace gfsl::harness {

namespace {

void write_info(std::ostream& os, const PostmortemContext& ctx) {
  os << "  \"info\": {";
  for (std::size_t i = 0; i < ctx.info.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ");
    obs::json_string(os, ctx.info[i].first);
    os << ": ";
    obs::json_string(os, ctx.info[i].second);
  }
  os << (ctx.info.empty() ? "" : "\n  ") << "}";
}

void write_teams(std::ostream& os, const PostmortemContext& ctx) {
  os << "  \"teams\": [";
  bool first = true;
  for (std::size_t t = 0; t < ctx.rings.size(); ++t) {
    const simt::TeamTrace* ring = ctx.rings[t];
    if (ring == nullptr) continue;
    os << (first ? "\n" : ",\n");
    first = false;
    const auto events = ring->snapshot();
    const std::size_t keep = std::min(ctx.last_k, events.size());
    os << "    {\"team\": " << t << ", \"recorded\": " << ring->recorded()
       << ", \"events\": [";
    for (std::size_t i = events.size() - keep; i < events.size(); ++i) {
      const auto& r = events[i];
      os << (i == events.size() - keep ? "\n" : ",\n");
      os << "      {\"seq\": " << r.seq << ", \"event\": ";
      obs::json_string(os, simt::trace_event_name(r.event));
      os << ", \"a\": " << r.a << ", \"b\": " << r.b << "}";
    }
    os << (keep == 0 ? "" : "\n    ") << "]}";
  }
  os << (first ? "" : "\n  ") << "]";
}

void write_structure(std::ostream& os, const core::Gfsl& sl) {
  // Pin an epoch before touching chunk memory so a concurrent reclaimer
  // cannot recycle a chunk out from under the walk.  An out-of-range id maps
  // to the shared overflow slot — it cannot alias a real team's pin.
  device::EpochManager* epochs = sl.epochs();
  const int pin_id = device::EpochManager::kMaxSlots + 7;
  if (epochs != nullptr) epochs->pin(pin_id);

  const core::ValidationReport v = sl.validate(/*strict=*/false);
  const core::GfslInspector insp(sl);

  os << "  \"structure\": {\n";
  os << "    \"team_size\": " << sl.team_size()
     << ", \"height\": " << v.height << ", \"bottom_keys\": " << v.bottom_keys
     << ",\n    \"live_chunks\": " << v.live_chunks
     << ", \"zombie_chunks\": " << v.zombie_chunks
     << ", \"data_entries\": " << v.data_entries
     << ",\n    \"limbo_chunks\": " << v.limbo_chunks
     << ", \"free_chunks\": " << v.free_chunks
     << ", \"chunks_allocated\": " << sl.chunks_allocated()
     << ", \"chunks_reclaimed\": " << sl.chunks_reclaimed() << ",\n";
  os << "    \"validate\": {\"ok\": " << (v.ok ? "true" : "false")
     << ", \"error\": ";
  obs::json_string(os, v.error);
  os << "},\n";

  // Per-level chain walk + occupancy histogram over live chunks (bucket i =
  // chunks holding exactly i data entries).
  const int dsize = sl.team_size() - 2;
  std::vector<std::uint64_t> occupancy(static_cast<std::size_t>(dsize) + 1, 0);
  os << "    \"levels\": [";
  const int height = sl.current_height();
  for (int level = height; level >= 0; --level) {
    bool cycle = false;
    const auto chain = insp.level_chain(level, &cycle);
    std::uint64_t zombies = 0;
    std::uint64_t keys = 0;
    for (const auto& cv : chain) {
      if (cv.lock == core::kZombie) {
        ++zombies;
      } else if (level == 0) {
        occupancy[std::min<std::size_t>(cv.data.size(),
                                        occupancy.size() - 1)]++;
      }
      keys += cv.data.size();
    }
    os << (level == height ? "\n" : ",\n");
    os << "      {\"level\": " << level << ", \"chunks\": " << chain.size()
       << ", \"zombies\": " << zombies << ", \"keys\": " << keys
       << ", \"cycle\": " << (cycle ? "true" : "false") << "}";
  }
  os << "\n    ],\n";
  os << "    \"bottom_occupancy_histogram\": [";
  for (std::size_t i = 0; i < occupancy.size(); ++i) {
    if (i != 0) os << ", ";
    os << occupancy[i];
  }
  os << "]";
  if (epochs != nullptr) {
    os << ",\n    \"epoch\": {\"limbo_total\": " << epochs->limbo_total()
       << ", \"epoch_lag\": " << epochs->epoch_lag() << "}";
  }
  os << "\n  }";

  if (epochs != nullptr) epochs->unpin(pin_id);
}

}  // namespace

void write_postmortem(std::ostream& os, const PostmortemContext& ctx) {
  os << "{\n  \"schema\": \"gfsl-postmortem-v1\",\n  \"reason\": ";
  obs::json_string(os, ctx.reason);
  os << ",\n  \"detail\": ";
  obs::json_string(os, ctx.detail);
  os << ",\n";
  write_info(os, ctx);
  os << ",\n";
  write_teams(os, ctx);
  if (ctx.metrics != nullptr) {
    // Embed the full gfsl-metrics-v1 report as a nested object.
    std::ostringstream metrics_json;
    ctx.metrics->write_json(metrics_json);
    std::string m = metrics_json.str();
    while (!m.empty() && (m.back() == '\n' || m.back() == ' ')) m.pop_back();
    os << ",\n  \"metrics\": " << m;
  }
  if (ctx.gfsl != nullptr) {
    os << ",\n";
    write_structure(os, *ctx.gfsl);
  }
  os << "\n}\n";
}

std::string dump_postmortem(const std::string& dir, const std::string& stem,
                            const PostmortemContext& ctx) {
  const std::string path = dir + "/" + stem + ".json";
  std::ofstream out(path);
  if (!out) return std::string();
  write_postmortem(out, ctx);
  return path;
}

}  // namespace gfsl::harness
