#include "harness/experiment.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <thread>

#include "common/random.h"
#include "core/snapshot.h"
#include "device/epoch.h"
#include "device/persist.h"
#include "harness/postmortem.h"
#include "sched/lease.h"

namespace gfsl::harness {

namespace {

/// GTX 970 device memory budget for structure pools (§5.1: 4 GB total; some
/// headroom is reserved for the op arrays and runtime).
constexpr std::uint64_t kDeviceBudgetBytes = 3500ull * 1024 * 1024;

WorkloadConfig warmup_config(const WorkloadConfig& wl, std::uint64_t ops) {
  WorkloadConfig w = wl;
  w.num_ops = ops;
  w.seed = derive_seed(wl.seed, 0xCAFE);
  // Warm the cache with reads only so the structure is unchanged when the
  // measured run starts.
  w.mix = kContainsOnly;
  return w;
}

}  // namespace

std::vector<std::uint64_t> sweep_ranges(std::uint64_t max_range) {
  static constexpr std::uint64_t kAll[] = {
      10'000,     30'000,     100'000,    300'000,    1'000'000,
      3'000'000,  10'000'000, 30'000'000, 100'000'000};
  std::vector<std::uint64_t> out;
  for (const auto r : kAll) {
    if (r <= max_range) out.push_back(r);
  }
  return out;
}

std::uint32_t gfsl_pool_chunks(const WorkloadConfig& wl, int team_size) {
  const std::uint64_t prefill =
      wl.prefill == Prefill::Empty
          ? 0
          : (wl.prefill == Prefill::HalfRange ? wl.key_range / 2 : wl.key_range);
  const std::uint64_t updates =
      wl.num_ops *
      static_cast<std::uint64_t>(wl.mix.insert_pct + wl.mix.delete_pct) / 100;
  const int dsize = team_size - 2;
  std::uint64_t chunks =
      (prefill + updates) * 3 / static_cast<std::uint64_t>(dsize) + 4096;
  const std::uint64_t cap =
      kDeviceBudgetBytes / (static_cast<std::uint64_t>(team_size) * 8);
  chunks = std::min(chunks, cap);
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(chunks, 0xFFFFFFFEull));
}

std::uint32_t mc_pool_slots(const WorkloadConfig& wl) {
  const std::uint64_t prefill =
      wl.prefill == Prefill::Empty
          ? 0
          : (wl.prefill == Prefill::HalfRange ? wl.key_range / 2 : wl.key_range);
  const std::uint64_t inserts =
      wl.num_ops * static_cast<std::uint64_t>(wl.mix.insert_pct) / 100;
  // ~4 slots per node at p_key = 0.5 (header + meta + E[height] = 2 links),
  // with slack for CAS-failure re-allocations.
  std::uint64_t slots = (prefill + inserts) * 6 + 4096;
  const std::uint64_t cap = kDeviceBudgetBytes / 8;
  slots = std::min(slots, cap);
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(slots, 0xFFFFFFFEull));
}

namespace {

ContentionInputs contention_inputs(const WorkloadConfig& wl) {
  ContentionInputs c;
  const double prefill =
      wl.prefill == Prefill::Empty
          ? 0.0
          : (wl.prefill == Prefill::HalfRange
                 ? static_cast<double>(wl.key_range) / 2
                 : static_cast<double>(wl.key_range));
  // Uniform keys: net growth is bounded by the insert/delete imbalance; the
  // average live size is well approximated by the prefill for the paper's
  // symmetric mixes and by half the op count for grow-from-empty runs.
  const double grow =
      static_cast<double>(wl.num_ops) *
      static_cast<double>(wl.mix.insert_pct - wl.mix.delete_pct) / 100.0 / 2.0;
  c.structure_keys = std::max(64.0, prefill + std::max(0.0, grow));
  c.update_fraction =
      static_cast<double>(wl.mix.insert_pct + wl.mix.delete_pct) / 100.0;
  return c;
}

double conflict_rate(double in_flight, double u, double window,
                     double targets) {
  const double raw = in_flight * u * u * window / std::max(targets, 1.0);
  const double p = std::min(raw, 0.80);  // retry feedback diverges at 1
  return p / (1.0 - p);
}

}  // namespace

void sample_structure_gauges(obs::MetricsRegistry& reg, const core::Gfsl& sl) {
  // Non-strict: concurrent histories may legally leave stale upper keys.
  const core::ValidationReport v = sl.validate(false);
  reg.set_gauge(obs::kHeight, static_cast<double>(v.height));
  reg.set_gauge(obs::kBottomKeys, static_cast<double>(v.bottom_keys));
  reg.set_gauge(obs::kLiveChunks, static_cast<double>(v.live_chunks));
  reg.set_gauge(obs::kZombieChunks, static_cast<double>(v.zombie_chunks));
  reg.set_gauge(obs::kChunksAllocated,
                static_cast<double>(sl.chunks_allocated()));
  const double slots = static_cast<double>(v.live_chunks) *
                       static_cast<double>(sl.team_size() - 2);
  reg.set_gauge(obs::kChunkOccupancy,
                slots > 0.0 ? static_cast<double>(v.data_entries) / slots
                            : 0.0);
  reg.set_gauge(obs::kLimboChunks, static_cast<double>(v.limbo_chunks));
  reg.set_gauge(obs::kFreeChunks, static_cast<double>(v.free_chunks));
  if (const device::EpochManager* ep = sl.epochs(); ep != nullptr) {
    reg.set_gauge(obs::kEpochLag, static_cast<double>(ep->epoch_lag()));
  }
  if (const core::SnapshotManager* sn = sl.snapshots(); sn != nullptr) {
    reg.set_gauge(obs::kActiveSnapshots,
                  static_cast<double>(sn->active_snapshots()));
    reg.set_gauge(obs::kSnapshotAgeRevs,
                  static_cast<double>(sn->oldest_snapshot_age()));
    reg.set_gauge(obs::kVersionRecordsLive,
                  static_cast<double>(sn->records_live()));
  }
  if (const core::ForesightIndex* fs = sl.foresight(); fs != nullptr) {
    reg.set_gauge(obs::kForesightEntries, static_cast<double>(fs->entries()));
    reg.set_gauge(obs::kForesightDirty,
                  static_cast<double>(fs->dirty_pending()));
  }
  if (const core::IntegritySidecar* ic = sl.integrity(); ic != nullptr) {
    reg.set_gauge(obs::kSealedChunks, static_cast<double>(ic->sealed_count()));
    reg.set_gauge(obs::kScrubSuspects,
                  static_cast<double>(ic->suspect_count()));
  }
}

void apply_gfsl_contention(model::KernelRun& k,
                           const model::OccupancyResult& occ,
                           const ContentionInputs& c, int team_size) {
  if (c.update_fraction <= 0.0 || k.ops == 0) return;
  const auto& gpu = model::gtx970();
  const double teams_in_flight =
      occ.achieved_occupancy * gpu.max_warps_per_sm * gpu.num_sms;
  // Lock conflicts target bottom-level chunks; the bottom lock is held for
  // the rest of the update (§4.2.2: "It remains locked until the Insert
  // operation is completed"), so the window spans the whole operation.
  constexpr double kLockWindow = 1.0;
  const double chunks =
      c.structure_keys / (static_cast<double>(team_size - 2) * 0.6);
  const double extra = conflict_rate(teams_in_flight, c.update_fraction,
                                     kLockWindow, chunks);
  const auto spins =
      static_cast<std::uint64_t>(extra * static_cast<double>(k.ops));
  k.lock_spins += spins;
  k.mem_epochs += spins;  // each failed attempt re-reads the chunk
}

void apply_mc_contention(model::KernelRun& k,
                         const model::OccupancyResult& occ,
                         const ContentionInputs& c) {
  if (c.update_fraction <= 0.0 || k.ops == 0) return;
  const auto& gpu = model::gtx970();
  const double lanes_in_flight = occ.achieved_occupancy *
                                 gpu.max_warps_per_sm * gpu.num_sms *
                                 gpu.warp_size;
  // Optimistic find-then-CAS: the conflict window is the whole operation and
  // every retry repeats the traversal, including its memory traffic.
  const double extra =
      conflict_rate(lanes_in_flight, c.update_fraction, 1.0, c.structure_keys);
  const double scale = 1.0 + extra;
  auto grow = [&](std::uint64_t& v) {
    v = static_cast<std::uint64_t>(static_cast<double>(v) * scale);
  };
  grow(k.mem_epochs);
  grow(k.warp_steps);
  grow(k.mem.transactions);
  grow(k.mem.l2_hits);
  grow(k.mem.dram_transactions);
  grow(k.mem.bytes_moved);
  grow(k.mem.atomics);
  grow(k.mem.lane_reads);
}

Measurement measure_gfsl(const WorkloadConfig& wl,
                         const StructureSetup& setup) {
  Measurement m;
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = setup.team_size;
  cfg.p_chunk = setup.p_chunk;
  cfg.pool_chunks = gfsl_pool_chunks(wl, setup.team_size);
  std::unique_ptr<device::PersistRegion> region;
  std::unique_ptr<sched::LeaseTable> leases;
  if (!setup.persist_path.empty()) {
    region = std::make_unique<device::PersistRegion>(
        setup.persist_path, device::PersistRegion::Mode::kCreate,
        device::PersistGeometry{static_cast<std::uint32_t>(setup.team_size),
                                cfg.pool_chunks});
    leases = std::make_unique<sched::LeaseTable>();
    leases->attach(
        static_cast<std::atomic<std::uint32_t>*>(region->lease_slots()),
        /*adopt=*/false);
  }
  std::unique_ptr<device::EpochManager> epochs;
  std::unique_ptr<core::SnapshotManager> snaps;
  if (setup.snapshot_scan) {
    // The scanner needs versioned mutations; the EpochManager rides along so
    // pruned version records get their grace period instead of leaking.
    epochs = std::make_unique<device::EpochManager>();
    snaps = std::make_unique<core::SnapshotManager>(cfg.pool_chunks);
  }
  std::unique_ptr<core::ForesightIndex> foresight;
  if (setup.foresight) {
    foresight = std::make_unique<core::ForesightIndex>(cfg.pool_chunks);
  }
  std::unique_ptr<core::IntegritySidecar> integrity;
  if (setup.integrity || setup.scrub_passes > 0) {
    integrity = std::make_unique<core::IntegritySidecar>();
  }
  core::Gfsl sl(cfg, &mem, nullptr, leases.get(), epochs.get(), region.get(),
                snaps.get(), foresight.get(), integrity.get());

  sl.bulk_load(generate_prefill(wl));
  if (setup.foresight) {
    // Prime the hint table quiescently so measured traffic starts hinted
    // instead of paying the lazy first rebuild (and its peers' classic
    // fallback descents) inside the timed window.
    simt::Team primer(sl.team_size(), setup.num_workers,
                      derive_seed(wl.seed, 0xF0E5));
    sl.foresight_prime(primer);
  }

  RunConfig rc;
  rc.num_workers = setup.num_workers;
  rc.seed = derive_seed(wl.seed, 0x6F51);

  if (setup.warmup_ops > 0) {
    const auto warm = generate_ops(warmup_config(wl, setup.warmup_ops));
    rc.flush_cache_before = true;
    (void)run_gfsl(sl, warm, rc, mem);
    rc.flush_cache_before = false;  // measured run starts warm, as in steady
                                    // state of the paper's 10M-op launches
  }

  const auto ops = generate_ops(wl);
  rc.metrics = setup.metrics;  // telemetry covers only the measured run
  rc.trace = setup.trace;
  // On-demand postmortem with no trace attached: arm a clockless
  // flight-recorder session for the measured run so the bundle has event
  // tails to show.
  obs::TraceSession recorder(256, /*timestamps=*/false);
  if (!setup.postmortem_out.empty() && rc.trace == nullptr) {
    rc.trace = &recorder;
  }
  // Concurrent snapshot scanner: one extra thread (team id num_workers)
  // repeatedly takes a snapshot and harvests consistent subranges through
  // scan_at while the workers mutate.  Each harvest is checked for the one
  // property scan_at owes its caller regardless of concurrency: strictly
  // ascending keys with no duplicates.
  std::atomic<bool> scan_stop{false};
  std::thread scanner;
  if (setup.snapshot_scan) {
    scanner = std::thread([&] {
      simt::Team team(sl.team_size(), setup.num_workers,
                      derive_seed(wl.seed, 0x5CA7));
      if (setup.metrics != nullptr &&
          setup.metrics->shards() > setup.num_workers) {
        team.set_metrics(&setup.metrics->shard(setup.num_workers));
      }
      Xoshiro256ss rng(derive_seed(wl.seed, 0x5CA8));
      const std::uint64_t range = std::max<std::uint64_t>(wl.key_range, 2);
      const std::uint64_t span = std::max<std::uint64_t>(range / 64, 64);
      std::vector<std::pair<Key, Value>> out;
      while (!scan_stop.load(std::memory_order_acquire)) {
        core::Snapshot s = sl.snapshot();
        for (int i = 0; i < 4 && !scan_stop.load(std::memory_order_acquire);
             ++i) {
          const std::uint64_t lo64 = 1 + rng.below(range - 1);
          const Key lo = static_cast<Key>(
              std::min<std::uint64_t>(lo64, MAX_USER_KEY));
          const Key hi = static_cast<Key>(
              std::min<std::uint64_t>(lo64 + span, MAX_USER_KEY));
          out.clear();
          const core::ScanAtStatus st =
              sl.scan_at(team, s, lo, hi, out, /*limit=*/4096);
          if (st == core::ScanAtStatus::kOk) {
            for (std::size_t j = 1; j < out.size(); ++j) {
              if (out[j - 1].first >= out[j].first) {
                std::abort();  // scan_at broke its ordering contract
              }
            }
            ++m.snapshot_scans;
            m.snapshot_scan_items += out.size();
          } else {
            ++m.snapshot_scans_expired;
            break;
          }
        }
        sl.release_snapshot(s);
      }
    });
  }

  RunResult rr;
  if (setup.batch_size > 0) {
    BatchRunOptions bo;
    bo.batch_size = setup.batch_size;
    core::BatchResult br;
    rr = run_gfsl_batched(sl, ops, rc, mem, bo, &br);
    m.batch = std::move(br.stats);
  } else {
    rr = run_gfsl(sl, ops, rc, mem);
  }
  if (scanner.joinable()) {
    scan_stop.store(true, std::memory_order_release);
    scanner.join();
  }
  if (integrity) {
    // Post-run online scrub: a medic team walks every sealed chunk.  On an
    // undamaged run every pass is a full-verify no-op — the per-pass cost,
    // not the findings, is the datum.  The medic's team id sits past the
    // workers (and the scanner thread, when armed).
    const int medic_id = setup.num_workers + (setup.snapshot_scan ? 1 : 0);
    simt::Team medic(sl.team_size(), medic_id, derive_seed(wl.seed, 0x5C2B));
    if (setup.metrics != nullptr && setup.metrics->shards() > medic_id) {
      medic.set_metrics(&setup.metrics->shard(medic_id));
    }
    for (int p = 0; p < setup.scrub_passes; ++p) {
      const core::ScrubReport sr = sl.scrub_pass(medic);
      m.scrub_chunks_scanned += sr.chunks_scanned;
      m.scrub_mismatches += sr.mismatches;
      m.scrub_repaired += sr.repaired;
      m.scrub_quarantined += sr.quarantined;
    }
    m.sealed_chunks = integrity->sealed_count();
    m.scrub_suspects = integrity->suspect_count();
  }
  if (setup.metrics != nullptr) sample_structure_gauges(*setup.metrics, sl);

  if (!setup.postmortem_out.empty()) {
    const core::ValidationReport v = sl.validate(/*strict=*/false);
    PostmortemContext ctx;
    ctx.reason = v.ok ? "on_demand" : "validate_failure";
    ctx.detail = v.error;
    ctx.gfsl = &sl;
    ctx.metrics = setup.metrics;
    const obs::TraceSession* session = rc.trace;
    for (int t = 0; session != nullptr && t < session->teams(); ++t) {
      ctx.rings.push_back(session->team(t));
    }
    ctx.info = {{"harness", "measure_gfsl"},
                {"seed", std::to_string(wl.seed)},
                {"ops", std::to_string(wl.num_ops)},
                {"key_range", std::to_string(wl.key_range)},
                {"mix", wl.mix.name()},
                {"team_size", std::to_string(setup.team_size)},
                {"workers", std::to_string(setup.num_workers)},
                {"batch_size", std::to_string(setup.batch_size)}};
    std::ofstream out(setup.postmortem_out);
    if (out) write_postmortem(out, ctx);
  }

  if (region) region->mark_clean();
  const model::Occupancy occ_calc;
  const auto occ = occ_calc.compute(model::kGfslKernel, setup.warps_per_block);
  apply_gfsl_contention(rr.kernel, occ, contention_inputs(wl),
                        setup.team_size);
  const model::CostModel cm;
  m.detail = cm.throughput(rr.kernel, occ);
  m.model_mops = m.detail.mops;
  m.sim_mops = rr.sim_wall_seconds > 0
                   ? static_cast<double>(ops.size()) / rr.sim_wall_seconds / 1e6
                   : 0.0;
  m.oom = rr.out_of_memory;
  m.kernel = rr.kernel;
  m.team_totals = rr.team_totals;
  m.avg_chunks_per_traversal = sl.avg_chunks_per_traversal();
  return m;
}

Measurement measure_mc(const WorkloadConfig& wl, const StructureSetup& setup) {
  Measurement m;
  device::DeviceMemory mem;
  baseline::McSkiplist::Config cfg;
  cfg.p_key = wl.p_key;
  cfg.max_height = wl.mc_max_height;
  cfg.pool_slots = mc_pool_slots(wl);
  baseline::McSkiplist sl(cfg, &mem);

  sl.bulk_load(generate_prefill(wl), derive_seed(wl.seed, 0xB0B));

  RunConfig rc;
  rc.num_workers = setup.num_workers;
  rc.seed = derive_seed(wl.seed, 0x6F52);

  if (setup.warmup_ops > 0) {
    const auto warm = generate_ops(warmup_config(wl, setup.warmup_ops));
    rc.flush_cache_before = true;
    (void)run_mc(sl, warm, rc, mem);
    rc.flush_cache_before = false;
  }

  const auto ops = generate_ops(wl);
  rc.metrics = setup.metrics;  // telemetry covers only the measured run
  rc.trace = setup.trace;
  RunResult rr = run_mc(sl, ops, rc, mem);

  const model::Occupancy occ_calc;
  const auto occ = occ_calc.compute(model::kMcKernel, setup.warps_per_block);
  apply_mc_contention(rr.kernel, occ, contention_inputs(wl));
  const model::CostModel cm;
  m.detail = cm.throughput(rr.kernel, occ);
  m.model_mops = m.detail.mops;
  m.sim_mops = rr.sim_wall_seconds > 0
                   ? static_cast<double>(ops.size()) / rr.sim_wall_seconds / 1e6
                   : 0.0;
  m.oom = rr.out_of_memory;
  m.kernel = rr.kernel;
  return m;
}

Measurement measure_gfsl_dual(const WorkloadConfig& wl,
                              const StructureSetup& setup_in) {
  StructureSetup setup = setup_in;
  setup.team_size = 16;  // two 16-lane teams fill one 32-lane warp
  if (setup.num_workers % 2 != 0) ++setup.num_workers;

  Measurement m;
  device::DeviceMemory mem;
  core::GfslConfig cfg;
  cfg.team_size = setup.team_size;
  cfg.p_chunk = setup.p_chunk;
  cfg.pool_chunks = gfsl_pool_chunks(wl, setup.team_size);
  core::Gfsl sl(cfg, &mem);

  sl.bulk_load(generate_prefill(wl));

  RunConfig rc;
  rc.num_workers = setup.num_workers;
  rc.seed = derive_seed(wl.seed, 0x6F53);

  if (setup.warmup_ops > 0) {
    const auto warm = generate_ops(warmup_config(wl, setup.warmup_ops));
    rc.flush_cache_before = true;
    (void)run_gfsl_paired(sl, warm, rc, mem);
    rc.flush_cache_before = false;
  }

  const auto ops = generate_ops(wl);
  rc.metrics = setup.metrics;  // telemetry covers only the measured run
  rc.trace = setup.trace;
  RunResult rr = run_gfsl_paired(sl, ops, rc, mem);
  if (setup.metrics != nullptr) sample_structure_gauges(*setup.metrics, sl);

  const model::Occupancy occ_calc;
  const auto occ = occ_calc.compute(model::kGfslKernel, setup.warps_per_block);
  apply_gfsl_contention(rr.kernel, occ, contention_inputs(wl),
                        setup.team_size);
  const model::CostModel cm;
  m.detail = cm.throughput(rr.kernel, occ, /*teams_per_warp=*/2);
  m.model_mops = m.detail.mops;
  m.sim_mops = rr.sim_wall_seconds > 0
                   ? static_cast<double>(ops.size()) / rr.sim_wall_seconds / 1e6
                   : 0.0;
  m.oom = rr.out_of_memory;
  m.kernel = rr.kernel;
  m.team_totals = rr.team_totals;
  m.avg_chunks_per_traversal = sl.avg_chunks_per_traversal();
  return m;
}

Repeated repeat_gfsl_dual(WorkloadConfig wl, const StructureSetup& setup,
                          int reps) {
  Repeated out;
  RunStats stats;
  for (int r = 0; r < reps; ++r) {
    wl.seed = derive_seed(wl.seed, static_cast<std::uint64_t>(r) + 1);
    const auto m = measure_gfsl_dual(wl, setup);
    out.oom = out.oom || m.oom;
    stats.add(m.model_mops);
    out.samples.push_back(m.model_mops);
  }
  out.mops = stats.summarize();
  return out;
}

Repeated repeat_gfsl(WorkloadConfig wl, const StructureSetup& setup,
                     int reps) {
  Repeated out;
  RunStats stats;
  for (int r = 0; r < reps; ++r) {
    wl.seed = derive_seed(wl.seed, static_cast<std::uint64_t>(r) + 1);
    const auto m = measure_gfsl(wl, setup);
    out.oom = out.oom || m.oom;
    stats.add(m.model_mops);
    out.samples.push_back(m.model_mops);
  }
  out.mops = stats.summarize();
  return out;
}

Repeated repeat_mc(WorkloadConfig wl, const StructureSetup& setup, int reps) {
  Repeated out;
  RunStats stats;
  for (int r = 0; r < reps; ++r) {
    wl.seed = derive_seed(wl.seed, static_cast<std::uint64_t>(r) + 1);
    const auto m = measure_mc(wl, setup);
    out.oom = out.oom || m.oom;
    stats.add(m.model_mops);
    out.samples.push_back(m.model_mops);
  }
  out.mops = stats.summarize();
  return out;
}

}  // namespace gfsl::harness
