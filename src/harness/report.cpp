#include "harness/report.h"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace gfsl::harness {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << " |\n";
  };
  line(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) line(row);
}

void Table::print_csv(std::ostream& os) const {
  // RFC 4180: cells containing a comma, quote, or line break are wrapped in
  // double quotes, with embedded quotes doubled.
  auto cell = [&](const std::string& s) {
    if (s.find_first_of(",\"\r\n") == std::string::npos) {
      os << s;
      return;
    }
    os << '"';
    for (const char ch : s) {
      if (ch == '"') os << '"';
      os << ch;
    }
    os << '"';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      cell(cells[c]);
    }
    os << '\n';
  };
  line(header_);
  for (const auto& row : rows_) line(row);
}

std::string fmt(double v, int precision) {
  if (std::isnan(v)) return "-";
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

std::string fmt_ci(double mean, double ci, int precision) {
  return fmt(mean, precision) + " ±" + fmt(ci, precision);
}

std::string fmt_mean_stddev(double mean, double stddev, int precision) {
  return fmt(mean, precision) + " ±σ" + fmt(stddev, precision);
}

std::string fmt_range(std::uint64_t range) {
  if (range % 1'000'000 == 0) return std::to_string(range / 1'000'000) + "M";
  if (range % 1'000 == 0) return std::to_string(range / 1'000) + "K";
  return std::to_string(range);
}

std::string fmt_pct(double frac, int precision) {
  return fmt(frac * 100.0, precision) + "%";
}

}  // namespace gfsl::harness
