// Exhaustive crash-point sweep: the strongest robustness harness in the repo.
//
// One seeded multi-team run under StepScheduler::Deterministic defines a
// reference interleaving with S global yield steps.  The sweep then re-runs
// that exact schedule S times, killing the victim team at yield step
// 1, 2, ..., S — so the victim dies at *every* reachable point of the
// reference run, including inside insert-shift, erase-shift, split, merge
// and updateDownPtrs critical sections.  After each kill:
//
//   * survivors keep running: expired-lease probing (core/recovery.cpp)
//     lets them roll the victim's half-done mutation forward or back and
//     steal its locks, so they finish their own operations;
//   * a watchdog (kill_all_at) converts any livelock into TeamKilled on a
//     survivor, which the harness reports as a hang;
//   * a medic team (a fresh id outside the scheduled participant set — never
//     the victim's id, which would resurrect its lease epoch mid-history)
//     runs recover_all_expired() to release any leftover dead locks nobody
//     bumped into;
//   * validate() must pass and the recorded history must be per-key
//     linearizable, with the victim's in-flight op treated as *optional*
//     (HistoryEvent::crashed — recovery may have rolled it either way).
//
// The sweep is deterministic end to end: a failure at kill step s reproduces
// with the same (wl_seed, sched_seed, s) triple.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/metrics.h"

namespace gfsl::harness {

struct CrashSweepConfig {
  int workers = 3;      // scheduled teams, ids 0..workers-1
  int team_size = 8;    // chunk size = team size
  int victim = 0;       // team killed at the swept step
  std::uint64_t ops = 96;
  std::uint64_t key_range = 48;
  std::uint64_t wl_seed = 1;
  std::uint64_t sched_seed = 1;
  std::uint32_t pool_chunks = 1u << 14;
  std::uint64_t stride = 1;  // kill at every stride-th step (1 = exhaustive)
  // Watchdog step = baseline_steps * factor + slack.  Survivors still
  // running by then are livelocked; the harness reports a hang.
  std::uint64_t watchdog_factor = 8;
  std::uint64_t watchdog_slack = 4096;
  // Attach an EpochManager: kills then also land inside retire/reclaim
  // spans, the medic must force-quiesce the victim's pin and adopt its
  // limbo, and validation additionally classifies limbo/free chunks.
  bool with_epochs = false;
  // Attach a SnapshotManager, bulk-load `prefill` pairs, and hold a snapshot
  // of them across the whole run: wherever the kill lands (and whichever way
  // recovery rolls the victim's half-done mutation), every post-run
  // scan_at() over that snapshot must still return exactly the prefill —
  // snapshot isolation is not allowed to depend on the crash-repair path.
  // Failures dump a `snapshot_mismatch` postmortem bundle.
  bool with_snapshots = false;
  std::uint64_t prefill = 24;  // bulk-loaded pairs frozen under the snapshot
  // Batched dispatch (DESIGN.md §10): the whole op array becomes ONE batch —
  // key-sorted, sharded, drained through a stealing ShardQueue — so kills
  // land inside shard execution: mid-shard with a warm cursor, between the
  // per-shard pin and its refresh, inside a stolen shard.  Survivors keep
  // pulling shards; the victim's popped-but-unfinished shard stays partially
  // executed, which the history check must absorb (crashed op = optional,
  // unexecuted ops were never logged).
  bool batched = false;
  std::size_t batch_shard_ops = 0;  // plan_shards granularity; 0 = auto
  // Attach a core::ForesightIndex (DESIGN.md §14): searches jump through
  // published hints, so kills land between a hint's publication and its
  // consultation, inside rebuild walks, and between mark_dirty sites and the
  // republish they schedule.  Correctness must not depend on hint freshness —
  // every stale hint has to fall back to the classic descent, and the sweep's
  // validate + linearizability checks run unchanged.
  bool with_foresight = false;
  // Non-empty: arm clockless flight-recorder rings on every team (including
  // the medic) and, when a run fails — watchdog stall, validate failure,
  // history violation — drop a gfsl-postmortem-v1 bundle into this
  // directory (which must exist).  The rings are cheap enough to keep armed
  // across a full sweep; the dump carries the repro triple in its info map.
  std::string postmortem_dir;
};

struct CrashRunResult {
  bool ok = true;
  std::string error;
  bool hang = false;           // a survivor hit the watchdog
  bool victim_killed = false;  // the kill actually landed (victim was alive)
  bool snapshot_checked = false;  // the held snapshot was scanned and matched
  std::uint64_t steps = 0;     // global yield steps the run consumed
  int locks_recovered = 0;     // dead locks released by the post-run medic
};

struct CrashSweepResult {
  bool ok = true;
  std::string error;
  std::uint64_t baseline_steps = 0;
  std::uint64_t runs = 0;
  std::uint64_t kills_landed = 0;
  std::uint64_t medic_recoveries = 0;  // sum of locks_recovered over runs
  std::uint64_t snapshot_checks = 0;   // held-snapshot scans that matched
  std::uint64_t failed_at_step = 0;    // kill step of the first failure
};

/// One run of the configured workload with the victim killed at the first
/// yield at/after `kill_step` and every team killed at/after
/// `watchdog_step` (pass UINT64_MAX for either to disable).  If `reg` is
/// non-null, teams (and the medic, shard `workers`) record into it; it must
/// have at least workers+1 shards.
CrashRunResult run_crash_at(const CrashSweepConfig& cfg,
                            std::uint64_t kill_step,
                            std::uint64_t watchdog_step,
                            obs::MetricsRegistry* reg = nullptr);

/// The full sweep: a baseline run to count yield steps, then one run per
/// kill step.  Stops at the first failing step.  If `progress` is non-null,
/// prints a coarse progress line every ~10% of the sweep.
CrashSweepResult run_crash_sweep(const CrashSweepConfig& cfg,
                                 obs::MetricsRegistry* reg = nullptr,
                                 std::FILE* progress = nullptr);

}  // namespace gfsl::harness
