// Concurrent-history recording and checking.
//
// Full linearizability checking is NP-hard in general, but for a *set* the
// per-key projection is enough and checkable in near-linear time: project
// the history onto each key and verify there exists a linearization of that
// key's operations — each op takes effect at one instant inside its
// [invoke, response] interval, inserts/deletes alternate starting from the
// key's initial presence, and every result is consistent with the state at
// its linearization point.
//
// The checker uses the standard interval-order argument: sort the key's
// operations by invocation time; a witness order must respect real-time
// precedence (op A wholly before op B ⇒ A linearizes first), so a greedy
// search over the overlap groups suffices for the small per-key histories
// the stress tests generate.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace gfsl::harness {

struct HistoryEvent {
  std::uint64_t invoke = 0;    // monotonic tick at invocation
  std::uint64_t response = 0;  // monotonic tick at response
  OpKind kind = OpKind::Contains;
  Key key = 0;
  bool result = false;
  int worker = -1;
  // A crashed op never responded: its team was killed mid-flight.  The op's
  // effect is *optional* (it may have been rolled forward or rolled back by
  // recovery) and its interval is open-ended — recovery may complete it at
  // any later point — so `response` is UINT64_MAX and `result` carries no
  // information.
  bool crashed = false;
};

/// Thread-safe append-only history log.  Workers call begin_op()/end_op()
/// around every operation; ticks come from one shared atomic counter, so
/// real-time precedence between workers is captured exactly.
class HistoryLog {
 public:
  explicit HistoryLog(std::size_t reserve_per_worker, int workers);

  std::uint64_t begin_op() { return clock_.fetch_add(1, std::memory_order_acq_rel); }

  void end_op(int worker, std::uint64_t invoke_tick, OpKind kind, Key key,
              bool result) {
    const std::uint64_t resp = clock_.fetch_add(1, std::memory_order_acq_rel);
    auto& lane = per_worker_[static_cast<std::size_t>(worker)];
    lane.push_back(HistoryEvent{invoke_tick, resp, kind, key, result, worker});
  }

  /// Record an op whose team was killed before it responded.  Call from the
  /// worker's TeamKilled handler (or after join) — same thread-safety rules
  /// as end_op: one writer per worker lane.
  void crash_op(int worker, std::uint64_t invoke_tick, OpKind kind, Key key) {
    auto& lane = per_worker_[static_cast<std::size_t>(worker)];
    lane.push_back(HistoryEvent{invoke_tick, UINT64_MAX, kind, key,
                                /*result=*/false, worker, /*crashed=*/true});
  }

  /// Merge all workers' events (call at quiescence).
  std::vector<HistoryEvent> merged() const;

 private:
  std::atomic<std::uint64_t> clock_{0};
  std::vector<std::vector<HistoryEvent>> per_worker_;
};

struct CheckResult {
  bool ok = true;
  std::string error;          // description of the first violation
  std::uint64_t keys_checked = 0;
  std::uint64_t events_checked = 0;
};

/// Check per-key sequential consistency with real-time order (set
/// semantics).  `initially_present` lists keys in the structure before the
/// history began; `finally_present` is the quiescent post-state (checked
/// against each key's final linearized state).
CheckResult check_history(const std::vector<HistoryEvent>& events,
                          const std::vector<Key>& initially_present,
                          const std::vector<Key>& finally_present);

}  // namespace gfsl::harness
