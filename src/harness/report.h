// Plain-text table/CSV rendering for bench output.  Every bench binary
// prints the same rows/series as the corresponding thesis table or figure,
// side by side with the paper's reference values where the thesis states
// them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gfsl::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double ("12.3"), with "-" for NaN.
std::string fmt(double v, int precision = 1);
/// "12.3 ±0.4" mean with CI half-width.
std::string fmt_ci(double mean, double ci, int precision = 1);
/// "12.3 ±σ0.4" mean with sample standard deviation — used where the
/// spread itself (not a confidence bound) is the story, e.g. the noise
/// window the bench_compare gate reasons about.
std::string fmt_mean_stddev(double mean, double stddev, int precision = 1);
/// Human-readable range ("10K", "1M").
std::string fmt_range(std::uint64_t range);
/// Percentage ("48.8%").
std::string fmt_pct(double frac, int precision = 1);

}  // namespace gfsl::harness
