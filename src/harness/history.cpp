#include "harness/history.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

namespace gfsl::harness {

HistoryLog::HistoryLog(std::size_t reserve_per_worker, int workers) {
  per_worker_.resize(static_cast<std::size_t>(workers));
  for (auto& lane : per_worker_) lane.reserve(reserve_per_worker);
}

std::vector<HistoryEvent> HistoryLog::merged() const {
  std::vector<HistoryEvent> out;
  std::size_t total = 0;
  for (const auto& lane : per_worker_) total += lane.size();
  out.reserve(total);
  for (const auto& lane : per_worker_) {
    out.insert(out.end(), lane.begin(), lane.end());
  }
  std::sort(out.begin(), out.end(),
            [](const HistoryEvent& a, const HistoryEvent& b) {
              return a.invoke < b.invoke;
            });
  return out;
}

namespace {

/// Wing-Gong style DFS over one key's projected history.
class KeyChecker {
 public:
  KeyChecker(std::vector<const HistoryEvent*> ev, bool initial)
      : ev_(std::move(ev)), initial_(initial) {}

  bool check(bool final_present) {
    done_.assign(ev_.size(), false);
    memo_.clear();
    budget_ = 2'000'000;
    return dfs(initial_, 0, final_present);
  }

  bool budget_exhausted() const { return budget_ <= 0; }

 private:
  static bool applies(const HistoryEvent& e, bool present, bool* next) {
    switch (e.kind) {
      case OpKind::Insert:
        if (e.result == present) return false;  // true iff it was absent
        *next = present || e.result;
        return true;
      case OpKind::Delete:
        if (e.result != present) return false;  // true iff it was present
        *next = present && !e.result;
        return true;
      case OpKind::Contains:
        if (e.result != present) return false;
        *next = present;
        return true;
    }
    return false;
  }

  std::string state_key(bool present) const {
    std::string s(done_.size() + 1, '0');
    for (std::size_t i = 0; i < done_.size(); ++i) {
      if (done_[i]) s[i] = '1';
    }
    s.back() = present ? 'P' : 'A';
    return s;
  }

  bool dfs(bool present, std::size_t n_done, bool final_present) {
    if (--budget_ <= 0) return false;
    if (n_done == ev_.size()) return present == final_present;
    const std::string key = state_key(present);
    if (!memo_.insert(key).second) return false;  // visited, failed

    // Candidates: unlinearized events not strictly preceded (in real time)
    // by another unlinearized event.
    std::uint64_t min_response = UINT64_MAX;
    for (std::size_t i = 0; i < ev_.size(); ++i) {
      if (!done_[i]) min_response = std::min(min_response, ev_[i]->response);
    }
    for (std::size_t i = 0; i < ev_.size(); ++i) {
      if (done_[i]) continue;
      if (ev_[i]->invoke > min_response) continue;  // some op wholly precedes
      if (ev_[i]->crashed) {
        // A crashed op's result is unknown and its effect optional: try the
        // "never took effect" branch and, for mutators, the "took effect"
        // branch.  (Its response is UINT64_MAX, so it never gates others.)
        done_[i] = true;
        if (dfs(present, n_done + 1, final_present)) return true;
        bool next = present;
        if (ev_[i]->kind == OpKind::Insert) next = true;
        if (ev_[i]->kind == OpKind::Delete) next = false;
        if (next != present && dfs(next, n_done + 1, final_present)) {
          return true;
        }
        done_[i] = false;
        continue;
      }
      bool next = present;
      if (!applies(*ev_[i], present, &next)) continue;
      done_[i] = true;
      if (dfs(next, n_done + 1, final_present)) return true;
      done_[i] = false;
    }
    return false;
  }

  std::vector<const HistoryEvent*> ev_;
  bool initial_;
  std::vector<bool> done_;
  std::unordered_set<std::string> memo_;
  long long budget_ = 0;
};

}  // namespace

CheckResult check_history(const std::vector<HistoryEvent>& events,
                          const std::vector<Key>& initially_present,
                          const std::vector<Key>& finally_present) {
  CheckResult res;
  const std::set<Key> init(initially_present.begin(), initially_present.end());
  const std::set<Key> fin(finally_present.begin(), finally_present.end());

  std::map<Key, std::vector<const HistoryEvent*>> by_key;
  for (const auto& e : events) by_key[e.key].push_back(&e);

  // Keys that appear in the final state but were never touched must have
  // been there initially.
  for (const Key k : fin) {
    if (by_key.count(k) == 0 && init.count(k) == 0) {
      res.ok = false;
      res.error = "key " + std::to_string(k) +
                  " appeared in the final state without any operation";
      return res;
    }
  }
  for (const Key k : init) {
    if (by_key.count(k) == 0 && fin.count(k) == 0) {
      res.ok = false;
      res.error = "key " + std::to_string(k) +
                  " vanished from the final state without any operation";
      return res;
    }
  }

  for (auto& [k, ev] : by_key) {
    std::sort(ev.begin(), ev.end(),
              [](const HistoryEvent* a, const HistoryEvent* b) {
                return a->invoke < b->invoke;
              });
    KeyChecker checker(ev, init.count(k) > 0);
    res.events_checked += ev.size();
    ++res.keys_checked;
    if (!checker.check(fin.count(k) > 0)) {
      res.ok = false;
      res.error = checker.budget_exhausted()
                      ? "search budget exhausted for key " + std::to_string(k)
                      : "no valid linearization for key " + std::to_string(k) +
                            " (" + std::to_string(ev.size()) + " events)";
      return res;
    }
  }
  return res;
}

}  // namespace gfsl::harness
