// Corruption sweep: one injected fault per run, swept across every durable
// section and fault kind (DESIGN.md §15).
//
// The crash sweeps (crash_sweep.h, proc_crash_sweep.h) prove the structure
// survives losing a *writer*; this harness proves it survives losing a
// *word*.  Each run of the matrix  section x kind x seed  builds a seeded
// reference structure, injects exactly one deterministic fault through the
// device::FaultPlane, and then demands the detect/repair/quarantine
// machinery resolve it with zero silent wrong answers:
//
//   * kChunkData runs in memory: a workload is replayed against a std::map
//     model with the IntegritySidecar (plus epochs + snapshots, so bottom
//     repair has version chains to restore from) attached, a sealed live
//     chunk is picked by the seed and one of its data words is damaged, and
//     a scrub pass must either repair the chunk back to the model's exact
//     contents or quarantine it — in which case every missing key must fall
//     inside a reported LostRange and no key may ever come back wrong.
//     kStuckWord additionally re-asserts the corrupt value after the first
//     repair and requires the second scrub pass to escalate to quarantine.
//
//   * kFreeList / kIntents / kSuperblock / kGenerations run against a
//     file-backed PersistRegion: a clean image is written and closed, the
//     section's live window is damaged in a fresh attach, and recover()
//     must either converge to the exact pre-close contents (free-list and
//     gauge state are rebuilt wholesale, generation damage is triaged,
//     garbage intents roll back) or — superblock damage to a protected
//     word — refuse the image with a typed rejection instead of serving it.
//
//   * kDroppedBarrier arms the plane live: N persist barriers are silently
//     skipped during the workload.  Under the MAP_SHARED no-machine-crash
//     model a dropped fence loses nothing, so the run must stay exactly
//     clean — the cell pins the fault model's boundary.
//
// Everything is a pure function of (cfg, section, kind, seed): any failure
// prints a one-line `--corrupt section:kind:seed` repro.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "device/fault_plane.h"

namespace gfsl::harness {

struct CorruptSweepConfig {
  int team_size = 8;
  std::uint64_t ops = 400;       // workload length per run
  std::uint64_t key_range = 96;  // small: chunks stay busy, chains stay deep
  std::uint64_t seeds = 6;       // injection seeds per (section, kind) cell
  std::uint64_t first_seed = 0;  // cell seeds run [first_seed, first_seed+seeds)
  std::uint64_t base_seed = 0x5EED5EEDull;
  std::uint32_t pool_chunks = 1u << 12;
  // Region files for the durable-section cells live here (must exist;
  // removed again on success).
  std::string work_dir = ".";
  // Non-empty: dump a gfsl-postmortem-v1 bundle on the first failure.
  std::string postmortem_dir;
  // Empty = sweep everything; non-empty = restrict the matrix (the CLI's
  // `--corrupt section:kind:seed` single-cell form).
  std::vector<device::FaultSection> sections;
  std::vector<device::FaultKind> kinds;
};

struct CorruptSweepResult {
  bool ok = true;
  std::string error;  // first failure, with its --corrupt repro line
  std::uint64_t runs = 0;
  std::uint64_t injected = 0;        // faults that actually changed a word
  std::uint64_t detected = 0;        // seal mismatches / typed rejections
  std::uint64_t repaired = 0;        // chunks rebuilt in place by scrub
  std::uint64_t quarantined = 0;     // chunks evacuated/zombified by scrub
  std::uint64_t keys_lost = 0;       // all inside reported blast radii
  std::uint64_t rejected_typed = 0;  // recover() refused a damaged image
  std::uint64_t recoveries = 0;      // recover() convergences verified
  std::uint64_t barriers_dropped = 0;
};

/// The full matrix, stopping at the first failing cell.  `progress`, when
/// non-null, gets one line per (section, kind) cell.
CorruptSweepResult run_corrupt_sweep(const CorruptSweepConfig& cfg,
                                     std::FILE* progress = nullptr);

}  // namespace gfsl::harness
