// Concurrent kernel runner: executes an operation array against GFSL (one
// host thread per team) or M&C (one host thread per lane stream), collecting
// the event counts the cost model consumes.
#pragma once

#include <cstdint>
#include <vector>

#include "baseline/mc_skiplist.h"
#include "common/types.h"
#include "core/gfsl.h"
#include "device/device_memory.h"
#include "model/cost_model.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"
#include "sched/step_scheduler.h"
#include "simt/team.h"

namespace gfsl::harness {

struct RunConfig {
  int num_workers = 8;     // concurrent teams (GFSL) / op streams (M&C)
  std::uint64_t seed = 1;
  sched::StepScheduler* scheduler = nullptr;  // optional deterministic mode
  bool flush_cache_before = true;  // a fresh kernel starts with a cold L2
  /// Optional per-op result array — the kernel's output buffer (§5.1).
  /// Resized to ops.size(); entry i is the boolean result of ops[i].
  std::vector<std::uint8_t>* results = nullptr;
  /// Optional telemetry sinks.  Worker w writes metrics->shard(w) (the
  /// registry must have at least num_workers shards) and appends to
  /// trace->team(w); both must outlive the run.  Null = zero overhead.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceSession* trace = nullptr;
};

struct RunResult {
  model::KernelRun kernel;        // measured events for the cost model
  simt::TeamCounters team_totals; // GFSL only
  double sim_wall_seconds = 0.0;  // host time spent simulating (not modeled)
  std::uint64_t ops_true = 0;     // operations that returned true
  bool out_of_memory = false;     // pool exhausted mid-run (M&C at big ranges)
};

/// Execute `ops` against a GFSL instance with `cfg.num_workers` teams.
RunResult run_gfsl(core::Gfsl& sl, const std::vector<Op>& ops,
                   const RunConfig& cfg, device::DeviceMemory& mem);

/// Batched execution mode (DESIGN.md §10).
struct BatchRunOptions {
  /// Ops per kernel launch; 0 = the whole op array as one batch.  Each batch
  /// is key-sorted, sharded and drained by all teams (with stealing) before
  /// the next one starts, mirroring back-to-back kernel launches.
  std::size_t batch_size = 1024;
  /// Shard granularity handed to sched::plan_shards; 0 = auto.
  std::size_t target_shard_ops = 0;
};

/// Execute `ops` in kernel-style batches: sort + shard each batch, teams pull
/// shards from a stealing work queue and carry a warm descent cursor across
/// each shard, pinning their epoch once per shard.  Semantics match
/// run_gfsl except for op interleaving: per-key submission order is
/// preserved (stable sort + shards never split a key), so outcomes are
/// deterministic for any scheduler.  `batch_out`, when non-null, receives
/// submission-ordered BatchOpStatus codes and the batch-level stats.
RunResult run_gfsl_batched(core::Gfsl& sl, const std::vector<Op>& ops,
                           const RunConfig& cfg, device::DeviceMemory& mem,
                           const BatchRunOptions& opts = {},
                           core::BatchResult* batch_out = nullptr);

/// Execute `ops` against the M&C baseline.
RunResult run_mc(baseline::McSkiplist& sl, const std::vector<Op>& ops,
                 const RunConfig& cfg, device::DeviceMemory& mem);

/// Sub-warp-teams extension (thesis Chapter 7): pairs of half-warp teams
/// share a warp under round-robin lockstep alternation, so one warp carries
/// two concurrent operations.  Spinning teams yield every iteration, which
/// is what makes the scheme deadlock-free (a spinner can never starve its
/// warp-mate).  `cfg.num_workers` must be even; `sl.team_size()` should be
/// 16 (two teams fill one 32-lane warp).
RunResult run_gfsl_paired(core::Gfsl& sl, const std::vector<Op>& ops,
                          const RunConfig& cfg, device::DeviceMemory& mem);

}  // namespace gfsl::harness
