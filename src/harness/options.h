// Minimal command-line option parsing for the CLI driver and tools.
// Supports --flag, --key=value and --key value forms, with typed accessors
// and unknown-option detection.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace gfsl::harness {

class Options {
 public:
  /// Parse argv.  Non-option arguments are collected as positionals.
  /// Throws std::invalid_argument on malformed input ("--" without a name).
  static Options parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  std::string get(const std::string& name, const std::string& fallback) const;
  std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// Names that were provided but never queried — for catching typos.
  std::vector<std::string> unknown(const std::set<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positionals_;
};

}  // namespace gfsl::harness
