// M&C baseline: the lock-free skiplist Misra & Chaudhuri ported to the GPU
// (Chapter 5; [MC12b]).  One *thread* executes one operation — the classic
// CPU execution model whose uncoalesced node hops, per-thread local path
// arrays and warp divergence are exactly what GFSL is designed to avoid.
//
// The algorithm is the standard lock-free skiplist (Pugh/Fraser/
// Herlihy-Shavit): per-key towers of marked next pointers, CAS-based
// insertion and logical-then-physical deletion.  Tower heights are drawn
// host-side with probability p_key, matching the paper's input format ("a
// value indicating level to which each key should be inserted", §5.1).
//
// Every node access is routed through the device memory model as a
// *single-lane* (uncoalesced) transaction, and an McContext aggregates
// per-op hop counts into warp epochs: a warp of 32 independent operations
// advances at the pace of its slowest lane (SIMT divergence, §2.2).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "device/device_memory.h"
#include "sched/step_scheduler.h"

namespace gfsl::baseline {

/// Per-thread execution context: divergence accounting + scheduler identity.
class McContext {
 public:
  McContext(int thread_id, int lanes_per_warp = 32)
      : id_(thread_id), lanes_(lanes_per_warp) {}

  int id() const { return id_; }

  void hop() { ++op_hops_; }
  void cas_attempt(bool ok) {
    ++cas_ops_;
    if (!ok) ++cas_failures_;
  }
  void restart() { ++restarts_; }

  /// Close out one operation: fold its hop count into the current warp
  /// group (the warp's cost is the max over its 32 lanes).
  void end_op() {
    total_hops_ += op_hops_;
    if (op_hops_ > group_max_) group_max_ = op_hops_;
    op_hops_ = 0;
    ++ops_;
    if (++group_n_ == lanes_) flush_group();
  }

  /// Total serialized memory epochs experienced by this thread's warps.
  std::uint64_t warp_epochs() {
    if (group_n_ > 0) flush_group();
    return warp_epochs_;
  }

  std::uint64_t ops() const { return ops_; }
  std::uint64_t total_hops() const { return total_hops_; }
  std::uint64_t cas_ops() const { return cas_ops_; }
  std::uint64_t cas_failures() const { return cas_failures_; }
  std::uint64_t restarts() const { return restarts_; }

 private:
  void flush_group() {
    warp_epochs_ += group_max_;
    group_max_ = 0;
    group_n_ = 0;
  }

  int id_;
  int lanes_;
  std::uint64_t op_hops_ = 0;
  std::uint64_t group_max_ = 0;
  int group_n_ = 0;
  std::uint64_t warp_epochs_ = 0;
  std::uint64_t total_hops_ = 0;
  std::uint64_t ops_ = 0;
  std::uint64_t cas_ops_ = 0;
  std::uint64_t cas_failures_ = 0;
  std::uint64_t restarts_ = 0;
};

class McSkiplist {
 public:
  struct Config {
    std::uint32_t pool_slots = 1u << 24;  // 8-byte slots in the node pool
    int max_height = 32;
    double p_key = 0.5;  // §5.2: "the best results were received for 0.5"
  };

  McSkiplist(const Config& cfg, device::DeviceMemory* mem,
             sched::StepScheduler* scheduler = nullptr);

  bool contains(McContext& ctx, Key k);
  bool insert(McContext& ctx, Key k, Value v, int height);
  bool erase(McContext& ctx, Key k);

  /// Draw a tower height host-side at p_key (used by the workload gen).
  int random_height(Xoshiro256ss& rng) const;

  const Config& config() const { return cfg_; }
  std::uint32_t slots_allocated() const {
    const auto v = next_slot_.load(std::memory_order_relaxed);
    return v < cfg_.pool_slots ? v : cfg_.pool_slots;
  }

  /// Host-side bulk construction from sorted, distinct pairs with heights
  /// drawn at p_key (the untimed initial-structure setup of §5.1).
  /// Replaces the current contents.  Quiescent only.
  void bulk_load(const std::vector<std::pair<Key, Value>>& sorted_pairs,
                 std::uint64_t seed);

  // --- quiescent inspection ---
  std::vector<std::pair<Key, Value>> collect() const;
  std::uint64_t size() const { return collect().size(); }
  /// Checks bottom-level sortedness and level-list consistency.
  bool validate(std::string* error = nullptr) const;

 private:
  using NodeRef = std::uint32_t;
  static constexpr NodeRef kNull = 0xFFFFFFFFu;
  static constexpr std::uint64_t kMark = 1ull << 32;

  // Node layout in the slot pool:
  //   slot s     : header  (key | value)
  //   slot s + 1 : meta    (tower height)
  //   slot s+2+i : next pointer for level i  (ref in low 32 bits, mark bit 32)
  NodeRef alloc_node(Key k, Value v, int height, NodeRef init_next);

  std::atomic<std::uint64_t>& slot(std::uint32_t s) { return slots_[s]; }
  const std::atomic<std::uint64_t>& slot(std::uint32_t s) const {
    return slots_[s];
  }
  std::uint64_t slot_addr(std::uint32_t s) const {
    return static_cast<std::uint64_t>(s) * 8u;
  }

  Key node_key(McContext& ctx, NodeRef n);
  Value node_value(McContext& ctx, NodeRef n);
  int node_height(NodeRef n) const;
  std::pair<NodeRef, bool> read_next(McContext& ctx, NodeRef n, int level);
  bool cas_next(McContext& ctx, NodeRef n, int level, NodeRef exp_ref,
                bool exp_mark, NodeRef new_ref, bool new_mark);

  /// Herlihy-Shavit find: fills preds/succs per level, snipping marked nodes.
  bool find(McContext& ctx, Key k, NodeRef* preds, NodeRef* succs);

  void sync_point(McContext& ctx) {
    if (sched_ != nullptr) sched_->yield(ctx.id());
  }

  Config cfg_;
  device::DeviceMemory* mem_;
  sched::StepScheduler* sched_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
  std::atomic<std::uint32_t> next_slot_;
  NodeRef head_;
  NodeRef tail_;
};

}  // namespace gfsl::baseline
