#include "baseline/mc_skiplist.h"

#include <new>
#include <stdexcept>
#include <string>

namespace gfsl::baseline {

namespace {
constexpr std::uint64_t pack_next(std::uint32_t ref, bool mark) {
  return static_cast<std::uint64_t>(ref) | (mark ? (1ull << 32) : 0ull);
}
constexpr std::uint32_t next_ref(std::uint64_t w) {
  return static_cast<std::uint32_t>(w & 0xFFFFFFFFull);
}
constexpr bool next_mark(std::uint64_t w) { return (w & (1ull << 32)) != 0; }
}  // namespace

McSkiplist::McSkiplist(const Config& cfg, device::DeviceMemory* mem,
                       sched::StepScheduler* scheduler)
    : cfg_(cfg),
      mem_(mem),
      sched_(scheduler),
      slots_(new std::atomic<std::uint64_t>[cfg.pool_slots]),
      next_slot_(0) {
  if (mem_ == nullptr) throw std::invalid_argument("DeviceMemory required");
  if (cfg_.max_height < 1 || cfg_.max_height > 32) {
    throw std::invalid_argument("max_height must be in [1, 32]");
  }
  tail_ = alloc_node(KEY_INF, 0, cfg_.max_height, kNull);
  head_ = alloc_node(KEY_NEG_INF, 0, cfg_.max_height, tail_);
}

McSkiplist::NodeRef McSkiplist::alloc_node(Key k, Value v, int height,
                                           NodeRef init_next) {
  const std::uint32_t need = 2u + static_cast<std::uint32_t>(height);
  const std::uint32_t s = next_slot_.fetch_add(need, std::memory_order_relaxed);
  if (s + need > cfg_.pool_slots) {
    next_slot_.fetch_sub(need, std::memory_order_relaxed);
    throw std::bad_alloc();  // M&C "runs out of memory for larger structures"
  }
  slots_[s].store(make_kv(k, v), std::memory_order_relaxed);
  slots_[s + 1].store(static_cast<std::uint64_t>(height),
                      std::memory_order_relaxed);
  for (int i = 0; i < height; ++i) {
    slots_[s + 2 + static_cast<std::uint32_t>(i)].store(
        pack_next(init_next, false), std::memory_order_release);
  }
  return s;
}

Key McSkiplist::node_key(McContext& ctx, NodeRef n) {
  sync_point(ctx);
  mem_->lane_read(slot_addr(n), 8);
  return kv_key(slot(n).load(std::memory_order_acquire));
}

Value McSkiplist::node_value(McContext& ctx, NodeRef n) {
  sync_point(ctx);
  mem_->lane_read(slot_addr(n), 8);
  return kv_value(slot(n).load(std::memory_order_acquire));
}

int McSkiplist::node_height(NodeRef n) const {
  return static_cast<int>(slots_[n + 1].load(std::memory_order_relaxed));
}

std::pair<McSkiplist::NodeRef, bool> McSkiplist::read_next(McContext& ctx,
                                                           NodeRef n,
                                                           int level) {
  sync_point(ctx);
  const std::uint32_t s = n + 2 + static_cast<std::uint32_t>(level);
  mem_->lane_read(slot_addr(s), 8);
  ctx.hop();
  const std::uint64_t w = slot(s).load(std::memory_order_acquire);
  return {next_ref(w), next_mark(w)};
}

bool McSkiplist::cas_next(McContext& ctx, NodeRef n, int level,
                          NodeRef exp_ref, bool exp_mark, NodeRef new_ref,
                          bool new_mark) {
  sync_point(ctx);
  const std::uint32_t s = n + 2 + static_cast<std::uint32_t>(level);
  mem_->atomic_rmw(slot_addr(s));
  std::uint64_t expected = pack_next(exp_ref, exp_mark);
  const bool ok = slot(s).compare_exchange_strong(
      expected, pack_next(new_ref, new_mark), std::memory_order_acq_rel,
      std::memory_order_acquire);
  ctx.cas_attempt(ok);
  return ok;
}

int McSkiplist::random_height(Xoshiro256ss& rng) const {
  int h = 1;
  while (h < cfg_.max_height && rng.bernoulli(cfg_.p_key)) ++h;
  return h;
}

bool McSkiplist::find(McContext& ctx, Key k, NodeRef* preds, NodeRef* succs) {
  // Herlihy-Shavit `find`: descend while physically unlinking marked nodes.
retry:
  NodeRef pred = head_;
  NodeRef curr = kNull;
  for (int level = cfg_.max_height - 1; level >= 0; --level) {
    curr = read_next(ctx, pred, level).first;
    for (;;) {
      auto [succ, marked] = read_next(ctx, curr, level);
      while (marked) {
        if (!cas_next(ctx, pred, level, curr, false, succ, false)) {
          ctx.restart();
          goto retry;
        }
        curr = read_next(ctx, pred, level).first;
        std::tie(succ, marked) = read_next(ctx, curr, level);
      }
      if (node_key(ctx, curr) < k) {
        pred = curr;
        curr = succ;
      } else {
        break;
      }
    }
    preds[level] = pred;
    succs[level] = curr;
  }
  return node_key(ctx, curr) == k;
}

bool McSkiplist::contains(McContext& ctx, Key k) {
  // Wait-free traversal: jump over marked nodes without snipping.
  NodeRef pred = head_;
  NodeRef curr = kNull;
  for (int level = cfg_.max_height - 1; level >= 0; --level) {
    curr = read_next(ctx, pred, level).first;
    for (;;) {
      auto [succ, marked] = read_next(ctx, curr, level);
      while (marked) {
        curr = succ;
        std::tie(succ, marked) = read_next(ctx, curr, level);
      }
      if (node_key(ctx, curr) < k) {
        pred = curr;
        curr = succ;
      } else {
        break;
      }
    }
  }
  const bool found = node_key(ctx, curr) == k;
  ctx.end_op();
  return found;
}

bool McSkiplist::insert(McContext& ctx, Key k, Value v, int height) {
  if (k < MIN_USER_KEY || k > MAX_USER_KEY) {
    throw std::invalid_argument("key outside the user key range");
  }
  if (height < 1) height = 1;
  if (height > cfg_.max_height) height = cfg_.max_height;

  NodeRef preds[32];
  NodeRef succs[32];
  for (;;) {
    if (find(ctx, k, preds, succs)) {
      ctx.end_op();
      return false;
    }
    const NodeRef node = alloc_node(k, v, height, kNull);
    for (int i = 0; i < height; ++i) {
      slots_[node + 2 + static_cast<std::uint32_t>(i)].store(
          pack_next(succs[i], false), std::memory_order_release);
    }
    mem_->lane_write(slot_addr(node), 8u * (2u + static_cast<std::uint32_t>(height)));

    // Linearize by linking the bottom level.
    if (!cas_next(ctx, preds[0], 0, succs[0], false, node, false)) {
      ctx.restart();
      continue;  // re-find and retry
    }
    // Link the upper levels, refreshing preds/succs as needed.
    for (int level = 1; level < height; ++level) {
      for (;;) {
        if (cas_next(ctx, preds[level], level, succs[level], false, node,
                     false)) {
          break;
        }
        find(ctx, k, preds, succs);  // refresh; also snips
        // If our node got marked at this level meanwhile, stop linking it.
        if (read_next(ctx, node, level).second) {
          level = height;  // bail out of the outer loop too
          break;
        }
        slots_[node + 2 + static_cast<std::uint32_t>(level)].store(
            pack_next(succs[level], false), std::memory_order_release);
      }
    }
    ctx.end_op();
    return true;
  }
}

bool McSkiplist::erase(McContext& ctx, Key k) {
  NodeRef preds[32];
  NodeRef succs[32];
  if (!find(ctx, k, preds, succs)) {
    ctx.end_op();
    return false;
  }
  const NodeRef victim = succs[0];
  const int height = node_height(victim);

  // Mark the upper levels top-down.
  for (int level = height - 1; level >= 1; --level) {
    auto [succ, marked] = read_next(ctx, victim, level);
    while (!marked) {
      cas_next(ctx, victim, level, succ, false, succ, true);
      std::tie(succ, marked) = read_next(ctx, victim, level);
    }
  }

  // Marking the bottom level is the linearization point; only the thread
  // whose CAS lands owns the deletion.
  auto [succ, marked] = read_next(ctx, victim, 0);
  for (;;) {
    const bool i_marked_it =
        cas_next(ctx, victim, 0, succ, false, succ, true);
    std::tie(succ, marked) = read_next(ctx, victim, 0);
    if (i_marked_it) {
      find(ctx, k, preds, succs);  // physically snip
      ctx.end_op();
      return true;
    }
    if (marked) {
      ctx.end_op();
      return false;  // somebody else deleted it first
    }
  }
}

void McSkiplist::bulk_load(const std::vector<std::pair<Key, Value>>& pairs,
                           std::uint64_t seed) {
  next_slot_.store(0, std::memory_order_relaxed);
  tail_ = alloc_node(KEY_INF, 0, cfg_.max_height, kNull);
  head_ = alloc_node(KEY_NEG_INF, 0, cfg_.max_height, tail_);

  Xoshiro256ss rng(seed);
  // §5.1: prefill keys are "inserted in a random order", so adjacent keys
  // land in scattered pool slots — the locality-free layout that makes M&C's
  // hops uncoalesced.  Allocate in a shuffled order, then link in key order.
  std::vector<std::size_t> order(pairs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  std::vector<NodeRef> node_of(pairs.size());
  std::vector<int> height_of(pairs.size());
  for (const std::size_t idx : order) {
    height_of[idx] = random_height(rng);
    node_of[idx] =
        alloc_node(pairs[idx].first, pairs[idx].second, height_of[idx], tail_);
  }

  std::vector<NodeRef> level_tail(static_cast<std::size_t>(cfg_.max_height),
                                  head_);
  for (std::size_t idx = 0; idx < pairs.size(); ++idx) {
    for (int i = 0; i < height_of[idx]; ++i) {
      slots_[level_tail[static_cast<std::size_t>(i)] + 2 +
             static_cast<std::uint32_t>(i)]
          .store(pack_next(node_of[idx], false), std::memory_order_release);
      level_tail[static_cast<std::size_t>(i)] = node_of[idx];
    }
  }
}

std::vector<std::pair<Key, Value>> McSkiplist::collect() const {
  std::vector<std::pair<Key, Value>> out;
  NodeRef cur = next_ref(slots_[head_ + 2].load(std::memory_order_acquire));
  while (cur != tail_ && cur != kNull) {
    const std::uint64_t w = slots_[cur + 2].load(std::memory_order_acquire);
    const KV header = slots_[cur].load(std::memory_order_acquire);
    if (!next_mark(w)) out.emplace_back(kv_key(header), kv_value(header));
    cur = next_ref(w);
  }
  return out;
}

bool McSkiplist::validate(std::string* error) const {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  // Bottom level strictly sorted among unmarked nodes.
  const auto pairs = collect();
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    if (pairs[i - 1].first >= pairs[i].first) {
      return fail("bottom level not strictly sorted at index " +
                  std::to_string(i));
    }
  }
  // Every level's unmarked list is a sorted sublist ending at the tail.
  for (int level = 0; level < cfg_.max_height; ++level) {
    NodeRef cur = head_;
    Key prev = KEY_NEG_INF;
    bool first = true;
    std::uint64_t steps = 0;
    while (cur != tail_) {
      if (++steps > static_cast<std::uint64_t>(cfg_.pool_slots)) {
        return fail("cycle at level " + std::to_string(level));
      }
      const std::uint64_t w =
          slots_[cur + 2 + static_cast<std::uint32_t>(level)].load(
              std::memory_order_acquire);
      const NodeRef nxt = next_ref(w);
      if (nxt == kNull) return fail("broken link at level " + std::to_string(level));
      if (!next_mark(w) && cur != head_) {
        const Key key = kv_key(slots_[cur].load(std::memory_order_acquire));
        if (!first && key <= prev) {
          return fail("level " + std::to_string(level) + " not sorted");
        }
        prev = key;
        first = false;
      }
      cur = nxt;
    }
  }
  return true;
}

}  // namespace gfsl::baseline
