// Deterministic random number generation.
//
// Two generators are provided:
//  * SplitMix64   — seed scrambler / cheap stream splitter.
//  * Xoshiro256ss — main sequential generator (xoshiro256**), used by the
//                   workload generator and by GFSL's on-device key-raising
//                   decision (§4.2.2: "randomly generated (on-device)
//                   according to p_chunk").
//
// Everything is seedable so tests and experiments are reproducible run to
// run; per-team streams are derived with SplitMix64 jumps so concurrent
// executions never share a stream.
#pragma once

#include <cstdint>

namespace gfsl {

struct SplitMix64 {
  std::uint64_t state;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
};

class Xoshiro256ss {
 public:
  explicit constexpr Xoshiro256ss(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction
  /// (bias is negligible for bound << 2^64 and irrelevant for workloads).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Derive an independent stream seed for worker `index` from a master seed.
constexpr std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index) noexcept {
  SplitMix64 sm(master ^ (0xA0761D6478BD642Full * (index + 1)));
  std::uint64_t s = sm.next();
  return sm.next() ^ s;
}

}  // namespace gfsl
