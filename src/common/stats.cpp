#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace gfsl {

double t_critical_95(std::size_t dof) {
  // Two-sided 95% critical values of Student's t distribution.
  static constexpr double table[] = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
      2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
      2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
      2.042};
  if (dof == 0) return 0.0;
  if (dof < std::size(table)) return table[dof];
  return 1.96;
}

double RunStats::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

Summary RunStats::summarize() const {
  Summary s;
  s.n = samples_.size();
  if (s.n == 0) return s;

  double sum = 0.0;
  s.min = samples_.front();
  s.max = samples_.front();
  for (double x : samples_) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.n);

  if (s.n > 1) {
    double ss = 0.0;
    for (double x : samples_) {
      const double d = x - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
    s.ci95_half =
        t_critical_95(s.n - 1) * s.stddev / std::sqrt(static_cast<double>(s.n));
  }
  s.p50 = percentile(0.50);
  s.p90 = percentile(0.90);
  s.p99 = percentile(0.99);
  return s;
}

}  // namespace gfsl
