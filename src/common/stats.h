// Summary statistics for repeated experiment runs.
//
// The paper (§5.1) runs every experiment ten times and reports means with 95%
// confidence intervals; RunStats reproduces that reduction (Student-t CI for
// small sample counts).
#pragma once

#include <cstddef>
#include <vector>

namespace gfsl {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;       // sample standard deviation (n-1)
  double ci95_half = 0.0;    // half-width of the 95% confidence interval
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;          // linear-interpolated sample percentiles
  double p90 = 0.0;
  double p99 = 0.0;
  std::size_t n = 0;
};

class RunStats {
 public:
  void add(double x) { samples_.push_back(x); }
  void clear() { samples_.clear(); }
  std::size_t count() const { return samples_.size(); }
  const std::vector<double>& samples() const { return samples_; }

  Summary summarize() const;

  /// Sample percentile with linear interpolation between order statistics
  /// (the R-7 / NumPy "linear" definition).  `q` in [0, 1]; 0 samples -> 0.
  double percentile(double q) const;

 private:
  std::vector<double> samples_;
};

/// Two-sided 95% Student-t critical value for `dof` degrees of freedom.
/// Exact table for dof <= 30, asymptotic 1.96 beyond.
double t_critical_95(std::size_t dof);

}  // namespace gfsl
