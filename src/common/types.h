// Fundamental value types shared by every subsystem.
//
// The thesis (§4.1, Table 4.1) fixes keys and values to 32-bit unsigned
// integers packed into a single 64-bit chunk entry: the lower 32 bits hold the
// key and the upper 32 bits hold the value (Figure 3.1).  Two key values are
// reserved as sentinels distinct from user keys:
//
//   * KEY_NEG_INF (0)          — the -inf key stored in the first chunk of
//                                 every level.
//   * KEY_INF (0xFFFFFFFF)     — the "infinity"/EMPTY marker used both for
//                                 vacant data entries and for the max field of
//                                 the last chunk in a level.
//
// User keys therefore live in [1, 0xFFFFFFFE].
#pragma once

#include <cstdint>
#include <limits>

namespace gfsl {

using Key = std::uint32_t;
using Value = std::uint32_t;

/// Packed key/value chunk entry (Figure 3.1): key in the low half, value in
/// the high half.  Packing keeps key ordering compatible with integer
/// ordering of the low 32 bits and lets a lane read one entry in one load.
using KV = std::uint64_t;

inline constexpr Key KEY_NEG_INF = 0;
inline constexpr Key KEY_INF = std::numeric_limits<Key>::max();
inline constexpr Key MIN_USER_KEY = 1;
inline constexpr Key MAX_USER_KEY = KEY_INF - 1;

constexpr KV make_kv(Key k, Value v) noexcept {
  return static_cast<KV>(k) | (static_cast<KV>(v) << 32);
}
constexpr Key kv_key(KV kv) noexcept { return static_cast<Key>(kv & 0xFFFFFFFFu); }
constexpr Value kv_value(KV kv) noexcept { return static_cast<Value>(kv >> 32); }

/// An EMPTY data entry is a whole-entry sentinel: key == KEY_INF.
inline constexpr KV KV_EMPTY = make_kv(KEY_INF, 0);
constexpr bool kv_is_empty(KV kv) noexcept { return kv_key(kv) == KEY_INF; }

/// Chunks are addressed by 32-bit indices into the device memory pool
/// (§4.2: "chunks are accessed using 32-bit indexes to the memory pool").
using ChunkRef = std::uint32_t;
inline constexpr ChunkRef NULL_CHUNK = std::numeric_limits<ChunkRef>::max();

/// Operation kinds for workloads ([i,d,c] mixes, §5.1).
enum class OpKind : std::uint8_t { Insert = 0, Delete = 1, Contains = 2 };

/// One entry of the host-side operation array handed to a "kernel" (§5.1).
struct Op {
  OpKind kind;
  Key key;
  Value value;      // NULL (0) for non-inserts, as in the paper's tests
  std::uint8_t mc_height;  // M&C only: tower height drawn host-side at p_key
};

}  // namespace gfsl
