// Environment-variable knobs for scaling experiments.
//
// Default bench sizes are reduced so the whole suite runs in minutes on a
// laptop-class machine; the paper-scale sweep is reached by exporting:
//
//   GFSL_OPS        operations per measurement        (paper: 10'000'000)
//   GFSL_MAX_RANGE  largest key range in sweeps       (paper: up to 100M/10M)
//   GFSL_REPS       repetitions per configuration     (paper: 10)
//   GFSL_TEAMS      concurrent teams / worker threads (paper: 13 SMs x 16 warps)
//   GFSL_SEED       master RNG seed
#pragma once

#include <cstdint>
#include <string>

namespace gfsl {

/// Returns the integer value of environment variable `name`, or
/// `fallback` when unset or unparsable.
std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// Returns the floating value of `name`, or `fallback`.
double env_double(const char* name, double fallback);

/// Aggregated experiment scale knobs with bench-friendly defaults.
struct Scale {
  std::uint64_t ops;
  std::uint64_t max_range;
  std::uint64_t reps;
  std::uint64_t teams;
  std::uint64_t seed;

  static Scale from_env();
};

}  // namespace gfsl
