#include "common/env.h"

#include <cstdlib>

namespace gfsl {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<std::uint64_t>(parsed);
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

Scale Scale::from_env() {
  Scale s;
  s.ops = env_u64("GFSL_OPS", 60'000);
  s.max_range = env_u64("GFSL_MAX_RANGE", 1'000'000);
  s.reps = env_u64("GFSL_REPS", 3);
  s.teams = env_u64("GFSL_TEAMS", 8);
  s.seed = env_u64("GFSL_SEED", 0x5EEDFU);
  return s;
}

}  // namespace gfsl
