#include "simt/team.h"

#include <stdexcept>

namespace gfsl::simt {

TeamCounters& TeamCounters::operator+=(const TeamCounters& o) {
  instructions += o.instructions;
  ballots += o.ballots;
  shfls += o.shfls;
  divergent_branches += o.divergent_branches;
  lock_acquires += o.lock_acquires;
  lock_spins += o.lock_spins;
  restarts += o.restarts;
  return *this;
}

Team::Team(int size, int team_id, std::uint64_t seed)
    : size_(size), id_(team_id), rng_(derive_seed(seed, static_cast<std::uint64_t>(team_id))) {
  if (size < 4 || size > kWarpSize || (size & (size - 1)) != 0) {
    throw std::invalid_argument(
        "team size must be a power of two in [4, 32]");
  }
}

}  // namespace gfsl::simt
