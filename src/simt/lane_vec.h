// Per-lane register file for lockstep team execution.
//
// A LaneVec<T> models one named register across all lanes of a team: element
// i is the value held by the lane with tId == i.  The simulator executes all
// lanes of a team on one host thread in lockstep, so a "kernel instruction"
// becomes a loop over active lanes — exactly the SIMT contract (§2.1: threads
// in a warp share a program counter and proceed through kernel code in
// lockstep).
#pragma once

#include <array>
#include <cstdint>

namespace gfsl::simt {

inline constexpr int kWarpSize = 32;
inline constexpr int kHalfWarp = kWarpSize / 2;

template <typename T>
class LaneVec {
 public:
  constexpr LaneVec() : v_{} {}
  explicit constexpr LaneVec(T fill) {
    for (auto& x : v_) x = fill;
  }

  constexpr T& operator[](int lane) { return v_[static_cast<std::size_t>(lane)]; }
  constexpr const T& operator[](int lane) const {
    return v_[static_cast<std::size_t>(lane)];
  }

  static constexpr int capacity() { return kWarpSize; }

 private:
  std::array<T, kWarpSize> v_;
};

}  // namespace gfsl::simt
