// Per-team execution tracing.
//
// Debugging a fine-grained-locking structure needs to know *what a team was
// doing* when an invariant broke.  TeamTrace is a fixed-size ring buffer of
// compact records the data structures append at interesting points (chunk
// reads, lock transitions, splits, merges, zombie encounters, restarts).
// Recording is branch-cheap when disabled (null pointer check) and
// allocation-free when enabled; dump() renders the most recent events in
// order for post-mortem analysis.
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace gfsl::simt {

enum class TraceEvent : std::uint8_t {
  kChunkRead,
  kLockAcquired,
  kLockFailed,
  kUnlock,
  kZombieMarked,
  kZombieSkipped,
  kSplit,
  kMerge,
  kDownStep,
  kLateralStep,
  kBacktrack,
  kRestart,
  kOpBegin,
  kOpEnd,
  kLeaseExpired,  // a = chunk ref, b = expired lease word
  kLockStolen,    // a = chunk ref, b = dead owner's lease word
  kRecovery,      // a = IntentKind, b = 1 roll-forward / 0 roll-back
  kChunkRetired,    // a = chunk ref, b = retiring team's global epoch
  kChunkReclaimed,  // a = chunk ref, b = 1 recycled / 0 requeued
  kEpochAdvance,    // a = new global epoch
};

std::string_view trace_event_name(TraceEvent e);

struct TraceRecord {
  std::uint64_t seq = 0;  // global order within the trace
  TraceEvent event = TraceEvent::kChunkRead;
  std::uint64_t a = 0;      // usually a chunk ref
  std::uint64_t b = 0;      // usually a key or level
  std::uint64_t ts_ns = 0;  // steady-clock stamp; aligns timelines across
                            // teams for the Chrome-trace exporter
};

class TeamTrace {
 public:
  /// `timestamps` = false skips the steady-clock read per record, leaving a
  /// handful of plain stores — the flight-recorder configuration, cheap
  /// enough to keep armed on every run (seq still totally orders the ring;
  /// only the Chrome-trace exporter needs wall-clock alignment).
  explicit TeamTrace(std::size_t capacity = 1024, bool timestamps = true)
      : ring_(capacity), capacity_(capacity), timestamps_(timestamps) {}

  void record(TraceEvent e, std::uint64_t a = 0, std::uint64_t b = 0) {
    TraceRecord& r = ring_[static_cast<std::size_t>(next_ % capacity_)];
    r.seq = next_++;
    r.event = e;
    r.a = a;
    r.b = b;
    r.ts_ns = timestamps_
                  ? static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now().time_since_epoch())
                            .count())
                  : 0;
  }

  std::uint64_t recorded() const { return next_; }
  std::size_t capacity() const { return capacity_; }
  bool timestamps() const { return timestamps_; }

  /// Events still held in the ring, oldest first.
  std::vector<TraceRecord> snapshot() const;

  /// Human-readable dump of the retained tail.
  void dump(std::ostream& os) const;

  void clear() { next_ = 0; }

 private:
  std::vector<TraceRecord> ring_;
  std::size_t capacity_;
  bool timestamps_ = true;
  std::uint64_t next_ = 0;
};

}  // namespace gfsl::simt
