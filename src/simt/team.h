// Team: the warp-cooperative execution context (§3).
//
// A team is a group of up to 32 lanes that cooperates on one skiplist
// operation.  The simulator runs every lane of a team on a single host
// thread, in lockstep; real concurrency exists *between* teams (one host
// thread per team), which is where all the locking/lock-free interactions of
// the algorithm happen.
//
// Cooperative primitives mirror CUDA intra-warp operations:
//   ballot(pred)       -> 32-bit mask, bit i = predicate of lane i
//   shfl(vec, src)     -> broadcast lane src's value to the whole team
//   shfl_from(vec, idx)-> per-lane gather: lane i reads vec[idx[i]]
//   clz/popc/ffs       -> the bit utilities the pseudocode uses
//
// Lanes with tId >= size() are inactive and contribute the CUDA default
// (false / 0) to ballots, matching §2.2's warning that divergent lanes return
// default values.
#pragma once

#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <functional>
#include <utility>

#include "common/random.h"
#include "obs/metrics.h"
#include "simt/lane_vec.h"
#include "simt/trace.h"

namespace gfsl::simt {

/// Per-team event counters.  These are the raw material for the performance
/// model: every cooperative step, ballot and shfl is one lockstep kernel
/// instruction.
struct TeamCounters {
  std::uint64_t instructions = 0;  // lockstep instructions executed
  std::uint64_t ballots = 0;
  std::uint64_t shfls = 0;
  std::uint64_t divergent_branches = 0;  // explicit divergence annotations
  std::uint64_t lock_acquires = 0;
  std::uint64_t lock_spins = 0;  // failed lock attempts (contention measure)
  std::uint64_t restarts = 0;    // searchDown restarts (the §4.2.1 edge case)

  void reset() { *this = TeamCounters{}; }
  TeamCounters& operator+=(const TeamCounters& o);
};

class Team {
 public:
  /// `size` must be a power of two in [4, 32]; the paper evaluates 16 and 32
  /// (chunk size == team size, §3).
  Team(int size, int team_id, std::uint64_t seed);

  int size() const { return size_; }
  int id() const { return id_; }

  /// Number of DATA lanes (the chunk's data array, §3: N-2 entries).
  int dsize() const { return size_ - 2; }
  /// tId of the NEXT lane.
  int next_lane() const { return size_ - 2; }
  /// tId of the LOCK lane.
  int lock_lane() const { return size_ - 1; }

  // -- CUDA-style intra-warp operations -------------------------------------

  /// __ballot: each active lane contributes one bit.
  std::uint32_t ballot(const LaneVec<bool>& pred) {
    ++counters_.ballots;
    ++counters_.instructions;
    std::uint32_t mask = 0;
    for (int i = 0; i < size_; ++i) {
      if (pred[i]) mask |= (1u << i);
    }
    return mask;
  }

  /// Ballot over a per-lane predicate functor (lane index -> bool).
  template <typename Fn>
  std::uint32_t ballot_fn(Fn&& fn) {
    LaneVec<bool> p(false);
    for (int i = 0; i < size_; ++i) p[i] = fn(i);
    return ballot(p);
  }

  /// __shfl broadcast: every lane reads lane `src`'s value.  Out-of-range
  /// source returns the caller's own value, as CUDA does for invalid lanes.
  template <typename T>
  T shfl(const LaneVec<T>& var, int src) {
    ++counters_.shfls;
    ++counters_.instructions;
    if (src < 0 || src >= size_) return var[0];
    return var[src];
  }

  /// Per-lane gather shuffle: lane i receives var[idx[i]].
  template <typename T>
  LaneVec<T> shfl_from(const LaneVec<T>& var, const LaneVec<int>& idx) {
    ++counters_.shfls;
    ++counters_.instructions;
    LaneVec<T> out;
    for (int i = 0; i < size_; ++i) {
      const int s = idx[i];
      out[i] = (s >= 0 && s < size_) ? var[s] : var[i];
    }
    return out;
  }

  /// __shfl_up(var, delta): lane i receives lane (i - delta)'s value; lanes
  /// with i < delta keep their own (CUDA semantics).
  template <typename T>
  LaneVec<T> shfl_up(const LaneVec<T>& var, int delta) {
    ++counters_.shfls;
    ++counters_.instructions;
    LaneVec<T> out;
    for (int i = 0; i < size_; ++i) {
      out[i] = (i >= delta) ? var[i - delta] : var[i];
    }
    return out;
  }

  /// __any / __all over active lanes.
  bool any(const LaneVec<bool>& pred) { return ballot(pred) != 0; }
  bool all(const LaneVec<bool>& pred) {
    const std::uint32_t full =
        (size_ == 32) ? 0xFFFFFFFFu : ((1u << size_) - 1u);
    return ballot(pred) == full;
  }

  // -- bit utilities used by the pseudocode ---------------------------------

  /// Highest set lane of a ballot mask: 32 - clz(bal) - 1 (Algorithm 4.3).
  static int highest_lane(std::uint32_t bal) {
    if (bal == 0) return -1;
    return 31 - std::countl_zero(bal);
  }
  /// Lowest set lane of a ballot mask.
  static int lowest_lane(std::uint32_t bal) {
    if (bal == 0) return -1;
    return std::countr_zero(bal);
  }
  static int popc(std::uint32_t x) { return std::popcount(x); }

  // -- bookkeeping -----------------------------------------------------------

  void step() { ++counters_.instructions; }
  void note_divergence() { ++counters_.divergent_branches; }

  /// Optional scheduling hook, invoked by the data structures at every
  /// simulated global-memory step.  Used to bind this team to a
  /// StepScheduler — e.g. pairing two 16-lane teams into one warp under a
  /// round-robin schedule (the sub-warp-teams extension), or replaying a
  /// seeded interleaving in tests.
  void set_yield_hook(std::function<void()> hook) { yield_ = std::move(hook); }
  void sync() {
    if (yield_) yield_();
  }

  /// Optional execution trace (off by default; `tracer` must outlive the
  /// team).  The data structures record lock transitions, splits, merges,
  /// zombie encounters and traversal steps when attached.
  void set_trace(TeamTrace* tracer) { trace_ = tracer; }
  TeamTrace* trace() { return trace_; }
  void record(TraceEvent e, std::uint64_t a = 0, std::uint64_t b = 0) {
    if (trace_ != nullptr) trace_->record(e, a, b);
  }

  /// Optional metrics shard (off by default; `shard` must outlive the team).
  /// Every instrumentation site below is a null-pointer test when detached —
  /// the registry's zero-overhead disabled path.
  void set_metrics(obs::MetricsShard* shard) { metrics_ = shard; }
  obs::MetricsShard* metrics() { return metrics_; }
  void metric(obs::CounterId id, std::uint64_t v = 1) {
    if (metrics_ != nullptr) metrics_->add(id, v);
  }

  /// Lock-hold accounting: the data structure reports acquire/release of the
  /// chunk lock `ref`; elapsed lockstep instructions between the two are the
  /// hold time.  A team holds at most a handful of locks at once (bottom +
  /// merge neighbor + one upper level), so a tiny fixed table suffices —
  /// allocation-free.  Releases of never-tracked refs (e.g. chunks born
  /// locked from the arena) are ignored.
  void note_lock_acquired(std::uint64_t ref) {
    if (metrics_ == nullptr) return;
    for (auto& h : holds_) {
      if (h.ref == kNoHold) {
        h.ref = ref;
        h.begin_steps = counters_.instructions;
        return;
      }
    }
  }
  void note_lock_released(std::uint64_t ref) {
    if (metrics_ == nullptr) return;
    for (auto& h : holds_) {
      if (h.ref == ref) {
        const std::uint64_t held = counters_.instructions - h.begin_steps;
        metrics_->add(obs::kLockHoldSteps, held);
        metrics_->record(obs::kLockHoldStepsHist, held);
        h.ref = kNoHold;
        return;
      }
    }
  }

  /// On-device randomness for the p_chunk key-raising decision (§4.2.2).
  bool bernoulli(double p) { return rng_.bernoulli(p); }
  std::uint64_t random_below(std::uint64_t bound) { return rng_.below(bound); }

  TeamCounters& counters() { return counters_; }
  const TeamCounters& counters() const { return counters_; }

 private:
  static constexpr std::uint64_t kNoHold = UINT64_MAX;
  struct LockHold {
    std::uint64_t ref = kNoHold;
    std::uint64_t begin_steps = 0;
  };

  int size_;
  int id_;
  Xoshiro256ss rng_;
  TeamCounters counters_;
  std::function<void()> yield_;
  TeamTrace* trace_ = nullptr;
  obs::MetricsShard* metrics_ = nullptr;
  std::array<LockHold, 8> holds_;
};

/// Scoped per-operation recorder: the data-structure entry points wrap their
/// body in one OpScope, which measures wall nanoseconds and lockstep
/// instructions and brackets the span with kOpBegin/kOpEnd trace records.
/// Entirely inert (two pointer tests, no clock reads) when neither metrics
/// nor trace is attached.
class OpScope {
 public:
  OpScope(Team& team, const obs::OpIds& ids, std::uint64_t key)
      : team_(team), ids_(ids) {
    if (team_.metrics() == nullptr && team_.trace() == nullptr) return;
    armed_ = true;
    begin_steps_ = team_.counters().instructions;
    if (team_.metrics() != nullptr) {
      begin_ = std::chrono::steady_clock::now();
    }
    team_.record(TraceEvent::kOpBegin, ids_.tag, key);
  }

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

  /// Success flag (insert/erase/contains) — recorded under ids.value.
  void set_result(bool r) { value_ = r ? 1 : 0; }
  /// Item count (scan) — recorded under ids.value.
  void set_value(std::uint64_t v) { value_ = v; }

  ~OpScope() {
    if (!armed_) return;
    team_.record(TraceEvent::kOpEnd, ids_.tag, value_);
    obs::MetricsShard* m = team_.metrics();
    if (m == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - begin_)
                        .count();
    m->add(ids_.count);
    m->add(ids_.value, value_);
    m->record(ids_.wall_ns, static_cast<std::uint64_t>(ns));
    m->record(ids_.steps, team_.counters().instructions - begin_steps_);
  }

 private:
  Team& team_;
  const obs::OpIds& ids_;
  bool armed_ = false;
  std::uint64_t value_ = 0;
  std::uint64_t begin_steps_ = 0;
  std::chrono::steady_clock::time_point begin_;
};

}  // namespace gfsl::simt
