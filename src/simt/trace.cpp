#include "simt/trace.h"

namespace gfsl::simt {

std::string_view trace_event_name(TraceEvent e) {
  switch (e) {
    case TraceEvent::kChunkRead: return "chunk-read";
    case TraceEvent::kLockAcquired: return "lock-acquired";
    case TraceEvent::kLockFailed: return "lock-failed";
    case TraceEvent::kUnlock: return "unlock";
    case TraceEvent::kZombieMarked: return "zombie-marked";
    case TraceEvent::kZombieSkipped: return "zombie-skipped";
    case TraceEvent::kSplit: return "split";
    case TraceEvent::kMerge: return "merge";
    case TraceEvent::kDownStep: return "down-step";
    case TraceEvent::kLateralStep: return "lateral-step";
    case TraceEvent::kBacktrack: return "backtrack";
    case TraceEvent::kRestart: return "restart";
    case TraceEvent::kOpBegin: return "op-begin";
    case TraceEvent::kOpEnd: return "op-end";
    case TraceEvent::kLeaseExpired: return "lease-expired";
    case TraceEvent::kLockStolen: return "lock-stolen";
    case TraceEvent::kRecovery: return "recovery";
    case TraceEvent::kChunkRetired: return "chunk-retired";
    case TraceEvent::kChunkReclaimed: return "chunk-reclaimed";
    case TraceEvent::kEpochAdvance: return "epoch-advance";
  }
  return "unknown";
}

std::vector<TraceRecord> TeamTrace::snapshot() const {
  std::vector<TraceRecord> out;
  const std::uint64_t held =
      next_ < capacity_ ? next_ : static_cast<std::uint64_t>(capacity_);
  out.reserve(static_cast<std::size_t>(held));
  const std::uint64_t first = next_ - held;
  for (std::uint64_t s = first; s < next_; ++s) {
    out.push_back(ring_[static_cast<std::size_t>(s % capacity_)]);
  }
  return out;
}

void TeamTrace::dump(std::ostream& os) const {
  for (const auto& r : snapshot()) {
    os << r.seq << "  " << trace_event_name(r.event) << "  a=" << r.a
       << " b=" << r.b << '\n';
  }
}

}  // namespace gfsl::simt
