#include "core/integrity.h"

#include <vector>

namespace gfsl::core {

namespace {

/// CRC32C (Castagnoli, reflected 0x82F63B78) — the iSCSI/SSE4.2 polynomial.
/// Table-driven byte-at-a-time: the inner loop is a load+xor+shift, fast
/// enough for a dsize<=30 stamp and free of any ISA dependency.
struct Crc32cTable {
  std::uint32_t t[256];
  Crc32cTable() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? (c >> 1) ^ 0x82f63b78u : c >> 1;
      }
      t[i] = c;
    }
  }
};

std::uint32_t crc32c(const std::uint64_t* words, std::size_t count) {
  static const Crc32cTable table;
  std::uint32_t c = 0xffffffffu;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t w = words[i];
    for (int b = 0; b < 8; ++b) {
      c = table.t[(c ^ static_cast<std::uint32_t>(w)) & 0xffu] ^ (c >> 8);
      w >>= 8;
    }
  }
  return c ^ 0xffffffffu;
}

constexpr std::uint64_t rotl64(std::uint64_t v, int s) {
  return (v << s) | (v >> (64 - s));
}

/// Position-salted XOR fold: each word is rotated by its slot index before
/// folding, so two swapped entries (which a plain XOR cannot see) change the
/// digest; the 64->32 fold keeps both halves contributing.
std::uint32_t xor_fold(const std::uint64_t* words, std::size_t count) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < count; ++i) {
    h ^= rotl64(words[i] + 0x165667b19e3779f9ull * (i + 1),
                static_cast<int>((i * 7 + 1) & 63));
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

}  // namespace

void IntegritySidecar::bind(std::uint32_t capacity) {
  if (capacity == capacity_ && seal_ != nullptr) return;
  capacity_ = capacity;
  seal_ = std::make_unique<std::atomic<std::uint64_t>[]>(capacity);
  suspect_ = std::make_unique<std::atomic<std::uint8_t>[]>(capacity);
  repairs_ = std::make_unique<std::atomic<std::uint32_t>[]>(capacity);
  for (std::uint32_t i = 0; i < capacity; ++i) {
    seal_[i].store(0, std::memory_order_relaxed);
    suspect_[i].store(0, std::memory_order_relaxed);
    repairs_[i].store(0, std::memory_order_relaxed);
  }
  sealed_count_.store(0, std::memory_order_relaxed);
  suspects_.store(0, std::memory_order_relaxed);
}

std::uint32_t IntegritySidecar::checksum(const std::uint64_t* words,
                                         std::size_t count) const {
  return algo_ == SealAlgo::kCrc32c ? crc32c(words, count)
                                    : xor_fold(words, count);
}

std::uint32_t IntegritySidecar::compute(const std::atomic<KV>* entries,
                                        int dsize) const {
  std::uint64_t buf[64];
  const int n = dsize <= 64 ? dsize : 64;
  for (int i = 0; i < n; ++i) {
    buf[i] = entries[i].load(std::memory_order_acquire);
  }
  return checksum(buf, static_cast<std::size_t>(n));
}

void IntegritySidecar::stamp(ChunkRef ref, std::uint32_t gen,
                             const std::atomic<KV>* entries, int dsize) {
  const std::uint64_t s = pack_seal(gen, compute(entries, dsize));
  // Release: the seal must be visible before the lock-release store that
  // follows at the call site, so an unlocked observation implies a current
  // seal.
  const std::uint64_t prev = seal_[ref].exchange(s, std::memory_order_release);
  if ((prev & 1u) == 0) sealed_count_.fetch_add(1, std::memory_order_relaxed);
  stamped_.fetch_add(1, std::memory_order_relaxed);
}

void IntegritySidecar::unseal(ChunkRef ref) {
  const std::uint64_t prev = seal_[ref].exchange(0, std::memory_order_release);
  if ((prev & 1u) != 0) sealed_count_.fetch_sub(1, std::memory_order_relaxed);
  reset_repairs(ref);
  clear_suspect(ref);
}

bool IntegritySidecar::verify_exact(ChunkRef ref, std::uint32_t gen,
                                    const std::atomic<KV>* entries,
                                    int dsize) {
  const std::uint64_t s = seal_[ref].load(std::memory_order_acquire);
  if ((s & 1u) == 0 || seal_gen(s) != (gen & kGenMask)) return true;
  verified_.fetch_add(1, std::memory_order_relaxed);
  if (seal_crc(s) == compute(entries, dsize)) return true;
  mismatched_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool IntegritySidecar::verify_snapshot(ChunkRef ref, std::uint32_t gen,
                                       const KV* data, int dsize) {
  const std::uint64_t s = seal_[ref].load(std::memory_order_acquire);
  if ((s & 1u) == 0 || seal_gen(s) != (gen & kGenMask)) return true;
  verified_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t buf[64];
  const int n = dsize <= 64 ? dsize : 64;
  for (int i = 0; i < n; ++i) buf[i] = data[i];
  if (seal_crc(s) == checksum(buf, static_cast<std::size_t>(n))) return true;
  mismatched_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool IntegritySidecar::flag_suspect(ChunkRef ref) {
  if (suspect_[ref].exchange(1, std::memory_order_acq_rel) == 0) {
    suspects_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void IntegritySidecar::clear_suspect(ChunkRef ref) {
  if (suspect_[ref].exchange(0, std::memory_order_acq_rel) != 0) {
    suspects_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace gfsl::core
