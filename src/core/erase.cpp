// Delete (Algorithms 4.11, 4.12; Figures 4.5, 4.6): top-down removal under
// the bottom-level lock, with merge of underfull chunks.
#include "core/gfsl.h"

#include <stdexcept>

namespace gfsl::core {

using simt::LaneVec;
using simt::Team;

namespace {

// Value of `k` inside a chunk image (pre-removal), used as the value hint for
// legacy erase records (core/snapshot.h, mark_erased).
Value value_of(const LaneVec<KV>& kv, int dsz, Key k) {
  for (int i = 0; i < dsz; ++i) {
    if (!kv_is_empty(kv[i]) && kv_key(kv[i]) == k) return kv_value(kv[i]);
  }
  return 0;
}

}  // namespace

bool Gfsl::erase(Team& team, Key k) {
  if (k < MIN_USER_KEY || k > MAX_USER_KEY) {
    throw std::invalid_argument("key outside the user key range");
  }
  simt::OpScope scope(team, obs::kEraseOp, k);
  const bool ok = erase_impl(team, k);
  scope.set_result(ok);
  return ok;
}

bool Gfsl::erase_impl(Team& team, Key k) {
  EpochScope epoch(*this, team);
  SlowSearchResult sr = search_slow(team, k);
  if (!sr.found) {
    epoch.exit();
    return false;
  }
  const bool ok = erase_committed(team, k, sr);
  epoch.exit();
  return ok;
}

bool Gfsl::erase_committed(Team& team, Key k, const SlowSearchResult& sr) {
  // One revision for the whole op (no-op under a batch revision or without a
  // SnapshotManager).  Every remove_from_chunk below stamps under this rev.
  CommitScope commit(*this, team);
  ChunkRef bottom = team.shfl(sr.path, 0);
  bottom = find_and_lock_enclosing(team, bottom, k);
  {
    const LaneVec<KV> bkv = read_chunk(team, bottom);
    if (!chunk_contains(team, bkv, k)) {
      // Concurrently deleted between search and lock.
      unlock(team, bottom);
      return false;
    }
  }

  // Re-read the height so levels added after the search are not missed
  // (Algorithm 4.11 line 12); their path lanes were initialised to the head
  // chunks by search_slow.  Holding the bottom lock, no other team can add
  // or remove k anywhere, so containment per level is stable.
  const int height = height_coop(team);
  for (int i = height; i > 0; --i) {
    const ChunkRef start = team.shfl(sr.path, i);
    // Probe before locking: checking containment first "significantly
    // reduces contention on the higher and less populated levels" (§4.2.3).
    const auto [found, ch] = find_lateral(team, k, start);
    if (!found) continue;
    const ChunkRef enc = find_and_lock_enclosing(team, ch, k);
    // A false return (merge-split OOM) leaves the stale key in the upper
    // level; that is legal under strict=false validation and the key stays
    // unreachable once removed from the bottom.
    remove_from_chunk(team, k, enc, i);  // unlocks (or zombifies) enc
  }

  // Only after k is gone from every upper level is it removed from the
  // bottom, and the bottom lock released (Algorithm 4.11 line 22).  The
  // bottom removal cannot fail: on merge-split OOM remove_from_chunk falls
  // back to a plain (merge-free) removal, so an erase that reaches this
  // point always completes instead of surfacing a partial mutation.
  remove_from_chunk(team, k, bottom, 0);
  return true;
}

bool Gfsl::remove_from_chunk(Team& team, Key k, ChunkRef enc_ref, int level) {
  const LaneVec<KV> kv = read_chunk(team, enc_ref);
  const int count = num_nonempty(team, kv);
  const int threshold = team.dsize() / 3;

  if (count > threshold) {  // plain removal, no merge
    const bool is_last = max_of(team, kv) == KEY_INF;
    publish_intent(team, IntentKind::kEraseShift, k, enc_ref);
    // Erase record BEFORE the shift, inside the intent span: a snapshot
    // older than this op keeps seeing <k, v> through the record even while
    // (or after) the entry vanishes; a crash replays the stamp idempotently.
    stamp_erase(team, enc_ref, k, value_of(kv, team.dsize(), k));
    execute_remove_no_merge(team, kv, enc_ref, k, is_last);
    clear_intent(team);
    maybe_prune_records(team, enc_ref);
    unlock(team, enc_ref);
    return true;
  }

  // Merge path: push the survivors into the next chunk.
  const ChunkRef next_ref = lock_next_chunk(team, enc_ref);
  if (next_ref == NULL_CHUNK) {
    // Never merge the last chunk in a level (§4.2.3 "Deleting From Last
    // Chunk in Level"): just remove, even if the chunk empties completely.
    remove_from_last_chunk(team, k, enc_ref, level);
    return true;
  }

  const LaneVec<KV> nkv = read_chunk(team, next_ref);
  MovedKeys split_moved;
  bool did_split = false;
  if (num_nonempty(team, nkv) + count - 1 > team.dsize()) {
    // The receiver is too full: split it first (no key inserted).
    split_moved = split_remove(team, next_ref, level);
    if (!split_moved.ok) {
      // Split allocation failed; nothing changed yet.
      unlock(team, next_ref);
      if (level == 0) {
        // The bottom removal must complete — erase_impl already removed k
        // from every upper level, so failing here would leave the structure
        // partially mutated while reporting total failure.  Skip the merge
        // and remove k plainly, tolerating the underfull chunk; a later
        // erase's merge, or compact(), re-coalesces it.  A survivor always
        // remains (a sole-key chunk never needs the receiver split), and
        // next_ref exists, so every validate() invariant still holds.
        publish_intent(team, IntentKind::kEraseShift, k, enc_ref);
        stamp_erase(team, enc_ref, k, value_of(kv, team.dsize(), k));
        execute_remove_no_merge(team, kv, enc_ref, k, /*is_last_chunk=*/false);
        clear_intent(team);
        maybe_prune_records(team, enc_ref);
        unlock(team, enc_ref);
        return true;
      }
      // Upper levels: report the merge as impossible — the stale key is
      // legal under strict=false validation and stays unreachable once
      // removed from the bottom.
      unlock(team, enc_ref);
      return false;
    }
    bump_level(level, +1);
    did_split = true;
  }

  // The merge span covers the copy *and* the zombify: recovery rolls it
  // forward from any midpoint (the union of the two chunks' survivors is
  // the intended merged array at every partial state).
  publish_intent(team, IntentKind::kMerge, k, enc_ref, next_ref);
  // Version bookkeeping inside the merge's intent span, BEFORE any entry
  // moves: first stamp k's erase on the donor, then copy the donor's whole
  // record chain to the receiver — after the merge, searches for the donor's
  // keys (k included) land in next_ref, so that is where their history must
  // live.  Both steps replay idempotently from any crash midpoint.
  stamp_erase(team, enc_ref, k, value_of(kv, team.dsize(), k));
  copy_version_records(team, enc_ref, next_ref, KEY_NEG_INF,
                       max_of(team, kv), level);
  execute_remove_merge(team, kv, enc_ref, next_ref, k);
  mark_zombie(team, enc_ref);  // terminal; the zombie is never unlocked
  // Hints naming the zombified donor now fail the non-zombie validation and
  // fall back; mark the erosion so the table republishes.
  if (foresight_ != nullptr && level == 0) foresight_->mark_dirty();
  clear_intent(team);
  bump_level(level, -1);
  maybe_prune_records(team, next_ref);
  unlock(team, next_ref);

  // Down-pointer repair after the locks are gone (Algorithm 4.12 line 27):
  // keys that migrated out of the zombie, plus any moved by the split.
  MovedKeys merged_moved;
  merged_moved.moved_to = next_ref;
  for (int i = 0; i < team.dsize(); ++i) {
    if (!kv_is_empty(kv[i]) && kv_key(kv[i]) != k) {
      merged_moved.keys[merged_moved.count++] = kv_key(kv[i]);
    }
  }
  update_down_ptrs(team, level, merged_moved);
  if (did_split) update_down_ptrs(team, level, split_moved);
  return true;
}

void Gfsl::execute_remove_no_merge(Team& team, const LaneVec<KV>& kv,
                                   ChunkRef ref, Key k, bool is_last_chunk) {
  // Figure 4.6: shift everything right of k one entry to the left, writing
  // from k's index upward so no key momentarily disappears.
  const int dsz = team.dsize();
  const std::uint32_t kb = team.ballot_fn(
      [&](int i) { return i < dsz && kv_key(kv[i]) == k; });
  const int idx = Team::lowest_lane(kb);
  const std::uint32_t nb = team.ballot_fn(
      [&](int i) { return i < dsz && !kv_is_empty(kv[i]); });
  const int last = Team::highest_lane(nb);

  if (!is_last_chunk && idx == last && last > 0 && snaps_ == nullptr) {
    // k is this chunk's max: lower the max field *before* removing it so a
    // concurrent search never sees a max that is absent from the data
    // (§4.2.3 "Delete With No Merge").  On the ordinary path the chunk is
    // above the merge threshold, so a predecessor key exists (last > 0);
    // only the merge-OOM fallback can remove a chunk's sole key, and then
    // the old max is kept — a max no key matches merely routes searches for
    // it into this chunk, where they correctly find nothing.
    //
    // With versioning attached the max stays sticky (the fallback's benign
    // routing argument): lowering it would maroon k's version record beyond
    // the chunk's range, where scan_at's cmax harvest cap, prune_chain's
    // out-of-range rule, and searches for k (now routed to the successor,
    // whose chain never had the record) all lose it.  The next split or
    // merge re-tightens the field and re-homes the record.
    const Key new_max = kv_key(team.shfl(kv, last - 1));
    const ChunkRef nxt = next_of(team, kv);
    atomic_entry_write(team, ref, arena_.next_slot(),
                       make_next_entry(new_max, nxt));
  }

  for (int i = idx + 1; i <= last; ++i) {
    atomic_entry_write(team, ref, i - 1, kv[i]);
  }
  // The vacated last slot now duplicates its old content (or still holds k
  // when k was the last key); clear it.
  atomic_entry_write(team, ref, last, KV_EMPTY);
}

void Gfsl::remove_from_last_chunk(Team& team, Key k, ChunkRef ref,
                                  int level) {
  const LaneVec<KV> kv = read_chunk(team, ref);
  publish_intent(team, IntentKind::kEraseShift, k, ref);
  stamp_erase(team, ref, k, value_of(kv, team.dsize(), k));
  execute_remove_no_merge(team, kv, ref, k, /*is_last_chunk=*/true);
  clear_intent(team);
  maybe_prune_records(team, ref);

  // If the whole level is now just the -inf key in this (first == last)
  // chunk, mark the level empty so traversals skip it (§4.2.3).
  if (level > 0) {
    const LaneVec<KV> after = read_chunk(team, ref);
    const std::uint32_t users = team.ballot_fn([&](int i) {
      return i < team.dsize() && !kv_is_empty(after[i]) &&
             kv_key(after[i]) != KEY_NEG_INF;
    });
    if (users == 0 &&
        head_[static_cast<std::size_t>(level)].load(
            std::memory_order_acquire) == ref) {
      auto& ctr = level_chunks_[static_cast<std::size_t>(level)];
      std::int64_t cur = ctr.load(std::memory_order_acquire);
      while (cur > 0 && !ctr.compare_exchange_weak(cur, cur - 1,
                                                   std::memory_order_acq_rel,
                                                   std::memory_order_acquire)) {
      }
    }
  }
  unlock(team, ref);
}

}  // namespace gfsl::core
