// Batch execution engine types (DESIGN.md §10).
//
// The paper's evaluation model is a GPU kernel: thousands of operations are
// launched as one batch and teams pull work until the batch drains.  This
// header defines the batch-side vocabulary — the request/result pair, the
// per-team descent cursor that amortizes traversals across a key-sorted
// shard, and the per-shard execution stats — plus a single-team convenience
// driver used by the differential tests and the fuzzer.  The multi-team
// driver lives in harness/runner.cpp (run_gfsl_batched).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace gfsl::simt {
class Team;
}

namespace gfsl::core {

class Gfsl;

/// A batch is just the submission-ordered op array; sorting and sharding are
/// the engine's job (sched/batch_dispatch.h), never the caller's.
using BatchRequest = std::vector<Op>;

/// Per-op outcome, indexed by submission position.  kTrue/kFalse mirror the
/// per-op API's boolean (insert: inserted / duplicate; erase: removed /
/// absent; contains: found / not found).  kSkipped marks an op that never
/// executed (pool exhaustion mid-batch, or a team killed mid-shard).
enum class BatchOpStatus : std::uint8_t {
  kFalse = 0,
  kTrue = 1,
  kSkipped = 2,
};

/// Batch-level execution metrics, the numbers behind the gfsl-metrics-v1
/// batch counters (shard sizes, steal counts, descent reuse hits).
struct BatchStats {
  std::uint64_t ops = 0;             // ops submitted
  std::uint64_t shards = 0;          // shards planned
  std::uint64_t steals = 0;          // shards executed off another team's range
  std::uint64_t descent_reuses = 0;  // searches started from a warm cursor
  std::uint64_t full_descents = 0;   // searches that descended from the head
  std::uint64_t epoch_pins = 0;      // per-shard pins incl. mid-shard refreshes
  std::vector<std::uint32_t> shard_sizes;  // ops per shard, plan order
};

/// Submission-order outcomes plus batch-level metrics.
struct BatchResult {
  std::vector<std::uint8_t> outcomes;  // BatchOpStatus per submitted op
  BatchStats stats;
  bool out_of_memory = false;

  BatchOpStatus status(std::size_t i) const {
    return static_cast<BatchOpStatus>(outcomes[i]);
  }
};

/// The amortized-descent cursor a team carries across one key-sorted shard.
/// Level l caches the chunk through which the previous search's down step at
/// level l passed (plus its max key and acquisition-time generation stamp).
/// For the next, larger key the search starts at the lowest cached level
/// whose max still covers it instead of descending from the head.
///
/// Why a stale entry is still safe: a chunk's key coverage only ever extends
/// leftward (its max can drop, its left bound only grows downward via
/// merges), and keys only migrate rightward (shifts, splits, merges push
/// survivors into successors).  So a chunk that once enclosed key k' <= k
/// stays at-or-left of k's enclosing chunk for as long as the chunk itself
/// survives — a cached max that went stale can only be an over-estimate,
/// which the lateral walk corrects; it can never cause a wrong skip.  Chunk
/// *recycling* breaks the at-or-left guarantee, which is why the cursor must
/// never outlive the epoch pin it was built under: execute_shard invalidates
/// it at every pin refresh, and batch_search falls back to a cold descent on
/// any generation-stamp mismatch.
struct BatchCursor {
  struct Entry {
    ChunkRef ref = NULL_CHUNK;
    std::uint32_t gen = 0;  // acquisition-time generation sample
    Key max = 0;            // chunk max as of the recording read
  };

  std::array<Entry, 32> levels{};  // == Gfsl::kMaxLevels
  int height = -1;                 // highest valid entry; -1 = cold
  Key last_key = 0;                // keys must be submitted in ascending order
  std::uint64_t reuses = 0;        // descents started from a cached entry
  std::uint64_t fulls = 0;         // cold descents from the head

  void invalidate() { height = -1; }
  bool warm() const { return height >= 0; }
};

/// Per-shard execution stats returned by Gfsl::execute_shard.
struct ShardExecStats {
  std::uint64_t reuses = 0;
  std::uint64_t fulls = 0;
  std::uint64_t pins = 0;
  std::uint64_t applied_true = 0;  // ops that returned true
  bool out_of_memory = false;      // some op hit pool exhaustion (kSkipped)
};

/// Observer hooks around each op inside a shard, so the crash-sweep harness
/// can keep its history log (begin/end/crashed-op records) without the
/// engine knowing about HistoryLog.  on_skipped fires when an op was
/// abandoned on pool exhaustion (it never produced a response).
class BatchOpObserver {
 public:
  virtual ~BatchOpObserver() = default;
  virtual void on_begin(std::uint32_t idx, const Op& op) = 0;
  virtual void on_end(std::uint32_t idx, const Op& op, bool result) = 0;
  virtual void on_skipped(std::uint32_t /*idx*/, const Op& /*op*/) {}
};

/// Single-team batch driver: plan, then execute every shard on `team` in
/// plan order.  Semantically identical to the multi-team runner (stealing is
/// trivially sequential); the workhorse of the oracle/differential tests and
/// `gfsl_fuzz --batch`.
BatchResult run_batch(Gfsl& sl, simt::Team& team, const BatchRequest& ops,
                      std::size_t target_shard_ops = 0);

}  // namespace gfsl::core
