// Quiescent structural validation and inspection.  These walk the structure
// host-side (no team, no accounting) and check the invariants Chapter 4.3
// argues for.  They must only run while no team is operating.
#include "core/gfsl.h"

#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "core/inspect.h"

namespace gfsl::core {

std::vector<std::pair<Key, Value>> Gfsl::collect() const {
  GfslInspector insp(*this);
  std::vector<std::pair<Key, Value>> out;
  for (const auto& ch : insp.level_chain(0, nullptr)) {
    if (ch.lock == kZombie) continue;
    for (const KV kv : ch.data) {
      if (kv_key(kv) != KEY_NEG_INF) out.emplace_back(kv_key(kv), kv_value(kv));
    }
  }
  return out;
}

std::uint64_t Gfsl::size() const { return collect().size(); }

ValidationReport Gfsl::validate(bool strict) const {
  GfslInspector insp(*this);
  ValidationReport rep;
  auto fail = [&](const std::string& msg) {
    if (rep.ok) {
      rep.ok = false;
      rep.error = msg;
    }
  };

  std::vector<std::set<Key>> level_keys(static_cast<std::size_t>(max_levels()));
  std::vector<std::map<Key, ChunkRef>> down_ptr(
      static_cast<std::size_t>(max_levels()));
  std::vector<std::set<ChunkRef>> live_refs(
      static_cast<std::size_t>(max_levels()));
  std::set<ChunkRef> reachable;  // every chain ref, zombies included

  for (int l = 0; l < max_levels(); ++l) {
    bool cycle = false;
    const auto chain = insp.level_chain(l, &cycle);
    if (cycle) {
      fail("cycle in level " + std::to_string(l));
      break;
    }
    if (chain.empty()) {
      fail("level " + std::to_string(l) + " has no chunks");
      break;
    }

    bool saw_neg_inf = false;
    Key prev_max_key = 0;
    bool have_prev = false;
    for (std::size_t ci = 0; ci < chain.size(); ++ci) {
      const ChunkView& ch = chain[ci];
      std::ostringstream where;
      where << "level " << l << " chunk " << ch.ref;

      reachable.insert(ch.ref);
      if (ch.lock == kLocked) fail(where.str() + " left locked at quiescence");
      if (ch.lock == kZombie) {
        ++rep.zombie_chunks;
        continue;  // zombie contents are stale by design
      }
      ++rep.live_chunks;
      rep.data_entries += ch.data.size();
      live_refs[static_cast<std::size_t>(l)].insert(ch.ref);

      // EMPTY entries grouped at the end: the inspector's view already drops
      // empties, so verify no empty slot precedes a non-empty one directly.
      {
        const std::atomic<KV>* e = arena_.entries(ch.ref);
        bool seen_empty = false;
        for (int i = 0; i < arena_.dsize(); ++i) {
          const bool empty = kv_is_empty(e[i].load(std::memory_order_acquire));
          if (empty) {
            seen_empty = true;
          } else if (seen_empty) {
            fail(where.str() + ": non-empty entry after an empty one");
          }
        }
      }

      // Internal sortedness, strictly ascending.
      for (std::size_t i = 1; i < ch.data.size(); ++i) {
        if (kv_key(ch.data[i - 1]) >= kv_key(ch.data[i])) {
          fail(where.str() + ": data not strictly sorted");
        }
      }

      // Max-field discipline: last chunk carries inf; any other non-zombie
      // chunk's max equals its largest key.
      const bool is_last = (ch.next == NULL_CHUNK);
      if (is_last) {
        if (ch.max != KEY_INF) fail(where.str() + ": last chunk max != inf");
      } else if (ch.data.empty()) {
        fail(where.str() + ": empty non-last chunk");
      } else if (snaps_ == nullptr ? ch.max != kv_key(ch.data.back())
                                   : ch.max < kv_key(ch.data.back())) {
        // With versioning attached, erasing a chunk's max key keeps the max
        // field sticky (erase.cpp) so the key's version record stays in
        // range — the field may exceed the largest key, never undercut it.
        fail(where.str() + ": max field != largest key");
      }

      // Lateral ordering between consecutive non-zombie chunks (§4.3).
      if (!ch.data.empty()) {
        if (have_prev && kv_key(ch.data.front()) <= prev_max_key) {
          fail(where.str() + ": overlaps previous chunk's range");
        }
        prev_max_key = kv_key(ch.data.back());
        have_prev = true;
      }

      for (const KV kv : ch.data) {
        const Key key = kv_key(kv);
        if (key == KEY_NEG_INF) {
          saw_neg_inf = true;
          continue;
        }
        if (!level_keys[static_cast<std::size_t>(l)].insert(key).second) {
          fail(where.str() + ": duplicate key " + std::to_string(key));
        }
        if (l > 0) {
          down_ptr[static_cast<std::size_t>(l)][key] =
              static_cast<ChunkRef>(kv_value(kv));
        }
      }
    }
    if (!saw_neg_inf) fail("level " + std::to_string(l) + " lost its -inf key");
  }

  rep.bottom_keys = level_keys[0].size();
  rep.height = current_height();

  // Down-pointer validity: from the pointed-to chunk, the key's enclosing
  // chunk must be laterally reachable (§4.3 "Order Between Down Pointers").
  for (int l = 1; l < max_levels() && rep.ok; ++l) {
    for (const auto& [key, target] : down_ptr[static_cast<std::size_t>(l)]) {
      ChunkRef cur = target;
      bool reached = false;
      std::set<ChunkRef> seen;
      while (cur != NULL_CHUNK && seen.insert(cur).second) {
        const auto ch = insp.view(cur);
        if (ch.lock != kZombie && ch.max >= key) {
          reached = live_refs[static_cast<std::size_t>(l - 1)].count(cur) > 0;
          break;
        }
        cur = ch.next;
      }
      if (!reached) {
        fail("level " + std::to_string(l) + " key " + std::to_string(key) +
             ": enclosing chunk below not reachable from its down pointer");
      }
      if (strict &&
          level_keys[static_cast<std::size_t>(l - 1)].count(key) == 0) {
        fail("level " + std::to_string(l) + " key " + std::to_string(key) +
             " missing from level below (strict)");
      }
    }
  }

  // Reclamation bookkeeping (DESIGN.md §9): classify every index the bump
  // pointer ever handed out.  A free index (odd generation) must be on
  // nobody's books; an in-use zombie must be *either* still linked *or* in
  // limbo — both would mean a double retire (the index could be recycled
  // while reachable), neither means a leak (tolerated after crash kills,
  // where the unlink's retire may not have run, so only under strict).
  rep.free_chunks = arena_.free_count();
  if (epochs_ != nullptr) {
    std::set<ChunkRef> limbo;
    for (const ChunkRef ref : epochs_->limbo_snapshot()) limbo.insert(ref);
    rep.limbo_chunks = limbo.size();
    if (rep.ok) {
      const std::uint32_t hw = arena_.high_water();
      for (std::uint32_t i = 0; i < hw; ++i) {
        const auto ref = static_cast<ChunkRef>(i);
        const std::string name = "chunk " + std::to_string(i);
        if ((arena_.generation(ref) & 1u) != 0) {  // on the free-list
          if (reachable.count(ref) != 0) fail(name + ": free but reachable");
          if (limbo.count(ref) != 0) fail(name + ": free but in limbo");
          continue;
        }
        const KV lk =
            arena_.entries(ref)[arena_.lock_slot()].load(
                std::memory_order_acquire);
        if (lock_entry_state(lk) == kZombie) {
          const bool linked = reachable.count(ref) != 0;
          const bool limboed = limbo.count(ref) != 0;
          if (linked && limboed) {
            fail(name + ": zombie both reachable and in limbo");
          }
          if (strict && !linked && !limboed) {
            fail(name + ": zombie neither reachable nor in limbo (leak)");
          }
        }
      }
    }
  }

  // Version-store invariant (DESIGN.md §13): a LIVE record (erase_rev still
  // open) in a live bottom chunk's chain, with its key inside the chunk's
  // range, asserts "this key is present with this value" — resolution rule 1
  // would serve it to a current snapshot, so the structure must agree.
  // Records beyond the chunk's max are superseded split copies (prunable,
  // not a fault); annulled and departed records assert nothing.
  if (snaps_ != nullptr && rep.ok) {
    for (const auto& ch : insp.level_chain(0, nullptr)) {
      if (ch.lock == kZombie) continue;
      std::map<Key, Value> here;
      for (const KV kv : ch.data) here[kv_key(kv)] = kv_value(kv);
      std::uint32_t steps = 0;
      for (RecIdx i = snaps_->chain_head(ch.ref);
           i != SnapshotManager::kNullRec && steps < snaps_->walk_cap();
           ++steps) {
        const VersionRec& r = snaps_->rec(i);
        const Rev er = r.erase_rev.load(std::memory_order_acquire);
        if (er == SnapshotManager::kRevLive && r.key <= ch.max) {
          const auto it = here.find(r.key);
          if (it == here.end()) {
            fail("level 0 chunk " + std::to_string(ch.ref) +
                 ": live version record for absent key " +
                 std::to_string(r.key));
          } else if (it->second != r.value) {
            fail("level 0 chunk " + std::to_string(ch.ref) + ": key " +
                 std::to_string(r.key) + " value " +
                 std::to_string(it->second) +
                 " disagrees with its live version record " +
                 std::to_string(r.value));
          }
        }
        i = r.next.load(std::memory_order_acquire);
      }
    }
  }
  return rep;
}

void Gfsl::dump(std::ostream& os) const {
  GfslInspector insp(*this);
  for (int l = current_height(); l >= 0; --l) {
    os << "level " << l << ":\n";
    bool cycle = false;
    for (const auto& ch : insp.level_chain(l, &cycle)) {
      os << "  [" << ch.ref << "] ";
      switch (ch.lock) {
        case kUnlocked: break;
        case kLocked: os << "LOCKED "; break;
        case kZombie: os << "ZOMBIE "; break;
      }
      os << "{";
      for (std::size_t i = 0; i < ch.data.size(); ++i) {
        if (i != 0) os << " ";
        const Key key = kv_key(ch.data[i]);
        if (key == KEY_NEG_INF) {
          os << "-inf";
        } else {
          os << key;
        }
        if (l > 0) os << "->" << kv_value(ch.data[i]);
      }
      os << "} max=";
      if (ch.max == KEY_INF) {
        os << "inf";
      } else {
        os << ch.max;
      }
      os << "\n";
    }
    if (cycle) os << "  !! cycle detected\n";
  }
}

}  // namespace gfsl::core


