// Between-kernel compaction — the memory-reclamation scheme the thesis
// sketches as future work (§4.1: "A possible reclamation scheme would be to
// compact the structure between kernel launches").
//
// Runs host-side at quiescence: collects the live bottom-level pairs, resets
// the pool, and rebuilds a dense structure with every chunk filled to a
// target factor and exactly one key raised per chunk (the ideal p_chunk = 1
// shape, §3).  All zombie and stale chunks are reclaimed.
#include "core/gfsl.h"

#include <algorithm>
#include <new>

namespace gfsl::core {

void Gfsl::compact() {
  const auto pairs = collect();  // sorted: the bottom level is ordered
  if (epochs_ == nullptr) {
    bulk_load(pairs);  // legacy: wholesale arena reset
    return;
  }
  // With reclamation active, compaction and steady-state recycling share one
  // code path: every in-use index — live, zombie, limbo'd or leaked — goes
  // through arena_.recycle() (bumping its generation stamp so any parked
  // reader still holding it restarts), the limbo lists are emptied (their
  // indices are covered by the sweep; draining them twice would double-free),
  // and the rebuild allocates back through the free-list.
  std::vector<ChunkRef> limbo;
  epochs_->drain_all(&limbo);
  const std::uint32_t hw = arena_.high_water();
  for (std::uint32_t ref = 0; ref < hw; ++ref) {
    if ((arena_.generation(static_cast<ChunkRef>(ref)) & 1u) == 0) {
      arena_.recycle(static_cast<ChunkRef>(ref));
    }
  }
  rebuild(pairs);
}

void Gfsl::bulk_load(const std::vector<std::pair<Key, Value>>& pairs) {
  arena_.reset();
  rebuild(pairs);
}

void Gfsl::rebuild(const std::vector<std::pair<Key, Value>>& pairs) {
  // Rebuild is quiescent: version history cannot survive it (chunk refs are
  // reassigned wholesale), so the whole version store resets — every open
  // snapshot is expired via the store-generation bump and the rebuilt keys
  // act as insert_rev 0 (visible to every future snapshot).  Record indices
  // still parked in epoch ticket limbo are discarded, not freed: reset()
  // rebuilds the record free-list wholesale, so freeing them later would
  // double-free.
  if (snaps_ != nullptr) {
    if (epochs_ != nullptr) {
      std::vector<RecIdx> discard;
      epochs_->drain_all_tickets(&discard);
    }
    snaps_->reset();
  }
  // Chunk refs are reassigned wholesale: every published hint is garbage.
  // Unpublish now; the first operation after the rebuild republishes.
  if (foresight_ != nullptr) foresight_->invalidate_all();
  // Recreate the per-level head chunks exactly as construction does.
  ChunkRef below = NULL_CHUNK;
  for (int level = 0; level < max_levels(); ++level) {
    const ChunkRef ch = arena_.alloc_locked();
    if (ch == NULL_CHUNK) throw std::bad_alloc();
    set_chunk_level(ch, level);
    const Value down = (level == 0) ? Value{0} : static_cast<Value>(below);
    arena_.entry(ch, 0).store(make_kv(KEY_NEG_INF, down),
                              std::memory_order_relaxed);
    arena_.entry(ch, arena_.lock_slot())
        .store(make_lock_entry(kUnlocked), std::memory_order_release);
    head_[static_cast<std::size_t>(level)].store(ch, std::memory_order_relaxed);
    level_chunks_[static_cast<std::size_t>(level)].store(
        0, std::memory_order_relaxed);
    below = ch;
  }

  // Fill to 3/4 so the rebuilt chunks absorb inserts without immediate
  // splits and deletes without immediate merges.
  const int fill = std::max(1, arena_.dsize() * 3 / 4);

  // Entries to place at the current level; values are user values at level 0
  // and chunk references above.
  std::vector<std::pair<Key, Value>> current;
  current.reserve(pairs.size());
  for (const auto& [k, v] : pairs) current.emplace_back(k, v);

  for (int level = 0; level < max_levels(); ++level) {
    ChunkRef tail = head_[static_cast<std::size_t>(level)].load(
        std::memory_order_relaxed);
    std::vector<std::pair<Key, Value>> raised;
    std::int64_t made = 0;

    for (std::size_t at = 0; at < current.size(); at += fill) {
      const std::size_t n = std::min<std::size_t>(fill, current.size() - at);
      const ChunkRef ch = arena_.alloc_locked();
      if (ch == NULL_CHUNK) throw std::bad_alloc();
      set_chunk_level(ch, level);
      for (std::size_t i = 0; i < n; ++i) {
        arena_.entry(ch, static_cast<int>(i))
            .store(make_kv(current[at + i].first, current[at + i].second),
                   std::memory_order_relaxed);
      }
      const bool is_final = (at + n >= current.size());
      const Key max_key = is_final ? KEY_INF : current[at + n - 1].first;
      arena_.entry(ch, arena_.next_slot())
          .store(make_next_entry(max_key, NULL_CHUNK),
                 std::memory_order_relaxed);
      arena_.entry(ch, arena_.lock_slot())
          .store(make_lock_entry(kUnlocked), std::memory_order_relaxed);

      // Link after the tail.  Every data chunk is created with its final max
      // already in place; only the head chunk starts with the inf max of a
      // last chunk and must drop to its own largest key (-inf) when a data
      // chunk is linked after it.
      const KV tail_next = arena_.entry(tail, arena_.next_slot())
                               .load(std::memory_order_relaxed);
      const Key tail_max = (next_entry_max(tail_next) == KEY_INF)
                               ? KEY_NEG_INF
                               : next_entry_max(tail_next);
      arena_.entry(tail, arena_.next_slot())
          .store(make_next_entry(tail_max, ch), std::memory_order_relaxed);

      raised.emplace_back(current[at].first, static_cast<Value>(ch));
      tail = ch;
      ++made;
    }

    level_chunks_[static_cast<std::size_t>(level)].store(
        made, std::memory_order_relaxed);
    if (raised.size() <= 1 || level + 1 >= max_levels()) break;
    current = std::move(raised);
  }

  // Every chunk above was published unlocked by direct stores, not through
  // unlock(): give the rebuilt structure its integrity baseline.
  reseal_all();
}

}  // namespace gfsl::core
