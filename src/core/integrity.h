// Per-chunk integrity seals — the memory-corruption armor (DESIGN.md §15).
//
// The paper's target device is ECC-less: a flipped bit in an idle sealed
// chunk is served back to callers as a correct answer.  The IntegritySidecar
// closes that hole the same way the PR 8 version sidecar added MVCC: a
// host-resident table *beside* the untouched 8-byte chunk format.  One
// 64-bit seal word per chunk ref:
//
//     { crc:32 | gen:31 | sealed:1 }
//
// The crc half is a CRC32C (or XOR-fold, selectable) over the chunk's DATA
// slots only — [0, dsize).  The NEXT entry is deliberately excluded: lazy
// zombie unlinking (§4.2.2) rewrites a predecessor's NEXT *without holding
// its lock*, so any NEXT-covering checksum would race its own protocol.
// NEXT and LOCK are protocol words whose sanity the structural validators
// already check; the seal guards the payload, which nothing cross-checks
// otherwise.  The gen half ties the seal to one arena lifetime of the index
// (generation stamps, DESIGN.md §9) so a recycled chunk can never verify
// against its previous incarnation's seal.
//
// Write discipline: data slots of a live chunk change only while its lock is
// held, and every lock release funnels through Gfsl::unlock (or the medic's
// release_if_owned).  Stamping there — before the releasing store — makes
// the invariant exact: *an unlocked live chunk always matches its seal*,
// and any mismatch observed under the chunk's own lock is memory damage,
// not a racing writer.
//
// Verify discipline (two tiers, no false quarantines):
//   * read path (read_chunk_checked cold path): recompute over the lane
//     snapshot the reader already holds, only when that snapshot shows the
//     chunk unlocked.  A mismatch only *flags the chunk suspect* — a racing
//     lock/modify/unlock between the lane reads can produce a stale view —
//     and restarts the traversal.
//   * scrub path (Gfsl::scrub_pass): re-verify under try_lock, where the
//     invariant is exact.  Only scrub quarantines or repairs.
//
// Detached (`IntegritySidecar* == nullptr` in the Gfsl ctor) not a byte of
// this runs — the same bit-identical contract as leases/epochs/region/
// snapshots/foresight.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/types.h"

namespace gfsl::core {

enum class SealAlgo : std::uint8_t {
  kCrc32c,   // iSCSI polynomial, table-driven; detects all <= 3-bit bursts
  kXorFold,  // position-salted XOR fold; cheaper, weaker multi-bit coverage
};

class IntegritySidecar {
 public:
  explicit IntegritySidecar(SealAlgo algo = SealAlgo::kCrc32c) : algo_(algo) {}
  IntegritySidecar(const IntegritySidecar&) = delete;
  IntegritySidecar& operator=(const IntegritySidecar&) = delete;

  /// Size the tables for an arena of `capacity` chunks.  The Gfsl ctor calls
  /// this; re-binding to the same capacity is a no-op, so one sidecar can be
  /// handed to successive structures over the same pool.
  void bind(std::uint32_t capacity);
  std::uint32_t capacity() const { return capacity_; }
  SealAlgo algo() const { return algo_; }

  // --- Seals ----------------------------------------------------------------

  /// Recompute and publish the seal for `ref`'s current data slots.  Caller
  /// must hold the chunk's lock or be quiescent; `gen` is the chunk's
  /// current (even) generation stamp.
  void stamp(ChunkRef ref, std::uint32_t gen, const std::atomic<KV>* entries,
             int dsize);
  /// Drop `ref`'s seal (recycle / zombify-by-quarantine).
  void unseal(ChunkRef ref);
  /// True when `ref` carries a seal stamped for generation `gen`.
  bool sealed(ChunkRef ref, std::uint32_t gen) const {
    const std::uint64_t s = seal_[ref].load(std::memory_order_acquire);
    return (s & 1u) != 0 && seal_gen(s) == (gen & kGenMask);
  }

  /// Exact check (caller holds the lock / is quiescent): recompute from the
  /// live entries and compare.  True = clean OR not sealed for this gen;
  /// false = sealed and damaged.  Counts verified/mismatch.
  bool verify_exact(ChunkRef ref, std::uint32_t gen,
                    const std::atomic<KV>* entries, int dsize);

  /// Racy check over a reader's lane snapshot (data slots only,
  /// `data[0..dsize)`).  True = clean or unsealed; false = mismatch, which
  /// the caller must treat as *suspicion*, not proof.  Counts verified (and
  /// mismatch on failure).
  bool verify_snapshot(ChunkRef ref, std::uint32_t gen, const KV* data,
                       int dsize);

  // --- Read-path sampling ---------------------------------------------------

  /// Verify one in `n` checked reads (1 = every read, 0 = scrub-patrol
  /// only).  The read-path check is opportunistic — exhaustive coverage
  /// belongs to scrub_pass — so sampling amortizes the checksum cost over
  /// the hot path without giving up drive-by detection.
  void set_verify_period(std::uint32_t n) {
    verify_period_.store(n, std::memory_order_relaxed);
  }
  std::uint32_t verify_period() const {
    return verify_period_.load(std::memory_order_relaxed);
  }
  /// Ticket the sampler; true when this checked read should verify.
  bool should_verify_read() {
    const std::uint32_t p = verify_period_.load(std::memory_order_relaxed);
    if (p == 0) return false;
    if (p == 1) return true;
    return read_tick_.fetch_add(1, std::memory_order_relaxed) % p == 0;
  }

  // --- Suspects (read path -> scrub handoff) --------------------------------

  /// Returns true on the 0->1 transition (first flagger owns reporting).
  bool flag_suspect(ChunkRef ref);
  void clear_suspect(ChunkRef ref);
  bool suspect(ChunkRef ref) const {
    return suspect_[ref].load(std::memory_order_acquire) != 0;
  }
  std::uint64_t suspect_count() const {
    return suspects_.load(std::memory_order_relaxed);
  }

  // --- Repair escalation ----------------------------------------------------

  /// Count a repair attempt on `ref`; returns the new total for this
  /// lifetime.  A second mismatch after a successful repair (a stuck-at
  /// cell re-asserting itself) escalates to quarantine instead of burning
  /// scrub passes re-repairing unrepairable memory.
  std::uint32_t note_repair(ChunkRef ref) {
    return repairs_[ref].fetch_add(1, std::memory_order_relaxed) + 1;
  }
  void reset_repairs(ChunkRef ref) {
    repairs_[ref].store(0, std::memory_order_relaxed);
  }

  // --- Aggregate stats (quiescent reporting; the per-team metrics shards
  // carry the same events for gfsl-metrics-v1) ------------------------------

  std::uint64_t seals_stamped() const { return stamped_.load(std::memory_order_relaxed); }
  std::uint64_t seals_verified() const { return verified_.load(std::memory_order_relaxed); }
  std::uint64_t seal_mismatches() const { return mismatched_.load(std::memory_order_relaxed); }
  std::uint64_t sealed_count() const { return sealed_count_.load(std::memory_order_relaxed); }

  /// Raw checksum over `words[0..count)`, exposed for tests and for the
  /// durable-image cross-checks.
  std::uint32_t checksum(const std::uint64_t* words, std::size_t count) const;

 private:
  static constexpr std::uint32_t kGenMask = 0x7fffffffu;
  static constexpr std::uint64_t pack_seal(std::uint32_t gen, std::uint32_t crc) {
    return (static_cast<std::uint64_t>(crc) << 32) |
           (static_cast<std::uint64_t>(gen & kGenMask) << 1) | 1u;
  }
  static constexpr std::uint32_t seal_gen(std::uint64_t s) {
    return static_cast<std::uint32_t>(s >> 1) & kGenMask;
  }
  static constexpr std::uint32_t seal_crc(std::uint64_t s) {
    return static_cast<std::uint32_t>(s >> 32);
  }

  std::uint32_t compute(const std::atomic<KV>* entries, int dsize) const;

  SealAlgo algo_;
  std::uint32_t capacity_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> seal_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> suspect_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> repairs_;
  std::atomic<std::uint32_t> verify_period_{8};
  std::atomic<std::uint64_t> read_tick_{0};
  std::atomic<std::uint64_t> stamped_{0};
  std::atomic<std::uint64_t> verified_{0};
  std::atomic<std::uint64_t> mismatched_{0};
  std::atomic<std::int64_t> sealed_count_{0};
  std::atomic<std::uint64_t> suspects_{0};
};

}  // namespace gfsl::core
