// Insert (Algorithms 4.5, 4.7): bottom-up insertion with per-chunk locking.
// The bottom-level enclosing chunk stays locked for the whole operation;
// upper levels are lock-insert-unlock (§4.2.2, Figure 4.2b).
#include "core/gfsl.h"

#include <stdexcept>

namespace gfsl::core {

using simt::LaneVec;
using simt::Team;

bool Gfsl::insert(Team& team, Key k, Value v) {
  if (k < MIN_USER_KEY || k > MAX_USER_KEY) {
    throw std::invalid_argument("key outside the user key range");
  }
  simt::OpScope scope(team, obs::kInsertOp, k);
  const bool ok = insert_impl(team, k, v);
  scope.set_result(ok);
  return ok;
}

bool Gfsl::insert_impl(Team& team, Key k, Value v) {
  EpochScope epoch(*this, team);
  SlowSearchResult sr = search_slow(team, k);
  if (sr.found) {
    epoch.exit();
    return false;
  }
  const bool ok = insert_committed(team, k, v, sr);
  epoch.exit();
  return ok;
}

bool Gfsl::insert_committed(Team& team, Key k, Value v,
                            const SlowSearchResult& sr) {
  // One revision for the whole op (no-op when a batch revision is already
  // installed for this team, or when no SnapshotManager is attached).
  CommitScope commit(*this, team);
  bool raise = false;
  ChunkRef bottom = team.shfl(sr.path, 0);
  const InsertStatus st = insert_to_level(team, /*level=*/0, bottom, k, v,
                                          raise);
  if (st != InsertStatus::kInserted) {
    // kDuplicate: another team inserted k between our search and the lock.
    // kNoMemory: the pool is exhausted even after emergency reclaims; the
    // structure is untouched, so unwind and surface it (the caller's epoch
    // scope dtor unpins silently during the throw).
    unlock(team, bottom);
    if (st == InsertStatus::kNoMemory) throw std::bad_alloc();
    return false;
  }

  // Raise through the levels while split coin-flips say so.  The value
  // stored at level i+1 is the chunk in level i that received the key —
  // either directly k's chunk or one from which it is laterally reachable
  // (§4.2.2 "Updating Down Pointers").
  Value up_value = static_cast<Value>(bottom);
  int level = 1;
  while (raise && level < max_levels()) {
    ChunkRef enc = team.shfl(sr.path, level);
    if (insert_to_level(team, level, enc, k, up_value, raise) ==
        InsertStatus::kNoMemory) {
      // Raising is an optimization: the key is already durably in the
      // bottom level, so an exhausted pool just stops the raise.
      unlock(team, enc);
      break;
    }
    up_value = static_cast<Value>(enc);
    unlock(team, enc);
    ++level;
  }

  unlock(team, bottom);
  return true;
}

Gfsl::InsertStatus Gfsl::insert_to_level(Team& team, int level, ChunkRef& enc,
                                         Key& k, Value v, bool& raise) {
  enc = find_and_lock_enclosing(team, enc, k);
  const LaneVec<KV> kv = read_chunk(team, enc);
  raise = false;
  if (chunk_contains(team, kv, k)) return InsertStatus::kDuplicate;

  if (num_nonempty(team, kv) < team.dsize()) {
    execute_insert(team, enc, kv, k, v);
    if (level > 0 &&
        level_chunks_[static_cast<std::size_t>(level)].load(
            std::memory_order_acquire) == 0) {
      // First key in this level: the level becomes visible to getHeight.
      bump_level(level, +1);
    }
  } else {
    const SplitOutcome out = split_insert(team, enc, k, v, level);
    if (out.fresh == NULL_CHUNK) {
      // Split allocation failed; `out.locked` is the untouched input chunk,
      // still locked, so the caller can unwind cleanly.
      enc = out.locked;
      return InsertStatus::kNoMemory;
    }
    enc = out.locked;
    k = out.raised_key;
    bump_level(level, +1);
    raise = team.bernoulli(cfg_.p_chunk);  // on-device coin flip (§4.2.2)
  }
  return InsertStatus::kInserted;
}

void Gfsl::execute_insert(Team& team, ChunkRef ref, const LaneVec<KV>& kv,
                          Key k, Value v) {
  // Algorithm 4.7 / Figure 4.3.  Each lane takes the entry to its left; the
  // insertion-index lane takes <k, v> instead; lanes at or right of the
  // index then write serially from the highest index down so no existing key
  // is ever overwritten before its copy lands one slot to the right.
  LaneVec<KV> insert_kv = team.shfl_up(kv, 1);
  const std::uint32_t lt = team.ballot_fn(
      [&](int i) { return i < team.dsize() && kv_key(kv[i]) < k; });
  const int idx = Team::popc(lt);
  insert_kv[idx] = make_kv(k, v);

  // Crash tolerance: a death anywhere inside the shift leaves exactly one
  // adjacent duplicated entry (or the landed key), which the intent's
  // recovery rolls back (or declares complete).
  publish_intent(team, IntentKind::kInsertShift, k, ref);
  // Version record BEFORE the entry mutation, inside the intent span: a
  // reader that misses the mid-shift entry still resolves k through the
  // record, and a crash between stamp and shift repairs forward (the live
  // record turns the insert-shift repair into a roll-forward).
  stamp_insert(team, ref, k, v);
  for (int i = team.dsize() - 1; i >= idx; --i) {
    if (!kv_is_empty(insert_kv[i])) {
      atomic_entry_write(team, ref, i, insert_kv[i]);
    } else {
      team.step();  // disabled lanes still take the lockstep iteration
    }
  }
  clear_intent(team);
  maybe_prune_records(team, ref);
  // The max field never changes: a key is only inserted into its enclosing
  // chunk, whose max is >= k by definition (§4.3).
}

}  // namespace gfsl::core
