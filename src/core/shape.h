// Quiescent structure-shape statistics.
//
// Chapter 3 makes quantitative claims about the shape GFSL converges to:
// "chunks of size 16 hold an average of 10 keys ... chunks of size 32 ...
// an average of 20 keys", "GFSL-16 contains 25% more levels on average than
// GFSL-32", and §5.2 ties traversal length to fill and p_chunk.  ShapeStats
// measures those properties so tests and benches can check them directly.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace gfsl::core {

class Gfsl;

struct LevelShape {
  std::uint64_t live_chunks = 0;
  std::uint64_t zombie_chunks = 0;
  std::uint64_t keys = 0;          // user keys (excluding -inf)
  double avg_fill = 0.0;           // mean non-empty data entries per live chunk
  double min_fill = 0.0;
  double max_fill = 0.0;
};

struct ShapeStats {
  int height = 0;                   // highest non-empty level
  std::uint64_t total_keys = 0;     // bottom-level user keys
  std::uint64_t live_chunks = 0;
  std::uint64_t zombie_chunks = 0;
  double avg_keys_per_chunk = 0.0;  // over live bottom-level chunks
  double fanout = 0.0;              // keys(level 0) / keys(level 1), 0 if flat
  std::vector<LevelShape> levels;   // index = level

  /// Fraction of allocated pool chunks that are zombies (reclaimable by
  /// compact()).
  double zombie_fraction() const {
    const double total = static_cast<double>(live_chunks + zombie_chunks);
    return total > 0 ? static_cast<double>(zombie_chunks) / total : 0.0;
  }
};

/// Walk the structure host-side (quiescent only) and measure its shape.
ShapeStats measure_shape(const Gfsl& g);

}  // namespace gfsl::core
