// Chunk storage for GFSL (§3, Figure 3.1; §4.1).
//
// A chunk of size N is an array of N 8-byte entries:
//
//   [ DATA 0 .. DATA N-3 | NEXT (max key | next ref) | LOCK ]
//
// The first N-2 entries hold sorted key/value pairs with EMPTY (key == inf)
// entries grouped at the end.  The NEXT entry packs the chunk's max key in
// its key half and the next-chunk reference in its value half, so both are
// updated with one atomic 64-bit write (§4.2.2: "Both of these changes are
// performed with a single atomic write by the NEXT thread").  The LOCK entry
// encodes unlocked / locked / zombie in its key half; when locked, its value
// half carries the holder's *lease word* (team id + epoch, sched/lease.h) so
// peers can attribute the hold and recover it if the holder crashes.  Word 0
// is the anonymous legacy owner: such locks are never considered expired.
//
// Chunks live in a dense arena addressed by 32-bit ChunkRefs; a chunk of N
// entries is N*8 bytes (128 B for N=16, 256 B for N=32 — the two sizes the
// paper evaluates), so ChunkRef * N * 8 is the chunk's synthetic device
// address for the coalescing/cache model.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/types.h"

namespace gfsl::core {

/// LOCK entry states, stored in the key half of the LOCK entry.
enum LockState : Key {
  kUnlocked = 0,
  kLocked = 1,
  kZombie = 2,  // terminal: zombies are never unlocked or relocked (§4.1)
};

class ChunkArena {
 public:
  /// `entries_per_chunk` is N (== team size); must be a power of two in
  /// [8, 32].  `capacity` is the total number of chunks in the pool.
  ChunkArena(int entries_per_chunk, std::uint32_t capacity);

  /// Allocate one chunk, "allocated locked with inf values in all key-data
  /// pairs, as well as in the max field" (§4.1).  The inf max marks it as a
  /// (potential) last chunk until the split fills it in.  `owner_word` is
  /// the allocating team's lease word, stamped into the born-held lock so
  /// that a chunk published by a team that then crashes remains recoverable.
  ChunkRef alloc_locked(std::uint32_t owner_word = 0);

  bool can_alloc(std::uint32_t count = 1) const {
    return next_.load(std::memory_order_relaxed) + count <= capacity_;
  }

  std::atomic<KV>* entries(ChunkRef ref) {
    return slots_.get() + static_cast<std::size_t>(ref) * n_;
  }
  const std::atomic<KV>* entries(ChunkRef ref) const {
    return slots_.get() + static_cast<std::size_t>(ref) * n_;
  }

  std::atomic<KV>& entry(ChunkRef ref, int i) { return entries(ref)[i]; }

  int entries_per_chunk() const { return n_; }
  int dsize() const { return n_ - 2; }
  int next_slot() const { return n_ - 2; }
  int lock_slot() const { return n_ - 1; }

  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t allocated() const {
    const auto v = next_.load(std::memory_order_relaxed);
    return v < capacity_ ? v : capacity_;
  }
  std::uint32_t chunk_bytes() const { return static_cast<std::uint32_t>(n_) * 8u; }

  std::uint64_t device_address(ChunkRef ref) const {
    return static_cast<std::uint64_t>(ref) * chunk_bytes();
  }
  std::uint64_t entry_address(ChunkRef ref, int i) const {
    return device_address(ref) + static_cast<std::uint64_t>(i) * 8u;
  }

  /// Reset the bump pointer (quiescent only; used by Gfsl::compact()).
  void reset() { next_.store(0, std::memory_order_relaxed); }

 private:
  int n_;
  std::uint32_t capacity_;
  std::unique_ptr<std::atomic<KV>[]> slots_;
  std::atomic<std::uint32_t> next_;
};

// --- Entry helpers ----------------------------------------------------------

constexpr KV make_next_entry(Key max_key, ChunkRef next) {
  return make_kv(max_key, static_cast<Value>(next));
}
constexpr Key next_entry_max(KV e) { return kv_key(e); }
constexpr ChunkRef next_entry_ref(KV e) { return static_cast<ChunkRef>(kv_value(e)); }

constexpr KV make_lock_entry(LockState s, std::uint32_t owner_word = 0) {
  return make_kv(static_cast<Key>(s), static_cast<Value>(owner_word));
}
constexpr LockState lock_entry_state(KV e) { return static_cast<LockState>(kv_key(e)); }
/// Lease word of the holder (0 = anonymous / unheld).
constexpr std::uint32_t lock_entry_owner(KV e) { return kv_value(e); }

}  // namespace gfsl::core
