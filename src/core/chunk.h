// Chunk storage for GFSL (§3, Figure 3.1; §4.1).
//
// A chunk of size N is an array of N 8-byte entries:
//
//   [ DATA 0 .. DATA N-3 | NEXT (max key | next ref) | LOCK ]
//
// The first N-2 entries hold sorted key/value pairs with EMPTY (key == inf)
// entries grouped at the end.  The NEXT entry packs the chunk's max key in
// its key half and the next-chunk reference in its value half, so both are
// updated with one atomic 64-bit write (§4.2.2: "Both of these changes are
// performed with a single atomic write by the NEXT thread").  The LOCK entry
// encodes unlocked / locked / zombie in its key half; when locked, its value
// half carries the holder's *lease word* (team id + epoch, sched/lease.h) so
// peers can attribute the hold and recover it if the holder crashes.  Word 0
// is the anonymous legacy owner: such locks are never considered expired.
//
// Chunks live in a dense arena addressed by 32-bit ChunkRefs; a chunk of N
// entries is N*8 bytes (128 B for N=16, 256 B for N=32 — the two sizes the
// paper evaluates), so ChunkRef * N * 8 is the chunk's synthetic device
// address for the coalescing/cache model.
//
// Reclamation (DESIGN.md §9): the arena is no longer bump-only.  `recycle`
// pushes an index onto a lock-free LIFO free-list (Treiber stack with a
// tagged head so free-list pops are themselves ABA-safe) and `alloc_locked`
// pops from it before falling back to the bump pointer.  Each chunk carries
// a *generation stamp*: odd while on the free-list (and throughout the next
// lifetime's initialization), even while in use, and bumped on both
// transitions.  A lock-free reader samples the stamp when it *acquires* a
// chunk reference and validates every read of that chunk against the sample
// (seqlock discipline, Gfsl::guard_ref/read_chunk_checked), restarting its
// traversal on mismatch — index reuse is detectable even though the reused
// lifetime's own pre/post stamps are internally consistent and the
// zombie-skip logic cannot distinguish the old chunk from its reincarnation
// by contents alone.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "device/persist.h"

namespace gfsl::core {

/// LOCK entry states, stored in the key half of the LOCK entry.
enum LockState : Key {
  kUnlocked = 0,
  kLocked = 1,
  kZombie = 2,  // terminal: zombies are never unlocked or relocked (§4.1)
};

class ChunkArena {
 public:
  /// `entries_per_chunk` is N (== team size); must be a power of two in
  /// [8, 32].  `capacity` is the total number of chunks in the pool.
  ///
  /// With `region == nullptr` every array is heap-owned (the seed's exact
  /// behavior).  With a PersistRegion attached, the chunk slots, generation
  /// stamps, free-list linkage and the control words (bump pointer, tagged
  /// free head, free count) all live inside the mapped file: a fresh region
  /// is initialized to the empty-arena state, an attached region's stored
  /// state is adopted as-is (the caller is expected to run Gfsl::recover()
  /// before serving).  The region's geometry must match.
  ChunkArena(int entries_per_chunk, std::uint32_t capacity,
             device::PersistRegion* region = nullptr);

  /// Allocate one chunk, "allocated locked with inf values in all key-data
  /// pairs, as well as in the max field" (§4.1).  The inf max marks it as a
  /// (potential) last chunk until the split fills it in.  `owner_word` is
  /// the allocating team's lease word, stamped into the born-held lock so
  /// that a chunk published by a team that then crashes remains recoverable.
  /// Recycled indices are preferred (LIFO) over fresh bump indices.
  /// Returns NULL_CHUNK on exhaustion — the hot path never throws.
  ChunkRef alloc_locked(std::uint32_t owner_word = 0);

  /// Return a chunk to the free-list.  The caller must guarantee no team
  /// can still *acquire* a reference to it (epoch grace period + reference
  /// scan, device/epoch.h); parked readers that already hold the ref detect
  /// the reuse via the generation stamp.  Flips the generation to odd.
  void recycle(ChunkRef ref);

  /// Generation stamp of `ref`.  Even = in use, odd = on the free-list.
  std::uint32_t generation(
      ChunkRef ref, std::memory_order mo = std::memory_order_acquire) const {
    return gen_[ref].load(mo);
  }

  /// True if `count` more allocations would succeed right now (bump headroom
  /// plus recycled chunks).
  bool can_alloc(std::uint32_t count = 1) const {
    const auto bumped = next_->load(std::memory_order_relaxed);
    const std::uint32_t headroom = bumped < capacity_ ? capacity_ - bumped : 0;
    return headroom + free_count_->load(std::memory_order_relaxed) >= count;
  }

  std::atomic<KV>* entries(ChunkRef ref) {
    return slots_ + static_cast<std::size_t>(ref) * n_;
  }
  const std::atomic<KV>* entries(ChunkRef ref) const {
    return slots_ + static_cast<std::size_t>(ref) * n_;
  }

  std::atomic<KV>& entry(ChunkRef ref, int i) { return entries(ref)[i]; }

  int entries_per_chunk() const { return n_; }
  int dsize() const { return n_ - 2; }
  int next_slot() const { return n_ - 2; }
  int lock_slot() const { return n_ - 1; }

  std::uint32_t capacity() const { return capacity_; }
  /// Chunks currently *in use* (bump high-water minus free-list population).
  /// With reclamation this is the live+zombie footprint, not a lifetime
  /// allocation count.
  std::uint32_t allocated() const {
    const auto hw = high_water();
    const auto freed = free_count_->load(std::memory_order_relaxed);
    return freed < hw ? hw - freed : 0;
  }
  /// Highest index ever handed out (sweep bound: recycled chunks keep their
  /// slots, so full-arena scans must walk [0, high_water)).
  std::uint32_t high_water() const {
    const auto v = next_->load(std::memory_order_relaxed);
    return v < capacity_ ? v : capacity_;
  }
  std::uint32_t free_count() const {
    return free_count_->load(std::memory_order_relaxed);
  }
  std::uint32_t chunk_bytes() const { return static_cast<std::uint32_t>(n_) * 8u; }

  std::uint64_t device_address(ChunkRef ref) const {
    return static_cast<std::uint64_t>(ref) * chunk_bytes();
  }
  std::uint64_t entry_address(ChunkRef ref, int i) const {
    return device_address(ref) + static_cast<std::uint64_t>(i) * 8u;
  }

  /// Reset the bump pointer and drop the free-list (quiescent only; legacy
  /// compaction path).  Generation stamps survive so parked-reader tests
  /// that straddle a reset still see monotone stamps; odd stamps are
  /// normalized back to even by the next alloc of that index.
  void reset();

  /// Quiescent (recovery only): normalize a reachable chunk's stamp back to
  /// even.  A reachable odd stamp cannot arise from any legal crash
  /// interleaving (alloc flips the stamp even before the link that makes
  /// the chunk reachable publishes); it is damage in the stamp word itself,
  /// and bumping it keeps the index off the rebuilt free-list.
  void force_even_generation(ChunkRef ref) {
    const auto g = gen_[ref].load(std::memory_order_relaxed);
    if ((g & 1u) != 0) gen_[ref].store(g + 1, std::memory_order_release);
  }

  /// Quiescent (recovery only): replace the free-list wholesale.  Every ref
  /// in `free_refs` gets an odd generation (bumped if currently even) and is
  /// pushed in order — the last element ends up at the head — with the head
  /// tag reset to 0, so the rebuilt linkage is a deterministic function of
  /// the input list alone (recovery idempotence depends on this).
  void rebuild_free(const std::vector<ChunkRef>& free_refs);

 private:
  // Tagged Treiber head: {tag:32 | index:32}.  The tag increments on every
  // push so a pop's CAS cannot succeed against a head that was popped and
  // re-pushed in between (free-list ABA).
  static constexpr std::uint64_t pack_head(std::uint32_t tag,
                                           std::uint32_t index) {
    return (static_cast<std::uint64_t>(tag) << 32) | index;
  }
  static constexpr std::uint32_t head_tag(std::uint64_t h) {
    return static_cast<std::uint32_t>(h >> 32);
  }
  static constexpr std::uint32_t head_index(std::uint64_t h) {
    return static_cast<std::uint32_t>(h);
  }

  ChunkRef pop_free();

  int n_;
  std::uint32_t capacity_;

  // Owned backing storage, allocated only when no region is attached.  The
  // raw pointers below are the single access path either way, so the
  // detached hot path is bit-identical to the seed (one extra indirection
  // that the owned case had through unique_ptr anyway).
  std::unique_ptr<std::atomic<KV>[]> slots_own_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> gen_own_;
  std::unique_ptr<std::atomic<std::uint32_t>[]> free_next_own_;
  struct Control {
    std::atomic<std::uint32_t> next;
    std::atomic<std::uint32_t> free_count;
    std::atomic<std::uint64_t> free_head;
  };
  Control ctl_own_{};

  std::atomic<KV>* slots_ = nullptr;
  std::atomic<std::uint32_t>* gen_ = nullptr;
  std::atomic<std::uint32_t>* free_next_ = nullptr;
  std::atomic<std::uint32_t>* next_ = nullptr;
  std::atomic<std::uint64_t>* free_head_ = nullptr;
  std::atomic<std::uint32_t>* free_count_ = nullptr;
};

// --- Entry helpers ----------------------------------------------------------

constexpr KV make_next_entry(Key max_key, ChunkRef next) {
  return make_kv(max_key, static_cast<Value>(next));
}
constexpr Key next_entry_max(KV e) { return kv_key(e); }
constexpr ChunkRef next_entry_ref(KV e) { return static_cast<ChunkRef>(kv_value(e)); }

constexpr KV make_lock_entry(LockState s, std::uint32_t owner_word = 0) {
  return make_kv(static_cast<Key>(s), static_cast<Value>(owner_word));
}
constexpr LockState lock_entry_state(KV e) { return static_cast<LockState>(kv_key(e)); }
/// Lease word of the holder (0 = anonymous / unheld).
constexpr std::uint32_t lock_entry_owner(KV e) { return kv_value(e); }

}  // namespace gfsl::core
