// MVCC snapshots for GFSL (DESIGN.md §13).
//
// The chunk array stays exactly the paper's 8-byte-entry format; versioning
// lives in a host-resident *sidecar* (the way Jiffy keeps its revision
// metadata out of the hot line): a global monotonically-advancing revision
// (the SnapshotEpoch), an in-flight commit table, a snapshot registry, and a
// per-chunk chain of fixed-size version records.
//
// Protocol sketch:
//
//  * Every mutating op (or whole batch) allocates one revision `r` via
//    begin_commit(): slot <- PENDING, r = ++rev, slot <- r, and releases the
//    slot with end_commit() once the mutation is fully published.  The
//    PENDING/registered window has no scheduler yield points, so the
//    lockstep harness never parks a team mid-protocol.
//  * snapshot() never blocks: it returns s = min(rev, min over in-flight
//    slots - 1).  Any op whose revision is <= s has fully deregistered
//    (none-or-all visibility for in-flight ops and whole batches), and any
//    later begin_commit returns > s.  `s` is monotone across calls.
//  * Writers stamp version records *before* the chunk mutation, under the
//    bottom chunk's lock: an insert pushes a live record {k, v, r, LIVE}, an
//    erase stamps the live record's erase_rev (creating a {k, v, 0, r}
//    record for pre-manager "legacy" keys).  Readers read the chunk array
//    first and the sidecar chain second; with the writer ordered the other
//    way, a key visible at `s` can never be missed by both.
//  * Key movement (split / merge) *copies* records along: splits copy the
//    moved key range into the fresh chunk before the NEXT publish, merges
//    copy the donor's records (filtered to key <= donor max, which kills
//    stale out-of-range copies) into the receiver before the zombify.
//    Copies are idempotent on (key, insert_rev) so crash repairs can replay
//    them.
//  * Resolution of key k in chunk c at snapshot s:
//      1. a record with insert_rev <= s < erase_rev  -> visible (rec value);
//      2. else a live chunk entry and *no* record for k -> visible (chunk
//         value; covers bulk-loaded / recovered keys, which act as
//         insert_rev 0);
//      3. else invisible.
//  * GC: a departed record is droppable once erase_rev <= watermark() =
//    min(stable revision, oldest active snapshot); a record whose key is
//    outside its chunk's current range is a superseded copy and always
//    droppable.  Freed records take the same epoch-grace detour as chunk
//    indices (EpochManager ticket limbo) because readers walk chains
//    lock-free under an epoch pin.
//
// Record-arena exhaustion degrades instead of blocking: the manager bumps
// the store generation (expiring every active snapshot) and poisons
// revisions below the current one, so scan_at() reports kSnapshotExpired
// rather than returning a torn result; the structure itself is never
// blocked.  Everything here is optional — a Gfsl constructed without a
// SnapshotManager runs bit-identical to the seed.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"

namespace gfsl::core {

/// The global revision type (the SnapshotEpoch).  Revision 0 is "before any
/// recorded mutation": a record with insert_rev 0 is visible at every
/// snapshot, which is exactly the semantics bulk-loaded and crash-recovered
/// keys need.
using Rev = std::uint64_t;
using RecIdx = std::uint32_t;

/// One entry of a per-chunk version chain.  `insert_rev` is immutable after
/// publication; `erase_rev` is stamped once (kRevLive -> r) by the erasing
/// team under the chunk lock; `next` only changes under the chunk lock
/// (push-front / unlink), and readers walk it with acquire loads.
struct VersionRec {
  Key key = 0;
  Value value = 0;
  Rev insert_rev = 0;
  std::atomic<Rev> erase_rev{0};
  std::atomic<RecIdx> next{0};
};

/// A reader's handle: resolve everything as-of `rev`.  Validity is revoked
/// by release, by the lagging-snapshot expiry policy, and by store
/// generation bumps (compact / bulk_load / record-arena overflow).
struct Snapshot {
  int slot = -1;
  Rev rev = 0;
  std::uint64_t gen = 0;
  bool open() const { return slot >= 0; }
};

class SnapshotManager {
 public:
  static constexpr Rev kRevLive = ~Rev{0};
  static constexpr Rev kRevPending = ~Rev{0};
  static constexpr RecIdx kNullRec = ~RecIdx{0};
  /// Commit slots: one per team id (out-of-range ids share the overflow
  /// slot, mirroring device::EpochManager::slot_of) plus a few claimable
  /// slots for whole-batch commits.
  static constexpr int kTeamSlots = 256;
  static constexpr int kBatchSlots = 15;
  static constexpr int kCommitSlots = kTeamSlots + 1 + kBatchSlots;
  static constexpr int kMaxSnapshots = 128;

  /// `record_capacity` 0 sizes the arena from the chunk pool.
  explicit SnapshotManager(std::uint32_t pool_chunks,
                           std::uint32_t record_capacity = 0);

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  // --- Revision clock / commit protocol ------------------------------------

  static int commit_slot(int team_id) {
    return (team_id >= 0 && team_id < kTeamSlots) ? team_id : kTeamSlots;
  }

  /// Allocate the next revision and register it in-flight on `slot`.
  Rev begin_commit(int slot);
  /// Deregister `slot` — the mutation committed under its revision is fully
  /// published (or rolled forward deterministically by crash repair).
  void end_commit(int slot);

  /// Claim a commit slot for a whole-batch revision; -1 when all are taken
  /// (the caller falls back to per-op revisions).
  int acquire_batch_slot();
  void release_batch_slot(int slot);

  Rev current_rev() const { return rev_.load(std::memory_order_seq_cst); }
  /// The newest revision every mutation at-or-below which has fully
  /// deregistered: min(rev, min in-flight - 1).  Monotone, non-blocking
  /// (bounded spin only over the yield-free PENDING window).
  Rev stable_rev() const;

  // --- Snapshots ------------------------------------------------------------

  /// Register a snapshot at stable_rev().  Never blocks.  The returned
  /// handle may already be invalid (slot exhaustion, poisoned revisions) —
  /// check valid().
  Snapshot acquire();
  void release(const Snapshot& s);
  bool valid(const Snapshot& s) const;

  /// Oldest registered snapshot revision; kRevLive when none.
  Rev min_snapshot_rev() const;
  /// GC horizon: min(stable_rev, oldest snapshot).  A departed record with
  /// erase_rev <= watermark can never be resolved by any current or future
  /// snapshot.  Reads the stable revision *before* scanning the registry —
  /// the order the registration handshake (store 1, then refine) relies on.
  Rev watermark() const;

  std::size_t active_snapshots() const;
  /// current_rev - oldest snapshot rev; 0 when none are registered.
  Rev oldest_snapshot_age() const;

  /// Lagging-snapshot pruning policy: expire every snapshot older than
  /// `max_age` revisions (0 disables).  Returns how many were expired.
  std::size_t expire_lagging(Rev max_age);
  /// Configured policy knob, applied by the structure's maintenance points.
  void set_max_snapshot_age(Rev max_age) {
    max_snapshot_age_.store(max_age, std::memory_order_relaxed);
  }
  Rev max_snapshot_age() const {
    return max_snapshot_age_.load(std::memory_order_relaxed);
  }

  std::uint64_t store_generation() const {
    return gen_.load(std::memory_order_acquire);
  }

  // --- Version chains -------------------------------------------------------
  // Chain mutations require the owning chunk's lock (single writer per
  // chain); reads are lock-free acquire walks, bounded by walk_cap().

  RecIdx chain_head(ChunkRef c) const {
    return heads_[c].load(std::memory_order_acquire);
  }
  const VersionRec& rec(RecIdx i) const { return recs_[i]; }
  /// Bound for lock-free chain walks: a reader racing a store reset cannot
  /// loop longer than the arena has records.
  std::uint32_t walk_cap() const { return capacity_; }

  /// Push a live record {k, v, r}.  False on arena exhaustion (the manager
  /// has already degraded; the caller proceeds unversioned).
  bool record_insert(ChunkRef c, Key k, Value v, Rev r);
  /// Stamp k's live record with erase revision r; creates a {k, v_hint, 0,
  /// r} record when k has none (legacy key).  False on exhaustion.
  bool mark_erased(ChunkRef c, Key k, Value v_hint, Rev r);
  /// Roll back a half-done insert: make k's live record cover nothing.
  void annul_live_record(ChunkRef c, Key k);
  bool has_live_record(ChunkRef c, Key k, Value* v = nullptr) const;

  /// Copy every record with key in (lo_excl, hi_incl] from `from`'s chain
  /// into `to`'s chain.  Idempotent on (key, insert_rev): a replayed copy
  /// only propagates a missing erase stamp.  Both chunks must be locked by
  /// the caller.  Returns records copied, or -1 on arena exhaustion (the
  /// manager degraded; surviving state is still consistent for every
  /// snapshot that remains valid).
  int copy_records(ChunkRef from, ChunkRef to, Key lo_excl, Key hi_incl);

  /// Drop from c's chain (under its lock): departed records with erase_rev
  /// <= wm, annulled records, and records outside (0, chunk_max] (superseded
  /// copies).  Freed indices land in `freed` — the caller must route them
  /// through an epoch grace period before free_records().
  std::size_t prune_chain(ChunkRef c, Rev wm, Key chunk_max,
                          std::vector<RecIdx>* freed);
  /// Detach c's whole chain (chunk being recycled); same grace contract.
  std::size_t purge_chunk(ChunkRef c, std::vector<RecIdx>* freed);
  /// Return grace-elapsed indices to the arena.
  void free_records(const std::vector<RecIdx>& idxs);

  std::size_t chain_length(ChunkRef c) const;

  // --- Lifecycle ------------------------------------------------------------

  /// Quiescent (compact / bulk_load / recover): drop every chain and every
  /// snapshot, rebuild the record free-list, bump the store generation.
  /// The revision clock is preserved.
  void reset();
  /// Crash recovery: adopt the durable revision counter.  Chains are
  /// volatile — every surviving key collapses to insert_rev 0.
  void restore_rev(Rev r);
  /// Mirror every allocated revision into `word` (CAS-max, so concurrent
  /// allocations cannot regress it) — the persist layer's durable revision.
  void attach_durable(std::atomic<std::uint64_t>* word) { durable_ = word; }

  /// Record-arena exhaustion fallback, also available to the structure when
  /// a mutation cannot be versioned at all: expire every snapshot and poison
  /// every revision at-or-below the current one, so no snapshot can observe
  /// the unversioned window.
  void degrade();

  // --- Introspection --------------------------------------------------------

  std::uint32_t pool_chunks() const { return pool_chunks_; }
  std::uint32_t record_capacity() const { return capacity_; }
  std::uint64_t records_created() const {
    return created_.load(std::memory_order_relaxed);
  }
  std::uint64_t records_pruned() const {
    return pruned_.load(std::memory_order_relaxed);
  }
  std::uint64_t records_live() const {
    return live_.load(std::memory_order_relaxed);
  }
  std::uint64_t overflows() const {
    return overflows_.load(std::memory_order_relaxed);
  }
  std::uint64_t snapshots_expired() const {
    return expired_.load(std::memory_order_relaxed);
  }

 private:
  RecIdx alloc_record();
  void free_record(RecIdx i);

  std::uint32_t pool_chunks_;
  std::uint32_t capacity_;
  std::unique_ptr<VersionRec[]> recs_;
  std::unique_ptr<std::atomic<RecIdx>[]> heads_;
  std::atomic<std::uint64_t> free_head_;  // tagged Treiber head: tag<<32|idx

  std::atomic<Rev> rev_{0};
  std::atomic<Rev> inflight_[kCommitSlots];
  std::atomic<std::uint32_t> batch_slot_busy_[kBatchSlots];

  std::atomic<Rev> snap_slots_[kMaxSnapshots];  // 0 = free, else rev+1
  std::atomic<std::uint64_t> gen_{1};
  std::atomic<Rev> poison_rev_{0};
  std::atomic<Rev> max_snapshot_age_{0};

  std::atomic<std::uint64_t>* durable_ = nullptr;

  std::atomic<std::uint64_t> created_{0};
  std::atomic<std::uint64_t> pruned_{0};
  std::atomic<std::uint64_t> live_{0};
  std::atomic<std::uint64_t> overflows_{0};
  std::atomic<std::uint64_t> expired_{0};
};

/// Outcome of Gfsl::scan_at.
enum class ScanAtStatus {
  kOk = 0,
  kSnapshotExpired,  // released, expired by policy, or store-generation bump
  kNoManager,        // the structure was built without a SnapshotManager
};

}  // namespace gfsl::core
