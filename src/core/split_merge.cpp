// Split (Algorithm 4.9, Figure 4.4) and merge-copy (Figure 4.5c) machinery.
#include "core/gfsl.h"

#include <algorithm>

namespace gfsl::core {

using simt::LaneVec;
using simt::Team;

/// Core split: allocate a fresh chunk, copy the top DSIZE/2 entries into it,
/// publish it with one atomic NEXT write, and empty the moved entries.
/// Shared by insert-splits and merge-splits; the caller owns `split_ref`'s
/// lock and the lock of the chunk after it (via lock_next_chunk).  The fresh
/// chunk is returned still locked.
Gfsl::MovedKeys Gfsl::split_remove(Team& team, ChunkRef next_ref, int level) {
  team.record(simt::TraceEvent::kSplit, next_ref, static_cast<std::uint64_t>(level));
  // Allocate before taking any further lock: exhaustion then unwinds
  // without having touched the structure (the caller still holds next_ref).
  const ChunkRef fresh = alloc_chunk(team);
  if (fresh == NULL_CHUNK) {
    MovedKeys failed;
    failed.ok = false;
    return failed;
  }
  set_chunk_level(fresh, level);
  const ChunkRef after = lock_next_chunk(team, next_ref);
  const LaneVec<KV> skv = read_chunk(team, next_ref);
  const int dsz = team.dsize();
  const int half = dsz / 2;
  const Key thresh = kv_key(team.shfl(skv, half - 1));
  const Key old_max = max_of(team, skv);
  const ChunkRef old_next = next_of(team, skv);

  // Fresh chunk: top half of the data, inheriting the split chunk's max and
  // next pointer ("the new chunk receives the max field of the chunk being
  // split", §4.3).  One coalesced team write; published below.
  sync_point(team);
  for (int i = half; i < dsz; ++i) {
    arena_.entry(fresh, i - half).store(skv[i], std::memory_order_relaxed);
  }
  arena_.entry(fresh, arena_.next_slot())
      .store(make_next_entry(old_max, old_next), std::memory_order_relaxed);
  mem_->warp_write(arena_.device_address(fresh),
                   static_cast<std::uint32_t>(half + 1) * 8u);
  team.step();

  // Version records for the moved span (thresh, old_max] ride along with the
  // entries: copied into the fresh chunk's chain while it is still private.
  // A crash here merely leaks the fresh chunk — records included, purged
  // when the chunk is reclaimed.  The copy is idempotent under replay.
  copy_version_records(team, next_ref, fresh, thresh, old_max, level);

  // Publish: new max + new next pointer in a single atomic write (§4.2.2).
  // This is the split span's first destructive store: before it, the fresh
  // chunk is unreachable and a crash merely leaks it; after it, recovery
  // rolls forward by finishing the tail clearing below.
  publish_intent(team, IntentKind::kSplit, thresh, next_ref, after, fresh);
  atomic_entry_write(team, next_ref, arena_.next_slot(),
                     make_next_entry(thresh, fresh));
  // The donor's coverage just shrank to (.., thresh]: hints for the moved
  // span now land a chunk early (harmless, one extra lateral hop) — erode
  // the table toward its next rebuild.
  if (foresight_ != nullptr && level == 0) foresight_->mark_dirty();

  // Empty the moved entries, highest tId first; traversals give precedence
  // to the NEXT lane's (already lowered) max, so stale high entries are
  // never considered (§4.2.2).
  for (int i = dsz - 1; i >= half; --i) {
    atomic_entry_write(team, next_ref, i, KV_EMPTY);
  }
  clear_intent(team);
  // The donor's chain still holds the moved keys' records; now that its max
  // dropped to `thresh` they are out-of-range there and prunable.
  maybe_prune_records(team, next_ref);

  MovedKeys moved;
  moved.count = half;
  moved.moved_to = fresh;
  for (int i = 0; i < half; ++i) moved.keys[i] = kv_key(skv[half + i]);

  unlock(team, fresh);
  if (after != NULL_CHUNK) unlock(team, after);
  return moved;
}

Gfsl::SplitOutcome Gfsl::split_insert(Team& team, ChunkRef split_ref, Key k,
                                      Value v, int level) {
  team.record(simt::TraceEvent::kSplit, split_ref, static_cast<std::uint64_t>(level));
  // Allocate first: on exhaustion nothing is locked or modified yet, so the
  // caller gets its untouched, still-locked input chunk back.
  const ChunkRef fresh = alloc_chunk(team);
  if (fresh == NULL_CHUNK) {
    SplitOutcome oom;
    oom.locked = split_ref;
    oom.fresh = NULL_CHUNK;
    return oom;
  }
  set_chunk_level(fresh, level);
  // preSplit: lock the successor so it cannot merge away mid-split.
  const ChunkRef after = lock_next_chunk(team, split_ref);
  const LaneVec<KV> skv = read_chunk(team, split_ref);
  const int dsz = team.dsize();
  const int half = dsz / 2;
  const Key thresh = kv_key(team.shfl(skv, half - 1));
  const Key old_max = max_of(team, skv);
  const ChunkRef old_next = next_of(team, skv);

  // splitCopy (Algorithm 4.9 lines 23-33).
  sync_point(team);
  for (int i = half; i < dsz; ++i) {
    arena_.entry(fresh, i - half).store(skv[i], std::memory_order_relaxed);
  }
  arena_.entry(fresh, arena_.next_slot())
      .store(make_next_entry(old_max, old_next), std::memory_order_relaxed);
  mem_->warp_write(arena_.device_address(fresh),
                   static_cast<std::uint32_t>(half + 1) * 8u);
  team.step();

  // Moved-span records travel with the entries while `fresh` is private
  // (same protocol as split_remove above).
  copy_version_records(team, split_ref, fresh, thresh, old_max, level);

  publish_intent(team, IntentKind::kSplit, thresh, split_ref, after, fresh);
  atomic_entry_write(team, split_ref, arena_.next_slot(),
                     make_next_entry(thresh, fresh));
  if (foresight_ != nullptr && level == 0) foresight_->mark_dirty();
  for (int i = dsz - 1; i >= half; --i) {
    atomic_entry_write(team, split_ref, i, KV_EMPTY);
  }
  clear_intent(team);
  maybe_prune_records(team, split_ref);

  SplitOutcome out;
  out.fresh = fresh;
  out.moved.count = half;
  out.moved.moved_to = fresh;
  for (int i = 0; i < half; ++i) out.moved.keys[i] = kv_key(skv[half + i]);
  const Key min_new = out.moved.keys[0];

  // insertNewData: the key lands in whichever side now encloses it.  The
  // side holding k stays locked (at level 0 it carries the bottom lock for
  // the rest of the Insert); the other side is released.
  if (k <= thresh) {
    const LaneVec<KV> cur = read_chunk(team, split_ref);
    execute_insert(team, split_ref, cur, k, v);
    out.locked = split_ref;
    unlock(team, fresh);
  } else {
    const LaneVec<KV> cur = read_chunk(team, fresh);
    execute_insert(team, fresh, cur, k, v);
    out.locked = fresh;
    unlock(team, split_ref);
  }
  if (after != NULL_CHUNK) unlock(team, after);

  // keyForNextLevel (§4.2.2): at level 0 raise max(k, minK) — raising minK
  // directly would need a fresh traversal; above level 0 only the key that
  // caused the split may be raised, since the bottom lock protects only it.
  out.raised_key = (level == 0) ? std::max(k, min_new) : k;

  // Repair level+1 down-pointers for the moved keys (Algorithm 4.10).
  update_down_ptrs(team, level, out.moved);
  return out;
}

void Gfsl::execute_remove_merge(Team& team, const LaneVec<KV>& enc_kv,
                                ChunkRef enc_ref, ChunkRef next_ref, Key k) {
  // Figure 4.5c: move every key but k from the underfull chunk into its
  // successor.  Both chunks are locked and adjacent, so every key in enc is
  // smaller than every key in next; the merged array is just the
  // concatenation.  On the device the new per-lane values come from a series
  // of shfls; writes land right-to-left so a concurrent traversal (which
  // gives precedence to higher tIds) never loses a key.
  team.record(simt::TraceEvent::kMerge, enc_ref, next_ref);
  const LaneVec<KV> nkv = read_chunk(team, next_ref);
  const int dsz = team.dsize();

  LaneVec<KV> merged(KV_EMPTY);
  int m = 0;
  for (int i = 0; i < dsz; ++i) {
    if (!kv_is_empty(enc_kv[i]) && kv_key(enc_kv[i]) != k) {
      merged[m++] = enc_kv[i];
    }
  }
  const int moved_in = m;
  for (int i = 0; i < dsz; ++i) {
    if (!kv_is_empty(nkv[i])) merged[m++] = nkv[i];
  }
  // Model the shfl cascade that distributes merged values to lanes.
  team.counters().shfls += static_cast<std::uint64_t>(moved_in);
  team.counters().instructions += static_cast<std::uint64_t>(moved_in);

  for (int i = m - 1; i >= 0; --i) {
    if (nkv[i] != merged[i]) {
      atomic_entry_write(team, next_ref, i, merged[i]);
    } else {
      team.step();
    }
  }
  // next's max field is unchanged: it only gained smaller keys.
}

}  // namespace gfsl::core
