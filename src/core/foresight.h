// Foresight hint index (DESIGN.md §14).
//
// A flat, sorted table of sampled (lo_key -> bottom-chunk {ref, gen}) hints
// that lets any operation — per-op contains/find/insert/erase and the batch
// engine's cold first descent — jump straight to a chunk at-or-left of its
// key's bottom-level enclosing chunk instead of descending from the head
// (grounding: "Skiplists with Foresight: Skipping Cache Misses", PAPERS.md).
//
// Hint semantics.  Each hint records an *exclusive* lower coverage bound:
// the sampled chunk was, at publication time, the enclosing chunk for every
// key in (lo, its max].  A lookup for k returns the hint with the greatest
// lo < k.  By the batch-cursor coverage argument (core/batch.cpp header):
// chunk coverage only ever extends leftward and keys only migrate rightward,
// so a chunk that once enclosed some key k' <= k stays at-or-left of the
// chunk enclosing k for as long as it lives.  Starting a lateral bottom walk
// there is therefore always correct — *provided the chunk still lives*.
//
// Staleness protocol (the ABA shape DESIGN.md §9 guards against).  A hinted
// ref may have been merged away (zombie) or recycled and reused since
// publication.  The published generation stamp makes the recycle detectable
// (Gfsl::read_chunk_checked against the stored gen), and the *first
// validated read must additionally be non-zombie*: a gen-consistent live
// chunk was never unlinked, so the caller's epoch pin protects it and every
// ref subsequently extracted from it is classic-safe.  A gen-consistent
// zombie is NOT usable — its frozen next pointers may name chunks recycled
// before the caller's pin was taken.  Any failed validation falls back to
// the classic head descent; a stale hint can cost a restart, never a wrong
// answer.
//
// Publication protocol.  Double-buffered tables under a seqlock version
// word: readers run entirely on the active table (atomic relaxed element
// loads, version re-check after the search), a single claimed rebuilder
// fills the inactive table and flips version odd -> swap -> even with plain
// release stores.  The version starts odd (nothing published), is driven
// odd by invalidate_all() (compact / bulk_load / recover), and stays odd
// if a rebuild is abandoned mid-walk — a scheduler kill inside a rebuild
// leaves every lookup missing (fallback) until the next successful publish,
// which is exactly the safe direction.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"

namespace gfsl::core {

class ForesightIndex {
 public:
  /// One published hint: the chunk that enclosed (lo, ...] at publication,
  /// with the generation stamp it carried then.
  struct Hint {
    Key lo = KEY_NEG_INF;  // exclusive lower coverage bound at publication
    ChunkRef ref = NULL_CHUNK;
    std::uint32_t gen = 0;
  };

  /// `pool_chunks` bounds the table size (one hint per `stride` bottom
  /// chunks); `rebuild_threshold` is the dirty-event count past which the
  /// next operation republishes the table.
  explicit ForesightIndex(std::uint32_t pool_chunks, std::uint32_t stride = 2,
                          std::uint64_t rebuild_threshold = 256);

  ForesightIndex(const ForesightIndex&) = delete;
  ForesightIndex& operator=(const ForesightIndex&) = delete;

  // --- reader path -----------------------------------------------------------

  /// Hint with the greatest lo < k from the currently published table.
  /// False when nothing is published, no hint covers k, or the seqlock
  /// re-check caught a concurrent publish.  The caller MUST validate the
  /// returned ref (generation + non-zombie first read) before trusting it.
  bool lookup(Key k, ChunkRef* ref, std::uint32_t* gen) const;

  // --- event marking ---------------------------------------------------------

  /// A bottom-level structural event (split publish, merge zombify, chunk
  /// recycle) that erodes hint precision.  Lock-free, any thread.
  void mark_dirty() { dirty_.fetch_add(1, std::memory_order_relaxed); }

  /// Quiescent structural replacement (compact / bulk_load / recover): every
  /// published hint is garbage.  Drives the version odd so all lookups miss
  /// until the next publish.
  void invalidate_all();

  /// True when the next operation should rebuild: nothing is published (or
  /// an invalidate/abandoned rebuild unpublished it) or enough dirty events
  /// accumulated.
  bool rebuild_due() const {
    return (version_.load(std::memory_order_relaxed) & 1) != 0 ||
           dirty_.load(std::memory_order_relaxed) >= threshold_;
  }

  // --- single-writer rebuild protocol ---------------------------------------

  /// Try to become the rebuilder.  The claim must be released (normally or
  /// during unwind — use an RAII guard) so a killed rebuilder does not
  /// disable rebuilds forever.  Takes the dirty watermark the publish will
  /// consume.
  bool claim_rebuild();
  void release_rebuild() { rebuilding_.store(false, std::memory_order_release); }

  /// Publish `hints` (ascending lo, duplicates collapsed by the builder) as
  /// the new active table.  Only the claimed rebuilder may call this; the
  /// old table keeps serving readers until the atomic swap.
  void publish(const std::vector<Hint>& hints);

  // --- introspection ---------------------------------------------------------

  std::uint32_t stride() const { return stride_; }
  std::size_t entries() const {
    return counts_[cur_.load(std::memory_order_acquire)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t dirty_pending() const {
    return dirty_.load(std::memory_order_relaxed);
  }
  std::uint64_t rebuilds() const {
    return rebuilds_.load(std::memory_order_relaxed);
  }

 private:
  std::uint32_t cap_;
  std::uint32_t stride_;
  std::uint64_t threshold_;

  // Double-buffered hint storage.  Element i of table t packs (lo, ref) in
  // one KV word with the gen in a parallel array; both are plain atomics so
  // a reader racing a (double) publish sees defined values that the version
  // re-check then discards — no data race, seqlock discipline.
  std::unique_ptr<std::atomic<KV>[]> slots_[2];
  std::unique_ptr<std::atomic<std::uint32_t>[]> gens_[2];
  std::atomic<std::size_t> counts_[2];
  std::atomic<std::size_t> cur_{0};

  /// Seqlock: odd = nothing published / publish in flight; even = the table
  /// named by cur_ is consistent.  Starts odd (empty).
  std::atomic<std::uint64_t> version_{1};

  std::atomic<bool> rebuilding_{false};
  std::uint64_t claim_watermark_ = 0;  // dirty count captured at claim time

  std::atomic<std::uint64_t> dirty_{0};
  std::atomic<std::uint64_t> rebuilds_{0};
};

}  // namespace gfsl::core
