// Epoch-based chunk reclamation (DESIGN.md §9).
//
// The paper's merges only *mark* chunks as zombies; nothing is ever freed,
// so sustained churn exhausts the pool.  With an EpochManager attached the
// pipeline becomes:
//
//   mark_zombie  ->  unlink (lock_next_chunk / redirect / head-swing)
//                ->  retire_chunk (stamped into the unlinker's limbo list)
//                ->  grace period (two epoch advances past every pin that
//                    could have seen the chunk linked)
//                ->  reclaim_pass: reference-scan the upper levels for stale
//                    down pointers into the candidates; repair + requeue the
//                    referenced ones — and, transitively, every candidate
//                    their frozen next pointers reach — recycle the rest
//                    onto the free-list
//                ->  alloc_locked pops the recycled index, generation stamp
//                    flips to a new lifetime
//
// Why the reference scan: a raising insert writes (k, enc) into level l+1
// *after* unlocking enc, and merge/split repair down pointers only lazily —
// a down pointer is a persistent structural reference that no epoch pin
// protects.  The grace period guarantees the set of such references is
// frozen (any writer that could still create one held a pin from before the
// unlink, which blocks draining), so one left-to-right scan sees them all:
// splits and merges only move entries rightward, and a merge's copy
// completes before the zombify release-store, so an entry can never slip
// left past the scan cursor.
//
// Parked readers — teams that already hold the chunk ref in a register —
// are the one thing neither pins nor the scan can rule out once the index
// is reused.  They detect it through the generation stamps: a traversal
// samples the stamp when it *acquires* a ref (guard_ref, in the same
// lockstep step as the validated read of the source chunk, so no yield can
// fall in between) and every checked read validates against that sample
// (read_chunk_checked).  A recycle — or a full recycle+reuse, which leaves
// a consistent even stamp a pre/post-only check would accept — anywhere
// between acquisition and read flips the stamp past the sample and the
// traversal restarts.  The epoch pins remain the primary guarantee for
// free-running teams; the stamps cover resumption after a pin was
// force-quiesced and scheduler parks between lockstep steps.
//
// Everything here is gated on `epochs_ != nullptr`: detached, no stamp is
// ever read, no extra yield point fires, and the structure is bit-identical
// to the seed (zombies leak until compact()).
#include "core/gfsl.h"

#include <unordered_set>

namespace gfsl::core {

using simt::LaneVec;
using simt::Team;

LaneVec<KV> Gfsl::read_chunk_checked(Team& team, Guarded g, bool* stale) {
  if (epochs_ == nullptr && integrity_ == nullptr) {
    *stale = false;
    return read_chunk(team, g.ref);
  }
  bool restart = false;
  LaneVec<KV> kv;
  if (epochs_ != nullptr) {
    // Seqlock read validated against the acquisition-time sample: the stamp
    // must equal g.gen both before and after the contents read.  Comparing
    // only pre vs. post would miss a *completed* recycle+reuse (the new
    // lifetime's stamp is even and internally consistent); comparing against
    // the sample taken when the ref was acquired catches it.  The stamp loads
    // piggyback on the chunk's cache line and add no lockstep instruction of
    // their own.
    const auto g1 = arena_.generation(g.ref, std::memory_order_acquire);
    kv = read_chunk(team, g.ref);
    std::atomic_thread_fence(std::memory_order_acquire);
    const auto g2 = arena_.generation(g.ref, std::memory_order_relaxed);
    restart = g1 != g.gen || g2 != g.gen || (g.gen & 1u) != 0;
  } else {
    kv = read_chunk(team, g.ref);
  }
  if (!restart && integrity_ != nullptr &&
      lock_entry_state(team.shfl(kv, team.lock_lane())) == kUnlocked) {
    // Seal check over the snapshot this team already holds — only meaningful
    // when the snapshot shows the chunk unlocked (an in-flight writer
    // legitimately diverges from the last stamp).  Detached epochs the stamp
    // never leaves 0, matching g.gen's default.  The check is sampled
    // (sidecar verify period): drive-by detection at a bounded hot-path
    // cost, with exhaustive coverage owned by scrub_pass.
    if (integrity_->sealed(g.ref, g.gen) &&
        integrity_->should_verify_read()) {
      team.metric(obs::kCorruptionSealsVerified);
      KV data[simt::kWarpSize];
      for (int i = 0; i < team.dsize(); ++i) data[i] = kv[i];
      if (!integrity_->verify_snapshot(g.ref, g.gen, data, team.dsize())) {
        // Suspicion only: a racing lock/modify/unlock between the lane loads
        // can fake a mismatch.  The first flagger resolves inline under
        // try_lock (busy leaves the flag for scrub_pass) and restarts once;
        // later observers proceed on the already-flagged chunk, so a real
        // mismatch can never livelock the read path.
        team.metric(obs::kCorruptionSealMismatches);
        if (integrity_->flag_suspect(g.ref)) {
          scrub_chunk(team, g.ref, nullptr);
          restart = true;
        }
      }
    }
  }
  *stale = restart;
  if (restart) {
    team.metric(obs::kStaleChunkReads);
    ++team.counters().restarts;
    team.record(simt::TraceEvent::kRestart, g.ref);
  }
  return kv;
}

void Gfsl::retire_chunk(Team& team, ChunkRef ref) {
  if (epochs_ == nullptr) return;  // seed semantics: the zombie just leaks
  epochs_->retire(team.id(), ref);
  persist_point();
  team.metric(obs::kChunkRetires);
  team.record(simt::TraceEvent::kChunkRetired, ref, epochs_->global());
}

void Gfsl::epoch_exit(Team& team) {
  // The epoch announcement is a yield point: crash-sweep and deterministic
  // schedules get to interleave (and kill) right at the reclamation edge.
  sync_point(team);
  if (epochs_->limbo_depth(team.id()) >= kReclaimBatch) {
    reclaim_pass(team);
  }
  if (snaps_ != nullptr) {
    // Version-record indices parked by maybe_prune_records ride the same
    // grace machinery as chunks (ticket limbo); once safe they return to
    // the record arena.  Then apply the lagging-snapshot policy so a
    // forgotten snapshot cannot pin the GC watermark forever.
    std::vector<RecIdx> freed;
    if (epochs_->drain_safe_tickets(team.id(), &freed) != 0) {
      snaps_->free_records(freed);
    }
    const Rev max_age = snaps_->max_snapshot_age();
    if (max_age != 0) snaps_->expire_lagging(max_age);
  }
  epochs_->unpin(team.id());
  if (epochs_->try_advance()) {
    team.metric(obs::kEpochAdvances);
    team.record(simt::TraceEvent::kEpochAdvance, epochs_->global());
  }
}

std::size_t Gfsl::reclaim_pass(Team& team) {
  if (epochs_ == nullptr) return 0;
  std::vector<ChunkRef> cand;
  epochs_->drain_safe(team.id(), &cand);
  if (cand.empty()) return 0;

  std::unordered_set<ChunkRef> cset(cand.begin(), cand.end());

  // Reference scan: walk every live upper-level chunk left to right and
  // collect data entries whose value half names a candidate.  Level-0
  // values are user payloads and head chunks are reached via head_, so only
  // levels >= 1 can hold a structural reference.  Zombie chunks are skipped:
  // their entries are never down-stepped by any traversal.
  struct StaleRef {
    ChunkRef holder;
    int lane;
    Key key;
    ChunkRef target;
    int level;
  };
  std::vector<StaleRef> refs;
  std::unordered_set<ChunkRef> referenced;
  for (int l = 1; l < max_levels(); ++l) {
    ChunkRef cur =
        head_[static_cast<std::size_t>(l)].load(std::memory_order_acquire);
    std::unordered_set<ChunkRef> seen;
    while (cur != NULL_CHUNK && seen.insert(cur).second) {
      const LaneVec<KV> kv = read_chunk(team, cur);
      if (!is_zombie(team, kv)) {
        for (int i = 0; i < team.dsize(); ++i) {
          if (kv_is_empty(kv[i])) continue;
          const auto target = static_cast<ChunkRef>(kv_value(kv[i]));
          if (cset.count(target) != 0) {
            referenced.insert(target);
            refs.push_back({cur, i, kv_key(kv[i]), target, l});
          }
        }
      }
      cur = next_of(team, kv);
    }
  }

  // Transitive closure over frozen next pointers: a referenced candidate is
  // still *named* (by a stale down pointer), and its next pointer — frozen
  // at zombification — may lead into sibling candidates.  A traversal that
  // enters through the stale pointer walks that chain with plain reads, so
  // everything reachable from a referenced candidate through candidates must
  // survive this pass too; requeuing only the entry point while recycling
  // its chain would hand the traversal a recycled index one hop later.
  {
    std::vector<ChunkRef> work(referenced.begin(), referenced.end());
    while (!work.empty()) {
      const ChunkRef z = work.back();
      work.pop_back();
      const LaneVec<KV> zkv = read_chunk(team, z);
      const ChunkRef nxt = next_of(team, zkv);
      if (nxt != NULL_CHUNK && cset.count(nxt) != 0 &&
          referenced.insert(nxt).second) {
        work.push_back(nxt);
      }
    }
  }

  // Scrub the stale references: swing each to the head of the level below,
  // from which the key's enclosing chunk is always laterally reachable
  // (§4.3 "Order Between Down Pointers" holds trivially from the head).
  // try_lock only — on contention the candidate is requeued and a later
  // pass retries.
  for (const StaleRef& sr : refs) {
    if (!try_lock(team, sr.holder)) continue;
    const LaneVec<KV> kv = read_chunk(team, sr.holder);
    const KV want = make_kv(sr.key, static_cast<Value>(sr.target));
    if (team.shfl(kv, sr.lane) == want) {
      const ChunkRef below =
          head_[static_cast<std::size_t>(sr.level - 1)].load(
              std::memory_order_acquire);
      atomic_entry_write(team, sr.holder, sr.lane,
                         make_kv(sr.key, static_cast<Value>(below)));
      team.metric(obs::kDownPtrScrubs);
    }
    unlock(team, sr.holder);
  }

  // Recycle what nothing references; requeue the rest (their scrub — or a
  // competing down-pointer repair — must itself age out before reuse).
  std::size_t freed = 0;
  for (const ChunkRef ref : cand) {
    if (referenced.count(ref) != 0) {
      epochs_->requeue(team.id(), ref);
      team.metric(obs::kChunkRequeues);
      team.record(simt::TraceEvent::kChunkReclaimed, ref, 0);
    } else {
      // The chunk's version chain dies with it: the grace period that freed
      // the chunk also covers its chain (no walker can still acquire the
      // head; a parked one fails the generation re-check), so the record
      // indices return to the arena immediately.
      purge_version_records(ref);
      if (integrity_ != nullptr) integrity_->unseal(ref);
      arena_.recycle(ref);
      persist_point();  // the generation flip + free-list push just hit disk
      // Belt-and-braces erosion mark: a hint naming this index already fails
      // its generation check, but the recycle means the table is aging.
      if (foresight_ != nullptr) foresight_->mark_dirty();
      chunks_reclaimed_.fetch_add(1, std::memory_order_relaxed);
      ++freed;
      team.metric(obs::kChunkReclaims);
      team.record(simt::TraceEvent::kChunkReclaimed, ref, 1);
    }
  }
  return freed;
}

ChunkRef Gfsl::alloc_chunk(Team& team) {
  ChunkRef ref = arena_.alloc_locked(lease_word(team));
  if (ref != NULL_CHUNK) persist_point();
  if (ref != NULL_CHUNK || epochs_ == nullptr) return ref;
  // Exhausted: help the epoch along and drain our own limbo.  Our own pin
  // (taken at operation entry) only blocks candidates retired during this
  // very operation; everything older can still drain.
  for (int round = 0; round < 4 && ref == NULL_CHUNK; ++round) {
    team.metric(obs::kEmergencyReclaims);
    epochs_->try_advance();
    reclaim_pass(team);
    ref = arena_.alloc_locked(lease_word(team));
  }
  if (ref != NULL_CHUNK) persist_point();
  return ref;
}

}  // namespace gfsl::core
